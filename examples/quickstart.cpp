// Quickstart: the smallest end-to-end Hyper-Q deployment.
//
//   Q application --QIPC--> Hyper-Q --SQL--> PG-compatible backend
//
// This program plays all three roles in one process: it loads a table into
// the analytical backend, starts a Hyper-Q server on the port a kdb+
// server would own (§3.1), then connects as an unchanged Q application and
// runs Q queries that execute as SQL.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/endpoint.h"
#include "kdb/engine.h"

using hyperq::HyperQServer;
using hyperq::LoadQTable;
using hyperq::QipcClient;
using hyperq::QValue;

int main() {
  // 1. The analytical backend (Greenplum's role in the paper). Data is
  //    loaded independently of Hyper-Q (§1) — here via the q loader, which
  //    adds the implicit order column.
  hyperq::sqldb::Database backend;
  hyperq::kdb::Interpreter q;
  auto table = q.EvalText(
      "([] Symbol:`GOOG`IBM`GOOG`MSFT`IBM;"
      "  Price:720.5 151.2 721.0 52.1 150.9;"
      "  Size:100 200 150 300 120)");
  if (!table.ok()) {
    std::fprintf(stderr, "table build failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  if (!LoadQTable(&backend, "trades", *table).ok()) return 1;

  // 2. Hyper-Q takes over the kdb+ port (ephemeral here).
  HyperQServer server(&backend, HyperQServer::Options{});
  if (!server.Start(0).ok()) return 1;
  std::printf("Hyper-Q listening on 127.0.0.1:%u\n\n", server.port());

  // 3. The unchanged Q application connects and speaks plain q.
  auto client = QipcClient::Connect("127.0.0.1", server.port(), "quant",
                                    "password");
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  const char* queries[] = {
      "select from trades",
      "select Price from trades where Symbol=`GOOG",
      "select vwap: Size wavg Price by Symbol from trades",
      "exec max Price from trades",
  };
  for (const char* query : queries) {
    std::printf("q) %s\n", query);
    auto result = client->Query(query);
    if (!result.ok()) {
      std::printf("   error: %s\n\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", result->ToString().c_str());
  }

  client->Close();
  server.Stop();
  std::printf("done.\n");
  return 0;
}
