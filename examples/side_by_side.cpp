// The side-by-side testing framework of §5 as a user-facing tool: "we
// built a side-by-side testing framework, which can be used for internal
// testing of features, and also used by the customers in their staging
// environments to ensure correctness of operation."
//
// Every query in the suite runs on the reference mini-kdb+ engine and
// through Hyper-Q on the analytical backend; the tool prints a pass/fail
// report with the generated SQL for any mismatch.

#include <cstdio>
#include <vector>

#include "testing/market_data.h"
#include "testing/side_by_side.h"

int main() {
  hyperq::testing::SideBySideHarness harness;

  hyperq::testing::MarketDataOptions opts;
  opts.trades_per_symbol = 60;
  opts.quotes_per_symbol = 180;
  auto data = hyperq::testing::GenerateMarketData(opts);
  if (!harness.LoadTable("trades", data.trades).ok() ||
      !harness.LoadTable("quotes", data.quotes).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  std::vector<std::string> suite = {
      "select from trades",
      "select Symbol, Price from trades where Price>120",
      "select from trades where Symbol in `AAPL`GOOG",
      "select mx: max Price, mn: min Price by Symbol from trades",
      "select vwap: Size wavg Price by Symbol from trades",
      "select n: count Price by Symbol from trades where Size>1000",
      "exec sum Size from trades",
      "update notional: Price*Size from trades",
      "delete Size from trades",
      "`Price xdesc trades",
      "10#trades",
      "-10#trades",
      "distinct select Symbol from trades",
      "aj[`Symbol`Time; trades; quotes]",
      "f: {[S] :exec max Price from trades where Symbol=S}; f[`GOOG]",
      "select s: sums Size from trades where Symbol=`IBM",
      "select d: deltas Price from trades where Symbol=`AAPL",
      "select avg Price by bucket: 1000 xbar Size from trades",
      "select from trades where Price=(max;Price) fby Symbol",
      "select[5;>Price] from trades",
      "update mx: max Price by Symbol from trades",
      "select nosuchcol from trades",  // both engines reject: AGREE-ERR
  };

  int passed = 0;
  int agreed_fail = 0;
  int failed = 0;
  for (const auto& q : suite) {
    auto c = harness.Run(q);
    const char* verdict = c.match ? (c.both_failed ? "AGREE-ERR" : "PASS")
                                  : "FAIL";
    std::printf("[%-9s] %s\n", verdict, q.c_str());
    if (c.match && !c.both_failed) {
      ++passed;
    } else if (c.both_failed) {
      ++agreed_fail;
    } else {
      ++failed;
      std::printf("    kdb:    %s\n",
                  c.kdb_error.empty() ? c.kdb_result.ToString().c_str()
                                      : c.kdb_error.c_str());
      std::printf("    hyperq: %s\n",
                  c.hyperq_error.empty()
                      ? c.hyperq_result.ToString().c_str()
                      : c.hyperq_error.c_str());
      if (!c.sql.empty()) std::printf("    sql: %s\n", c.sql.c_str());
    }
  }
  std::printf(
      "\n%d passed, %d agreed-on-error, %d mismatched (of %zu queries)\n",
      passed, agreed_fail, failed, suite.size());
  return failed == 0 ? 0 : 1;
}
