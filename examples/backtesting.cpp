// Historical analytics / backtesting scenario (§1, §2.1): the same Q the
// trading desk runs in real time, extended over a larger historical window
// on the analytical backend — the "holy grail" workload the paper targets.
// A toy momentum backtest: per-symbol VWAP, moving averages and a signal
// computed entirely through Hyper-Q-translated SQL.

#include <algorithm>
#include <cstdio>

#include "core/hyperq.h"
#include "testing/market_data.h"

using hyperq::HyperQSession;
using hyperq::LoadQTable;

int main() {
  // A "historical archive": several days of synthetic ticks.
  hyperq::sqldb::Database warehouse;
  for (int day = 0; day < 5; ++day) {
    hyperq::testing::MarketDataOptions opts;
    opts.seed = 100 + day;
    opts.date_qdays = 6021 + day;  // 2016.06.26 .. 2016.06.30
    opts.symbols = {"AAPL", "GOOG", "IBM"};
    opts.trades_per_symbol = 120;
    auto data = hyperq::testing::GenerateMarketData(opts);
    std::string name = day == 0 ? "hist" : "hist_day";
    if (day == 0) {
      if (!LoadQTable(&warehouse, "hist", data.trades).ok()) return 1;
    } else {
      // Append further days through Hyper-Q-visible tables then uj.
      if (!LoadQTable(&warehouse, "hist_day", data.trades).ok()) return 1;
      HyperQSession loader(&warehouse);
      auto merged = loader.Query("hist uj hist_day");
      if (!merged.ok()) {
        std::fprintf(stderr, "merge failed: %s\n",
                     merged.status().ToString().c_str());
        return 1;
      }
      if (!LoadQTable(&warehouse, "hist", *merged).ok()) return 1;
    }
  }

  HyperQSession session(&warehouse);

  std::printf("== historical coverage ==\n");
  auto coverage = session.Query(
      "select trades: count Price, volume: sum Size by Date from hist");
  if (coverage.ok()) {
    std::printf("%s\n", coverage->ToString().c_str());
  }

  std::printf("== daily VWAP by symbol (grouped analytics) ==\n");
  auto vwap = session.Query(
      "select vwap: Size wavg Price, volume: sum Size "
      "by Date, Symbol from hist");
  if (!vwap.ok()) {
    std::fprintf(stderr, "vwap failed: %s\n",
                 vwap.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", vwap->ToString().c_str());

  std::printf("== momentum signal for GOOG (ordered analytics) ==\n");
  // Running statistics use the implicit order column: sums/mavg lower to
  // window functions over ordcol (§3.3).
  auto signal = session.Query(
      "g: select Date, Time, Price from hist where Symbol=`GOOG;"
      "select Date, Time, Price, fast: 5 mavg Price, slow: 20 mavg Price "
      "from g");
  if (!signal.ok()) {
    std::fprintf(stderr, "signal failed: %s\n",
                 signal.status().ToString().c_str());
    return 1;
  }
  // Count crossovers client-side (the application keeps its own logic).
  const auto& t = signal->Table();
  int fast_col = t.FindColumn("fast");
  int slow_col = t.FindColumn("slow");
  const auto& fast = t.columns[fast_col].Floats();
  const auto& slow = t.columns[slow_col].Floats();
  int crossings = 0;
  for (size_t i = 1; i < fast.size(); ++i) {
    bool above_now = fast[i] > slow[i];
    bool above_prev = fast[i - 1] > slow[i - 1];
    if (above_now != above_prev) ++crossings;
  }
  std::printf("rows: %zu, fast/slow crossovers: %d\n\n", fast.size(),
              crossings);

  std::printf("== drawdown curve for GOOG ==\n");
  // Price minus its running maximum; the minimum of this series is the
  // maximum drawdown. The running max lowers to MAX(...) OVER (ORDER BY
  // ordcol).
  auto drawdown = session.Query(
      "select dd: Price - maxs Price from g");
  if (!drawdown.ok()) {
    std::fprintf(stderr, "drawdown failed: %s\n",
                 drawdown.status().ToString().c_str());
    return 1;
  }
  const auto& dd = drawdown->Table().columns[0].Floats();
  double worst = 0;
  for (double x : dd) worst = std::min(worst, x);
  std::printf("max drawdown over the window: %.3f\n\n", worst);

  std::printf("translation of the last query took %.1f us\n",
              session.last_timings().total_us());
  return 0;
}
