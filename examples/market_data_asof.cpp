// The paper's flagship scenario (§2.2 Example 1): the point-in-time
// as-of-join computing the prevailing quote as of each trade, used "to
// measure the difference between the price at the time users decide to buy
// and the price paid at actual execution".
//
// The same Q text runs (a) on the mini-kdb+ real-time engine and (b)
// through Hyper-Q against the analytical backend; the example prints the
// SQL lowering (left outer join + window function, Figure 2) and checks
// both engines agree.

#include <cstdio>

#include "core/hyperq.h"
#include "kdb/engine.h"
#include "testing/market_data.h"
#include "testing/side_by_side.h"

using hyperq::QValue;
using hyperq::testing::GenerateMarketData;
using hyperq::testing::MarketDataOptions;

int main() {
  // Synthetic TAQ-shaped market data (see DESIGN.md substitutions).
  MarketDataOptions opts;
  opts.symbols = {"AAPL", "GOOG", "IBM", "MSFT"};
  opts.trades_per_symbol = 50;
  opts.quotes_per_symbol = 200;
  auto data = GenerateMarketData(opts);

  hyperq::testing::SideBySideHarness harness;
  if (!harness.LoadTable("trades", data.trades).ok() ||
      !harness.LoadTable("quotes", data.quotes).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  // Example 1, with the helper variables the paper's query uses.
  const char* setup = "SOMEDATE: 2016.06.26; SYMLIST: `GOOG`IBM";
  const char* query =
      "aj[`Symbol`Time;"
      "  select Symbol, Time, Price from trades"
      "    where Date=SOMEDATE, Symbol in SYMLIST;"
      "  select Symbol, Time, Bid, Ask from quotes"
      "    where Date=SOMEDATE]";

  std::printf("Q (Example 1 of the paper):\n%s;\n%s\n\n", setup, query);

  // Run through Hyper-Q.
  auto& session = harness.hyperq();
  if (!session.Query(setup).ok()) return 1;
  auto via_hyperq = session.Query(query);
  if (!via_hyperq.ok()) {
    std::fprintf(stderr, "hyper-q failed: %s\n",
                 via_hyperq.status().ToString().c_str());
    return 1;
  }
  std::printf("Generated SQL (as-of join lowering, Figure 2):\n%s\n\n",
              session.last_sql().c_str());

  // Run on the real-time engine.
  auto& kdb = harness.kdb();
  if (!kdb.EvalText(setup).ok()) return 1;
  auto via_kdb = kdb.EvalText(query);
  if (!via_kdb.ok()) {
    std::fprintf(stderr, "kdb failed: %s\n",
                 via_kdb.status().ToString().c_str());
    return 1;
  }

  QValue a = hyperq::testing::CanonicalizeForComparison(*via_kdb);
  QValue b = hyperq::testing::CanonicalizeForComparison(*via_hyperq);
  std::printf("rows: kdb=%zu hyperq=%zu, results %s\n\n", a.Count(),
              b.Count(),
              QValue::Match(a, b) ? "MATCH" : "DIFFER (bug!)");

  std::printf("first rows of the joined result:\n%s\n",
              via_hyperq->ToString().c_str());

  // Slippage report: difference between trade price and prevailing quote
  // midpoint — the analysis the paper motivates.
  auto slippage = session.Query(
      "SOMEDATE: 2016.06.26; SYMLIST: `GOOG`IBM;"
      "j: aj[`Symbol`Time;"
      "  select Symbol, Time, Price from trades"
      "    where Date=SOMEDATE, Symbol in SYMLIST;"
      "  select Symbol, Time, Bid, Ask from quotes where Date=SOMEDATE];"
      "select avg_slip: avg Price-(Bid+Ask)%2 by Symbol from j");
  if (slippage.ok()) {
    std::printf("average slippage vs prevailing midpoint, by symbol:\n%s\n",
                slippage->ToString().c_str());
  } else {
    std::printf("slippage query failed: %s\n",
                slippage.status().ToString().c_str());
  }
  return 0;
}
