#!/usr/bin/env bash
# Bench runner: builds the headline benches and writes their JSON artifacts
# at the repo root (BENCH_translation.json, BENCH_fig6.json,
# BENCH_backend.json, BENCH_kernel.json, BENCH_wire.json,
# BENCH_shard.json, BENCH_endpoint.json). The translation-cache bench
# exits non-zero if the hot path is not at least 5x faster than cold
# translation, the wire bench exits non-zero if bulk encode is not at
# least 4x faster than the element-wise baseline, and this script exits
# non-zero if the routed 4-shard filter+agg is not at least 2x faster than
# 1 shard, if the fused-kernel filter+agg is not at least 2x faster than
# the interpreted executor at 1 and 4 threads, or if the C10K endpoint
# bench shows the event-loop front end losing to thread-per-connection
# (p99 latency above the thread baseline, or under 10x its idle-connection
# capacity), so it doubles as a perf gate.
#
# Usage: scripts/bench.sh [--smoke]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
SMOKE=()
[[ "${1:-}" == "--smoke" ]] && SMOKE=(--smoke)

echo "==> bench: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" \
  --target bench_translation_cache bench_fig6_translation_overhead \
  bench_backend_exec bench_kernel_exec bench_wire \
  bench_shard_scatter bench_ingest_hybrid bench_endpoint_c10k >/dev/null

echo "==> bench: translation cache hot path"
./build/bench/bench_translation_cache --json=BENCH_translation.json \
  "${SMOKE[@]}"

echo "==> bench: figure 6 translation overhead"
./build/bench/bench_fig6_translation_overhead --json=BENCH_fig6.json \
  "${SMOKE[@]}"

echo "==> bench: backend executor (columnar + morsel parallelism)"
./build/bench/bench_backend_exec --json=BENCH_backend.json "${SMOKE[@]}"

echo "==> bench: fused-kernel execution (fingerprint-keyed kernel cache)"
./build/bench/bench_kernel_exec --json=BENCH_kernel.json "${SMOKE[@]}"

echo "==> bench: wire path (vectorized encode + scatter egress)"
./build/bench/bench_wire --json=BENCH_wire.json "${SMOKE[@]}"

echo "==> bench: shard scatter-gather (partition routing + shard scaling)"
./build/bench/bench_shard_scatter --json=BENCH_shard.json "${SMOKE[@]}"

echo "==> bench: ingest + hybrid live/historical queries"
./build/bench/bench_ingest_hybrid --json=BENCH_ingest.json "${SMOKE[@]}"

echo "==> bench: C10K endpoint (event loop vs thread-per-connection)"
./build/bench/bench_endpoint_c10k --json=BENCH_endpoint.json "${SMOKE[@]}"

echo "==> bench: artifacts"
grep -o '"speedup_[a-z]*": [0-9.]*' BENCH_translation.json
grep -o '"avg_overhead_pct": [0-9.]*' BENCH_fig6.json
grep -c '"name": "BM_' BENCH_backend.json
grep -c '"name": "BM_' BENCH_kernel.json
grep -o '"encode_speedup": [0-9.]*' BENCH_wire.json
# Gate: the fused filter+agg kernel must beat the interpreted columnar
# executor by at least 2x on the hot shape at 1 and at 4 threads.
awk -F': ' '
  /"name": "BM_KernelFilterAggregate\/1"/ { wantk1 = 1 }
  wantk1 && /"real_time"/ { k1 = $2 + 0; wantk1 = 0 }
  /"name": "BM_KernelFilterAggregate\/4"/ { wantk4 = 1 }
  wantk4 && /"real_time"/ { k4 = $2 + 0; wantk4 = 0 }
  /"name": "BM_InterpFilterAggregate\/1"/ { wanti1 = 1 }
  wanti1 && /"real_time"/ { i1 = $2 + 0; wanti1 = 0 }
  /"name": "BM_InterpFilterAggregate\/4"/ { wanti4 = 1 }
  wanti4 && /"real_time"/ { i4 = $2 + 0; wanti4 = 0 }
  END {
    if (k1 <= 0 || k4 <= 0 || i1 <= 0 || i4 <= 0) {
      print "kernel bench: filter+agg timings missing from BENCH_kernel.json"
      exit 1
    }
    printf "fused kernel filter+agg speedup: %.2fx @1, %.2fx @4\n", \
      i1 / k1, i4 / k4
    if (i1 / k1 < 2.0 || i4 / k4 < 2.0) {
      print "FAIL: fused-kernel filter+agg speedup below 2x"
      exit 1
    }
  }' BENCH_kernel.json
# Gate: the end-to-end translated-Q hot corpus (Q text -> cross-compiler
# -> backend, serializer wrappers included) must be served by compiled
# kernels at >= 80% — the canonicalizer flattening the serializer's
# standard shells is what keeps this from collapsing toward 0.
awk -F': ' '
  /"name": "BM_TranslatedQKernel\/1"/ { want = 1 }
  want && /"kernel_hit_rate"/ { rate = $2 + 0; want = 0; seen = 1 }
  END {
    if (!seen) {
      print "kernel bench: kernel_hit_rate missing from BENCH_kernel.json"
      exit 1
    }
    printf "translated-Q kernel hit rate: %.0f%%\n", rate * 100
    if (rate < 0.8) {
      print "FAIL: kernel hit rate on the translated corpus below 80%"
      exit 1
    }
  }' BENCH_kernel.json
# Gate: a live tail must be nearly free for readers — the hybrid split
# (epoch pin + historical/tail partials + merge) over the same rows, with
# one publisher sustaining ingest into another live table, must stay
# within 1.3x of the plain bulk-loaded table's latency. Per-table kernel
# invalidation is load-bearing here: if the publisher's flushes evicted
# the measured query's compiled kernel, this gate would blow past 1.3x.
awk -F': ' '
  /"name": "BM_StaticFilterAgg"/ { wants = 1 }
  wants && /"real_time"/ { s = $2 + 0; wants = 0 }
  /"name": "BM_HybridFilterAgg\/1"/ { wanth = 1 }
  wanth && /"real_time"/ { h = $2 + 0; wanth = 0 }
  END {
    if (s <= 0 || h <= 0) {
      print "ingest bench: static/hybrid timings missing from BENCH_ingest.json"
      exit 1
    }
    printf "hybrid filter+agg at 1 publisher: %.2fx static baseline\n", h / s
    if (h > s * 1.3) {
      print "FAIL: hybrid query latency above 1.3x the static table at 1 publisher"
      exit 1
    }
  }' BENCH_ingest.json
# Gate: the routed symbol-pinned filter+agg at 4 shards scans ~1/4 of the
# rows, so it must beat the 1-shard run by at least 2x even on one core.
awk -F': ' '
  /"name": "BM_FilterAggRouted\/1"/ { want1 = 1 }
  want1 && /"real_time"/ { t1 = $2 + 0; want1 = 0 }
  /"name": "BM_FilterAggRouted\/4"/ { want4 = 1 }
  want4 && /"real_time"/ { t4 = $2 + 0; want4 = 0 }
  END {
    if (t1 <= 0 || t4 <= 0) {
      print "shard bench: routed timings missing from BENCH_shard.json"
      exit 1
    }
    printf "shard routed 4-shard speedup: %.2fx\n", t1 / t4
    if (t1 / t4 < 2.0) {
      print "FAIL: routed 4-shard filter+agg speedup below 2x"
      exit 1
    }
  }' BENCH_shard.json
# Gate: the event-loop front end must hold an order of magnitude more idle
# connections than thread-per-connection (full runs only — the smoke fleet
# is too small to exercise the thread model's cap) and must not pay a
# latency tax for it: its active-query p99, measured WITH the idle fleet
# parked, must stay within 15% of the thread model's idle-free baseline.
# The two models are statistically tied on a single core (the reactor's
# extra loop→pool→loop hops against the scheduler cost of a thread per
# connection), so run-to-run noise swings the sign; the slack absorbs
# that without letting a real regression (reactor stall, lost wakeup,
# drain bug) through. 25% in smoke mode, where tiny sample counts make
# p99 noisier still.
SLACK=1.15
[[ "${1:-}" == "--smoke" ]] && SLACK=1.25
awk -F': ' -v slack="$SLACK" '
  /"idle_capacity_ratio"/ { ratio = $2 + 0 }
  /"event_p99_us"/ { ep99 = $2 + 0 }
  /"thread_p99_us"/ { tp99 = $2 + 0 }
  /"smoke"/ { smoke = ($2 ~ /true/) }
  END {
    if (ep99 <= 0 || tp99 <= 0) {
      print "endpoint bench: p99 timings missing from BENCH_endpoint.json"
      exit 1
    }
    printf "endpoint event p99 %.0f us vs thread p99 %.0f us (idle ratio %.1fx)\n", \
      ep99, tp99, ratio
    if (ep99 > tp99 * slack) {
      print "FAIL: event-loop p99 above the thread-per-connection baseline"
      exit 1
    }
    if (!smoke && ratio < 10.0) {
      print "FAIL: event-loop idle connection capacity below 10x thread model"
      exit 1
    }
  }' BENCH_endpoint.json
