#!/usr/bin/env bash
# Bench runner: builds the headline benches and writes their JSON artifacts
# at the repo root (BENCH_translation.json, BENCH_fig6.json,
# BENCH_backend.json, BENCH_wire.json, BENCH_shard.json). The
# translation-cache bench exits non-zero if the hot path is not at least 5x
# faster than cold translation, the wire bench exits non-zero if bulk
# encode is not at least 4x faster than the element-wise baseline, and this
# script exits non-zero if the routed 4-shard filter+agg is not at least 2x
# faster than 1 shard, so it doubles as a perf gate.
#
# Usage: scripts/bench.sh [--smoke]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
SMOKE=()
[[ "${1:-}" == "--smoke" ]] && SMOKE=(--smoke)

echo "==> bench: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" \
  --target bench_translation_cache bench_fig6_translation_overhead \
  bench_backend_exec bench_wire bench_shard_scatter >/dev/null

echo "==> bench: translation cache hot path"
./build/bench/bench_translation_cache --json=BENCH_translation.json \
  "${SMOKE[@]}"

echo "==> bench: figure 6 translation overhead"
./build/bench/bench_fig6_translation_overhead --json=BENCH_fig6.json \
  "${SMOKE[@]}"

echo "==> bench: backend executor (columnar + morsel parallelism)"
./build/bench/bench_backend_exec --json=BENCH_backend.json "${SMOKE[@]}"

echo "==> bench: wire path (vectorized encode + scatter egress)"
./build/bench/bench_wire --json=BENCH_wire.json "${SMOKE[@]}"

echo "==> bench: shard scatter-gather (partition routing + shard scaling)"
./build/bench/bench_shard_scatter --json=BENCH_shard.json "${SMOKE[@]}"

echo "==> bench: artifacts"
grep -o '"speedup_[a-z]*": [0-9.]*' BENCH_translation.json
grep -o '"avg_overhead_pct": [0-9.]*' BENCH_fig6.json
grep -c '"name": "BM_' BENCH_backend.json
grep -o '"encode_speedup": [0-9.]*' BENCH_wire.json
# Gate: the routed symbol-pinned filter+agg at 4 shards scans ~1/4 of the
# rows, so it must beat the 1-shard run by at least 2x even on one core.
awk -F': ' '
  /"name": "BM_FilterAggRouted\/1"/ { want1 = 1 }
  want1 && /"real_time"/ { t1 = $2 + 0; want1 = 0 }
  /"name": "BM_FilterAggRouted\/4"/ { want4 = 1 }
  want4 && /"real_time"/ { t4 = $2 + 0; want4 = 0 }
  END {
    if (t1 <= 0 || t4 <= 0) {
      print "shard bench: routed timings missing from BENCH_shard.json"
      exit 1
    }
    printf "shard routed 4-shard speedup: %.2fx\n", t1 / t4
    if (t1 / t4 < 2.0) {
      print "FAIL: routed 4-shard filter+agg speedup below 2x"
      exit 1
    }
  }' BENCH_shard.json
