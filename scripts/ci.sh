#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, then the concurrency
# battery (endpoint stress, metrics, worker pool, concurrent executors,
# fault injection, shard scatter-gather, ingest hybrid, chaos soak)
# rebuilt and re-run under ThreadSanitizer.
# Any TSAN report fails the run via -DHYPERQ_SANITIZE instrumentation and
# halt_on_error.
#
# Usage: scripts/ci.sh [--skip-tsan] [--bench-smoke] [--chaos-smoke]
#                      [--kernel-coverage]
#
#   --chaos-smoke  re-runs the chaos/soak battery (non-TSAN binary) with a
#                  pinned seed and a short wall-clock budget; part of the
#                  default flow already via ctest, this flag runs it again
#                  standalone with the canonical CI seed so a failure
#                  reproduces with: HYPERQ_SOAK_SEED=42 HYPERQ_SOAK_MS=1500
#
#   --kernel-coverage  builds and runs ONLY the fused-kernel coverage sweep
#                  (the KernelCoverageOnTranslatedHotCorpus fuzz battery):
#                  translator-emitted hot SELECTs must be served by
#                  compiled kernels at >= 80% or the run fails. Fast
#                  standalone check for kernel-grammar regressions.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_TSAN=0
BENCH_SMOKE=0
CHAOS_SMOKE=0
KERNEL_COVERAGE=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --bench-smoke) BENCH_SMOKE=1 ;;
    --chaos-smoke) CHAOS_SMOKE=1 ;;
    --kernel-coverage) KERNEL_COVERAGE=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

if [[ "$KERNEL_COVERAGE" == 1 ]]; then
  echo "==> kernel-coverage: configure + build"
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target side_by_side_fuzz_test >/dev/null
  echo "==> kernel-coverage: translated hot-corpus sweep (floor: 80%)"
  ./build/tests/side_by_side_fuzz_test \
    --gtest_filter='*KernelCoverageOnTranslatedHotCorpus*'
  echo "==> kernel-coverage: green"
  exit 0
fi

# fd preflight: the endpoint tests open thousands of sockets (idle-churn,
# C10K smoke). Raise the soft RLIMIT_NOFILE toward the hard limit, capped
# at 8192, and warn when even that is unavailable (tests self-scale, but a
# tiny limit weakens their coverage).
HARD_FD="$(ulimit -Hn)"
TARGET_FD=8192
if [[ "$HARD_FD" != "unlimited" && "$HARD_FD" -lt "$TARGET_FD" ]]; then
  TARGET_FD="$HARD_FD"
fi
if [[ "$(ulimit -Sn)" -lt "$TARGET_FD" ]]; then
  ulimit -Sn "$TARGET_FD" || true
fi
if [[ "$(ulimit -Sn)" -lt 1024 ]]; then
  echo "warning: open-file limit is only $(ulimit -Sn); connection-scale" \
       "tests will run with reduced connection counts" >&2
fi
echo "==> fd limit: $(ulimit -Sn) (hard: $HARD_FD)"

echo "==> tier-1: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "==> tier-1: full test suite"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$BENCH_SMOKE" == 1 ]]; then
  echo "==> bench: smoke (tiny iteration counts, artifacts at repo root)"
  scripts/bench.sh --smoke
fi

if [[ "$CHAOS_SMOKE" == 1 ]]; then
  echo "==> chaos: smoke soak (pinned seed 42, 1500 ms)"
  HYPERQ_SOAK_SEED=42 HYPERQ_SOAK_MS=1500 ./build/tests/chaos_soak_test
fi

if [[ "$SKIP_TSAN" == 1 ]]; then
  echo "==> tsan: skipped (--skip-tsan)"
  exit 0
fi

echo "==> tsan: configure + build (build-tsan)"
cmake -B build-tsan -S . -DHYPERQ_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target endpoint_stress_test metrics_test endpoint_test \
  event_loop_test protocol_test \
  translation_cache_test worker_pool_test exec_stress_test \
  kernel_exec_test \
  wire_path_test qipc_property_test fault_injection_test chaos_soak_test \
  shard_exec_test side_by_side_fuzz_test ingest_hybrid_test

echo "==> tsan: concurrency battery"
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
./build-tsan/tests/metrics_test
./build-tsan/tests/event_loop_test
./build-tsan/tests/protocol_test
./build-tsan/tests/endpoint_test
./build-tsan/tests/endpoint_stress_test
./build-tsan/tests/translation_cache_test
./build-tsan/tests/worker_pool_test
./build-tsan/tests/exec_stress_test
./build-tsan/tests/kernel_exec_test
./build-tsan/tests/wire_path_test
./build-tsan/tests/qipc_property_test
./build-tsan/tests/fault_injection_test
./build-tsan/tests/shard_exec_test
./build-tsan/tests/side_by_side_fuzz_test
./build-tsan/tests/ingest_hybrid_test
HYPERQ_SOAK_MS=1500 ./build-tsan/tests/chaos_soak_test

echo "==> ci: all green"
