# Empty compiler generated dependencies file for bench_protocol_pivot.
# This may be replaced when dependencies are built.
