file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_pivot.dir/bench_protocol_pivot.cc.o"
  "CMakeFiles/bench_protocol_pivot.dir/bench_protocol_pivot.cc.o.d"
  "bench_protocol_pivot"
  "bench_protocol_pivot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_pivot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
