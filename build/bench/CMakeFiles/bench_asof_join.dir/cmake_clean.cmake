file(REMOVE_RECURSE
  "CMakeFiles/bench_asof_join.dir/bench_asof_join.cc.o"
  "CMakeFiles/bench_asof_join.dir/bench_asof_join.cc.o.d"
  "bench_asof_join"
  "bench_asof_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asof_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
