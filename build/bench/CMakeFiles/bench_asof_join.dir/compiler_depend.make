# Empty compiler generated dependencies file for bench_asof_join.
# This may be replaced when dependencies are built.
