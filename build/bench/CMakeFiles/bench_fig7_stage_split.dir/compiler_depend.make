# Empty compiler generated dependencies file for bench_fig7_stage_split.
# This may be replaced when dependencies are built.
