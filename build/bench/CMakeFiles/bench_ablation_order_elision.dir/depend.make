# Empty dependencies file for bench_ablation_order_elision.
# This may be replaced when dependencies are built.
