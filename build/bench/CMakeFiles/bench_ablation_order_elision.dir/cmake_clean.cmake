file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_order_elision.dir/bench_ablation_order_elision.cc.o"
  "CMakeFiles/bench_ablation_order_elision.dir/bench_ablation_order_elision.cc.o.d"
  "bench_ablation_order_elision"
  "bench_ablation_order_elision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_order_elision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
