file(REMOVE_RECURSE
  "libhq_bench_workload.a"
)
