file(REMOVE_RECURSE
  "CMakeFiles/hq_bench_workload.dir/workload.cc.o"
  "CMakeFiles/hq_bench_workload.dir/workload.cc.o.d"
  "libhq_bench_workload.a"
  "libhq_bench_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_bench_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
