# Empty compiler generated dependencies file for hq_bench_workload.
# This may be replaced when dependencies are built.
