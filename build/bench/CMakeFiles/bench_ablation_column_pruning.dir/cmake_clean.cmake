file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_column_pruning.dir/bench_ablation_column_pruning.cc.o"
  "CMakeFiles/bench_ablation_column_pruning.dir/bench_ablation_column_pruning.cc.o.d"
  "bench_ablation_column_pruning"
  "bench_ablation_column_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_column_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
