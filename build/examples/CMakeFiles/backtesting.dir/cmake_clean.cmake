file(REMOVE_RECURSE
  "CMakeFiles/backtesting.dir/backtesting.cpp.o"
  "CMakeFiles/backtesting.dir/backtesting.cpp.o.d"
  "backtesting"
  "backtesting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backtesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
