# Empty dependencies file for backtesting.
# This may be replaced when dependencies are built.
