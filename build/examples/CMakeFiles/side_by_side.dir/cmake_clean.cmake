file(REMOVE_RECURSE
  "CMakeFiles/side_by_side.dir/side_by_side.cpp.o"
  "CMakeFiles/side_by_side.dir/side_by_side.cpp.o.d"
  "side_by_side"
  "side_by_side.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/side_by_side.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
