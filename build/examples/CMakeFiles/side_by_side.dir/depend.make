# Empty dependencies file for side_by_side.
# This may be replaced when dependencies are built.
