# Empty compiler generated dependencies file for market_data_asof.
# This may be replaced when dependencies are built.
