file(REMOVE_RECURSE
  "CMakeFiles/market_data_asof.dir/market_data_asof.cpp.o"
  "CMakeFiles/market_data_asof.dir/market_data_asof.cpp.o.d"
  "market_data_asof"
  "market_data_asof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_data_asof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
