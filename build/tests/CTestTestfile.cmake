# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/qval_test[1]_include.cmake")
include("/root/repo/build/tests/qlang_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/qlang_parser_test[1]_include.cmake")
include("/root/repo/build/tests/kdb_interp_test[1]_include.cmake")
include("/root/repo/build/tests/kdb_query_test[1]_include.cmake")
include("/root/repo/build/tests/kdb_joins_test[1]_include.cmake")
include("/root/repo/build/tests/sqldb_test[1]_include.cmake")
include("/root/repo/build/tests/translator_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/endpoint_test[1]_include.cmake")
include("/root/repo/build/tests/side_by_side_test[1]_include.cmake")
include("/root/repo/build/tests/xtra_test[1]_include.cmake")
include("/root/repo/build/tests/xformer_test[1]_include.cmake")
include("/root/repo/build/tests/serializer_test[1]_include.cmake")
include("/root/repo/build/tests/kdb_property_test[1]_include.cmake")
include("/root/repo/build/tests/qipc_property_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/side_by_side_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/kdb_adverbs_test[1]_include.cmake")
include("/root/repo/build/tests/sqldb_property_test[1]_include.cmake")
include("/root/repo/build/tests/qlang_infix_test[1]_include.cmake")
include("/root/repo/build/tests/translator_errors_test[1]_include.cmake")
