file(REMOVE_RECURSE
  "CMakeFiles/kdb_joins_test.dir/kdb_joins_test.cc.o"
  "CMakeFiles/kdb_joins_test.dir/kdb_joins_test.cc.o.d"
  "kdb_joins_test"
  "kdb_joins_test.pdb"
  "kdb_joins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdb_joins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
