# Empty compiler generated dependencies file for kdb_joins_test.
# This may be replaced when dependencies are built.
