# Empty compiler generated dependencies file for qlang_lexer_test.
# This may be replaced when dependencies are built.
