file(REMOVE_RECURSE
  "CMakeFiles/qlang_lexer_test.dir/qlang_lexer_test.cc.o"
  "CMakeFiles/qlang_lexer_test.dir/qlang_lexer_test.cc.o.d"
  "qlang_lexer_test"
  "qlang_lexer_test.pdb"
  "qlang_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qlang_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
