# Empty dependencies file for sqldb_property_test.
# This may be replaced when dependencies are built.
