file(REMOVE_RECURSE
  "CMakeFiles/sqldb_property_test.dir/sqldb_property_test.cc.o"
  "CMakeFiles/sqldb_property_test.dir/sqldb_property_test.cc.o.d"
  "sqldb_property_test"
  "sqldb_property_test.pdb"
  "sqldb_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqldb_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
