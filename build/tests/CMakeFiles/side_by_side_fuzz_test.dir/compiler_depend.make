# Empty compiler generated dependencies file for side_by_side_fuzz_test.
# This may be replaced when dependencies are built.
