file(REMOVE_RECURSE
  "CMakeFiles/side_by_side_fuzz_test.dir/side_by_side_fuzz_test.cc.o"
  "CMakeFiles/side_by_side_fuzz_test.dir/side_by_side_fuzz_test.cc.o.d"
  "side_by_side_fuzz_test"
  "side_by_side_fuzz_test.pdb"
  "side_by_side_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/side_by_side_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
