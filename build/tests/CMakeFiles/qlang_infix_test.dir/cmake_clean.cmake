file(REMOVE_RECURSE
  "CMakeFiles/qlang_infix_test.dir/qlang_infix_test.cc.o"
  "CMakeFiles/qlang_infix_test.dir/qlang_infix_test.cc.o.d"
  "qlang_infix_test"
  "qlang_infix_test.pdb"
  "qlang_infix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qlang_infix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
