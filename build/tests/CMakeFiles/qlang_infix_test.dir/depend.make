# Empty dependencies file for qlang_infix_test.
# This may be replaced when dependencies are built.
