# Empty compiler generated dependencies file for qlang_parser_test.
# This may be replaced when dependencies are built.
