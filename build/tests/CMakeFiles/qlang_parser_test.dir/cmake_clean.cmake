file(REMOVE_RECURSE
  "CMakeFiles/qlang_parser_test.dir/qlang_parser_test.cc.o"
  "CMakeFiles/qlang_parser_test.dir/qlang_parser_test.cc.o.d"
  "qlang_parser_test"
  "qlang_parser_test.pdb"
  "qlang_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qlang_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
