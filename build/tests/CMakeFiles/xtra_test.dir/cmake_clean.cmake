file(REMOVE_RECURSE
  "CMakeFiles/xtra_test.dir/xtra_test.cc.o"
  "CMakeFiles/xtra_test.dir/xtra_test.cc.o.d"
  "xtra_test"
  "xtra_test.pdb"
  "xtra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
