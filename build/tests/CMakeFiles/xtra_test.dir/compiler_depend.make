# Empty compiler generated dependencies file for xtra_test.
# This may be replaced when dependencies are built.
