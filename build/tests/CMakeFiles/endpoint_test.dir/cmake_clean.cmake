file(REMOVE_RECURSE
  "CMakeFiles/endpoint_test.dir/endpoint_test.cc.o"
  "CMakeFiles/endpoint_test.dir/endpoint_test.cc.o.d"
  "endpoint_test"
  "endpoint_test.pdb"
  "endpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
