# Empty dependencies file for sqldb_test.
# This may be replaced when dependencies are built.
