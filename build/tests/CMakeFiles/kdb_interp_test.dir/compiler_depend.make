# Empty compiler generated dependencies file for kdb_interp_test.
# This may be replaced when dependencies are built.
