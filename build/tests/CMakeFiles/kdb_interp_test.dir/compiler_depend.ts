# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for kdb_interp_test.
