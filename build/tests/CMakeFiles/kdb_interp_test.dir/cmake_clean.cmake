file(REMOVE_RECURSE
  "CMakeFiles/kdb_interp_test.dir/kdb_interp_test.cc.o"
  "CMakeFiles/kdb_interp_test.dir/kdb_interp_test.cc.o.d"
  "kdb_interp_test"
  "kdb_interp_test.pdb"
  "kdb_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdb_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
