file(REMOVE_RECURSE
  "CMakeFiles/qipc_property_test.dir/qipc_property_test.cc.o"
  "CMakeFiles/qipc_property_test.dir/qipc_property_test.cc.o.d"
  "qipc_property_test"
  "qipc_property_test.pdb"
  "qipc_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qipc_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
