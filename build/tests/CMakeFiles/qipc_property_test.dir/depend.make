# Empty dependencies file for qipc_property_test.
# This may be replaced when dependencies are built.
