
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kdb_adverbs_test.cc" "tests/CMakeFiles/kdb_adverbs_test.dir/kdb_adverbs_test.cc.o" "gcc" "tests/CMakeFiles/kdb_adverbs_test.dir/kdb_adverbs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testing/CMakeFiles/hq_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algebrizer/CMakeFiles/hq_algebrizer.dir/DependInfo.cmake"
  "/root/repo/build/src/xformer/CMakeFiles/hq_xformer.dir/DependInfo.cmake"
  "/root/repo/build/src/serializer/CMakeFiles/hq_serializer.dir/DependInfo.cmake"
  "/root/repo/build/src/xtra/CMakeFiles/hq_xtra.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/hq_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/sqldb/CMakeFiles/hq_sqldb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kdb/CMakeFiles/hq_kdb.dir/DependInfo.cmake"
  "/root/repo/build/src/qlang/CMakeFiles/hq_qlang.dir/DependInfo.cmake"
  "/root/repo/build/src/qval/CMakeFiles/hq_qval.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
