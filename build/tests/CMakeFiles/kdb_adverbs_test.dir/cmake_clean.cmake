file(REMOVE_RECURSE
  "CMakeFiles/kdb_adverbs_test.dir/kdb_adverbs_test.cc.o"
  "CMakeFiles/kdb_adverbs_test.dir/kdb_adverbs_test.cc.o.d"
  "kdb_adverbs_test"
  "kdb_adverbs_test.pdb"
  "kdb_adverbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdb_adverbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
