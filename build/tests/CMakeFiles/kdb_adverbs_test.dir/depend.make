# Empty dependencies file for kdb_adverbs_test.
# This may be replaced when dependencies are built.
