file(REMOVE_RECURSE
  "CMakeFiles/translator_errors_test.dir/translator_errors_test.cc.o"
  "CMakeFiles/translator_errors_test.dir/translator_errors_test.cc.o.d"
  "translator_errors_test"
  "translator_errors_test.pdb"
  "translator_errors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translator_errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
