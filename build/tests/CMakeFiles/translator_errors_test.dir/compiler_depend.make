# Empty compiler generated dependencies file for translator_errors_test.
# This may be replaced when dependencies are built.
