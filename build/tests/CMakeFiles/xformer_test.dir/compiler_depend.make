# Empty compiler generated dependencies file for xformer_test.
# This may be replaced when dependencies are built.
