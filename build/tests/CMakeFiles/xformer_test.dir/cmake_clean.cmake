file(REMOVE_RECURSE
  "CMakeFiles/xformer_test.dir/xformer_test.cc.o"
  "CMakeFiles/xformer_test.dir/xformer_test.cc.o.d"
  "xformer_test"
  "xformer_test.pdb"
  "xformer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xformer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
