# Empty dependencies file for kdb_property_test.
# This may be replaced when dependencies are built.
