file(REMOVE_RECURSE
  "CMakeFiles/kdb_property_test.dir/kdb_property_test.cc.o"
  "CMakeFiles/kdb_property_test.dir/kdb_property_test.cc.o.d"
  "kdb_property_test"
  "kdb_property_test.pdb"
  "kdb_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdb_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
