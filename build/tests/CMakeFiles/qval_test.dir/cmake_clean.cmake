file(REMOVE_RECURSE
  "CMakeFiles/qval_test.dir/qval_test.cc.o"
  "CMakeFiles/qval_test.dir/qval_test.cc.o.d"
  "qval_test"
  "qval_test.pdb"
  "qval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
