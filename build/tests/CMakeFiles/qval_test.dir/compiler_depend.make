# Empty compiler generated dependencies file for qval_test.
# This may be replaced when dependencies are built.
