# Empty dependencies file for kdb_query_test.
# This may be replaced when dependencies are built.
