file(REMOVE_RECURSE
  "CMakeFiles/kdb_query_test.dir/kdb_query_test.cc.o"
  "CMakeFiles/kdb_query_test.dir/kdb_query_test.cc.o.d"
  "kdb_query_test"
  "kdb_query_test.pdb"
  "kdb_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdb_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
