# Empty dependencies file for hq_kdb.
# This may be replaced when dependencies are built.
