file(REMOVE_RECURSE
  "libhq_kdb.a"
)
