
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kdb/builtins.cc" "src/kdb/CMakeFiles/hq_kdb.dir/builtins.cc.o" "gcc" "src/kdb/CMakeFiles/hq_kdb.dir/builtins.cc.o.d"
  "/root/repo/src/kdb/interp.cc" "src/kdb/CMakeFiles/hq_kdb.dir/interp.cc.o" "gcc" "src/kdb/CMakeFiles/hq_kdb.dir/interp.cc.o.d"
  "/root/repo/src/kdb/joins.cc" "src/kdb/CMakeFiles/hq_kdb.dir/joins.cc.o" "gcc" "src/kdb/CMakeFiles/hq_kdb.dir/joins.cc.o.d"
  "/root/repo/src/kdb/query.cc" "src/kdb/CMakeFiles/hq_kdb.dir/query.cc.o" "gcc" "src/kdb/CMakeFiles/hq_kdb.dir/query.cc.o.d"
  "/root/repo/src/kdb/value_ops.cc" "src/kdb/CMakeFiles/hq_kdb.dir/value_ops.cc.o" "gcc" "src/kdb/CMakeFiles/hq_kdb.dir/value_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/qval/CMakeFiles/hq_qval.dir/DependInfo.cmake"
  "/root/repo/build/src/qlang/CMakeFiles/hq_qlang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
