file(REMOVE_RECURSE
  "CMakeFiles/hq_kdb.dir/builtins.cc.o"
  "CMakeFiles/hq_kdb.dir/builtins.cc.o.d"
  "CMakeFiles/hq_kdb.dir/interp.cc.o"
  "CMakeFiles/hq_kdb.dir/interp.cc.o.d"
  "CMakeFiles/hq_kdb.dir/joins.cc.o"
  "CMakeFiles/hq_kdb.dir/joins.cc.o.d"
  "CMakeFiles/hq_kdb.dir/query.cc.o"
  "CMakeFiles/hq_kdb.dir/query.cc.o.d"
  "CMakeFiles/hq_kdb.dir/value_ops.cc.o"
  "CMakeFiles/hq_kdb.dir/value_ops.cc.o.d"
  "libhq_kdb.a"
  "libhq_kdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_kdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
