file(REMOVE_RECURSE
  "CMakeFiles/hq_serializer.dir/serializer.cc.o"
  "CMakeFiles/hq_serializer.dir/serializer.cc.o.d"
  "libhq_serializer.a"
  "libhq_serializer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_serializer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
