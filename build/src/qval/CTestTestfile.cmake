# CMake generated Testfile for 
# Source directory: /root/repo/src/qval
# Build directory: /root/repo/build/src/qval
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
