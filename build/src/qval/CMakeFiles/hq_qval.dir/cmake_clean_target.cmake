file(REMOVE_RECURSE
  "libhq_qval.a"
)
