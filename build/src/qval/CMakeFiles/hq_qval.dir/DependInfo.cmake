
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qval/qtype.cc" "src/qval/CMakeFiles/hq_qval.dir/qtype.cc.o" "gcc" "src/qval/CMakeFiles/hq_qval.dir/qtype.cc.o.d"
  "/root/repo/src/qval/qvalue.cc" "src/qval/CMakeFiles/hq_qval.dir/qvalue.cc.o" "gcc" "src/qval/CMakeFiles/hq_qval.dir/qvalue.cc.o.d"
  "/root/repo/src/qval/temporal.cc" "src/qval/CMakeFiles/hq_qval.dir/temporal.cc.o" "gcc" "src/qval/CMakeFiles/hq_qval.dir/temporal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
