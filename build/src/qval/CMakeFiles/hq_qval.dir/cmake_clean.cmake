file(REMOVE_RECURSE
  "CMakeFiles/hq_qval.dir/qtype.cc.o"
  "CMakeFiles/hq_qval.dir/qtype.cc.o.d"
  "CMakeFiles/hq_qval.dir/qvalue.cc.o"
  "CMakeFiles/hq_qval.dir/qvalue.cc.o.d"
  "CMakeFiles/hq_qval.dir/temporal.cc.o"
  "CMakeFiles/hq_qval.dir/temporal.cc.o.d"
  "libhq_qval.a"
  "libhq_qval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_qval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
