# Empty compiler generated dependencies file for hq_qval.
# This may be replaced when dependencies are built.
