file(REMOVE_RECURSE
  "CMakeFiles/hq_net.dir/tcp.cc.o"
  "CMakeFiles/hq_net.dir/tcp.cc.o.d"
  "libhq_net.a"
  "libhq_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
