file(REMOVE_RECURSE
  "libhq_common.a"
)
