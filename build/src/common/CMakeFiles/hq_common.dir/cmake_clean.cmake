file(REMOVE_RECURSE
  "CMakeFiles/hq_common.dir/bytes.cc.o"
  "CMakeFiles/hq_common.dir/bytes.cc.o.d"
  "CMakeFiles/hq_common.dir/logging.cc.o"
  "CMakeFiles/hq_common.dir/logging.cc.o.d"
  "CMakeFiles/hq_common.dir/status.cc.o"
  "CMakeFiles/hq_common.dir/status.cc.o.d"
  "CMakeFiles/hq_common.dir/strings.cc.o"
  "CMakeFiles/hq_common.dir/strings.cc.o.d"
  "libhq_common.a"
  "libhq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
