# Empty compiler generated dependencies file for hq_algebrizer.
# This may be replaced when dependencies are built.
