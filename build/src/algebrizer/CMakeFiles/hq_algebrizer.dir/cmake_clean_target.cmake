file(REMOVE_RECURSE
  "libhq_algebrizer.a"
)
