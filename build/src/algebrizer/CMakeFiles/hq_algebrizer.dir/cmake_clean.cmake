file(REMOVE_RECURSE
  "CMakeFiles/hq_algebrizer.dir/binder.cc.o"
  "CMakeFiles/hq_algebrizer.dir/binder.cc.o.d"
  "CMakeFiles/hq_algebrizer.dir/scopes.cc.o"
  "CMakeFiles/hq_algebrizer.dir/scopes.cc.o.d"
  "libhq_algebrizer.a"
  "libhq_algebrizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_algebrizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
