
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cross_compiler.cc" "src/core/CMakeFiles/hq_core.dir/cross_compiler.cc.o" "gcc" "src/core/CMakeFiles/hq_core.dir/cross_compiler.cc.o.d"
  "/root/repo/src/core/endpoint.cc" "src/core/CMakeFiles/hq_core.dir/endpoint.cc.o" "gcc" "src/core/CMakeFiles/hq_core.dir/endpoint.cc.o.d"
  "/root/repo/src/core/hyperq.cc" "src/core/CMakeFiles/hq_core.dir/hyperq.cc.o" "gcc" "src/core/CMakeFiles/hq_core.dir/hyperq.cc.o.d"
  "/root/repo/src/core/loader.cc" "src/core/CMakeFiles/hq_core.dir/loader.cc.o" "gcc" "src/core/CMakeFiles/hq_core.dir/loader.cc.o.d"
  "/root/repo/src/core/mdi.cc" "src/core/CMakeFiles/hq_core.dir/mdi.cc.o" "gcc" "src/core/CMakeFiles/hq_core.dir/mdi.cc.o.d"
  "/root/repo/src/core/metadata_cache.cc" "src/core/CMakeFiles/hq_core.dir/metadata_cache.cc.o" "gcc" "src/core/CMakeFiles/hq_core.dir/metadata_cache.cc.o.d"
  "/root/repo/src/core/plugins.cc" "src/core/CMakeFiles/hq_core.dir/plugins.cc.o" "gcc" "src/core/CMakeFiles/hq_core.dir/plugins.cc.o.d"
  "/root/repo/src/core/query_translator.cc" "src/core/CMakeFiles/hq_core.dir/query_translator.cc.o" "gcc" "src/core/CMakeFiles/hq_core.dir/query_translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/qval/CMakeFiles/hq_qval.dir/DependInfo.cmake"
  "/root/repo/build/src/qlang/CMakeFiles/hq_qlang.dir/DependInfo.cmake"
  "/root/repo/build/src/xtra/CMakeFiles/hq_xtra.dir/DependInfo.cmake"
  "/root/repo/build/src/algebrizer/CMakeFiles/hq_algebrizer.dir/DependInfo.cmake"
  "/root/repo/build/src/xformer/CMakeFiles/hq_xformer.dir/DependInfo.cmake"
  "/root/repo/build/src/serializer/CMakeFiles/hq_serializer.dir/DependInfo.cmake"
  "/root/repo/build/src/sqldb/CMakeFiles/hq_sqldb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/hq_protocol.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
