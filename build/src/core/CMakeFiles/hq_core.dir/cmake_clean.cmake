file(REMOVE_RECURSE
  "CMakeFiles/hq_core.dir/cross_compiler.cc.o"
  "CMakeFiles/hq_core.dir/cross_compiler.cc.o.d"
  "CMakeFiles/hq_core.dir/endpoint.cc.o"
  "CMakeFiles/hq_core.dir/endpoint.cc.o.d"
  "CMakeFiles/hq_core.dir/hyperq.cc.o"
  "CMakeFiles/hq_core.dir/hyperq.cc.o.d"
  "CMakeFiles/hq_core.dir/loader.cc.o"
  "CMakeFiles/hq_core.dir/loader.cc.o.d"
  "CMakeFiles/hq_core.dir/mdi.cc.o"
  "CMakeFiles/hq_core.dir/mdi.cc.o.d"
  "CMakeFiles/hq_core.dir/metadata_cache.cc.o"
  "CMakeFiles/hq_core.dir/metadata_cache.cc.o.d"
  "CMakeFiles/hq_core.dir/plugins.cc.o"
  "CMakeFiles/hq_core.dir/plugins.cc.o.d"
  "CMakeFiles/hq_core.dir/query_translator.cc.o"
  "CMakeFiles/hq_core.dir/query_translator.cc.o.d"
  "libhq_core.a"
  "libhq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
