file(REMOVE_RECURSE
  "libhq_protocol.a"
)
