# Empty compiler generated dependencies file for hq_protocol.
# This may be replaced when dependencies are built.
