
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/pgwire/pgwire.cc" "src/protocol/CMakeFiles/hq_protocol.dir/pgwire/pgwire.cc.o" "gcc" "src/protocol/CMakeFiles/hq_protocol.dir/pgwire/pgwire.cc.o.d"
  "/root/repo/src/protocol/qipc/compress.cc" "src/protocol/CMakeFiles/hq_protocol.dir/qipc/compress.cc.o" "gcc" "src/protocol/CMakeFiles/hq_protocol.dir/qipc/compress.cc.o.d"
  "/root/repo/src/protocol/qipc/qipc.cc" "src/protocol/CMakeFiles/hq_protocol.dir/qipc/qipc.cc.o" "gcc" "src/protocol/CMakeFiles/hq_protocol.dir/qipc/qipc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/qval/CMakeFiles/hq_qval.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sqldb/CMakeFiles/hq_sqldb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
