file(REMOVE_RECURSE
  "CMakeFiles/hq_protocol.dir/pgwire/pgwire.cc.o"
  "CMakeFiles/hq_protocol.dir/pgwire/pgwire.cc.o.d"
  "CMakeFiles/hq_protocol.dir/qipc/compress.cc.o"
  "CMakeFiles/hq_protocol.dir/qipc/compress.cc.o.d"
  "CMakeFiles/hq_protocol.dir/qipc/qipc.cc.o"
  "CMakeFiles/hq_protocol.dir/qipc/qipc.cc.o.d"
  "libhq_protocol.a"
  "libhq_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
