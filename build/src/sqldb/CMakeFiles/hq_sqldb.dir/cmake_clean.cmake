file(REMOVE_RECURSE
  "CMakeFiles/hq_sqldb.dir/ast.cc.o"
  "CMakeFiles/hq_sqldb.dir/ast.cc.o.d"
  "CMakeFiles/hq_sqldb.dir/catalog.cc.o"
  "CMakeFiles/hq_sqldb.dir/catalog.cc.o.d"
  "CMakeFiles/hq_sqldb.dir/database.cc.o"
  "CMakeFiles/hq_sqldb.dir/database.cc.o.d"
  "CMakeFiles/hq_sqldb.dir/eval.cc.o"
  "CMakeFiles/hq_sqldb.dir/eval.cc.o.d"
  "CMakeFiles/hq_sqldb.dir/exec.cc.o"
  "CMakeFiles/hq_sqldb.dir/exec.cc.o.d"
  "CMakeFiles/hq_sqldb.dir/relation.cc.o"
  "CMakeFiles/hq_sqldb.dir/relation.cc.o.d"
  "CMakeFiles/hq_sqldb.dir/sql_lexer.cc.o"
  "CMakeFiles/hq_sqldb.dir/sql_lexer.cc.o.d"
  "CMakeFiles/hq_sqldb.dir/sql_parser.cc.o"
  "CMakeFiles/hq_sqldb.dir/sql_parser.cc.o.d"
  "CMakeFiles/hq_sqldb.dir/types.cc.o"
  "CMakeFiles/hq_sqldb.dir/types.cc.o.d"
  "libhq_sqldb.a"
  "libhq_sqldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_sqldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
