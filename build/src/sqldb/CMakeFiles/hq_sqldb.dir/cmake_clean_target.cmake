file(REMOVE_RECURSE
  "libhq_sqldb.a"
)
