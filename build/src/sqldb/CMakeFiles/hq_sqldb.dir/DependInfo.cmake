
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqldb/ast.cc" "src/sqldb/CMakeFiles/hq_sqldb.dir/ast.cc.o" "gcc" "src/sqldb/CMakeFiles/hq_sqldb.dir/ast.cc.o.d"
  "/root/repo/src/sqldb/catalog.cc" "src/sqldb/CMakeFiles/hq_sqldb.dir/catalog.cc.o" "gcc" "src/sqldb/CMakeFiles/hq_sqldb.dir/catalog.cc.o.d"
  "/root/repo/src/sqldb/database.cc" "src/sqldb/CMakeFiles/hq_sqldb.dir/database.cc.o" "gcc" "src/sqldb/CMakeFiles/hq_sqldb.dir/database.cc.o.d"
  "/root/repo/src/sqldb/eval.cc" "src/sqldb/CMakeFiles/hq_sqldb.dir/eval.cc.o" "gcc" "src/sqldb/CMakeFiles/hq_sqldb.dir/eval.cc.o.d"
  "/root/repo/src/sqldb/exec.cc" "src/sqldb/CMakeFiles/hq_sqldb.dir/exec.cc.o" "gcc" "src/sqldb/CMakeFiles/hq_sqldb.dir/exec.cc.o.d"
  "/root/repo/src/sqldb/relation.cc" "src/sqldb/CMakeFiles/hq_sqldb.dir/relation.cc.o" "gcc" "src/sqldb/CMakeFiles/hq_sqldb.dir/relation.cc.o.d"
  "/root/repo/src/sqldb/sql_lexer.cc" "src/sqldb/CMakeFiles/hq_sqldb.dir/sql_lexer.cc.o" "gcc" "src/sqldb/CMakeFiles/hq_sqldb.dir/sql_lexer.cc.o.d"
  "/root/repo/src/sqldb/sql_parser.cc" "src/sqldb/CMakeFiles/hq_sqldb.dir/sql_parser.cc.o" "gcc" "src/sqldb/CMakeFiles/hq_sqldb.dir/sql_parser.cc.o.d"
  "/root/repo/src/sqldb/types.cc" "src/sqldb/CMakeFiles/hq_sqldb.dir/types.cc.o" "gcc" "src/sqldb/CMakeFiles/hq_sqldb.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/qval/CMakeFiles/hq_qval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
