# Empty compiler generated dependencies file for hq_sqldb.
# This may be replaced when dependencies are built.
