# CMake generated Testfile for 
# Source directory: /root/repo/src/xtra
# Build directory: /root/repo/build/src/xtra
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
