file(REMOVE_RECURSE
  "libhq_xtra.a"
)
