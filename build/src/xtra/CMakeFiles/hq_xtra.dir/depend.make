# Empty dependencies file for hq_xtra.
# This may be replaced when dependencies are built.
