file(REMOVE_RECURSE
  "CMakeFiles/hq_xtra.dir/operator.cc.o"
  "CMakeFiles/hq_xtra.dir/operator.cc.o.d"
  "CMakeFiles/hq_xtra.dir/scalar.cc.o"
  "CMakeFiles/hq_xtra.dir/scalar.cc.o.d"
  "libhq_xtra.a"
  "libhq_xtra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_xtra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
