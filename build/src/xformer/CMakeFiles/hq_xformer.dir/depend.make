# Empty dependencies file for hq_xformer.
# This may be replaced when dependencies are built.
