file(REMOVE_RECURSE
  "libhq_xformer.a"
)
