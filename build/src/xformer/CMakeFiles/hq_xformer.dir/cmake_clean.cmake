file(REMOVE_RECURSE
  "CMakeFiles/hq_xformer.dir/xformer.cc.o"
  "CMakeFiles/hq_xformer.dir/xformer.cc.o.d"
  "libhq_xformer.a"
  "libhq_xformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_xformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
