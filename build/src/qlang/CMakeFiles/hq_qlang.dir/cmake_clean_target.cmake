file(REMOVE_RECURSE
  "libhq_qlang.a"
)
