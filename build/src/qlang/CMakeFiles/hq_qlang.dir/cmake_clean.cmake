file(REMOVE_RECURSE
  "CMakeFiles/hq_qlang.dir/ast.cc.o"
  "CMakeFiles/hq_qlang.dir/ast.cc.o.d"
  "CMakeFiles/hq_qlang.dir/lexer.cc.o"
  "CMakeFiles/hq_qlang.dir/lexer.cc.o.d"
  "CMakeFiles/hq_qlang.dir/parser.cc.o"
  "CMakeFiles/hq_qlang.dir/parser.cc.o.d"
  "libhq_qlang.a"
  "libhq_qlang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_qlang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
