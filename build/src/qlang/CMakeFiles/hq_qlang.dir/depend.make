# Empty dependencies file for hq_qlang.
# This may be replaced when dependencies are built.
