# Empty dependencies file for hq_testing.
# This may be replaced when dependencies are built.
