file(REMOVE_RECURSE
  "CMakeFiles/hq_testing.dir/market_data.cc.o"
  "CMakeFiles/hq_testing.dir/market_data.cc.o.d"
  "CMakeFiles/hq_testing.dir/side_by_side.cc.o"
  "CMakeFiles/hq_testing.dir/side_by_side.cc.o.d"
  "libhq_testing.a"
  "libhq_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
