file(REMOVE_RECURSE
  "libhq_testing.a"
)
