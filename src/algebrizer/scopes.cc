#include "algebrizer/scopes.h"

#include "common/strings.h"

namespace hyperq {

Result<VarBinding> VariableScopes::Lookup(const std::string& name) const {
  // Local scopes shadow session which shadows server (Figure 3).
  for (auto it = locals_.rbegin(); it != locals_.rend(); ++it) {
    auto found = it->find(name);
    if (found != it->end()) return found->second;
  }
  auto s = session_.find(name);
  if (s != session_.end()) return s->second;
  if (mdi_ != nullptr && mdi_->HasTable(name)) {
    VarBinding b;
    b.kind = VarBinding::Kind::kRelation;
    b.table = name;
    return b;
  }
  return NotFound(StrCat(
      "'", name,
      "' is not defined in any scope (local, session, or server catalog)"));
}

void VariableScopes::Upsert(const std::string& name, VarBinding binding) {
  if (!locals_.empty()) {
    // Local upserts never get promoted to higher scopes (§3.2.3).
    locals_.back()[name] = std::move(binding);
    return;
  }
  session_[name] = std::move(binding);
}

void VariableScopes::UpsertSession(const std::string& name,
                                   VarBinding binding) {
  session_[name] = std::move(binding);
}

}  // namespace hyperq
