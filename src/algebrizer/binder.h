#ifndef HYPERQ_ALGEBRIZER_BINDER_H_
#define HYPERQ_ALGEBRIZER_BINDER_H_

#include <string>
#include <vector>

#include "algebrizer/metadata.h"
#include "algebrizer/scopes.h"
#include "common/status.h"
#include "qlang/ast.h"
#include "xtra/operator.h"

namespace hyperq {

/// How the SQL row set must be re-shaped into the Q value the application
/// expects (driven by the template kind: select yields tables, exec lists
/// or atoms, select-by keyed tables).
enum class ResultShape { kTable, kKeyedTable, kList, kAtom, kDict };

/// The output of algebrization for one Q expression: an XTRA tree plus the
/// result-shaping metadata the Cross Compiler needs (§3.4).
struct BoundQuery {
  xtra::XtraPtr root;
  ResultShape shape = ResultShape::kTable;
  std::vector<std::string> key_columns;  ///< for kKeyedTable
};

/// Side-channel the translation cache uses to learn what a binding run
/// depended on: which names were resolved (and whether any came from a
/// session/local scope rather than the catalog), which backend tables the
/// query references, and which lifted parameters were consumed as
/// structural values (take counts, window sizes, sort columns, casts) and
/// must therefore be pinned to their exact values in the cache entry.
struct BindTrace {
  bool used_scope_var = false;
  std::vector<std::string> ref_names;   ///< names resolved through scopes
  std::vector<std::string> ref_tables;  ///< backend tables referenced
  std::vector<int> pinned_slots;        ///< param slots read as values
};

/// The binding half of the Algebrizer (§3.2.2): resolves names through the
/// scope hierarchy and the MDI, derives and checks operator properties
/// bottom-up, and maps Q operators to XTRA expressions. Purely functional
/// over the AST: materialization decisions (assignments, function
/// unrolling) are made by the Query Translator which drives the binder.
class Binder {
 public:
  Binder(MetadataInterface* mdi, VariableScopes* scopes,
         BindTrace* trace = nullptr)
      : mdi_(mdi), scopes_(scopes), trace_(trace) {}

  /// Binds a table- or value-producing Q expression into XTRA.
  Result<BoundQuery> BindQuery(const AstPtr& node);

  /// Binds an expression expected to evaluate to a constant (scalar or
  /// list) using only scope lookups — no backend columns in scope. Used by
  /// the translator for scalar variable assignments.
  Result<QValue> BindConstant(const AstPtr& node);

 private:
  friend class BinderTestPeer;

  /// Table-producing expressions: query templates, table variables, joins,
  /// sorts, take/drop.
  Result<xtra::XtraPtr> BindTableExpr(const AstPtr& node);

  /// Scalar expressions over the columns of `input` (may be null for
  /// constant-only contexts).
  Result<xtra::ScalarPtr> BindScalar(const AstPtr& node,
                                     const xtra::XtraOp* input);

  Result<xtra::XtraPtr> BindQueryTemplate(const AstNode& node);
  Result<xtra::XtraPtr> BindAsOfJoin(const AstNode& apply);
  Result<xtra::XtraPtr> BindEquiJoinCall(const AstNode& apply);
  Result<xtra::XtraPtr> BindKeyedJoin(const std::string& op,
                                      const AstPtr& left,
                                      const AstPtr& right);
  Result<xtra::XtraPtr> BindUnionJoin(const AstPtr& left,
                                      const AstPtr& right);
  Result<xtra::XtraPtr> BindSortTable(const std::string& op,
                                      const AstPtr& cols,
                                      const AstPtr& table);
  Result<xtra::XtraPtr> BindTake(const AstPtr& count, const AstPtr& table);

  /// Resolves a table expression that must be keyed (for lj/ij): returns
  /// the tree and its key column names.
  struct KeyedTable {
    xtra::XtraPtr op;
    std::vector<std::string> keys;
  };
  Result<KeyedTable> BindKeyedTable(const AstPtr& node);

  Result<xtra::ScalarPtr> BindDyadScalar(const AstNode& node,
                                         const xtra::XtraOp* input);
  Result<xtra::ScalarPtr> BindApplyScalar(const AstNode& node,
                                          const xtra::XtraOp* input);
  Result<xtra::ScalarPtr> BindNamedCall(const std::string& name,
                                        const std::vector<AstPtr>& args,
                                        const xtra::XtraOp* input,
                                        SourceLoc loc);

  /// Window helper: f OVER (ORDER BY child ordcol) — requires the input to
  /// carry an implicit order column.
  Result<xtra::ScalarPtr> MakeOrderedWindow(
      const std::string& func, std::vector<xtra::ScalarPtr> args,
      const xtra::XtraOp* input, QType type, bool has_frame = false,
      int64_t frame_preceding = 0);

  xtra::ColId NextId() { return next_col_id_++; }

  /// Scope lookup recording the dependency into the trace (if any).
  Result<VarBinding> LookupVar(const std::string& name);
  /// Reads a literal (or lifted-parameter) symbol list, pinning consumed
  /// parameter slots.
  Result<std::vector<std::string>> SymbolListOf(const AstPtr& node,
                                                const char* what);
  /// Records that a lifted parameter's value was consumed structurally.
  void PinParam(const AstNode& node);

  MetadataInterface* mdi_;
  VariableScopes* scopes_;
  BindTrace* trace_;
  int next_col_id_ = 1;
};

/// True when the expression tree contains an aggregate node.
bool ContainsAggregate(const xtra::ScalarPtr& e);

/// Derives the q result type of a scalar function application.
QType DeriveFuncType(const std::string& func,
                     const std::vector<xtra::ScalarPtr>& args);

}  // namespace hyperq

#endif  // HYPERQ_ALGEBRIZER_BINDER_H_
