#ifndef HYPERQ_ALGEBRIZER_METADATA_H_
#define HYPERQ_ALGEBRIZER_METADATA_H_

#include <string>
#include <vector>

#include "common/sql_markers.h"
#include "common/status.h"
#include "qval/qtype.h"

namespace hyperq {

/// Name of the implicit order column Hyper-Q adds to backend tables to
/// preserve Q's ordered-list semantics in SQL (§2.2, §3.3). Shared with
/// the serializer and the backend kernel canonicalizer via sql_markers.h.
inline constexpr const char* kOrdColName = kSqlOrdColName;

struct ColumnMetadata {
  std::string name;
  QType type = QType::kUnary;
};

/// Metadata for one backend relation, as retrieved through the MetaData
/// Interface (PG catalog lookups in the paper, §3.2.3). Keys and sort order
/// feed the binder's property derivation (keyed tables for lj, ordering).
struct TableMetadata {
  std::string name;
  std::vector<ColumnMetadata> columns;  ///< excludes the ordcol
  std::vector<std::string> key_columns;
  std::vector<std::string> sort_keys;
  bool has_ordcol = false;

  const ColumnMetadata* FindColumn(const std::string& col) const {
    for (const auto& c : columns) {
      if (c.name == col) return &c;
    }
    return nullptr;
  }
};

/// The MDI: resolves server-scope variables to backend catalog objects.
/// Implementations: the direct sqldb-backed MDI and the caching decorator
/// (core/metadata_cache.h) whose effect Figure 6's setup enables.
class MetadataInterface {
 public:
  virtual ~MetadataInterface() = default;

  virtual Result<TableMetadata> LookupTable(const std::string& name) = 0;
  virtual bool HasTable(const std::string& name) = 0;
};

}  // namespace hyperq

#endif  // HYPERQ_ALGEBRIZER_METADATA_H_
