#ifndef HYPERQ_ALGEBRIZER_SCOPES_H_
#define HYPERQ_ALGEBRIZER_SCOPES_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "algebrizer/metadata.h"
#include "qval/qvalue.h"

namespace hyperq {

/// What a Q variable name is bound to during translation.
struct VarBinding {
  enum class Kind {
    kScalar,    ///< constant value held in Hyper-Q's variable store
    kRelation,  ///< backend table/temp table (physical materialization)
    kFunction,  ///< lambda stored as text (§4.3)
  };
  Kind kind = Kind::kScalar;
  QValue scalar;
  std::string table;  ///< backend relation name for kRelation
  QValue function;    ///< QLambda value for kFunction
};

/// The three-level variable scope hierarchy of §3.2.3 / Figure 3:
///   local scope (function bodies) -> session scope -> server scope (MDI).
/// Lookups walk up the hierarchy; upserts inside a function stay local
/// (never promoted), upserts outside go to the session scope. Session
/// variables are promoted to the server on session destruction — the
/// platform (core/session) performs that step since it owns the backend.
class VariableScopes {
 public:
  explicit VariableScopes(MetadataInterface* mdi) : mdi_(mdi) {}

  /// Enters/leaves a function body's local scope.
  void PushLocal() { locals_.emplace_back(); }
  void PopLocal() { locals_.pop_back(); }
  bool InFunction() const { return !locals_.empty(); }

  /// Resolves a name: innermost local scopes first, then session, then the
  /// server scope through the MDI (tables become kRelation bindings).
  Result<VarBinding> Lookup(const std::string& name) const;

  /// True when `name` resolves in a session or local scope, i.e. BEFORE the
  /// server catalog. The translation cache uses this to reject cached
  /// entries whose referenced names have since been shadowed by variables.
  bool IsShadowed(const std::string& name) const {
    for (auto it = locals_.rbegin(); it != locals_.rend(); ++it) {
      if (it->count(name) != 0) return true;
    }
    return session_.count(name) != 0;
  }

  /// Definition/redefinition per Figure 3: local when inside a function,
  /// session otherwise.
  void Upsert(const std::string& name, VarBinding binding);

  /// Direct session-scope definition (used when the platform materializes
  /// a variable into a backend temp table).
  void UpsertSession(const std::string& name, VarBinding binding);

  /// Session-scope variables, exposed so the platform can promote them to
  /// the server scope when the session is destroyed (§3.2.3).
  const std::unordered_map<std::string, VarBinding>& session_vars() const {
    return session_;
  }

  MetadataInterface* mdi() const { return mdi_; }

 private:
  MetadataInterface* mdi_;
  std::vector<std::unordered_map<std::string, VarBinding>> locals_;
  std::unordered_map<std::string, VarBinding> session_;
};

}  // namespace hyperq

#endif  // HYPERQ_ALGEBRIZER_SCOPES_H_
