#include "algebrizer/binder.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/strings.h"

namespace hyperq {

using xtra::ColId;
using xtra::kNoCol;
using xtra::MakeAgg;
using xtra::MakeCast;
using xtra::MakeColRef;
using xtra::MakeConst;
using xtra::MakeFunc;
using xtra::NamedScalar;
using xtra::ScalarExpr;
using xtra::ScalarKind;
using xtra::ScalarPtr;
using xtra::XtraColumn;
using xtra::XtraJoinKind;
using xtra::XtraKind;
using xtra::XtraOp;
using xtra::XtraPtr;
using xtra::XtraSortKey;

namespace {

/// q's output-name inference: `max Price` is named Price.
std::string InferName(const AstPtr& expr, int position) {
  const AstNode* n = expr.get();
  while (n != nullptr) {
    switch (n->kind) {
      case AstKind::kVarRef:
        return n->name;
      case AstKind::kApply:
        n = n->args.empty() ? nullptr : n->args[0].get();
        break;
      case AstKind::kDyad:
        n = n->lhs.get();
        break;
      default:
        n = nullptr;
        break;
    }
  }
  return StrCat("x", position == 0 ? std::string() : StrCat(position));
}

Result<XtraColumn> FindCol(const XtraOp& op, const std::string& name,
                           const char* what) {
  const XtraColumn* c = op.FindOutputByName(name);
  if (c == nullptr) {
    std::vector<std::string> names;
    for (const auto& oc : op.output) names.push_back(oc.name);
    return BindError(StrCat(what, ": column '", name,
                            "' not found; available columns: ",
                            Join(names, ", ")));
  }
  return *c;
}

ScalarPtr ColRefOf(const XtraColumn& c) {
  return MakeColRef(c.id, c.name, c.type, c.nullable);
}

ScalarPtr Conjoin(std::vector<ScalarPtr> conds) {
  ScalarPtr acc;
  for (auto& c : conds) {
    acc = acc ? MakeFunc("and", {acc, c}, QType::kBool) : c;
  }
  return acc;
}

bool IsAggName(const std::string& name) {
  static const char* kNames[] = {"count", "sum", "avg", "min", "max",
                                 "med",   "dev", "var", "first", "last"};
  for (const char* n : kNames) {
    if (name == n) return true;
  }
  return false;
}

}  // namespace

bool ContainsAggregate(const ScalarPtr& e) {
  if (!e) return false;
  if (e->kind == ScalarKind::kAgg) return true;
  for (const auto& a : e->args) {
    if (ContainsAggregate(a)) return true;
  }
  return false;
}

QType DeriveFuncType(const std::string& func,
                     const std::vector<ScalarPtr>& args) {
  auto arg_type = [&](size_t i) {
    return i < args.size() ? args[i]->type : QType::kUnary;
  };
  if (func == "eq" || func == "ne" || func == "lt" || func == "gt" ||
      func == "le" || func == "ge" || func == "eq_ind" || func == "ne_ind" ||
      func == "and" || func == "or" || func == "not" || func == "isnull" ||
      func == "in" || func == "between" || func == "like") {
    return QType::kBool;
  }
  if (func == "fdiv" || func == "sqrt" || func == "exp" || func == "log" ||
      func == "avg" || func == "med" || func == "dev" || func == "var") {
    return QType::kFloat;
  }
  if (func == "count" || func == "count_star" || func == "row_number" ||
      func == "floor" || func == "ceiling" || func == "signum" ||
      func == "idiv") {
    return QType::kLong;
  }
  if (func == "concat" || func == "to_text") return QType::kChar;
  if (func == "coalesce" || func == "least" || func == "greatest") {
    QType t = arg_type(0);
    return t == QType::kUnary ? arg_type(1) : t;
  }
  if (func == "add" || func == "sub" || func == "mul" || func == "mod" ||
      func == "xbar") {
    QType a = arg_type(0);
    QType b = arg_type(1);
    if (IsFloatBacked(a) || IsFloatBacked(b)) return QType::kFloat;
    if (func == "sub" && IsTemporal(a) && a == b) {
      return a == QType::kTimestamp ? QType::kTimespan : QType::kLong;
    }
    if (IsTemporal(a)) return a;
    if (IsTemporal(b)) return b;
    return QType::kLong;
  }
  if (func == "sum") {
    return IsFloatBacked(arg_type(0)) ? QType::kFloat : QType::kLong;
  }
  if (func == "min" || func == "max" || func == "first" || func == "last" ||
      func == "neg" || func == "abs" || func == "lag" || func == "lead" ||
      func == "first_value" || func == "last_value") {
    return arg_type(0);
  }
  return arg_type(0);
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

Result<BoundQuery> Binder::BindQuery(const AstPtr& node) {
  if (node->kind == AstKind::kQuery) {
    HQ_ASSIGN_OR_RETURN(XtraPtr root, BindQueryTemplate(*node));
    BoundQuery out;
    out.root = std::move(root);
    switch (node->query_kind) {
      case QueryKind::kSelect:
        out.shape = node->by_list.empty() ? ResultShape::kTable
                                          : ResultShape::kKeyedTable;
        if (!node->by_list.empty()) {
          for (size_t i = 0; i < node->by_list.size(); ++i) {
            out.key_columns.push_back(
                node->by_list[i].name.empty()
                    ? InferName(node->by_list[i].expr, static_cast<int>(i))
                    : node->by_list[i].name);
          }
        }
        break;
      case QueryKind::kExec: {
        bool single = node->select_list.size() == 1;
        if (!node->by_list.empty()) {
          // exec ... by returns a dictionary keyed by the by-expression.
          out.shape = single ? ResultShape::kDict : ResultShape::kKeyedTable;
          for (size_t i = 0; i < node->by_list.size(); ++i) {
            out.key_columns.push_back(
                node->by_list[i].name.empty()
                    ? InferName(node->by_list[i].expr, static_cast<int>(i))
                    : node->by_list[i].name);
          }
          break;
        }
        bool agg = false;
        if (single) {
          // Peek: the bound tree is a scalar GroupAgg for aggregates.
          agg = out.root->kind == XtraKind::kGroupAgg &&
                out.root->group_keys.empty();
        }
        out.shape = single ? (agg ? ResultShape::kAtom : ResultShape::kList)
                           : ResultShape::kTable;
        break;
      }
      default:
        out.shape = ResultShape::kTable;
        break;
    }
    return out;
  }

  // `count t` over a table: COUNT(*) scalar aggregate.
  if (node->kind == AstKind::kApply && node->args.size() == 1 &&
      (node->child->kind == AstKind::kVarRef ||
       node->child->kind == AstKind::kFnRef) &&
      (node->child->name == "count" || node->child->name == "#")) {
    Result<XtraPtr> table = BindTableExpr(node->args[0]);
    if (table.ok()) {
      XtraColumn col{NextId(), "count", QType::kLong, false};
      std::vector<NamedScalar> aggs;
      aggs.push_back(
          NamedScalar{col, MakeAgg("count_star", {}, QType::kLong)});
      BoundQuery out;
      out.root = xtra::MakeGroupAgg(std::move(table).value(), {},
                                    std::move(aggs));
      out.shape = ResultShape::kAtom;
      return out;
    }
  }

  // Non-template expression: table expression or scalar.
  Result<XtraPtr> table = BindTableExpr(node);
  if (table.ok()) {
    BoundQuery out;
    out.root = std::move(table).value();
    out.shape = ResultShape::kTable;
    return out;
  }
  // Scalar fallback: SELECT <expr> without FROM.
  Result<ScalarPtr> scalar = BindScalar(node, nullptr);
  if (!scalar.ok()) return table.status();  // table error is usually better
  auto proj = std::make_shared<XtraOp>();
  proj->kind = XtraKind::kProject;
  XtraColumn col;
  col.id = NextId();
  col.name = "value";
  col.type = (*scalar)->type;
  proj->output.push_back(col);
  proj->projections.push_back(NamedScalar{col, std::move(scalar).value()});
  proj->ord_col = kNoCol;
  BoundQuery out;
  out.root = std::move(proj);
  out.shape = ResultShape::kAtom;
  return out;
}

Result<QValue> Binder::BindConstant(const AstPtr& node) {
  switch (node->kind) {
    case AstKind::kLiteral:
      return node->literal;
    case AstKind::kParam:
      // The constant's value shapes the plan here (take counts, window
      // sizes, ...): pin the slot so the cache entry only matches this
      // exact value.
      PinParam(*node);
      return node->literal;
    case AstKind::kVarRef: {
      HQ_ASSIGN_OR_RETURN(VarBinding b, LookupVar(node->name));
      if (b.kind == VarBinding::Kind::kScalar) return b.scalar;
      return BindError(StrCat("'", node->name,
                              "' is not a constant in this context"));
    }
    default:
      return BindError(
          "expression is not a translatable constant; only literals and "
          "scalar variables are supported here");
  }
}

Result<VarBinding> Binder::LookupVar(const std::string& name) {
  Result<VarBinding> b = scopes_->Lookup(name);
  if (trace_ != nullptr && b.ok()) {
    trace_->ref_names.push_back(name);
    if (scopes_->IsShadowed(name)) {
      trace_->used_scope_var = true;
    } else if (b->kind == VarBinding::Kind::kRelation) {
      trace_->ref_tables.push_back(b->table);
    }
  }
  return b;
}

void Binder::PinParam(const AstNode& node) {
  if (trace_ != nullptr && node.param_slot >= 0) {
    trace_->pinned_slots.push_back(node.param_slot);
  }
}

Result<std::vector<std::string>> Binder::SymbolListOf(const AstPtr& node,
                                                      const char* what) {
  if (node->kind != AstKind::kLiteral && node->kind != AstKind::kParam) {
    return BindError(StrCat(what, " requires a literal symbol list"));
  }
  if (node->kind == AstKind::kParam) PinParam(*node);
  const QValue& v = node->literal;
  if (v.is_atom() && v.type() == QType::kSymbol) {
    return std::vector<std::string>{v.AsSym()};
  }
  if (!v.is_atom() && v.type() == QType::kSymbol) {
    return v.SymsView();
  }
  return BindError(StrCat(what, " requires symbols, got ",
                          QTypeName(v.type())));
}

// ---------------------------------------------------------------------------
// Table expressions
// ---------------------------------------------------------------------------

Result<XtraPtr> Binder::BindTableExpr(const AstPtr& node) {
  switch (node->kind) {
    case AstKind::kVarRef: {
      HQ_ASSIGN_OR_RETURN(VarBinding b, LookupVar(node->name));
      if (b.kind != VarBinding::Kind::kRelation) {
        return BindError(StrCat("'", node->name,
                                "' is not bound to a table (it is a ",
                                b.kind == VarBinding::Kind::kScalar
                                    ? "scalar variable"
                                    : "function",
                                ")"));
      }
      HQ_ASSIGN_OR_RETURN(TableMetadata meta, mdi_->LookupTable(b.table));
      std::vector<XtraColumn> cols;
      cols.reserve(meta.columns.size() + 1);
      for (const auto& c : meta.columns) {
        cols.push_back(XtraColumn{NextId(), c.name, c.type, true});
      }
      ColId ord = kNoCol;
      if (meta.has_ordcol) {
        ord = NextId();
        cols.push_back(XtraColumn{ord, kOrdColName, QType::kLong, false});
      }
      return xtra::MakeGet(meta.name, std::move(cols), ord);
    }
    case AstKind::kQuery:
      return BindQueryTemplate(*node);
    case AstKind::kApply: {
      const AstPtr& callee = node->child;
      if (callee->kind == AstKind::kVarRef ||
          callee->kind == AstKind::kFnRef) {
        const std::string& name = callee->name;
        if (name == "aj" || name == "aj0") return BindAsOfJoin(*node);
        if (name == "ej") return BindEquiJoinCall(*node);
        if (name == "distinct" && node->args.size() == 1) {
          HQ_ASSIGN_OR_RETURN(XtraPtr child, BindTableExpr(node->args[0]));
          XtraPtr proj = child;
          // DISTINCT over all columns except the order column.
          std::vector<NamedScalar> projections;
          for (const auto& c : child->output) {
            if (c.id == child->ord_col) continue;
            projections.push_back(NamedScalar{c, ColRefOf(c)});
          }
          XtraPtr out = xtra::MakeProject(child, std::move(projections));
          out->distinct = true;
          out->ord_col = kNoCol;
          return out;
        }
      }
      return BindError(StrCat(
          "cannot translate application of '",
          callee->kind == AstKind::kVarRef || callee->kind == AstKind::kFnRef
              ? callee->name
              : "<expression>",
          "' as a table expression"));
    }
    case AstKind::kDyad: {
      const std::string& op = node->name;
      if (op == "lj" || op == "ij") {
        return BindKeyedJoin(op, node->lhs, node->rhs);
      }
      if (op == "uj" || op == ",") {
        return BindUnionJoin(node->lhs, node->rhs);
      }
      if (op == "xasc" || op == "xdesc") {
        return BindSortTable(op, node->lhs, node->rhs);
      }
      if (op == "#") return BindTake(node->lhs, node->rhs);
      if (op == "xkey") {
        HQ_ASSIGN_OR_RETURN(KeyedTable kt, BindKeyedTable(
            std::const_pointer_cast<const AstNode>(node)));
        return kt.op;
      }
      if (op == "!") {
        // n!t keys the first n columns; 0!t unkeys. Keys are binder-level
        // metadata — the relational shape is unchanged.
        Result<QValue> n = BindConstant(node->lhs);
        if (n.ok() && n->is_atom() && IsIntegralBacked(n->type())) {
          return BindTableExpr(node->rhs);
        }
        return BindError(
            "dyadic '!' over tables requires an integer key count");
      }
      if (op == "xcol") {
        HQ_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            SymbolListOf(node->lhs, "xcol"));
        HQ_ASSIGN_OR_RETURN(XtraPtr child, BindTableExpr(node->rhs));
        std::vector<NamedScalar> projections;
        size_t renamed = 0;
        for (const auto& c : child->output) {
          XtraColumn col = c;
          if (c.id != child->ord_col && renamed < names.size()) {
            col.name = names[renamed++];
          }
          projections.push_back(NamedScalar{col, ColRefOf(c)});
        }
        return xtra::MakeProject(child, std::move(projections));
      }
      return BindError(StrCat("cannot translate dyadic '", op,
                              "' as a table expression"));
    }
    default:
      return BindError(
          "expression does not produce a table; expected a query template, "
          "table variable or join");
  }
}

Result<Binder::KeyedTable> Binder::BindKeyedTable(const AstPtr& node) {
  if (node->kind == AstKind::kDyad && node->name == "xkey") {
    HQ_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                        SymbolListOf(node->lhs, "xkey"));
    HQ_ASSIGN_OR_RETURN(XtraPtr op, BindTableExpr(node->rhs));
    for (const auto& k : keys) {
      HQ_RETURN_IF_ERROR(FindCol(*op, k, "xkey").status());
    }
    return KeyedTable{std::move(op), std::move(keys)};
  }
  if (node->kind == AstKind::kVarRef) {
    HQ_ASSIGN_OR_RETURN(VarBinding b, LookupVar(node->name));
    if (b.kind == VarBinding::Kind::kRelation) {
      HQ_ASSIGN_OR_RETURN(TableMetadata meta, mdi_->LookupTable(b.table));
      if (meta.key_columns.empty()) {
        return BindError(StrCat("table '", node->name,
                                "' is not keyed; lj/ij require a keyed "
                                "right input"));
      }
      HQ_ASSIGN_OR_RETURN(XtraPtr op, BindTableExpr(node));
      return KeyedTable{std::move(op), meta.key_columns};
    }
  }
  return BindError(
      "right input of lj/ij must be a keyed table (a table with key "
      "columns or an explicit `k xkey t`)");
}

Result<XtraPtr> Binder::BindAsOfJoin(const AstNode& apply) {
  if (apply.args.size() != 3) {
    return BindError("aj[cols; t1; t2] takes exactly 3 arguments");
  }
  HQ_ASSIGN_OR_RETURN(std::vector<std::string> names,
                      SymbolListOf(apply.args[0], "aj"));
  if (names.empty()) return BindError("aj: no join columns given");
  HQ_ASSIGN_OR_RETURN(XtraPtr left, BindTableExpr(apply.args[1]));
  HQ_ASSIGN_OR_RETURN(XtraPtr right, BindTableExpr(apply.args[2]));

  std::string time_name = names.back();
  std::vector<std::string> key_names(names.begin(), names.end() - 1);

  HQ_ASSIGN_OR_RETURN(XtraColumn ltime, FindCol(*left, time_name, "aj"));
  HQ_ASSIGN_OR_RETURN(XtraColumn rtime, FindCol(*right, time_name, "aj"));

  // Extend the right input with the next-quote time per key: the window
  // function lowering of Figure 2 (left outer join + window on the right).
  std::vector<ScalarPtr> partition;
  for (const auto& k : key_names) {
    HQ_ASSIGN_OR_RETURN(XtraColumn rc, FindCol(*right, k, "aj"));
    partition.push_back(ColRefOf(rc));
  }
  auto lead = std::make_shared<ScalarExpr>();
  lead->kind = ScalarKind::kWindow;
  lead->func = "lead";
  lead->args.push_back(ColRefOf(rtime));
  lead->partition_by = partition;
  lead->order_by.push_back({ColRefOf(rtime), true});
  lead->type = rtime.type;
  lead->nullable = true;

  std::vector<NamedScalar> right_proj;
  for (const auto& c : right->output) {
    right_proj.push_back(NamedScalar{c, ColRefOf(c)});
  }
  XtraColumn next_col{NextId(), "hq_next_time", rtime.type, true};
  right_proj.push_back(NamedScalar{next_col, ScalarPtr(lead)});
  XtraPtr right_ext = xtra::MakeProject(right, std::move(right_proj));

  // Join condition: keys match (2VL equality), r.time <= l.time, and the
  // left time falls before the next quote (or there is none).
  std::vector<ScalarPtr> conds;
  for (const auto& k : key_names) {
    HQ_ASSIGN_OR_RETURN(XtraColumn lc, FindCol(*left, k, "aj"));
    HQ_ASSIGN_OR_RETURN(XtraColumn rc, FindCol(*right_ext, k, "aj"));
    conds.push_back(
        MakeFunc("eq", {ColRefOf(lc), ColRefOf(rc)}, QType::kBool));
  }
  conds.push_back(
      MakeFunc("le", {ColRefOf(rtime), ColRefOf(ltime)}, QType::kBool));
  conds.push_back(MakeFunc(
      "or",
      {MakeFunc("lt", {ColRefOf(ltime), ColRefOf(next_col)}, QType::kBool),
       MakeFunc("isnull", {ColRefOf(next_col)}, QType::kBool)},
      QType::kBool));

  // Output: left columns, with right non-key columns overwriting same-named
  // ones (q aj semantics) and new right columns appended.
  std::set<std::string> join_cols(names.begin(), names.end());
  std::vector<XtraColumn> output;
  for (const auto& lc : left->output) {
    if (join_cols.count(lc.name) == 0 && lc.name != kOrdColName) {
      const XtraColumn* rc = right->FindOutputByName(lc.name);
      if (rc != nullptr) {
        XtraColumn col = *rc;
        col.nullable = true;  // unmatched rows yield NULL
        output.push_back(col);
        continue;
      }
    }
    output.push_back(lc);
  }
  for (const auto& rc : right->output) {
    if (join_cols.count(rc.name) > 0 || rc.name == kOrdColName) continue;
    if (left->FindOutputByName(rc.name) != nullptr) continue;  // handled
    XtraColumn col = rc;
    col.nullable = true;
    output.push_back(col);
  }

  return xtra::MakeJoin(XtraJoinKind::kLeftOuter, left, right_ext,
                        Conjoin(std::move(conds)), std::move(output));
}

Result<XtraPtr> Binder::BindEquiJoinCall(const AstNode& apply) {
  if (apply.args.size() != 3) {
    return BindError("ej[cols; t1; t2] takes exactly 3 arguments");
  }
  HQ_ASSIGN_OR_RETURN(std::vector<std::string> names,
                      SymbolListOf(apply.args[0], "ej"));
  if (names.empty()) return BindError("ej: no join columns given");
  HQ_ASSIGN_OR_RETURN(XtraPtr left, BindTableExpr(apply.args[1]));
  HQ_ASSIGN_OR_RETURN(XtraPtr right, BindTableExpr(apply.args[2]));

  std::vector<ScalarPtr> conds;
  for (const auto& k : names) {
    HQ_ASSIGN_OR_RETURN(XtraColumn lc, FindCol(*left, k, "ej"));
    HQ_ASSIGN_OR_RETURN(XtraColumn rc, FindCol(*right, k, "ej"));
    conds.push_back(
        MakeFunc("eq", {ColRefOf(lc), ColRefOf(rc)}, QType::kBool));
  }

  // Inner join, all matches; right non-key columns overwrite same-named
  // left columns (q ej semantics), new right columns are appended.
  std::set<std::string> key_set(names.begin(), names.end());
  std::vector<XtraColumn> output;
  for (const auto& lc : left->output) {
    if (key_set.count(lc.name) == 0 && lc.name != kOrdColName) {
      const XtraColumn* rc = right->FindOutputByName(lc.name);
      if (rc != nullptr) {
        output.push_back(*rc);
        continue;
      }
    }
    output.push_back(lc);
  }
  for (const auto& rc : right->output) {
    if (key_set.count(rc.name) > 0 || rc.name == kOrdColName) continue;
    if (left->FindOutputByName(rc.name) != nullptr) continue;
    output.push_back(rc);
  }
  return xtra::MakeJoin(XtraJoinKind::kInner, left, right,
                        Conjoin(std::move(conds)), std::move(output));
}

Result<XtraPtr> Binder::BindKeyedJoin(const std::string& op,
                                      const AstPtr& left_ast,
                                      const AstPtr& right_ast) {
  HQ_ASSIGN_OR_RETURN(XtraPtr left, BindTableExpr(left_ast));
  HQ_ASSIGN_OR_RETURN(KeyedTable right, BindKeyedTable(right_ast));

  // Add a match marker so lj can keep the left value on unmatched rows.
  std::vector<NamedScalar> right_proj;
  for (const auto& c : right.op->output) {
    right_proj.push_back(NamedScalar{c, ColRefOf(c)});
  }
  XtraColumn match_col{NextId(), "hq_match", QType::kBool, false};
  right_proj.push_back(
      NamedScalar{match_col, MakeConst(QValue::Bool(true))});
  XtraPtr right_ext = xtra::MakeProject(right.op, std::move(right_proj));

  std::vector<ScalarPtr> conds;
  for (const auto& k : right.keys) {
    HQ_ASSIGN_OR_RETURN(XtraColumn lc, FindCol(*left, k, op.c_str()));
    HQ_ASSIGN_OR_RETURN(XtraColumn rc, FindCol(*right_ext, k, op.c_str()));
    conds.push_back(
        MakeFunc("eq", {ColRefOf(lc), ColRefOf(rc)}, QType::kBool));
  }

  bool is_lj = op == "lj";
  std::set<std::string> key_set(right.keys.begin(), right.keys.end());

  // Build the join with full child outputs, then project the q-visible
  // columns (overwrite semantics).
  std::vector<XtraColumn> join_out = left->output;
  for (const auto& c : right_ext->output) {
    if (c.name == kOrdColName) continue;
    join_out.push_back(c);
  }
  XtraPtr join = xtra::MakeJoin(
      is_lj ? XtraJoinKind::kLeftOuter : XtraJoinKind::kInner, left,
      right_ext, Conjoin(std::move(conds)), join_out);

  std::vector<NamedScalar> projections;
  for (const auto& lc : left->output) {
    if (key_set.count(lc.name) == 0 && lc.name != kOrdColName) {
      const XtraColumn* rc = right.op->FindOutputByName(lc.name);
      if (rc != nullptr) {
        // Overwrite: matched rows take the right value, unmatched (lj only)
        // keep the left value.
        ScalarPtr val;
        if (is_lj) {
          auto cse = std::make_shared<ScalarExpr>();
          cse->kind = ScalarKind::kCase;
          cse->args = {MakeFunc("not",
                                {MakeFunc("isnull", {ColRefOf(match_col)},
                                          QType::kBool)},
                                QType::kBool),
                       ColRefOf(*rc), ColRefOf(lc)};
          cse->has_else = true;
          cse->type = rc->type;
          cse->nullable = true;
          val = cse;
        } else {
          val = ColRefOf(*rc);
        }
        XtraColumn col{NextId(), lc.name, rc->type, true};
        projections.push_back(NamedScalar{col, std::move(val)});
        continue;
      }
    }
    projections.push_back(NamedScalar{lc, ColRefOf(lc)});
  }
  for (const auto& rc : right.op->output) {
    if (key_set.count(rc.name) > 0 || rc.name == kOrdColName) continue;
    if (left->FindOutputByName(rc.name) != nullptr) continue;
    XtraColumn col = rc;
    col.nullable = true;
    projections.push_back(NamedScalar{col, ColRefOf(rc)});
  }
  return xtra::MakeProject(std::move(join), std::move(projections));
}

Result<XtraPtr> Binder::BindUnionJoin(const AstPtr& left_ast,
                                      const AstPtr& right_ast) {
  HQ_ASSIGN_OR_RETURN(XtraPtr left, BindTableExpr(left_ast));
  HQ_ASSIGN_OR_RETURN(XtraPtr right, BindTableExpr(right_ast));

  // Union column set: left columns then right-only columns.
  struct OutCol {
    std::string name;
    QType type;
  };
  std::vector<OutCol> names;
  for (const auto& c : left->output) {
    if (c.name == kOrdColName) continue;
    names.push_back({c.name, c.type});
  }
  for (const auto& c : right->output) {
    if (c.name == kOrdColName) continue;
    bool present = false;
    for (const auto& n : names) present |= n.name == c.name;
    if (!present) names.push_back({c.name, c.type});
  }

  // Align both sides: missing columns become typed NULLs; a source tag and
  // the original ordcol preserve q's append order.
  auto align = [&](const XtraPtr& side, int tag) -> Result<XtraPtr> {
    std::vector<NamedScalar> projections;
    for (const auto& n : names) {
      const XtraColumn* c = side->FindOutputByName(n.name);
      XtraColumn col{NextId(), n.name, n.type, true};
      if (c != nullptr) {
        projections.push_back(NamedScalar{col, ColRefOf(*c)});
      } else {
        projections.push_back(
            NamedScalar{col, MakeConst(QValue::NullOf(n.type))});
      }
    }
    XtraColumn tag_col{NextId(), "hq_src", QType::kLong, false};
    projections.push_back(
        NamedScalar{tag_col, MakeConst(QValue::Long(tag))});
    XtraColumn ord_col{NextId(), "hq_ord", QType::kLong, false};
    if (side->ord_col != kNoCol) {
      const XtraColumn* oc = side->FindOutput(side->ord_col);
      projections.push_back(NamedScalar{ord_col, ColRefOf(*oc)});
    } else {
      projections.push_back(NamedScalar{ord_col, MakeConst(QValue::Long(0))});
    }
    return xtra::MakeProject(side, std::move(projections));
  };
  HQ_ASSIGN_OR_RETURN(XtraPtr l, align(left, 0));
  HQ_ASSIGN_OR_RETURN(XtraPtr r, align(right, 1));

  // Union output columns: positional, new ids mirroring the left side.
  std::vector<XtraColumn> out_cols;
  for (const auto& c : l->output) out_cols.push_back(c);
  XtraPtr u = xtra::MakeUnionAll(l, r, out_cols);

  // Deterministic append order: left rows then right rows.
  std::vector<XtraSortKey> sort;
  HQ_ASSIGN_OR_RETURN(XtraColumn src, FindCol(*u, "hq_src", "uj"));
  HQ_ASSIGN_OR_RETURN(XtraColumn ord, FindCol(*u, "hq_ord", "uj"));
  sort.push_back({ColRefOf(src), true});
  sort.push_back({ColRefOf(ord), true});
  XtraPtr sorted = xtra::MakeSort(u, std::move(sort));

  // Hide the helper columns from the q-visible output.
  std::vector<NamedScalar> projections;
  for (const auto& c : sorted->output) {
    if (c.name == "hq_src" || c.name == "hq_ord") continue;
    projections.push_back(NamedScalar{c, ColRefOf(c)});
  }
  return xtra::MakeProject(sorted, std::move(projections));
}

Result<XtraPtr> Binder::BindSortTable(const std::string& op,
                                      const AstPtr& cols,
                                      const AstPtr& table) {
  HQ_ASSIGN_OR_RETURN(std::vector<std::string> names,
                      SymbolListOf(cols, op.c_str()));
  HQ_ASSIGN_OR_RETURN(XtraPtr child, BindTableExpr(table));
  std::vector<XtraSortKey> keys;
  for (const auto& n : names) {
    HQ_ASSIGN_OR_RETURN(XtraColumn c, FindCol(*child, n, op.c_str()));
    keys.push_back({ColRefOf(c), op == "xasc"});
  }
  return xtra::MakeSort(std::move(child), std::move(keys));
}

Result<XtraPtr> Binder::BindTake(const AstPtr& count, const AstPtr& table) {
  HQ_ASSIGN_OR_RETURN(QValue n, BindConstant(count));
  if (!n.is_atom() || !IsIntegralBacked(n.type())) {
    return BindError("take (#) over a table requires an integer count");
  }
  HQ_ASSIGN_OR_RETURN(XtraPtr child, BindTableExpr(table));
  int64_t cnt = n.AsInt();
  // A child that already defines an order (xasc/xdesc) takes rows in that
  // order; no ordcol resort needed.
  if (child->kind == XtraKind::kSort && cnt >= 0) {
    return xtra::MakeLimit(std::move(child), cnt, 0);
  }
  if (child->ord_col == kNoCol) {
    return BindError(
        "take (#) requires the table to carry an implicit order column "
        "(ordcol); it was loaded without one");
  }
  const XtraColumn* oc = child->FindOutput(child->ord_col);
  if (cnt >= 0) {
    XtraPtr sorted =
        xtra::MakeSort(child, {XtraSortKey{ColRefOf(*oc), true}});
    return xtra::MakeLimit(std::move(sorted), cnt, 0);
  }
  // -n#t: last n rows — sort descending, limit, restore ascending order.
  XtraPtr desc = xtra::MakeSort(child, {XtraSortKey{ColRefOf(*oc), false}});
  XtraPtr limited = xtra::MakeLimit(std::move(desc), -cnt, 0);
  return xtra::MakeSort(std::move(limited),
                        {XtraSortKey{ColRefOf(*oc), true}});
}

// ---------------------------------------------------------------------------
// Query template
// ---------------------------------------------------------------------------

Result<XtraPtr> Binder::BindQueryTemplate(const AstNode& node) {
  HQ_ASSIGN_OR_RETURN(XtraPtr from, BindTableExpr(node.from));

  // where: sequential conditions become chained filters. Window functions
  // inside a condition (the fby idiom) are not legal in SQL WHERE clauses,
  // so they are first materialized as helper columns of a projection.
  for (const auto& cond : node.where_list) {
    HQ_ASSIGN_OR_RETURN(ScalarPtr pred, BindScalar(cond, from.get()));
    if (ContainsAggregate(pred)) {
      return Unsupported(
          "aggregates in where clauses are not yet translatable (use fby "
          "for per-group comparisons)");
    }
    std::vector<ScalarPtr> windows;
    std::function<void(const ScalarPtr&)> collect =
        [&](const ScalarPtr& e) {
          if (!e) return;
          if (e->kind == ScalarKind::kWindow) {
            windows.push_back(e);
            return;
          }
          for (const auto& a : e->args) collect(a);
        };
    collect(pred);
    if (!windows.empty()) {
      std::vector<NamedScalar> projections;
      for (const auto& c : from->output) {
        projections.push_back(NamedScalar{c, ColRefOf(c)});
      }
      // One helper column per window node; the predicate is rewritten to
      // reference it.
      std::map<const ScalarExpr*, ScalarPtr> replacement;
      for (size_t i = 0; i < windows.size(); ++i) {
        XtraColumn col{NextId(), StrCat("hq_w", NextId()),
                       windows[i]->type, true};
        projections.push_back(NamedScalar{col, windows[i]});
        replacement[windows[i].get()] =
            MakeColRef(col.id, col.name, col.type, true);
      }
      std::function<ScalarPtr(const ScalarPtr&)> rewrite =
          [&](const ScalarPtr& e) -> ScalarPtr {
        if (!e) return e;
        auto it = replacement.find(e.get());
        if (it != replacement.end()) return it->second;
        auto copy = std::make_shared<ScalarExpr>(*e);
        for (auto& a : copy->args) a = rewrite(a);
        return copy;
      };
      pred = rewrite(pred);
      from = xtra::MakeProject(std::move(from), std::move(projections));
    }
    from = xtra::MakeFilter(std::move(from), std::move(pred));
  }

  if (node.query_kind == QueryKind::kDelete) {
    if (!node.delete_cols.empty()) {
      std::vector<NamedScalar> projections;
      for (const auto& c : from->output) {
        if (std::find(node.delete_cols.begin(), node.delete_cols.end(),
                      c.name) != node.delete_cols.end()) {
          continue;
        }
        projections.push_back(NamedScalar{c, ColRefOf(c)});
      }
      return xtra::MakeProject(std::move(from), std::move(projections));
    }
    // delete-where: the filters above selected the doomed rows; instead we
    // rebuild as NOT(conjunction) over the unfiltered source.
    if (node.where_list.empty()) {
      return Unsupported("delete without where or columns is not supported");
    }
    HQ_ASSIGN_OR_RETURN(XtraPtr src, BindTableExpr(node.from));
    std::vector<ScalarPtr> conds;
    for (const auto& cond : node.where_list) {
      HQ_ASSIGN_OR_RETURN(ScalarPtr pred, BindScalar(cond, src.get()));
      conds.push_back(std::move(pred));
    }
    ScalarPtr keep =
        MakeFunc("not", {Conjoin(std::move(conds))}, QType::kBool);
    return xtra::MakeFilter(std::move(src), std::move(keep));
  }

  if (node.query_kind == QueryKind::kUpdate && !node.by_list.empty()) {
    // Grouped update: aggregates become window functions partitioned by
    // the by-expressions (each group's aggregate is broadcast across its
    // rows — §3.3's window-function injection applied to update).
    if (!node.where_list.empty()) {
      return Unsupported(
          "update ... by with a where clause is not yet translatable "
          "(partitions over the filtered subset have no direct window "
          "equivalent)");
    }
    HQ_ASSIGN_OR_RETURN(XtraPtr src, BindTableExpr(node.from));
    std::vector<ScalarPtr> partition;
    for (const auto& ne : node.by_list) {
      HQ_ASSIGN_OR_RETURN(ScalarPtr key, BindScalar(ne.expr, src.get()));
      partition.push_back(std::move(key));
    }
    const XtraColumn* ordc =
        src->ord_col != kNoCol ? src->FindOutput(src->ord_col) : nullptr;

    // Bottom-up rewrite of aggregate nodes into partitioned windows.
    std::function<Result<ScalarPtr>(const ScalarPtr&)> to_window =
        [&](const ScalarPtr& e) -> Result<ScalarPtr> {
      auto copy = std::make_shared<ScalarExpr>(*e);
      for (auto& a : copy->args) {
        HQ_ASSIGN_OR_RETURN(a, to_window(a));
      }
      if (copy->kind != ScalarKind::kAgg) return ScalarPtr(copy);
      copy->kind = ScalarKind::kWindow;
      copy->partition_by = partition;
      if (copy->func == "first" || copy->func == "last") {
        if (ordc == nullptr) {
          return BindError(
              "first/last in update-by needs the implicit order column");
        }
        // last = first_value over the reversed order.
        bool ascending = copy->func == "first";
        copy->func = "first_value";
        copy->order_by.push_back({ColRefOf(*ordc), ascending});
      } else if (copy->func == "med" || copy->func == "dev" ||
                 copy->func == "var") {
        return Unsupported(StrCat("aggregate '", copy->func,
                                  "' has no window form in the backend"));
      }
      return ScalarPtr(copy);
    };

    std::vector<NamedScalar> projections;
    std::vector<std::pair<std::string, ScalarPtr>> new_cols;
    for (size_t i = 0; i < node.select_list.size(); ++i) {
      const NamedExpr& ne = node.select_list[i];
      std::string name = ne.name.empty()
                             ? InferName(ne.expr, static_cast<int>(i))
                             : ne.name;
      HQ_ASSIGN_OR_RETURN(ScalarPtr val, BindScalar(ne.expr, src.get()));
      HQ_ASSIGN_OR_RETURN(val, to_window(val));
      new_cols.emplace_back(name, std::move(val));
    }
    for (const auto& c : src->output) {
      auto it = std::find_if(new_cols.begin(), new_cols.end(),
                             [&](const auto& p) { return p.first == c.name; });
      if (it == new_cols.end()) {
        projections.push_back(NamedScalar{c, ColRefOf(c)});
      } else {
        XtraColumn col{NextId(), c.name, it->second->type, true};
        projections.push_back(NamedScalar{col, it->second});
      }
    }
    for (auto& [name, val] : new_cols) {
      if (src->FindOutputByName(name) != nullptr) continue;
      XtraColumn col{NextId(), name, val->type, true};
      projections.push_back(NamedScalar{col, std::move(val)});
    }
    return xtra::MakeProject(std::move(src), std::move(projections));
  }

  if (node.query_kind == QueryKind::kUpdate) {
    // Re-bind over the unfiltered source; where becomes per-column CASE.
    HQ_ASSIGN_OR_RETURN(XtraPtr src, BindTableExpr(node.from));
    ScalarPtr pred;
    if (!node.where_list.empty()) {
      std::vector<ScalarPtr> conds;
      for (const auto& cond : node.where_list) {
        HQ_ASSIGN_OR_RETURN(ScalarPtr p, BindScalar(cond, src.get()));
        conds.push_back(std::move(p));
      }
      pred = Conjoin(std::move(conds));
    }
    std::vector<NamedScalar> projections;
    std::set<std::string> updated;
    std::vector<std::pair<std::string, ScalarPtr>> new_cols;
    for (size_t i = 0; i < node.select_list.size(); ++i) {
      const NamedExpr& ne = node.select_list[i];
      std::string name = ne.name.empty()
                             ? InferName(ne.expr, static_cast<int>(i))
                             : ne.name;
      HQ_ASSIGN_OR_RETURN(ScalarPtr val, BindScalar(ne.expr, src.get()));
      updated.insert(name);
      new_cols.emplace_back(name, std::move(val));
    }
    for (const auto& c : src->output) {
      auto it = std::find_if(new_cols.begin(), new_cols.end(),
                             [&](const auto& p) { return p.first == c.name; });
      if (it == new_cols.end()) {
        projections.push_back(NamedScalar{c, ColRefOf(c)});
        continue;
      }
      ScalarPtr val = it->second;
      if (pred) {
        auto cse = std::make_shared<ScalarExpr>();
        cse->kind = ScalarKind::kCase;
        cse->args = {pred, val, ColRefOf(c)};
        cse->has_else = true;
        cse->type = val->type;
        cse->nullable = true;
        val = cse;
      }
      XtraColumn col{NextId(), c.name, val->type, true};
      projections.push_back(NamedScalar{col, std::move(val)});
    }
    // Genuinely new columns.
    for (auto& [name, val] : new_cols) {
      if (src->FindOutputByName(name) != nullptr) continue;
      ScalarPtr v = val;
      if (pred) {
        auto cse = std::make_shared<ScalarExpr>();
        cse->kind = ScalarKind::kCase;
        cse->args = {pred, v, MakeConst(QValue::NullOf(v->type))};
        cse->has_else = true;
        cse->type = v->type;
        cse->nullable = true;
        v = cse;
      }
      XtraColumn col{NextId(), name, v->type, true};
      projections.push_back(NamedScalar{col, std::move(v)});
    }
    return xtra::MakeProject(std::move(src), std::move(projections));
  }

  // ---- select / exec ----
  // select[n] / select[n;>col] options are layered on the finished tree.
  auto apply_options = [&](XtraPtr tree) -> Result<XtraPtr> {
    if (node.query_order_dir != 0) {
      HQ_ASSIGN_OR_RETURN(
          XtraColumn c, FindCol(*tree, node.query_order_col, "select[..]"));
      tree = xtra::MakeSort(
          tree, {XtraSortKey{ColRefOf(c), node.query_order_dir > 0}});
    }
    if (!node.query_limit) return tree;
    HQ_ASSIGN_OR_RETURN(QValue nv, BindConstant(node.query_limit));
    if (!nv.is_atom() || !IsIntegralBacked(nv.type())) {
      return BindError("select[n] limit must be a constant integer");
    }
    int64_t n = nv.AsInt();
    if (n >= 0) {
      if (tree->kind != XtraKind::kSort && tree->ord_col != kNoCol) {
        const XtraColumn* oc = tree->FindOutput(tree->ord_col);
        tree = xtra::MakeSort(tree, {XtraSortKey{ColRefOf(*oc), true}});
      }
      return xtra::MakeLimit(std::move(tree), n, 0);
    }
    // Negative limit: last n rows — reverse the order, limit, restore.
    if (tree->kind == XtraKind::kSort) {
      std::vector<XtraSortKey> fwd = tree->sort_keys;
      std::vector<XtraSortKey> rev = fwd;
      for (auto& k : rev) k.ascending = !k.ascending;
      XtraPtr flipped = xtra::MakeSort(tree->children[0], rev);
      XtraPtr limited = xtra::MakeLimit(std::move(flipped), -n, 0);
      return xtra::MakeSort(std::move(limited), fwd);
    }
    if (tree->ord_col == kNoCol) {
      return BindError(
          "select[-n] needs the implicit order column or an explicit "
          "ordering");
    }
    const XtraColumn* oc = tree->FindOutput(tree->ord_col);
    XtraPtr desc = xtra::MakeSort(tree, {XtraSortKey{ColRefOf(*oc), false}});
    XtraPtr limited = xtra::MakeLimit(std::move(desc), -n, 0);
    return xtra::MakeSort(std::move(limited),
                          {XtraSortKey{ColRefOf(*oc), true}});
  };

  std::vector<NamedScalar> keys;
  for (size_t i = 0; i < node.by_list.size(); ++i) {
    const NamedExpr& ne = node.by_list[i];
    std::string name = ne.name.empty()
                           ? InferName(ne.expr, static_cast<int>(i))
                           : ne.name;
    HQ_ASSIGN_OR_RETURN(ScalarPtr key, BindScalar(ne.expr, from.get()));
    XtraColumn col{NextId(), name, key->type, true};
    keys.push_back(NamedScalar{col, std::move(key)});
  }

  std::vector<NamedScalar> exprs;
  bool any_agg = false;
  bool all_agg = !node.select_list.empty();
  for (size_t i = 0; i < node.select_list.size(); ++i) {
    const NamedExpr& ne = node.select_list[i];
    std::string name = ne.name.empty()
                           ? InferName(ne.expr, static_cast<int>(i))
                           : ne.name;
    HQ_ASSIGN_OR_RETURN(ScalarPtr val, BindScalar(ne.expr, from.get()));
    bool is_agg = ContainsAggregate(val);
    any_agg |= is_agg;
    all_agg &= is_agg;
    XtraColumn col{NextId(), name, val->type, true};
    exprs.push_back(NamedScalar{col, std::move(val)});
  }

  if (!node.by_list.empty()) {
    if (node.select_list.empty()) {
      // `select by k from t`: last row per group.
      for (const auto& c : from->output) {
        bool is_key = false;
        for (const auto& k : keys) is_key |= k.col.name == c.name;
        if (is_key || c.id == from->ord_col) continue;
        XtraColumn col{NextId(), c.name, c.type, true};
        exprs.push_back(NamedScalar{
            col, MakeAgg("last", {ColRefOf(c)}, c.type)});
      }
    } else if (!all_agg) {
      return Unsupported(
          "select-by expressions must aggregate each group (nested list "
          "columns have no relational equivalent)");
    }
    XtraPtr agg = xtra::MakeGroupAgg(from, keys, std::move(exprs));
    // q orders grouped results by the key columns ascending.
    std::vector<XtraSortKey> sort;
    for (const auto& k : agg->group_keys) {
      sort.push_back({ColRefOf(k.col), true});
    }
    return apply_options(xtra::MakeSort(std::move(agg), std::move(sort)));
  }

  if (node.select_list.empty()) {
    return apply_options(from);  // select from t
  }

  if (any_agg) {
    if (!all_agg) {
      return Unsupported(
          "mixing aggregates and per-row expressions in one select is not "
          "translatable");
    }
    return xtra::MakeGroupAgg(std::move(from), {}, std::move(exprs));
  }

  // Per-row projection: pass the implicit order column through so the
  // Xformer can maintain Q ordering (§3.3).
  if (from->ord_col != kNoCol) {
    const XtraColumn* oc = from->FindOutput(from->ord_col);
    exprs.push_back(NamedScalar{*oc, ColRefOf(*oc)});
  }
  return apply_options(xtra::MakeProject(std::move(from), std::move(exprs)));
}

// ---------------------------------------------------------------------------
// Scalar expressions
// ---------------------------------------------------------------------------

Result<ScalarPtr> Binder::BindScalar(const AstPtr& node,
                                     const XtraOp* input) {
  switch (node->kind) {
    case AstKind::kLiteral:
      return MakeConst(node->literal);
    case AstKind::kParam:
      return xtra::MakeParamConst(node->literal, node->param_slot);
    case AstKind::kVarRef: {
      if (input != nullptr) {
        const XtraColumn* c = input->FindOutputByName(node->name);
        if (c != nullptr) return ColRefOf(*c);
        // Virtual row-index column i maps to the implicit order column.
        if (node->name == "i" && input->ord_col != kNoCol) {
          const XtraColumn* oc = input->FindOutput(input->ord_col);
          return ColRefOf(*oc);
        }
      }
      Result<VarBinding> b = LookupVar(node->name);
      if (!b.ok()) {
        if (input != nullptr) {
          std::vector<std::string> names;
          for (const auto& c : input->output) names.push_back(c.name);
          return BindError(StrCat(
              "'", node->name,
              "' is neither a column of the input table (available: ",
              Join(names, ", "), ") nor a variable in any scope"));
        }
        return b.status();
      }
      if (b->kind == VarBinding::Kind::kScalar) {
        return MakeConst(b->scalar);
      }
      return BindError(StrCat("'", node->name,
                              "' cannot be used as a scalar here (bound to "
                              "a ",
                              b->kind == VarBinding::Kind::kRelation
                                  ? "table"
                                  : "function",
                              ")"));
    }
    case AstKind::kDyad:
      return BindDyadScalar(*node, input);
    case AstKind::kApply:
      return BindApplyScalar(*node, input);
    case AstKind::kCond: {
      auto cse = std::make_shared<ScalarExpr>();
      cse->kind = ScalarKind::kCase;
      for (const auto& b : node->args) {
        HQ_ASSIGN_OR_RETURN(ScalarPtr e, BindScalar(b, input));
        cse->args.push_back(std::move(e));
      }
      cse->has_else = node->args.size() % 2 == 1;
      cse->type = cse->args.size() > 1 ? cse->args[1]->type : QType::kUnary;
      cse->nullable = true;
      return ScalarPtr(cse);
    }
    default:
      return BindError(StrCat(
          "q construct at ", node->loc.line, ":", node->loc.column,
          " has no scalar SQL translation yet"));
  }
}

Result<ScalarPtr> Binder::MakeOrderedWindow(const std::string& func,
                                            std::vector<ScalarPtr> args,
                                            const XtraOp* input, QType type,
                                            bool has_frame,
                                            int64_t frame_preceding) {
  if (input == nullptr || input->ord_col == kNoCol) {
    return BindError(StrCat(
        "'", func,
        "' needs the table's implicit order column (ordcol) to express "
        "ordered semantics in SQL; the input table does not provide one"));
  }
  const XtraColumn* oc = input->FindOutput(input->ord_col);
  auto w = std::make_shared<ScalarExpr>();
  w->kind = ScalarKind::kWindow;
  w->func = func;
  w->args = std::move(args);
  w->order_by.push_back({ColRefOf(*oc), true});
  w->type = type;
  w->nullable = true;
  w->has_frame = has_frame;
  w->frame_preceding = frame_preceding;
  return ScalarPtr(w);
}

Result<ScalarPtr> Binder::BindDyadScalar(const AstNode& node,
                                         const XtraOp* input) {
  const std::string& op = node.name;

  // Operators with special right-hand sides.
  if (op == "$") {
    HQ_ASSIGN_OR_RETURN(QValue target, BindConstant(node.lhs));
    if (!target.is_atom() || target.type() != QType::kSymbol) {
      return BindError("cast ($) requires a literal type-name symbol");
    }
    HQ_ASSIGN_OR_RETURN(ScalarPtr arg, BindScalar(node.rhs, input));
    const std::string& t = target.AsSym();
    QType to;
    if (t.empty() || t == "symbol") {
      to = QType::kSymbol;
    } else if (t == "long" || t == "j") {
      to = QType::kLong;
    } else if (t == "int" || t == "i") {
      to = QType::kInt;
    } else if (t == "short" || t == "h") {
      to = QType::kShort;
    } else if (t == "float" || t == "f") {
      to = QType::kFloat;
    } else if (t == "real" || t == "e") {
      to = QType::kReal;
    } else if (t == "boolean" || t == "b") {
      to = QType::kBool;
    } else if (t == "date" || t == "d") {
      to = QType::kDate;
    } else if (t == "time" || t == "t") {
      to = QType::kTime;
    } else if (t == "timestamp" || t == "p") {
      to = QType::kTimestamp;
    } else if (t == "string" || t == "c" || t == "char") {
      to = QType::kChar;
    } else {
      return BindError(StrCat("cast to `", t, " is not translatable"));
    }
    return MakeCast(std::move(arg), to);
  }

  if (op == "in") {
    HQ_ASSIGN_OR_RETURN(ScalarPtr lhs, BindScalar(node.lhs, input));
    HQ_ASSIGN_OR_RETURN(ScalarPtr rhs, BindScalar(node.rhs, input));
    if (rhs->kind != ScalarKind::kConst) {
      return Unsupported(
          "in: only membership against constant lists is translatable");
    }
    if (rhs->value.is_atom()) {
      return MakeFunc("eq", {lhs, rhs}, QType::kBool);
    }
    return MakeFunc("in", {std::move(lhs), std::move(rhs)}, QType::kBool);
  }

  if (op == "within") {
    HQ_ASSIGN_OR_RETURN(ScalarPtr x, BindScalar(node.lhs, input));
    HQ_ASSIGN_OR_RETURN(QValue range, BindConstant(node.rhs));
    if (range.is_atom() || range.Count() != 2) {
      return BindError("within requires a constant 2-element range");
    }
    return MakeFunc("between",
                    {std::move(x), MakeConst(range.ElementAt(0)),
                     MakeConst(range.ElementAt(1))},
                    QType::kBool);
  }

  if (op == "like") {
    HQ_ASSIGN_OR_RETURN(ScalarPtr x, BindScalar(node.lhs, input));
    HQ_ASSIGN_OR_RETURN(QValue pat, BindConstant(node.rhs));
    if (pat.type() != QType::kChar) {
      return BindError("like requires a constant string pattern");
    }
    // Translate q glob wildcards to SQL LIKE wildcards.
    std::string q = pat.is_atom() ? std::string(1, pat.AsChar())
                                  : pat.CharsView();
    std::string sql;
    for (char c : q) {
      if (c == '*') {
        sql.push_back('%');
      } else if (c == '?') {
        sql.push_back('_');
      } else {
        sql.push_back(c);
      }
    }
    return MakeFunc("like", {std::move(x), MakeConst(QValue::Chars(sql))},
                    QType::kBool);
  }

  if (op == "mavg" || op == "msum" || op == "mmax" || op == "mmin") {
    HQ_ASSIGN_OR_RETURN(QValue n, BindConstant(node.lhs));
    if (!n.is_atom() || !IsIntegralBacked(n.type())) {
      return BindError(StrCat(op, " requires a constant integer window"));
    }
    HQ_ASSIGN_OR_RETURN(ScalarPtr x, BindScalar(node.rhs, input));
    std::string wf = op == "mavg" ? "avg"
                     : op == "msum" ? "sum"
                     : op == "mmax" ? "max"
                                    : "min";
    QType t = op == "mavg" ? QType::kFloat : x->type;
    return MakeOrderedWindow(wf, {std::move(x)}, input, t,
                             /*has_frame=*/true,
                             /*frame_preceding=*/n.AsInt() - 1);
  }

  if (op == "xprev") {
    HQ_ASSIGN_OR_RETURN(QValue n, BindConstant(node.lhs));
    HQ_ASSIGN_OR_RETURN(ScalarPtr x, BindScalar(node.rhs, input));
    QType t = x->type;
    return MakeOrderedWindow("lag",
                             {std::move(x), MakeConst(QValue::Long(n.AsInt()))},
                             input, t);
  }

  if (op == "fby") {
    // (agg; values) fby group: the aggregate over `values` within each
    // group of `group`, broadcast to every row — a window function.
    if (node.lhs->kind != AstKind::kListLit || node.lhs->args.size() != 2 ||
        (node.lhs->args[0]->kind != AstKind::kVarRef &&
         node.lhs->args[0]->kind != AstKind::kFnRef)) {
      return BindError(
          "fby: left argument must be (aggregate; values) with a named "
          "aggregate");
    }
    const std::string& agg = node.lhs->args[0]->name;
    static const std::set<std::string> kWindowable = {
        "sum", "avg", "min", "max", "count", "first", "last"};
    if (kWindowable.count(agg) == 0) {
      return Unsupported(StrCat("fby: aggregate '", agg,
                                "' has no window form in the backend"));
    }
    HQ_ASSIGN_OR_RETURN(ScalarPtr values,
                        BindScalar(node.lhs->args[1], input));
    HQ_ASSIGN_OR_RETURN(ScalarPtr group, BindScalar(node.rhs, input));
    auto w = std::make_shared<ScalarExpr>();
    w->kind = ScalarKind::kWindow;
    w->func = agg;
    w->args.push_back(values);
    w->partition_by.push_back(std::move(group));
    w->type = DeriveFuncType(agg, {values});
    w->nullable = true;
    if (agg == "first" || agg == "last") {
      if (input == nullptr || input->ord_col == kNoCol) {
        return BindError("fby first/last needs the implicit order column");
      }
      const XtraColumn* oc = input->FindOutput(input->ord_col);
      w->func = "first_value";
      w->order_by.push_back({ColRefOf(*oc), agg == "first"});
    }
    return ScalarPtr(w);
  }

  if (op == "cov" || op == "cor") {
    // Population covariance/correlation expand into aggregate arithmetic:
    //   cov(x,y) = avg(x*y) - avg(x)*avg(y)
    //   cor(x,y) = cov(x,y) / (dev(x)*dev(y))
    HQ_ASSIGN_OR_RETURN(ScalarPtr x, BindScalar(node.lhs, input));
    HQ_ASSIGN_OR_RETURN(ScalarPtr y, BindScalar(node.rhs, input));
    ScalarPtr xy = MakeFunc("mul", {x, y}, QType::kFloat);
    ScalarPtr cov = MakeFunc(
        "sub",
        {MakeAgg("avg", {std::move(xy)}, QType::kFloat),
         MakeFunc("mul",
                  {MakeAgg("avg", {x}, QType::kFloat),
                   MakeAgg("avg", {y}, QType::kFloat)},
                  QType::kFloat)},
        QType::kFloat);
    if (op == "cov") return cov;
    ScalarPtr denom = MakeFunc("mul",
                               {MakeAgg("dev", {x}, QType::kFloat),
                                MakeAgg("dev", {y}, QType::kFloat)},
                               QType::kFloat);
    return MakeFunc("fdiv", {std::move(cov), std::move(denom)},
                    QType::kFloat);
  }

  if (op == "wavg" || op == "wsum") {
    HQ_ASSIGN_OR_RETURN(ScalarPtr w, BindScalar(node.lhs, input));
    HQ_ASSIGN_OR_RETURN(ScalarPtr x, BindScalar(node.rhs, input));
    ScalarPtr wx = MakeFunc("mul", {w, x}, QType::kFloat);
    ScalarPtr swx = MakeAgg("sum", {std::move(wx)}, QType::kFloat);
    if (op == "wsum") return swx;
    ScalarPtr sw = MakeAgg("sum", {w}, QType::kFloat);
    return MakeFunc("fdiv", {std::move(swx), std::move(sw)}, QType::kFloat);
  }

  // Generic dyads: bind both sides (right first, as q would evaluate).
  HQ_ASSIGN_OR_RETURN(ScalarPtr rhs, BindScalar(node.rhs, input));
  HQ_ASSIGN_OR_RETURN(ScalarPtr lhs, BindScalar(node.lhs, input));

  std::string func;
  if (op == "+") {
    func = "add";
  } else if (op == "-") {
    func = "sub";
  } else if (op == "*") {
    func = "mul";
  } else if (op == "%") {
    func = "fdiv";
  } else if (op == "=") {
    func = "eq";
  } else if (op == "<>") {
    func = "ne";
  } else if (op == "<") {
    func = "lt";
  } else if (op == ">") {
    func = "gt";
  } else if (op == "<=") {
    func = "le";
  } else if (op == ">=") {
    func = "ge";
  } else if (op == "~") {
    func = "eq_ind";
  } else if (op == "&" || op == "and") {
    func = lhs->type == QType::kBool && rhs->type == QType::kBool
               ? "and"
               : "least";
  } else if (op == "|" || op == "or") {
    func = lhs->type == QType::kBool && rhs->type == QType::kBool
               ? "or"
               : "greatest";
  } else if (op == "mod") {
    func = "mod";
  } else if (op == "div") {
    func = "idiv";
  } else if (op == "xbar") {
    func = "xbar";
  } else if (op == "^") {
    // x^y fills nulls in y with x.
    return MakeFunc("coalesce", {std::move(rhs), std::move(lhs)},
                    DeriveFuncType("coalesce", {rhs, lhs}));
  } else if (op == ",") {
    if (lhs->type == QType::kChar && rhs->type == QType::kChar) {
      func = "concat";
    } else {
      return Unsupported(
          "',' (join) is only translatable for string concatenation in "
          "scalar contexts");
    }
  } else {
    return Unsupported(StrCat("dyadic '", op,
                              "' has no scalar SQL translation yet"));
  }
  std::vector<ScalarPtr> args{std::move(lhs), std::move(rhs)};
  QType t = DeriveFuncType(func, args);
  return MakeFunc(std::move(func), std::move(args), t);
}

Result<ScalarPtr> Binder::BindApplyScalar(const AstNode& node,
                                          const XtraOp* input) {
  const AstPtr& callee = node.child;
  if (callee->kind == AstKind::kVarRef || callee->kind == AstKind::kFnRef) {
    // Shadowing check: a user variable beats the builtin.
    if (callee->kind == AstKind::kVarRef && input != nullptr &&
        input->FindOutputByName(callee->name) != nullptr) {
      // Column used as function -> indexing; not translatable.
      return Unsupported(StrCat("indexing column '", callee->name,
                                "' is not translatable in scalar context"));
    }
    return BindNamedCall(callee->name, node.args, input, node.loc);
  }
  return Unsupported(
      "only named function applications are translatable in scalar "
      "contexts; lambdas are unrolled at statement level");
}

Result<ScalarPtr> Binder::BindNamedCall(const std::string& name,
                                        const std::vector<AstPtr>& args,
                                        const XtraOp* input, SourceLoc loc) {
  auto bind_args = [&]() -> Result<std::vector<ScalarPtr>> {
    std::vector<ScalarPtr> out;
    for (const auto& a : args) {
      HQ_ASSIGN_OR_RETURN(ScalarPtr e, BindScalar(a, input));
      out.push_back(std::move(e));
    }
    return out;
  };

  if (name == "?") {
    // Vector conditional ?[c;a;b] maps to CASE WHEN c THEN a ELSE b END.
    if (args.size() != 3) {
      return BindError("?[c;a;b] takes exactly 3 arguments");
    }
    HQ_ASSIGN_OR_RETURN(std::vector<ScalarPtr> a, bind_args());
    auto cse = std::make_shared<ScalarExpr>();
    cse->kind = ScalarKind::kCase;
    cse->args = {a[0], a[1], a[2]};
    cse->has_else = true;
    cse->type = a[1]->type;
    cse->nullable = a[1]->nullable || a[2]->nullable;
    return ScalarPtr(cse);
  }

  if (IsAggName(name)) {
    if (args.size() != 1) {
      return BindError(StrCat(name, " takes exactly one argument"));
    }
    HQ_ASSIGN_OR_RETURN(std::vector<ScalarPtr> a, bind_args());
    QType t = DeriveFuncType(name, a);
    if (name == "count") {
      // Q `count` is list length: per group that is the group size,
      // nulls included. SQL COUNT(col) skips NULLs, so lower to
      // COUNT(*) instead (the argument only establishes the grouping
      // context, it never changes the answer).
      return MakeAgg("count_star", {}, QType::kLong);
    }
    return MakeAgg(name, std::move(a), t);
  }

  static const std::set<std::string> kScalarFuncs = {
      "neg",    "abs",  "sqrt", "exp",    "log",   "floor",
      "ceiling", "signum", "not", "upper", "lower"};
  if (kScalarFuncs.count(name) > 0) {
    if (args.size() != 1) {
      return BindError(StrCat(name, " takes exactly one argument"));
    }
    HQ_ASSIGN_OR_RETURN(std::vector<ScalarPtr> a, bind_args());
    QType t = name == "upper" || name == "lower" ? a[0]->type
                                                 : DeriveFuncType(name, a);
    return MakeFunc(name, std::move(a), t);
  }
  if (name == "null") {
    HQ_ASSIGN_OR_RETURN(std::vector<ScalarPtr> a, bind_args());
    return MakeFunc("isnull", std::move(a), QType::kBool);
  }
  if (name == "string") {
    HQ_ASSIGN_OR_RETURN(std::vector<ScalarPtr> a, bind_args());
    return MakeCast(a[0], QType::kChar);
  }

  // Ordered vector functions lower to window functions over ordcol (§3.3:
  // the Xformer/binder inject window functions to realize implicit order).
  if (name == "prev" || name == "next") {
    HQ_ASSIGN_OR_RETURN(std::vector<ScalarPtr> a, bind_args());
    QType t = a[0]->type;
    return MakeOrderedWindow(name == "prev" ? "lag" : "lead", std::move(a),
                             input, t);
  }
  if (name == "sums" || name == "mins" || name == "maxs") {
    HQ_ASSIGN_OR_RETURN(std::vector<ScalarPtr> a, bind_args());
    QType t = a[0]->type;
    std::string wf = name == "sums" ? "sum" : (name == "mins" ? "min" : "max");
    return MakeOrderedWindow(wf, std::move(a), input, t);
  }
  if (name == "deltas") {
    HQ_ASSIGN_OR_RETURN(std::vector<ScalarPtr> a, bind_args());
    ScalarPtr x = a[0];
    QType t = x->type;
    HQ_ASSIGN_OR_RETURN(ScalarPtr lagged,
                        MakeOrderedWindow("lag", {x}, input, t));
    // First element passes through: x - coalesce(lag(x), 0).
    ScalarPtr filled = MakeFunc(
        "coalesce", {std::move(lagged), MakeConst(QValue::Long(0))}, t);
    ScalarPtr sub = MakeFunc("sub", {x, std::move(filled)},
                             DeriveFuncType("sub", {x, filled}));
    // Q `deltas` over temporal lists yields plain counts (longs), but the
    // backend keeps temporal-minus-scalar temporal; cast to line up.
    if (IsTemporal(t)) return MakeCast(std::move(sub), QType::kLong);
    return sub;
  }
  if (name == "ratios") {
    HQ_ASSIGN_OR_RETURN(std::vector<ScalarPtr> a, bind_args());
    ScalarPtr x = a[0];
    HQ_ASSIGN_OR_RETURN(ScalarPtr lagged,
                        MakeOrderedWindow("lag", {x}, input, x->type));
    return MakeFunc("fdiv", {x, std::move(lagged)}, QType::kFloat);
  }

  return Unsupported(StrCat(
      "function '", name, "' at ", loc.line, ":", loc.column,
      " has no SQL translation yet (nyi); supported here: aggregates, "
      "arithmetic, comparisons and ordered vector functions"));
}

}  // namespace hyperq
