#ifndef HYPERQ_SQLDB_TYPES_H_
#define HYPERQ_SQLDB_TYPES_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace hyperq {
namespace sqldb {

/// SQL column types supported by the mini PG-compatible engine. The set
/// covers what Hyper-Q's serializer emits for the Q type system plus common
/// DDL spellings.
enum class SqlType {
  kBoolean,
  kSmallInt,
  kInteger,
  kBigInt,
  kReal,
  kDouble,
  kVarchar,
  kText,
  kDate,       ///< days since 2000-01-01 (rebased internally like Q)
  kTime,       ///< milliseconds since midnight
  kTimestamp,  ///< nanoseconds since 2000-01-01
  kNull,       ///< type of a bare NULL literal before coercion
};

/// Canonical lower-case name, e.g. "bigint", "double precision".
const char* SqlTypeName(SqlType type);

/// Parses a type name (case-insensitive, ignores length args like
/// varchar(32)).
Result<SqlType> SqlTypeFromName(const std::string& name);

bool IsNumericType(SqlType type);
bool IsIntegralType(SqlType type);
bool IsStringType(SqlType type);
bool IsTemporalType(SqlType type);

/// A single SQL value: NULL or a typed payload. Integral and temporal
/// values share the int64 payload; float4/float8 the double payload;
/// varchar/text the string payload. SQL three-valued logic lives in the
/// expression evaluator, not here.
class Datum {
 public:
  /// Constructs NULL.
  Datum() : is_null_(true), type_(SqlType::kNull) {}

  static Datum Null() { return Datum(); }
  static Datum Bool(bool v) { return Datum(SqlType::kBoolean, v ? 1 : 0); }
  static Datum Int(SqlType type, int64_t v) { return Datum(type, v); }
  static Datum BigInt(int64_t v) { return Datum(SqlType::kBigInt, v); }
  static Datum Double(double v) {
    Datum d;
    d.is_null_ = false;
    d.type_ = SqlType::kDouble;
    d.f_ = v;
    return d;
  }
  static Datum Float(SqlType type, double v) {
    Datum d;
    d.is_null_ = false;
    d.type_ = type;
    d.f_ = v;
    return d;
  }
  static Datum String(SqlType type, std::string v) {
    Datum d;
    d.is_null_ = false;
    d.type_ = type;
    d.s_ = std::move(v);
    return d;
  }
  static Datum Text(std::string v) {
    return String(SqlType::kText, std::move(v));
  }
  static Datum Varchar(std::string v) {
    return String(SqlType::kVarchar, std::move(v));
  }
  static Datum Date(int64_t days) { return Datum(SqlType::kDate, days); }
  static Datum Time(int64_t ms) { return Datum(SqlType::kTime, ms); }
  static Datum Timestamp(int64_t ns) {
    return Datum(SqlType::kTimestamp, ns);
  }

  bool is_null() const { return is_null_; }
  SqlType type() const { return type_; }

  int64_t AsInt() const { return i_; }
  double AsDouble() const {
    if (type_ == SqlType::kReal || type_ == SqlType::kDouble) return f_;
    return static_cast<double>(i_);
  }
  const std::string& AsString() const { return s_; }
  bool AsBool() const { return i_ != 0; }

  /// Text rendering used by the PG wire protocol (text format) and tests.
  std::string ToText() const;

  /// SQL equality treating NULLs per IS NOT DISTINCT FROM (both NULL ->
  /// equal). Cross-numeric comparisons coerce to double.
  static bool DistinctEquals(const Datum& a, const Datum& b);

  /// Three-way comparison for ORDER BY (caller decides null placement).
  /// Only call with non-null operands.
  static int Compare(const Datum& a, const Datum& b);

 private:
  Datum(SqlType type, int64_t v) : is_null_(false), type_(type), i_(v) {}

  bool is_null_;
  SqlType type_;
  int64_t i_ = 0;
  double f_ = 0;
  std::string s_;
};

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_TYPES_H_
