#ifndef HYPERQ_SQLDB_EVAL_H_
#define HYPERQ_SQLDB_EVAL_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sqldb/ast.h"
#include "sqldb/relation.h"

namespace hyperq {
namespace sqldb {

/// Evaluation context for one row of a relation. `agg_values` supplies
/// pre-computed results for aggregate nodes (grouped execution) keyed by
/// node identity; `window_values` supplies per-row window function results.
struct EvalCtx {
  const Relation* rel = nullptr;
  size_t row_idx = 0;
  const std::unordered_map<const Expr*, Datum>* agg_values = nullptr;
  const std::unordered_map<const Expr*, std::vector<Datum>>* window_values =
      nullptr;
};

/// Evaluates an expression under SQL three-valued logic (contrast with the
/// Q engine's 2-valued logic — bridging the two is the Xformer's job, §3.3).
Result<Datum> EvalExpr(const Expr& e, const EvalCtx& ctx);

/// Context for columnar (batch) expression evaluation. `agg_rows`, when
/// set, supplies one aggregate-value map per row of `rel` (grouped
/// projection/HAVING, where every output row is a group).
struct BatchCtx {
  const Relation* rel = nullptr;
  const std::vector<std::unordered_map<const Expr*, Datum>>* agg_rows =
      nullptr;
  const std::unordered_map<const Expr*, std::vector<Datum>>* window_values =
      nullptr;
};

/// Resolves and memoizes every column reference in the tree against `rel`
/// (skipping window nodes, whose values are precomputed). Returns false if
/// any reference does not resolve; callers then fall back to sequential
/// row-at-a-time evaluation, which reports the bind error. Running this
/// before fanning an expression out to worker threads makes the memo
/// read-only inside the parallel region.
bool PreResolve(const Expr& e, const Relation& rel);

/// Evaluates e over rows sel[0..n) of ctx.rel (sel == nullptr means rows
/// [0, n)) into a column of n results. Comparisons, arithmetic and boolean
/// logic run as type-specialized loops; other nodes fall back to EvalExpr
/// per row. Rows are processed in ascending order, so the first failing
/// row's error is returned, like the row-at-a-time path.
Result<ColumnPtr> EvalBatch(const Expr& e, const BatchCtx& ctx,
                            const uint32_t* sel, size_t n);

/// Filter evaluation: appends to *out the rows among sel[0..n) (ascending)
/// where e evaluates TRUE. AND/OR narrow the candidate rows exactly the way
/// short-circuit evaluation does — the set of (row, subexpression) pairs
/// evaluated matches EvalExpr row by row, so data-dependent errors surface
/// on the same rows.
Status EvalFilter(const Expr& e, const BatchCtx& ctx, const uint32_t* sel,
                  size_t n, SelVector* out);

/// Casts a datum to a target type (CAST / '::' semantics).
Result<Datum> CastDatum(const Datum& d, SqlType target);

/// True when the datum is boolean-true (non-null and non-zero).
bool DatumIsTrue(const Datum& d);

/// Collects aggregate call nodes (FuncCall with aggregate name) from an
/// expression tree; does not descend into window specs.
void CollectAggregates(const ExprPtr& e, std::vector<const Expr*>* out);

/// Collects window nodes from an expression tree.
void CollectWindows(const ExprPtr& e, std::vector<const Expr*>* out);

/// True if the function name denotes an aggregate.
bool IsAggregateFunction(const std::string& lower_name);

/// Computes one aggregate over the given member rows of a relation.
Result<Datum> ComputeAggregate(const Expr& agg, const Relation& rel,
                               const std::vector<size_t>& member_rows);

/// Columnar variant: the aggregate's argument has already been evaluated
/// into `arg_col`, indexed by the same row ids as `member_rows`. Semantics
/// (NULL skipping, DISTINCT, member-order float accumulation) are identical
/// to ComputeAggregate. Not valid for COUNT(*) (no argument).
Result<Datum> ComputeAggregateColumnar(const Expr& agg, const Column& arg_col,
                                       const SelVector& member_rows);

/// Compares two cells of one column with Datum::Compare semantics (the
/// column is homogeneously typed, so the typed branch is exact). Shared by
/// the interpreted ORDER BY / DISTINCT paths and the fused-kernel sort so
/// both tiers order rows identically by construction. Callers handle NULLs
/// before comparing.
int CompareCells(const Column& col, size_t a, size_t b);

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_EVAL_H_
