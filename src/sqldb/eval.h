#ifndef HYPERQ_SQLDB_EVAL_H_
#define HYPERQ_SQLDB_EVAL_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sqldb/ast.h"
#include "sqldb/relation.h"

namespace hyperq {
namespace sqldb {

/// Evaluation context for one row of a relation. `agg_values` supplies
/// pre-computed results for aggregate nodes (grouped execution) keyed by
/// node identity; `window_values` supplies per-row window function results.
struct EvalCtx {
  const Relation* rel = nullptr;
  size_t row_idx = 0;
  const std::unordered_map<const Expr*, Datum>* agg_values = nullptr;
  const std::unordered_map<const Expr*, std::vector<Datum>>* window_values =
      nullptr;
};

/// Evaluates an expression under SQL three-valued logic (contrast with the
/// Q engine's 2-valued logic — bridging the two is the Xformer's job, §3.3).
Result<Datum> EvalExpr(const Expr& e, const EvalCtx& ctx);

/// Casts a datum to a target type (CAST / '::' semantics).
Result<Datum> CastDatum(const Datum& d, SqlType target);

/// True when the datum is boolean-true (non-null and non-zero).
bool DatumIsTrue(const Datum& d);

/// Collects aggregate call nodes (FuncCall with aggregate name) from an
/// expression tree; does not descend into window specs.
void CollectAggregates(const ExprPtr& e, std::vector<const Expr*>* out);

/// Collects window nodes from an expression tree.
void CollectWindows(const ExprPtr& e, std::vector<const Expr*>* out);

/// True if the function name denotes an aggregate.
bool IsAggregateFunction(const std::string& lower_name);

/// Computes one aggregate over the given member rows of a relation.
Result<Datum> ComputeAggregate(const Expr& agg, const Relation& rel,
                               const std::vector<size_t>& member_rows);

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_EVAL_H_
