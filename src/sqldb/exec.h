#ifndef HYPERQ_SQLDB_EXEC_H_
#define HYPERQ_SQLDB_EXEC_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sqldb/ast.h"
#include "sqldb/catalog.h"
#include "sqldb/eval.h"
#include "sqldb/relation.h"
#include "sqldb/session.h"

namespace hyperq {
namespace sqldb {

/// Executes SELECT statements against the catalog and a session's temporary
/// objects. Execution is fully materialized: FROM (scans/joins) -> WHERE ->
/// GROUP BY/HAVING -> window functions -> projection -> DISTINCT ->
/// ORDER BY -> LIMIT, with UNION ALL combining core results.
///
/// Joins use a hash join on the equality conjuncts of the ON clause
/// (including null-safe IS NOT DISTINCT FROM keys, which Hyper-Q emits to
/// impose Q's 2-valued null logic, §3.3) and fall back to nested loops.
class Executor {
 public:
  Executor(Catalog* catalog, Session* session)
      : catalog_(catalog), session_(session) {}

  Result<Relation> ExecuteSelect(const SelectStmt& stmt);

  /// Infers the static output type of an expression against input columns
  /// (used for RowDescription of empty results).
  static SqlType InferType(const Expr& e, const Relation& input);

 private:
  /// Everything except UNION ALL / final ORDER BY / LIMIT.
  struct CoreResult {
    Relation output;
    /// The pre-projection relation and per-row aggregate values, kept so
    /// ORDER BY can reference input expressions.
    Relation work;
    std::vector<std::unordered_map<const Expr*, Datum>> agg_per_row;
    std::unordered_map<const Expr*, std::vector<Datum>> window_values;
    bool distinct_applied = false;
  };
  Result<CoreResult> ExecCore(const SelectStmt& stmt);

  Result<Relation> EvalTableRef(const TableRef& ref);
  Result<Relation> LookupNamed(const std::string& name,
                               const std::string& alias);
  Result<Relation> ExecJoin(const TableRef& join);

  Status ComputeWindows(
      const std::vector<const Expr*>& nodes, const Relation& work,
      const std::vector<std::unordered_map<const Expr*, Datum>>& agg_per_row,
      std::unordered_map<const Expr*, std::vector<Datum>>* out);

  Status ApplyOrderBy(const SelectStmt& stmt, CoreResult* core);
  Status ApplyLimit(const SelectStmt& stmt, Relation* rel);

  Catalog* catalog_;
  Session* session_;
  int view_depth_ = 0;
};

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_EXEC_H_
