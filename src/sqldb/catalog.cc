#include "sqldb/catalog.h"

#include "common/strings.h"

namespace hyperq {
namespace sqldb {

int StoredTable::FindColumn(const std::string& col) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == col) return static_cast<int>(i);
  }
  return -1;
}

void StoredTable::EnsureColumns() {
  while (data.size() < columns.size()) {
    data.push_back(Column::Make(columns[data.size()].type));
  }
}

void StoredTable::AppendRow(const std::vector<Datum>& row) {
  EnsureColumns();
  for (size_t c = 0; c < data.size(); ++c) {
    if (data[c].use_count() > 1) {
      data[c] = std::make_shared<Column>(*data[c]);
    }
    data[c]->Append(c < row.size() ? row[c] : Datum::Null());
  }
  ++row_count;
}

std::vector<Datum> StoredTable::RowAt(size_t row) const {
  std::vector<Datum> out;
  out.reserve(data.size());
  for (const auto& c : data) out.push_back(c->At(row));
  return out;
}

Status Catalog::CreateTable(StoredTable table, bool or_replace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!or_replace && tables_.count(table.name) > 0) {
    return AlreadyExists(StrCat("table '", table.name, "' already exists"));
  }
  if (views_.count(table.name) > 0) {
    return AlreadyExists(
        StrCat("a view named '", table.name, "' already exists"));
  }
  std::string name = table.name;
  tables_[name] = std::make_shared<StoredTable>(std::move(table));
  ++version_;
  table_versions_[name] = ++table_stamp_;
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name, bool if_exists) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(name) == 0) {
    if (if_exists) return Status::OK();
    return NotFound(StrCat("table '", name, "' does not exist"));
  }
  ++version_;
  table_versions_[name] = ++table_stamp_;
  return Status::OK();
}

Result<std::shared_ptr<StoredTable>> Catalog::GetTable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFound(StrCat("relation '", name, "' does not exist"));
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(name) > 0;
}

Status Catalog::CreateView(StoredView view, bool or_replace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!or_replace && views_.count(view.name) > 0) {
    return AlreadyExists(StrCat("view '", view.name, "' already exists"));
  }
  if (tables_.count(view.name) > 0) {
    return AlreadyExists(
        StrCat("a table named '", view.name, "' already exists"));
  }
  views_[view.name] = std::move(view);
  ++version_;
  return Status::OK();
}

Status Catalog::DropView(const std::string& name, bool if_exists) {
  std::lock_guard<std::mutex> lock(mu_);
  if (views_.erase(name) == 0) {
    if (if_exists) return Status::OK();
    return NotFound(StrCat("view '", name, "' does not exist"));
  }
  ++version_;
  return Status::OK();
}

Result<StoredView> Catalog::GetView(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    return NotFound(StrCat("view '", name, "' does not exist"));
  }
  return it->second;
}

bool Catalog::HasView(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.count(name) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Status Catalog::AppendRows(const std::string& name,
                           std::vector<std::vector<Datum>> rows) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFound(StrCat("table '", name, "' does not exist"));
  }
  // Copy-on-write so concurrent readers of the old snapshot stay valid:
  // the table copy shares column buffers, and the first append to each
  // column clones it (Column CoW), leaving prior snapshots untouched.
  auto updated = std::make_shared<StoredTable>(*it->second);
  for (const auto& r : rows) updated->AppendRow(r);
  it->second = std::move(updated);
  ++version_;
  table_versions_[name] = ++table_stamp_;
  return Status::OK();
}

Status Catalog::AppendColumns(const std::string& name,
                              std::vector<ColumnPtr> cols, size_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFound(StrCat("table '", name, "' does not exist"));
  }
  if (cols.size() != it->second->columns.size()) {
    return InvalidArgument(
        StrCat("AppendColumns to '", name, "': got ", cols.size(),
               " columns, table has ", it->second->columns.size()));
  }
  for (const auto& c : cols) {
    if (!c || c->size() != rows) {
      return InvalidArgument(
          StrCat("AppendColumns to '", name, "': column batch is not ",
                 rows, " rows"));
    }
  }
  // Same copy-on-write discipline as AppendRows: clone the table shell,
  // clone each still-shared column buffer once, then bulk-append.
  auto updated = std::make_shared<StoredTable>(*it->second);
  updated->EnsureColumns();
  for (size_t c = 0; c < updated->data.size(); ++c) {
    if (updated->data[c].use_count() > 1) {
      updated->data[c] = std::make_shared<Column>(*updated->data[c]);
    }
    updated->data[c]->AppendColumn(*cols[c]);
  }
  updated->row_count += rows;
  it->second = std::move(updated);
  table_versions_[name] = ++table_stamp_;
  return Status::OK();
}

uint64_t Catalog::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

uint64_t Catalog::TableVersion(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_versions_.find(name);
  return it == table_versions_.end() ? 0 : it->second;
}

}  // namespace sqldb
}  // namespace hyperq
