#ifndef HYPERQ_SQLDB_KERNEL_REGISTRY_H_
#define HYPERQ_SQLDB_KERNEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/metrics.h"
#include "common/status.h"
#include "sqldb/ast.h"
#include "sqldb/catalog.h"
#include "sqldb/kernel.h"
#include "sqldb/relation.h"

namespace hyperq {
namespace sqldb {

class Session;

/// The second fingerprint-keyed cache (the first is the translation cache,
/// src/core/translation_cache.h): maps a canonical SELECT fingerprint to a
/// compiled KernelPlan, version-stamped against the owning catalog so any
/// DDL/DML invalidates stale kernels on the next lookup. Unsupported
/// shapes are negative-cached so repeated cold queries don't re-walk the
/// compiler. One registry per Database; thread-safe.
class KernelRegistry {
 public:
  explicit KernelRegistry(Catalog* catalog);

  KernelRegistry(const KernelRegistry&) = delete;
  KernelRegistry& operator=(const KernelRegistry&) = delete;

  /// Tries to run `stmt` through a fused kernel. Returns:
  ///   - nullopt: not kernel-runnable here (unsupported shape, session
  ///     temp-table shadowing, stale schema, armed `backend.kernel`
  ///     fault, registry disabled) — caller falls back to the
  ///     interpreted executor;
  ///   - a Result: the kernel ran; an error Result is authoritative
  ///     (deadline expiry), not a fallback signal.
  std::optional<Result<Relation>> TryExecuteSelect(const SelectStmt& stmt,
                                                   const Session* session);

  /// Drops every cached plan (wired into `.hyperq.cacheClear`).
  void Clear();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  size_t size() const;

  /// Test hook: pretend the registry was built by an older (or newer)
  /// grammar so negative-cache staleness can be exercised without a real
  /// grammar change. Production code never calls this.
  void set_grammar_version_for_test(int version) {
    std::lock_guard<std::mutex> lock(mu_);
    grammar_version_ = version;
  }

 private:
  struct Entry {
    uint64_t catalog_version = 0;
    /// Grammar version that produced this entry. A negative entry from an
    /// older grammar only proves the *old* compiler rejected the shape, so
    /// it is treated as a miss and re-fingerprinted (positive entries stay
    /// valid: a plan that compiled is correct under any newer grammar).
    int grammar_version = kKernelGrammarVersion;
    /// nullptr = negative entry (shape compiles to "unsupported").
    std::shared_ptr<const KernelPlan> plan;
    std::list<std::string>::iterator lru_it;
  };

  /// Looks up / compiles the plan for `fp` under the current catalog
  /// version. Returns nullptr when the statement is negative-cached.
  std::shared_ptr<const KernelPlan> PlanFor(const KernelFingerprint& fp,
                                            const SelectStmt& stmt,
                                            uint64_t version);

  static constexpr size_t kCapacity = 256;

  /// Bumps the `kernel.reject.<reason>` counter for a rejected shape.
  /// Unknown reasons fold into `kernel.reject.other`.
  void CountReject(const char* reason);

  Catalog* catalog_;
  std::atomic<bool> enabled_{true};

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recent
  /// Grammar version stamped onto new entries; kKernelGrammarVersion except
  /// under set_grammar_version_for_test.
  int grammar_version_ = kKernelGrammarVersion;

  Counter* hits_;
  Counter* misses_;
  Counter* fallbacks_;
  LatencyHistogram* compile_us_;
  LatencyHistogram* exec_us_;
  /// Labeled rejection counters (kernel.reject.subquery, .order_by, ...),
  /// pre-created so `.hyperq.stats[]` always lists the full set at zero.
  std::unordered_map<std::string, Counter*> reject_counters_;
  Counter* reject_other_;
};

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_KERNEL_REGISTRY_H_
