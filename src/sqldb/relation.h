#ifndef HYPERQ_SQLDB_RELATION_H_
#define HYPERQ_SQLDB_RELATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sqldb/types.h"

namespace hyperq {
namespace sqldb {

/// A selection vector: row positions into a relation or column, always in
/// ascending order when produced by a filter.
using SelVector = std::vector<uint32_t>;

/// A typed column of values. The executor's unit of data: scans share
/// columns between the catalog and results (shared_ptr, copy-on-write),
/// filters produce selection vectors over them, and kernels in eval.cc run
/// tight loops over the typed payload vectors.
///
/// Storage discipline: every non-null value in a column carries the SAME
/// SqlType (`value_type()`), so one payload vector plus a null byte-map
/// reconstructs every cell exactly. The engine's Datum model, however,
/// allows heterogeneous cells (CASE branches of different types, sum()
/// switching int/double per group), so a column that sees a second value
/// type degrades to `kMixed`: a plain vector<Datum> that preserves the old
/// per-cell behavior bit for bit. The fast paths check the storage tag.
class Column {
 public:
  enum class Storage {
    kEmpty,   ///< no non-null value seen yet (all cells NULL)
    kInt,     ///< bool/int/temporal family: int64 payload
    kFloat,   ///< real/double: double payload
    kString,  ///< varchar/text: string payload
    kMixed,   ///< heterogeneous cells: Datum payload
  };

  Column() = default;

  /// An empty column expecting values of `type` (kNull -> kEmpty storage).
  static std::shared_ptr<Column> Make(SqlType type);
  /// n copies of d.
  static std::shared_ptr<Column> Constant(const Datum& d, size_t n);
  /// Adopts a full payload vector. value_type must match the storage class
  /// of the vector; `nulls` is a per-cell null byte-map (empty = no nulls,
  /// otherwise same length as the payload; payload slots at null positions
  /// are ignored).
  static std::shared_ptr<Column> FromInts(SqlType value_type,
                                          std::vector<int64_t> v,
                                          std::vector<uint8_t> nulls = {});
  static std::shared_ptr<Column> FromFloats(SqlType value_type,
                                            std::vector<double> v,
                                            std::vector<uint8_t> nulls = {});
  static std::shared_ptr<Column> FromStrings(SqlType value_type,
                                             std::vector<std::string> v,
                                             std::vector<uint8_t> nulls = {});
  /// Adopts heterogeneous cells as-is (kMixed storage).
  static std::shared_ptr<Column> FromDatums(std::vector<Datum> v);

  size_t size() const { return size_; }
  Storage storage() const { return storage_; }
  /// Type of the non-null values (kNull for kEmpty, unspecified for kMixed).
  SqlType value_type() const { return value_type_; }
  bool has_nulls() const { return storage_ == Storage::kMixed ? true
                                                              : !nulls_.empty(); }

  bool IsNull(size_t i) const {
    if (storage_ == Storage::kMixed) return mixed_[i].is_null();
    if (storage_ == Storage::kEmpty) return true;
    return !nulls_.empty() && nulls_[i] != 0;
  }

  /// Reconstructs the cell as a Datum, faithful to what row-major storage
  /// would have held (NULL cells are type-kNull Datums, like the old rows).
  Datum At(size_t i) const;

  void Reserve(size_t n);
  void Append(const Datum& d);
  /// Appends src[i]; faster than At+Append when storages match.
  void AppendFrom(const Column& src, size_t i);
  /// Appends all of src (column-wise concat for UNION ALL).
  void AppendColumn(const Column& src);
  /// Appends a NULL cell.
  void AppendNull();

  /// New column with rows sel[0..n) of this one.
  std::shared_ptr<Column> Gather(const uint32_t* sel, size_t n) const;
  /// Like Gather but indices are signed and -1 produces a NULL cell (outer
  /// join padding, empty-group representative rows).
  std::shared_ptr<Column> GatherPad(const int64_t* idx, size_t n) const;

  /// Morsel-parallel gather support: GatherAlloc sizes an n-row output
  /// column (payload and null map allocated to match what Gather/GatherPad
  /// would produce, contents unspecified); GatherRange/GatherPadRange then
  /// fill the disjoint slice [lo, hi), so chunks can run on different
  /// threads. GatherPadRange returns true if any slot in its slice came
  /// out NULL; when no slice reports NULLs the caller must ClearNulls()
  /// to keep the result byte-identical to GatherPad.
  std::shared_ptr<Column> GatherAlloc(size_t n, bool pad) const;
  void GatherRange(const uint32_t* sel, size_t lo, size_t hi,
                   Column* out) const;
  bool GatherPadRange(const int64_t* idx, size_t lo, size_t hi,
                      Column* out) const;
  void ClearNulls() { nulls_.clear(); }

  /// Typed payload access for kernels. Valid only for the matching storage.
  const int64_t* ints() const { return ints_.data(); }
  const double* floats() const { return floats_.data(); }
  const std::vector<std::string>& strs() const { return strs_; }
  const std::vector<Datum>& mixed() const { return mixed_; }
  /// Null byte-map; empty means "no nulls" (only for non-mixed storage).
  const std::vector<uint8_t>& null_bytes() const { return nulls_; }

  /// Moves the payload out (end-of-pipeline pivot). The column is left
  /// empty. Only valid for the matching storage.
  std::vector<int64_t> TakeInts();
  std::vector<double> TakeFloats();
  std::vector<std::string> TakeStrings();
  /// Moves the null byte-map out. Call *before* TakeInts/TakeFloats/
  /// TakeStrings (they reset the column, discarding the map); the column
  /// then reads as all-non-null.
  std::vector<uint8_t> TakeNullBytes() {
    std::vector<uint8_t> v = std::move(nulls_);
    nulls_.clear();
    return v;
  }

  /// The truth test the engine applies to WHERE/HAVING/CASE conditions:
  /// non-null and integer payload != 0. (Float and string cells are never
  /// "true" — they read the int payload slot, which matches the historic
  /// Datum behavior exactly.)
  bool TruthAt(size_t i) const {
    switch (storage_) {
      case Storage::kInt:
        return !IsNull(i) && ints_[i] != 0;
      case Storage::kMixed:
        return !mixed_[i].is_null() && mixed_[i].AsInt() != 0;
      default:
        return false;
    }
  }

  /// Appends the group/join key encoding of cell i to *out (identical bytes
  /// to EncodeDatum on the reconstructed Datum, without building it).
  void EncodeValue(size_t i, std::string* out) const;

 private:
  static Storage StorageFor(SqlType t);
  void DegradeToMixed();
  void EnsureNulls();

  Storage storage_ = Storage::kEmpty;
  SqlType value_type_ = SqlType::kNull;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> floats_;
  std::vector<std::string> strs_;
  std::vector<Datum> mixed_;
  std::vector<uint8_t> nulls_;  ///< non-empty => per-cell null bytes
};

using ColumnPtr = std::shared_ptr<Column>;

/// A column of an intermediate relation, carrying the range-variable
/// qualifier it is visible under (table alias).
struct RelColumn {
  std::string qualifier;
  std::string name;
  SqlType type = SqlType::kText;
};

/// A fully materialized intermediate result in columnar form. `cols` is the
/// schema (names/qualifiers), `columns` the data, kept index-aligned.
/// `row_count` is explicit so zero-column relations (SELECT without FROM)
/// still carry a cardinality.
struct Relation {
  std::vector<RelColumn> cols;
  std::vector<ColumnPtr> columns;
  size_t row_count = 0;

  /// Resolves [qualifier.]name to a column index; reports ambiguity and
  /// misses with verbose messages (the serializer relies on exact names).
  Result<int> Resolve(const std::string& qualifier,
                      const std::string& name) const;

  Datum At(size_t row, size_t col) const { return columns[col]->At(row); }
  std::vector<Datum> RowAt(size_t row) const;

  void AddColumn(RelColumn meta, ColumnPtr data);
  /// Appends one row, cloning any column shared with another relation
  /// first (copy-on-write). If the relation has no columns yet, creates
  /// untyped ones to fit.
  void AppendRow(const std::vector<Datum>& row);
  void Reserve(size_t n);
  /// Clones columns[c] if its buffer is shared (call before mutating).
  Column* MutableColumn(size_t c);

  /// New relation with rows sel[0..n), same schema. Gathers columns in
  /// parallel when the pool has capacity.
  Relation GatherRows(const uint32_t* sel, size_t n) const;
  /// Signed-index gather; -1 rows become all-NULL.
  Relation GatherRowsPad(const int64_t* idx, size_t n) const;
};

/// Stable hashable encoding of a datum for group/distinct/join keys. Two
/// datums encode equal iff DistinctEquals holds.
void EncodeDatum(const Datum& d, std::string* out);
std::string EncodeKeyRow(const std::vector<Datum>& row);

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_RELATION_H_
