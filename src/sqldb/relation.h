#ifndef HYPERQ_SQLDB_RELATION_H_
#define HYPERQ_SQLDB_RELATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sqldb/types.h"

namespace hyperq {
namespace sqldb {

/// A column of an intermediate relation, carrying the range-variable
/// qualifier it is visible under (table alias).
struct RelColumn {
  std::string qualifier;
  std::string name;
  SqlType type = SqlType::kText;
};

/// A fully materialized intermediate result. The engine evaluates SELECTs
/// by materializing each operator's output — simple, deterministic and fast
/// enough for an in-memory analytical engine at benchmark scale.
struct Relation {
  std::vector<RelColumn> cols;
  std::vector<std::vector<Datum>> rows;

  /// Resolves [qualifier.]name to a column index; reports ambiguity and
  /// misses with verbose messages (the serializer relies on exact names).
  Result<int> Resolve(const std::string& qualifier,
                      const std::string& name) const;
};

/// Stable hashable encoding of a datum for group/distinct/join keys. Two
/// datums encode equal iff DistinctEquals holds.
void EncodeDatum(const Datum& d, std::string* out);
std::string EncodeKeyRow(const std::vector<Datum>& row);

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_RELATION_H_
