#ifndef HYPERQ_SQLDB_CATALOG_H_
#define HYPERQ_SQLDB_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "sqldb/ast.h"
#include "sqldb/types.h"

namespace hyperq {
namespace sqldb {

struct TableColumn {
  std::string name;
  SqlType type = SqlType::kText;
};

/// A stored table: schema plus row-major data. Rows are owned by the table;
/// the executor copies what it needs.
struct StoredTable {
  std::string name;
  std::vector<TableColumn> columns;
  std::vector<std::vector<Datum>> rows;
  /// Declared sort order (column names), advisory metadata exposed through
  /// the metadata interface for the binder's property derivation.
  std::vector<std::string> sort_keys;
  /// Declared key columns (advisory, used by the binder for keyed tables).
  std::vector<std::string> key_columns;

  int FindColumn(const std::string& name) const;
};

struct StoredView {
  std::string name;
  SelectPtr select;  ///< The defining query.
};

/// The system catalog: named tables and views. Temporary objects live in a
/// per-session overlay (see Database::Session); this is the shared, durable
/// part. Thread-safe via a coarse mutex — matching kdb+'s one-request-at-a-
/// time execution model (§2.2), fine-grained concurrency is out of scope.
class Catalog {
 public:
  Status CreateTable(StoredTable table, bool or_replace = false);
  Status DropTable(const std::string& name, bool if_exists);
  Result<std::shared_ptr<StoredTable>> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  Status CreateView(StoredView view, bool or_replace);
  Status DropView(const std::string& name, bool if_exists);
  Result<StoredView> GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Appends rows to an existing table (INSERT path).
  Status AppendRows(const std::string& name,
                    std::vector<std::vector<Datum>> rows);

  /// Monotonic version counter bumped by every DDL/DML change; the
  /// metadata cache uses it for invalidation (§6).
  uint64_t version() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<StoredTable>> tables_;
  std::map<std::string, StoredView> views_;
  uint64_t version_ = 0;
};

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_CATALOG_H_
