#ifndef HYPERQ_SQLDB_CATALOG_H_
#define HYPERQ_SQLDB_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "sqldb/ast.h"
#include "sqldb/relation.h"
#include "sqldb/types.h"

namespace hyperq {
namespace sqldb {

struct TableColumn {
  std::string name;
  SqlType type = SqlType::kText;
};

/// A stored table: schema plus columnar data. Column buffers are shared
/// with scans by reference (shared_ptr); all mutation goes through
/// AppendRow, which clones a shared buffer first (copy-on-write), so
/// result sets handed out earlier never see later inserts.
struct StoredTable {
  std::string name;
  std::vector<TableColumn> columns;
  /// Column data, index-aligned with `columns`.
  std::vector<ColumnPtr> data;
  size_t row_count = 0;
  /// Declared sort order (column names), advisory metadata exposed through
  /// the metadata interface for the binder's property derivation.
  std::vector<std::string> sort_keys;
  /// Declared key columns (advisory, used by the binder for keyed tables).
  std::vector<std::string> key_columns;

  int FindColumn(const std::string& name) const;

  /// Creates empty column buffers for any schema column that lacks one.
  void EnsureColumns();
  /// Appends one row (copy-on-write on shared column buffers).
  void AppendRow(const std::vector<Datum>& row);
  std::vector<Datum> RowAt(size_t row) const;
};

struct StoredView {
  std::string name;
  SelectPtr select;  ///< The defining query.
};

/// The system catalog: named tables and views. Temporary objects live in a
/// per-session overlay (see Database::Session); this is the shared, durable
/// part. Thread-safe via a coarse mutex — matching kdb+'s one-request-at-a-
/// time execution model (§2.2), fine-grained concurrency is out of scope.
class Catalog {
 public:
  Status CreateTable(StoredTable table, bool or_replace = false);
  Status DropTable(const std::string& name, bool if_exists);
  Result<std::shared_ptr<StoredTable>> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  Status CreateView(StoredView view, bool or_replace);
  Status DropView(const std::string& name, bool if_exists);
  Result<StoredView> GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Appends rows to an existing table (INSERT path).
  Status AppendRows(const std::string& name,
                    std::vector<std::vector<Datum>> rows);

  /// Appends whole column batches to an existing table — the ingest flush
  /// path. `cols` must be index-aligned with the table's schema and all of
  /// length `rows`. Copy-on-write like AppendRows, so readers holding the
  /// previous StoredTable snapshot are never disturbed. Bumps only the
  /// table's own version (see TableVersion), not the global one: a data
  /// flush invalidates the flushed table's compiled kernels but leaves
  /// every other table's caches — and the schema-dependent translation
  /// tier — untouched.
  Status AppendColumns(const std::string& name, std::vector<ColumnPtr> cols,
                       size_t rows);

  /// Monotonic version counter bumped by every DDL/DML change; the
  /// metadata cache uses it for invalidation (§6).
  uint64_t version() const;

  /// Per-table version: bumped whenever `name` itself is created, dropped,
  /// or mutated (AppendRow/AppendRows/AppendColumns). The kernel registry
  /// stamps compiled plans with this, so flushing one table cannot evict
  /// another table's hot kernels. Returns 0 for unknown tables.
  uint64_t TableVersion(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<StoredTable>> tables_;
  std::map<std::string, StoredView> views_;
  uint64_t version_ = 0;
  /// Monotonic stamp source for table_versions_; advances on every table
  /// mutation (including flushes that leave `version_` alone) so a stamp
  /// comparison never aliases across distinct states of one table.
  uint64_t table_stamp_ = 0;
  std::map<std::string, uint64_t> table_versions_;
};

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_CATALOG_H_
