#ifndef HYPERQ_SQLDB_SQL_LEXER_H_
#define HYPERQ_SQLDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sqldb/types.h"

namespace hyperq {
namespace sqldb {

enum class SqlTokKind {
  kIdent,    ///< identifier or keyword (normalized to lower unless quoted)
  kNumber,   ///< integer or decimal literal (payload in int_val/dbl_val)
  kString,   ///< 'quoted string' with '' escaping
  kOp,       ///< symbolic operator: = <> < > <= >= + - * / % || :: . etc.
  kLParen,
  kRParen,
  kComma,
  kSemi,
  kEof,
};

struct SqlToken {
  SqlTokKind kind = SqlTokKind::kEof;
  std::string text;     ///< raw/normalized spelling
  bool quoted = false;  ///< identifier was "double quoted"
  bool is_int = false;
  int64_t int_val = 0;
  double dbl_val = 0;
  int pos = 0;  ///< byte offset for diagnostics
};

/// Tokenizes one SQL string (PostgreSQL-ish lexical rules: case-insensitive
/// keywords, 'string' literals with doubled quotes, "quoted idents",
/// -- line comments and /* block comments */).
Result<std::vector<SqlToken>> TokenizeSql(const std::string& text);

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_SQL_LEXER_H_
