#include "sqldb/ast.h"

namespace hyperq {
namespace sqldb {

ExprPtr MakeConst(Datum d) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->datum = std::move(d);
  return e;
}

ExprPtr MakeColRef(std::string qualifier, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeStar(std::string qualifier) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kStar;
  e->qualifier = std::move(qualifier);
  return e;
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = std::move(op);
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeUnary(std::string op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->op = std::move(op);
  e->lhs = std::move(operand);
  return e;
}

ExprPtr MakeFunc(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = std::move(name);
  e->args = std::move(args);
  return e;
}

}  // namespace sqldb
}  // namespace hyperq
