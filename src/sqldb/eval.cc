#include "sqldb/eval.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

#include "common/strings.h"
#include "qval/temporal.h"

namespace hyperq {
namespace sqldb {

namespace {

bool IsFloatDatum(const Datum& d) {
  return d.type() == SqlType::kReal || d.type() == SqlType::kDouble;
}

Result<Datum> NumericBinary(const std::string& op, const Datum& a,
                            const Datum& b) {
  if (!IsNumericType(a.type()) && !IsTemporalType(a.type())) {
    return TypeError(StrCat("operator ", op, " not defined for ",
                            SqlTypeName(a.type())));
  }
  if (!IsNumericType(b.type()) && !IsTemporalType(b.type())) {
    return TypeError(StrCat("operator ", op, " not defined for ",
                            SqlTypeName(b.type())));
  }
  bool use_float = IsFloatDatum(a) || IsFloatDatum(b);
  if (op == "/" && use_float) {
    double y = b.AsDouble();
    return Datum::Double(a.AsDouble() / y);
  }
  if (use_float) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    if (op == "+") return Datum::Double(x + y);
    if (op == "-") return Datum::Double(x - y);
    if (op == "*") return Datum::Double(x * y);
    if (op == "%") {
      if (y == 0) return ExecutionError("division by zero");
      return Datum::Double(std::fmod(x, y));
    }
    return InternalError(StrCat("unknown numeric operator ", op));
  }
  int64_t x = a.AsInt();
  int64_t y = b.AsInt();
  // Temporal arithmetic: value +/- integer stays temporal; so does the
  // sum of two same-typed temporals (matching q's promotion).
  SqlType rt = SqlType::kBigInt;
  if (IsTemporalType(a.type()) && !IsTemporalType(b.type())) rt = a.type();
  if (IsTemporalType(b.type()) && !IsTemporalType(a.type())) rt = b.type();
  if (IsTemporalType(a.type()) && a.type() == b.type() && op != "-") {
    rt = a.type();
  }
  if (op == "+") return Datum::Int(rt, x + y);
  if (op == "-") {
    if (IsTemporalType(a.type()) && a.type() == b.type()) {
      return Datum::BigInt(x - y);  // difference of temporals is a count
    }
    return Datum::Int(rt, x - y);
  }
  if (op == "*") return Datum::Int(rt, x * y);
  if (op == "/") {
    if (y == 0) return ExecutionError("division by zero");
    return Datum::BigInt(x / y);  // PG: integer division truncates
  }
  if (op == "%") {
    if (y == 0) return ExecutionError("division by zero");
    return Datum::BigInt(x % y);
  }
  return InternalError(StrCat("unknown numeric operator ", op));
}

Result<int> CompareDatums(const Datum& a, const Datum& b,
                          const std::string& op_for_error) {
  bool sa = IsStringType(a.type());
  bool sb = IsStringType(b.type());
  if (sa != sb) {
    return TypeError(StrCat("cannot compare ", SqlTypeName(a.type()), " ",
                            op_for_error, " ", SqlTypeName(b.type())));
  }
  return Datum::Compare(a, b);
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // SQL LIKE: % any sequence, _ any single char.
  size_t t = 0, p = 0, star_t = std::string::npos, star_p = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_t != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Datum> EvalScalarFunction(const Expr& e,
                                 const std::vector<Datum>& args) {
  const std::string& f = e.func_name;
  auto need = [&](size_t n) -> Status {
    if (args.size() != n) {
      return TypeError(StrCat("function ", f, " expects ", n,
                              " argument(s), got ", args.size()));
    }
    return Status::OK();
  };
  // COALESCE / NULLIF / GREATEST / LEAST handle nulls specially.
  if (f == "coalesce") {
    for (const auto& a : args) {
      if (!a.is_null()) return a;
    }
    return Datum::Null();
  }
  if (f == "nullif") {
    HQ_RETURN_IF_ERROR(need(2));
    if (!args[0].is_null() && !args[1].is_null() &&
        Datum::DistinctEquals(args[0], args[1])) {
      return Datum::Null();
    }
    return args[0];
  }
  if (f == "greatest" || f == "least") {
    Datum best;
    for (const auto& a : args) {
      if (a.is_null()) continue;
      if (best.is_null()) {
        best = a;
        continue;
      }
      int cmp = Datum::Compare(a, best);
      if ((f == "greatest" && cmp > 0) || (f == "least" && cmp < 0)) {
        best = a;
      }
    }
    return best;
  }

  // Remaining functions are strict: NULL in -> NULL out.
  for (const auto& a : args) {
    if (a.is_null()) return Datum::Null();
  }

  if (f == "abs") {
    HQ_RETURN_IF_ERROR(need(1));
    if (IsFloatDatum(args[0])) return Datum::Double(std::fabs(args[0].AsDouble()));
    int64_t v = args[0].AsInt();
    // Preserve the integral/temporal type (q's abs is type-preserving).
    SqlType rt = args[0].type() == SqlType::kBoolean ? SqlType::kBigInt
                                                     : args[0].type();
    return Datum::Int(rt, v < 0 ? -v : v);
  }
  if (f == "floor" || f == "ceil" || f == "ceiling" || f == "round") {
    HQ_RETURN_IF_ERROR(need(1));
    double v = args[0].AsDouble();
    if (f == "floor") return Datum::Double(std::floor(v));
    if (f == "round") return Datum::Double(std::round(v));
    return Datum::Double(std::ceil(v));
  }
  if (f == "sqrt") {
    HQ_RETURN_IF_ERROR(need(1));
    return Datum::Double(std::sqrt(args[0].AsDouble()));
  }
  if (f == "exp") {
    HQ_RETURN_IF_ERROR(need(1));
    return Datum::Double(std::exp(args[0].AsDouble()));
  }
  if (f == "ln" || f == "log") {
    HQ_RETURN_IF_ERROR(need(1));
    return Datum::Double(std::log(args[0].AsDouble()));
  }
  if (f == "power" || f == "pow") {
    HQ_RETURN_IF_ERROR(need(2));
    return Datum::Double(std::pow(args[0].AsDouble(), args[1].AsDouble()));
  }
  if (f == "mod") {
    HQ_RETURN_IF_ERROR(need(2));
    if (args[1].AsInt() == 0) return ExecutionError("division by zero");
    return Datum::BigInt(args[0].AsInt() % args[1].AsInt());
  }
  if (f == "sign") {
    HQ_RETURN_IF_ERROR(need(1));
    double v = args[0].AsDouble();
    return Datum::BigInt(v > 0 ? 1 : (v < 0 ? -1 : 0));
  }
  if (f == "lower" || f == "upper") {
    HQ_RETURN_IF_ERROR(need(1));
    if (!IsStringType(args[0].type())) {
      return TypeError(StrCat(f, " requires a string argument"));
    }
    return Datum::Text(f == "lower" ? ToLower(args[0].AsString())
                                    : ToUpper(args[0].AsString()));
  }
  if (f == "length" || f == "char_length") {
    HQ_RETURN_IF_ERROR(need(1));
    return Datum::BigInt(static_cast<int64_t>(args[0].AsString().size()));
  }
  if (f == "substr" || f == "substring") {
    if (args.size() < 2 || args.size() > 3) {
      return TypeError("substr takes 2 or 3 arguments");
    }
    const std::string& s = args[0].AsString();
    int64_t start = std::max<int64_t>(1, args[1].AsInt()) - 1;
    if (start >= static_cast<int64_t>(s.size())) return Datum::Text("");
    size_t len = args.size() == 3
                     ? static_cast<size_t>(std::max<int64_t>(0, args[2].AsInt()))
                     : std::string::npos;
    return Datum::Text(s.substr(start, len));
  }
  if (f == "concat") {
    std::string out;
    for (const auto& a : args) out += a.ToText();
    return Datum::Text(out);
  }
  return Unsupported(StrCat("function ", f,
                            " is not implemented in the mini PG engine"));
}

/// The non-AND/OR binary operator, applied to already-evaluated operands.
/// Shared between EvalExpr and the per-row fallback of the batch kernels.
Result<Datum> ScalarBinaryTail(const Expr& e, const Datum& a,
                               const Datum& b) {
  const std::string& op = e.op;
  if (op == "IS_DISTINCT" || op == "IS_NOT_DISTINCT") {
    bool eq = Datum::DistinctEquals(a, b);
    return Datum::Bool(op == "IS_DISTINCT" ? !eq : eq);
  }
  if (a.is_null() || b.is_null()) return Datum::Null();
  if (op == "=" || op == "<>" || op == "<" || op == ">" || op == "<=" ||
      op == ">=") {
    HQ_ASSIGN_OR_RETURN(int cmp, CompareDatums(a, b, op));
    bool r;
    if (op == "=") {
      r = cmp == 0;
    } else if (op == "<>") {
      r = cmp != 0;
    } else if (op == "<") {
      r = cmp < 0;
    } else if (op == ">") {
      r = cmp > 0;
    } else if (op == "<=") {
      r = cmp <= 0;
    } else {
      r = cmp >= 0;
    }
    return Datum::Bool(r);
  }
  if (op == "||") {
    return Datum::Text(a.ToText() + b.ToText());
  }
  if (op == "LIKE") {
    if (!IsStringType(a.type()) || !IsStringType(b.type())) {
      return TypeError("LIKE requires string operands");
    }
    return Datum::Bool(LikeMatch(a.AsString(), b.AsString()));
  }
  return NumericBinary(op, a, b);
}

}  // namespace

bool DatumIsTrue(const Datum& d) { return !d.is_null() && d.AsInt() != 0; }

Result<Datum> CastDatum(const Datum& d, SqlType target) {
  if (d.is_null()) return Datum::Null();
  if (d.type() == target) return d;
  if (IsStringType(target)) {
    return Datum::String(target, d.ToText());
  }
  if (IsStringType(d.type())) {
    const std::string& s = d.AsString();
    switch (target) {
      case SqlType::kBoolean: {
        std::string v = ToLower(s);
        if (v == "t" || v == "true" || v == "1") return Datum::Bool(true);
        if (v == "f" || v == "false" || v == "0") return Datum::Bool(false);
        return TypeError(StrCat("invalid boolean literal '", s, "'"));
      }
      case SqlType::kSmallInt:
      case SqlType::kInteger:
      case SqlType::kBigInt:
        return Datum::Int(target, std::atoll(s.c_str()));
      case SqlType::kReal:
      case SqlType::kDouble:
        return Datum::Float(target, std::strtod(s.c_str(), nullptr));
      case SqlType::kDate: {
        HQ_ASSIGN_OR_RETURN(int64_t days, ParseIsoDate(s));
        return Datum::Date(days);
      }
      case SqlType::kTime: {
        HQ_ASSIGN_OR_RETURN(int64_t ms, ParseIsoTime(s));
        return Datum::Time(ms);
      }
      case SqlType::kTimestamp: {
        HQ_ASSIGN_OR_RETURN(int64_t ns, ParseIsoTimestamp(s));
        return Datum::Timestamp(ns);
      }
      default:
        return TypeError(StrCat("cannot cast text to ", SqlTypeName(target)));
    }
  }
  // Numeric/temporal conversions.
  if (IsFloatDatum(d)) {
    double v = d.AsDouble();
    switch (target) {
      case SqlType::kReal:
      case SqlType::kDouble:
        return Datum::Float(target, v);
      case SqlType::kBoolean:
        return Datum::Bool(v != 0);
      case SqlType::kSmallInt:
      case SqlType::kInteger:
      case SqlType::kBigInt:
        return Datum::Int(target, static_cast<int64_t>(std::llround(v)));
      default:
        return TypeError(StrCat("cannot cast double to ",
                                SqlTypeName(target)));
    }
  }
  int64_t v = d.AsInt();
  switch (target) {
    case SqlType::kBoolean:
      return Datum::Bool(v != 0);
    case SqlType::kSmallInt:
    case SqlType::kInteger:
    case SqlType::kBigInt:
      return Datum::Int(target, v);
    case SqlType::kReal:
    case SqlType::kDouble:
      return Datum::Float(target, static_cast<double>(v));
    case SqlType::kDate:
      if (d.type() == SqlType::kTimestamp) {
        int64_t days = v / 86400000000000LL;
        if (v < 0 && v % 86400000000000LL != 0) --days;
        return Datum::Date(days);
      }
      return Datum::Date(v);
    case SqlType::kTime:
      if (d.type() == SqlType::kTimestamp) {
        int64_t rem = v % 86400000000000LL;
        if (rem < 0) rem += 86400000000000LL;
        return Datum::Time(rem / 1000000);
      }
      return Datum::Time(v);
    case SqlType::kTimestamp:
      if (d.type() == SqlType::kDate) {
        return Datum::Timestamp(v * 86400000000000LL);
      }
      return Datum::Timestamp(v);
    default:
      return TypeError(StrCat("cannot cast ", SqlTypeName(d.type()), " to ",
                              SqlTypeName(target)));
  }
}

Result<Datum> EvalExpr(const Expr& e, const EvalCtx& ctx) {
  switch (e.kind) {
    case ExprKind::kConst:
      return e.datum;
    case ExprKind::kColRef: {
      if (ctx.rel == nullptr) {
        return BindError(StrCat("column \"", e.column,
                                "\" referenced without a FROM clause"));
      }
      // Relation addresses can be reused across queries, so validate the
      // memo against the column name before trusting it.
      if (e.resolved_rel == ctx.rel && e.resolved_idx >= 0 &&
          static_cast<size_t>(e.resolved_idx) < ctx.rel->cols.size() &&
          ctx.rel->cols[e.resolved_idx].name == e.column) {
        return ctx.rel->At(ctx.row_idx, e.resolved_idx);
      }
      HQ_ASSIGN_OR_RETURN(int idx, ctx.rel->Resolve(e.qualifier, e.column));
      e.resolved_rel = ctx.rel;
      e.resolved_idx = idx;
      return ctx.rel->At(ctx.row_idx, idx);
    }
    case ExprKind::kStar:
      return BindError("'*' is only valid in select lists and COUNT(*)");
    case ExprKind::kUnary: {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.lhs, ctx));
      if (e.op == "NOT") {
        if (v.is_null()) return Datum::Null();
        return Datum::Bool(!DatumIsTrue(v));
      }
      // Unary minus.
      if (v.is_null()) return Datum::Null();
      if (IsFloatDatum(v)) return Datum::Double(-v.AsDouble());
      return Datum::Int(v.type() == SqlType::kBoolean ? SqlType::kBigInt
                                                      : v.type(),
                        -v.AsInt());
    }
    case ExprKind::kBinary: {
      const std::string& op = e.op;
      if (op == "AND" || op == "OR") {
        // Kleene 3-valued logic with short-circuit.
        HQ_ASSIGN_OR_RETURN(Datum a, EvalExpr(*e.lhs, ctx));
        bool a_true = DatumIsTrue(a);
        bool a_false = !a.is_null() && !a_true;
        if (op == "AND" && a_false) return Datum::Bool(false);
        if (op == "OR" && a_true) return Datum::Bool(true);
        HQ_ASSIGN_OR_RETURN(Datum b, EvalExpr(*e.rhs, ctx));
        bool b_true = DatumIsTrue(b);
        bool b_false = !b.is_null() && !b_true;
        if (op == "AND") {
          if (b_false) return Datum::Bool(false);
          if (a.is_null() || b.is_null()) return Datum::Null();
          return Datum::Bool(true);
        }
        if (b_true) return Datum::Bool(true);
        if (a.is_null() || b.is_null()) return Datum::Null();
        return Datum::Bool(false);
      }
      HQ_ASSIGN_OR_RETURN(Datum a, EvalExpr(*e.lhs, ctx));
      HQ_ASSIGN_OR_RETURN(Datum b, EvalExpr(*e.rhs, ctx));
      return ScalarBinaryTail(e, a, b);
    }
    case ExprKind::kIsNull: {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.lhs, ctx));
      return Datum::Bool(e.negated ? !v.is_null() : v.is_null());
    }
    case ExprKind::kInList: {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.lhs, ctx));
      if (v.is_null()) return Datum::Null();
      bool saw_null = false;
      for (const auto& item : e.args) {
        HQ_ASSIGN_OR_RETURN(Datum x, EvalExpr(*item, ctx));
        if (x.is_null()) {
          saw_null = true;
          continue;
        }
        if (Datum::DistinctEquals(v, x)) {
          return Datum::Bool(!e.negated);
        }
      }
      if (saw_null) return Datum::Null();
      return Datum::Bool(e.negated);
    }
    case ExprKind::kBetween: {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.lhs, ctx));
      HQ_ASSIGN_OR_RETURN(Datum lo, EvalExpr(*e.low, ctx));
      HQ_ASSIGN_OR_RETURN(Datum hi, EvalExpr(*e.high, ctx));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Datum::Null();
      HQ_ASSIGN_OR_RETURN(int c1, CompareDatums(lo, v, "BETWEEN"));
      HQ_ASSIGN_OR_RETURN(int c2, CompareDatums(v, hi, "BETWEEN"));
      bool in = c1 <= 0 && c2 <= 0;
      return Datum::Bool(e.negated ? !in : in);
    }
    case ExprKind::kCase: {
      size_t pairs = e.has_else ? (e.args.size() - 1) / 2 : e.args.size() / 2;
      for (size_t i = 0; i < pairs; ++i) {
        HQ_ASSIGN_OR_RETURN(Datum c, EvalExpr(*e.args[2 * i], ctx));
        if (DatumIsTrue(c)) return EvalExpr(*e.args[2 * i + 1], ctx);
      }
      if (e.has_else) return EvalExpr(*e.args.back(), ctx);
      return Datum::Null();
    }
    case ExprKind::kCast: {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.lhs, ctx));
      return CastDatum(v, e.cast_type);
    }
    case ExprKind::kFuncCall: {
      if (IsAggregateFunction(e.func_name)) {
        if (ctx.agg_values != nullptr) {
          auto it = ctx.agg_values->find(&e);
          if (it != ctx.agg_values->end()) return it->second;
        }
        return BindError(StrCat("aggregate ", e.func_name,
                                " used outside of a grouped context"));
      }
      std::vector<Datum> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) {
        HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*a, ctx));
        args.push_back(std::move(v));
      }
      return EvalScalarFunction(e, args);
    }
    case ExprKind::kWindow: {
      if (ctx.window_values != nullptr) {
        auto it = ctx.window_values->find(&e);
        if (it != ctx.window_values->end()) {
          return it->second[ctx.row_idx];
        }
      }
      return BindError(StrCat("window function ", e.func_name,
                              " used in an unsupported position"));
    }
  }
  return InternalError("unhandled expression kind");
}

bool IsAggregateFunction(const std::string& f) {
  // first/last are engine extensions (DuckDB-style) so Hyper-Q can map q's
  // order-dependent first/last aggregates; they use the group's row order.
  return f == "count" || f == "sum" || f == "avg" || f == "min" ||
         f == "max" || f == "stddev_pop" || f == "stddev" ||
         f == "var_pop" || f == "variance" || f == "bool_and" ||
         f == "bool_or" || f == "median" || f == "first" || f == "last";
}

void CollectAggregates(const ExprPtr& e, std::vector<const Expr*>* out) {
  if (!e) return;
  if (e->kind == ExprKind::kFuncCall && IsAggregateFunction(e->func_name)) {
    out->push_back(e.get());
    return;  // no nested aggregates
  }
  if (e->kind == ExprKind::kWindow) return;
  CollectAggregates(e->lhs, out);
  CollectAggregates(e->rhs, out);
  CollectAggregates(e->low, out);
  CollectAggregates(e->high, out);
  for (const auto& a : e->args) CollectAggregates(a, out);
}

void CollectWindows(const ExprPtr& e, std::vector<const Expr*>* out) {
  if (!e) return;
  if (e->kind == ExprKind::kWindow) {
    out->push_back(e.get());
    return;
  }
  CollectWindows(e->lhs, out);
  CollectWindows(e->rhs, out);
  CollectWindows(e->low, out);
  CollectWindows(e->high, out);
  for (const auto& a : e->args) CollectWindows(a, out);
}

namespace {

/// Reduces the collected (non-null, DISTINCT-filtered, member-ordered)
/// argument values of one aggregate. Shared by the row-at-a-time and the
/// columnar mixed-storage paths so both accumulate in the same order.
Result<Datum> AggregateCollected(const std::string& f,
                                 const std::vector<Datum>& values) {
  if (f == "count") {
    return Datum::BigInt(static_cast<int64_t>(values.size()));
  }
  if (values.empty()) return Datum::Null();

  if (f == "min" || f == "max") {
    Datum best = values[0];
    for (const auto& v : values) {
      int cmp = Datum::Compare(v, best);
      if ((f == "min" && cmp < 0) || (f == "max" && cmp > 0)) best = v;
    }
    return best;
  }
  if (f == "bool_and" || f == "bool_or") {
    bool acc = f == "bool_and";
    for (const auto& v : values) {
      bool t = DatumIsTrue(v);
      acc = f == "bool_and" ? (acc && t) : (acc || t);
    }
    return Datum::Bool(acc);
  }

  bool any_float = false;
  for (const auto& v : values) any_float |= IsFloatDatum(v);
  if (f == "sum") {
    if (any_float) {
      double s = 0;
      for (const auto& v : values) s += v.AsDouble();
      return Datum::Double(s);
    }
    int64_t s = 0;
    for (const auto& v : values) s += v.AsInt();
    return Datum::BigInt(s);
  }
  double s = 0, s2 = 0;
  std::vector<double> xs;
  xs.reserve(values.size());
  for (const auto& v : values) {
    double x = v.AsDouble();
    xs.push_back(x);
    s += x;
    s2 += x * x;
  }
  double n = static_cast<double>(xs.size());
  if (f == "avg") return Datum::Double(s / n);
  if (f == "median") {
    std::sort(xs.begin(), xs.end());
    size_t m = xs.size() / 2;
    return Datum::Double(xs.size() % 2 == 1 ? xs[m]
                                            : (xs[m - 1] + xs[m]) / 2.0);
  }
  double mean = s / n;
  double var_pop = s2 / n - mean * mean;
  if (f == "var_pop") return Datum::Double(var_pop);
  if (f == "stddev_pop") return Datum::Double(std::sqrt(std::max(0.0, var_pop)));
  // Sample variance/stddev (PG's variance/stddev).
  if (xs.size() < 2) return Datum::Null();
  double var_samp = (s2 - n * mean * mean) / (n - 1);
  if (f == "variance") return Datum::Double(var_samp);
  return Datum::Double(std::sqrt(std::max(0.0, var_samp)));  // stddev
}

}  // namespace

Result<Datum> ComputeAggregate(const Expr& agg, const Relation& rel,
                               const std::vector<size_t>& member_rows) {
  const std::string& f = agg.func_name;
  bool star = !agg.args.empty() && agg.args[0]->kind == ExprKind::kStar;
  if (f == "count" && (agg.args.empty() || star)) {
    return Datum::BigInt(static_cast<int64_t>(member_rows.size()));
  }
  if (agg.args.size() != 1 && f != "count") {
    return TypeError(StrCat("aggregate ", f, " takes one argument"));
  }

  // first/last take the group's first/last element in row order, including
  // NULLs (q semantics).
  if (f == "first" || f == "last") {
    if (member_rows.empty()) return Datum::Null();
    EvalCtx ctx;
    ctx.rel = &rel;
    ctx.row_idx = f == "first" ? member_rows.front() : member_rows.back();
    return EvalExpr(*agg.args[0], ctx);
  }

  // Evaluate the argument per member row.
  std::vector<Datum> values;
  values.reserve(member_rows.size());
  std::set<std::string> distinct_seen;
  for (size_t r : member_rows) {
    EvalCtx ctx;
    ctx.rel = &rel;
    ctx.row_idx = r;
    HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*agg.args[0], ctx));
    if (v.is_null()) continue;  // SQL aggregates ignore NULLs
    if (agg.distinct) {
      std::string key;
      EncodeDatum(v, &key);
      if (!distinct_seen.insert(key).second) continue;
    }
    values.push_back(std::move(v));
  }

  return AggregateCollected(f, values);
}

Result<Datum> ComputeAggregateColumnar(const Expr& agg, const Column& col,
                                       const SelVector& member_rows) {
  const std::string& f = agg.func_name;
  // first/last take the group's first/last element in row order, including
  // NULLs (q semantics).
  if (f == "first" || f == "last") {
    if (member_rows.empty()) return Datum::Null();
    return col.At(f == "first" ? member_rows.front() : member_rows.back());
  }

  Column::Storage st = col.storage();
  if (st != Column::Storage::kInt && st != Column::Storage::kFloat) {
    // Strings / mixed / all-null: materialize and reduce exactly like the
    // row path.
    std::vector<Datum> values;
    values.reserve(member_rows.size());
    std::set<std::string> distinct_seen;
    std::string scratch;
    for (uint32_t r : member_rows) {
      if (col.IsNull(r)) continue;
      if (agg.distinct) {
        scratch.clear();
        col.EncodeValue(r, &scratch);
        if (!distinct_seen.insert(scratch).second) continue;
      }
      values.push_back(col.At(r));
    }
    return AggregateCollected(f, values);
  }

  // Typed numeric path: surviving value positions in member order.
  SelVector idx;
  idx.reserve(member_rows.size());
  {
    std::set<std::string> distinct_seen;
    std::string scratch;
    for (uint32_t r : member_rows) {
      if (col.IsNull(r)) continue;
      if (agg.distinct) {
        scratch.clear();
        col.EncodeValue(r, &scratch);
        if (!distinct_seen.insert(scratch).second) continue;
      }
      idx.push_back(r);
    }
  }
  if (f == "count") return Datum::BigInt(static_cast<int64_t>(idx.size()));
  if (idx.empty()) return Datum::Null();

  bool is_float = st == Column::Storage::kFloat;
  const int64_t* iv = col.ints();
  const double* fv = col.floats();
  SqlType vt = col.value_type();

  if (f == "min" || f == "max") {
    if (is_float) {
      // Mirrors Datum::Compare's NaN placement (sorts last): min skips NaN
      // unless every value is NaN; max sticks on the first NaN it meets.
      double best = fv[idx[0]];
      for (uint32_t r : idx) {
        double x = fv[r];
        bool nx = std::isnan(x), nb = std::isnan(best);
        int cmp;
        if (nx && nb) {
          cmp = 0;
        } else if (nx) {
          cmp = 1;
        } else if (nb) {
          cmp = -1;
        } else {
          cmp = x < best ? -1 : (x > best ? 1 : 0);
        }
        if ((f == "min" && cmp < 0) || (f == "max" && cmp > 0)) best = x;
      }
      return Datum::Float(vt, best);
    }
    int64_t best = iv[idx[0]];
    for (uint32_t r : idx) {
      int64_t x = iv[r];
      if ((f == "min" && x < best) || (f == "max" && x > best)) best = x;
    }
    return Datum::Int(vt, best);
  }
  if (f == "bool_and" || f == "bool_or") {
    bool acc = f == "bool_and";
    for (uint32_t r : idx) {
      // DatumIsTrue reads the int slot; float cells are never "true".
      bool t = is_float ? false : iv[r] != 0;
      acc = f == "bool_and" ? (acc && t) : (acc || t);
    }
    return Datum::Bool(acc);
  }
  if (f == "sum") {
    if (is_float) {
      double s = 0;
      for (uint32_t r : idx) s += fv[r];
      return Datum::Double(s);
    }
    int64_t s = 0;
    for (uint32_t r : idx) s += iv[r];
    return Datum::BigInt(s);
  }
  double s = 0, s2 = 0;
  std::vector<double> xs;
  xs.reserve(idx.size());
  for (uint32_t r : idx) {
    double x = is_float ? fv[r] : static_cast<double>(iv[r]);
    xs.push_back(x);
    s += x;
    s2 += x * x;
  }
  double n = static_cast<double>(xs.size());
  if (f == "avg") return Datum::Double(s / n);
  if (f == "median") {
    std::sort(xs.begin(), xs.end());
    size_t m = xs.size() / 2;
    return Datum::Double(xs.size() % 2 == 1 ? xs[m]
                                            : (xs[m - 1] + xs[m]) / 2.0);
  }
  double mean = s / n;
  double var_pop = s2 / n - mean * mean;
  if (f == "var_pop") return Datum::Double(var_pop);
  if (f == "stddev_pop") return Datum::Double(std::sqrt(std::max(0.0, var_pop)));
  if (xs.size() < 2) return Datum::Null();
  double var_samp = (s2 - n * mean * mean) / (n - 1);
  if (f == "variance") return Datum::Double(var_samp);
  return Datum::Double(std::sqrt(std::max(0.0, var_samp)));  // stddev
}

// ---------------------------------------------------------------------------
// Columnar (batch) evaluation
// ---------------------------------------------------------------------------

bool PreResolve(const Expr& e, const Relation& rel) {
  if (e.kind == ExprKind::kColRef) {
    if (e.resolved_rel == &rel && e.resolved_idx >= 0 &&
        static_cast<size_t>(e.resolved_idx) < rel.cols.size() &&
        rel.cols[e.resolved_idx].name == e.column) {
      return true;
    }
    Result<int> r = rel.Resolve(e.qualifier, e.column);
    if (!r.ok()) return false;
    e.resolved_rel = &rel;
    e.resolved_idx = *r;
    return true;
  }
  if (e.kind == ExprKind::kWindow) return true;  // values precomputed
  bool ok = true;
  if (e.lhs) ok = PreResolve(*e.lhs, rel) && ok;
  if (e.rhs) ok = PreResolve(*e.rhs, rel) && ok;
  if (e.low) ok = PreResolve(*e.low, rel) && ok;
  if (e.high) ok = PreResolve(*e.high, rel) && ok;
  for (const auto& a : e.args) {
    if (a) ok = PreResolve(*a, rel) && ok;
  }
  return ok;
}

namespace {

int CmpOpIndex(const std::string& op) {
  if (op == "=") return 0;
  if (op == "<>") return 1;
  if (op == "<") return 2;
  if (op == ">") return 3;
  if (op == "<=") return 4;
  if (op == ">=") return 5;
  return -1;
}

inline bool CmpHolds(int idx, int cmp) {
  switch (idx) {
    case 0:
      return cmp == 0;
    case 1:
      return cmp != 0;
    case 2:
      return cmp < 0;
    case 3:
      return cmp > 0;
    case 4:
      return cmp <= 0;
    default:
      return cmp >= 0;
  }
}

bool IsArithOp(const std::string& op) {
  return op == "+" || op == "-" || op == "*" || op == "/" || op == "%";
}

/// Per-row fallback: evaluates the whole subexpression row by row with
/// EvalExpr. Always correct; used for node kinds and storage combinations
/// the kernels don't specialize.
Result<ColumnPtr> EvalBatchFallback(const Expr& e, const BatchCtx& ctx,
                                    const uint32_t* sel, size_t n) {
  auto out = std::make_shared<Column>();
  EvalCtx c;
  c.rel = ctx.rel;
  c.window_values = ctx.window_values;
  for (size_t i = 0; i < n; ++i) {
    size_t row = sel ? sel[i] : i;
    c.row_idx = row;
    c.agg_values = ctx.agg_rows ? &(*ctx.agg_rows)[row] : nullptr;
    HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(e, c));
    out->Append(v);
  }
  return out;
}

/// The non-AND/OR binary kernel over already-evaluated operand columns
/// (both of length n). Falls back to ScalarBinaryTail per row when the
/// storage combination has no tight loop.
Result<ColumnPtr> BinaryKernel(const Expr& e, const Column& a,
                               const Column& b, size_t n) {
  const std::string& op = e.op;
  auto per_row = [&]() -> Result<ColumnPtr> {
    auto out = std::make_shared<Column>();
    for (size_t i = 0; i < n; ++i) {
      HQ_ASSIGN_OR_RETURN(Datum v, ScalarBinaryTail(e, a.At(i), b.At(i)));
      out->Append(v);
    }
    return out;
  };
  if (op == "IS_DISTINCT" || op == "IS_NOT_DISTINCT") return per_row();
  if (a.storage() == Column::Storage::kMixed ||
      b.storage() == Column::Storage::kMixed) {
    return per_row();
  }
  // An all-NULL operand nulls every remaining operator's result (the type
  // checks in the scalar path only fire when both sides are non-null).
  if (a.storage() == Column::Storage::kEmpty ||
      b.storage() == Column::Storage::kEmpty) {
    return Column::Constant(Datum::Null(), n);
  }

  const uint8_t* an = a.null_bytes().empty() ? nullptr : a.null_bytes().data();
  const uint8_t* bn = b.null_bytes().empty() ? nullptr : b.null_bytes().data();
  bool a_str = a.storage() == Column::Storage::kString;
  bool b_str = b.storage() == Column::Storage::kString;

  int cmp_op = CmpOpIndex(op);
  if (cmp_op >= 0) {
    if (a_str != b_str) return per_row();  // errors on the right row
    std::vector<int64_t> out(n, 0);
    std::vector<uint8_t> nulls(n, 0);
    bool any_null = false;
    if (a_str) {
      const auto& av = a.strs();
      const auto& bv = b.strs();
      for (size_t i = 0; i < n; ++i) {
        if ((an && an[i]) || (bn && bn[i])) {
          nulls[i] = 1;
          any_null = true;
          continue;
        }
        out[i] = CmpHolds(cmp_op, av[i].compare(bv[i])) ? 1 : 0;
      }
    } else if (a.storage() == Column::Storage::kFloat ||
               b.storage() == Column::Storage::kFloat) {
      const double* af = a.floats();
      const double* bf = b.floats();
      const int64_t* ai = a.ints();
      const int64_t* bi = b.ints();
      bool af_ok = a.storage() == Column::Storage::kFloat;
      bool bf_ok = b.storage() == Column::Storage::kFloat;
      for (size_t i = 0; i < n; ++i) {
        if ((an && an[i]) || (bn && bn[i])) {
          nulls[i] = 1;
          any_null = true;
          continue;
        }
        double x = af_ok ? af[i] : static_cast<double>(ai[i]);
        double y = bf_ok ? bf[i] : static_cast<double>(bi[i]);
        int cmp;
        bool nx = std::isnan(x), ny = std::isnan(y);
        if (nx && ny) {
          cmp = 0;
        } else if (nx) {
          cmp = 1;
        } else if (ny) {
          cmp = -1;
        } else {
          cmp = x < y ? -1 : (x > y ? 1 : 0);
        }
        out[i] = CmpHolds(cmp_op, cmp) ? 1 : 0;
      }
    } else {
      const int64_t* ai = a.ints();
      const int64_t* bi = b.ints();
      for (size_t i = 0; i < n; ++i) {
        if ((an && an[i]) || (bn && bn[i])) {
          nulls[i] = 1;
          any_null = true;
          continue;
        }
        int cmp = ai[i] < bi[i] ? -1 : (ai[i] > bi[i] ? 1 : 0);
        out[i] = CmpHolds(cmp_op, cmp) ? 1 : 0;
      }
    }
    return Column::FromInts(SqlType::kBoolean, std::move(out),
                            any_null ? std::move(nulls)
                                     : std::vector<uint8_t>());
  }

  if (!IsArithOp(op)) return per_row();  // ||, LIKE
  SqlType at = a.value_type();
  SqlType bt = b.value_type();
  if ((!IsNumericType(at) && !IsTemporalType(at)) ||
      (!IsNumericType(bt) && !IsTemporalType(bt))) {
    return per_row();  // type error on the first both-non-null row
  }

  char oc = op[0];
  if (a.storage() == Column::Storage::kFloat ||
      b.storage() == Column::Storage::kFloat) {
    const double* af = a.floats();
    const double* bf = b.floats();
    const int64_t* ai = a.ints();
    const int64_t* bi = b.ints();
    bool af_ok = a.storage() == Column::Storage::kFloat;
    bool bf_ok = b.storage() == Column::Storage::kFloat;
    std::vector<double> out(n, 0);
    std::vector<uint8_t> nulls(n, 0);
    bool any_null = false;
    for (size_t i = 0; i < n; ++i) {
      if ((an && an[i]) || (bn && bn[i])) {
        nulls[i] = 1;
        any_null = true;
        continue;
      }
      double x = af_ok ? af[i] : static_cast<double>(ai[i]);
      double y = bf_ok ? bf[i] : static_cast<double>(bi[i]);
      switch (oc) {
        case '+':
          out[i] = x + y;
          break;
        case '-':
          out[i] = x - y;
          break;
        case '*':
          out[i] = x * y;
          break;
        case '/':
          out[i] = x / y;
          break;
        default:  // %
          if (y == 0) return ExecutionError("division by zero");
          out[i] = std::fmod(x, y);
          break;
      }
    }
    return Column::FromFloats(SqlType::kDouble, std::move(out),
                              any_null ? std::move(nulls)
                                       : std::vector<uint8_t>());
  }

  // Integer/temporal path; the result type is uniform per column pair,
  // mirroring NumericBinary's promotion.
  SqlType rt = SqlType::kBigInt;
  if (IsTemporalType(at) && !IsTemporalType(bt)) rt = at;
  if (IsTemporalType(bt) && !IsTemporalType(at)) rt = bt;
  if (IsTemporalType(at) && at == bt && op != "-") rt = at;
  if (op == "-" && IsTemporalType(at) && at == bt) rt = SqlType::kBigInt;
  if (op == "/" || op == "%") rt = SqlType::kBigInt;
  const int64_t* ai = a.ints();
  const int64_t* bi = b.ints();
  std::vector<int64_t> out(n, 0);
  std::vector<uint8_t> nulls(n, 0);
  bool any_null = false;
  for (size_t i = 0; i < n; ++i) {
    if ((an && an[i]) || (bn && bn[i])) {
      nulls[i] = 1;
      any_null = true;
      continue;
    }
    int64_t x = ai[i];
    int64_t y = bi[i];
    switch (oc) {
      case '+':
        out[i] = x + y;
        break;
      case '-':
        out[i] = x - y;
        break;
      case '*':
        out[i] = x * y;
        break;
      case '/':
        if (y == 0) return ExecutionError("division by zero");
        out[i] = x / y;  // PG: integer division truncates
        break;
      default:  // %
        if (y == 0) return ExecutionError("division by zero");
        out[i] = x % y;
        break;
    }
  }
  return Column::FromInts(rt, std::move(out),
                          any_null ? std::move(nulls)
                                   : std::vector<uint8_t>());
}

}  // namespace

Result<ColumnPtr> EvalBatch(const Expr& e, const BatchCtx& ctx,
                            const uint32_t* sel, size_t n) {
  switch (e.kind) {
    case ExprKind::kConst:
      return Column::Constant(e.datum, n);

    case ExprKind::kColRef: {
      if (ctx.rel == nullptr) {
        return BindError(StrCat("column \"", e.column,
                                "\" referenced without a FROM clause"));
      }
      int idx;
      if (e.resolved_rel == ctx.rel && e.resolved_idx >= 0 &&
          static_cast<size_t>(e.resolved_idx) < ctx.rel->cols.size() &&
          ctx.rel->cols[e.resolved_idx].name == e.column) {
        idx = e.resolved_idx;
      } else {
        HQ_ASSIGN_OR_RETURN(idx, ctx.rel->Resolve(e.qualifier, e.column));
        e.resolved_rel = ctx.rel;
        e.resolved_idx = idx;
      }
      const ColumnPtr& col = ctx.rel->columns[idx];
      if (sel == nullptr && n == col->size()) return col;  // zero copy
      return col->Gather(sel, n);
    }

    case ExprKind::kStar:
      return BindError("'*' is only valid in select lists and COUNT(*)");

    case ExprKind::kUnary: {
      HQ_ASSIGN_OR_RETURN(ColumnPtr a, EvalBatch(*e.lhs, ctx, sel, n));
      if (e.op == "NOT") {
        std::vector<int64_t> out(n, 0);
        std::vector<uint8_t> nulls(n, 0);
        bool any_null = false;
        for (size_t i = 0; i < n; ++i) {
          if (a->IsNull(i)) {
            nulls[i] = 1;
            any_null = true;
          } else {
            out[i] = a->TruthAt(i) ? 0 : 1;
          }
        }
        return Column::FromInts(SqlType::kBoolean, std::move(out),
                                any_null ? std::move(nulls)
                                         : std::vector<uint8_t>());
      }
      // Unary minus.
      switch (a->storage()) {
        case Column::Storage::kEmpty:
          return Column::Constant(Datum::Null(), n);
        case Column::Storage::kInt: {
          SqlType rt = a->value_type() == SqlType::kBoolean
                           ? SqlType::kBigInt
                           : a->value_type();
          std::vector<int64_t> out(n, 0);
          const int64_t* av = a->ints();
          for (size_t i = 0; i < n; ++i) out[i] = -av[i];
          return Column::FromInts(rt, std::move(out), a->null_bytes());
        }
        case Column::Storage::kFloat: {
          std::vector<double> out(n, 0);
          const double* av = a->floats();
          for (size_t i = 0; i < n; ++i) out[i] = -av[i];
          return Column::FromFloats(SqlType::kDouble, std::move(out),
                                    a->null_bytes());
        }
        default: {
          auto out = std::make_shared<Column>();
          for (size_t i = 0; i < n; ++i) {
            Datum v = a->At(i);
            if (v.is_null()) {
              out->AppendNull();
            } else if (IsFloatDatum(v)) {
              out->Append(Datum::Double(-v.AsDouble()));
            } else {
              out->Append(Datum::Int(v.type() == SqlType::kBoolean
                                         ? SqlType::kBigInt
                                         : v.type(),
                                     -v.AsInt()));
            }
          }
          return out;
        }
      }
    }

    case ExprKind::kBinary: {
      if (e.op == "AND" || e.op == "OR") {
        bool is_and = e.op == "AND";
        HQ_ASSIGN_OR_RETURN(ColumnPtr a, EvalBatch(*e.lhs, ctx, sel, n));
        // The right side is evaluated exactly where short-circuit
        // evaluation would reach it: AND -> lhs not false, OR -> lhs not
        // true. This keeps data-dependent rhs errors on the same rows.
        SelVector need_abs;
        std::vector<uint32_t> need_loc;
        for (size_t i = 0; i < n; ++i) {
          bool t = a->TruthAt(i);
          bool decided = is_and ? (!a->IsNull(i) && !t) : t;
          if (!decided) {
            need_abs.push_back(sel ? sel[i] : static_cast<uint32_t>(i));
            need_loc.push_back(static_cast<uint32_t>(i));
          }
        }
        HQ_ASSIGN_OR_RETURN(
            ColumnPtr b,
            EvalBatch(*e.rhs, ctx, need_abs.data(), need_abs.size()));
        std::vector<int64_t> out(n, is_and ? 0 : 1);
        std::vector<uint8_t> nulls(n, 0);
        bool any_null = false;
        for (size_t k = 0; k < need_loc.size(); ++k) {
          size_t i = need_loc[k];
          bool bt = b->TruthAt(k);
          bool bn = b->IsNull(k);
          bool a_null = a->IsNull(i);
          if (is_and) {
            if (!bn && !bt) {
              out[i] = 0;
            } else if (a_null || bn) {
              nulls[i] = 1;
              any_null = true;
            } else {
              out[i] = 1;
            }
          } else {
            if (bt) {
              out[i] = 1;
            } else if (a_null || bn) {
              nulls[i] = 1;
              any_null = true;
            } else {
              out[i] = 0;
            }
          }
        }
        return Column::FromInts(SqlType::kBoolean, std::move(out),
                                any_null ? std::move(nulls)
                                         : std::vector<uint8_t>());
      }
      HQ_ASSIGN_OR_RETURN(ColumnPtr a, EvalBatch(*e.lhs, ctx, sel, n));
      HQ_ASSIGN_OR_RETURN(ColumnPtr b, EvalBatch(*e.rhs, ctx, sel, n));
      return BinaryKernel(e, *a, *b, n);
    }

    case ExprKind::kIsNull: {
      HQ_ASSIGN_OR_RETURN(ColumnPtr a, EvalBatch(*e.lhs, ctx, sel, n));
      std::vector<int64_t> out(n, 0);
      for (size_t i = 0; i < n; ++i) {
        bool isn = a->IsNull(i);
        out[i] = (e.negated ? !isn : isn) ? 1 : 0;
      }
      return Column::FromInts(SqlType::kBoolean, std::move(out));
    }

    case ExprKind::kFuncCall: {
      if (IsAggregateFunction(e.func_name)) {
        // The missing-context error is per-row (the row loop of the
        // sequential path): zero rows never error.
        auto out = std::make_shared<Column>();
        for (size_t i = 0; i < n; ++i) {
          size_t row = sel ? sel[i] : i;
          if (ctx.agg_rows != nullptr) {
            const auto& m = (*ctx.agg_rows)[row];
            auto it = m.find(&e);
            if (it != m.end()) {
              out->Append(it->second);
              continue;
            }
          }
          return BindError(StrCat("aggregate ", e.func_name,
                                  " used outside of a grouped context"));
        }
        return out;
      }
      return EvalBatchFallback(e, ctx, sel, n);
    }

    case ExprKind::kWindow: {
      // Missing window values likewise only error when a row asks.
      auto out = std::make_shared<Column>();
      const std::vector<Datum>* vals = nullptr;
      if (ctx.window_values != nullptr) {
        auto it = ctx.window_values->find(&e);
        if (it != ctx.window_values->end()) vals = &it->second;
      }
      for (size_t i = 0; i < n; ++i) {
        if (vals == nullptr) {
          return BindError(StrCat("window function ", e.func_name,
                                  " used in an unsupported position"));
        }
        out->Append((*vals)[sel ? sel[i] : i]);
      }
      return out;
    }

    case ExprKind::kInList:
    case ExprKind::kBetween:
    case ExprKind::kCase:
    case ExprKind::kCast:
      return EvalBatchFallback(e, ctx, sel, n);
  }
  return InternalError("unhandled expression kind");
}

Status EvalFilter(const Expr& e, const BatchCtx& ctx, const uint32_t* sel,
                  size_t n, SelVector* out) {
  if (e.kind == ExprKind::kBinary && (e.op == "AND" || e.op == "OR")) {
    bool is_and = e.op == "AND";
    HQ_ASSIGN_OR_RETURN(ColumnPtr a, EvalBatch(*e.lhs, ctx, sel, n));
    SelVector lhs_true, cand;
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = sel ? sel[i] : static_cast<uint32_t>(i);
      bool t = a->TruthAt(i);
      if (t) lhs_true.push_back(row);
      bool decided = is_and ? (!a->IsNull(i) && !t) : t;
      if (!decided) cand.push_back(row);
    }
    SelVector rhs_true;
    HQ_RETURN_IF_ERROR(
        EvalFilter(*e.rhs, ctx, cand.data(), cand.size(), &rhs_true));
    if (is_and) {
      // TRUE AND TRUE: intersect two ascending lists.
      size_t i = 0, j = 0;
      while (i < lhs_true.size() && j < rhs_true.size()) {
        if (lhs_true[i] < rhs_true[j]) {
          ++i;
        } else if (lhs_true[i] > rhs_true[j]) {
          ++j;
        } else {
          out->push_back(lhs_true[i]);
          ++i;
          ++j;
        }
      }
    } else {
      // lhs-true and rhs-true are disjoint (rhs only ran where lhs was not
      // true); merge the two ascending lists.
      size_t i = 0, j = 0;
      while (i < lhs_true.size() || j < rhs_true.size()) {
        if (j >= rhs_true.size() ||
            (i < lhs_true.size() && lhs_true[i] < rhs_true[j])) {
          out->push_back(lhs_true[i++]);
        } else {
          out->push_back(rhs_true[j++]);
        }
      }
    }
    return Status::OK();
  }
  HQ_ASSIGN_OR_RETURN(ColumnPtr col, EvalBatch(e, ctx, sel, n));
  for (size_t i = 0; i < n; ++i) {
    if (col->TruthAt(i)) {
      out->push_back(sel ? sel[i] : static_cast<uint32_t>(i));
    }
  }
  return Status::OK();
}

int CompareCells(const Column& col, size_t a, size_t b) {
  switch (col.storage()) {
    case Column::Storage::kMixed:
      return Datum::Compare(col.mixed()[a], col.mixed()[b]);
    case Column::Storage::kString: {
      int c = col.strs()[a].compare(col.strs()[b]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case Column::Storage::kFloat: {
      double x = col.floats()[a], y = col.floats()[b];
      bool xn = std::isnan(x), yn = std::isnan(y);
      if (xn || yn) return xn == yn ? 0 : (xn ? 1 : -1);  // NaN sorts last
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case Column::Storage::kInt: {
      int64_t x = col.ints()[a], y = col.ints()[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case Column::Storage::kEmpty:
      return 0;  // all NULL; callers handle nulls before comparing
  }
  return 0;
}

}  // namespace sqldb
}  // namespace hyperq
