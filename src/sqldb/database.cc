#include "sqldb/database.h"

#include "common/strings.h"
#include "sqldb/eval.h"
#include "sqldb/exec.h"
#include "sqldb/sql_parser.h"

namespace hyperq {
namespace sqldb {

namespace {

QueryResult FromRelation(Relation rel) {
  QueryResult out;
  out.has_rows = true;
  out.columns.reserve(rel.cols.size());
  for (const auto& c : rel.cols) {
    out.columns.push_back(TableColumn{c.name, c.type});
  }
  out.command_tag = StrCat("SELECT ", rel.row_count);
  out.data = std::move(rel);  // columns carried through, zero pivot
  return out;
}

/// Coerces a row of datums to a table's column types.
Status CoerceRow(const std::vector<TableColumn>& columns,
                 std::vector<Datum>* row) {
  if (row->size() != columns.size()) {
    return TypeError(StrCat("INSERT has ", row->size(),
                            " expressions but table has ", columns.size(),
                            " columns"));
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    HQ_ASSIGN_OR_RETURN((*row)[i], CastDatum((*row)[i], columns[i].type));
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> Database::Execute(Session* session,
                                      const std::string& sql) {
  HQ_ASSIGN_OR_RETURN(std::vector<SqlStatement> stmts, SqlParser::Parse(sql));
  if (stmts.empty()) {
    return InvalidArgument("empty SQL command string");
  }
  QueryResult last;
  for (const auto& stmt : stmts) {
    HQ_ASSIGN_OR_RETURN(last, ExecuteStatement(session, stmt));
  }
  return last;
}

Result<QueryResult> Database::ExecuteStatement(Session* session,
                                               const SqlStatement& stmt) {
  Executor executor(&catalog_, session);
  switch (stmt.kind) {
    case SqlStatement::Kind::kSelect: {
      // Hot shapes run through the fused-kernel cache; anything it
      // declines (nullopt) falls back to the interpreted executor.
      if (auto kr = kernels_.TryExecuteSelect(*stmt.select, session)) {
        if (!kr->ok()) return kr->status();
        return FromRelation(*std::move(*kr));
      }
      HQ_ASSIGN_OR_RETURN(Relation rel, executor.ExecuteSelect(*stmt.select));
      return FromRelation(std::move(rel));
    }

    case SqlStatement::Kind::kCreateTable: {
      StoredTable table;
      table.name = stmt.target;
      for (const auto& c : stmt.columns) {
        table.columns.push_back(TableColumn{c.name, c.type});
      }
      if (stmt.temporary) {
        if (session == nullptr) {
          return InvalidArgument("temporary table requires a session");
        }
        std::string name = table.name;
        session->temp_tables()[name] =
            std::make_shared<StoredTable>(std::move(table));
      } else {
        HQ_RETURN_IF_ERROR(catalog_.CreateTable(std::move(table)));
      }
      QueryResult r;
      r.command_tag = "CREATE TABLE";
      return r;
    }

    case SqlStatement::Kind::kCreateTableAs: {
      HQ_ASSIGN_OR_RETURN(Relation rel, executor.ExecuteSelect(*stmt.select));
      StoredTable table;
      table.name = stmt.target;
      for (const auto& c : rel.cols) {
        table.columns.push_back(TableColumn{c.name, c.type});
      }
      table.data = std::move(rel.columns);
      table.row_count = rel.row_count;
      if (stmt.temporary) {
        if (session == nullptr) {
          return InvalidArgument("temporary table requires a session");
        }
        std::string name = table.name;
        session->temp_tables()[name] =
            std::make_shared<StoredTable>(std::move(table));
      } else {
        HQ_RETURN_IF_ERROR(catalog_.CreateTable(std::move(table)));
      }
      QueryResult r;
      r.command_tag = "CREATE TABLE AS";
      return r;
    }

    case SqlStatement::Kind::kCreateView: {
      StoredView view;
      view.name = stmt.target;
      view.select = stmt.select;
      if (stmt.temporary) {
        if (session == nullptr) {
          return InvalidArgument("temporary view requires a session");
        }
        std::string name = view.name;
        session->temp_views()[name] = std::move(view);
      } else {
        HQ_RETURN_IF_ERROR(
            catalog_.CreateView(std::move(view), stmt.or_replace));
      }
      QueryResult r;
      r.command_tag = "CREATE VIEW";
      return r;
    }

    case SqlStatement::Kind::kDropTable: {
      if (session != nullptr &&
          session->temp_tables().erase(stmt.target) > 0) {
        QueryResult r;
        r.command_tag = "DROP TABLE";
        return r;
      }
      HQ_RETURN_IF_ERROR(catalog_.DropTable(stmt.target, stmt.if_exists));
      QueryResult r;
      r.command_tag = "DROP TABLE";
      return r;
    }

    case SqlStatement::Kind::kDropView: {
      if (session != nullptr && session->temp_views().erase(stmt.target) > 0) {
        QueryResult r;
        r.command_tag = "DROP VIEW";
        return r;
      }
      HQ_RETURN_IF_ERROR(catalog_.DropView(stmt.target, stmt.if_exists));
      QueryResult r;
      r.command_tag = "DROP VIEW";
      return r;
    }

    case SqlStatement::Kind::kInsertValues:
    case SqlStatement::Kind::kInsertSelect: {
      // Find the target (temp first).
      std::shared_ptr<StoredTable> temp;
      if (session != nullptr) {
        auto it = session->temp_tables().find(stmt.target);
        if (it != session->temp_tables().end()) temp = it->second;
      }
      std::vector<TableColumn> columns;
      if (temp) {
        columns = temp->columns;
      } else {
        HQ_ASSIGN_OR_RETURN(auto table, catalog_.GetTable(stmt.target));
        columns = table->columns;
      }
      if (!stmt.insert_columns.empty() &&
          stmt.insert_columns.size() != columns.size()) {
        return Unsupported(
            "INSERT with a partial column list is not supported");
      }

      std::vector<std::vector<Datum>> rows;
      if (stmt.kind == SqlStatement::Kind::kInsertValues) {
        for (const auto& row_exprs : stmt.insert_rows) {
          std::vector<Datum> row;
          row.reserve(row_exprs.size());
          for (const auto& e : row_exprs) {
            EvalCtx ctx;
            HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e, ctx));
            row.push_back(std::move(v));
          }
          HQ_RETURN_IF_ERROR(CoerceRow(columns, &row));
          rows.push_back(std::move(row));
        }
      } else {
        HQ_ASSIGN_OR_RETURN(Relation rel,
                            executor.ExecuteSelect(*stmt.select));
        for (size_t r = 0; r < rel.row_count; ++r) {
          std::vector<Datum> row = rel.RowAt(r);
          HQ_RETURN_IF_ERROR(CoerceRow(columns, &row));
          rows.push_back(std::move(row));
        }
      }
      size_t count = rows.size();
      if (temp) {
        for (const auto& r : rows) temp->AppendRow(r);
      } else {
        HQ_RETURN_IF_ERROR(catalog_.AppendRows(stmt.target, std::move(rows)));
      }
      QueryResult r;
      r.command_tag = StrCat("INSERT 0 ", count);
      return r;
    }
  }
  return InternalError("unhandled statement kind");
}

}  // namespace sqldb
}  // namespace hyperq
