#include "sqldb/sql_lexer.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace hyperq {
namespace sqldb {

Result<std::vector<SqlToken>> TokenizeSql(const std::string& text) {
  std::vector<SqlToken> out;
  size_t i = 0;
  size_t n = text.size();

  auto push = [&](SqlTokKind kind, std::string t, size_t pos) {
    SqlToken tok;
    tok.kind = kind;
    tok.text = std::move(t);
    tok.pos = static_cast<int>(pos);
    out.push_back(std::move(tok));
  };

  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) ++i;
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    size_t start = i;
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_' || text[i] == '$')) {
        ident.push_back(text[i++]);
      }
      push(SqlTokKind::kIdent, ToLower(ident), start);
      continue;
    }
    // Quoted identifiers keep their exact case.
    if (c == '"') {
      ++i;
      std::string ident;
      while (i < n && text[i] != '"') ident.push_back(text[i++]);
      if (i >= n) {
        return ParseError(StrCat("unterminated quoted identifier at byte ",
                                 start));
      }
      ++i;
      SqlToken tok;
      tok.kind = SqlTokKind::kIdent;
      tok.text = std::move(ident);
      tok.quoted = true;
      tok.pos = static_cast<int>(start);
      out.push_back(std::move(tok));
      continue;
    }
    // String literals with '' escape.
    if (c == '\'') {
      ++i;
      std::string s;
      while (i < n) {
        if (text[i] == '\'') {
          if (i + 1 < n && text[i + 1] == '\'') {
            s.push_back('\'');
            i += 2;
            continue;
          }
          break;
        }
        s.push_back(text[i++]);
      }
      if (i >= n) {
        return ParseError(
            StrCat("unterminated string literal at byte ", start));
      }
      ++i;
      SqlToken tok;
      tok.kind = SqlTokKind::kString;
      tok.text = std::move(s);
      tok.pos = static_cast<int>(start);
      out.push_back(std::move(tok));
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::string num;
      bool is_float = false;
      while (i < n) {
        char d = text[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          num.push_back(d);
          ++i;
        } else if (d == '.' && !is_float) {
          // A second dot would start a new token (e.g. ranges) — not SQL.
          is_float = true;
          num.push_back(d);
          ++i;
        } else if ((d == 'e' || d == 'E') && i + 1 < n &&
                   (std::isdigit(static_cast<unsigned char>(text[i + 1])) ||
                    text[i + 1] == '-' || text[i + 1] == '+')) {
          is_float = true;
          num.push_back(d);
          ++i;
          if (text[i] == '-' || text[i] == '+') num.push_back(text[i++]);
        } else {
          break;
        }
      }
      SqlToken tok;
      tok.kind = SqlTokKind::kNumber;
      tok.text = num;
      tok.pos = static_cast<int>(start);
      if (is_float) {
        tok.dbl_val = std::strtod(num.c_str(), nullptr);
      } else {
        tok.is_int = true;
        tok.int_val = std::atoll(num.c_str());
      }
      out.push_back(std::move(tok));
      continue;
    }
    // Punctuation and operators.
    switch (c) {
      case '(':
        push(SqlTokKind::kLParen, "(", start);
        ++i;
        continue;
      case ')':
        push(SqlTokKind::kRParen, ")", start);
        ++i;
        continue;
      case ',':
        push(SqlTokKind::kComma, ",", start);
        ++i;
        continue;
      case ';':
        push(SqlTokKind::kSemi, ";", start);
        ++i;
        continue;
      default:
        break;
    }
    auto two = [&](const char* op) {
      return i + 1 < n && text[i] == op[0] && text[i + 1] == op[1];
    };
    if (two("<>") || two("<=") || two(">=") || two("!=") || two("::") ||
        two("||")) {
      std::string op = text.substr(i, 2);
      if (op == "!=") op = "<>";
      push(SqlTokKind::kOp, op, start);
      i += 2;
      continue;
    }
    if (std::strchr("=<>+-*/%.", c) != nullptr) {
      push(SqlTokKind::kOp, std::string(1, c), start);
      ++i;
      continue;
    }
    return ParseError(StrCat("SQL lexer: unexpected character '",
                             std::string(1, c), "' at byte ", start));
  }
  push(SqlTokKind::kEof, "", n);
  return out;
}

}  // namespace sqldb
}  // namespace hyperq
