#include "sqldb/sql_parser.h"

#include <unordered_set>

#include "common/strings.h"
#include "qval/temporal.h"

namespace hyperq {
namespace sqldb {

namespace {

/// Reserved words that terminate an alias-less identifier position.
const std::unordered_set<std::string>& ReservedKeywords() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "select", "from",   "where",  "group",  "having", "order",  "limit",
      "offset", "union",  "join",   "inner",  "left",   "right",  "cross",
      "outer",  "on",     "as",     "and",    "or",     "not",    "case",
      "when",   "then",   "else",   "end",    "in",     "is",     "null",
      "between", "asc",   "desc",   "nulls",  "first",  "last",   "distinct",
      "by",     "values", "insert", "create", "drop",   "view",   "table",
      "temporary", "temp", "exists", "if",    "into",   "over",   "partition",
      "rows",   "range",  "preceding", "following", "current", "unbounded",
      "cast",   "all",
  };
  return *kSet;
}

bool IsAggregateName(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" || name == "min" ||
         name == "max" || name == "stddev_pop" || name == "stddev" ||
         name == "var_pop" || name == "variance" || name == "bool_and" ||
         name == "bool_or" || name == "median" || name == "string_agg";
}

}  // namespace

Result<std::vector<SqlStatement>> SqlParser::Parse(const std::string& sql) {
  HQ_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, TokenizeSql(sql));
  SqlParser parser(std::move(tokens));
  std::vector<SqlStatement> out;
  while (parser.Peek().kind != SqlTokKind::kEof) {
    if (parser.Peek().kind == SqlTokKind::kSemi) {
      parser.Consume();
      continue;
    }
    HQ_ASSIGN_OR_RETURN(SqlStatement stmt, parser.ParseStatement());
    out.push_back(std::move(stmt));
    if (parser.Peek().kind != SqlTokKind::kEof) {
      HQ_RETURN_IF_ERROR(
          parser.ExpectTok(SqlTokKind::kSemi, "';' between statements"));
    }
  }
  return out;
}

Result<ExprPtr> SqlParser::ParseExpressionText(const std::string& text) {
  HQ_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, TokenizeSql(text));
  SqlParser parser(std::move(tokens));
  HQ_ASSIGN_OR_RETURN(ExprPtr e, parser.ParseExpr());
  if (parser.Peek().kind != SqlTokKind::kEof) {
    return parser.ErrorHere("trailing tokens after expression");
  }
  return e;
}

const SqlToken& SqlParser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;
  return tokens_[i];
}

const SqlToken& SqlParser::Consume() {
  const SqlToken& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool SqlParser::CheckKw(const std::string& kw) const {
  return Peek().kind == SqlTokKind::kIdent && !Peek().quoted &&
         Peek().text == kw;
}

bool SqlParser::ConsumeKw(const std::string& kw) {
  if (CheckKw(kw)) {
    Consume();
    return true;
  }
  return false;
}

bool SqlParser::CheckOp(const std::string& op) const {
  return Peek().kind == SqlTokKind::kOp && Peek().text == op;
}

bool SqlParser::ConsumeOp(const std::string& op) {
  if (CheckOp(op)) {
    Consume();
    return true;
  }
  return false;
}

Status SqlParser::ExpectKw(const std::string& kw) {
  if (!ConsumeKw(kw)) {
    return ErrorHere(StrCat("expected keyword ", ToUpper(kw)));
  }
  return Status::OK();
}

Status SqlParser::ExpectTok(SqlTokKind kind, const std::string& what) {
  if (Peek().kind != kind) {
    return ErrorHere(StrCat("expected ", what));
  }
  Consume();
  return Status::OK();
}

Status SqlParser::ErrorHere(const std::string& message) const {
  return ParseError(StrCat("SQL parser at byte ", Peek().pos, " (near '",
                           Peek().text, "'): ", message));
}

Result<SqlStatement> SqlParser::ParseStatement() {
  if (CheckKw("select")) {
    SqlStatement stmt;
    stmt.kind = SqlStatement::Kind::kSelect;
    HQ_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    return stmt;
  }
  if (CheckKw("create")) return ParseCreate();
  if (CheckKw("drop")) return ParseDrop();
  if (CheckKw("insert")) return ParseInsert();
  return ErrorHere("expected SELECT, CREATE, DROP or INSERT");
}

Result<SelectPtr> SqlParser::ParseSelect() {
  HQ_ASSIGN_OR_RETURN(SelectPtr first, ParseSelectCore());
  while (CheckKw("union")) {
    Consume();
    HQ_RETURN_IF_ERROR(ExpectKw("all"));
    HQ_ASSIGN_OR_RETURN(SelectPtr next, ParseSelectCore());
    first->union_all.push_back(std::move(next));
  }
  // ORDER BY / LIMIT after a union chain apply to the whole thing; attach
  // them to the head select.
  if (ConsumeKw("order")) {
    HQ_RETURN_IF_ERROR(ExpectKw("by"));
    HQ_ASSIGN_OR_RETURN(first->order_by, ParseOrderByList());
  }
  if (ConsumeKw("limit")) {
    HQ_ASSIGN_OR_RETURN(first->limit, ParseExpr());
  }
  if (ConsumeKw("offset")) {
    HQ_ASSIGN_OR_RETURN(first->offset, ParseExpr());
  }
  return first;
}

Result<SelectPtr> SqlParser::ParseSelectCore() {
  HQ_RETURN_IF_ERROR(ExpectKw("select"));
  auto stmt = std::make_shared<SelectStmt>();
  stmt->distinct = ConsumeKw("distinct");

  // Select list.
  while (true) {
    SelectItem item;
    HQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (ConsumeKw("as")) {
      if (Peek().kind != SqlTokKind::kIdent) {
        return ErrorHere("expected alias after AS");
      }
      item.alias = Consume().text;
    } else if (Peek().kind == SqlTokKind::kIdent &&
               (Peek().quoted ||
                ReservedKeywords().count(Peek().text) == 0)) {
      item.alias = Consume().text;
    }
    stmt->items.push_back(std::move(item));
    if (Peek().kind == SqlTokKind::kComma) {
      Consume();
      continue;
    }
    break;
  }

  if (ConsumeKw("from")) {
    HQ_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());
  }
  if (ConsumeKw("where")) {
    HQ_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (ConsumeKw("group")) {
    HQ_RETURN_IF_ERROR(ExpectKw("by"));
    while (true) {
      HQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
      if (Peek().kind == SqlTokKind::kComma) {
        Consume();
        continue;
      }
      break;
    }
  }
  if (ConsumeKw("having")) {
    HQ_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  // ORDER BY / LIMIT / OFFSET are parsed by ParseSelect so they attach to
  // the whole UNION ALL chain, not to its last member.
  return stmt;
}

Result<std::vector<OrderItem>> SqlParser::ParseOrderByList() {
  std::vector<OrderItem> out;
  while (true) {
    OrderItem item;
    HQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (ConsumeKw("asc")) {
      item.ascending = true;
    } else if (ConsumeKw("desc")) {
      item.ascending = false;
    }
    // PG defaults: NULLS LAST for ASC, NULLS FIRST for DESC.
    item.nulls_first = !item.ascending;
    if (ConsumeKw("nulls")) {
      item.nulls_explicit = true;
      if (ConsumeKw("first")) {
        item.nulls_first = true;
      } else {
        HQ_RETURN_IF_ERROR(ExpectKw("last"));
        item.nulls_first = false;
      }
    }
    out.push_back(std::move(item));
    if (Peek().kind == SqlTokKind::kComma) {
      Consume();
      continue;
    }
    break;
  }
  return out;
}

Result<TableRefPtr> SqlParser::ParseTableRef() {
  HQ_ASSIGN_OR_RETURN(TableRefPtr left, ParseTablePrimary());
  while (true) {
    JoinType jt;
    if (CheckKw("join") || CheckKw("inner")) {
      ConsumeKw("inner");
      HQ_RETURN_IF_ERROR(ExpectKw("join"));
      jt = JoinType::kInner;
    } else if (CheckKw("left")) {
      Consume();
      ConsumeKw("outer");
      HQ_RETURN_IF_ERROR(ExpectKw("join"));
      jt = JoinType::kLeft;
    } else if (CheckKw("cross")) {
      Consume();
      HQ_RETURN_IF_ERROR(ExpectKw("join"));
      jt = JoinType::kCross;
    } else if (Peek().kind == SqlTokKind::kComma) {
      // Comma join == cross join.
      Consume();
      jt = JoinType::kCross;
    } else {
      break;
    }
    HQ_ASSIGN_OR_RETURN(TableRefPtr right, ParseTablePrimary());
    auto join = std::make_shared<TableRef>();
    join->kind = TableRef::Kind::kJoin;
    join->join_type = jt;
    join->left = std::move(left);
    join->right = std::move(right);
    if (jt != JoinType::kCross) {
      HQ_RETURN_IF_ERROR(ExpectKw("on"));
      HQ_ASSIGN_OR_RETURN(join->on, ParseExpr());
    }
    left = std::move(join);
  }
  return left;
}

Result<TableRefPtr> SqlParser::ParseTablePrimary() {
  auto ref = std::make_shared<TableRef>();
  if (Peek().kind == SqlTokKind::kLParen) {
    Consume();
    ref->kind = TableRef::Kind::kSubquery;
    HQ_ASSIGN_OR_RETURN(ref->subquery, ParseSelect());
    HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kRParen, "')' after subquery"));
  } else {
    if (Peek().kind != SqlTokKind::kIdent) {
      return ErrorHere("expected table name or subquery");
    }
    ref->kind = TableRef::Kind::kNamed;
    ref->name = Consume().text;
    // Allow schema-qualified names: schema.table (schema ignored).
    if (CheckOp(".")) {
      Consume();
      if (Peek().kind != SqlTokKind::kIdent) {
        return ErrorHere("expected identifier after '.'");
      }
      ref->name = Consume().text;
    }
  }
  if (ConsumeKw("as")) {
    if (Peek().kind != SqlTokKind::kIdent) {
      return ErrorHere("expected alias after AS");
    }
    ref->alias = Consume().text;
  } else if (Peek().kind == SqlTokKind::kIdent &&
             (Peek().quoted || ReservedKeywords().count(Peek().text) == 0)) {
    ref->alias = Consume().text;
  }
  if (ref->kind == TableRef::Kind::kSubquery && ref->alias.empty()) {
    return ErrorHere("subquery in FROM must have an alias");
  }
  return ref;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<ExprPtr> SqlParser::ParseOr() {
  HQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (ConsumeKw("or")) {
    HQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = MakeBinary("OR", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> SqlParser::ParseAnd() {
  HQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (ConsumeKw("and")) {
    HQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = MakeBinary("AND", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> SqlParser::ParseNot() {
  if (ConsumeKw("not")) {
    HQ_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
    return MakeUnary("NOT", std::move(e));
  }
  return ParseComparison();
}

Result<ExprPtr> SqlParser::ParseComparison() {
  HQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  while (true) {
    if (CheckOp("=") || CheckOp("<>") || CheckOp("<") || CheckOp(">") ||
        CheckOp("<=") || CheckOp(">=")) {
      std::string op = Consume().text;
      HQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
      continue;
    }
    if (CheckKw("is")) {
      Consume();
      bool negated = ConsumeKw("not");
      if (ConsumeKw("null")) {
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kIsNull;
        e->negated = negated;
        e->lhs = std::move(lhs);
        lhs = std::move(e);
        continue;
      }
      HQ_RETURN_IF_ERROR(ExpectKw("distinct"));
      HQ_RETURN_IF_ERROR(ExpectKw("from"));
      HQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = MakeBinary(negated ? "IS_NOT_DISTINCT" : "IS_DISTINCT",
                       std::move(lhs), std::move(rhs));
      continue;
    }
    bool negated = false;
    if (CheckKw("not") &&
        Peek(1).kind == SqlTokKind::kIdent &&
        (Peek(1).text == "in" || Peek(1).text == "between" ||
         Peek(1).text == "like")) {
      Consume();
      negated = true;
    }
    if (ConsumeKw("in")) {
      HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kLParen, "'(' after IN"));
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = negated;
      e->lhs = std::move(lhs);
      while (true) {
        HQ_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        e->args.push_back(std::move(item));
        if (Peek().kind == SqlTokKind::kComma) {
          Consume();
          continue;
        }
        break;
      }
      HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kRParen, "')' after IN list"));
      lhs = std::move(e);
      continue;
    }
    if (ConsumeKw("between")) {
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->lhs = std::move(lhs);
      HQ_ASSIGN_OR_RETURN(e->low, ParseAdditive());
      HQ_RETURN_IF_ERROR(ExpectKw("and"));
      HQ_ASSIGN_OR_RETURN(e->high, ParseAdditive());
      lhs = std::move(e);
      continue;
    }
    if (ConsumeKw("like")) {
      HQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      ExprPtr like = MakeBinary("LIKE", std::move(lhs), std::move(rhs));
      lhs = negated ? MakeUnary("NOT", std::move(like)) : std::move(like);
      continue;
    }
    break;
  }
  return lhs;
}

Result<ExprPtr> SqlParser::ParseAdditive() {
  HQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (CheckOp("+") || CheckOp("-") || CheckOp("||")) {
    std::string op = Consume().text;
    HQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> SqlParser::ParseMultiplicative() {
  HQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (CheckOp("*") || CheckOp("/") || CheckOp("%")) {
    std::string op = Consume().text;
    HQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> SqlParser::ParseUnary() {
  if (ConsumeOp("-")) {
    HQ_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
    return MakeUnary("-", std::move(e));
  }
  if (ConsumeOp("+")) return ParseUnary();
  return ParsePostfix();
}

Result<ExprPtr> SqlParser::ParsePostfix() {
  HQ_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
  while (ConsumeOp("::")) {
    if (Peek().kind != SqlTokKind::kIdent) {
      return ErrorHere("expected type name after '::'");
    }
    std::string type_name = Consume().text;
    // `double precision` is two words.
    if (type_name == "double" && CheckKw("precision")) Consume();
    HQ_ASSIGN_OR_RETURN(SqlType t, SqlTypeFromName(type_name));
    auto cast = std::make_shared<Expr>();
    cast->kind = ExprKind::kCast;
    cast->cast_type = t;
    cast->lhs = std::move(e);
    e = std::move(cast);
  }
  return e;
}

Result<ExprPtr> SqlParser::ParsePrimary() {
  const SqlToken& t = Peek();
  switch (t.kind) {
    case SqlTokKind::kNumber: {
      const SqlToken& num = Consume();
      if (num.is_int) return MakeConst(Datum::BigInt(num.int_val));
      return MakeConst(Datum::Double(num.dbl_val));
    }
    case SqlTokKind::kString:
      return MakeConst(Datum::Text(Consume().text));
    case SqlTokKind::kLParen: {
      Consume();
      HQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kRParen, "')'"));
      return e;
    }
    case SqlTokKind::kOp:
      if (t.text == "*") {
        Consume();
        return MakeStar("");
      }
      return ErrorHere("unexpected operator at start of expression");
    case SqlTokKind::kIdent:
      break;
    default:
      return ErrorHere("unexpected token at start of expression");
  }

  // Keyword-led constructs.
  if (!t.quoted) {
    if (CheckKw("null")) {
      Consume();
      return MakeConst(Datum::Null());
    }
    if (CheckKw("true")) {
      Consume();
      return MakeConst(Datum::Bool(true));
    }
    if (CheckKw("false")) {
      Consume();
      return MakeConst(Datum::Bool(false));
    }
    if (CheckKw("case")) return ParseCase();
    if (CheckKw("cast")) {
      Consume();
      HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kLParen, "'(' after CAST"));
      HQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      HQ_RETURN_IF_ERROR(ExpectKw("as"));
      if (Peek().kind != SqlTokKind::kIdent) {
        return ErrorHere("expected type name in CAST");
      }
      std::string type_name = Consume().text;
      if (type_name == "double" && CheckKw("precision")) Consume();
      HQ_ASSIGN_OR_RETURN(SqlType ct, SqlTypeFromName(type_name));
      HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kRParen, "')' after CAST"));
      auto cast = std::make_shared<Expr>();
      cast->kind = ExprKind::kCast;
      cast->cast_type = ct;
      cast->lhs = std::move(inner);
      return ExprPtr(cast);
    }
    // Typed literals: DATE '2016-06-26', TIME '09:30', TIMESTAMP '...'.
    if ((CheckKw("date") || CheckKw("time") || CheckKw("timestamp")) &&
        Peek(1).kind == SqlTokKind::kString) {
      std::string which = Consume().text;
      std::string lit = Consume().text;
      if (which == "date") {
        HQ_ASSIGN_OR_RETURN(int64_t days, ParseIsoDate(lit));
        return MakeConst(Datum::Date(days));
      }
      if (which == "time") {
        HQ_ASSIGN_OR_RETURN(int64_t ms, ParseIsoTime(lit));
        return MakeConst(Datum::Time(ms));
      }
      HQ_ASSIGN_OR_RETURN(int64_t ns, ParseIsoTimestamp(lit));
      return MakeConst(Datum::Timestamp(ns));
    }
  }

  // Identifier: column ref, qualified ref, star expansion or function call.
  std::string first = Consume().text;
  if (Peek().kind == SqlTokKind::kLParen && !t.quoted) {
    return ParseFuncCall(first);
  }
  if (CheckOp(".")) {
    Consume();
    if (CheckOp("*")) {
      Consume();
      return MakeStar(first);
    }
    if (Peek().kind != SqlTokKind::kIdent) {
      return ErrorHere("expected column name after '.'");
    }
    std::string col = Consume().text;
    return MakeColRef(first, col);
  }
  return MakeColRef("", first);
}

Result<ExprPtr> SqlParser::ParseFuncCall(const std::string& name) {
  HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kLParen, "'('"));
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = name;
  if (ConsumeKw("distinct")) e->distinct = true;
  if (Peek().kind != SqlTokKind::kRParen) {
    while (true) {
      if (CheckOp("*")) {
        Consume();
        e->args.push_back(MakeStar(""));
      } else {
        HQ_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        e->args.push_back(std::move(arg));
      }
      if (Peek().kind == SqlTokKind::kComma) {
        Consume();
        continue;
      }
      break;
    }
  }
  HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kRParen, "')' after arguments"));

  if (CheckKw("over")) {
    Consume();
    e->kind = ExprKind::kWindow;
    HQ_ASSIGN_OR_RETURN(e->window, ParseWindowSpec());
  } else if (IsAggregateName(name)) {
    // Plain aggregate; kFuncCall with aggregate name (resolved by executor).
  }
  return ExprPtr(e);
}

Result<WindowSpec> SqlParser::ParseWindowSpec() {
  HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kLParen, "'(' after OVER"));
  WindowSpec spec;
  if (ConsumeKw("partition")) {
    HQ_RETURN_IF_ERROR(ExpectKw("by"));
    while (true) {
      HQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      spec.partition_by.push_back(std::move(e));
      if (Peek().kind == SqlTokKind::kComma) {
        Consume();
        continue;
      }
      break;
    }
  }
  if (ConsumeKw("order")) {
    HQ_RETURN_IF_ERROR(ExpectKw("by"));
    HQ_ASSIGN_OR_RETURN(spec.order_by, ParseOrderByList());
  }
  if (CheckKw("rows") || CheckKw("range")) {
    spec.frame.specified = true;
    spec.frame.is_rows = ConsumeKw("rows");
    if (!spec.frame.is_rows) Consume();  // RANGE
    HQ_RETURN_IF_ERROR(ExpectKw("between"));
    auto bound = [&](int64_t* offset) -> Status {
      if (ConsumeKw("unbounded")) {
        if (ConsumeKw("preceding")) {
          *offset = INT64_MIN;
        } else {
          HQ_RETURN_IF_ERROR(ExpectKw("following"));
          *offset = INT64_MAX;
        }
        return Status::OK();
      }
      if (ConsumeKw("current")) {
        HQ_RETURN_IF_ERROR(ExpectKw("row"));
        *offset = 0;
        return Status::OK();
      }
      if (Peek().kind != SqlTokKind::kNumber) {
        return ErrorHere("expected frame offset");
      }
      int64_t n = Consume().int_val;
      if (ConsumeKw("preceding")) {
        *offset = -n;
      } else {
        HQ_RETURN_IF_ERROR(ExpectKw("following"));
        *offset = n;
      }
      return Status::OK();
    };
    HQ_RETURN_IF_ERROR(bound(&spec.frame.start_offset));
    HQ_RETURN_IF_ERROR(ExpectKw("and"));
    HQ_RETURN_IF_ERROR(bound(&spec.frame.end_offset));
  }
  HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kRParen, "')' after window spec"));
  return spec;
}

Result<ExprPtr> SqlParser::ParseCase() {
  HQ_RETURN_IF_ERROR(ExpectKw("case"));
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCase;
  // Only searched CASE (CASE WHEN ...) is supported; the serializer never
  // emits the simple form.
  while (ConsumeKw("when")) {
    HQ_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    HQ_RETURN_IF_ERROR(ExpectKw("then"));
    HQ_ASSIGN_OR_RETURN(ExprPtr val, ParseExpr());
    e->args.push_back(std::move(cond));
    e->args.push_back(std::move(val));
  }
  if (e->args.empty()) {
    return ErrorHere("CASE requires at least one WHEN branch");
  }
  if (ConsumeKw("else")) {
    HQ_ASSIGN_OR_RETURN(ExprPtr els, ParseExpr());
    e->args.push_back(std::move(els));
    e->has_else = true;
  }
  HQ_RETURN_IF_ERROR(ExpectKw("end"));
  return ExprPtr(e);
}

// ---------------------------------------------------------------------------
// DDL / DML
// ---------------------------------------------------------------------------

Result<SqlStatement> SqlParser::ParseCreate() {
  HQ_RETURN_IF_ERROR(ExpectKw("create"));
  SqlStatement stmt;
  stmt.or_replace = false;
  if (ConsumeKw("or")) {
    HQ_RETURN_IF_ERROR(ExpectKw("replace"));
    stmt.or_replace = true;
  }
  stmt.temporary = ConsumeKw("temporary") || ConsumeKw("temp");
  if (ConsumeKw("view")) {
    if (Peek().kind != SqlTokKind::kIdent) {
      return ErrorHere("expected view name");
    }
    stmt.kind = SqlStatement::Kind::kCreateView;
    stmt.target = Consume().text;
    HQ_RETURN_IF_ERROR(ExpectKw("as"));
    HQ_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    return stmt;
  }
  HQ_RETURN_IF_ERROR(ExpectKw("table"));
  if (Peek().kind != SqlTokKind::kIdent) {
    return ErrorHere("expected table name");
  }
  stmt.target = Consume().text;
  if (ConsumeKw("as")) {
    stmt.kind = SqlStatement::Kind::kCreateTableAs;
    HQ_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    return stmt;
  }
  HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kLParen, "'(' in CREATE TABLE"));
  stmt.kind = SqlStatement::Kind::kCreateTable;
  while (true) {
    if (Peek().kind != SqlTokKind::kIdent) {
      return ErrorHere("expected column name");
    }
    ColumnDef col;
    col.name = Consume().text;
    if (Peek().kind != SqlTokKind::kIdent) {
      return ErrorHere("expected column type");
    }
    std::string type_name = Consume().text;
    if (type_name == "double" && CheckKw("precision")) Consume();
    if (type_name == "character" && CheckKw("varying")) {
      Consume();
      type_name = "varchar";
    }
    // Skip length arguments.
    if (Peek().kind == SqlTokKind::kLParen) {
      Consume();
      while (Peek().kind != SqlTokKind::kRParen &&
             Peek().kind != SqlTokKind::kEof) {
        Consume();
      }
      HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kRParen, "')'"));
    }
    HQ_ASSIGN_OR_RETURN(col.type, SqlTypeFromName(type_name));
    stmt.columns.push_back(std::move(col));
    if (Peek().kind == SqlTokKind::kComma) {
      Consume();
      continue;
    }
    break;
  }
  HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kRParen, "')' in CREATE TABLE"));
  return stmt;
}

Result<SqlStatement> SqlParser::ParseDrop() {
  HQ_RETURN_IF_ERROR(ExpectKw("drop"));
  SqlStatement stmt;
  if (ConsumeKw("view")) {
    stmt.kind = SqlStatement::Kind::kDropView;
  } else {
    HQ_RETURN_IF_ERROR(ExpectKw("table"));
    stmt.kind = SqlStatement::Kind::kDropTable;
  }
  if (ConsumeKw("if")) {
    HQ_RETURN_IF_ERROR(ExpectKw("exists"));
    stmt.if_exists = true;
  }
  if (Peek().kind != SqlTokKind::kIdent) {
    return ErrorHere("expected object name");
  }
  stmt.target = Consume().text;
  return stmt;
}

Result<SqlStatement> SqlParser::ParseInsert() {
  HQ_RETURN_IF_ERROR(ExpectKw("insert"));
  HQ_RETURN_IF_ERROR(ExpectKw("into"));
  SqlStatement stmt;
  if (Peek().kind != SqlTokKind::kIdent) {
    return ErrorHere("expected table name");
  }
  stmt.target = Consume().text;
  if (Peek().kind == SqlTokKind::kLParen &&
      Peek(1).kind == SqlTokKind::kIdent &&
      (Peek(2).kind == SqlTokKind::kComma ||
       Peek(2).kind == SqlTokKind::kRParen)) {
    Consume();
    while (true) {
      if (Peek().kind != SqlTokKind::kIdent) {
        return ErrorHere("expected column name");
      }
      stmt.insert_columns.push_back(Consume().text);
      if (Peek().kind == SqlTokKind::kComma) {
        Consume();
        continue;
      }
      break;
    }
    HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kRParen, "')'"));
  }
  if (ConsumeKw("values")) {
    stmt.kind = SqlStatement::Kind::kInsertValues;
    while (true) {
      HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kLParen, "'('"));
      std::vector<ExprPtr> row;
      while (true) {
        HQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (Peek().kind == SqlTokKind::kComma) {
          Consume();
          continue;
        }
        break;
      }
      HQ_RETURN_IF_ERROR(ExpectTok(SqlTokKind::kRParen, "')'"));
      stmt.insert_rows.push_back(std::move(row));
      if (Peek().kind == SqlTokKind::kComma) {
        Consume();
        continue;
      }
      break;
    }
    return stmt;
  }
  stmt.kind = SqlStatement::Kind::kInsertSelect;
  HQ_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
  return stmt;
}

}  // namespace sqldb
}  // namespace hyperq
