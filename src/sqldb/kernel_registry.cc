#include "sqldb/kernel_registry.h"

#include <chrono>
#include <utility>

#include "common/fault.h"
#include "sqldb/session.h"

namespace hyperq {
namespace sqldb {
namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

KernelRegistry::KernelRegistry(Catalog* catalog) : catalog_(catalog) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  hits_ = reg.GetCounter("kernel.hits");
  misses_ = reg.GetCounter("kernel.misses");
  fallbacks_ = reg.GetCounter("kernel.fallbacks");
  compile_us_ = reg.GetHistogram("kernel.compile_us");
  exec_us_ = reg.GetHistogram("kernel.exec_us");
  // Every label KernelFingerprintFor / Compile can emit, pre-created so
  // `.hyperq.stats[]` reports the full rejection taxonomy even at zero
  // (docs/OBSERVABILITY.md).
  static const char* const kRejectReasons[] = {
      "subquery", "join",     "from",    "distinct", "having",
      "union",    "group_by", "star_agg", "expr",    "predicate",
      "order_by", "limit",    "compile"};
  for (const char* reason : kRejectReasons) {
    reject_counters_.emplace(
        reason, reg.GetCounter(std::string("kernel.reject.") + reason));
  }
  reject_other_ = reg.GetCounter("kernel.reject.other");
}

void KernelRegistry::CountReject(const char* reason) {
  if (reason == nullptr) {
    reject_other_->Increment();
    return;
  }
  auto it = reject_counters_.find(reason);
  (it != reject_counters_.end() ? it->second : reject_other_)->Increment();
}

std::shared_ptr<const KernelPlan> KernelRegistry::PlanFor(
    const KernelFingerprint& fp, const SelectStmt& stmt, uint64_t version) {
  int grammar_version;
  {
    std::lock_guard<std::mutex> lock(mu_);
    grammar_version = grammar_version_;
    auto it = entries_.find(fp.text);
    if (it != entries_.end() && it->second.catalog_version == version &&
        (it->second.plan != nullptr ||
         it->second.grammar_version == grammar_version)) {
      // A negative entry stamped by an older grammar is NOT a hit: the
      // shape may have been rejected for a construct the current grammar
      // compiles, so fall through and re-compile.
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      if (it->second.plan != nullptr) hits_->Increment();
      return it->second.plan;
    }
  }

  // Miss or stale: compile outside the lock (compiles are rare and other
  // queries shouldn't serialize behind them).
  misses_->Increment();
  int64_t t0 = NowUs();
  Result<std::shared_ptr<const KernelPlan>> compiled =
      KernelPlan::Compile(stmt, *catalog_);
  compile_us_->Record(NowUs() - t0);
  std::shared_ptr<const KernelPlan> plan =
      compiled.ok() ? *std::move(compiled) : nullptr;
  if (plan == nullptr) CountReject("compile");

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fp.text);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    it->second.catalog_version = version;
    it->second.grammar_version = grammar_version;
    it->second.plan = plan;
    return plan;
  }
  while (entries_.size() >= kCapacity) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(fp.text);
  entries_.emplace(fp.text, Entry{version, grammar_version, plan, lru_.begin()});
  return plan;
}

std::optional<Result<Relation>> KernelRegistry::TryExecuteSelect(
    const SelectStmt& stmt, const Session* session) {
  if (!enabled()) return std::nullopt;

  KernelFingerprint fp = KernelFingerprintFor(stmt);
  if (!fp.supported) {
    fallbacks_->Increment();
    CountReject(fp.reject_reason);
    return std::nullopt;
  }
  // Compile against the canonical (wrapper-flattened) statement when the
  // fingerprint produced one; the fingerprint text already describes it.
  const SelectStmt& cstmt = fp.canonical != nullptr ? *fp.canonical : stmt;
  // Session temp tables/views shadow catalog tables in the executor's
  // lookup order; a kernel compiled against the catalog table would read
  // the wrong data.
  if (session != nullptr && (session->temp_tables().count(fp.table) != 0 ||
                             session->temp_views().count(fp.table) != 0)) {
    fallbacks_->Increment();
    return std::nullopt;
  }
  // Fault site: an armed error downgrades the kernel path to the
  // interpreted executor (the query still succeeds); delays are slept
  // inside the injector before this returns.
  if (CheckFault("backend.kernel").kind != FaultHit::Kind::kNone) {
    fallbacks_->Increment();
    return std::nullopt;
  }

  // Stamp with the *per-table* version, not the global one: an ingest
  // flush (or any DML) into table B must not force recompiles of table
  // A's hot kernels.
  const uint64_t version = catalog_->TableVersion(fp.table);
  std::shared_ptr<const KernelPlan> plan = PlanFor(fp, cstmt, version);
  if (plan == nullptr) {
    fallbacks_->Increment();
    return std::nullopt;
  }

  Result<std::shared_ptr<StoredTable>> table = catalog_->GetTable(fp.table);
  if (!table.ok() || *table == nullptr || !plan->GuardOk(**table)) {
    // Schema drifted under us (or the table vanished): let the
    // interpreted executor produce the authoritative result/error.
    fallbacks_->Increment();
    return std::nullopt;
  }

  int64_t t0 = NowUs();
  Result<Relation> result = plan->Execute(**table, fp.params);
  exec_us_->Record(NowUs() - t0);
  return std::optional<Result<Relation>>(std::move(result));
}

void KernelRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t KernelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace sqldb
}  // namespace hyperq
