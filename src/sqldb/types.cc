#include "sqldb/types.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"
#include "qval/temporal.h"

namespace hyperq {
namespace sqldb {

const char* SqlTypeName(SqlType type) {
  switch (type) {
    case SqlType::kBoolean:
      return "boolean";
    case SqlType::kSmallInt:
      return "smallint";
    case SqlType::kInteger:
      return "integer";
    case SqlType::kBigInt:
      return "bigint";
    case SqlType::kReal:
      return "real";
    case SqlType::kDouble:
      return "double precision";
    case SqlType::kVarchar:
      return "varchar";
    case SqlType::kText:
      return "text";
    case SqlType::kDate:
      return "date";
    case SqlType::kTime:
      return "time";
    case SqlType::kTimestamp:
      return "timestamp";
    case SqlType::kNull:
      return "unknown";
  }
  return "?";
}

Result<SqlType> SqlTypeFromName(const std::string& raw) {
  std::string name = ToLower(raw);
  // Strip length arguments: varchar(32) -> varchar.
  size_t paren = name.find('(');
  if (paren != std::string::npos) {
    name = std::string(StripWhitespace(name.substr(0, paren)));
  }
  if (name == "boolean" || name == "bool") return SqlType::kBoolean;
  if (name == "smallint" || name == "int2") return SqlType::kSmallInt;
  if (name == "integer" || name == "int" || name == "int4") {
    return SqlType::kInteger;
  }
  if (name == "bigint" || name == "int8") return SqlType::kBigInt;
  if (name == "real" || name == "float4") return SqlType::kReal;
  if (name == "double precision" || name == "float8" || name == "double" ||
      name == "numeric" || name == "decimal" || name == "float") {
    return SqlType::kDouble;
  }
  if (name == "varchar" || name == "character varying") {
    return SqlType::kVarchar;
  }
  if (name == "text" || name == "char" || name == "character") {
    return SqlType::kText;
  }
  if (name == "date") return SqlType::kDate;
  if (name == "time") return SqlType::kTime;
  if (name == "timestamp" || name == "timestamptz") {
    return SqlType::kTimestamp;
  }
  return TypeError(StrCat("unknown SQL type '", raw, "'"));
}

bool IsNumericType(SqlType type) {
  switch (type) {
    case SqlType::kBoolean:
    case SqlType::kSmallInt:
    case SqlType::kInteger:
    case SqlType::kBigInt:
    case SqlType::kReal:
    case SqlType::kDouble:
      return true;
    default:
      return false;
  }
}

bool IsIntegralType(SqlType type) {
  switch (type) {
    case SqlType::kBoolean:
    case SqlType::kSmallInt:
    case SqlType::kInteger:
    case SqlType::kBigInt:
      return true;
    default:
      return false;
  }
}

bool IsStringType(SqlType type) {
  return type == SqlType::kVarchar || type == SqlType::kText;
}

bool IsTemporalType(SqlType type) {
  return type == SqlType::kDate || type == SqlType::kTime ||
         type == SqlType::kTimestamp;
}

std::string Datum::ToText() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case SqlType::kBoolean:
      return i_ ? "t" : "f";
    case SqlType::kSmallInt:
    case SqlType::kInteger:
    case SqlType::kBigInt:
      return StrCat(i_);
    case SqlType::kReal:
    case SqlType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", f_);
      return buf;
    }
    case SqlType::kVarchar:
    case SqlType::kText:
      return s_;
    case SqlType::kDate:
      return FormatIsoDate(i_);
    case SqlType::kTime:
      return FormatIsoTime(i_);
    case SqlType::kTimestamp:
      return FormatIsoTimestamp(i_);
    case SqlType::kNull:
      return "NULL";
  }
  return "?";
}

bool Datum::DistinctEquals(const Datum& a, const Datum& b) {
  if (a.is_null_ || b.is_null_) return a.is_null_ == b.is_null_;
  if (IsStringType(a.type_) && IsStringType(b.type_)) return a.s_ == b.s_;
  if (IsStringType(a.type_) != IsStringType(b.type_)) return false;
  if ((a.type_ == SqlType::kReal || a.type_ == SqlType::kDouble) ||
      (b.type_ == SqlType::kReal || b.type_ == SqlType::kDouble)) {
    return a.AsDouble() == b.AsDouble();
  }
  return a.i_ == b.i_;
}

int Datum::Compare(const Datum& a, const Datum& b) {
  if (IsStringType(a.type_) && IsStringType(b.type_)) {
    return a.s_.compare(b.s_);
  }
  if ((a.type_ == SqlType::kReal || a.type_ == SqlType::kDouble) ||
      (b.type_ == SqlType::kReal || b.type_ == SqlType::kDouble)) {
    double x = a.AsDouble(), y = b.AsDouble();
    if (std::isnan(x) && std::isnan(y)) return 0;
    if (std::isnan(x)) return 1;  // PG: NaN sorts last among non-nulls
    if (std::isnan(y)) return -1;
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  return a.i_ < b.i_ ? -1 : (a.i_ > b.i_ ? 1 : 0);
}

}  // namespace sqldb
}  // namespace hyperq
