#ifndef HYPERQ_SQLDB_KERNEL_H_
#define HYPERQ_SQLDB_KERNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sqldb/ast.h"
#include "sqldb/catalog.h"
#include "sqldb/relation.h"
#include "sqldb/types.h"

namespace hyperq {
namespace sqldb {

/// Fused-kernel execution for hot SELECT shapes (docs/PERFORMANCE.md).
///
/// The interpreted executor (exec.cc/eval.cc) evaluates a filter into a
/// SelVector, gathers every table column through it, encodes group keys row
/// by row over the gathered relation, and only then reduces aggregates. For
/// the simple shapes that dominate hot dashboard traffic —
///
///   SELECT cols / aggs FROM one_table [WHERE conjuncts] [GROUP BY cols]
///
/// — a compiled KernelPlan instead runs scan -> filter -> group/aggregate
/// (or scan -> filter -> project) as a single morsel-at-a-time loop over the
/// base columns: typed comparators test each row in place, survivors feed
/// the group builder directly (no intermediate SelVector or gathered
/// relation), and aggregates reduce straight off the stored column buffers.
/// Plans are cached in the per-database KernelRegistry keyed by a statement
/// fingerprint with literals lifted to `$k` slots, so the PR 2 parameterized
/// translation tier shares one kernel across literal variants.
///
/// Everything a kernel produces is byte-identical to the interpreted
/// executor, including the PR 3 determinism rules: morsel-ordered merges,
/// first-occurrence group order, and member-order (ascending row)
/// floating-point accumulation. Any shape outside the supported set must be
/// rejected at fingerprint/compile time so the interpreted path also keeps
/// ownership of its error surface (e.g. data-dependent comparison type
/// errors).

/// A canonicalized statement identity for the kernel cache. `text` is a
/// deterministic rendering of the SELECT with every literal replaced by a
/// `$<class>` slot (classes: i = integral/bool/temporal, f = float,
/// s = string, n = NULL); `params` carries the literal values of this
/// instance in slot order. Statements that differ only in literal values of
/// the same class share `text` — and therefore share one compiled kernel.
struct KernelFingerprint {
  bool supported = false;
  std::string text;
  uint64_t hash = 0;
  std::string table;  ///< unqualified base-table name (shadow checks)
  std::vector<Datum> params;
};

/// Classifies and canonicalizes `stmt`. supported=false when the statement
/// uses any construct outside the fused-kernel shape (joins, subqueries,
/// windows, DISTINCT, OR-filters, expressions, HAVING/ORDER BY/LIMIT,
/// UNION, non-colref group keys, unsupported aggregates, ...). The walk is
/// catalog-free: column existence and type-class checks happen at compile.
KernelFingerprint KernelFingerprintFor(const SelectStmt& stmt);

/// A compiled, type-specialized execution plan for one fingerprint against
/// one catalog schema version. Immutable after Compile; safe to share
/// across threads.
class KernelPlan {
 public:
  /// How a filter comparison is evaluated, fixed at compile time from the
  /// column's storage class and the literal's fingerprint class so the
  /// per-row loop carries no type dispatch.
  enum class CmpMode : uint8_t {
    kIntInt,     ///< int column vs integral literal: int64 compare
    kIntDouble,  ///< int column vs float literal: compare as double
    kDouble,     ///< float column vs numeric literal: compare as double
    kString,     ///< string column vs string literal
    kNever,      ///< NULL literal or all-NULL (kEmpty) column: never true
  };

  struct Pred {
    enum class Kind : uint8_t { kCmp, kIsNull, kBetween };
    Kind kind = Kind::kCmp;
    int col = 0;
    /// kCmp operator index: 0 '=', 1 '<>', 2 '<', 3 '>', 4 '<=', 5 '>='
    /// (literal normalized to the right-hand side).
    int op = 0;
    bool negated = false;  ///< IS NOT NULL / NOT BETWEEN
    CmpMode mode = CmpMode::kNever;     ///< kCmp
    CmpMode lo_mode = CmpMode::kNever;  ///< kBetween: lo vs value
    CmpMode hi_mode = CmpMode::kNever;  ///< kBetween: value vs hi
    int p0 = -1;  ///< param slot (kCmp literal / kBetween lo)
    int p1 = -1;  ///< param slot (kBetween hi)
  };

  struct Agg {
    std::string fn_name;  ///< aggregate function (IsAggregateFunction set)
    int col = -1;         ///< argument column; -1 for count(*)
  };

  /// One output column: either a plain column reference (group key or
  /// representative-row value) or an aggregate.
  struct Item {
    bool is_agg = false;
    int col = -1;  ///< colref items
    Agg agg;
    std::string name;  ///< OutputName(): alias | column | function name
    SqlType type = SqlType::kText;  ///< static InferType (pre-refinement)
  };

  /// Compiles the fingerprinted statement against the current catalog.
  /// Errors mean "this shape/schema combination is not kernel-runnable"
  /// (negative-cacheable), never a user-visible failure.
  static Result<std::shared_ptr<const KernelPlan>> Compile(
      const SelectStmt& stmt, const Catalog& catalog);

  /// True when `table` still matches the schema the plan was compiled
  /// against (column count, names, declared types, storage classes).
  bool GuardOk(const StoredTable& table) const;

  /// Runs the fused loop over the table's columns with the fingerprint's
  /// literal values spliced into the predicate slots. The only possible
  /// error is deadline expiry (mirroring the interpreted executor's
  /// morsel-boundary cancellation); everything else was rejected at
  /// compile time.
  Result<Relation> Execute(const StoredTable& table,
                           const std::vector<Datum>& params) const;

  const std::string& table_name() const { return table_name_; }

 private:
  KernelPlan() = default;

  /// Group-key specialization chosen at compile time.
  enum class GroupMode : uint8_t {
    kNone,          ///< no GROUP BY and aggregates present: one group
    kSingleInt,     ///< single kInt-storage key column
    kSingleString,  ///< single kString-storage key column
    kGeneric,       ///< EncodeValue byte keys (multi-column / float keys)
  };

  Result<Relation> ExecuteGrouped(const StoredTable& table,
                                  const std::vector<Datum>& params) const;
  Result<Relation> ExecuteProject(const StoredTable& table,
                                  const std::vector<Datum>& params) const;

  std::string table_name_;
  /// Compile-time schema snapshot for GuardOk.
  std::vector<TableColumn> schema_;
  std::vector<Column::Storage> storages_;

  std::vector<Pred> preds_;
  bool grouped_ = false;  ///< aggregate path vs projection path
  GroupMode group_mode_ = GroupMode::kNone;
  std::vector<int> group_cols_;
  std::vector<Item> items_;
};

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_KERNEL_H_
