#ifndef HYPERQ_SQLDB_KERNEL_H_
#define HYPERQ_SQLDB_KERNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sqldb/ast.h"
#include "sqldb/catalog.h"
#include "sqldb/relation.h"
#include "sqldb/types.h"

namespace hyperq {
namespace sqldb {

/// Fused-kernel execution for hot SELECT shapes (docs/PERFORMANCE.md).
///
/// The interpreted executor (exec.cc/eval.cc) evaluates a filter into a
/// SelVector, gathers every table column through it, encodes group keys row
/// by row over the gathered relation, and only then reduces aggregates. For
/// the simple shapes that dominate hot dashboard traffic —
///
///   SELECT cols / aggs FROM one_table [WHERE conjuncts] [GROUP BY cols]
///
/// — a compiled KernelPlan instead runs scan -> filter -> group/aggregate
/// (or scan -> filter -> project) as a single morsel-at-a-time loop over the
/// base columns: typed comparators test each row in place, survivors feed
/// the group builder directly (no intermediate SelVector or gathered
/// relation), and aggregates reduce straight off the stored column buffers.
/// Plans are cached in the per-database KernelRegistry keyed by a statement
/// fingerprint with literals lifted to `$k` slots, so the PR 2 parameterized
/// translation tier shares one kernel across literal variants.
///
/// Everything a kernel produces is byte-identical to the interpreted
/// executor, including the PR 3 determinism rules: morsel-ordered merges,
/// first-occurrence group order, and member-order (ascending row)
/// floating-point accumulation. Any shape outside the supported set must be
/// rejected at fingerprint/compile time so the interpreted path also keeps
/// ownership of its error surface (e.g. data-dependent comparison type
/// errors).

/// Version of the kernel's recognized grammar. Bumped whenever
/// KernelFingerprintFor learns to accept a previously rejected construct,
/// so negative cache entries stamped with an older version are re-
/// fingerprinted instead of pinning the shape to the interpreted path
/// (see KernelRegistry). v1: flat scan/filter/group shapes (PR 7).
/// v2: subquery flattening, ORDER BY / LIMIT / OFFSET, null-aware
/// COALESCE comparisons, IS [NOT] DISTINCT FROM, IN lists.
inline constexpr int kKernelGrammarVersion = 2;

/// A canonicalized statement identity for the kernel cache. `text` is a
/// deterministic rendering of the SELECT with every literal replaced by a
/// `$<class>` slot (classes: i = integral/bool/temporal, f = float,
/// s = string, n = NULL); `params` carries the literal values of this
/// instance in slot order. Statements that differ only in literal values of
/// the same class share `text` — and therefore share one compiled kernel.
struct KernelFingerprint {
  bool supported = false;
  std::string text;
  uint64_t hash = 0;
  std::string table;  ///< unqualified base-table name (shadow checks)
  std::vector<Datum> params;
  /// On rejection: a short stable label for the first construct outside the
  /// kernel grammar ("subquery", "order_by", "predicate", ...), surfaced as
  /// a `kernel.reject.<reason>` counter by the registry. nullptr when
  /// supported.
  const char* reject_reason = nullptr;
  /// When the serializer's standard wrappers were flattened away, the
  /// canonical statement the fingerprint describes (Compile reads this
  /// instead of the original). nullptr when the statement was already flat.
  SelectPtr canonical;
};

/// Classifies and canonicalizes `stmt`. A pre-fingerprint pass flattens the
/// serializer's standard wrappers — `SELECT ... FROM (SELECT ...) tN` rename/
/// filter/order shells and the final `... AS hq_final ORDER BY "ordcol"`
/// wrapper — into a flat single-table SELECT when the nesting is pure
/// projection/filter/order composition. supported=false when the (canonical)
/// statement still uses any construct outside the fused-kernel shape (joins,
/// unflattenable subqueries, windows, DISTINCT, OR-filters, computed
/// expressions, HAVING, UNION, non-colref group keys, unsupported
/// aggregates, qualified/expression ORDER BY keys, non-constant LIMIT, ...).
/// The walk is catalog-free: column existence and type-class checks happen
/// at compile.
KernelFingerprint KernelFingerprintFor(const SelectStmt& stmt);

/// A compiled, type-specialized execution plan for one fingerprint against
/// one catalog schema version. Immutable after Compile; safe to share
/// across threads.
class KernelPlan {
 public:
  /// How a filter comparison is evaluated, fixed at compile time from the
  /// column's storage class and the literal's fingerprint class so the
  /// per-row loop carries no type dispatch.
  enum class CmpMode : uint8_t {
    kIntInt,     ///< int column vs integral literal: int64 compare
    kIntDouble,  ///< int column vs float literal: compare as double
    kDouble,     ///< float column vs numeric literal: compare as double
    kString,     ///< string column vs string literal
    kNever,      ///< NULL literal or all-NULL (kEmpty) column: never true
  };

  struct Pred {
    enum class Kind : uint8_t {
      kCmp,
      kIsNull,
      kBetween,
      kDistinct,     ///< col IS [NOT] DISTINCT FROM literal
      kCoalesceCmp,  ///< COALESCE(cmp(col, literal), fallback) null-aware cmp
      kInList,       ///< col [NOT] IN (<literal list>)
    };
    Kind kind = Kind::kCmp;
    int col = 0;
    /// kCmp/kCoalesceCmp operator index: 0 '=', 1 '<>', 2 '<', 3 '>',
    /// 4 '<=', 5 '>=' (literal normalized to the right-hand side).
    int op = 0;
    bool negated = false;  ///< IS NOT NULL / NOT BETWEEN / IS DISTINCT / NOT IN
    CmpMode mode = CmpMode::kNever;     ///< kCmp/kCoalesceCmp/kDistinct
    CmpMode lo_mode = CmpMode::kNever;  ///< kBetween: lo vs value
    CmpMode hi_mode = CmpMode::kNever;  ///< kBetween: value vs hi
    int p0 = -1;  ///< param slot (kCmp literal / kBetween lo); kInList: index
                  ///< into in_lists_
    int p1 = -1;  ///< param slot (kBetween hi)
    bool lit_null = false;  ///< kDistinct/kCoalesceCmp: literal is NULL
    /// kCoalesceCmp: compile-time tri-state value of the fallback expression
    /// (+1 TRUE / 0 FALSE / -1 NULL — a row passes only on TRUE), evaluated
    /// under "column IS NULL" and "column IS NOT NULL" respectively. The
    /// fallback runs when the comparison is NULL: for a NULL literal on
    /// every row, otherwise only on NULL column cells.
    int8_t fb_col_null = 0;
    int8_t fb_col_notnull = 0;
  };

  /// Literal membership list for one kInList predicate. Per-item compare
  /// modes are fixed at compile time; NULL or class-mismatched items can
  /// never equal a non-NULL cell (Datum::DistinctEquals never errors), so
  /// they only matter through `has_null_item` (NOT IN with a NULL item
  /// matches no row, IN falls back to per-item equality).
  struct InList {
    std::vector<CmpMode> modes;  ///< one per item (kNever for NULL/mismatch)
    std::vector<int> slots;      ///< param slot per item
    bool has_null_item = false;
  };

  /// One compiled ORDER BY key, resolved to an output item index.
  struct OrderKey {
    int item = 0;
    bool ascending = true;
    bool nulls_first = false;
  };

  struct Agg {
    std::string fn_name;  ///< aggregate function (IsAggregateFunction set)
    int col = -1;         ///< argument column; -1 for count(*)
  };

  /// One output column: either a plain column reference (group key or
  /// representative-row value) or an aggregate.
  struct Item {
    bool is_agg = false;
    int col = -1;  ///< colref items
    Agg agg;
    std::string name;  ///< OutputName(): alias | column | function name
    SqlType type = SqlType::kText;  ///< static InferType (pre-refinement)
  };

  /// Compiles the fingerprinted statement against the current catalog.
  /// Errors mean "this shape/schema combination is not kernel-runnable"
  /// (negative-cacheable), never a user-visible failure.
  static Result<std::shared_ptr<const KernelPlan>> Compile(
      const SelectStmt& stmt, const Catalog& catalog);

  /// True when `table` still matches the schema the plan was compiled
  /// against (column count, names, declared types, storage classes).
  bool GuardOk(const StoredTable& table) const;

  /// Runs the fused loop over the table's columns with the fingerprint's
  /// literal values spliced into the predicate slots. The only possible
  /// error is deadline expiry (mirroring the interpreted executor's
  /// morsel-boundary cancellation); everything else was rejected at
  /// compile time.
  Result<Relation> Execute(const StoredTable& table,
                           const std::vector<Datum>& params) const;

  const std::string& table_name() const { return table_name_; }

 private:
  KernelPlan() = default;

  /// Group-key specialization chosen at compile time.
  enum class GroupMode : uint8_t {
    kNone,          ///< no GROUP BY and aggregates present: one group
    kSingleInt,     ///< single kInt-storage key column
    kSingleString,  ///< single kString-storage key column
    kGeneric,       ///< EncodeValue byte keys (multi-column / float keys)
  };

  Result<Relation> ExecuteGrouped(const StoredTable& table,
                                  const std::vector<Datum>& params) const;
  Result<Relation> ExecuteProject(const StoredTable& table,
                                  const std::vector<Datum>& params) const;
  /// Mirrors the interpreted ApplyOrderBy/ApplyLimit tail over the built
  /// output relation (stable sort with the shared CompareCells comparator,
  /// then the LIMIT/OFFSET row-range gather).
  Result<Relation> ApplyOrderAndLimit(Relation out,
                                      const std::vector<Datum>& params) const;

  std::string table_name_;
  /// Compile-time schema snapshot for GuardOk.
  std::vector<TableColumn> schema_;
  std::vector<Column::Storage> storages_;

  std::vector<Pred> preds_;
  std::vector<InList> in_lists_;
  bool grouped_ = false;  ///< aggregate path vs projection path
  GroupMode group_mode_ = GroupMode::kNone;
  std::vector<int> group_cols_;
  std::vector<Item> items_;

  /// ORDER BY keys remaining after elision (see Compile: a lone ascending
  /// key over the scan-ordered ordcol/sort-key column is dropped because a
  /// stable sort of an already-sorted NULL-free column is the identity).
  std::vector<OrderKey> order_keys_;
  /// When a sort was elided, the column buffer whose verified sortedness
  /// justified it; GuardOk additionally requires pointer identity so a
  /// racing same-schema data swap can never run the elided plan.
  int elided_col_ = -1;
  const Column* elided_col_ptr_ = nullptr;
  bool has_limit_ = false;
  bool has_offset_ = false;
  int limit_slot_ = -1;
  int offset_slot_ = -1;
};

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_KERNEL_H_
