#include "sqldb/kernel.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/sql_markers.h"
#include "common/status.h"
#include "common/worker_pool.h"
#include "sqldb/eval.h"
#include "sqldb/exec.h"

namespace hyperq {
namespace sqldb {
namespace {

// Mirrors the interpreted executor's morsel discipline (exec.cc): same
// morsel size, same parallelization threshold, same cooperative
// cancellation stages, so a kernel behaves like the interpreter under
// deadlines and thread-count changes.
constexpr size_t kMorselRows = 16 * 1024;

bool ShouldParallelize(size_t n) {
  return n >= 2 * kMorselRows && WorkerPool::Shared().thread_count() > 0;
}

Status CancelIfExpired(const Deadline& dl, const char* stage) {
  if (dl.Expired()) return DeadlineExceeded(stage);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Literal class for the `$k` slot: statements whose literals differ only
/// within a class compile to the same kernel.
char ClassOf(const Datum& d) {
  if (d.is_null()) return 'n';
  if (IsStringType(d.type())) return 's';
  if (d.type() == SqlType::kReal || d.type() == SqlType::kDouble) return 'f';
  return 'i';
}

/// Comparison operator index shared with the plan: 0 '=', 1 '<>', 2 '<',
/// 3 '>', 4 '<=', 5 '>='; -1 for anything else (incl. IS_DISTINCT).
int CmpOpIndexOf(const std::string& op) {
  if (op == "=") return 0;
  if (op == "<>" || op == "!=") return 1;
  if (op == "<") return 2;
  if (op == ">") return 3;
  if (op == "<=") return 4;
  if (op == ">=") return 5;
  return -1;
}

/// Mirrors swapping the operand order of a comparison.
int FlipCmpOp(int op) {
  switch (op) {
    case 2: return 3;
    case 3: return 2;
    case 4: return 5;
    case 5: return 4;
    default: return op;  // =, <> are symmetric
  }
}

/// Folds a literal operand to a Datum: plain constants, unary minus over
/// numeric constants (parsers spell -5 as -(5)), and casts of constants
/// (the serializer spells every literal with an explicit type,
/// 'MSFT'::varchar). The fold matches what per-row evaluation of the same
/// subtree produces; a cast that would error stays unfolded so the
/// interpreter keeps ownership of the error.
bool FoldLiteral(const Expr& e, Datum* out) {
  if (e.kind == ExprKind::kConst) {
    *out = e.datum;
    return true;
  }
  if (e.kind == ExprKind::kCast && e.lhs != nullptr) {
    Datum inner;
    if (!FoldLiteral(*e.lhs, &inner)) return false;
    Result<Datum> cast = CastDatum(inner, e.cast_type);
    if (!cast.ok()) return false;
    *out = *std::move(cast);
    return true;
  }
  if (e.kind == ExprKind::kUnary && e.op == "-" && e.lhs != nullptr &&
      e.lhs->kind == ExprKind::kConst) {
    const Datum& d = e.lhs->datum;
    if (d.is_null()) return false;
    if (d.type() == SqlType::kReal || d.type() == SqlType::kDouble) {
      *out = Datum::Float(d.type(), -d.AsDouble());
      return true;
    }
    if (IsIntegralType(d.type()) && d.type() != SqlType::kBoolean &&
        d.AsInt() != INT64_MIN) {
      *out = Datum::Int(d.type(), -d.AsInt());
      return true;
    }
  }
  return false;
}

/// Builds the canonical fingerprint text. '\x01' separates fields; every
/// construct is tagged, so two statements share text only when the kernel
/// compiled for one is exactly the kernel for the other (modulo literal
/// values, which live in `params`).
struct FpBuilder {
  KernelFingerprint fp;

  void Field(const std::string& s) {
    fp.text += s;
    fp.text += '\x01';
  }
  void Tag(const char* t) { fp.text += t; }
  void Col(const Expr& e) {
    Field(e.qualifier);
    Field(e.column);
  }
  void Lit(const Datum& d) {
    fp.text += '$';
    fp.text += ClassOf(d);
    fp.text += '\x01';
    fp.params.push_back(d);
  }
};

const char* OutputNameOf(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias.c_str();
  const Expr& e = *item.expr;
  if (e.kind == ExprKind::kColRef) return e.column.c_str();
  if (e.kind == ExprKind::kFuncCall) return e.func_name.c_str();
  return "?column?";
}

/// Compile-time three-valued truth (+1 TRUE / 0 FALSE / -1 NULL) of a
/// COALESCE fallback expression under an assumed nullness of the
/// comparison's column. The supported grammar is what the serializer's
/// null-ordering rewrite emits — IS [NOT] NULL over that same column or
/// over a literal, boolean constants, NOT, AND/OR (Kleene, exactly like
/// EvalExpr) — and anything else fails the walk (returns false), keeping
/// the predicate on the interpreted path.
bool FallbackTruth(const Expr& e, const Expr& colref, bool col_null,
                   int* out) {
  switch (e.kind) {
    case ExprKind::kConst: {
      if (e.datum.is_null()) {
        *out = -1;
        return true;
      }
      if (e.datum.type() != SqlType::kBoolean) return false;
      *out = e.datum.AsInt() != 0 ? 1 : 0;
      return true;
    }
    case ExprKind::kIsNull: {
      if (e.lhs == nullptr) return false;
      bool isnull;
      Datum lit;
      if (e.lhs->kind == ExprKind::kColRef) {
        if (e.lhs->qualifier != colref.qualifier ||
            e.lhs->column != colref.column) {
          return false;  // some other column: not this predicate's business
        }
        isnull = col_null;
      } else if (FoldLiteral(*e.lhs, &lit)) {
        isnull = lit.is_null();
      } else {
        return false;
      }
      *out = (isnull != e.negated) ? 1 : 0;
      return true;
    }
    case ExprKind::kUnary: {
      if (e.op != "NOT" || e.lhs == nullptr) return false;
      int v;
      if (!FallbackTruth(*e.lhs, colref, col_null, &v)) return false;
      *out = v < 0 ? -1 : (v == 1 ? 0 : 1);
      return true;
    }
    case ExprKind::kBinary: {
      if ((e.op != "AND" && e.op != "OR") || e.lhs == nullptr ||
          e.rhs == nullptr) {
        return false;
      }
      int a, b;
      if (!FallbackTruth(*e.lhs, colref, col_null, &a) ||
          !FallbackTruth(*e.rhs, colref, col_null, &b)) {
        return false;
      }
      if (e.op == "AND") {
        *out = (a == 0 || b == 0) ? 0 : ((a == 1 && b == 1) ? 1 : -1);
      } else {
        *out = (a == 1 || b == 1) ? 1 : ((a == 0 && b == 0) ? 0 : -1);
      }
      return true;
    }
    default:
      return false;
  }
}

/// Recognizes `COALESCE(<col cmp lit>, <fallback>)` — the serializer's
/// null-aware comparison form — and resolves it to (colref, op, literal,
/// fallback truth under NULL / non-NULL column). The fallback codes are a
/// pure function of the expression structure and the literal classes, so
/// they are fingerprint-stable across literal values.
struct CoalesceCmp {
  const Expr* col = nullptr;
  int op = 0;
  Datum lit;
  int fb_col_null = 0;
  int fb_col_notnull = 0;
};

bool MatchCoalesceCmp(const Expr& e, CoalesceCmp* out) {
  if (e.kind != ExprKind::kFuncCall || e.func_name != "coalesce" ||
      e.args.size() != 2 || e.args[0] == nullptr || e.args[1] == nullptr) {
    return false;
  }
  const Expr& cmp = *e.args[0];
  if (cmp.kind != ExprKind::kBinary || cmp.lhs == nullptr ||
      cmp.rhs == nullptr) {
    return false;
  }
  int op = CmpOpIndexOf(cmp.op);
  if (op < 0) return false;
  const Expr* col = nullptr;
  Datum lit;
  if (cmp.lhs->kind == ExprKind::kColRef && FoldLiteral(*cmp.rhs, &lit)) {
    col = cmp.lhs.get();
  } else if (cmp.rhs->kind == ExprKind::kColRef &&
             FoldLiteral(*cmp.lhs, &lit)) {
    col = cmp.rhs.get();
    op = FlipCmpOp(op);
  } else {
    return false;
  }
  int fb_cn, fb_cnn;
  if (!FallbackTruth(*e.args[1], *col, /*col_null=*/true, &fb_cn) ||
      !FallbackTruth(*e.args[1], *col, /*col_null=*/false, &fb_cnn)) {
    return false;
  }
  out->col = col;
  out->op = op;
  out->lit = std::move(lit);
  out->fb_col_null = fb_cn;
  out->fb_col_notnull = fb_cnn;
  return true;
}

bool WalkWhere(const Expr& e, FpBuilder* b) {
  if (e.kind == ExprKind::kBinary && e.op == "AND") {
    return WalkWhere(*e.lhs, b) && WalkWhere(*e.rhs, b);
  }
  if (e.kind == ExprKind::kBinary &&
      (e.op == "IS_DISTINCT" || e.op == "IS_NOT_DISTINCT")) {
    if (e.lhs == nullptr || e.rhs == nullptr) return false;
    const Expr* col = nullptr;
    Datum lit;
    // IS [NOT] DISTINCT FROM is symmetric: no operator flip when the
    // literal is on the left.
    if (e.lhs->kind == ExprKind::kColRef && FoldLiteral(*e.rhs, &lit)) {
      col = e.lhs.get();
    } else if (e.rhs->kind == ExprKind::kColRef && FoldLiteral(*e.lhs, &lit)) {
      col = e.rhs.get();
    } else {
      return false;
    }
    b->Tag(e.op == "IS_DISTINCT" ? "p:D" : "p:d");
    b->Col(*col);
    b->Lit(lit);
    return true;
  }
  if (e.kind == ExprKind::kBinary) {
    int op = CmpOpIndexOf(e.op);
    if (op < 0 || e.lhs == nullptr || e.rhs == nullptr) return false;
    const Expr* col = nullptr;
    Datum lit;
    if (e.lhs->kind == ExprKind::kColRef && FoldLiteral(*e.rhs, &lit)) {
      col = e.lhs.get();
    } else if (e.rhs->kind == ExprKind::kColRef && FoldLiteral(*e.lhs, &lit)) {
      col = e.rhs.get();
      op = FlipCmpOp(op);
    } else {
      return false;
    }
    b->Tag("p:c");
    b->Field(std::to_string(op));
    b->Col(*col);
    b->Lit(lit);
    return true;
  }
  if (e.kind == ExprKind::kIsNull) {
    if (e.lhs == nullptr || e.lhs->kind != ExprKind::kColRef) return false;
    b->Tag(e.negated ? "p:N" : "p:n");
    b->Col(*e.lhs);
    return true;
  }
  if (e.kind == ExprKind::kBetween) {
    if (e.lhs == nullptr || e.lhs->kind != ExprKind::kColRef) return false;
    Datum lo, hi;
    if (e.low == nullptr || e.high == nullptr || !FoldLiteral(*e.low, &lo) ||
        !FoldLiteral(*e.high, &hi)) {
      return false;
    }
    b->Tag(e.negated ? "p:B" : "p:b");
    b->Col(*e.lhs);
    b->Lit(lo);
    b->Lit(hi);
    return true;
  }
  if (e.kind == ExprKind::kFuncCall) {
    CoalesceCmp cc;
    if (!MatchCoalesceCmp(e, &cc)) return false;
    b->Tag("p:q");
    b->Field(std::to_string(cc.op));
    b->Col(*cc.col);
    // The fallback's compile-time truth codes are part of the shape: two
    // statements share a kernel only when their fallbacks agree.
    b->Field(std::to_string(cc.fb_col_null));
    b->Field(std::to_string(cc.fb_col_notnull));
    b->Lit(cc.lit);
    return true;
  }
  if (e.kind == ExprKind::kInList) {
    if (e.lhs == nullptr || e.lhs->kind != ExprKind::kColRef ||
        e.args.empty()) {
      return false;
    }
    b->Tag(e.negated ? "p:I" : "p:i");
    b->Col(*e.lhs);
    b->Field(std::to_string(e.args.size()));
    for (const ExprPtr& a : e.args) {
      Datum item;
      if (a == nullptr || !FoldLiteral(*a, &item)) return false;
      b->Lit(item);
    }
    return true;
  }
  return false;
}

/// True when the item expression is a kernel-runnable aggregate call:
/// non-DISTINCT, known aggregate function, argument either a single column
/// reference or the COUNT(*) spellings.
bool IsKernelAggregate(const Expr& e) {
  if (e.kind != ExprKind::kFuncCall || !IsAggregateFunction(e.func_name) ||
      e.distinct) {
    return false;
  }
  bool star = e.args.empty() ||
              (e.args.size() == 1 && e.args[0]->kind == ExprKind::kStar);
  if (star) return e.func_name == "count";
  return e.args.size() == 1 && e.args[0]->kind == ExprKind::kColRef;
}

// ---------------------------------------------------------------------------
// Canonicalization (subquery flattening)
//
// The serializer's emitted SQL wraps every operator in a rename shell —
//   SELECT t0."C" AS "C", ... FROM (SELECT ...) AS t0 [WHERE ...]
// — and the final result in `SELECT * FROM (...) AS hq_final ORDER BY
// "ordcol"`. These wrappers compose projection/filter/order over an inner
// query without changing row identity, so they flatten away before
// fingerprinting: the kernel then sees the same flat scan shape a
// hand-written query would produce. Flattening only ever REPLACES fields
// of a private SelectStmt copy; shared Expr/TableRef subtrees are never
// mutated (the kernel path reads them name-based, ignoring the resolution
// memo).
// ---------------------------------------------------------------------------

/// Rewrites `e` so references to the subquery's output columns become the
/// inner item expressions themselves. Returns nullptr when the expression
/// references anything that is not an inner output column — the flatten
/// then fails and the statement keeps its interpreted shape.
ExprPtr SubstituteExpr(const ExprPtr& e, const std::string& alias,
                       const std::unordered_map<std::string, ExprPtr>& map) {
  if (e == nullptr) return nullptr;
  switch (e->kind) {
    case ExprKind::kConst:
      return e;
    case ExprKind::kColRef: {
      if (!e->qualifier.empty() && e->qualifier != alias) return nullptr;
      auto it = map.find(e->column);
      return it == map.end() ? nullptr : it->second;
    }
    case ExprKind::kBinary:
    case ExprKind::kUnary: {
      auto out = std::make_shared<Expr>();
      out->kind = e->kind;
      out->op = e->op;
      if (e->lhs != nullptr) {
        out->lhs = SubstituteExpr(e->lhs, alias, map);
        if (out->lhs == nullptr) return nullptr;
      }
      if (e->rhs != nullptr) {
        out->rhs = SubstituteExpr(e->rhs, alias, map);
        if (out->rhs == nullptr) return nullptr;
      }
      return out;
    }
    case ExprKind::kIsNull: {
      auto out = std::make_shared<Expr>();
      out->kind = e->kind;
      out->negated = e->negated;
      out->lhs = SubstituteExpr(e->lhs, alias, map);
      return out->lhs == nullptr ? nullptr : out;
    }
    case ExprKind::kCast: {
      auto out = std::make_shared<Expr>();
      out->kind = e->kind;
      out->cast_type = e->cast_type;
      out->lhs = SubstituteExpr(e->lhs, alias, map);
      return out->lhs == nullptr ? nullptr : out;
    }
    case ExprKind::kBetween: {
      auto out = std::make_shared<Expr>();
      out->kind = e->kind;
      out->negated = e->negated;
      out->lhs = SubstituteExpr(e->lhs, alias, map);
      out->low = SubstituteExpr(e->low, alias, map);
      out->high = SubstituteExpr(e->high, alias, map);
      if (out->lhs == nullptr || out->low == nullptr ||
          out->high == nullptr) {
        return nullptr;
      }
      return out;
    }
    case ExprKind::kInList: {
      auto out = std::make_shared<Expr>();
      out->kind = e->kind;
      out->negated = e->negated;
      out->lhs = SubstituteExpr(e->lhs, alias, map);
      if (out->lhs == nullptr) return nullptr;
      out->args.reserve(e->args.size());
      for (const ExprPtr& a : e->args) {
        ExprPtr s = SubstituteExpr(a, alias, map);
        if (s == nullptr) return nullptr;
        out->args.push_back(std::move(s));
      }
      return out;
    }
    case ExprKind::kFuncCall: {
      auto out = std::make_shared<Expr>();
      out->kind = e->kind;
      out->func_name = e->func_name;
      out->distinct = e->distinct;
      out->args.reserve(e->args.size());
      for (const ExprPtr& a : e->args) {
        if (a != nullptr && a->kind == ExprKind::kStar) {
          out->args.push_back(a);  // COUNT(*): rows map 1:1 through a scan
          continue;
        }
        ExprPtr s = SubstituteExpr(a, alias, map);
        if (s == nullptr) return nullptr;
        out->args.push_back(std::move(s));
      }
      return out;
    }
    default:
      // kStar handled by the item loop; CASE/CAST/window shapes are not
      // kernel material anyway, so there is no point flattening them.
      return nullptr;
  }
}

/// One flattening step over `cur` (whose FROM is a subquery). Two shapes:
///  - plain inner scan (no aggregation): outer items/filters/group keys
///    substitute the inner item expressions, and the WHERE clauses conjoin
///    as `inner AND outer` so evaluation order is preserved;
///  - aggregating inner: the outer must be a pure column rename/reorder
///    (the serializer's kSort and hq_final shells); the inner query is
///    kept and only output names, ORDER BY and LIMIT/OFFSET move in.
/// ORDER BY keys are rewritten to unqualified references to output
/// columns — never substituted to base expressions — so resolution keeps
/// hitting the select list first, exactly like the interpreted
/// ApplyOrderBy.
bool TryFlattenOnce(SelectStmt* cur) {
  // Pin the inner select: reassigning cur->from below must not free what
  // `inner` still references.
  const SelectPtr inner_keepalive = cur->from->subquery;
  const SelectStmt& inner = *inner_keepalive;
  const std::string alias = cur->from->alias;
  if (inner.distinct || inner.having != nullptr || !inner.order_by.empty() ||
      inner.limit != nullptr || inner.offset != nullptr ||
      !inner.union_all.empty() || inner.from == nullptr ||
      inner.items.empty()) {
    return false;
  }
  bool inner_agg = !inner.group_by.empty();
  for (const SelectItem& it : inner.items) {
    if (it.expr == nullptr || it.expr->kind == ExprKind::kStar) return false;
    std::vector<const Expr*> aggs;
    CollectAggregates(it.expr, &aggs);
    if (!aggs.empty()) inner_agg = true;
  }
  // Inner output names must be unique so references are unambiguous.
  std::vector<std::string> names;
  std::unordered_map<std::string, ExprPtr> by_name;
  names.reserve(inner.items.size());
  for (const SelectItem& it : inner.items) {
    std::string n = OutputNameOf(it);
    if (n.empty() || by_name.count(n) != 0) return false;
    names.push_back(n);
    by_name.emplace(std::move(n), it.expr);
  }

  std::vector<SelectItem> new_items;
  // For plain-colref outer items, the inner column name they project —
  // qualified ORDER BY keys resolve through this.
  std::vector<std::string> item_src;
  ExprPtr new_where;
  std::vector<ExprPtr> new_group;
  auto expand_star = [&](const Expr& star) {
    if (!star.qualifier.empty() && star.qualifier != alias) return false;
    for (size_t i = 0; i < inner.items.size(); ++i) {
      SelectItem ni;
      ni.expr = inner.items[i].expr;
      ni.alias = names[i];  // preserve output names across the flatten
      new_items.push_back(std::move(ni));
      item_src.push_back(names[i]);
    }
    return true;
  };
  if (!inner_agg) {
    for (const SelectItem& item : cur->items) {
      const Expr& e = *item.expr;
      if (e.kind == ExprKind::kStar) {
        if (!expand_star(e)) return false;
        continue;
      }
      ExprPtr sub = SubstituteExpr(item.expr, alias, by_name);
      if (sub == nullptr) return false;
      SelectItem ni;
      ni.expr = std::move(sub);
      ni.alias = OutputNameOf(item);
      new_items.push_back(std::move(ni));
      item_src.push_back(
          (e.kind == ExprKind::kColRef &&
           (e.qualifier.empty() || e.qualifier == alias))
              ? e.column
              : std::string());
    }
    if (cur->where != nullptr) {
      ExprPtr w = SubstituteExpr(cur->where, alias, by_name);
      if (w == nullptr) return false;
      new_where = inner.where != nullptr
                      ? MakeBinary("AND", inner.where, std::move(w))
                      : std::move(w);
    } else {
      new_where = inner.where;
    }
    new_group.reserve(cur->group_by.size());
    for (const ExprPtr& g : cur->group_by) {
      ExprPtr sg = SubstituteExpr(g, alias, by_name);
      if (sg == nullptr) return false;
      new_group.push_back(std::move(sg));
    }
  } else {
    // Aggregating inner: the outer may only rename/reorder columns. Any
    // outer filter/group/dedup over aggregate output stays interpreted.
    if (cur->where != nullptr || !cur->group_by.empty() ||
        cur->having != nullptr || cur->distinct || !cur->union_all.empty()) {
      return false;
    }
    for (const SelectItem& item : cur->items) {
      const Expr& e = *item.expr;
      if (e.kind == ExprKind::kStar) {
        if (!expand_star(e)) return false;
        continue;
      }
      if (e.kind != ExprKind::kColRef ||
          (!e.qualifier.empty() && e.qualifier != alias)) {
        return false;
      }
      auto it = by_name.find(e.column);
      if (it == by_name.end()) return false;
      SelectItem ni;
      ni.expr = it->second;
      ni.alias = OutputNameOf(item);
      new_items.push_back(std::move(ni));
      item_src.push_back(e.column);
    }
    new_where = inner.where;
    new_group = inner.group_by;
  }

  // ORDER BY keys: ordinals keep their positions (stars expand in place to
  // the same column count); unqualified names must still resolve in the
  // select list; alias-qualified keys redirect to the output column that
  // projects the same inner column.
  std::vector<OrderItem> new_order;
  new_order.reserve(cur->order_by.size());
  auto first_by_alias = [&](const std::string& name) {
    for (size_t i = 0; i < new_items.size(); ++i) {
      if (new_items[i].alias == name) return static_cast<int>(i);
    }
    return -1;
  };
  for (const OrderItem& k : cur->order_by) {
    if (k.expr == nullptr) return false;
    const Expr& e = *k.expr;
    OrderItem nk = k;
    if (e.kind == ExprKind::kConst) {
      new_order.push_back(std::move(nk));
      continue;
    }
    if (e.kind != ExprKind::kColRef) return false;
    if (e.qualifier.empty()) {
      if (first_by_alias(e.column) < 0) return false;
      new_order.push_back(std::move(nk));  // already canonical
      continue;
    }
    if (e.qualifier != alias) return false;
    int idx = -1;
    for (size_t i = 0; i < item_src.size(); ++i) {
      if (item_src[i] == e.column) {
        idx = static_cast<int>(i);
        break;
      }
    }
    if (idx < 0) return false;
    // The rewritten unqualified name must resolve back to this item (an
    // earlier duplicate alias would shadow it).
    if (first_by_alias(new_items[idx].alias) != idx) return false;
    nk.expr = MakeColRef("", new_items[idx].alias);
    new_order.push_back(std::move(nk));
  }

  TableRefPtr new_from = inner.from;
  cur->items = std::move(new_items);
  cur->from = std::move(new_from);
  cur->where = std::move(new_where);
  cur->group_by = std::move(new_group);
  cur->order_by = std::move(new_order);
  return true;
}

/// Flattens the serializer's standard wrappers off `stmt`. Returns the
/// canonical statement when at least one level flattened, nullptr when the
/// statement is not wrapper-composed (including "not a subquery FROM").
SelectPtr CanonicalizeSelect(const SelectStmt& stmt) {
  auto cur = std::make_shared<SelectStmt>(stmt);
  bool changed = false;
  // Depth-bounded: the serializer nests one shell per operator, and
  // anything deeper than a handful of shells is not hot-query material.
  for (int depth = 0; depth < 8; ++depth) {
    if (cur->from == nullptr ||
        cur->from->kind != TableRef::Kind::kSubquery ||
        cur->from->subquery == nullptr) {
      break;
    }
    if (!TryFlattenOnce(cur.get())) break;
    changed = true;
  }
  return changed ? cur : nullptr;
}

}  // namespace

namespace {

KernelFingerprint RejectFp(const char* reason) {
  KernelFingerprint fp;
  fp.reject_reason = reason;
  return fp;
}

/// Fingerprints a (possibly canonicalized) flat statement.
KernelFingerprint FingerprintFlat(const SelectStmt& stmt) {
  // Shapes with their own post-core machinery (dedup, unions, HAVING)
  // stay on the interpreted path.
  if (stmt.distinct) return RejectFp("distinct");
  if (stmt.having != nullptr) return RejectFp("having");
  if (!stmt.union_all.empty()) return RejectFp("union");
  if (stmt.from == nullptr) return RejectFp("from");
  if (stmt.from->kind == TableRef::Kind::kSubquery) {
    return RejectFp("subquery");  // canonicalization could not flatten it
  }
  if (stmt.from->kind == TableRef::Kind::kJoin) return RejectFp("join");
  if (stmt.from->name.empty() || stmt.items.empty()) {
    return RejectFp("from");
  }

  FpBuilder b;
  b.Tag("krn2|");
  b.Field(stmt.from->name);
  b.Field(stmt.from->alias);

  bool has_agg = false;
  bool has_star = false;
  for (const SelectItem& item : stmt.items) {
    const Expr& e = *item.expr;
    if (e.kind == ExprKind::kColRef) {
      b.Tag("i:c");
      b.Col(e);
    } else if (e.kind == ExprKind::kStar) {
      has_star = true;
      b.Tag("i:s");
      b.Field(e.qualifier);
    } else if (IsKernelAggregate(e)) {
      has_agg = true;
      b.Tag("i:a");
      b.Field(e.func_name);
      if (e.args.size() == 1 && e.args[0]->kind == ExprKind::kColRef) {
        b.Col(*e.args[0]);
      } else {
        b.Tag("*\x01");
      }
    } else {
      return RejectFp("expr");
    }
    b.Field(item.alias);
  }

  if (stmt.where != nullptr) {
    b.Tag("w|");
    if (!WalkWhere(*stmt.where, &b)) return RejectFp("predicate");
  }

  if (!stmt.group_by.empty()) {
    b.Tag("g|");
    for (const ExprPtr& g : stmt.group_by) {
      if (g->kind != ExprKind::kColRef) return RejectFp("group_by");
      b.Col(*g);
    }
  }
  // A star select of a grouped query would project every column through
  // representative rows; keep stars on the projection path only (the
  // interpreted executor owns the exotic combination).
  if ((has_agg || !stmt.group_by.empty()) && has_star) {
    return RejectFp("star_agg");
  }

  // ORDER BY: output ordinals (baked into the shape — positions are
  // structural) or unqualified output names. Qualified keys and arbitrary
  // expressions sort over the pre-projection relation in the interpreted
  // executor; leave those to it.
  if (!stmt.order_by.empty()) {
    b.Tag("o|");
    for (const OrderItem& k : stmt.order_by) {
      if (k.expr == nullptr) return RejectFp("order_by");
      const Expr& e = *k.expr;
      if (e.kind == ExprKind::kConst && !e.datum.is_null() &&
          IsIntegralType(e.datum.type())) {
        int64_t ord = e.datum.AsInt();
        // Out-of-range ordinals raise a user-visible bind error the
        // interpreter owns; with a star the output width is unknown here.
        if (has_star || ord < 1 ||
            ord > static_cast<int64_t>(stmt.items.size())) {
          return RejectFp("order_by");
        }
        b.Tag("o:#");
        b.Field(std::to_string(ord));
      } else if (e.kind == ExprKind::kColRef && e.qualifier.empty()) {
        b.Tag("o:c");
        b.Field(e.column);
      } else {
        return RejectFp("order_by");
      }
      b.Field(k.ascending ? "a" : "d");
      b.Field(k.nulls_first ? "nf" : "nl");
    }
  }

  // LIMIT/OFFSET: constant and integral, lifted to literal slots so LIMIT
  // 5 and LIMIT 10 share one kernel. Anything the interpreted ApplyLimit
  // would reject (NULL, non-integral) is its error to report.
  auto walk_limit = [&b](const Expr& e, const char* tag) {
    Datum d;
    if (!FoldLiteral(e, &d) || d.is_null() || !IsIntegralType(d.type())) {
      return false;
    }
    b.Tag(tag);
    b.Lit(d);
    return true;
  };
  if (stmt.limit != nullptr && !walk_limit(*stmt.limit, "l|")) {
    return RejectFp("limit");
  }
  if (stmt.offset != nullptr && !walk_limit(*stmt.offset, "O|")) {
    return RejectFp("limit");
  }

  b.fp.supported = true;
  b.fp.table = stmt.from->name;
  b.fp.hash = Fnv1a(b.fp.text);
  return b.fp;
}

}  // namespace

KernelFingerprint KernelFingerprintFor(const SelectStmt& stmt) {
  if (stmt.from != nullptr &&
      stmt.from->kind == TableRef::Kind::kSubquery) {
    SelectPtr canonical = CanonicalizeSelect(stmt);
    if (canonical == nullptr) return RejectFp("subquery");
    KernelFingerprint fp = FingerprintFlat(*canonical);
    fp.canonical = std::move(canonical);
    return fp;
  }
  return FingerprintFlat(stmt);
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

namespace {

/// Resolves a column reference against the scan schema exactly like
/// Relation::Resolve over the scan relation would (the scan aliases every
/// column with the table alias). Ambiguity or a miss compiles to fallback
/// so the interpreted executor reports its own bind error.
int ResolveCol(const Expr& e, const std::vector<TableColumn>& schema,
               const std::string& alias) {
  if (!e.qualifier.empty() && e.qualifier != alias) return -1;
  int found = -1;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i].name != e.column) continue;
    if (found >= 0) return -1;
    found = static_cast<int>(i);
  }
  return found;
}

/// Comparison mode for `column <op> literal` following BinaryKernel's
/// dispatch (eval.cc): string columns compare bytes against string
/// literals, float on either side promotes to double, otherwise int64.
/// kNever encodes combinations that can never pass (NULL literal, all-NULL
/// column); nullopt rejects the plan (data-dependent type errors belong to
/// the interpreted path).
std::optional<KernelPlan::CmpMode> CmpModeFor(Column::Storage st,
                                              char lit_class) {
  using Mode = KernelPlan::CmpMode;
  if (lit_class == 'n' || st == Column::Storage::kEmpty) return Mode::kNever;
  switch (st) {
    case Column::Storage::kString:
      if (lit_class == 's') return Mode::kString;
      return std::nullopt;
    case Column::Storage::kInt:
      if (lit_class == 'i') return Mode::kIntInt;
      if (lit_class == 'f') return Mode::kIntDouble;
      return std::nullopt;
    case Column::Storage::kFloat:
      if (lit_class == 'i' || lit_class == 'f') return Mode::kDouble;
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

/// Equality mode for the Datum::DistinctEquals-based kinds (IS [NOT]
/// DISTINCT FROM, IN lists). Unlike CmpModeFor this never rejects:
/// DistinctEquals never raises a type error — a class mismatch simply
/// compares unequal — so mismatches compile to kNever (equality false).
KernelPlan::CmpMode EqModeFor(Column::Storage st, char lit_class) {
  using Mode = KernelPlan::CmpMode;
  if (lit_class == 'n' || st == Column::Storage::kEmpty) return Mode::kNever;
  switch (st) {
    case Column::Storage::kString:
      return lit_class == 's' ? Mode::kString : Mode::kNever;
    case Column::Storage::kInt:
      if (lit_class == 'i') return Mode::kIntInt;
      if (lit_class == 'f') return Mode::kIntDouble;
      return Mode::kNever;
    case Column::Storage::kFloat:
      return (lit_class == 'i' || lit_class == 'f') ? Mode::kDouble
                                                    : Mode::kNever;
    default:
      return Mode::kNever;
  }
}

struct CompileCtx {
  const std::vector<TableColumn>* schema;
  const std::vector<Column::Storage>* storages;
  std::string alias;
  std::vector<KernelPlan::Pred>* preds;
  std::vector<KernelPlan::InList>* in_lists;
  int next_param = 0;
};

Status CompileWhere(const Expr& e, CompileCtx* ctx) {
  if (e.kind == ExprKind::kBinary && e.op == "AND") {
    HQ_RETURN_IF_ERROR(CompileWhere(*e.lhs, ctx));
    return CompileWhere(*e.rhs, ctx);
  }
  KernelPlan::Pred p;
  if (e.kind == ExprKind::kBinary &&
      (e.op == "IS_DISTINCT" || e.op == "IS_NOT_DISTINCT")) {
    const Expr* colref = nullptr;
    Datum lit;
    if (e.lhs->kind == ExprKind::kColRef && FoldLiteral(*e.rhs, &lit)) {
      colref = e.lhs.get();
    } else {
      colref = e.rhs.get();
      FoldLiteral(*e.lhs, &lit);
    }
    p.kind = KernelPlan::Pred::Kind::kDistinct;
    p.negated = e.op == "IS_DISTINCT";
    p.col = ResolveCol(*colref, *ctx->schema, ctx->alias);
    if (p.col < 0) return Unsupported("kernel: unresolved filter column");
    p.lit_null = lit.is_null();
    p.mode = EqModeFor((*ctx->storages)[p.col], ClassOf(lit));
    p.p0 = ctx->next_param++;
  } else if (e.kind == ExprKind::kBinary) {
    int op = CmpOpIndexOf(e.op);
    const Expr* colref = nullptr;
    Datum lit;
    if (e.lhs->kind == ExprKind::kColRef && FoldLiteral(*e.rhs, &lit)) {
      colref = e.lhs.get();
    } else {
      colref = e.rhs.get();
      FoldLiteral(*e.lhs, &lit);
      op = FlipCmpOp(op);
    }
    p.kind = KernelPlan::Pred::Kind::kCmp;
    p.op = op;
    p.col = ResolveCol(*colref, *ctx->schema, ctx->alias);
    if (p.col < 0) return Unsupported("kernel: unresolved filter column");
    auto mode = CmpModeFor((*ctx->storages)[p.col], ClassOf(lit));
    if (!mode) return Unsupported("kernel: comparison type classes differ");
    p.mode = *mode;
    p.p0 = ctx->next_param++;
  } else if (e.kind == ExprKind::kFuncCall) {
    CoalesceCmp cc;
    if (!MatchCoalesceCmp(e, &cc)) {
      return Unsupported("kernel: unsupported filter function");
    }
    p.kind = KernelPlan::Pred::Kind::kCoalesceCmp;
    p.op = cc.op;
    p.col = ResolveCol(*cc.col, *ctx->schema, ctx->alias);
    if (p.col < 0) return Unsupported("kernel: unresolved filter column");
    p.lit_null = cc.lit.is_null();
    // A class mismatch raises the interpreter's comparison type error on
    // every non-NULL row (COALESCE evaluates the comparison first), so it
    // rejects exactly like a plain comparison would.
    auto mode = CmpModeFor((*ctx->storages)[p.col], ClassOf(cc.lit));
    if (!mode) return Unsupported("kernel: comparison type classes differ");
    p.mode = *mode;
    p.fb_col_null = static_cast<int8_t>(cc.fb_col_null);
    p.fb_col_notnull = static_cast<int8_t>(cc.fb_col_notnull);
    p.p0 = ctx->next_param++;
  } else if (e.kind == ExprKind::kInList) {
    p.kind = KernelPlan::Pred::Kind::kInList;
    p.negated = e.negated;
    p.col = ResolveCol(*e.lhs, *ctx->schema, ctx->alias);
    if (p.col < 0) return Unsupported("kernel: unresolved filter column");
    KernelPlan::InList il;
    il.modes.reserve(e.args.size());
    il.slots.reserve(e.args.size());
    for (const ExprPtr& a : e.args) {
      Datum item;
      FoldLiteral(*a, &item);
      if (item.is_null()) il.has_null_item = true;
      il.modes.push_back(EqModeFor((*ctx->storages)[p.col], ClassOf(item)));
      il.slots.push_back(ctx->next_param++);
    }
    p.p0 = static_cast<int>(ctx->in_lists->size());
    ctx->in_lists->push_back(std::move(il));
  } else if (e.kind == ExprKind::kIsNull) {
    p.kind = KernelPlan::Pred::Kind::kIsNull;
    p.negated = e.negated;
    p.col = ResolveCol(*e.lhs, *ctx->schema, ctx->alias);
    if (p.col < 0) return Unsupported("kernel: unresolved filter column");
  } else {
    Datum lo, hi;
    FoldLiteral(*e.low, &lo);
    FoldLiteral(*e.high, &hi);
    p.kind = KernelPlan::Pred::Kind::kBetween;
    p.negated = e.negated;
    p.col = ResolveCol(*e.lhs, *ctx->schema, ctx->alias);
    if (p.col < 0) return Unsupported("kernel: unresolved filter column");
    if (lo.is_null() || hi.is_null()) {
      // Any NULL bound makes the whole predicate evaluate to NULL before
      // the bound comparison, so neither bound can raise a type error.
      p.lo_mode = KernelPlan::CmpMode::kNever;
      p.hi_mode = KernelPlan::CmpMode::kNever;
    } else {
      auto lo_mode = CmpModeFor((*ctx->storages)[p.col], ClassOf(lo));
      auto hi_mode = CmpModeFor((*ctx->storages)[p.col], ClassOf(hi));
      if (!lo_mode || !hi_mode) {
        return Unsupported("kernel: BETWEEN type classes differ");
      }
      p.lo_mode = *lo_mode;
      p.hi_mode = *hi_mode;
    }
    p.p0 = ctx->next_param++;
    p.p1 = ctx->next_param++;
  }
  ctx->preds->push_back(p);
  return Status::OK();
}

/// True when the column is globally non-NULL and non-decreasing — i.e. a
/// stable ascending sort of it is the identity permutation. O(n) scan at
/// compile time, run only for declared-sorted columns (the loader's
/// ordcol / sort_keys); results are pinned by pointer identity in GuardOk.
bool ColumnSortedNonNull(const Column& col, size_t n) {
  if (n == 0) return true;
  if (col.storage() == Column::Storage::kEmpty) return false;  // all NULL
  for (uint8_t b : col.null_bytes()) {
    if (b != 0) return false;
  }
  for (size_t r = 1; r < n; ++r) {
    if (CompareCells(col, r - 1, r) > 0) return false;
  }
  return true;
}

}  // namespace

Result<std::shared_ptr<const KernelPlan>> KernelPlan::Compile(
    const SelectStmt& stmt, const Catalog& catalog) {
  const std::string& name = stmt.from->name;
  // Catalog tables shadow catalog views in the executor's lookup order;
  // views (or missing tables) take the interpreted path.
  if (!catalog.HasTable(name)) {
    return Unsupported("kernel: not a catalog base table");
  }
  HQ_ASSIGN_OR_RETURN(std::shared_ptr<StoredTable> table,
                      catalog.GetTable(name));

  auto plan = std::shared_ptr<KernelPlan>(new KernelPlan());
  plan->table_name_ = name;
  plan->schema_ = table->columns;
  if (table->data.size() != table->columns.size()) {
    return Unsupported("kernel: table missing column buffers");
  }
  for (const ColumnPtr& c : table->data) {
    if (c == nullptr || c->size() != table->row_count) {
      return Unsupported("kernel: ragged column buffers");
    }
    if (c->storage() == Column::Storage::kMixed) {
      return Unsupported("kernel: mixed-datum column");
    }
    plan->storages_.push_back(c->storage());
  }

  const std::string alias =
      stmt.from->alias.empty() ? name : stmt.from->alias;

  CompileCtx ctx{&plan->schema_, &plan->storages_, alias,
                 &plan->preds_,  &plan->in_lists_,  0};
  if (stmt.where != nullptr) {
    HQ_RETURN_IF_ERROR(CompileWhere(*stmt.where, &ctx));
  }

  // The scan relation's column metadata, for exact InferType reuse.
  Relation meta;
  for (size_t i = 0; i < plan->schema_.size(); ++i) {
    meta.cols.push_back(
        RelColumn{alias, plan->schema_[i].name, plan->schema_[i].type});
  }

  bool has_agg = false;
  for (const SelectItem& item : stmt.items) {
    const Expr& e = *item.expr;
    if (e.kind == ExprKind::kStar) {
      // Projection-path star: expand like the interpreted projection does,
      // alias = column name, honoring a qualifier filter.
      bool any = false;
      for (size_t i = 0; i < plan->schema_.size(); ++i) {
        if (!e.qualifier.empty() && e.qualifier != alias) continue;
        Item it;
        it.col = static_cast<int>(i);
        it.name = plan->schema_[i].name;
        it.type = plan->schema_[i].type;
        plan->items_.push_back(std::move(it));
        any = true;
      }
      if (!any) return Unsupported("kernel: star expands to no columns");
      continue;
    }
    Item it;
    if (e.kind == ExprKind::kColRef) {
      it.col = ResolveCol(e, plan->schema_, alias);
      if (it.col < 0) return Unsupported("kernel: unresolved select column");
    } else {
      has_agg = true;
      it.is_agg = true;
      it.agg.fn_name = e.func_name;
      if (e.args.size() == 1 && e.args[0]->kind == ExprKind::kColRef) {
        it.agg.col = ResolveCol(*e.args[0], plan->schema_, alias);
        if (it.agg.col < 0) {
          return Unsupported("kernel: unresolved aggregate column");
        }
        if (plan->storages_[it.agg.col] == Column::Storage::kString &&
            !(e.func_name == "count" || e.func_name == "min" ||
              e.func_name == "max" || e.func_name == "first" ||
              e.func_name == "last")) {
          // Numeric reductions over strings funnel through the collected
          // row path; leave those to the interpreter.
          return Unsupported("kernel: numeric aggregate over strings");
        }
      }
    }
    it.name = OutputNameOf(item);
    it.type = Executor::InferType(e, meta);
    plan->items_.push_back(std::move(it));
  }

  plan->grouped_ = has_agg || !stmt.group_by.empty();
  for (const ExprPtr& g : stmt.group_by) {
    int c = ResolveCol(*g, plan->schema_, alias);
    if (c < 0) return Unsupported("kernel: unresolved group column");
    plan->group_cols_.push_back(c);
  }
  if (plan->grouped_) {
    if (plan->group_cols_.empty()) {
      plan->group_mode_ = GroupMode::kNone;
    } else if (plan->group_cols_.size() == 1 &&
               plan->storages_[plan->group_cols_[0]] ==
                   Column::Storage::kInt) {
      plan->group_mode_ = GroupMode::kSingleInt;
    } else if (plan->group_cols_.size() == 1 &&
               plan->storages_[plan->group_cols_[0]] ==
                   Column::Storage::kString) {
      plan->group_mode_ = GroupMode::kSingleString;
    } else {
      plan->group_mode_ = GroupMode::kGeneric;
    }
  }

  // ORDER BY keys resolve against the output items exactly like the
  // interpreted ApplyOrderBy (ordinals are 1-based; unqualified names take
  // the first select-list match).
  for (const OrderItem& k : stmt.order_by) {
    const Expr& e = *k.expr;
    int idx = -1;
    if (e.kind == ExprKind::kConst) {
      int64_t ord = e.datum.AsInt();
      if (ord < 1 || ord > static_cast<int64_t>(plan->items_.size())) {
        return Unsupported("kernel: ORDER BY position out of range");
      }
      idx = static_cast<int>(ord - 1);
    } else {
      for (size_t i = 0; i < plan->items_.size(); ++i) {
        if (plan->items_[i].name == e.column) {
          idx = static_cast<int>(i);
          break;
        }
      }
      if (idx < 0) {
        // The interpreter would sort over the pre-projection relation;
        // that machinery stays interpreted.
        return Unsupported("kernel: ORDER BY key not in the select list");
      }
    }
    OrderKey key;
    key.item = idx;
    key.ascending = k.ascending;
    key.nulls_first = k.nulls_first;
    plan->order_keys_.push_back(key);
  }

  // ordcol elision: a lone ascending key over a column the loader declared
  // scan-sorted (the synthetic ordcol, or any advisory sort key) sorts a
  // sequence the fused scan already produces in that order — a filter only
  // drops rows from a sorted sequence, and a stable sort of a sorted,
  // NULL-free column is the identity — so the sort disappears entirely.
  // The declaration is only a hint: an O(n) compile-time scan proves
  // sortedness, and GuardOk pins the verified buffer by pointer identity.
  if (!plan->grouped_ && plan->order_keys_.size() == 1 &&
      plan->order_keys_[0].ascending) {
    const Item& it = plan->items_[plan->order_keys_[0].item];
    if (!it.is_agg && it.col >= 0) {
      const std::string& cname = plan->schema_[it.col].name;
      bool declared =
          cname == kSqlOrdColName ||
          std::find(table->sort_keys.begin(), table->sort_keys.end(),
                    cname) != table->sort_keys.end();
      if (declared &&
          ColumnSortedNonNull(*table->data[it.col], table->row_count)) {
        plan->elided_col_ = it.col;
        plan->elided_col_ptr_ = table->data[it.col].get();
        plan->order_keys_.clear();
      }
    }
  }

  if (stmt.limit != nullptr) {
    plan->has_limit_ = true;
    plan->limit_slot_ = ctx.next_param++;
  }
  if (stmt.offset != nullptr) {
    plan->has_offset_ = true;
    plan->offset_slot_ = ctx.next_param++;
  }
  return std::shared_ptr<const KernelPlan>(plan);
}

bool KernelPlan::GuardOk(const StoredTable& table) const {
  if (table.columns.size() != schema_.size() ||
      table.data.size() != schema_.size()) {
    return false;
  }
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (table.columns[i].name != schema_[i].name ||
        table.columns[i].type != schema_[i].type) {
      return false;
    }
    if (table.data[i] == nullptr ||
        table.data[i]->storage() != storages_[i] ||
        table.data[i]->size() != table.row_count) {
      return false;
    }
  }
  // An elided sort is a data-dependent proof (the key buffer was scanned
  // as sorted at compile time); require the exact buffer, so a same-schema
  // data swap racing the registry's version check can never run it.
  if (elided_col_ >= 0 &&
      (static_cast<size_t>(elided_col_) >= table.data.size() ||
       table.data[elided_col_].get() != elided_col_ptr_)) {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

namespace {

using CmpMode = KernelPlan::CmpMode;
using Pred = KernelPlan::Pred;

/// Raw pointers into one stored column, hoisted out of the row loop.
struct ColView {
  Column::Storage st = Column::Storage::kEmpty;
  const int64_t* iv = nullptr;
  const double* dv = nullptr;
  const std::vector<std::string>* sv = nullptr;
  const uint8_t* nulls = nullptr;

  bool IsNull(size_t r) const {
    if (st == Column::Storage::kEmpty) return true;
    return nulls != nullptr && nulls[r] != 0;
  }
};

ColView ViewOf(const Column& c) {
  ColView v;
  v.st = c.storage();
  switch (v.st) {
    case Column::Storage::kInt:
      v.iv = c.ints();
      break;
    case Column::Storage::kFloat:
      v.dv = c.floats();
      break;
    case Column::Storage::kString:
      v.sv = &c.strs();
      break;
    default:
      break;
  }
  if (!c.null_bytes().empty()) v.nulls = c.null_bytes().data();
  return v;
}

/// A predicate with its literal slots spliced for this execution.
struct BoundPred {
  Pred p;
  int64_t i0 = 0, i1 = 0;
  double d0 = 0, d1 = 0;
  const std::string* s0 = nullptr;
  const std::string* s1 = nullptr;
  /// kInList: the plan's membership list plus this execution's item
  /// values, parallel to inl->modes (only the mode-active lane is bound).
  const KernelPlan::InList* inl = nullptr;
  std::vector<int64_t> in_i;
  std::vector<double> in_d;
  std::vector<const std::string*> in_s;
};

/// Datum::Compare's double ordering: NaN sorts last, two NaNs tie.
inline int Cmp3Double(double x, double y) {
  bool nx = std::isnan(x), ny = std::isnan(y);
  if (nx || ny) return nx && ny ? 0 : (nx ? 1 : -1);
  return (x > y) - (x < y);
}

inline bool CmpHoldsIdx(int op, int c) {
  switch (op) {
    case 0: return c == 0;
    case 1: return c != 0;
    case 2: return c < 0;
    case 3: return c > 0;
    case 4: return c <= 0;
    default: return c >= 0;
  }
}

/// Three-way "column value vs spliced bound" under the mode's typing.
inline int Cmp3Bound(CmpMode mode, const ColView& c, size_t r, int64_t bi,
                     double bd, const std::string* bs) {
  switch (mode) {
    case CmpMode::kIntInt: {
      int64_t x = c.iv[r];
      return (x > bi) - (x < bi);
    }
    case CmpMode::kIntDouble:
      return Cmp3Double(static_cast<double>(c.iv[r]), bd);
    case CmpMode::kDouble:
      return Cmp3Double(c.dv[r], bd);
    case CmpMode::kString: {
      int s = (*c.sv)[r].compare(*bs);
      return (s > 0) - (s < 0);
    }
    default:
      return 0;
  }
}

/// First predicate fills `sel` from [lo, hi); later predicates compact it
/// in place. `pass` is a mode-specialized lambda so the row loop carries
/// no type dispatch.
template <typename Pass>
inline void FillOrCompact(bool first, size_t lo, size_t hi, SelVector* sel,
                          Pass pass) {
  if (first) {
    for (size_t r = lo; r < hi; ++r) {
      if (pass(r)) sel->push_back(static_cast<uint32_t>(r));
    }
    return;
  }
  size_t w = 0;
  for (uint32_t r : *sel) {
    if (pass(r)) (*sel)[w++] = r;
  }
  sel->resize(w);
}

void ApplyPred(const BoundPred& bp, const std::vector<ColView>& cols,
               bool first, size_t lo, size_t hi, SelVector* sel) {
  const Pred& p = bp.p;
  const ColView& c = cols[p.col];
  const uint8_t* nulls = c.nulls;
  switch (p.kind) {
    case Pred::Kind::kIsNull: {
      const bool neg = p.negated;
      if (c.st == Column::Storage::kEmpty) {
        // Every row is NULL: IS NULL keeps all, IS NOT NULL keeps none.
        FillOrCompact(first, lo, hi, sel, [neg](size_t) { return !neg; });
      } else if (nulls == nullptr) {
        FillOrCompact(first, lo, hi, sel, [neg](size_t) { return neg; });
      } else {
        FillOrCompact(first, lo, hi, sel, [nulls, neg](size_t r) {
          return (nulls[r] != 0) != neg;
        });
      }
      return;
    }
    case Pred::Kind::kCmp: {
      const int op = p.op;
      switch (p.mode) {
        case CmpMode::kNever:
          FillOrCompact(first, lo, hi, sel, [](size_t) { return false; });
          return;
        case CmpMode::kIntInt: {
          const int64_t* iv = c.iv;
          const int64_t b = bp.i0;
          FillOrCompact(first, lo, hi, sel, [iv, nulls, b, op](size_t r) {
            if (nulls != nullptr && nulls[r] != 0) return false;
            const int64_t x = iv[r];
            return CmpHoldsIdx(op, (x > b) - (x < b));
          });
          return;
        }
        case CmpMode::kIntDouble: {
          const int64_t* iv = c.iv;
          const double b = bp.d0;
          FillOrCompact(first, lo, hi, sel, [iv, nulls, b, op](size_t r) {
            if (nulls != nullptr && nulls[r] != 0) return false;
            return CmpHoldsIdx(op,
                               Cmp3Double(static_cast<double>(iv[r]), b));
          });
          return;
        }
        case CmpMode::kDouble: {
          const double* dv = c.dv;
          const double b = bp.d0;
          FillOrCompact(first, lo, hi, sel, [dv, nulls, b, op](size_t r) {
            if (nulls != nullptr && nulls[r] != 0) return false;
            return CmpHoldsIdx(op, Cmp3Double(dv[r], b));
          });
          return;
        }
        case CmpMode::kString: {
          const std::vector<std::string>* sv = c.sv;
          const std::string* b = bp.s0;
          FillOrCompact(first, lo, hi, sel, [sv, nulls, b, op](size_t r) {
            if (nulls != nullptr && nulls[r] != 0) return false;
            const int s = (*sv)[r].compare(*b);
            return CmpHoldsIdx(op, (s > 0) - (s < 0));
          });
          return;
        }
      }
      return;
    }
    case Pred::Kind::kBetween: {
      // NULL operand or NULL bound => NULL => row dropped, negated or not.
      if (p.lo_mode == CmpMode::kNever || p.hi_mode == CmpMode::kNever ||
          c.st == Column::Storage::kEmpty) {
        FillOrCompact(first, lo, hi, sel, [](size_t) { return false; });
        return;
      }
      const bool neg = p.negated;
      FillOrCompact(first, lo, hi, sel, [&bp, &c, nulls, neg](size_t r) {
        if (nulls != nullptr && nulls[r] != 0) return false;
        const int c1 = Cmp3Bound(bp.p.lo_mode, c, r, bp.i0, bp.d0, bp.s0);
        const int c2 = Cmp3Bound(bp.p.hi_mode, c, r, bp.i1, bp.d1, bp.s1);
        const bool in = c1 >= 0 && c2 <= 0;
        return in != neg;
      });
      return;
    }
    case Pred::Kind::kDistinct: {
      // Datum::DistinctEquals semantics: NULLs are equal to each other,
      // IEEE equality for floats (NaN != NaN), class mismatch unequal —
      // never a type error. Row passes when equality != negated.
      const bool neg = p.negated;
      if (p.lit_null) {
        // Equal iff the cell is NULL.
        if (c.st == Column::Storage::kEmpty) {
          FillOrCompact(first, lo, hi, sel, [neg](size_t) { return !neg; });
        } else if (nulls == nullptr) {
          FillOrCompact(first, lo, hi, sel, [neg](size_t) { return neg; });
        } else {
          FillOrCompact(first, lo, hi, sel, [nulls, neg](size_t r) {
            return (nulls[r] != 0) != neg;
          });
        }
        return;
      }
      switch (p.mode) {
        case CmpMode::kNever:  // class mismatch or all-NULL column
          FillOrCompact(first, lo, hi, sel, [neg](size_t) { return neg; });
          return;
        case CmpMode::kIntInt: {
          const int64_t* iv = c.iv;
          const int64_t b = bp.i0;
          FillOrCompact(first, lo, hi, sel, [iv, nulls, b, neg](size_t r) {
            const bool eq =
                (nulls == nullptr || nulls[r] == 0) && iv[r] == b;
            return eq != neg;
          });
          return;
        }
        case CmpMode::kIntDouble: {
          const int64_t* iv = c.iv;
          const double b = bp.d0;
          FillOrCompact(first, lo, hi, sel, [iv, nulls, b, neg](size_t r) {
            const bool eq = (nulls == nullptr || nulls[r] == 0) &&
                            static_cast<double>(iv[r]) == b;
            return eq != neg;
          });
          return;
        }
        case CmpMode::kDouble: {
          const double* dv = c.dv;
          const double b = bp.d0;
          FillOrCompact(first, lo, hi, sel, [dv, nulls, b, neg](size_t r) {
            const bool eq =
                (nulls == nullptr || nulls[r] == 0) && dv[r] == b;
            return eq != neg;
          });
          return;
        }
        case CmpMode::kString: {
          const std::vector<std::string>* sv = c.sv;
          const std::string* b = bp.s0;
          FillOrCompact(first, lo, hi, sel, [sv, nulls, b, neg](size_t r) {
            const bool eq =
                (nulls == nullptr || nulls[r] == 0) && (*sv)[r] == *b;
            return eq != neg;
          });
          return;
        }
      }
      return;
    }
    case Pred::Kind::kCoalesceCmp: {
      // COALESCE(cmp, fallback): a non-NULL comparison decides the row; a
      // NULL comparison (NULL cell or NULL literal) falls back to the
      // compile-time truth codes.
      const bool pass_null = p.fb_col_null > 0;
      const bool pass_notnull = p.fb_col_notnull > 0;
      if (p.lit_null) {
        // The comparison is NULL on every row.
        if (c.st == Column::Storage::kEmpty) {
          FillOrCompact(first, lo, hi, sel,
                        [pass_null](size_t) { return pass_null; });
        } else if (nulls == nullptr) {
          FillOrCompact(first, lo, hi, sel,
                        [pass_notnull](size_t) { return pass_notnull; });
        } else {
          FillOrCompact(first, lo, hi, sel,
                        [nulls, pass_null, pass_notnull](size_t r) {
                          return nulls[r] != 0 ? pass_null : pass_notnull;
                        });
        }
        return;
      }
      const int op = p.op;
      switch (p.mode) {
        case CmpMode::kNever:  // all-NULL column: fallback on every row
          FillOrCompact(first, lo, hi, sel,
                        [pass_null](size_t) { return pass_null; });
          return;
        case CmpMode::kIntInt: {
          const int64_t* iv = c.iv;
          const int64_t b = bp.i0;
          FillOrCompact(first, lo, hi, sel,
                        [iv, nulls, b, op, pass_null](size_t r) {
                          if (nulls != nullptr && nulls[r] != 0) {
                            return pass_null;
                          }
                          const int64_t x = iv[r];
                          return CmpHoldsIdx(op, (x > b) - (x < b));
                        });
          return;
        }
        case CmpMode::kIntDouble: {
          const int64_t* iv = c.iv;
          const double b = bp.d0;
          FillOrCompact(
              first, lo, hi, sel,
              [iv, nulls, b, op, pass_null](size_t r) {
                if (nulls != nullptr && nulls[r] != 0) return pass_null;
                return CmpHoldsIdx(
                    op, Cmp3Double(static_cast<double>(iv[r]), b));
              });
          return;
        }
        case CmpMode::kDouble: {
          const double* dv = c.dv;
          const double b = bp.d0;
          FillOrCompact(first, lo, hi, sel,
                        [dv, nulls, b, op, pass_null](size_t r) {
                          if (nulls != nullptr && nulls[r] != 0) {
                            return pass_null;
                          }
                          return CmpHoldsIdx(op, Cmp3Double(dv[r], b));
                        });
          return;
        }
        case CmpMode::kString: {
          const std::vector<std::string>* sv = c.sv;
          const std::string* b = bp.s0;
          FillOrCompact(first, lo, hi, sel,
                        [sv, nulls, b, op, pass_null](size_t r) {
                          if (nulls != nullptr && nulls[r] != 0) {
                            return pass_null;
                          }
                          const int s = (*sv)[r].compare(*b);
                          return CmpHoldsIdx(op, (s > 0) - (s < 0));
                        });
          return;
        }
      }
      return;
    }
    case Pred::Kind::kInList: {
      // IN: NULL cell => NULL => dropped; otherwise any DistinctEquals
      // item match passes (NULL/mismatched items never match a non-NULL
      // cell). NOT IN: a NULL item makes every row NULL => dropped;
      // otherwise pass iff no item matches.
      const bool neg = p.negated;
      if ((neg && bp.inl->has_null_item) ||
          c.st == Column::Storage::kEmpty) {
        FillOrCompact(first, lo, hi, sel, [](size_t) { return false; });
        return;
      }
      const KernelPlan::InList& il = *bp.inl;
      const size_t ni = il.modes.size();
      FillOrCompact(first, lo, hi, sel, [&, nulls, neg, ni](size_t r) {
        if (nulls != nullptr && nulls[r] != 0) return false;
        bool eq = false;
        for (size_t i = 0; i < ni && !eq; ++i) {
          switch (il.modes[i]) {
            case CmpMode::kIntInt:
              eq = c.iv[r] == bp.in_i[i];
              break;
            case CmpMode::kIntDouble:
              eq = static_cast<double>(c.iv[r]) == bp.in_d[i];
              break;
            case CmpMode::kDouble:
              eq = c.dv[r] == bp.in_d[i];
              break;
            case CmpMode::kString:
              eq = (*c.sv)[r] == *bp.in_s[i];
              break;
            case CmpMode::kNever:
              break;
          }
        }
        return eq != neg;
      });
      return;
    }
  }
}

/// Fused filter over one morsel: survivors of all conjuncts land in `sel`
/// (ascending). No full-table SelVector is ever materialized.
void FilterMorsel(const std::vector<BoundPred>& preds,
                  const std::vector<ColView>& cols, size_t lo, size_t hi,
                  SelVector* sel) {
  sel->clear();
  if (preds.empty()) {
    sel->reserve(hi - lo);
    for (size_t r = lo; r < hi; ++r) {
      sel->push_back(static_cast<uint32_t>(r));
    }
    return;
  }
  bool first = true;
  for (const BoundPred& bp : preds) {
    ApplyPred(bp, cols, first, lo, hi, sel);
    first = false;
  }
}

Result<std::vector<BoundPred>> SplicePreds(
    const std::vector<Pred>& preds,
    const std::vector<KernelPlan::InList>& in_lists,
    const std::vector<Datum>& params) {
  std::vector<BoundPred> out;
  out.reserve(preds.size());
  for (const Pred& p : preds) {
    BoundPred bp;
    bp.p = p;
    auto bind = [&params](CmpMode mode, int slot, int64_t* bi, double* bd,
                          const std::string** bs) -> Status {
      if (mode == CmpMode::kNever) return Status::OK();
      if (slot < 0 || static_cast<size_t>(slot) >= params.size()) {
        return InternalError("kernel: literal slot out of range");
      }
      const Datum& d = params[slot];
      switch (mode) {
        case CmpMode::kIntInt:
          *bi = d.AsInt();
          break;
        case CmpMode::kIntDouble:
        case CmpMode::kDouble:
          *bd = d.AsDouble();
          break;
        case CmpMode::kString:
          *bs = &d.AsString();
          break;
        default:
          break;
      }
      return Status::OK();
    };
    if (p.kind == Pred::Kind::kCmp || p.kind == Pred::Kind::kDistinct ||
        p.kind == Pred::Kind::kCoalesceCmp) {
      HQ_RETURN_IF_ERROR(bind(p.mode, p.p0, &bp.i0, &bp.d0, &bp.s0));
    } else if (p.kind == Pred::Kind::kBetween) {
      HQ_RETURN_IF_ERROR(bind(p.lo_mode, p.p0, &bp.i0, &bp.d0, &bp.s0));
      HQ_RETURN_IF_ERROR(bind(p.hi_mode, p.p1, &bp.i1, &bp.d1, &bp.s1));
    } else if (p.kind == Pred::Kind::kInList) {
      if (p.p0 < 0 || static_cast<size_t>(p.p0) >= in_lists.size()) {
        return InternalError("kernel: IN-list index out of range");
      }
      const KernelPlan::InList& il = in_lists[p.p0];
      bp.inl = &il;
      const size_t ni = il.modes.size();
      bp.in_i.resize(ni, 0);
      bp.in_d.resize(ni, 0);
      bp.in_s.resize(ni, nullptr);
      for (size_t i = 0; i < ni; ++i) {
        HQ_RETURN_IF_ERROR(
            bind(il.modes[i], il.slots[i], &bp.in_i[i], &bp.in_d[i],
                 &bp.in_s[i]));
      }
    }
    out.push_back(std::move(bp));
  }
  return out;
}

// --- fused filter + group build -------------------------------------------

/// Key adapters for the group-build template. `at()` must only be called
/// on rows where `null_at()` is false.
struct IntKeyAdapter {
  const ColView* c;
  using Key = int64_t;
  bool null_at(size_t r) const { return c->IsNull(r); }
  Key at(size_t r) const { return c->iv[r]; }
  static uint64_t Hash(int64_t k) {  // splitmix64 finalizer
    uint64_t x = static_cast<uint64_t>(k) + 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }
};

struct StringKeyAdapter {
  const ColView* c;
  using Key = std::string_view;
  bool null_at(size_t r) const { return c->IsNull(r); }
  Key at(size_t r) const { return std::string_view((*c->sv)[r]); }
  static uint64_t Hash(std::string_view k) {
    uint64_t h = 1469598103934665603ull;
    for (char ch : k) {
      h ^= static_cast<uint8_t>(ch);
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Generic keying: identical bytes to the interpreter's per-row
/// EncodeValue concatenation over the group columns, so NaN
/// canonicalization and the integral-double/int equivalence class carry
/// over exactly.
struct GenericKeyAdapter {
  const std::vector<ColumnPtr>* columns;
  const std::vector<int>* group_cols;
  mutable std::string scratch;
  using Key = std::string;
  bool null_at(size_t) const { return false; }
  const std::string& at(size_t r) const {
    scratch.clear();
    for (int gc : *group_cols) (*columns)[gc]->EncodeValue(r, &scratch);
    return scratch;
  }
  static uint64_t Hash(const std::string& k) {
    return StringKeyAdapter::Hash(std::string_view(k));
  }
};

/// Morsel-local groups over an open-addressing table (power-of-two
/// capacity, linear probing, cached hashes) — no per-row node allocation,
/// which is what makes the fused path beat the interpreter's
/// unordered_map bucketing. Group ids are assigned in first-occurrence
/// row order within the morsel and merged in morsel order, so group
/// order stays byte-identical to the interpreter's parallel group build
/// (exec.cc).
template <typename Adapter>
struct FlatGroups {
  using Key = typename Adapter::Key;
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

  std::vector<uint32_t> slot_gid;   // kEmptySlot = vacant
  std::vector<uint64_t> slot_hash;  // valid where slot_gid is occupied
  size_t mask = 0;
  bool has_null = false;
  uint32_t null_gid = 0;
  std::vector<Key> keys;  // per gid; default-constructed for the null gid
  std::vector<uint8_t> key_null;
  std::vector<SelVector> members;

  void Grow() {
    size_t ncap = slot_gid.empty() ? 64 : slot_gid.size() * 2;
    std::vector<uint32_t> ng(ncap, kEmptySlot);
    std::vector<uint64_t> nh(ncap, 0);
    size_t nmask = ncap - 1;
    for (size_t i = 0; i < slot_gid.size(); ++i) {
      if (slot_gid[i] == kEmptySlot) continue;
      size_t j = slot_hash[i] & nmask;
      while (ng[j] != kEmptySlot) j = (j + 1) & nmask;
      ng[j] = slot_gid[i];
      nh[j] = slot_hash[i];
    }
    slot_gid = std::move(ng);
    slot_hash = std::move(nh);
    mask = nmask;
  }

  uint32_t GidFor(uint64_t h, const Key& key) {
    if ((keys.size() + 1) * 4 >= slot_gid.size() * 3) Grow();
    size_t j = h & mask;
    while (slot_gid[j] != kEmptySlot) {
      uint32_t g = slot_gid[j];
      if (slot_hash[j] == h && keys[g] == key) return g;
      j = (j + 1) & mask;
    }
    uint32_t gid = static_cast<uint32_t>(keys.size());
    slot_gid[j] = gid;
    slot_hash[j] = h;
    keys.push_back(key);
    key_null.push_back(0);
    members.emplace_back();
    return gid;
  }

  SelVector* NullMembers() {
    if (!has_null) {
      has_null = true;
      null_gid = static_cast<uint32_t>(members.size());
      keys.emplace_back();
      key_null.push_back(1);
      members.emplace_back();
    }
    return &members[null_gid];
  }

  void Add(const Adapter& ad, uint32_t row) {
    if (ad.null_at(row)) {
      NullMembers()->push_back(row);
      return;
    }
    const auto& key = ad.at(row);
    members[GidFor(Adapter::Hash(key), key)].push_back(row);
  }
};

template <typename Adapter>
Result<std::vector<SelVector>> BuildGroupsT(
    size_t n, const std::vector<BoundPred>& preds,
    const std::vector<ColView>& cols, const Adapter& ad, const Deadline& dl) {
  if (ShouldParallelize(n)) {
    size_t morsels = (n + kMorselRows - 1) / kMorselRows;
    std::vector<FlatGroups<Adapter>> locals(morsels);
    std::vector<Status> stats(morsels, Status::OK());
    WorkerPool::Shared().ParallelFor(morsels, [&](size_t mi) {
      if (dl.Expired()) {
        stats[mi] = DeadlineExceeded("filter morsel");
        return;
      }
      Adapter local_ad = ad;  // generic adapter carries a scratch buffer
      size_t lo = mi * kMorselRows;
      size_t hi = std::min(n, lo + kMorselRows);
      FlatGroups<Adapter>& fg = locals[mi];
      SelVector sel;
      FilterMorsel(preds, cols, lo, hi, &sel);
      for (uint32_t r : sel) fg.Add(local_ad, r);
    });
    for (const Status& s : stats) {
      if (!s.ok()) return s;  // lowest morsel's error wins
    }
    // Merge in morsel order: first-occurrence group order is global.
    FlatGroups<Adapter> global;
    for (FlatGroups<Adapter>& lg : locals) {
      for (size_t g = 0; g < lg.members.size(); ++g) {
        SelVector* m;
        if (lg.key_null[g]) {
          m = global.NullMembers();
        } else {
          const typename Adapter::Key& key = lg.keys[g];
          m = &global.members[global.GidFor(Adapter::Hash(key), key)];
        }
        if (m->empty()) {
          *m = std::move(lg.members[g]);
        } else {
          m->insert(m->end(), lg.members[g].begin(), lg.members[g].end());
        }
      }
    }
    return std::move(global.members);
  }

  FlatGroups<Adapter> fg;
  SelVector sel;
  for (size_t lo = 0; lo < n; lo += kMorselRows) {
    if (dl.Expired()) return DeadlineExceeded("filter morsel");
    size_t hi = std::min(n, lo + kMorselRows);
    FilterMorsel(preds, cols, lo, hi, &sel);
    for (uint32_t r : sel) fg.Add(ad, r);
  }
  return std::move(fg.members);
}

/// Filter-only survivor scan (projection path and no-GROUP-BY
/// aggregation): per-morsel ascending parts concatenated in morsel order,
/// exactly like the interpreter's FilterRows merge.
Result<SelVector> FusedFilter(size_t n, const std::vector<BoundPred>& preds,
                              const std::vector<ColView>& cols,
                              const Deadline& dl) {
  if (ShouldParallelize(n)) {
    size_t morsels = (n + kMorselRows - 1) / kMorselRows;
    std::vector<SelVector> parts(morsels);
    std::vector<Status> stats(morsels, Status::OK());
    WorkerPool::Shared().ParallelFor(morsels, [&](size_t mi) {
      if (dl.Expired()) {
        stats[mi] = DeadlineExceeded("filter morsel");
        return;
      }
      size_t lo = mi * kMorselRows;
      size_t hi = std::min(n, lo + kMorselRows);
      FilterMorsel(preds, cols, lo, hi, &parts[mi]);
    });
    for (const Status& s : stats) {
      if (!s.ok()) return s;
    }
    SelVector sel;
    size_t total = 0;
    for (const SelVector& p : parts) total += p.size();
    sel.reserve(total);
    for (const SelVector& p : parts) sel.insert(sel.end(), p.begin(), p.end());
    return sel;
  }
  SelVector sel;
  SelVector part;
  for (size_t lo = 0; lo < n; lo += kMorselRows) {
    if (dl.Expired()) return DeadlineExceeded("filter morsel");
    size_t hi = std::min(n, lo + kMorselRows);
    FilterMorsel(preds, cols, lo, hi, &part);
    sel.insert(sel.end(), part.begin(), part.end());
  }
  return sel;
}

/// Synthesizes the aggregate Expr node ComputeAggregateColumnar reads
/// (func_name + distinct); reusing the library reducer keeps every
/// accumulator — member-order FP folds included — byte-identical to the
/// interpreted path by construction.
Expr AggExprFor(const std::string& fn_name) {
  Expr e;
  e.kind = ExprKind::kFuncCall;
  e.func_name = fn_name;
  return e;
}

}  // namespace

Result<Relation> KernelPlan::ExecuteGrouped(
    const StoredTable& table, const std::vector<Datum>& params) const {
  const Deadline dl = Deadline::Current();
  HQ_RETURN_IF_ERROR(CancelIfExpired(dl, "scan/join"));
  const size_t n = table.row_count;

  HQ_ASSIGN_OR_RETURN(std::vector<BoundPred> preds,
                      SplicePreds(preds_, in_lists_, params));
  std::vector<ColView> cols;
  cols.reserve(table.data.size());
  for (const ColumnPtr& c : table.data) cols.push_back(ViewOf(*c));

  std::vector<SelVector> members;
  switch (group_mode_) {
    case GroupMode::kNone: {
      HQ_ASSIGN_OR_RETURN(SelVector sel, FusedFilter(n, preds, cols, dl));
      if (!sel.empty()) members.push_back(std::move(sel));
      break;
    }
    case GroupMode::kSingleInt: {
      IntKeyAdapter ad{&cols[group_cols_[0]]};
      HQ_ASSIGN_OR_RETURN(members, BuildGroupsT(n, preds, cols, ad, dl));
      break;
    }
    case GroupMode::kSingleString: {
      StringKeyAdapter ad{&cols[group_cols_[0]]};
      HQ_ASSIGN_OR_RETURN(members, BuildGroupsT(n, preds, cols, ad, dl));
      break;
    }
    case GroupMode::kGeneric: {
      GenericKeyAdapter ad;
      ad.columns = &table.data;
      ad.group_cols = &group_cols_;
      HQ_ASSIGN_OR_RETURN(members, BuildGroupsT(n, preds, cols, ad, dl));
      break;
    }
  }
  // No GROUP BY: aggregates over an empty input still produce one row
  // (count(*) = 0, sums NULL), exactly like the interpreted executor.
  if (group_cols_.empty() && members.empty()) members.emplace_back();
  HQ_RETURN_IF_ERROR(CancelIfExpired(dl, "group build"));

  const size_t ngroups = members.size();
  size_t filtered = 0;
  for (const SelVector& m : members) filtered += m.size();

  // Representative rows feed the plain-column outputs (first member; -1
  // pads the empty no-GROUP-BY group with NULLs).
  std::vector<int64_t> rep(ngroups);
  for (size_t g = 0; g < ngroups; ++g) {
    rep[g] = members[g].empty() ? -1
                                : static_cast<int64_t>(members[g].front());
  }
  std::unordered_map<int, ColumnPtr> rep_cols;
  for (const Item& item : items_) {
    if (item.is_agg || rep_cols.count(item.col) != 0) continue;
    rep_cols.emplace(item.col,
                     table.data[item.col]->GatherPad(rep.data(), ngroups));
  }

  Relation out;
  out.row_count = ngroups;
  const bool par_aggs = ngroups > 1 && ShouldParallelize(filtered);
  for (const Item& item : items_) {
    ColumnPtr col;
    if (!item.is_agg) {
      col = rep_cols[item.col];
    } else if (item.agg.col < 0) {
      auto c = std::make_shared<Column>();
      for (size_t g = 0; g < ngroups; ++g) {
        c->Append(Datum::BigInt(static_cast<int64_t>(members[g].size())));
      }
      col = std::move(c);
    } else {
      const Column& arg = *table.data[item.agg.col];
      const Expr agg_expr = AggExprFor(item.agg.fn_name);
      std::vector<Datum> vals(ngroups);
      std::vector<Status> stats(ngroups, Status::OK());
      auto reduce_one = [&](size_t g) {
        if (dl.Expired()) {
          stats[g] = DeadlineExceeded("aggregate morsel");
          return;
        }
        Result<Datum> v = ComputeAggregateColumnar(agg_expr, arg, members[g]);
        if (!v.ok()) {
          stats[g] = v.status();
          return;
        }
        vals[g] = *std::move(v);
      };
      if (par_aggs) {
        WorkerPool::Shared().ParallelFor(ngroups, reduce_one);
      } else {
        for (size_t g = 0; g < ngroups; ++g) reduce_one(g);
      }
      for (const Status& s : stats) {
        if (!s.ok()) return s;  // lowest group's error wins
      }
      auto c = std::make_shared<Column>();
      for (size_t g = 0; g < ngroups; ++g) c->Append(vals[g]);
      col = std::move(c);
    }
    SqlType type = item.type;
    if (ngroups > 0 && !col->IsNull(0)) {
      Datum v0 = col->At(0);
      if (type != v0.type()) type = v0.type();
    }
    out.cols.push_back(RelColumn{"", item.name, type});
    out.columns.push_back(std::move(col));
  }
  HQ_RETURN_IF_ERROR(CancelIfExpired(dl, "group/aggregate"));
  return ApplyOrderAndLimit(std::move(out), params);
}

Result<Relation> KernelPlan::ExecuteProject(
    const StoredTable& table, const std::vector<Datum>& params) const {
  const Deadline dl = Deadline::Current();
  HQ_RETURN_IF_ERROR(CancelIfExpired(dl, "scan/join"));
  const size_t n = table.row_count;

  std::unordered_map<int, ColumnPtr> gathered;
  size_t out_rows = n;
  if (!preds_.empty()) {
    HQ_ASSIGN_OR_RETURN(std::vector<BoundPred> preds,
                        SplicePreds(preds_, in_lists_, params));
    std::vector<ColView> cols;
    cols.reserve(table.data.size());
    for (const ColumnPtr& c : table.data) cols.push_back(ViewOf(*c));
    SelVector sel;
    // LIMIT early-exit: with no sort left to satisfy, survivors are taken
    // in scan order, so the morsel loop can stop once OFFSET+LIMIT rows
    // survived (at least one, so the first-survivor type refinement below
    // still sees what the interpreter's full scan would). The collected
    // prefix is identical to the interpreter's prefix by construction.
    bool early_done = false;
    if (has_limit_ && order_keys_.empty()) {
      const int64_t limit = params[limit_slot_].AsInt();
      const int64_t offset =
          has_offset_ ? params[offset_slot_].AsInt() : 0;
      if (limit >= 0) {
        uint64_t need = static_cast<uint64_t>(limit) +
                        static_cast<uint64_t>(offset > 0 ? offset : 0);
        if (need < 1) need = 1;
        SelVector part;
        for (size_t lo = 0; lo < n && sel.size() < need;
             lo += kMorselRows) {
          HQ_RETURN_IF_ERROR(CancelIfExpired(dl, "filter morsel"));
          size_t hi = std::min(n, lo + kMorselRows);
          FilterMorsel(preds, cols, lo, hi, &part);
          sel.insert(sel.end(), part.begin(), part.end());
        }
        early_done = true;
      }
    }
    if (!early_done) {
      HQ_ASSIGN_OR_RETURN(sel, FusedFilter(n, preds, cols, dl));
    }
    out_rows = sel.size();

    // Gather only the referenced columns (the interpreter gathers the
    // whole table); Relation::GatherRows keeps the PR 3 parallel 2-D
    // gather and its byte-identical-to-sequential contract.
    Relation sub;
    std::vector<int> sub_cols;
    for (const Item& item : items_) {
      if (gathered.count(item.col) != 0) continue;
      gathered.emplace(item.col, nullptr);
      sub_cols.push_back(item.col);
      sub.cols.push_back(RelColumn{"", schema_[item.col].name,
                                   schema_[item.col].type});
      sub.columns.push_back(table.data[item.col]);
    }
    sub.row_count = n;
    Relation picked = sub.GatherRows(sel.data(), sel.size());
    for (size_t j = 0; j < sub_cols.size(); ++j) {
      gathered[sub_cols[j]] = picked.columns[j];
    }
  } else {
    // No filter: share the stored column buffers zero-copy, like the
    // interpreted scan + identity projection.
    for (const Item& item : items_) {
      if (gathered.count(item.col) == 0) {
        gathered.emplace(item.col, table.data[item.col]);
      }
    }
  }

  Relation out;
  out.row_count = out_rows;
  for (const Item& item : items_) {
    ColumnPtr col = gathered[item.col];
    SqlType type = item.type;
    if (out_rows > 0 && !col->IsNull(0)) {
      Datum v0 = col->At(0);
      if (type != v0.type()) type = v0.type();
    }
    out.cols.push_back(RelColumn{"", item.name, type});
    out.columns.push_back(std::move(col));
  }
  return ApplyOrderAndLimit(std::move(out), params);
}

Result<Relation> KernelPlan::ApplyOrderAndLimit(
    Relation out, const std::vector<Datum>& params) const {
  // Mirrors the interpreted ApplyOrderBy: stable sort of a row
  // permutation, NULLs placed by nulls_first, cells compared with the
  // shared CompareCells, then one gather. Identity permutations (0/1
  // rows) skip the gather; cell bytes are unchanged either way.
  if (!order_keys_.empty() && out.row_count > 1) {
    const size_t n = out.row_count;
    SelVector order(n);
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    std::stable_sort(
        order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
          for (const OrderKey& k : order_keys_) {
            const Column& col = *out.columns[k.item];
            bool xn = col.IsNull(a), yn = col.IsNull(b);
            if (xn || yn) {
              if (xn == yn) continue;
              return xn == k.nulls_first;
            }
            int cmp = CompareCells(col, a, b);
            if (cmp != 0) return k.ascending ? cmp < 0 : cmp > 0;
          }
          return false;
        });
    out = out.GatherRows(order.data(), order.size());
  }

  // Mirrors the interpreted ApplyLimit: negative LIMIT means "no limit",
  // OFFSET only applies when positive, and the whole-range case skips the
  // gather.
  if (has_limit_ || has_offset_) {
    int64_t limit = -1, offset = 0;
    if (has_limit_) limit = params[limit_slot_].AsInt();
    if (has_offset_) offset = params[offset_slot_].AsInt();
    size_t start = 0;
    size_t end = out.row_count;
    if (has_offset_ && offset > 0) {
      start = std::min<size_t>(static_cast<size_t>(offset), end);
    }
    if (has_limit_ && limit >= 0 &&
        end - start > static_cast<size_t>(limit)) {
      end = start + static_cast<size_t>(limit);
    }
    if (!(start == 0 && end == out.row_count)) {
      SelVector sel(end - start);
      for (size_t i = 0; i < sel.size(); ++i) {
        sel[i] = static_cast<uint32_t>(start + i);
      }
      out = out.GatherRows(sel.data(), sel.size());
    }
  }
  return out;
}

Result<Relation> KernelPlan::Execute(const StoredTable& table,
                                     const std::vector<Datum>& params) const {
  return grouped_ ? ExecuteGrouped(table, params)
                  : ExecuteProject(table, params);
}

}  // namespace sqldb
}  // namespace hyperq
