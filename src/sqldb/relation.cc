#include "sqldb/relation.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/strings.h"
#include "common/worker_pool.h"

namespace hyperq {
namespace sqldb {

// ---------------------------------------------------------------------------
// Column
// ---------------------------------------------------------------------------

Column::Storage Column::StorageFor(SqlType t) {
  if (IsStringType(t)) return Storage::kString;
  if (t == SqlType::kReal || t == SqlType::kDouble) return Storage::kFloat;
  if (t == SqlType::kNull) return Storage::kEmpty;
  return Storage::kInt;  // bool, int family, temporal family
}

std::shared_ptr<Column> Column::Make(SqlType type) {
  auto col = std::make_shared<Column>();
  col->storage_ = StorageFor(type);
  col->value_type_ = type == SqlType::kNull ? SqlType::kNull : type;
  if (col->storage_ == Storage::kEmpty) col->value_type_ = SqlType::kNull;
  return col;
}

std::shared_ptr<Column> Column::Constant(const Datum& d, size_t n) {
  auto col = std::make_shared<Column>();
  if (d.is_null()) {
    col->size_ = n;  // kEmpty storage: every cell NULL
    return col;
  }
  col->storage_ = StorageFor(d.type());
  col->value_type_ = d.type();
  col->size_ = n;
  switch (col->storage_) {
    case Storage::kInt:
      col->ints_.assign(n, d.AsInt());
      break;
    case Storage::kFloat:
      col->floats_.assign(n, d.AsDouble());
      break;
    case Storage::kString:
      col->strs_.assign(n, d.AsString());
      break;
    default:
      break;
  }
  return col;
}

std::shared_ptr<Column> Column::FromInts(SqlType value_type,
                                         std::vector<int64_t> v,
                                         std::vector<uint8_t> nulls) {
  auto col = std::make_shared<Column>();
  col->storage_ = Storage::kInt;
  col->value_type_ = value_type;
  col->size_ = v.size();
  col->ints_ = std::move(v);
  col->nulls_ = std::move(nulls);
  return col;
}

std::shared_ptr<Column> Column::FromFloats(SqlType value_type,
                                           std::vector<double> v,
                                           std::vector<uint8_t> nulls) {
  auto col = std::make_shared<Column>();
  col->storage_ = Storage::kFloat;
  col->value_type_ = value_type;
  col->size_ = v.size();
  col->floats_ = std::move(v);
  col->nulls_ = std::move(nulls);
  return col;
}

std::shared_ptr<Column> Column::FromStrings(SqlType value_type,
                                            std::vector<std::string> v,
                                            std::vector<uint8_t> nulls) {
  auto col = std::make_shared<Column>();
  col->storage_ = Storage::kString;
  col->value_type_ = value_type;
  col->size_ = v.size();
  col->strs_ = std::move(v);
  col->nulls_ = std::move(nulls);
  return col;
}

std::shared_ptr<Column> Column::FromDatums(std::vector<Datum> v) {
  auto col = std::make_shared<Column>();
  col->storage_ = Storage::kMixed;
  col->value_type_ = SqlType::kNull;
  col->size_ = v.size();
  col->mixed_ = std::move(v);
  return col;
}

Datum Column::At(size_t i) const {
  switch (storage_) {
    case Storage::kEmpty:
      return Datum::Null();
    case Storage::kInt:
      if (IsNull(i)) return Datum::Null();
      return Datum::Int(value_type_, ints_[i]);
    case Storage::kFloat:
      if (IsNull(i)) return Datum::Null();
      return Datum::Float(value_type_, floats_[i]);
    case Storage::kString:
      if (IsNull(i)) return Datum::Null();
      return Datum::String(value_type_, strs_[i]);
    case Storage::kMixed:
      return mixed_[i];
  }
  return Datum::Null();
}

void Column::Reserve(size_t n) {
  switch (storage_) {
    case Storage::kInt:
      ints_.reserve(n);
      break;
    case Storage::kFloat:
      floats_.reserve(n);
      break;
    case Storage::kString:
      strs_.reserve(n);
      break;
    case Storage::kMixed:
      mixed_.reserve(n);
      break;
    case Storage::kEmpty:
      break;
  }
}

void Column::EnsureNulls() {
  if (nulls_.empty()) nulls_.assign(size_, 0);
}

void Column::DegradeToMixed() {
  std::vector<Datum> m;
  m.reserve(size_ + 1);
  for (size_t i = 0; i < size_; ++i) m.push_back(At(i));
  mixed_ = std::move(m);
  storage_ = Storage::kMixed;
  ints_.clear();
  floats_.clear();
  strs_.clear();
  nulls_.clear();
}

void Column::AppendNull() {
  switch (storage_) {
    case Storage::kMixed:
      mixed_.push_back(Datum::Null());
      break;
    case Storage::kEmpty:
      break;  // kEmpty cells are implicitly NULL
    default:
      EnsureNulls();
      nulls_.push_back(1);
      if (storage_ == Storage::kInt) ints_.push_back(0);
      if (storage_ == Storage::kFloat) floats_.push_back(0);
      if (storage_ == Storage::kString) strs_.emplace_back();
      break;
  }
  ++size_;
}

void Column::Append(const Datum& d) {
  if (storage_ == Storage::kMixed) {
    mixed_.push_back(d);
    ++size_;
    return;
  }
  if (d.is_null()) {
    AppendNull();
    return;
  }
  Storage s = StorageFor(d.type());
  if (storage_ == Storage::kEmpty) {
    // First non-null value retypes the column; earlier cells become
    // explicit NULL slots.
    storage_ = s;
    value_type_ = d.type();
    switch (s) {
      case Storage::kInt:
        ints_.assign(size_, 0);
        break;
      case Storage::kFloat:
        floats_.assign(size_, 0);
        break;
      case Storage::kString:
        strs_.assign(size_, std::string());
        break;
      default:
        break;
    }
    if (size_ > 0) nulls_.assign(size_, 1);
  } else if (s != storage_ || d.type() != value_type_) {
    DegradeToMixed();
    mixed_.push_back(d);
    ++size_;
    return;
  }
  switch (storage_) {
    case Storage::kInt:
      ints_.push_back(d.AsInt());
      break;
    case Storage::kFloat:
      floats_.push_back(d.AsDouble());
      break;
    case Storage::kString:
      strs_.push_back(d.AsString());
      break;
    default:
      break;
  }
  if (!nulls_.empty()) nulls_.push_back(0);
  ++size_;
}

void Column::AppendFrom(const Column& src, size_t i) {
  if (src.storage_ == storage_ && src.value_type_ == value_type_ &&
      storage_ != Storage::kMixed && storage_ != Storage::kEmpty &&
      !src.IsNull(i)) {
    switch (storage_) {
      case Storage::kInt:
        ints_.push_back(src.ints_[i]);
        break;
      case Storage::kFloat:
        floats_.push_back(src.floats_[i]);
        break;
      case Storage::kString:
        strs_.push_back(src.strs_[i]);
        break;
      default:
        break;
    }
    if (!nulls_.empty()) nulls_.push_back(0);
    ++size_;
    return;
  }
  Append(src.At(i));
}

void Column::AppendColumn(const Column& src) {
  if (src.storage_ == storage_ && src.value_type_ == value_type_ &&
      storage_ != Storage::kMixed && storage_ != Storage::kEmpty) {
    // Decide up front whether a null map is needed: testing nulls_ after
    // EnsureNulls would lose src's nulls when this column is still empty
    // (EnsureNulls on zero rows leaves the map empty).
    const bool need_nulls = !nulls_.empty() || !src.nulls_.empty();
    if (need_nulls) EnsureNulls();
    switch (storage_) {
      case Storage::kInt:
        ints_.insert(ints_.end(), src.ints_.begin(), src.ints_.end());
        break;
      case Storage::kFloat:
        floats_.insert(floats_.end(), src.floats_.begin(), src.floats_.end());
        break;
      case Storage::kString:
        strs_.insert(strs_.end(), src.strs_.begin(), src.strs_.end());
        break;
      default:
        break;
    }
    if (need_nulls) {
      if (src.nulls_.empty()) {
        nulls_.insert(nulls_.end(), src.size_, 0);
      } else {
        nulls_.insert(nulls_.end(), src.nulls_.begin(), src.nulls_.end());
      }
    }
    size_ += src.size_;
    return;
  }
  for (size_t i = 0; i < src.size_; ++i) AppendFrom(src, i);
}

std::shared_ptr<Column> Column::Gather(const uint32_t* sel, size_t n) const {
  auto out = std::make_shared<Column>();
  out->storage_ = storage_;
  out->value_type_ = value_type_;
  out->size_ = n;
  switch (storage_) {
    case Storage::kEmpty:
      break;
    case Storage::kInt:
      out->ints_.resize(n);
      for (size_t i = 0; i < n; ++i) out->ints_[i] = ints_[sel[i]];
      break;
    case Storage::kFloat:
      out->floats_.resize(n);
      for (size_t i = 0; i < n; ++i) out->floats_[i] = floats_[sel[i]];
      break;
    case Storage::kString:
      out->strs_.resize(n);
      for (size_t i = 0; i < n; ++i) out->strs_[i] = strs_[sel[i]];
      break;
    case Storage::kMixed:
      out->mixed_.resize(n);
      for (size_t i = 0; i < n; ++i) out->mixed_[i] = mixed_[sel[i]];
      break;
  }
  if (!nulls_.empty() && storage_ != Storage::kMixed) {
    out->nulls_.resize(n);
    for (size_t i = 0; i < n; ++i) out->nulls_[i] = nulls_[sel[i]];
  }
  return out;
}

std::shared_ptr<Column> Column::GatherPad(const int64_t* idx, size_t n) const {
  auto out = std::make_shared<Column>();
  out->storage_ = storage_;
  out->value_type_ = value_type_;
  out->size_ = n;
  if (storage_ == Storage::kEmpty) return out;
  if (storage_ == Storage::kMixed) {
    out->mixed_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (idx[i] >= 0) out->mixed_[i] = mixed_[idx[i]];
    }
    return out;
  }
  out->nulls_.assign(n, 0);
  switch (storage_) {
    case Storage::kInt:
      out->ints_.resize(n);
      break;
    case Storage::kFloat:
      out->floats_.resize(n);
      break;
    case Storage::kString:
      out->strs_.resize(n);
      break;
    default:
      break;
  }
  bool any_null = false;
  for (size_t i = 0; i < n; ++i) {
    if (idx[i] < 0 || IsNull(static_cast<size_t>(idx[i]))) {
      out->nulls_[i] = 1;
      any_null = true;
      continue;
    }
    size_t j = static_cast<size_t>(idx[i]);
    switch (storage_) {
      case Storage::kInt:
        out->ints_[i] = ints_[j];
        break;
      case Storage::kFloat:
        out->floats_[i] = floats_[j];
        break;
      case Storage::kString:
        out->strs_[i] = strs_[j];
        break;
      default:
        break;
    }
  }
  if (!any_null) out->nulls_.clear();
  return out;
}

std::shared_ptr<Column> Column::GatherAlloc(size_t n, bool pad) const {
  auto out = std::make_shared<Column>();
  out->storage_ = storage_;
  out->value_type_ = value_type_;
  out->size_ = n;
  switch (storage_) {
    case Storage::kEmpty:
      return out;
    case Storage::kMixed:
      out->mixed_.resize(n);
      return out;
    case Storage::kInt:
      out->ints_.resize(n);
      break;
    case Storage::kFloat:
      out->floats_.resize(n);
      break;
    case Storage::kString:
      out->strs_.resize(n);
      break;
  }
  if (pad) {
    out->nulls_.assign(n, 0);
  } else if (!nulls_.empty()) {
    out->nulls_.resize(n);
  }
  return out;
}

void Column::GatherRange(const uint32_t* sel, size_t lo, size_t hi,
                         Column* out) const {
  switch (storage_) {
    case Storage::kEmpty:
      return;
    case Storage::kInt:
      for (size_t i = lo; i < hi; ++i) out->ints_[i] = ints_[sel[i]];
      break;
    case Storage::kFloat:
      for (size_t i = lo; i < hi; ++i) out->floats_[i] = floats_[sel[i]];
      break;
    case Storage::kString:
      for (size_t i = lo; i < hi; ++i) out->strs_[i] = strs_[sel[i]];
      break;
    case Storage::kMixed:
      for (size_t i = lo; i < hi; ++i) out->mixed_[i] = mixed_[sel[i]];
      return;
  }
  if (!nulls_.empty()) {
    for (size_t i = lo; i < hi; ++i) out->nulls_[i] = nulls_[sel[i]];
  }
}

bool Column::GatherPadRange(const int64_t* idx, size_t lo, size_t hi,
                            Column* out) const {
  if (storage_ == Storage::kEmpty) return false;
  if (storage_ == Storage::kMixed) {
    // Mixed cells carry their own nulls; the null map stays empty.
    for (size_t i = lo; i < hi; ++i) {
      if (idx[i] >= 0) out->mixed_[i] = mixed_[idx[i]];
    }
    return false;
  }
  bool any_null = false;
  for (size_t i = lo; i < hi; ++i) {
    if (idx[i] < 0 || IsNull(static_cast<size_t>(idx[i]))) {
      out->nulls_[i] = 1;
      any_null = true;
      continue;
    }
    size_t j = static_cast<size_t>(idx[i]);
    switch (storage_) {
      case Storage::kInt:
        out->ints_[i] = ints_[j];
        break;
      case Storage::kFloat:
        out->floats_[i] = floats_[j];
        break;
      case Storage::kString:
        out->strs_[i] = strs_[j];
        break;
      default:
        break;
    }
  }
  return any_null;
}

std::vector<int64_t> Column::TakeInts() {
  std::vector<int64_t> v = std::move(ints_);
  *this = Column();
  return v;
}

std::vector<double> Column::TakeFloats() {
  std::vector<double> v = std::move(floats_);
  *this = Column();
  return v;
}

std::vector<std::string> Column::TakeStrings() {
  std::vector<std::string> v = std::move(strs_);
  *this = Column();
  return v;
}

void Column::EncodeValue(size_t i, std::string* out) const {
  switch (storage_) {
    case Storage::kEmpty:
      out->push_back('\x00');
      return;
    case Storage::kMixed:
      EncodeDatum(mixed_[i], out);
      return;
    default:
      break;
  }
  if (IsNull(i)) {
    out->push_back('\x00');
    return;
  }
  switch (storage_) {
    case Storage::kString:
      out->push_back('s');
      out->append(strs_[i]);
      break;
    case Storage::kFloat: {
      out->push_back('f');
      double v = floats_[i];
      if (std::isnan(v)) v = std::nan("");
      if (!std::isnan(v) &&
          v == static_cast<double>(static_cast<int64_t>(v))) {
        (*out)[out->size() - 1] = 'i';
        int64_t iv = static_cast<int64_t>(v);
        out->append(reinterpret_cast<const char*>(&iv), sizeof(iv));
      } else {
        out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      }
      break;
    }
    default: {
      out->push_back('i');
      int64_t v = ints_[i];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
  }
  out->push_back('\x1f');
}

// ---------------------------------------------------------------------------
// Relation
// ---------------------------------------------------------------------------

Result<int> Relation::Resolve(const std::string& qualifier,
                              const std::string& name) const {
  int found = -1;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].name != name) continue;
    if (!qualifier.empty() && cols[i].qualifier != qualifier) continue;
    if (found >= 0) {
      return BindError(StrCat("column reference \"", name,
                              "\" is ambiguous; qualify it with a table "
                              "alias"));
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    std::vector<std::string> names;
    for (const auto& c : cols) {
      names.push_back(c.qualifier.empty() ? c.name
                                          : c.qualifier + "." + c.name);
    }
    return BindError(StrCat(
        "column \"", qualifier.empty() ? name : qualifier + "." + name,
        "\" does not exist; available columns: ", Join(names, ", ")));
  }
  return found;
}

std::vector<Datum> Relation::RowAt(size_t row) const {
  std::vector<Datum> out;
  out.reserve(columns.size());
  for (const auto& c : columns) out.push_back(c->At(row));
  return out;
}

void Relation::AddColumn(RelColumn meta, ColumnPtr data) {
  cols.push_back(std::move(meta));
  columns.push_back(std::move(data));
}

Column* Relation::MutableColumn(size_t c) {
  if (columns[c].use_count() > 1) {
    columns[c] = std::make_shared<Column>(*columns[c]);
  }
  return columns[c].get();
}

void Relation::AppendRow(const std::vector<Datum>& row) {
  if (columns.empty() && row_count == 0 && !row.empty()) {
    cols.resize(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      columns.push_back(std::make_shared<Column>());
    }
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    MutableColumn(c)->Append(c < row.size() ? row[c] : Datum::Null());
  }
  ++row_count;
}

void Relation::Reserve(size_t n) {
  for (size_t c = 0; c < columns.size(); ++c) MutableColumn(c)->Reserve(n);
}

namespace {
/// Rows per gather task. Each (column, chunk) pair is one unit of work, so
/// a wide or long gather saturates the pool instead of being limited to
/// one task per column (a single huge string column used to serialize the
/// whole materialization).
constexpr size_t kGatherChunkRows = 64 * 1024;
}  // namespace

Relation Relation::GatherRows(const uint32_t* sel, size_t n) const {
  Relation out;
  out.cols = cols;
  out.row_count = n;
  out.columns.resize(columns.size());
  size_t ncols = columns.size();
  size_t nchunks = (n + kGatherChunkRows - 1) / kGatherChunkRows;
  if (n >= 4096 && ncols * nchunks >= 2 &&
      WorkerPool::Shared().thread_count() > 0) {
    for (size_t c = 0; c < ncols; ++c) {
      out.columns[c] = columns[c]->GatherAlloc(n, /*pad=*/false);
    }
    WorkerPool::Shared().ParallelFor(ncols * nchunks, [&](size_t t) {
      size_t c = t / nchunks;
      size_t lo = (t % nchunks) * kGatherChunkRows;
      size_t hi = std::min(n, lo + kGatherChunkRows);
      columns[c]->GatherRange(sel, lo, hi, out.columns[c].get());
    });
  } else {
    for (size_t c = 0; c < ncols; ++c) {
      out.columns[c] = columns[c]->Gather(sel, n);
    }
  }
  return out;
}

Relation Relation::GatherRowsPad(const int64_t* idx, size_t n) const {
  Relation out;
  out.cols = cols;
  out.row_count = n;
  out.columns.resize(columns.size());
  size_t ncols = columns.size();
  size_t nchunks = (n + kGatherChunkRows - 1) / kGatherChunkRows;
  if (n >= 4096 && ncols * nchunks >= 2 &&
      WorkerPool::Shared().thread_count() > 0) {
    for (size_t c = 0; c < ncols; ++c) {
      out.columns[c] = columns[c]->GatherAlloc(n, /*pad=*/true);
    }
    std::vector<uint8_t> chunk_null(ncols * nchunks, 0);
    WorkerPool::Shared().ParallelFor(ncols * nchunks, [&](size_t t) {
      size_t c = t / nchunks;
      size_t lo = (t % nchunks) * kGatherChunkRows;
      size_t hi = std::min(n, lo + kGatherChunkRows);
      chunk_null[t] =
          columns[c]->GatherPadRange(idx, lo, hi, out.columns[c].get()) ? 1
                                                                        : 0;
    });
    for (size_t c = 0; c < ncols; ++c) {
      bool any = false;
      for (size_t k = 0; k < nchunks; ++k) {
        any = any || chunk_null[c * nchunks + k] != 0;
      }
      if (!any) out.columns[c]->ClearNulls();
    }
  } else {
    for (size_t c = 0; c < ncols; ++c) {
      out.columns[c] = columns[c]->GatherPad(idx, n);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Key encoding
// ---------------------------------------------------------------------------

void EncodeDatum(const Datum& d, std::string* out) {
  if (d.is_null()) {
    out->push_back('\x00');
    return;
  }
  if (IsStringType(d.type())) {
    out->push_back('s');
    out->append(d.AsString());
  } else if (d.type() == SqlType::kReal || d.type() == SqlType::kDouble) {
    out->push_back('f');
    double v = d.AsDouble();
    if (std::isnan(v)) v = std::nan("");
    // Integral-valued doubles encode as ints so 1 and 1.0 group together.
    if (!std::isnan(v) && v == static_cast<double>(static_cast<int64_t>(v))) {
      (*out)[out->size() - 1] = 'i';
      int64_t iv = static_cast<int64_t>(v);
      out->append(reinterpret_cast<const char*>(&iv), sizeof(iv));
    } else {
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
    }
  } else {
    out->push_back('i');
    int64_t v = d.AsInt();
    out->append(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  out->push_back('\x1f');
}

std::string EncodeKeyRow(const std::vector<Datum>& row) {
  std::string key;
  key.reserve(row.size() * 10);
  for (const auto& d : row) EncodeDatum(d, &key);
  return key;
}

}  // namespace sqldb
}  // namespace hyperq
