#include "sqldb/relation.h"

#include <cmath>
#include <cstring>

#include "common/strings.h"

namespace hyperq {
namespace sqldb {

Result<int> Relation::Resolve(const std::string& qualifier,
                              const std::string& name) const {
  int found = -1;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].name != name) continue;
    if (!qualifier.empty() && cols[i].qualifier != qualifier) continue;
    if (found >= 0) {
      return BindError(StrCat("column reference \"", name,
                              "\" is ambiguous; qualify it with a table "
                              "alias"));
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    std::vector<std::string> names;
    for (const auto& c : cols) {
      names.push_back(c.qualifier.empty() ? c.name
                                          : c.qualifier + "." + c.name);
    }
    return BindError(StrCat(
        "column \"", qualifier.empty() ? name : qualifier + "." + name,
        "\" does not exist; available columns: ", Join(names, ", ")));
  }
  return found;
}

void EncodeDatum(const Datum& d, std::string* out) {
  if (d.is_null()) {
    out->push_back('\x00');
    return;
  }
  if (IsStringType(d.type())) {
    out->push_back('s');
    out->append(d.AsString());
  } else if (d.type() == SqlType::kReal || d.type() == SqlType::kDouble) {
    out->push_back('f');
    double v = d.AsDouble();
    if (std::isnan(v)) v = std::nan("");
    // Integral-valued doubles encode as ints so 1 and 1.0 group together.
    if (!std::isnan(v) && v == static_cast<double>(static_cast<int64_t>(v))) {
      (*out)[out->size() - 1] = 'i';
      int64_t iv = static_cast<int64_t>(v);
      out->append(reinterpret_cast<const char*>(&iv), sizeof(iv));
    } else {
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
    }
  } else {
    out->push_back('i');
    int64_t v = d.AsInt();
    out->append(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  out->push_back('\x1f');
}

std::string EncodeKeyRow(const std::vector<Datum>& row) {
  std::string key;
  key.reserve(row.size() * 10);
  for (const auto& d : row) EncodeDatum(d, &key);
  return key;
}

}  // namespace sqldb
}  // namespace hyperq
