#ifndef HYPERQ_SQLDB_SQL_PARSER_H_
#define HYPERQ_SQLDB_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sqldb/ast.h"
#include "sqldb/sql_lexer.h"

namespace hyperq {
namespace sqldb {

/// Recursive-descent parser for the PostgreSQL dialect subset emitted by
/// Hyper-Q's serializer (and a bit more): SELECT with joins / GROUP BY /
/// HAVING / ORDER BY / LIMIT / window functions / UNION ALL, DDL
/// (CREATE [TEMP] TABLE [AS] / CREATE VIEW / DROP), and INSERT.
class SqlParser {
 public:
  /// Parses a string holding one or more ';'-separated statements.
  static Result<std::vector<SqlStatement>> Parse(const std::string& sql);

  /// Parses exactly one expression (used by tests).
  static Result<ExprPtr> ParseExpressionText(const std::string& text);

 private:
  explicit SqlParser(std::vector<SqlToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<SqlStatement> ParseStatement();
  Result<SelectPtr> ParseSelect();
  Result<SelectPtr> ParseSelectCore();
  Result<TableRefPtr> ParseTableRef();
  Result<TableRefPtr> ParseTablePrimary();
  Result<std::vector<OrderItem>> ParseOrderByList();
  Result<WindowSpec> ParseWindowSpec();
  Result<SqlStatement> ParseCreate();
  Result<SqlStatement> ParseDrop();
  Result<SqlStatement> ParseInsert();

  // Expression precedence chain.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePostfix();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseFuncCall(const std::string& name);
  Result<ExprPtr> ParseCase();

  const SqlToken& Peek(size_t ahead = 0) const;
  const SqlToken& Consume();
  bool CheckKw(const std::string& kw) const;
  bool ConsumeKw(const std::string& kw);
  bool CheckOp(const std::string& op) const;
  bool ConsumeOp(const std::string& op);
  Status ExpectKw(const std::string& kw);
  Status ExpectTok(SqlTokKind kind, const std::string& what);
  Status ErrorHere(const std::string& message) const;

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_SQL_PARSER_H_
