#ifndef HYPERQ_SQLDB_DATABASE_H_
#define HYPERQ_SQLDB_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sqldb/catalog.h"
#include "sqldb/relation.h"
#include "sqldb/session.h"

namespace hyperq {
namespace sqldb {

/// Result of executing one SQL statement: row data for SELECTs, a command
/// tag for everything (matching PG's CommandComplete payloads).
struct QueryResult {
  std::vector<TableColumn> columns;
  std::vector<std::vector<Datum>> rows;
  std::string command_tag;
  bool has_rows = false;
};

/// The mini PG-compatible database: catalog + SQL front door. This is the
/// analytical backend Hyper-Q talks to; in the paper's deployment this role
/// is played by Greenplum (§6), reachable through exactly the same SQL
/// dialect and (via protocol/pgwire) the same wire protocol.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  std::unique_ptr<Session> CreateSession() {
    return std::make_unique<Session>();
  }

  /// Parses and executes all ';'-separated statements; returns the result
  /// of the last one. `session` may be null (no temp-object visibility).
  Result<QueryResult> Execute(Session* session, const std::string& sql);

  /// Executes a single parsed statement.
  Result<QueryResult> ExecuteStatement(Session* session,
                                       const SqlStatement& stmt);

  /// Convenience bulk loader used by tests, benchmarks and examples.
  Status CreateAndLoad(StoredTable table) {
    return catalog_.CreateTable(std::move(table), /*or_replace=*/true);
  }

 private:
  Catalog catalog_;
};

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_DATABASE_H_
