#ifndef HYPERQ_SQLDB_DATABASE_H_
#define HYPERQ_SQLDB_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sqldb/catalog.h"
#include "sqldb/kernel_registry.h"
#include "sqldb/relation.h"
#include "sqldb/session.h"

namespace hyperq {
namespace sqldb {

/// A lightweight view of one result row. Cells are materialized as Datums
/// on access; iteration yields Datums by value.
class RowRef {
 public:
  RowRef(const Relation* rel, size_t row) : rel_(rel), row_(row) {}

  size_t size() const { return rel_->columns.size(); }
  bool empty() const { return rel_->columns.empty(); }
  Datum operator[](size_t c) const { return rel_->At(row_, c); }
  Datum at(size_t c) const { return rel_->At(row_, c); }
  /// Materializes the whole row.
  std::vector<Datum> ToVector() const { return rel_->RowAt(row_); }

  class const_iterator {
   public:
    const_iterator(const Relation* rel, size_t row, size_t col)
        : rel_(rel), row_(row), col_(col) {}
    Datum operator*() const { return rel_->At(row_, col_); }
    const_iterator& operator++() {
      ++col_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return col_ == o.col_; }
    bool operator!=(const const_iterator& o) const { return col_ != o.col_; }

   private:
    const Relation* rel_;
    size_t row_;
    size_t col_;
  };
  const_iterator begin() const { return {rel_, row_, 0}; }
  const_iterator end() const { return {rel_, row_, size()}; }

 private:
  const Relation* rel_;
  size_t row_;
};

/// Row-oriented view over a columnar Relation. Results are stored as
/// columns end to end (the QIPC pivot moves column buffers straight into Q
/// lists); this view keeps the historical row-at-a-time API working for
/// tests, pgwire and anything else that reads results row by row.
class RowsView {
 public:
  explicit RowsView(Relation* rel) : rel_(rel) {}

  size_t size() const { return rel_->row_count; }
  bool empty() const { return rel_->row_count == 0; }
  RowRef operator[](size_t r) const { return RowRef(rel_, r); }
  RowRef at(size_t r) const { return RowRef(rel_, r); }
  RowRef front() const { return RowRef(rel_, 0); }
  RowRef back() const { return RowRef(rel_, rel_->row_count - 1); }

  void reserve(size_t n) { rel_->Reserve(n); }
  void push_back(const std::vector<Datum>& row) { rel_->AppendRow(row); }
  void emplace_back(std::vector<Datum> row) { rel_->AppendRow(row); }

  class const_iterator {
   public:
    const_iterator(const Relation* rel, size_t row) : rel_(rel), row_(row) {}
    RowRef operator*() const { return RowRef(rel_, row_); }
    const_iterator& operator++() {
      ++row_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return row_ == o.row_; }
    bool operator!=(const const_iterator& o) const { return row_ != o.row_; }

   private:
    const Relation* rel_;
    size_t row_;
  };
  const_iterator begin() const { return {rel_, 0}; }
  const_iterator end() const { return {rel_, rel_->row_count}; }

 private:
  Relation* rel_;
};

/// Result of executing one SQL statement: columnar row data for SELECTs, a
/// command tag for everything (matching PG's CommandComplete payloads).
/// `data` owns the columns (often shared zero-copy with the catalog);
/// `rows` is a row-oriented view bound to it.
struct QueryResult {
  std::vector<TableColumn> columns;
  Relation data;
  std::string command_tag;
  bool has_rows = false;
  RowsView rows{&data};

  QueryResult() = default;
  QueryResult(const QueryResult& o)
      : columns(o.columns),
        data(o.data),
        command_tag(o.command_tag),
        has_rows(o.has_rows) {}
  QueryResult(QueryResult&& o) noexcept
      : columns(std::move(o.columns)),
        data(std::move(o.data)),
        command_tag(std::move(o.command_tag)),
        has_rows(o.has_rows) {}
  QueryResult& operator=(const QueryResult& o) {
    columns = o.columns;
    data = o.data;
    command_tag = o.command_tag;
    has_rows = o.has_rows;
    return *this;
  }
  QueryResult& operator=(QueryResult&& o) noexcept {
    columns = std::move(o.columns);
    data = std::move(o.data);
    command_tag = std::move(o.command_tag);
    has_rows = o.has_rows;
    return *this;
  }
};

/// The mini PG-compatible database: catalog + SQL front door. This is the
/// analytical backend Hyper-Q talks to; in the paper's deployment this role
/// is played by Greenplum (§6), reachable through exactly the same SQL
/// dialect and (via protocol/pgwire) the same wire protocol.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// The fused-kernel plan cache for hot SELECT shapes (sqldb/kernel.h).
  KernelRegistry& kernel_registry() { return kernels_; }

  std::unique_ptr<Session> CreateSession() {
    return std::make_unique<Session>();
  }

  /// Parses and executes all ';'-separated statements; returns the result
  /// of the last one. `session` may be null (no temp-object visibility).
  Result<QueryResult> Execute(Session* session, const std::string& sql);

  /// Executes a single parsed statement.
  Result<QueryResult> ExecuteStatement(Session* session,
                                       const SqlStatement& stmt);

  /// Convenience bulk loader used by tests, benchmarks and examples.
  Status CreateAndLoad(StoredTable table) {
    return catalog_.CreateTable(std::move(table), /*or_replace=*/true);
  }

 private:
  Catalog catalog_;
  KernelRegistry kernels_{&catalog_};
};

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_DATABASE_H_
