#include "sqldb/exec.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/worker_pool.h"

namespace hyperq {
namespace sqldb {

namespace {

constexpr int kMaxViewDepth = 16;

/// Rows per morsel for parallel scan/filter, group building and join
/// probes. Large enough to amortize dispatch, small enough to balance.
constexpr size_t kMorselRows = 16 * 1024;

/// Pair-chunk size for join condition evaluation; bounds the size of the
/// materialized candidate relation.
constexpr size_t kJoinChunkPairs = 64 * 1024;

/// Executor counters, surfaced through the metrics registry (and from
/// there .hyperq.stats[]). Resolved once; the registry owns the objects.
struct ExecMetrics {
  Counter* batches;
  Counter* rows;
  Counter* parallel_tasks;
  LatencyHistogram* morsel_us;

  static const ExecMetrics& Get() {
    static const ExecMetrics* m = [] {
      auto* out = new ExecMetrics();
      MetricsRegistry& reg = MetricsRegistry::Global();
      out->batches = reg.GetCounter("exec.batches");
      out->rows = reg.GetCounter("exec.rows");
      out->parallel_tasks = reg.GetCounter("exec.parallel_tasks");
      out->morsel_us = reg.GetHistogram("exec.morsel_us");
      return out;
    }();
    return *m;
  }
};

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Cooperative cancellation at morsel/stage boundaries. The Deadline must
/// be captured by value on the serving thread before any fan-out: pool
/// threads do not inherit the caller's ambient (thread-local) deadline.
/// Parallel lambdas skip their work when expired; the serving thread turns
/// that into kTimeout here before any partial results are merged.
Status CancelIfExpired(const Deadline& dl, const char* stage) {
  if (dl.Expired()) return DeadlineExceeded(stage);
  return Status::OK();
}

/// Splits an expression into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (!e) return;
  if (e->kind == ExprKind::kBinary && e->op == "AND") {
    SplitConjuncts(e->lhs, out);
    SplitConjuncts(e->rhs, out);
    return;
  }
  out->push_back(e);
}

std::string OutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  const Expr& e = *item.expr;
  if (e.kind == ExprKind::kColRef) return e.column;
  if (e.kind == ExprKind::kFuncCall || e.kind == ExprKind::kWindow) {
    return e.func_name;
  }
  return "?column?";
}

/// Whether a stage over n rows is worth fanning out to the shared pool.
bool ShouldParallelize(size_t n) {
  return n >= 2 * kMorselRows && WorkerPool::Shared().thread_count() > 0;
}

/// Evaluates a filter over rows [0, n) of ctx.rel, morsel-parallel when the
/// input is large and every column reference pre-resolves. Survivors are
/// appended to *out in ascending row order regardless of scheduling; on
/// error the lowest failing morsel wins, matching sequential evaluation.
Status FilterRows(const Expr& e, const BatchCtx& ctx, size_t n,
                  SelVector* out) {
  const ExecMetrics& m = ExecMetrics::Get();
  m.rows->Increment(n);
  if (ShouldParallelize(n) && PreResolve(e, *ctx.rel)) {
    size_t morsels = (n + kMorselRows - 1) / kMorselRows;
    std::vector<SelVector> parts(morsels);
    std::vector<Status> stats(morsels, Status::OK());
    const Deadline dl = Deadline::Current();
    WorkerPool::Shared().ParallelFor(morsels, [&](size_t mi) {
      if (dl.Expired()) {
        stats[mi] = DeadlineExceeded("filter morsel");
        return;
      }
      double t0 = NowUs();
      size_t lo = mi * kMorselRows;
      size_t hi = std::min(n, lo + kMorselRows);
      SelVector morsel(hi - lo);
      for (size_t k = 0; k < morsel.size(); ++k) {
        morsel[k] = static_cast<uint32_t>(lo + k);
      }
      stats[mi] =
          EvalFilter(e, ctx, morsel.data(), morsel.size(), &parts[mi]);
      m.morsel_us->Record(NowUs() - t0);
    });
    m.batches->Increment(morsels);
    m.parallel_tasks->Increment(morsels);
    for (size_t mi = 0; mi < morsels; ++mi) {
      HQ_RETURN_IF_ERROR(stats[mi]);
    }
    size_t total = 0;
    for (const auto& p : parts) total += p.size();
    out->reserve(out->size() + total);
    for (const auto& p : parts) {
      out->insert(out->end(), p.begin(), p.end());
    }
    return Status::OK();
  }
  m.batches->Increment(1);
  return EvalFilter(e, ctx, nullptr, n, out);
}

}  // namespace

SqlType Executor::InferType(const Expr& e, const Relation& input) {
  switch (e.kind) {
    case ExprKind::kConst:
      return e.datum.is_null() ? SqlType::kText : e.datum.type();
    case ExprKind::kColRef: {
      auto idx = input.Resolve(e.qualifier, e.column);
      return idx.ok() ? input.cols[*idx].type : SqlType::kText;
    }
    case ExprKind::kStar:
      return SqlType::kText;
    case ExprKind::kUnary:
      if (e.op == "NOT") return SqlType::kBoolean;
      return InferType(*e.lhs, input);
    case ExprKind::kBinary: {
      const std::string& op = e.op;
      if (op == "AND" || op == "OR" || op == "=" || op == "<>" ||
          op == "<" || op == ">" || op == "<=" || op == ">=" ||
          op == "LIKE" || op == "IS_DISTINCT" || op == "IS_NOT_DISTINCT") {
        return SqlType::kBoolean;
      }
      if (op == "||") return SqlType::kText;
      SqlType lt = InferType(*e.lhs, input);
      SqlType rt = InferType(*e.rhs, input);
      if (lt == SqlType::kReal || lt == SqlType::kDouble ||
          rt == SqlType::kReal || rt == SqlType::kDouble) {
        return SqlType::kDouble;
      }
      if (IsTemporalType(lt) && !IsTemporalType(rt)) return lt;
      if (IsTemporalType(rt) && !IsTemporalType(lt)) return rt;
      if (IsTemporalType(lt) && lt == rt) {
        // Temporal difference is a count; other ops stay temporal.
        return op == "-" ? SqlType::kBigInt : lt;
      }
      return SqlType::kBigInt;
    }
    case ExprKind::kIsNull:
    case ExprKind::kInList:
    case ExprKind::kBetween:
      return SqlType::kBoolean;
    case ExprKind::kCase: {
      if (e.args.size() >= 2) return InferType(*e.args[1], input);
      return SqlType::kText;
    }
    case ExprKind::kCast:
      return e.cast_type;
    case ExprKind::kFuncCall:
    case ExprKind::kWindow: {
      const std::string& f = e.func_name;
      if (f == "count" || f == "row_number" || f == "rank" ||
          f == "dense_rank" || f == "length" || f == "char_length" ||
          f == "mod" || f == "sign") {
        return SqlType::kBigInt;
      }
      if (f == "avg" || f == "median" || f == "stddev" ||
          f == "stddev_pop" || f == "variance" || f == "var_pop" ||
          f == "sqrt" || f == "exp" || f == "ln" || f == "log" ||
          f == "power" || f == "floor" || f == "ceil" || f == "ceiling" ||
          f == "round") {
        return SqlType::kDouble;
      }
      if (f == "bool_and" || f == "bool_or") return SqlType::kBoolean;
      if (f == "lower" || f == "upper" || f == "substr" ||
          f == "substring" || f == "concat") {
        return SqlType::kText;
      }
      if (!e.args.empty()) return InferType(*e.args[0], input);
      return SqlType::kBigInt;
    }
  }
  return SqlType::kText;
}

Result<Relation> Executor::ExecuteSelect(const SelectStmt& stmt) {
  const Deadline deadline = Deadline::Current();
  HQ_ASSIGN_OR_RETURN(CoreResult core, ExecCore(stmt));

  if (!stmt.union_all.empty()) {
    for (const auto& u : stmt.union_all) {
      HQ_RETURN_IF_ERROR(CancelIfExpired(deadline, "union member"));
      HQ_ASSIGN_OR_RETURN(CoreResult next, ExecCore(*u));
      if (next.output.cols.size() != core.output.cols.size()) {
        return BindError(StrCat(
            "UNION ALL member has ", next.output.cols.size(),
            " columns, expected ", core.output.cols.size()));
      }
      // Column-wise concat (copy-on-write protects shared scans).
      for (size_t c = 0; c < core.output.columns.size(); ++c) {
        core.output.MutableColumn(c)->AppendColumn(*next.output.columns[c]);
      }
      core.output.row_count += next.output.row_count;
    }
    // ORDER BY over a union may only reference output columns/ordinals.
    if (!stmt.order_by.empty()) {
      CoreResult for_order;
      for_order.output = std::move(core.output);
      for_order.work = for_order.output;  // resolve against outputs
      for_order.distinct_applied = true;  // forces output-only resolution
      HQ_RETURN_IF_ERROR(ApplyOrderBy(stmt, &for_order));
      core.output = std::move(for_order.output);
    }
  } else if (!stmt.order_by.empty()) {
    HQ_RETURN_IF_ERROR(CancelIfExpired(deadline, "order by"));
    HQ_RETURN_IF_ERROR(ApplyOrderBy(stmt, &core));
  }
  HQ_RETURN_IF_ERROR(ApplyLimit(stmt, &core.output));
  return std::move(core.output);
}

Result<Executor::CoreResult> Executor::ExecCore(const SelectStmt& stmt) {
  const ExecMetrics& metrics = ExecMetrics::Get();
  const Deadline deadline = Deadline::Current();

  // ---- FROM ----
  Relation input;
  if (stmt.from) {
    HQ_ASSIGN_OR_RETURN(input, EvalTableRef(*stmt.from));
  }
  HQ_RETURN_IF_ERROR(CancelIfExpired(deadline, "scan/join"));
  if (!stmt.from) {
    input.AppendRow({});  // SELECT without FROM: one empty row
  }

  // ---- WHERE ----
  if (stmt.where) {
    BatchCtx wctx;
    wctx.rel = &input;
    SelVector sel;
    HQ_RETURN_IF_ERROR(FilterRows(*stmt.where, wctx, input.row_count, &sel));
    input = input.GatherRows(sel.data(), sel.size());
  }

  CoreResult core;

  // ---- GROUP BY / aggregates ----
  std::vector<const Expr*> agg_nodes;
  for (const auto& item : stmt.items) CollectAggregates(item.expr, &agg_nodes);
  CollectAggregates(stmt.having, &agg_nodes);
  bool grouped = !stmt.group_by.empty() || !agg_nodes.empty();

  if (grouped) {
    size_t n = input.row_count;

    // Group keys evaluate column-wise; rows are then bucketed by the key
    // bytes, encoded into one scratch buffer reused across rows.
    std::vector<ColumnPtr> key_cols;
    key_cols.reserve(stmt.group_by.size());
    {
      BatchCtx gctx;
      gctx.rel = &input;
      for (const auto& g : stmt.group_by) {
        HQ_ASSIGN_OR_RETURN(ColumnPtr c, EvalBatch(*g, gctx, nullptr, n));
        key_cols.push_back(std::move(c));
      }
    }

    // Bucket rows by group key (order of first occurrence). Large inputs
    // build morsel-local groups in parallel, then merge in morsel order —
    // morsels cover ascending row ranges, so both the group order and the
    // member order within each group match the sequential scan exactly.
    std::vector<SelVector> members;
    if (!key_cols.empty() && ShouldParallelize(n)) {
      size_t morsels = (n + kMorselRows - 1) / kMorselRows;
      struct LocalGroups {
        std::vector<std::string> keys;  // first-occurrence order
        std::vector<SelVector> groups;
        std::unordered_map<std::string, size_t> map;
      };
      std::vector<LocalGroups> locals(morsels);
      const Deadline dl = Deadline::Current();
      WorkerPool::Shared().ParallelFor(morsels, [&](size_t mi) {
        if (dl.Expired()) return;  // serving thread reports the timeout
        double t0 = NowUs();
        LocalGroups& lg = locals[mi];
        size_t lo = mi * kMorselRows;
        size_t hi = std::min(n, lo + kMorselRows);
        std::string key;
        for (size_t i = lo; i < hi; ++i) {
          key.clear();
          for (const auto& kc : key_cols) kc->EncodeValue(i, &key);
          // find-then-insert: emplace would allocate a map node per row
          // even on hits, and that per-row malloc dominates the loop.
          auto it = lg.map.find(key);
          if (it == lg.map.end()) {
            it = lg.map.emplace(key, lg.keys.size()).first;
            lg.keys.push_back(key);
            lg.groups.push_back({});
          }
          lg.groups[it->second].push_back(static_cast<uint32_t>(i));
        }
        metrics.morsel_us->Record(NowUs() - t0);
      });
      metrics.batches->Increment(morsels);
      metrics.parallel_tasks->Increment(morsels);
      metrics.rows->Increment(n);
      HQ_RETURN_IF_ERROR(CancelIfExpired(dl, "group build"));
      std::unordered_map<std::string, size_t> group_of;
      for (auto& lg : locals) {
        for (size_t g = 0; g < lg.keys.size(); ++g) {
          auto [it, inserted] =
              group_of.emplace(std::move(lg.keys[g]), members.size());
          if (inserted) {
            members.push_back(std::move(lg.groups[g]));
          } else {
            SelVector& dst = members[it->second];
            dst.insert(dst.end(), lg.groups[g].begin(), lg.groups[g].end());
          }
        }
      }
    } else if (!key_cols.empty()) {
      std::unordered_map<std::string, size_t> group_of;
      std::string key;  // reused across rows
      for (size_t i = 0; i < n; ++i) {
        key.clear();
        for (const auto& kc : key_cols) kc->EncodeValue(i, &key);
        auto it = group_of.find(key);
        if (it == group_of.end()) {
          it = group_of.emplace(key, members.size()).first;
          members.push_back({});
        }
        members[it->second].push_back(static_cast<uint32_t>(i));
      }
      metrics.batches->Increment(1);
      metrics.rows->Increment(n);
    } else if (n > 0) {
      // No GROUP BY: every row lands in one group.
      members.push_back({});
      members[0].resize(n);
      std::iota(members[0].begin(), members[0].end(), 0);
    }
    // An aggregate query with no GROUP BY always yields one group, even
    // over zero rows.
    if (stmt.group_by.empty() && members.empty()) members.push_back({});

    size_t ngroups = members.size();

    // Representative rows: first member (empty groups use all-null).
    {
      std::vector<int64_t> rep(ngroups);
      for (size_t g = 0; g < ngroups; ++g) {
        rep[g] = members[g].empty()
                     ? -1
                     : static_cast<int64_t>(members[g].front());
      }
      core.work = input.GatherRowsPad(rep.data(), ngroups);
    }

    // Aggregates: evaluate each argument once over the full input as a
    // column, then reduce groups in parallel. Member order within a group
    // is ascending row order, so float accumulation is bit-identical to
    // the row-at-a-time path.
    core.agg_per_row.resize(ngroups);
    for (const Expr* agg : agg_nodes) {
      if (ngroups > 0 && core.agg_per_row[0].count(agg) > 0) {
        continue;  // duplicate node, already computed
      }
      const std::string& f = agg->func_name;
      bool star = !agg->args.empty() &&
                  agg->args[0]->kind == ExprKind::kStar;
      if (f == "count" && (agg->args.empty() || star)) {
        for (size_t g = 0; g < ngroups; ++g) {
          core.agg_per_row[g].emplace(
              agg, Datum::BigInt(static_cast<int64_t>(members[g].size())));
        }
        continue;
      }
      if (agg->args.size() != 1 && f != "count") {
        return TypeError(StrCat("aggregate ", f, " takes one argument"));
      }
      BatchCtx actx;
      actx.rel = &input;
      HQ_ASSIGN_OR_RETURN(ColumnPtr arg_col,
                          EvalBatch(*agg->args[0], actx, nullptr, n));
      std::vector<Datum> results(ngroups);
      std::vector<Status> stats(ngroups, Status::OK());
      const Deadline dl = Deadline::Current();
      auto reduce = [&](size_t g) {
        if (dl.Expired()) {
          stats[g] = DeadlineExceeded("aggregate morsel");
          return;
        }
        Result<Datum> r = ComputeAggregateColumnar(*agg, *arg_col,
                                                   members[g]);
        if (r.ok()) {
          results[g] = std::move(*r);
        } else {
          stats[g] = r.status();
        }
      };
      if (ngroups > 1 && ShouldParallelize(n)) {
        WorkerPool::Shared().ParallelFor(ngroups, reduce);
        metrics.parallel_tasks->Increment(ngroups);
      } else {
        for (size_t g = 0; g < ngroups; ++g) reduce(g);
      }
      metrics.batches->Increment(1);
      for (size_t g = 0; g < ngroups; ++g) {
        HQ_RETURN_IF_ERROR(stats[g]);
      }
      for (size_t g = 0; g < ngroups; ++g) {
        core.agg_per_row[g].emplace(agg, std::move(results[g]));
      }
    }

    // HAVING filters groups.
    if (stmt.having) {
      BatchCtx hctx{&core.work, &core.agg_per_row, nullptr};
      SelVector hsel;
      HQ_RETURN_IF_ERROR(EvalFilter(*stmt.having, hctx, nullptr,
                                    core.work.row_count, &hsel));
      core.work = core.work.GatherRows(hsel.data(), hsel.size());
      std::vector<std::unordered_map<const Expr*, Datum>> kept;
      kept.reserve(hsel.size());
      for (uint32_t i : hsel) kept.push_back(std::move(core.agg_per_row[i]));
      core.agg_per_row = std::move(kept);
    }
  } else {
    core.work = std::move(input);
  }

  HQ_RETURN_IF_ERROR(CancelIfExpired(deadline, "group/aggregate"));

  // ---- Window functions ----
  std::vector<const Expr*> window_nodes;
  for (const auto& item : stmt.items) CollectWindows(item.expr, &window_nodes);
  for (const auto& o : stmt.order_by) CollectWindows(o.expr, &window_nodes);
  if (!window_nodes.empty()) {
    HQ_RETURN_IF_ERROR(ComputeWindows(window_nodes, core.work,
                                      core.agg_per_row,
                                      &core.window_values));
  }

  // ---- Projection ----
  // Expand stars first.
  std::vector<SelectItem> items;
  for (const auto& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      for (size_t c = 0; c < core.work.cols.size(); ++c) {
        const RelColumn& col = core.work.cols[c];
        if (!item.expr->qualifier.empty() &&
            col.qualifier != item.expr->qualifier) {
          continue;
        }
        SelectItem expanded;
        expanded.expr = MakeColRef(col.qualifier, col.name);
        expanded.alias = col.name;
        items.push_back(std::move(expanded));
      }
      continue;
    }
    items.push_back(item);
  }
  if (items.empty()) return BindError("empty select list");

  size_t out_rows = core.work.row_count;
  core.output.cols.reserve(items.size());
  for (const auto& item : items) {
    RelColumn col;
    col.name = OutputName(item);
    col.type = InferType(*item.expr, core.work);
    core.output.cols.push_back(std::move(col));
  }
  BatchCtx pctx{&core.work,
                core.agg_per_row.empty() ? nullptr : &core.agg_per_row,
                core.window_values.empty() ? nullptr : &core.window_values};
  core.output.columns.reserve(items.size());
  for (size_t c = 0; c < items.size(); ++c) {
    HQ_ASSIGN_OR_RETURN(ColumnPtr col,
                        EvalBatch(*items[c].expr, pctx, nullptr, out_rows));
    // Refine the inferred type from the first row's actual value.
    if (out_rows > 0 && !col->IsNull(0)) {
      Datum v0 = col->At(0);
      if (core.output.cols[c].type != v0.type()) {
        core.output.cols[c].type = v0.type();
      }
    }
    core.output.columns.push_back(std::move(col));
  }
  core.output.row_count = out_rows;
  metrics.batches->Increment(items.size());
  metrics.rows->Increment(out_rows);

  // ---- DISTINCT ----
  if (stmt.distinct) {
    std::unordered_map<std::string, bool> seen;
    seen.reserve(out_rows * 2);
    SelVector keep;
    std::string key;  // reused across rows
    for (size_t i = 0; i < out_rows; ++i) {
      key.clear();
      for (const auto& col : core.output.columns) col->EncodeValue(i, &key);
      if (seen.find(key) == seen.end()) {
        seen.emplace(key, true);
        keep.push_back(static_cast<uint32_t>(i));
      }
    }
    core.output = core.output.GatherRows(keep.data(), keep.size());
    core.distinct_applied = true;
  }
  return core;
}

Status Executor::ApplyOrderBy(const SelectStmt& stmt, CoreResult* core) {
  size_t n = core->output.row_count;
  // Evaluate sort keys as columns. Keys may be output ordinals, output
  // aliases, or (when no DISTINCT reshaped the rows) arbitrary expressions
  // over the pre-projection relation.
  std::vector<ColumnPtr> key_cols;
  key_cols.reserve(stmt.order_by.size());
  for (const auto& item : stmt.order_by) {
    const Expr& e = *item.expr;
    int out_idx = -1;
    if (e.kind == ExprKind::kConst && !e.datum.is_null() &&
        IsIntegralType(e.datum.type())) {
      int64_t ord = e.datum.AsInt();
      if (ord < 1 || ord > static_cast<int64_t>(core->output.cols.size())) {
        return BindError(StrCat("ORDER BY position ", ord,
                                " is out of range"));
      }
      out_idx = static_cast<int>(ord - 1);
    } else if (e.kind == ExprKind::kColRef && e.qualifier.empty()) {
      for (size_t c = 0; c < core->output.cols.size(); ++c) {
        if (core->output.cols[c].name == e.column) {
          out_idx = static_cast<int>(c);
          break;
        }
      }
    }
    if (out_idx >= 0) {
      key_cols.push_back(core->output.columns[out_idx]);  // zero-copy share
      continue;
    }
    if (core->distinct_applied) {
      return BindError(
          "ORDER BY expression must appear in the select list when "
          "DISTINCT/UNION is used");
    }
    if (core->work.row_count != n) {
      return InternalError("order-by source rows out of sync");
    }
    BatchCtx kctx{&core->work,
                  core->agg_per_row.empty() ? nullptr : &core->agg_per_row,
                  core->window_values.empty() ? nullptr
                                              : &core->window_values};
    HQ_ASSIGN_OR_RETURN(ColumnPtr kcol, EvalBatch(e, kctx, nullptr, n));
    key_cols.push_back(std::move(kcol));
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < stmt.order_by.size(); ++k) {
      const Column& col = *key_cols[k];
      const OrderItem& item = stmt.order_by[k];
      bool xn = col.IsNull(a), yn = col.IsNull(b);
      if (xn || yn) {
        if (xn == yn) continue;
        return xn == item.nulls_first;
      }
      int cmp = CompareCells(col, a, b);
      if (cmp != 0) return item.ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  });

  SelVector sel(n);
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(order[i]);
  core->output = core->output.GatherRows(sel.data(), sel.size());
  return Status::OK();
}

Status Executor::ApplyLimit(const SelectStmt& stmt, Relation* rel) {
  auto eval_const = [&](const ExprPtr& e, int64_t* out) -> Status {
    if (!e) return Status::OK();
    EvalCtx ctx;
    HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e, ctx));
    if (v.is_null() || !IsIntegralType(v.type())) {
      return BindError("LIMIT/OFFSET must be integer constants");
    }
    *out = v.AsInt();
    return Status::OK();
  };
  int64_t limit = -1, offset = 0;
  HQ_RETURN_IF_ERROR(eval_const(stmt.limit, &limit));
  HQ_RETURN_IF_ERROR(eval_const(stmt.offset, &offset));
  size_t start = 0;
  size_t end = rel->row_count;
  if (stmt.offset && offset > 0) {
    start = std::min<size_t>(static_cast<size_t>(offset), end);
  }
  if (stmt.limit && limit >= 0 &&
      end - start > static_cast<size_t>(limit)) {
    end = start + static_cast<size_t>(limit);
  }
  if (start == 0 && end == rel->row_count) return Status::OK();
  SelVector sel(end - start);
  for (size_t i = 0; i < sel.size(); ++i) {
    sel[i] = static_cast<uint32_t>(start + i);
  }
  *rel = rel->GatherRows(sel.data(), sel.size());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FROM clause
// ---------------------------------------------------------------------------

Result<Relation> Executor::EvalTableRef(const TableRef& ref) {
  switch (ref.kind) {
    case TableRef::Kind::kNamed:
      return LookupNamed(ref.name, ref.alias.empty() ? ref.name : ref.alias);
    case TableRef::Kind::kSubquery: {
      HQ_ASSIGN_OR_RETURN(Relation rel, ExecuteSelect(*ref.subquery));
      for (auto& c : rel.cols) c.qualifier = ref.alias;
      return rel;
    }
    case TableRef::Kind::kJoin:
      return ExecJoin(ref);
  }
  return InternalError("unhandled table ref kind");
}

Result<Relation> Executor::LookupNamed(const std::string& name,
                                       const std::string& alias) {
  // Resolution order: session temp tables, catalog tables, session temp
  // views, catalog views.
  std::shared_ptr<StoredTable> table;
  if (session_ != nullptr) {
    auto it = session_->temp_tables().find(name);
    if (it != session_->temp_tables().end()) table = it->second;
  }
  if (!table && catalog_->HasTable(name)) {
    HQ_ASSIGN_OR_RETURN(table, catalog_->GetTable(name));
  }
  if (table) {
    // Zero-copy scan: the relation shares the stored column buffers.
    // Mutation anywhere downstream goes through copy-on-write.
    Relation rel;
    rel.cols.reserve(table->columns.size());
    rel.columns.reserve(table->columns.size());
    rel.row_count = table->row_count;
    for (size_t i = 0; i < table->columns.size(); ++i) {
      const TableColumn& c = table->columns[i];
      rel.cols.push_back(RelColumn{alias, c.name, c.type});
      rel.columns.push_back(i < table->data.size() ? table->data[i]
                                                   : Column::Make(c.type));
    }
    return rel;
  }
  const StoredView* view = nullptr;
  StoredView catalog_view;
  if (session_ != nullptr) {
    auto it = session_->temp_views().find(name);
    if (it != session_->temp_views().end()) view = &it->second;
  }
  if (view == nullptr && catalog_->HasView(name)) {
    HQ_ASSIGN_OR_RETURN(catalog_view, catalog_->GetView(name));
    view = &catalog_view;
  }
  if (view != nullptr) {
    if (++view_depth_ > kMaxViewDepth) {
      --view_depth_;
      return ExecutionError(
          StrCat("view nesting exceeds ", kMaxViewDepth,
                 " levels (circular view definition?)"));
    }
    Result<Relation> rel = ExecuteSelect(*view->select);
    --view_depth_;
    if (!rel.ok()) return rel.status();
    for (auto& c : rel->cols) c.qualifier = alias;
    return std::move(rel).value();
  }
  return NotFound(StrCat("relation \"", name, "\" does not exist"));
}

Result<Relation> Executor::ExecJoin(const TableRef& join) {
  HQ_ASSIGN_OR_RETURN(Relation left, EvalTableRef(*join.left));
  HQ_ASSIGN_OR_RETURN(Relation right, EvalTableRef(*join.right));

  const ExecMetrics& metrics = ExecMetrics::Get();
  size_t ln = left.row_count;
  size_t rn = right.row_count;

  std::vector<RelColumn> out_cols = left.cols;
  out_cols.insert(out_cols.end(), right.cols.begin(), right.cols.end());

  // Materializes a pair list (li, ri) into a combined-schema relation.
  // ri == -1 pads an all-NULL right row (left outer join).
  auto materialize_pairs = [&](const std::vector<uint32_t>& li,
                               const std::vector<int64_t>& ri) {
    Relation lg = left.GatherRows(li.data(), li.size());
    Relation rg = right.GatherRowsPad(ri.data(), ri.size());
    Relation res;
    res.cols = out_cols;
    res.columns = std::move(lg.columns);
    res.columns.insert(res.columns.end(),
                       std::make_move_iterator(rg.columns.begin()),
                       std::make_move_iterator(rg.columns.end()));
    res.row_count = li.size();
    return res;
  };

  if (join.join_type == JoinType::kCross) {
    std::vector<uint32_t> li;
    std::vector<int64_t> ri;
    li.reserve(ln * rn);
    ri.reserve(ln * rn);
    for (size_t l = 0; l < ln; ++l) {
      for (size_t r = 0; r < rn; ++r) {
        li.push_back(static_cast<uint32_t>(l));
        ri.push_back(static_cast<int64_t>(r));
      }
    }
    return materialize_pairs(li, ri);
  }

  // Extract hashable equality keys from the ON conjuncts.
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(join.on, &conjuncts);
  struct EquiKey {
    int left_idx;
    int right_idx;
    bool null_safe;  // IS NOT DISTINCT FROM
  };
  std::vector<EquiKey> keys;
  std::vector<ExprPtr> residual;
  for (const auto& c : conjuncts) {
    bool is_eq = c->kind == ExprKind::kBinary &&
                 (c->op == "=" || c->op == "IS_NOT_DISTINCT");
    if (is_eq && c->lhs->kind == ExprKind::kColRef &&
        c->rhs->kind == ExprKind::kColRef) {
      auto l_in_left = left.Resolve(c->lhs->qualifier, c->lhs->column);
      auto r_in_right = right.Resolve(c->rhs->qualifier, c->rhs->column);
      if (l_in_left.ok() && r_in_right.ok()) {
        keys.push_back(
            {*l_in_left, *r_in_right, c->op == "IS_NOT_DISTINCT"});
        continue;
      }
      auto l_in_right = right.Resolve(c->lhs->qualifier, c->lhs->column);
      auto r_in_left = left.Resolve(c->rhs->qualifier, c->rhs->column);
      if (l_in_right.ok() && r_in_left.ok()) {
        keys.push_back(
            {*r_in_left, *l_in_right, c->op == "IS_NOT_DISTINCT"});
        continue;
      }
    }
    residual.push_back(c);
  }

  // Applies conjuncts to candidate pairs chunk by chunk, narrowing with
  // each conjunct the way row-at-a-time evaluation short-circuited: a
  // later conjunct only sees pairs where every earlier one was TRUE.
  auto filter_pairs = [&](const std::vector<ExprPtr>& conds,
                          std::vector<uint32_t>* li,
                          std::vector<int64_t>* ri) -> Status {
    if (conds.empty() || li->empty()) return Status::OK();
    std::vector<uint32_t> keep_li;
    std::vector<int64_t> keep_ri;
    for (size_t base = 0; base < li->size(); base += kJoinChunkPairs) {
      size_t cn = std::min(kJoinChunkPairs, li->size() - base);
      std::vector<uint32_t> cli(li->begin() + base, li->begin() + base + cn);
      std::vector<int64_t> cri(ri->begin() + base, ri->begin() + base + cn);
      Relation cand = materialize_pairs(cli, cri);
      BatchCtx bctx;
      bctx.rel = &cand;
      SelVector sel;
      HQ_RETURN_IF_ERROR(
          EvalFilter(*conds[0], bctx, nullptr, cn, &sel));
      for (size_t c = 1; c < conds.size() && !sel.empty(); ++c) {
        SelVector next;
        HQ_RETURN_IF_ERROR(
            EvalFilter(*conds[c], bctx, sel.data(), sel.size(), &next));
        sel = std::move(next);
      }
      metrics.batches->Increment(conds.size());
      metrics.rows->Increment(cn);
      for (uint32_t s : sel) {
        keep_li.push_back(cli[s]);
        keep_ri.push_back(cri[s]);
      }
    }
    *li = std::move(keep_li);
    *ri = std::move(keep_ri);
    return Status::OK();
  };

  // Interleaves an all-NULL right row for every unmatched left row at its
  // position in left order (pairs are already left-major).
  auto pad_unmatched = [&](const std::vector<uint8_t>& matched,
                           std::vector<uint32_t>* li,
                           std::vector<int64_t>* ri) {
    std::vector<uint32_t> li2;
    std::vector<int64_t> ri2;
    li2.reserve(li->size() + ln);
    ri2.reserve(ri->size() + ln);
    size_t p = 0;
    for (size_t l = 0; l < ln; ++l) {
      if (matched[l]) {
        while (p < li->size() && (*li)[p] == l) {
          li2.push_back((*li)[p]);
          ri2.push_back((*ri)[p]);
          ++p;
        }
      } else {
        li2.push_back(static_cast<uint32_t>(l));
        ri2.push_back(-1);
      }
    }
    *li = std::move(li2);
    *ri = std::move(ri2);
  };

  if (!keys.empty()) {
    // Hash join. Build side: encode right-row keys column-wise into one
    // scratch buffer per row.
    std::unordered_map<std::string, std::vector<uint32_t>> buckets;
    buckets.reserve(rn * 2);
    {
      std::string key;
      for (size_t i = 0; i < rn; ++i) {
        key.clear();
        bool usable = true;
        for (const auto& k : keys) {
          const Column& c = *right.columns[k.right_idx];
          if (c.IsNull(i) && !k.null_safe) {
            usable = false;  // plain '=' never matches NULL
            break;
          }
          c.EncodeValue(i, &key);
        }
        if (usable) buckets[key].push_back(static_cast<uint32_t>(i));
      }
    }

    // Probe side: morsel-parallel over the left rows; each morsel emits
    // pairs in left-row order and morsels concatenate in row order, so the
    // output permutation is deterministic.
    size_t morsels =
        ShouldParallelize(ln) ? (ln + kMorselRows - 1) / kMorselRows : 1;
    struct ProbeOut {
      std::vector<uint32_t> li;
      std::vector<int64_t> ri;
    };
    std::vector<ProbeOut> parts(morsels);
    auto probe_range = [&](size_t mi, size_t lo, size_t hi) {
      ProbeOut& po = parts[mi];
      std::string key;
      for (size_t i = lo; i < hi; ++i) {
        key.clear();
        bool usable = true;
        for (const auto& k : keys) {
          const Column& c = *left.columns[k.left_idx];
          if (c.IsNull(i) && !k.null_safe) {
            usable = false;
            break;
          }
          c.EncodeValue(i, &key);
        }
        if (!usable) continue;
        auto it = buckets.find(key);
        if (it == buckets.end()) continue;
        for (uint32_t r : it->second) {
          po.li.push_back(static_cast<uint32_t>(i));
          po.ri.push_back(static_cast<int64_t>(r));
        }
      }
    };
    const Deadline dl = Deadline::Current();
    if (morsels > 1) {
      WorkerPool::Shared().ParallelFor(morsels, [&](size_t mi) {
        if (dl.Expired()) return;  // serving thread reports the timeout
        double t0 = NowUs();
        probe_range(mi, mi * kMorselRows,
                    std::min(ln, (mi + 1) * kMorselRows));
        metrics.morsel_us->Record(NowUs() - t0);
      });
      metrics.parallel_tasks->Increment(morsels);
    } else {
      probe_range(0, 0, ln);
    }
    metrics.batches->Increment(morsels);
    metrics.rows->Increment(ln + rn);
    HQ_RETURN_IF_ERROR(CancelIfExpired(dl, "join probe"));

    std::vector<uint32_t> li;
    std::vector<int64_t> ri;
    {
      size_t total = 0;
      for (const auto& po : parts) total += po.li.size();
      li.reserve(total);
      ri.reserve(total);
      for (const auto& po : parts) {
        li.insert(li.end(), po.li.begin(), po.li.end());
        ri.insert(ri.end(), po.ri.begin(), po.ri.end());
      }
    }
    HQ_RETURN_IF_ERROR(filter_pairs(residual, &li, &ri));

    if (join.join_type == JoinType::kLeft) {
      std::vector<uint8_t> matched(ln, 0);
      for (uint32_t l : li) matched[l] = 1;
      pad_unmatched(matched, &li, &ri);
    }
    return materialize_pairs(li, ri);
  }

  // Nested-loop fallback: enumerate pairs in chunks and evaluate the full
  // ON condition as a filter over the combined chunk.
  std::vector<uint32_t> li;
  std::vector<int64_t> ri;
  std::vector<uint8_t> matched(ln, 0);
  if (rn > 0) {
    std::vector<ExprPtr> on_only{join.on};
    for (size_t base = 0; base < ln * rn; base += kJoinChunkPairs) {
      size_t cn = std::min(kJoinChunkPairs, ln * rn - base);
      std::vector<uint32_t> cli(cn);
      std::vector<int64_t> cri(cn);
      for (size_t k = 0; k < cn; ++k) {
        size_t p = base + k;
        cli[k] = static_cast<uint32_t>(p / rn);
        cri[k] = static_cast<int64_t>(p % rn);
      }
      HQ_RETURN_IF_ERROR(filter_pairs(on_only, &cli, &cri));
      for (size_t k = 0; k < cli.size(); ++k) {
        li.push_back(cli[k]);
        ri.push_back(cri[k]);
        matched[cli[k]] = 1;
      }
    }
  }
  if (join.join_type == JoinType::kLeft) {
    pad_unmatched(matched, &li, &ri);
  }
  return materialize_pairs(li, ri);
}

// ---------------------------------------------------------------------------
// Window functions
// ---------------------------------------------------------------------------

Status Executor::ComputeWindows(
    const std::vector<const Expr*>& nodes, const Relation& work,
    const std::vector<std::unordered_map<const Expr*, Datum>>& agg_per_row,
    std::unordered_map<const Expr*, std::vector<Datum>>* out) {
  size_t n = work.row_count;
  for (const Expr* node : nodes) {
    if (out->count(node) > 0) continue;
    const WindowSpec& spec = node->window;

    auto ctx_for = [&](size_t i) {
      return EvalCtx{&work, i,
                     agg_per_row.empty() ? nullptr : &agg_per_row[i],
                     nullptr};
    };

    // Partition rows.
    std::unordered_map<std::string, size_t> part_of;
    std::vector<std::vector<size_t>> partitions;
    for (size_t i = 0; i < n; ++i) {
      std::string key;
      for (const auto& p : spec.partition_by) {
        HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*p, ctx_for(i)));
        EncodeDatum(v, &key);
      }
      auto [it, inserted] = part_of.emplace(key, partitions.size());
      if (inserted) partitions.push_back({});
      partitions[it->second].push_back(i);
    }

    std::vector<Datum> result(n);
    for (auto& part : partitions) {
      // Order within the partition.
      std::vector<std::vector<Datum>> keys(part.size());
      for (size_t p = 0; p < part.size(); ++p) {
        for (const auto& o : spec.order_by) {
          HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*o.expr, ctx_for(part[p])));
          keys[p].push_back(std::move(v));
        }
      }
      std::vector<size_t> order(part.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        for (size_t k = 0; k < spec.order_by.size(); ++k) {
          const Datum& x = keys[a][k];
          const Datum& y = keys[b][k];
          const OrderItem& item = spec.order_by[k];
          if (x.is_null() || y.is_null()) {
            if (x.is_null() == y.is_null()) continue;
            return x.is_null() == item.nulls_first;
          }
          int cmp = Datum::Compare(x, y);
          if (cmp != 0) return item.ascending ? cmp < 0 : cmp > 0;
        }
        return false;
      });
      std::vector<size_t> seq;  // row indices in window order
      seq.reserve(part.size());
      for (size_t o : order) seq.push_back(part[o]);

      // Peer groups (rows equal on all order keys).
      std::vector<size_t> peer_end(seq.size());
      {
        size_t i = 0;
        while (i < seq.size()) {
          size_t j = i;
          while (j + 1 < seq.size()) {
            bool equal = true;
            for (size_t k = 0; k < spec.order_by.size(); ++k) {
              const Datum& x = keys[order[i]][k];
              const Datum& y = keys[order[j + 1]][k];
              if (!Datum::DistinctEquals(x, y)) {
                equal = false;
                break;
              }
            }
            if (!equal) break;
            ++j;
          }
          for (size_t p = i; p <= j; ++p) peer_end[p] = j;
          i = j + 1;
        }
      }

      const std::string& f = node->func_name;
      auto arg_at = [&](size_t pos, size_t arg_idx) -> Result<Datum> {
        return EvalExpr(*node->args[arg_idx], ctx_for(seq[pos]));
      };

      for (size_t pos = 0; pos < seq.size(); ++pos) {
        Datum value;
        if (f == "row_number") {
          value = Datum::BigInt(static_cast<int64_t>(pos + 1));
        } else if (f == "rank" || f == "dense_rank") {
          // rank = index of first peer + 1.
          size_t first_peer = pos;
          while (first_peer > 0 && peer_end[first_peer - 1] >= pos) {
            --first_peer;
          }
          int64_t rank = static_cast<int64_t>(first_peer) + 1;
          // dense rank: count of peer groups before this one.
          int64_t dense = 1;
          size_t p = 0;
          while (p < first_peer) {
            ++dense;
            p = peer_end[p] + 1;
          }
          value = Datum::BigInt(f == "rank" ? rank : dense);
        } else if (f == "lag" || f == "lead") {
          int64_t off = 1;
          if (node->args.size() >= 2) {
            HQ_ASSIGN_OR_RETURN(Datum o, arg_at(pos, 1));
            if (!o.is_null()) off = o.AsInt();
          }
          int64_t target = static_cast<int64_t>(pos) +
                           (f == "lag" ? -off : off);
          if (target < 0 || target >= static_cast<int64_t>(seq.size())) {
            if (node->args.size() >= 3) {
              HQ_ASSIGN_OR_RETURN(value, arg_at(pos, 2));
            } else {
              value = Datum::Null();
            }
          } else {
            HQ_ASSIGN_OR_RETURN(value, arg_at(target, 0));
          }
        } else {
          // Frame-based functions. Default frame: RANGE UNBOUNDED
          // PRECEDING .. CURRENT ROW (ends at the last peer).
          int64_t lo = 0;
          int64_t hi;
          if (node->window.frame.specified) {
            const WindowFrame& fr = node->window.frame;
            lo = fr.start_offset == INT64_MIN
                     ? 0
                     : std::max<int64_t>(0, static_cast<int64_t>(pos) +
                                                fr.start_offset);
            hi = fr.end_offset == INT64_MAX
                     ? static_cast<int64_t>(seq.size()) - 1
                     : std::min<int64_t>(
                           static_cast<int64_t>(seq.size()) - 1,
                           static_cast<int64_t>(pos) + fr.end_offset);
          } else {
            hi = spec.order_by.empty()
                     ? static_cast<int64_t>(seq.size()) - 1
                     : static_cast<int64_t>(peer_end[pos]);
          }
          if (f == "first_value" || f == "last_value") {
            if (lo > hi) {
              value = Datum::Null();
            } else {
              HQ_ASSIGN_OR_RETURN(
                  value, arg_at(f == "first_value" ? lo : hi, 0));
            }
          } else if (IsAggregateFunction(f)) {
            std::vector<size_t> frame_rows;
            for (int64_t p = lo; p <= hi; ++p) frame_rows.push_back(seq[p]);
            HQ_ASSIGN_OR_RETURN(value,
                                ComputeAggregate(*node, work, frame_rows));
          } else {
            return Unsupported(StrCat("window function ", f,
                                      " is not implemented"));
          }
        }
        result[seq[pos]] = std::move(value);
      }
    }
    out->emplace(node, std::move(result));
  }
  return Status::OK();
}

}  // namespace sqldb
}  // namespace hyperq
