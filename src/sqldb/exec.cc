#include "sqldb/exec.h"

#include <algorithm>
#include <numeric>

#include "common/strings.h"

namespace hyperq {
namespace sqldb {

namespace {

constexpr int kMaxViewDepth = 16;

/// Splits an expression into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (!e) return;
  if (e->kind == ExprKind::kBinary && e->op == "AND") {
    SplitConjuncts(e->lhs, out);
    SplitConjuncts(e->rhs, out);
    return;
  }
  out->push_back(e);
}

std::string OutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  const Expr& e = *item.expr;
  if (e.kind == ExprKind::kColRef) return e.column;
  if (e.kind == ExprKind::kFuncCall || e.kind == ExprKind::kWindow) {
    return e.func_name;
  }
  return "?column?";
}

}  // namespace

SqlType Executor::InferType(const Expr& e, const Relation& input) {
  switch (e.kind) {
    case ExprKind::kConst:
      return e.datum.is_null() ? SqlType::kText : e.datum.type();
    case ExprKind::kColRef: {
      auto idx = input.Resolve(e.qualifier, e.column);
      return idx.ok() ? input.cols[*idx].type : SqlType::kText;
    }
    case ExprKind::kStar:
      return SqlType::kText;
    case ExprKind::kUnary:
      if (e.op == "NOT") return SqlType::kBoolean;
      return InferType(*e.lhs, input);
    case ExprKind::kBinary: {
      const std::string& op = e.op;
      if (op == "AND" || op == "OR" || op == "=" || op == "<>" ||
          op == "<" || op == ">" || op == "<=" || op == ">=" ||
          op == "LIKE" || op == "IS_DISTINCT" || op == "IS_NOT_DISTINCT") {
        return SqlType::kBoolean;
      }
      if (op == "||") return SqlType::kText;
      SqlType lt = InferType(*e.lhs, input);
      SqlType rt = InferType(*e.rhs, input);
      if (lt == SqlType::kReal || lt == SqlType::kDouble ||
          rt == SqlType::kReal || rt == SqlType::kDouble) {
        return SqlType::kDouble;
      }
      if (IsTemporalType(lt) && !IsTemporalType(rt)) return lt;
      if (IsTemporalType(rt) && !IsTemporalType(lt)) return rt;
      if (IsTemporalType(lt) && lt == rt) {
        // Temporal difference is a count; other ops stay temporal.
        return op == "-" ? SqlType::kBigInt : lt;
      }
      return SqlType::kBigInt;
    }
    case ExprKind::kIsNull:
    case ExprKind::kInList:
    case ExprKind::kBetween:
      return SqlType::kBoolean;
    case ExprKind::kCase: {
      if (e.args.size() >= 2) return InferType(*e.args[1], input);
      return SqlType::kText;
    }
    case ExprKind::kCast:
      return e.cast_type;
    case ExprKind::kFuncCall:
    case ExprKind::kWindow: {
      const std::string& f = e.func_name;
      if (f == "count" || f == "row_number" || f == "rank" ||
          f == "dense_rank" || f == "length" || f == "char_length" ||
          f == "mod" || f == "sign") {
        return SqlType::kBigInt;
      }
      if (f == "avg" || f == "median" || f == "stddev" ||
          f == "stddev_pop" || f == "variance" || f == "var_pop" ||
          f == "sqrt" || f == "exp" || f == "ln" || f == "log" ||
          f == "power" || f == "floor" || f == "ceil" || f == "ceiling" ||
          f == "round") {
        return SqlType::kDouble;
      }
      if (f == "bool_and" || f == "bool_or") return SqlType::kBoolean;
      if (f == "lower" || f == "upper" || f == "substr" ||
          f == "substring" || f == "concat") {
        return SqlType::kText;
      }
      if (!e.args.empty()) return InferType(*e.args[0], input);
      return SqlType::kBigInt;
    }
  }
  return SqlType::kText;
}

Result<Relation> Executor::ExecuteSelect(const SelectStmt& stmt) {
  HQ_ASSIGN_OR_RETURN(CoreResult core, ExecCore(stmt));

  if (!stmt.union_all.empty()) {
    for (const auto& u : stmt.union_all) {
      HQ_ASSIGN_OR_RETURN(CoreResult next, ExecCore(*u));
      if (next.output.cols.size() != core.output.cols.size()) {
        return BindError(StrCat(
            "UNION ALL member has ", next.output.cols.size(),
            " columns, expected ", core.output.cols.size()));
      }
      for (auto& row : next.output.rows) {
        core.output.rows.push_back(std::move(row));
      }
    }
    // ORDER BY over a union may only reference output columns/ordinals.
    if (!stmt.order_by.empty()) {
      CoreResult for_order;
      for_order.output = std::move(core.output);
      for_order.work = for_order.output;  // resolve against outputs
      for_order.distinct_applied = true;  // forces output-only resolution
      HQ_RETURN_IF_ERROR(ApplyOrderBy(stmt, &for_order));
      core.output = std::move(for_order.output);
    }
  } else if (!stmt.order_by.empty()) {
    HQ_RETURN_IF_ERROR(ApplyOrderBy(stmt, &core));
  }
  HQ_RETURN_IF_ERROR(ApplyLimit(stmt, &core.output));
  return std::move(core.output);
}

Result<Executor::CoreResult> Executor::ExecCore(const SelectStmt& stmt) {
  // ---- FROM ----
  Relation input;
  if (stmt.from) {
    HQ_ASSIGN_OR_RETURN(input, EvalTableRef(*stmt.from));
  } else {
    input.rows.push_back({});  // SELECT without FROM: one empty row
  }

  // ---- WHERE ----
  if (stmt.where) {
    std::vector<std::vector<Datum>> kept;
    kept.reserve(input.rows.size());
    for (size_t i = 0; i < input.rows.size(); ++i) {
      EvalCtx ctx{&input, i, nullptr, nullptr};
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*stmt.where, ctx));
      if (DatumIsTrue(v)) kept.push_back(std::move(input.rows[i]));
    }
    input.rows = std::move(kept);
  }

  CoreResult core;

  // ---- GROUP BY / aggregates ----
  std::vector<const Expr*> agg_nodes;
  for (const auto& item : stmt.items) CollectAggregates(item.expr, &agg_nodes);
  CollectAggregates(stmt.having, &agg_nodes);
  bool grouped = !stmt.group_by.empty() || !agg_nodes.empty();

  if (grouped) {
    // Bucket rows by group key (order of first occurrence).
    std::unordered_map<std::string, size_t> group_of;
    std::vector<std::vector<size_t>> members;
    for (size_t i = 0; i < input.rows.size(); ++i) {
      std::string key;
      for (const auto& g : stmt.group_by) {
        EvalCtx ctx{&input, i, nullptr, nullptr};
        HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*g, ctx));
        EncodeDatum(v, &key);
      }
      auto [it, inserted] = group_of.emplace(key, members.size());
      if (inserted) members.push_back({});
      members[it->second].push_back(i);
    }
    // An aggregate query with no GROUP BY always yields one group, even
    // over zero rows.
    if (stmt.group_by.empty() && members.empty()) members.push_back({});

    core.work.cols = input.cols;
    for (const auto& m : members) {
      std::unordered_map<const Expr*, Datum> aggs;
      for (const Expr* agg : agg_nodes) {
        HQ_ASSIGN_OR_RETURN(Datum v, ComputeAggregate(*agg, input, m));
        aggs.emplace(agg, std::move(v));
      }
      // Representative row: first member (empty groups use all-null).
      std::vector<Datum> rep =
          m.empty() ? std::vector<Datum>(input.cols.size())
                    : input.rows[m.front()];
      core.work.rows.push_back(std::move(rep));
      core.agg_per_row.push_back(std::move(aggs));
    }
    // HAVING filters groups.
    if (stmt.having) {
      Relation filtered;
      filtered.cols = core.work.cols;
      std::vector<std::unordered_map<const Expr*, Datum>> kept_aggs;
      for (size_t i = 0; i < core.work.rows.size(); ++i) {
        EvalCtx ctx{&core.work, i, &core.agg_per_row[i], nullptr};
        HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*stmt.having, ctx));
        if (DatumIsTrue(v)) {
          filtered.rows.push_back(std::move(core.work.rows[i]));
          kept_aggs.push_back(std::move(core.agg_per_row[i]));
        }
      }
      core.work = std::move(filtered);
      core.agg_per_row = std::move(kept_aggs);
    }
  } else {
    core.work = std::move(input);
  }

  // ---- Window functions ----
  std::vector<const Expr*> window_nodes;
  for (const auto& item : stmt.items) CollectWindows(item.expr, &window_nodes);
  for (const auto& o : stmt.order_by) CollectWindows(o.expr, &window_nodes);
  if (!window_nodes.empty()) {
    HQ_RETURN_IF_ERROR(ComputeWindows(window_nodes, core.work,
                                      core.agg_per_row,
                                      &core.window_values));
  }

  // ---- Projection ----
  // Expand stars first.
  std::vector<SelectItem> items;
  for (const auto& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      for (size_t c = 0; c < core.work.cols.size(); ++c) {
        const RelColumn& col = core.work.cols[c];
        if (!item.expr->qualifier.empty() &&
            col.qualifier != item.expr->qualifier) {
          continue;
        }
        SelectItem expanded;
        expanded.expr = MakeColRef(col.qualifier, col.name);
        expanded.alias = col.name;
        items.push_back(std::move(expanded));
      }
      continue;
    }
    items.push_back(item);
  }
  if (items.empty()) return BindError("empty select list");

  core.output.cols.reserve(items.size());
  for (const auto& item : items) {
    RelColumn col;
    col.name = OutputName(item);
    col.type = InferType(*item.expr, core.work);
    core.output.cols.push_back(std::move(col));
  }
  core.output.rows.reserve(core.work.rows.size());
  for (size_t i = 0; i < core.work.rows.size(); ++i) {
    EvalCtx ctx{&core.work, i,
                core.agg_per_row.empty() ? nullptr : &core.agg_per_row[i],
                core.window_values.empty() ? nullptr : &core.window_values};
    std::vector<Datum> row;
    row.reserve(items.size());
    for (size_t c = 0; c < items.size(); ++c) {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*items[c].expr, ctx));
      // Refine inferred type from actual values.
      if (!v.is_null() && core.output.cols[c].type != v.type() &&
          core.output.rows.empty()) {
        core.output.cols[c].type = v.type();
      }
      row.push_back(std::move(v));
    }
    core.output.rows.push_back(std::move(row));
  }

  // ---- DISTINCT ----
  if (stmt.distinct) {
    std::unordered_map<std::string, bool> seen;
    std::vector<std::vector<Datum>> rows;
    for (auto& row : core.output.rows) {
      std::string key = EncodeKeyRow(row);
      if (seen.emplace(key, true).second) rows.push_back(std::move(row));
    }
    core.output.rows = std::move(rows);
    core.distinct_applied = true;
  }
  return core;
}

Status Executor::ApplyOrderBy(const SelectStmt& stmt, CoreResult* core) {
  size_t n = core->output.rows.size();
  // Evaluate sort keys per output row. Keys may be output ordinals, output
  // aliases, or (when no DISTINCT reshaped the rows) arbitrary expressions
  // over the pre-projection relation.
  std::vector<std::vector<Datum>> keys(n);
  for (const auto& item : stmt.order_by) {
    const Expr& e = *item.expr;
    int out_idx = -1;
    if (e.kind == ExprKind::kConst && !e.datum.is_null() &&
        IsIntegralType(e.datum.type())) {
      int64_t ord = e.datum.AsInt();
      if (ord < 1 || ord > static_cast<int64_t>(core->output.cols.size())) {
        return BindError(StrCat("ORDER BY position ", ord,
                                " is out of range"));
      }
      out_idx = static_cast<int>(ord - 1);
    } else if (e.kind == ExprKind::kColRef && e.qualifier.empty()) {
      for (size_t c = 0; c < core->output.cols.size(); ++c) {
        if (core->output.cols[c].name == e.column) {
          out_idx = static_cast<int>(c);
          break;
        }
      }
    }
    if (out_idx >= 0) {
      for (size_t i = 0; i < n; ++i) {
        keys[i].push_back(core->output.rows[i][out_idx]);
      }
      continue;
    }
    if (core->distinct_applied) {
      return BindError(
          "ORDER BY expression must appear in the select list when "
          "DISTINCT/UNION is used");
    }
    if (core->work.rows.size() != n) {
      return InternalError("order-by source rows out of sync");
    }
    for (size_t i = 0; i < n; ++i) {
      EvalCtx ctx{&core->work, i,
                  core->agg_per_row.empty() ? nullptr : &core->agg_per_row[i],
                  core->window_values.empty() ? nullptr
                                              : &core->window_values};
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(e, ctx));
      keys[i].push_back(std::move(v));
    }
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Status failure = Status::OK();
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < stmt.order_by.size(); ++k) {
      const Datum& x = keys[a][k];
      const Datum& y = keys[b][k];
      const OrderItem& item = stmt.order_by[k];
      if (x.is_null() || y.is_null()) {
        if (x.is_null() == y.is_null()) continue;
        bool a_first = x.is_null() == item.nulls_first;
        return a_first;
      }
      int cmp = Datum::Compare(x, y);
      if (cmp != 0) return item.ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  HQ_RETURN_IF_ERROR(failure);

  std::vector<std::vector<Datum>> sorted;
  sorted.reserve(n);
  for (size_t i : order) sorted.push_back(std::move(core->output.rows[i]));
  core->output.rows = std::move(sorted);
  return Status::OK();
}

Status Executor::ApplyLimit(const SelectStmt& stmt, Relation* rel) {
  auto eval_const = [&](const ExprPtr& e, int64_t* out) -> Status {
    if (!e) return Status::OK();
    EvalCtx ctx;
    HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e, ctx));
    if (v.is_null() || !IsIntegralType(v.type())) {
      return BindError("LIMIT/OFFSET must be integer constants");
    }
    *out = v.AsInt();
    return Status::OK();
  };
  int64_t limit = -1, offset = 0;
  HQ_RETURN_IF_ERROR(eval_const(stmt.limit, &limit));
  HQ_RETURN_IF_ERROR(eval_const(stmt.offset, &offset));
  if (stmt.offset && offset > 0) {
    if (offset >= static_cast<int64_t>(rel->rows.size())) {
      rel->rows.clear();
    } else {
      rel->rows.erase(rel->rows.begin(), rel->rows.begin() + offset);
    }
  }
  if (stmt.limit && limit >= 0 &&
      static_cast<int64_t>(rel->rows.size()) > limit) {
    rel->rows.resize(limit);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FROM clause
// ---------------------------------------------------------------------------

Result<Relation> Executor::EvalTableRef(const TableRef& ref) {
  switch (ref.kind) {
    case TableRef::Kind::kNamed:
      return LookupNamed(ref.name, ref.alias.empty() ? ref.name : ref.alias);
    case TableRef::Kind::kSubquery: {
      HQ_ASSIGN_OR_RETURN(Relation rel, ExecuteSelect(*ref.subquery));
      for (auto& c : rel.cols) c.qualifier = ref.alias;
      return rel;
    }
    case TableRef::Kind::kJoin:
      return ExecJoin(ref);
  }
  return InternalError("unhandled table ref kind");
}

Result<Relation> Executor::LookupNamed(const std::string& name,
                                       const std::string& alias) {
  // Resolution order: session temp tables, catalog tables, session temp
  // views, catalog views.
  std::shared_ptr<StoredTable> table;
  if (session_ != nullptr) {
    auto it = session_->temp_tables().find(name);
    if (it != session_->temp_tables().end()) table = it->second;
  }
  if (!table && catalog_->HasTable(name)) {
    HQ_ASSIGN_OR_RETURN(table, catalog_->GetTable(name));
  }
  if (table) {
    Relation rel;
    rel.cols.reserve(table->columns.size());
    for (const auto& c : table->columns) {
      rel.cols.push_back(RelColumn{alias, c.name, c.type});
    }
    rel.rows = table->rows;
    return rel;
  }
  const StoredView* view = nullptr;
  StoredView catalog_view;
  if (session_ != nullptr) {
    auto it = session_->temp_views().find(name);
    if (it != session_->temp_views().end()) view = &it->second;
  }
  if (view == nullptr && catalog_->HasView(name)) {
    HQ_ASSIGN_OR_RETURN(catalog_view, catalog_->GetView(name));
    view = &catalog_view;
  }
  if (view != nullptr) {
    if (++view_depth_ > kMaxViewDepth) {
      --view_depth_;
      return ExecutionError(
          StrCat("view nesting exceeds ", kMaxViewDepth,
                 " levels (circular view definition?)"));
    }
    Result<Relation> rel = ExecuteSelect(*view->select);
    --view_depth_;
    if (!rel.ok()) return rel.status();
    for (auto& c : rel->cols) c.qualifier = alias;
    return std::move(rel).value();
  }
  return NotFound(StrCat("relation \"", name, "\" does not exist"));
}

Result<Relation> Executor::ExecJoin(const TableRef& join) {
  HQ_ASSIGN_OR_RETURN(Relation left, EvalTableRef(*join.left));
  HQ_ASSIGN_OR_RETURN(Relation right, EvalTableRef(*join.right));

  Relation out;
  out.cols = left.cols;
  out.cols.insert(out.cols.end(), right.cols.begin(), right.cols.end());

  auto combine = [&](const std::vector<Datum>& l,
                     const std::vector<Datum>& r) {
    std::vector<Datum> row;
    row.reserve(l.size() + r.size());
    row.insert(row.end(), l.begin(), l.end());
    row.insert(row.end(), r.begin(), r.end());
    return row;
  };
  auto null_right = [&]() {
    return std::vector<Datum>(right.cols.size());
  };

  if (join.join_type == JoinType::kCross) {
    for (const auto& l : left.rows) {
      for (const auto& r : right.rows) {
        out.rows.push_back(combine(l, r));
      }
    }
    return out;
  }

  // Extract hashable equality keys from the ON conjuncts.
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(join.on, &conjuncts);
  struct EquiKey {
    int left_idx;
    int right_idx;
    bool null_safe;  // IS NOT DISTINCT FROM
  };
  std::vector<EquiKey> keys;
  std::vector<ExprPtr> residual;
  for (const auto& c : conjuncts) {
    bool is_eq = c->kind == ExprKind::kBinary &&
                 (c->op == "=" || c->op == "IS_NOT_DISTINCT");
    if (is_eq && c->lhs->kind == ExprKind::kColRef &&
        c->rhs->kind == ExprKind::kColRef) {
      auto l_in_left = left.Resolve(c->lhs->qualifier, c->lhs->column);
      auto r_in_right = right.Resolve(c->rhs->qualifier, c->rhs->column);
      if (l_in_left.ok() && r_in_right.ok()) {
        keys.push_back(
            {*l_in_left, *r_in_right, c->op == "IS_NOT_DISTINCT"});
        continue;
      }
      auto l_in_right = right.Resolve(c->lhs->qualifier, c->lhs->column);
      auto r_in_left = left.Resolve(c->rhs->qualifier, c->rhs->column);
      if (l_in_right.ok() && r_in_left.ok()) {
        keys.push_back(
            {*r_in_left, *l_in_right, c->op == "IS_NOT_DISTINCT"});
        continue;
      }
    }
    residual.push_back(c);
  }

  // One scratch relation reused for all residual evaluations (copying the
  // 500-column schema per candidate row would dominate join cost).
  Relation residual_scratch;
  residual_scratch.cols = out.cols;
  residual_scratch.rows.resize(1);
  auto residual_ok = [&](std::vector<Datum>& row) -> Result<bool> {
    residual_scratch.rows[0].swap(row);
    bool ok = true;
    Status failure = Status::OK();
    for (const auto& c : residual) {
      EvalCtx ctx{&residual_scratch, 0, nullptr, nullptr};
      Result<Datum> v = EvalExpr(*c, ctx);
      if (!v.ok()) {
        failure = v.status();
        ok = false;
        break;
      }
      if (!DatumIsTrue(*v)) {
        ok = false;
        break;
      }
    }
    residual_scratch.rows[0].swap(row);
    HQ_RETURN_IF_ERROR(failure);
    return ok;
  };

  if (!keys.empty()) {
    // Hash join.
    std::unordered_map<std::string, std::vector<size_t>> buckets;
    buckets.reserve(right.rows.size() * 2);
    for (size_t i = 0; i < right.rows.size(); ++i) {
      std::string key;
      bool usable = true;
      for (const auto& k : keys) {
        const Datum& v = right.rows[i][k.right_idx];
        if (v.is_null() && !k.null_safe) {
          usable = false;  // plain '=' never matches NULL
          break;
        }
        EncodeDatum(v, &key);
      }
      if (usable) buckets[key].push_back(i);
    }
    for (const auto& l : left.rows) {
      bool matched = false;
      std::string key;
      bool usable = true;
      for (const auto& k : keys) {
        const Datum& v = l[k.left_idx];
        if (v.is_null() && !k.null_safe) {
          usable = false;
          break;
        }
        EncodeDatum(v, &key);
      }
      if (usable) {
        auto it = buckets.find(key);
        if (it != buckets.end()) {
          for (size_t ri : it->second) {
            std::vector<Datum> row = combine(l, right.rows[ri]);
            HQ_ASSIGN_OR_RETURN(bool ok, residual_ok(row));
            if (ok) {
              out.rows.push_back(std::move(row));
              matched = true;
            }
          }
        }
      }
      if (!matched && join.join_type == JoinType::kLeft) {
        out.rows.push_back(combine(l, null_right()));
      }
    }
    return out;
  }

  // Nested-loop fallback: evaluate the full ON condition per pair.
  Relation probe;
  probe.cols = out.cols;
  probe.rows.push_back({});
  for (const auto& l : left.rows) {
    bool matched = false;
    for (const auto& r : right.rows) {
      std::vector<Datum> row = combine(l, r);
      probe.rows[0] = row;
      EvalCtx ctx{&probe, 0, nullptr, nullptr};
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*join.on, ctx));
      if (DatumIsTrue(v)) {
        out.rows.push_back(std::move(row));
        matched = true;
      }
    }
    if (!matched && join.join_type == JoinType::kLeft) {
      out.rows.push_back(combine(l, null_right()));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Window functions
// ---------------------------------------------------------------------------

Status Executor::ComputeWindows(
    const std::vector<const Expr*>& nodes, const Relation& work,
    const std::vector<std::unordered_map<const Expr*, Datum>>& agg_per_row,
    std::unordered_map<const Expr*, std::vector<Datum>>* out) {
  size_t n = work.rows.size();
  for (const Expr* node : nodes) {
    if (out->count(node) > 0) continue;
    const WindowSpec& spec = node->window;

    auto ctx_for = [&](size_t i) {
      return EvalCtx{&work, i,
                     agg_per_row.empty() ? nullptr : &agg_per_row[i],
                     nullptr};
    };

    // Partition rows.
    std::unordered_map<std::string, size_t> part_of;
    std::vector<std::vector<size_t>> partitions;
    for (size_t i = 0; i < n; ++i) {
      std::string key;
      for (const auto& p : spec.partition_by) {
        HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*p, ctx_for(i)));
        EncodeDatum(v, &key);
      }
      auto [it, inserted] = part_of.emplace(key, partitions.size());
      if (inserted) partitions.push_back({});
      partitions[it->second].push_back(i);
    }

    std::vector<Datum> result(n);
    for (auto& part : partitions) {
      // Order within the partition.
      std::vector<std::vector<Datum>> keys(part.size());
      for (size_t p = 0; p < part.size(); ++p) {
        for (const auto& o : spec.order_by) {
          HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*o.expr, ctx_for(part[p])));
          keys[p].push_back(std::move(v));
        }
      }
      std::vector<size_t> order(part.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        for (size_t k = 0; k < spec.order_by.size(); ++k) {
          const Datum& x = keys[a][k];
          const Datum& y = keys[b][k];
          const OrderItem& item = spec.order_by[k];
          if (x.is_null() || y.is_null()) {
            if (x.is_null() == y.is_null()) continue;
            return x.is_null() == item.nulls_first;
          }
          int cmp = Datum::Compare(x, y);
          if (cmp != 0) return item.ascending ? cmp < 0 : cmp > 0;
        }
        return false;
      });
      std::vector<size_t> seq;  // row indices in window order
      seq.reserve(part.size());
      for (size_t o : order) seq.push_back(part[o]);

      // Peer groups (rows equal on all order keys).
      std::vector<size_t> peer_end(seq.size());
      {
        size_t i = 0;
        while (i < seq.size()) {
          size_t j = i;
          while (j + 1 < seq.size()) {
            bool equal = true;
            for (size_t k = 0; k < spec.order_by.size(); ++k) {
              const Datum& x = keys[order[i]][k];
              const Datum& y = keys[order[j + 1]][k];
              if (!Datum::DistinctEquals(x, y)) {
                equal = false;
                break;
              }
            }
            if (!equal) break;
            ++j;
          }
          for (size_t p = i; p <= j; ++p) peer_end[p] = j;
          i = j + 1;
        }
      }

      const std::string& f = node->func_name;
      auto arg_at = [&](size_t pos, size_t arg_idx) -> Result<Datum> {
        return EvalExpr(*node->args[arg_idx], ctx_for(seq[pos]));
      };

      for (size_t pos = 0; pos < seq.size(); ++pos) {
        Datum value;
        if (f == "row_number") {
          value = Datum::BigInt(static_cast<int64_t>(pos + 1));
        } else if (f == "rank" || f == "dense_rank") {
          int64_t rank = 1;
          int64_t dense = 1;
          for (size_t p = 0; p < pos; ++p) {
            if (peer_end[p] < pos) {
              ++rank;
              if (p == peer_end[p] || peer_end[p] < pos) {
                // count distinct peer groups
              }
            }
          }
          // Simpler: rank = index of first peer + 1.
          size_t first_peer = pos;
          while (first_peer > 0 && peer_end[first_peer - 1] >= pos) {
            --first_peer;
          }
          rank = static_cast<int64_t>(first_peer) + 1;
          // dense rank: count of peer groups before this one.
          dense = 1;
          size_t p = 0;
          while (p < first_peer) {
            ++dense;
            p = peer_end[p] + 1;
          }
          value = Datum::BigInt(f == "rank" ? rank : dense);
        } else if (f == "lag" || f == "lead") {
          int64_t off = 1;
          if (node->args.size() >= 2) {
            HQ_ASSIGN_OR_RETURN(Datum o, arg_at(pos, 1));
            if (!o.is_null()) off = o.AsInt();
          }
          int64_t target = static_cast<int64_t>(pos) +
                           (f == "lag" ? -off : off);
          if (target < 0 || target >= static_cast<int64_t>(seq.size())) {
            if (node->args.size() >= 3) {
              HQ_ASSIGN_OR_RETURN(value, arg_at(pos, 2));
            } else {
              value = Datum::Null();
            }
          } else {
            HQ_ASSIGN_OR_RETURN(value, arg_at(target, 0));
          }
        } else {
          // Frame-based functions. Default frame: RANGE UNBOUNDED
          // PRECEDING .. CURRENT ROW (ends at the last peer).
          int64_t lo = 0;
          int64_t hi;
          if (node->window.frame.specified) {
            const WindowFrame& fr = node->window.frame;
            lo = fr.start_offset == INT64_MIN
                     ? 0
                     : std::max<int64_t>(0, static_cast<int64_t>(pos) +
                                                fr.start_offset);
            hi = fr.end_offset == INT64_MAX
                     ? static_cast<int64_t>(seq.size()) - 1
                     : std::min<int64_t>(
                           static_cast<int64_t>(seq.size()) - 1,
                           static_cast<int64_t>(pos) + fr.end_offset);
          } else {
            hi = spec.order_by.empty()
                     ? static_cast<int64_t>(seq.size()) - 1
                     : static_cast<int64_t>(peer_end[pos]);
          }
          if (f == "first_value" || f == "last_value") {
            if (lo > hi) {
              value = Datum::Null();
            } else {
              HQ_ASSIGN_OR_RETURN(
                  value, arg_at(f == "first_value" ? lo : hi, 0));
            }
          } else if (IsAggregateFunction(f)) {
            std::vector<size_t> frame_rows;
            for (int64_t p = lo; p <= hi; ++p) frame_rows.push_back(seq[p]);
            HQ_ASSIGN_OR_RETURN(value,
                                ComputeAggregate(*node, work, frame_rows));
          } else {
            return Unsupported(StrCat("window function ", f,
                                      " is not implemented"));
          }
        }
        result[seq[pos]] = std::move(value);
      }
    }
    out->emplace(node, std::move(result));
  }
  return Status::OK();
}

}  // namespace sqldb
}  // namespace hyperq
