#ifndef HYPERQ_SQLDB_AST_H_
#define HYPERQ_SQLDB_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "sqldb/types.h"

namespace hyperq {
namespace sqldb {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kConst,     ///< literal (value in `datum`)
  kColRef,    ///< [qualifier.]name
  kStar,      ///< * or alias.* (only valid in select lists / COUNT(*))
  kBinary,    ///< op in {+,-,*,/,%,||,=,<>,<,>,<=,>=,AND,OR,
              ///<        IS_DISTINCT, IS_NOT_DISTINCT}
  kUnary,     ///< -x, NOT x
  kIsNull,    ///< x IS [NOT] NULL (negate flag)
  kInList,    ///< x [NOT] IN (a, b, c)
  kBetween,   ///< x BETWEEN lo AND hi
  kCase,      ///< CASE WHEN c THEN v ... [ELSE e] END
  kCast,      ///< CAST(x AS t) or x::t
  kFuncCall,  ///< scalar function or aggregate (no OVER clause)
  kWindow,    ///< aggregate/window function with OVER (...)
};

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
  /// PG default: NULLS LAST for ASC, NULLS FIRST for DESC.
  bool nulls_first = false;
  bool nulls_explicit = false;
};

struct WindowFrame {
  /// ROWS BETWEEN <start> AND <end>; offsets relative to the current row.
  /// kUnboundedPreceding/kUnboundedFollowing use INT64_MIN/MAX sentinels.
  bool specified = false;
  bool is_rows = true;  ///< false = RANGE (only default frames supported)
  int64_t start_offset = INT64_MIN;
  int64_t end_offset = 0;
};

struct WindowSpec {
  std::vector<ExprPtr> partition_by;
  std::vector<OrderItem> order_by;
  WindowFrame frame;
};

struct Expr {
  ExprKind kind;

  // kConst
  Datum datum;

  // kColRef / kStar
  std::string qualifier;
  std::string column;
  /// Column-resolution memo: callers evaluate the same expression once per
  /// row of one relation; caching the resolved index turns the per-row
  /// name scan into a pointer compare. (Expression trees are per-session,
  /// so this is not shared across threads.)
  mutable const void* resolved_rel = nullptr;
  mutable int resolved_idx = -1;

  // kBinary / kUnary: op spelling, uppercase for keywords.
  std::string op;
  ExprPtr lhs;
  ExprPtr rhs;

  // kIsNull / kInList negation; kFuncCall DISTINCT flag.
  bool negated = false;
  bool distinct = false;

  // kInList items; kCase when/then pairs then optional else at the end
  // (flag `has_else`); kFuncCall arguments.
  std::vector<ExprPtr> args;
  bool has_else = false;

  // kBetween
  ExprPtr low;
  ExprPtr high;

  // kCast
  SqlType cast_type = SqlType::kNull;

  // kFuncCall / kWindow
  std::string func_name;  ///< lower-cased
  WindowSpec window;
};

ExprPtr MakeConst(Datum d);
ExprPtr MakeColRef(std::string qualifier, std::string column);
ExprPtr MakeStar(std::string qualifier);
ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(std::string op, ExprPtr operand);
ExprPtr MakeFunc(std::string name, std::vector<ExprPtr> args);

// ---------------------------------------------------------------------------
// Table references and statements
// ---------------------------------------------------------------------------

struct SelectStmt;
using SelectPtr = std::shared_ptr<SelectStmt>;

enum class JoinType { kInner, kLeft, kCross };

struct TableRef;
using TableRefPtr = std::shared_ptr<TableRef>;

struct TableRef {
  enum class Kind { kNamed, kSubquery, kJoin };
  Kind kind = Kind::kNamed;

  // kNamed
  std::string name;
  // kSubquery
  SelectPtr subquery;
  // all kinds
  std::string alias;

  // kJoin
  JoinType join_type = JoinType::kInner;
  TableRefPtr left;
  TableRefPtr right;
  ExprPtr on;
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRefPtr from;  ///< null => SELECT without FROM
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  ExprPtr limit;
  ExprPtr offset;
  /// UNION ALL chain: this select followed by the others.
  std::vector<SelectPtr> union_all;
};

struct ColumnDef {
  std::string name;
  SqlType type = SqlType::kText;
};

/// Any SQL statement accepted by the engine.
struct SqlStatement {
  enum class Kind {
    kSelect,
    kCreateTable,      ///< CREATE [TEMP] TABLE name (cols)
    kCreateTableAs,    ///< CREATE [TEMP] TABLE name AS select
    kCreateView,       ///< CREATE [OR REPLACE] [TEMP] VIEW name AS select
    kDropTable,
    kDropView,
    kInsertValues,     ///< INSERT INTO name [(cols)] VALUES (...), (...)
    kInsertSelect,     ///< INSERT INTO name [(cols)] select
  };
  Kind kind = Kind::kSelect;

  SelectPtr select;
  std::string target;          ///< table/view name for DDL/DML
  bool temporary = false;
  bool or_replace = false;
  bool if_exists = false;
  std::vector<ColumnDef> columns;
  std::vector<std::string> insert_columns;
  std::vector<std::vector<ExprPtr>> insert_rows;
};

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_AST_H_
