#ifndef HYPERQ_SQLDB_SESSION_H_
#define HYPERQ_SQLDB_SESSION_H_

#include <map>
#include <memory>
#include <string>

#include "sqldb/catalog.h"

namespace hyperq {
namespace sqldb {

/// Per-connection state: temporary tables and views shadowing the shared
/// catalog (PG search-path style — temp objects resolve first). Hyper-Q's
/// eager materialization (§4.3) creates its HQ_TEMP_* tables here so they
/// vanish with the session.
class Session {
 public:
  std::map<std::string, std::shared_ptr<StoredTable>>& temp_tables() {
    return temp_tables_;
  }
  const std::map<std::string, std::shared_ptr<StoredTable>>& temp_tables()
      const {
    return temp_tables_;
  }
  std::map<std::string, StoredView>& temp_views() { return temp_views_; }
  const std::map<std::string, StoredView>& temp_views() const {
    return temp_views_;
  }

 private:
  std::map<std::string, std::shared_ptr<StoredTable>> temp_tables_;
  std::map<std::string, StoredView> temp_views_;
};

}  // namespace sqldb
}  // namespace hyperq

#endif  // HYPERQ_SQLDB_SESSION_H_
