#include "serializer/serializer.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "common/sql_markers.h"
#include "common/strings.h"
#include "qval/temporal.h"

namespace hyperq {

using xtra::ColId;
using xtra::kNoCol;
using xtra::ScalarExpr;
using xtra::ScalarKind;
using xtra::ScalarPtr;
using xtra::XtraKind;
using xtra::XtraOp;
using xtra::XtraPtr;

namespace {

const char* AggSqlName(const std::string& f) {
  if (f == "count") return "COUNT";
  if (f == "count_star") return "COUNT";
  if (f == "sum") return "SUM";
  if (f == "avg") return "AVG";
  if (f == "min") return "MIN";
  if (f == "max") return "MAX";
  if (f == "med") return "MEDIAN";
  if (f == "dev") return "STDDEV_POP";
  if (f == "var") return "VAR_POP";
  if (f == "first") return "FIRST";
  if (f == "last") return "LAST";
  return nullptr;
}

const char* WindowSqlName(const std::string& f) {
  if (f == "lag") return "LAG";
  if (f == "lead") return "LEAD";
  if (f == "row_number") return "ROW_NUMBER";
  if (f == "sum") return "SUM";
  if (f == "avg") return "AVG";
  if (f == "min") return "MIN";
  if (f == "max") return "MAX";
  if (f == "count") return "COUNT";
  if (f == "count_star") return "COUNT";
  if (f == "first_value") return "FIRST_VALUE";
  if (f == "last_value") return "LAST_VALUE";
  return nullptr;
}

}  // namespace

const char* Serializer::SqlTypeNameFor(QType type) {
  switch (type) {
    case QType::kBool:
      return "boolean";
    case QType::kByte:
    case QType::kShort:
      return "smallint";
    case QType::kInt:
      return "integer";
    case QType::kLong:
      return "bigint";
    case QType::kReal:
      return "real";
    case QType::kFloat:
      return "double precision";
    case QType::kChar:
      return "text";
    case QType::kSymbol:
      return "varchar";
    case QType::kDate:
      return "date";
    case QType::kTime:
      return "time";
    case QType::kTimestamp:
      return "timestamp";
    case QType::kTimespan:
      return "bigint";
    default:
      return "text";
  }
}

std::string Serializer::QuoteIdent(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string Serializer::QuoteLiteral(const std::string& text) {
  std::string out = "'";
  for (char c : text) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

Result<std::string> Serializer::RenderConstant(const QValue& v) {
  if (!v.is_atom()) {
    // A char list is a q string: it renders as a text literal.
    if (v.type() == QType::kChar) {
      return StrCat(QuoteLiteral(v.CharsView()), "::text");
    }
    return Unsupported(
        "list constants can only appear on the right of 'in'");
  }
  if (v.IsNullAtom()) {
    return StrCat("CAST(NULL AS ", SqlTypeNameFor(v.type()), ")");
  }
  switch (v.type()) {
    case QType::kBool:
      return std::string(v.AsInt() ? "TRUE" : "FALSE");
    case QType::kByte:
    case QType::kShort:
    case QType::kInt:
    case QType::kLong:
      return StrCat(v.AsInt());
    case QType::kReal:
    case QType::kFloat: {
      double d = v.AsFloat();
      if (std::isinf(d)) {
        return std::string(d > 0 ? "1.7976931348623157e308"
                                 : "-1.7976931348623157e308");
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      std::string s = buf;
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos) {
        s += ".0";  // keep it a float literal
      }
      return s;
    }
    case QType::kChar:
      return StrCat(QuoteLiteral(std::string(1, v.AsChar())), "::text");
    case QType::kSymbol:
      return StrCat(QuoteLiteral(v.AsSym()), "::varchar");
    case QType::kDate:
      return StrCat("DATE ", QuoteLiteral(FormatIsoDate(v.AsInt())));
    case QType::kTime:
      return StrCat("TIME ", QuoteLiteral(FormatIsoTime(v.AsInt())));
    case QType::kTimestamp:
      return StrCat("TIMESTAMP ",
                    QuoteLiteral(FormatIsoTimestamp(v.AsInt())));
    case QType::kTimespan:
      return StrCat(v.AsInt());
    default:
      return Unsupported(StrCat("cannot serialize a ",
                                QTypeName(v.type()), " constant to SQL"));
  }
}

Result<std::string> Serializer::RenderScalar(
    const ScalarPtr& e, const std::map<ColId, std::string>& cols,
    const std::string& alias) {
  return RenderScalarTwoSided(e, cols, alias, {}, "");
}

Result<std::string> Serializer::RenderScalarTwoSided(
    const ScalarPtr& e, const std::map<ColId, std::string>& left_cols,
    const std::string& left_alias,
    const std::map<ColId, std::string>& right_cols,
    const std::string& right_alias) {
  // Local recursive rendering with a two-sided column resolver.
  std::function<Result<std::string>(const ScalarPtr&)> render =
      [&](const ScalarPtr& node) -> Result<std::string> {
    switch (node->kind) {
      case ScalarKind::kConst:
        if (param_mode_ && node->param_slot >= 0) {
          emitted_slots_.push_back(node->param_slot);
          return StrCat("$", node->param_slot + 1);
        }
        return RenderConstant(node->value);
      case ScalarKind::kColRef: {
        auto l = left_cols.find(node->col);
        if (l != left_cols.end()) {
          return StrCat(left_alias, ".", QuoteIdent(l->second));
        }
        auto r = right_cols.find(node->col);
        if (r != right_cols.end()) {
          return StrCat(right_alias, ".", QuoteIdent(r->second));
        }
        return InternalError(StrCat("serializer: column id ", node->col,
                                    " ('", node->col_name,
                                    "') not found in scope"));
      }
      case ScalarKind::kCast: {
        HQ_ASSIGN_OR_RETURN(std::string arg, render(node->args[0]));
        return StrCat("CAST(", arg, " AS ", SqlTypeNameFor(node->cast_to),
                      ")");
      }
      case ScalarKind::kCase: {
        size_t pairs =
            node->has_else ? (node->args.size() - 1) / 2 : node->args.size() / 2;
        std::string out = "CASE";
        for (size_t i = 0; i < pairs; ++i) {
          HQ_ASSIGN_OR_RETURN(std::string c, render(node->args[2 * i]));
          HQ_ASSIGN_OR_RETURN(std::string v, render(node->args[2 * i + 1]));
          out += StrCat(" WHEN ", c, " THEN ", v);
        }
        if (node->has_else) {
          HQ_ASSIGN_OR_RETURN(std::string els, render(node->args.back()));
          out += StrCat(" ELSE ", els);
        }
        return out + " END";
      }
      case ScalarKind::kAgg: {
        const char* name = AggSqlName(node->func);
        if (name == nullptr) {
          return Unsupported(StrCat("serializer: aggregate '", node->func,
                                    "' has no SQL spelling"));
        }
        if (node->func == "count_star") return StrCat(name, "(*)");
        std::vector<std::string> args;
        args.reserve(node->args.size());
        for (const auto& a : node->args) {
          HQ_ASSIGN_OR_RETURN(std::string s, render(a));
          args.push_back(std::move(s));
        }
        return StrCat(name, "(", node->distinct ? "DISTINCT " : "",
                      Join(args, ", "), ")");
      }
      case ScalarKind::kWindow: {
        const char* name = WindowSqlName(node->func);
        if (name == nullptr) {
          return Unsupported(StrCat("serializer: window function '",
                                    node->func, "' has no SQL spelling"));
        }
        std::vector<std::string> args;
        args.reserve(node->args.size());
        for (const auto& a : node->args) {
          HQ_ASSIGN_OR_RETURN(std::string s, render(a));
          args.push_back(std::move(s));
        }
        std::string out =
            node->func == "count_star"
                ? StrCat(name, "(*) OVER (")
                : StrCat(name, "(", Join(args, ", "), ") OVER (");
        bool space = false;
        if (!node->partition_by.empty()) {
          std::vector<std::string> parts;
          for (const auto& p : node->partition_by) {
            HQ_ASSIGN_OR_RETURN(std::string s, render(p));
            parts.push_back(std::move(s));
          }
          out += StrCat("PARTITION BY ", Join(parts, ", "));
          space = true;
        }
        if (!node->order_by.empty()) {
          std::vector<std::string> keys;
          for (const auto& [o, asc] : node->order_by) {
            HQ_ASSIGN_OR_RETURN(std::string s, render(o));
            keys.push_back(StrCat(s, asc ? "" : " DESC"));
          }
          out += StrCat(space ? " " : "", "ORDER BY ", Join(keys, ", "));
          space = true;
        }
        if (node->has_frame) {
          out += StrCat(space ? " " : "", "ROWS BETWEEN ",
                        node->frame_preceding,
                        " PRECEDING AND CURRENT ROW");
        }
        return out + ")";
      }
      case ScalarKind::kFunc: {
        const std::string& f = node->func;
        if (f == "in") {
          // args[1] is a constant list, expanded inline rather than
          // rendered as a scalar constant.
          HQ_ASSIGN_OR_RETURN(std::string lhs, render(node->args[0]));
          if (param_mode_ && node->args[1]->param_slot >= 0) {
            baked_slots_.push_back(node->args[1]->param_slot);
          }
          const QValue& list = node->args[1]->value;
          std::vector<std::string> items;
          items.reserve(list.Count());
          for (size_t i = 0; i < list.Count(); ++i) {
            HQ_ASSIGN_OR_RETURN(std::string item,
                                RenderConstant(list.ElementAt(i)));
            items.push_back(std::move(item));
          }
          if (items.empty()) return std::string("FALSE");
          return StrCat("(", lhs, " IN (", Join(items, ", "), "))");
        }
        std::vector<std::string> a;
        a.reserve(node->args.size());
        for (const auto& arg : node->args) {
          HQ_ASSIGN_OR_RETURN(std::string s, render(arg));
          a.push_back(std::move(s));
        }
        auto infix = [&](const char* op) {
          return StrCat("(", a[0], " ", op, " ", a[1], ")");
        };
        auto call = [&](const char* nm) {
          return StrCat(nm, "(", Join(a, ", "), ")");
        };
        if (f == "add") return infix("+");
        if (f == "sub") return infix("-");
        if (f == "mul") return infix("*");
        if (f == "fdiv") {
          return StrCat("(CAST(", a[0], " AS double precision) / ", a[1],
                        ")");
        }
        if (f == "idiv") {
          return StrCat("CAST(FLOOR(CAST(", a[0],
                        " AS double precision) / ", a[1], ") AS bigint)");
        }
        if (f == "mod") return call("MOD");
        if (f == "xbar") {
          return StrCat("(", a[0], " * CAST(FLOOR(CAST(", a[1],
                        " AS double precision) / ", a[0],
                        ") AS bigint))");
        }
        if (f == "eq") return infix("=");
        if (f == "ne") return infix("<>");
        if (f == "lt") return infix("<");
        if (f == "gt") return infix(">");
        if (f == "le") return infix("<=");
        if (f == "ge") return infix(">=");
        if (f == "eq_ind") return infix("IS NOT DISTINCT FROM");
        if (f == "ne_ind") return infix("IS DISTINCT FROM");
        // Null-aware ordered comparisons: q totally orders values with
        // null smallest, so a null operand must yield a definite boolean
        // instead of SQL's NULL. COALESCE supplies the null-vs-null and
        // null-vs-value verdicts the plain comparison leaves undefined.
        if (f == "lt_ind") {
          return StrCat("COALESCE((", a[0], " < ", a[1], "), ((", a[0],
                        " IS NULL) AND (", a[1], " IS NOT NULL)))");
        }
        if (f == "gt_ind") {
          return StrCat("COALESCE((", a[0], " > ", a[1], "), ((", a[1],
                        " IS NULL) AND (", a[0], " IS NOT NULL)))");
        }
        if (f == "le_ind") {
          return StrCat("COALESCE((", a[0], " <= ", a[1], "), (", a[0],
                        " IS NULL))");
        }
        if (f == "ge_ind") {
          return StrCat("COALESCE((", a[0], " >= ", a[1], "), (", a[1],
                        " IS NULL))");
        }
        if (f == "and") return infix("AND");
        if (f == "or") return infix("OR");
        if (f == "not") return StrCat("(NOT ", a[0], ")");
        if (f == "isnull") return StrCat("(", a[0], " IS NULL)");
        if (f == "least") return call("LEAST");
        if (f == "greatest") return call("GREATEST");
        if (f == "coalesce") return call("COALESCE");
        if (f == "between") {
          return StrCat("(", a[0], " BETWEEN ", a[1], " AND ", a[2], ")");
        }
        if (f == "like") return infix("LIKE");
        if (f == "in") {
          if (param_mode_ && node->args[1]->param_slot >= 0) {
            baked_slots_.push_back(node->args[1]->param_slot);
          }
          const QValue& list = node->args[1]->value;
          std::vector<std::string> items;
          items.reserve(list.Count());
          for (size_t i = 0; i < list.Count(); ++i) {
            HQ_ASSIGN_OR_RETURN(std::string item,
                                RenderConstant(list.ElementAt(i)));
            items.push_back(std::move(item));
          }
          if (items.empty()) return std::string("FALSE");
          return StrCat("(", a[0], " IN (", Join(items, ", "), "))");
        }
        if (f == "neg") return StrCat("(-", a[0], ")");
        if (f == "abs") return call("ABS");
        if (f == "sqrt") return call("SQRT");
        if (f == "exp") return call("EXP");
        if (f == "log") return call("LN");
        if (f == "floor") return StrCat("CAST(FLOOR(", a[0], ") AS bigint)");
        if (f == "ceiling") {
          return StrCat("CAST(CEIL(", a[0], ") AS bigint)");
        }
        if (f == "signum") return call("SIGN");
        if (f == "upper") return call("UPPER");
        if (f == "lower") return call("LOWER");
        if (f == "concat") return infix("||");
        return Unsupported(StrCat("serializer: scalar function '", f,
                                  "' has no SQL spelling"));
      }
    }
    return InternalError("unhandled scalar kind in serializer");
  };
  return render(e);
}

Result<Serializer::Rendered> Serializer::Render(const XtraPtr& op) {
  switch (op->kind) {
    case XtraKind::kGet: {
      Rendered out;
      std::vector<std::string> cols;
      for (const auto& c : op->output) {
        cols.push_back(QuoteIdent(c.name));
        out.columns[c.id] = c.name;
      }
      if (cols.empty()) cols.push_back("*");
      out.sql = StrCat("SELECT ", Join(cols, ", "), " FROM ",
                       QuoteIdent(op->table));
      return out;
    }

    case XtraKind::kFilter: {
      HQ_ASSIGN_OR_RETURN(Rendered child, Render(op->children[0]));
      std::string alias = StrCat("t", next_alias_++);
      HQ_ASSIGN_OR_RETURN(
          std::string pred,
          RenderScalar(op->predicate, child.columns, alias));
      Rendered out;
      std::vector<std::string> cols;
      for (const auto& c : op->output) {
        cols.push_back(StrCat(alias, ".", QuoteIdent(child.columns[c.id]),
                              " AS ", QuoteIdent(c.name)));
        out.columns[c.id] = c.name;
      }
      out.sql = StrCat("SELECT ", Join(cols, ", "), " FROM (", child.sql,
                       ") AS ", alias, " WHERE ", pred);
      return out;
    }

    case XtraKind::kProject: {
      Rendered child;
      std::string alias;
      bool has_child = !op->children.empty();
      if (has_child) {
        HQ_ASSIGN_OR_RETURN(child, Render(op->children[0]));
        alias = StrCat("t", next_alias_++);
      }
      Rendered out;
      std::vector<std::string> items;
      for (const auto& p : op->projections) {
        HQ_ASSIGN_OR_RETURN(
            std::string expr,
            RenderScalar(p.expr, child.columns, alias));
        items.push_back(StrCat(expr, " AS ", QuoteIdent(p.col.name)));
        out.columns[p.col.id] = p.col.name;
      }
      out.sql = StrCat("SELECT ", op->distinct ? "DISTINCT " : "",
                       Join(items, ", "));
      if (has_child) {
        out.sql += StrCat(" FROM (", child.sql, ") AS ", alias);
      }
      return out;
    }

    case XtraKind::kJoin: {
      HQ_ASSIGN_OR_RETURN(Rendered left, Render(op->children[0]));
      HQ_ASSIGN_OR_RETURN(Rendered right, Render(op->children[1]));
      std::string la = StrCat("t", next_alias_++);
      std::string ra = StrCat("t", next_alias_++);
      HQ_ASSIGN_OR_RETURN(
          std::string cond,
          RenderScalarTwoSided(op->predicate, left.columns, la,
                               right.columns, ra));
      Rendered out;
      std::vector<std::string> cols;
      for (const auto& c : op->output) {
        std::string src;
        auto l = left.columns.find(c.id);
        if (l != left.columns.end()) {
          src = StrCat(la, ".", QuoteIdent(l->second));
        } else {
          auto r = right.columns.find(c.id);
          if (r == right.columns.end()) {
            return InternalError(StrCat("join output column ", c.id,
                                        " not produced by either child"));
          }
          src = StrCat(ra, ".", QuoteIdent(r->second));
        }
        cols.push_back(StrCat(src, " AS ", QuoteIdent(c.name)));
        out.columns[c.id] = c.name;
      }
      const char* join_kw = op->join_kind == xtra::XtraJoinKind::kLeftOuter
                                ? "LEFT JOIN"
                                : "JOIN";
      out.sql = StrCat("SELECT ", Join(cols, ", "), " FROM (", left.sql,
                       ") AS ", la, " ", join_kw, " (", right.sql, ") AS ",
                       ra, " ON ", cond);
      return out;
    }

    case XtraKind::kGroupAgg: {
      HQ_ASSIGN_OR_RETURN(Rendered child, Render(op->children[0]));
      std::string alias = StrCat("t", next_alias_++);
      Rendered out;
      std::vector<std::string> items;
      std::vector<std::string> group_exprs;
      for (const auto& k : op->group_keys) {
        HQ_ASSIGN_OR_RETURN(std::string expr,
                            RenderScalar(k.expr, child.columns, alias));
        items.push_back(StrCat(expr, " AS ", QuoteIdent(k.col.name)));
        group_exprs.push_back(expr);
        out.columns[k.col.id] = k.col.name;
      }
      for (const auto& a : op->projections) {
        HQ_ASSIGN_OR_RETURN(std::string expr,
                            RenderScalar(a.expr, child.columns, alias));
        items.push_back(StrCat(expr, " AS ", QuoteIdent(a.col.name)));
        out.columns[a.col.id] = a.col.name;
      }
      out.sql = StrCat("SELECT ", Join(items, ", "), " FROM (", child.sql,
                       ") AS ", alias);
      if (!group_exprs.empty()) {
        out.sql += StrCat(" GROUP BY ", Join(group_exprs, ", "));
      }
      return out;
    }

    case XtraKind::kSort:
    case XtraKind::kLimit: {
      // Merge Sort directly under Limit so LIMIT applies to the ordered
      // rows even on engines that do not preserve subquery order.
      const XtraOp* limit = op->kind == XtraKind::kLimit ? op.get() : nullptr;
      XtraPtr sort_node =
          op->kind == XtraKind::kSort
              ? op
              : (op->children[0]->kind == XtraKind::kSort ? op->children[0]
                                                          : nullptr);
      XtraPtr base = sort_node ? sort_node->children[0]
                               : op->children[0];
      HQ_ASSIGN_OR_RETURN(Rendered child, Render(base));
      std::string alias = StrCat("t", next_alias_++);
      Rendered out;
      std::vector<std::string> cols;
      for (const auto& c : op->output) {
        cols.push_back(StrCat(alias, ".", QuoteIdent(child.columns[c.id]),
                              " AS ", QuoteIdent(c.name)));
        out.columns[c.id] = c.name;
      }
      out.sql = StrCat("SELECT ", Join(cols, ", "), " FROM (", child.sql,
                       ") AS ", alias);
      if (sort_node) {
        std::vector<std::string> keys;
        for (const auto& k : sort_node->sort_keys) {
          HQ_ASSIGN_OR_RETURN(std::string expr,
                              RenderScalar(k.expr, child.columns, alias));
          keys.push_back(StrCat(expr, k.ascending ? "" : " DESC"));
        }
        out.sql += StrCat(" ORDER BY ", Join(keys, ", "));
      }
      if (limit != nullptr) {
        if (limit->limit >= 0) out.sql += StrCat(" LIMIT ", limit->limit);
        if (limit->offset > 0) out.sql += StrCat(" OFFSET ", limit->offset);
      }
      return out;
    }

    case XtraKind::kUnionAll: {
      HQ_ASSIGN_OR_RETURN(Rendered left, Render(op->children[0]));
      HQ_ASSIGN_OR_RETURN(Rendered right, Render(op->children[1]));
      Rendered out;
      // Positional union: expose the union's output ids under the left
      // child's column names.
      for (size_t i = 0; i < op->output.size(); ++i) {
        out.columns[op->output[i].id] =
            left.columns[op->children[0]->output[i].id];
      }
      out.sql = StrCat(left.sql, " UNION ALL ", right.sql);
      return out;
    }
  }
  return InternalError("unhandled XTRA operator in serializer");
}

Result<std::string> Serializer::Serialize(const XtraPtr& root) {
  if (!root) return InvalidArgument("serializer: null XTRA tree");
  HQ_ASSIGN_OR_RETURN(Rendered rendered, Render(root));
  std::string sql = rendered.sql;
  // Maintain Q's ordered-list semantics on the final result (§3.3): order
  // by the implicit order column unless the tree already ends in a sort or
  // the Xformer decided order is not required.
  if (root->order_required && root->kind != XtraKind::kSort &&
      root->kind != XtraKind::kLimit && root->ord_col != kNoCol) {
    sql = StrCat("SELECT * FROM (", sql, ") AS ", kSqlFinalWrapperAlias,
                 " ORDER BY ", QuoteIdent(rendered.columns[root->ord_col]));
  }
  return sql;
}

}  // namespace hyperq
