#ifndef HYPERQ_SERIALIZER_SERIALIZER_H_
#define HYPERQ_SERIALIZER_SERIALIZER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "xtra/operator.h"

namespace hyperq {

/// Serializes an XTRA expression into a PostgreSQL-dialect SELECT statement
/// (§3.4's Query Translator back end). Operators become nested subqueries
/// with generated aliases t0, t1, ...; identifiers are double-quoted to
/// preserve Q's case-sensitive column names; the final statement carries an
/// ORDER BY on the implicit order column when the result is
/// order-sensitive (§3.3).
class Serializer {
 public:
  /// Serializes the tree into one SELECT statement (no trailing ';').
  Result<std::string> Serialize(const xtra::XtraPtr& root);

  /// Maps a Q type to the SQL type name used in casts and DDL.
  static const char* SqlTypeNameFor(QType type);

  /// Quotes an identifier for the generated SQL.
  static std::string QuoteIdent(const std::string& name);
  /// Escapes and quotes a string literal.
  static std::string QuoteLiteral(const std::string& text);

 private:
  /// A rendered subquery: its SQL text and the result-column name for each
  /// ColId it exposes.
  struct Rendered {
    std::string sql;
    std::map<xtra::ColId, std::string> columns;
  };

  Result<Rendered> Render(const xtra::XtraPtr& op);
  Result<std::string> RenderScalar(const xtra::ScalarPtr& e,
                                   const std::map<xtra::ColId, std::string>&
                                       cols,
                                   const std::string& alias);
  Result<std::string> RenderScalarTwoSided(
      const xtra::ScalarPtr& e,
      const std::map<xtra::ColId, std::string>& left_cols,
      const std::string& left_alias,
      const std::map<xtra::ColId, std::string>& right_cols,
      const std::string& right_alias);
  Result<std::string> RenderConst(const QValue& v);

  int next_alias_ = 0;
};

}  // namespace hyperq

#endif  // HYPERQ_SERIALIZER_SERIALIZER_H_
