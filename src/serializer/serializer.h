#ifndef HYPERQ_SERIALIZER_SERIALIZER_H_
#define HYPERQ_SERIALIZER_SERIALIZER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "xtra/operator.h"

namespace hyperq {

/// Serializes an XTRA expression into a PostgreSQL-dialect SELECT statement
/// (§3.4's Query Translator back end). Operators become nested subqueries
/// with generated aliases t0, t1, ...; identifiers are double-quoted to
/// preserve Q's case-sensitive column names; the final statement carries an
/// ORDER BY on the implicit order column when the result is
/// order-sensitive (§3.3).
class Serializer {
 public:
  /// Serializes the tree into one SELECT statement (no trailing ';').
  Result<std::string> Serialize(const xtra::XtraPtr& root);

  /// Parameterized rendering for the translation cache: constants tagged
  /// with a param_slot render as `$slot+1` placeholders instead of their
  /// values. Slots actually emitted as placeholders are recorded in
  /// emitted_slots(); slots whose values were consumed inline anyway
  /// (e.g. an `in` list expansion) land in baked_slots() so the cache can
  /// refuse to parameterize them.
  void EnableParamMode() { param_mode_ = true; }
  const std::vector<int>& emitted_slots() const { return emitted_slots_; }
  const std::vector<int>& baked_slots() const { return baked_slots_; }

  /// Maps a Q type to the SQL type name used in casts and DDL.
  static const char* SqlTypeNameFor(QType type);

  /// Renders a constant atom as a SQL literal (the translation cache uses
  /// this to splice lifted literals back into a cached statement).
  static Result<std::string> RenderConstant(const QValue& v);

  /// Quotes an identifier for the generated SQL.
  static std::string QuoteIdent(const std::string& name);
  /// Escapes and quotes a string literal.
  static std::string QuoteLiteral(const std::string& text);

 private:
  /// A rendered subquery: its SQL text and the result-column name for each
  /// ColId it exposes.
  struct Rendered {
    std::string sql;
    std::map<xtra::ColId, std::string> columns;
  };

  Result<Rendered> Render(const xtra::XtraPtr& op);
  Result<std::string> RenderScalar(const xtra::ScalarPtr& e,
                                   const std::map<xtra::ColId, std::string>&
                                       cols,
                                   const std::string& alias);
  Result<std::string> RenderScalarTwoSided(
      const xtra::ScalarPtr& e,
      const std::map<xtra::ColId, std::string>& left_cols,
      const std::string& left_alias,
      const std::map<xtra::ColId, std::string>& right_cols,
      const std::string& right_alias);
  int next_alias_ = 0;
  bool param_mode_ = false;
  std::vector<int> emitted_slots_;
  std::vector<int> baked_slots_;
};

}  // namespace hyperq

#endif  // HYPERQ_SERIALIZER_SERIALIZER_H_
