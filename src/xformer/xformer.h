#ifndef HYPERQ_XFORMER_XFORMER_H_
#define HYPERQ_XFORMER_XFORMER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xtra/operator.h"

namespace hyperq {

/// The Xformer (§3.3) rewrites XTRA expressions before serialization. The
/// three rule classes from the paper:
///  - Correctness: Q's 2-valued null logic is imposed on SQL by replacing
///    strict equality with IS NOT DISTINCT FROM.
///  - Transparency: Q ordering semantics are maintained by propagating an
///    order-requirement property; operators whose parents are order-
///    insensitive (e.g. scalar aggregation) drop their ordering.
///  - Performance: unused columns are pruned from every operator so the
///    serialized SQL does not drag 500-column tables through subqueries.
class Xformer {
 public:
  struct Options {
    bool null_semantics = true;
    bool order_elision = true;
    bool column_pruning = true;
  };

  Xformer() = default;
  explicit Xformer(Options options) : options_(options) {}

  /// Transforms a tree in place (the tree is assumed tenant-owned; callers
  /// keeping the pre-transform tree should CloneTree first).
  /// `result_order_required` states whether the application-visible result
  /// depends on row order (false for scalar/atom results).
  Status Transform(const xtra::XtraPtr& root, bool result_order_required);

  /// Names of rules that fired in the last Transform call (for tests and
  /// the benchmark harness).
  const std::vector<std::string>& applied_rules() const {
    return applied_rules_;
  }

 private:
  Status ApplyNullSemantics(const xtra::XtraPtr& op);
  /// `elide` applies the order-insensitivity analysis; when false, every
  /// operator keeps its ordering requirement (the rule's ablation).
  void PropagateOrderRequirement(const xtra::XtraPtr& op, bool required,
                                 bool elide);
  Status PruneColumns(const xtra::XtraPtr& op,
                      const std::vector<xtra::ColId>& required);

  Options options_;
  std::vector<std::string> applied_rules_;
};

}  // namespace hyperq

#endif  // HYPERQ_XFORMER_XFORMER_H_
