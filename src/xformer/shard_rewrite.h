#ifndef HYPERQ_XFORMER_SHARD_REWRITE_H_
#define HYPERQ_XFORMER_SHARD_REWRITE_H_

#include <functional>
#include <optional>
#include <string>

#include "xtra/operator.h"

namespace hyperq {

/// How one backend table is distributed across shards.
struct ShardTableInfo {
  /// The hash-partitioning column (e.g. Symbol for trade/quote): every row
  /// of one partition-column value lives wholly on one shard.
  std::string partition_column;
};

/// Resolves a base table to its partitioning info; nullopt when the table
/// is not partitioned (replicated, temp, or the backend is not sharded).
using ShardInfoFn =
    std::function<std::optional<ShardTableInfo>(const std::string&)>;

/// Name of the transient table the coordinator loads the concatenated
/// per-shard partial results into before running the merge query.
inline constexpr char kShardPartialsTable[] = "__hq_partials";

/// How a translated query distributes across shards (docs/SCALE_OUT.md).
enum class ShardMode {
  kNone,     ///< not distributable: execute on the fallback backend
  kOrdered,  ///< scan/filter/project [sort] [limit]: merge re-sorts by the
             ///< implicit order column (plus any explicit sort keys)
  kAligned,  ///< grouped by the partition column: groups never span shards,
             ///< merge only re-sorts by the (totally ordering) group keys
  kTwoPhase  ///< decomposable aggregates: per-shard partial aggregates,
             ///< merge-aggregate recombines (sum of sums, sum of counts...)
};

const char* ShardModeName(ShardMode mode);

/// The planned distribution of one result query: the per-shard partial
/// tree (null when the translated result SQL already is the correct
/// per-shard query) and the merge tree executed over kShardPartialsTable.
struct ShardRewrite {
  ShardMode mode = ShardMode::kNone;
  std::string table;       ///< the hash-partitioned base table
  xtra::XtraPtr partial;   ///< null => reuse the serialized result SQL
  xtra::XtraPtr merge;     ///< always set when mode != kNone
  /// Partition routing: when the query's filters pin the partition column
  /// to one symbol constant, every qualifying row lives on the shard that
  /// owns that value — the coordinator scatters to that single shard and
  /// the merge is unchanged (the other shards would only contribute empty
  /// partials, which every merge shape absorbs).
  bool routed = false;
  std::string route_key;   ///< the pinned partition-column symbol
};

/// Classifies a transformed XTRA tree against the three distributable
/// shapes. Conservative by construction: any shape whose sharded execution
/// is not provably byte-identical to the single-backend run (joins,
/// windows, DISTINCT, non-decomposable or float-summing aggregates,
/// group orders the merge cannot reconstruct) returns mode kNone and the
/// coordinator falls back to its full-copy backend.
ShardRewrite PlanShardRewrite(const xtra::XtraPtr& root,
                              const ShardInfoFn& info);

/// Resolves a base table to whether it is live-backed (has an in-memory
/// ingest tail alongside its historical rows).
using LiveInfoFn = std::function<bool(const std::string&)>;

/// Plans the hybrid live/historical split of one result query
/// (docs/INGEST.md): the historical table and the pinned tail segment are
/// the two "shards", so only the partition-agnostic modes apply —
/// kOrdered (re-sort the concatenated parts by the implicit order column,
/// which ingest continues past the historical max) and kTwoPhase
/// (decomposable partial aggregates). kAligned and partition routing are
/// never produced: a symbol's rows straddle the flush boundary by
/// construction. Everything else returns kNone and the gateway falls back
/// to merged-snapshot execution.
ShardRewrite PlanHybridRewrite(const xtra::XtraPtr& root,
                               const LiveInfoFn& live);

}  // namespace hyperq

#endif  // HYPERQ_XFORMER_SHARD_REWRITE_H_
