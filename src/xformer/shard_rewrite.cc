#include "xformer/shard_rewrite.h"

#include <limits>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace hyperq {

using xtra::ColId;
using xtra::kNoCol;
using xtra::MakeColRef;
using xtra::MakeConst;
using xtra::MakeFunc;
using xtra::MakeGet;
using xtra::MakeGroupAgg;
using xtra::MakeLimit;
using xtra::MakeProject;
using xtra::MakeSort;
using xtra::NamedScalar;
using xtra::ScalarExpr;
using xtra::ScalarKind;
using xtra::ScalarPtr;
using xtra::XtraColumn;
using xtra::XtraKind;
using xtra::XtraOp;
using xtra::XtraPtr;
using xtra::XtraSortKey;

namespace {

/// Column-name prefix reserved for the coordinator's partial-aggregate
/// columns; user queries never produce it (hq_* helpers use other names).
constexpr char kPartialPrefix[] = "hq_sh";

bool ScalarContains(const ScalarPtr& e, ScalarKind kind) {
  if (!e) return false;
  if (e->kind == kind) return true;
  for (const auto& a : e->args) {
    if (ScalarContains(a, kind)) return true;
  }
  for (const auto& p : e->partition_by) {
    if (ScalarContains(p, kind)) return true;
  }
  for (const auto& [o, asc] : e->order_by) {
    if (ScalarContains(o, kind)) return true;
  }
  return false;
}

/// True when a scalar is safe to evaluate per shard: no window functions
/// (they see only the shard's rows) and no nested aggregates.
bool ShardSafeScalar(const ScalarPtr& e) {
  return !ScalarContains(e, ScalarKind::kWindow) &&
         !ScalarContains(e, ScalarKind::kAgg);
}

/// Walks a Filter/Project chain down to its Get leaf. Returns null when
/// the subtree contains any other operator, a DISTINCT projection, or a
/// scalar that is not shard-safe.
XtraPtr ChainBase(const XtraPtr& op) {
  XtraPtr cur = op;
  while (cur) {
    switch (cur->kind) {
      case XtraKind::kGet:
        return cur;
      case XtraKind::kFilter:
        if (!ShardSafeScalar(cur->predicate)) return nullptr;
        cur = cur->children[0];
        break;
      case XtraKind::kProject: {
        if (cur->distinct || cur->children.empty()) return nullptr;
        for (const auto& p : cur->projections) {
          if (!ShardSafeScalar(p.expr)) return nullptr;
        }
        cur = cur->children[0];
        break;
      }
      default:
        return nullptr;
    }
  }
  return nullptr;
}

/// Resolves a column id at `op`'s output down a Filter/Project chain to
/// the base-table column it is a pure alias of; empty when computed.
std::string ResolveBaseColumn(const XtraPtr& op, ColId id) {
  XtraPtr cur = op;
  ColId cid = id;
  while (cur) {
    switch (cur->kind) {
      case XtraKind::kGet: {
        const XtraColumn* c = cur->FindOutput(cid);
        return c != nullptr ? c->name : std::string();
      }
      case XtraKind::kFilter:
        cur = cur->children[0];
        break;
      case XtraKind::kProject: {
        const NamedScalar* found = nullptr;
        for (const auto& p : cur->projections) {
          if (p.col.id == cid) {
            found = &p;
            break;
          }
        }
        if (found == nullptr || found->expr == nullptr ||
            found->expr->kind != ScalarKind::kColRef) {
          return std::string();
        }
        cid = found->expr->col;
        cur = cur->children[0];
        break;
      }
      default:
        return std::string();
    }
  }
  return std::string();
}

/// Output names double as the merge query's column references into the
/// partials table, so they must be unique and must not collide with the
/// coordinator's reserved partial-column names.
bool UsableOutputNames(const std::vector<XtraColumn>& cols) {
  std::set<std::string> seen;
  for (const auto& c : cols) {
    if (c.name.empty()) return false;
    if (c.name.compare(0, sizeof(kPartialPrefix) - 1, kPartialPrefix) == 0) {
      return false;
    }
    if (!seen.insert(c.name).second) return false;
  }
  return true;
}

ColId MaxColId(const XtraPtr& op) {
  if (!op) return kNoCol;
  ColId m = kNoCol;
  for (const auto& c : op->output) m = std::max(m, c.id);
  for (const auto& k : op->group_keys) m = std::max(m, k.col.id);
  for (const auto& p : op->projections) m = std::max(m, p.col.id);
  for (const auto& c : op->children) m = std::max(m, MaxColId(c));
  return m;
}

/// A scan over the concatenated partial results, exposing the given
/// columns under fresh ids 0..n-1 plus the original-id remapping.
struct PartialsScan {
  XtraPtr get;
  std::map<ColId, ColId> remap;  ///< original output id -> partials id
};

PartialsScan MakePartialsScan(const std::vector<XtraColumn>& cols) {
  PartialsScan out;
  std::vector<XtraColumn> scan_cols;
  scan_cols.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    XtraColumn c = cols[i];
    c.id = static_cast<ColId>(i);
    out.remap[cols[i].id] = c.id;
    scan_cols.push_back(std::move(c));
  }
  out.get = MakeGet(kShardPartialsTable, std::move(scan_cols), kNoCol);
  return out;
}

ScalarPtr ColRefTo(const XtraColumn& c) {
  return MakeColRef(c.id, c.name, c.type, c.nullable);
}

void CollectConjuncts(const ScalarPtr& e,
                      std::vector<const ScalarExpr*>* out) {
  if (!e) return;
  if (e->kind == ScalarKind::kFunc && e->func == "and") {
    for (const auto& a : e->args) CollectConjuncts(a, out);
    return;
  }
  out->push_back(e.get());
}

/// Partition routing: scans the Filter/Project chain for a top-level
/// conjunct `partition_column = <sym constant>`. Hash partitioning puts
/// every row of one partition value on one shard, so a query pinned to a
/// single value only needs that shard; the others could contribute only
/// empty partials (kOrdered/kAligned) or neutral ones (two-phase partial
/// rows with zero count and NULL sum/min/max, which the merge aggregates
/// ignore). Lifted cache parameters are fine as route keys: only the
/// exact-text cache tier replays shard plans, so a plan carrying a route
/// is never reused for a different literal. The null symbol is excluded —
/// its rows hash by the NULL encoding, not by "".
std::optional<std::string> FindRouteKey(const XtraPtr& chain_top,
                                        const std::string& partition_column) {
  XtraPtr cur = chain_top;
  while (cur != nullptr && cur->kind != XtraKind::kGet) {
    if (cur->children.empty()) return std::nullopt;
    if (cur->kind == XtraKind::kFilter) {
      std::vector<const ScalarExpr*> conjuncts;
      CollectConjuncts(cur->predicate, &conjuncts);
      for (const ScalarExpr* c : conjuncts) {
        // Both the plain and the null-safe equality pin the column: with a
        // non-null constant (enforced below) they qualify exactly the rows
        // holding that value.
        if (c->kind != ScalarKind::kFunc ||
            (c->func != "eq" && c->func != "eq_ind") || c->args.size() != 2) {
          continue;
        }
        for (int side = 0; side < 2; ++side) {
          const ScalarPtr& col = c->args[side];
          const ScalarPtr& val = c->args[1 - side];
          if (!col || col->kind != ScalarKind::kColRef) continue;
          if (!val || val->kind != ScalarKind::kConst) continue;
          if (val->value.type() != QType::kSymbol ||
              val->value.IsNullAtom()) {
            continue;
          }
          if (ResolveBaseColumn(cur->children[0], col->col) !=
              partition_column) {
            continue;
          }
          return val->value.AsSym();
        }
      }
    }
    cur = cur->children[0];
  }
  return std::nullopt;
}

/// kOrdered: [Limit]? [Sort]? (Filter|Project)* Get. Hash partitioning
/// keeps the global implicit order column on every row, so re-sorting the
/// concatenated partials by (explicit sort keys, ordcol) reproduces the
/// single-backend row order exactly — the backend's ORDER BY is a stable
/// sort over ordcol-ascending input, and ordcol is globally unique.
ShardRewrite TryOrdered(const XtraPtr& root, const ShardInfoFn& info) {
  ShardRewrite out;
  XtraPtr limit;
  XtraPtr sort;
  XtraPtr cur = root;
  if (cur->kind == XtraKind::kLimit) {
    limit = cur;
    cur = cur->children[0];
  }
  if (cur->kind == XtraKind::kSort) {
    sort = cur;
    cur = cur->children[0];
  }
  XtraPtr base = ChainBase(cur);
  if (!base) return out;
  std::optional<ShardTableInfo> pinfo = info(base->table);
  if (!pinfo) return out;

  // The global order must be reconstructible: the implicit order column
  // has to survive into the result.
  if (root->ord_col == kNoCol || root->FindOutput(root->ord_col) == nullptr) {
    return out;
  }
  // Without an explicit sort or limit, the single-backend SQL only has a
  // deterministic order when the serializer emits the final ORDER BY
  // ordcol wrap; a result whose order the backend never defines cannot be
  // matched byte-for-byte from concatenated shards.
  if (!sort && !limit && !root->order_required) return out;
  if (!UsableOutputNames(root->output)) return out;
  if (sort) {
    for (const auto& k : sort->sort_keys) {
      if (!k.expr || k.expr->kind != ScalarKind::kColRef ||
          root->FindOutput(k.expr->col) == nullptr) {
        return out;
      }
    }
  }
  if (limit && limit->limit >= 0 && limit->offset > 0 &&
      limit->limit > std::numeric_limits<int64_t>::max() - limit->offset) {
    return out;
  }

  PartialsScan ps = MakePartialsScan(root->output);
  std::vector<XtraSortKey> merge_keys;
  if (sort) {
    for (const auto& k : sort->sort_keys) {
      const XtraColumn& c = ps.get->output[ps.remap[k.expr->col]];
      merge_keys.push_back({ColRefTo(c), k.ascending});
    }
  }
  const XtraColumn& oc = ps.get->output[ps.remap[root->ord_col]];
  merge_keys.push_back({ColRefTo(oc), /*ascending=*/true});
  XtraPtr merge = MakeSort(ps.get, std::move(merge_keys));
  if (limit) {
    // Each shard only needs its first limit+offset rows; the merge
    // re-applies the exact limit/offset after the global sort.
    merge = MakeLimit(merge, limit->limit, limit->offset);
    XtraPtr partial = xtra::CloneTree(root);
    partial->limit =
        limit->limit < 0 ? -1 : limit->limit + limit->offset;
    partial->offset = 0;
    out.partial = std::move(partial);
  }
  out.mode = ShardMode::kOrdered;
  out.table = base->table;
  out.merge = std::move(merge);
  if (std::optional<std::string> rk =
          FindRouteKey(cur, pinfo->partition_column)) {
    out.routed = true;
    out.route_key = std::move(*rk);
  }
  return out;
}

/// Common precondition of both aggregate modes: Sort(GroupAgg(chain)) or
/// a bare scalar GroupAgg(chain), with sort keys that are plain column
/// refs covering every group key (so the key tuples totally order the
/// groups and the merge sort is deterministic without a tiebreak).
struct AggShape {
  XtraPtr sort;       ///< null for bare scalar aggregation
  XtraPtr group_agg;
  XtraPtr base;       ///< the partitioned Get
  std::optional<std::string> route_key;  ///< pinned partition value, if any
};

bool MatchAggShape(const XtraPtr& root, const ShardInfoFn& info,
                   AggShape* out) {
  XtraPtr cur = root;
  if (cur->kind == XtraKind::kSort) {
    out->sort = cur;
    cur = cur->children[0];
  }
  if (cur->kind != XtraKind::kGroupAgg) return false;
  out->group_agg = cur;
  XtraPtr base = ChainBase(cur->children[0]);
  if (!base) return false;
  std::optional<ShardTableInfo> pinfo = info(base->table);
  if (!pinfo) return false;
  out->base = base;
  out->route_key =
      FindRouteKey(cur->children[0], pinfo->partition_column);
  if (!UsableOutputNames(out->group_agg->output)) return false;
  for (const auto& k : out->group_agg->group_keys) {
    if (!ShardSafeScalar(k.expr)) return false;
  }

  if (out->group_agg->group_keys.empty()) {
    // Scalar aggregation: exactly one output row, nothing to order.
    return !out->sort;
  }
  if (!out->sort) return false;
  std::set<ColId> sorted_ids;
  for (const auto& k : out->sort->sort_keys) {
    if (!k.expr || k.expr->kind != ScalarKind::kColRef ||
        out->group_agg->FindOutput(k.expr->col) == nullptr) {
      return false;
    }
    sorted_ids.insert(k.expr->col);
  }
  for (const auto& k : out->group_agg->group_keys) {
    if (sorted_ids.count(k.col.id) == 0) return false;
  }
  return true;
}

/// kAligned: some group key is a pure alias of the partition column, so
/// every group lives wholly on one shard with its members in original row
/// order — any aggregate (median, stddev, first/last included) is exact
/// per shard, and the merge only re-sorts the group rows.
ShardRewrite TryAligned(const AggShape& shape, const ShardInfoFn& info) {
  ShardRewrite out;
  if (!shape.sort) return out;
  std::optional<ShardTableInfo> pinfo = info(shape.base->table);
  bool aligned = false;
  for (const auto& k : shape.group_agg->group_keys) {
    if (k.expr && k.expr->kind == ScalarKind::kColRef &&
        ResolveBaseColumn(shape.group_agg->children[0], k.expr->col) ==
            pinfo->partition_column) {
      aligned = true;
      break;
    }
  }
  if (!aligned) return out;

  PartialsScan ps = MakePartialsScan(shape.sort->output);
  std::vector<XtraSortKey> merge_keys;
  for (const auto& k : shape.sort->sort_keys) {
    const XtraColumn& c = ps.get->output[ps.remap[k.expr->col]];
    merge_keys.push_back({ColRefTo(c), k.ascending});
  }
  out.mode = ShardMode::kAligned;
  out.table = shape.base->table;
  out.merge = MakeSort(ps.get, std::move(merge_keys));
  if (shape.route_key) {
    out.routed = true;
    out.route_key = *shape.route_key;
  }
  return out;
}

/// kTwoPhase: every aggregate decomposes into a per-shard partial and a
/// merge aggregate (ISSUE/qserv AggregateMgr pattern):
///   count/count(*) -> sum of partial counts
///   min/max        -> min/max of partial min/max
///   sum            -> sum of partial sums      (integral args only)
///   avg            -> sum(partials)/count, NULL when the count is zero
/// Float sums are excluded: float addition is not associative, so a
/// re-associated sum would not be bit-identical to the row-order sum.
ShardRewrite TryTwoPhase(const AggShape& shape) {
  ShardRewrite out;
  const XtraPtr& g = shape.group_agg;
  for (const auto& a : g->projections) {
    const ScalarPtr& e = a.expr;
    if (!e || e->kind != ScalarKind::kAgg || e->distinct) return out;
    for (const auto& arg : e->args) {
      if (!ShardSafeScalar(arg)) return out;
    }
    if (e->func == "count" || e->func == "count_star" || e->func == "min" ||
        e->func == "max") {
      continue;
    }
    if ((e->func == "sum" || e->func == "avg") && !e->args.empty() &&
        IsIntegralBacked(e->args[0]->type)) {
      continue;
    }
    return out;
  }

  ColId next_id = MaxColId(g) + 1;
  auto fresh = [&next_id]() { return next_id++; };

  // Per-shard partial aggregation: same keys, partial aggregates. No sort
  // (the merge re-groups and re-sorts) and no final ORDER BY wrap.
  std::vector<NamedScalar> partial_aggs;
  struct AggPlan {
    std::string func;          ///< original aggregate
    std::string partial_name;  ///< partial column (sum/min/max/count)
    std::string count_name;    ///< avg only: partial count column
    const NamedScalar* original;
  };
  std::vector<AggPlan> plans;
  int seq = 0;
  for (const auto& a : g->projections) {
    const ScalarPtr& e = a.expr;
    AggPlan plan;
    plan.func = e->func;
    plan.original = &a;
    if (e->func == "avg") {
      plan.partial_name = kPartialPrefix + std::string("p_") +
                          std::to_string(seq) + "_s";
      plan.count_name = kPartialPrefix + std::string("p_") +
                        std::to_string(seq) + "_c";
      partial_aggs.push_back(
          {XtraColumn{fresh(), plan.partial_name, QType::kLong, true},
           xtra::MakeAgg("sum", e->args, QType::kLong)});
      partial_aggs.push_back(
          {XtraColumn{fresh(), plan.count_name, QType::kLong, false},
           xtra::MakeAgg("count", e->args, QType::kLong)});
    } else {
      plan.partial_name =
          kPartialPrefix + std::string("p_") + std::to_string(seq);
      partial_aggs.push_back(
          {XtraColumn{fresh(), plan.partial_name, a.col.type, true},
           xtra::MakeAgg(e->func, e->args, a.col.type)});
    }
    plans.push_back(std::move(plan));
    ++seq;
  }
  XtraPtr partial = MakeGroupAgg(xtra::CloneTree(g->children[0]),
                                 g->group_keys, std::move(partial_aggs));
  partial->order_required = false;

  // Merge step 1: re-group the concatenated partials by the key values.
  PartialsScan ps = MakePartialsScan(partial->output);
  std::vector<NamedScalar> merge_keys;
  for (const auto& k : g->group_keys) {
    const XtraColumn& c = ps.get->output[ps.remap[k.col.id]];
    merge_keys.push_back(
        {XtraColumn{fresh(), c.name, c.type, c.nullable}, ColRefTo(c)});
  }
  std::vector<NamedScalar> merge_aggs;
  struct MergedCols {
    ColId value = kNoCol;  ///< merged sum/min/max/count column
    ColId count = kNoCol;  ///< avg only: merged count column
  };
  std::vector<MergedCols> merged(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    const AggPlan& plan = plans[i];
    const XtraColumn* pcol = ps.get->FindOutputByName(plan.partial_name);
    std::string merge_func =
        (plan.func == "min" || plan.func == "max") ? plan.func : "sum";
    QType merged_type =
        plan.func == "avg" ? QType::kLong : plan.original->col.type;
    merged[i].value = fresh();
    merge_aggs.push_back(
        {XtraColumn{merged[i].value,
                    kPartialPrefix + std::string("m_") + std::to_string(i),
                    merged_type, true},
         xtra::MakeAgg(merge_func, {ColRefTo(*pcol)}, merged_type)});
    if (plan.func == "avg") {
      const XtraColumn* ccol = ps.get->FindOutputByName(plan.count_name);
      merged[i].count = fresh();
      merge_aggs.push_back(
          {XtraColumn{merged[i].count,
                      kPartialPrefix + std::string("m_") + std::to_string(i) +
                          "_c",
                      QType::kLong, false},
           xtra::MakeAgg("sum", {ColRefTo(*ccol)}, QType::kLong)});
    }
  }
  XtraPtr regroup = MakeGroupAgg(ps.get, merge_keys, std::move(merge_aggs));

  // Merge step 2: restore the original column names and order, finishing
  // avg as sum/count (NULL for an empty/all-null group, matching the
  // single-backend aggregate) in a separate Project so no aggregate sits
  // inside an expression.
  std::vector<NamedScalar> final_cols;
  for (size_t i = 0; i < g->group_keys.size(); ++i) {
    const NamedScalar& k = g->group_keys[i];
    const XtraColumn& mk = regroup->output[i];
    final_cols.push_back(
        {XtraColumn{fresh(), k.col.name, k.col.type, k.col.nullable},
         ColRefTo(mk)});
  }
  for (size_t i = 0; i < plans.size(); ++i) {
    const AggPlan& plan = plans[i];
    const NamedScalar& orig = *plan.original;
    const XtraColumn* mv = regroup->FindOutput(merged[i].value);
    ScalarPtr expr;
    if (plan.func == "avg") {
      const XtraColumn* mc = regroup->FindOutput(merged[i].count);
      auto cse = std::make_shared<ScalarExpr>();
      cse->kind = ScalarKind::kCase;
      cse->type = QType::kFloat;
      cse->has_else = true;
      cse->args = {MakeFunc("eq",
                            {ColRefTo(*mc), MakeConst(QValue::Long(0))},
                            QType::kBool),
                   MakeConst(QValue::NullOf(QType::kFloat)),
                   MakeFunc("fdiv", {ColRefTo(*mv), ColRefTo(*mc)},
                            QType::kFloat)};
      expr = cse;
    } else {
      expr = ColRefTo(*mv);
    }
    final_cols.push_back(
        {XtraColumn{fresh(), orig.col.name, orig.col.type, orig.col.nullable},
         std::move(expr)});
  }
  XtraPtr merge = MakeProject(regroup, std::move(final_cols));
  if (shape.sort) {
    // Sort keys are group-key column refs; re-point them at the Project's
    // corresponding outputs (same position: keys lead in both).
    std::map<ColId, const XtraColumn*> key_out;
    for (size_t i = 0; i < g->group_keys.size(); ++i) {
      key_out[g->group_keys[i].col.id] = &merge->output[i];
    }
    std::vector<XtraSortKey> sort_keys;
    for (const auto& k : shape.sort->sort_keys) {
      sort_keys.push_back({ColRefTo(*key_out[k.expr->col]), k.ascending});
    }
    merge = MakeSort(merge, std::move(sort_keys));
  }
  merge->order_required = false;

  out.mode = ShardMode::kTwoPhase;
  out.table = shape.base->table;
  out.partial = std::move(partial);
  out.merge = std::move(merge);
  if (shape.route_key) {
    out.routed = true;
    out.route_key = *shape.route_key;
  }
  return out;
}

}  // namespace

const char* ShardModeName(ShardMode mode) {
  switch (mode) {
    case ShardMode::kNone:
      return "none";
    case ShardMode::kOrdered:
      return "ordered";
    case ShardMode::kAligned:
      return "aligned";
    case ShardMode::kTwoPhase:
      return "two-phase";
  }
  return "unknown";
}

ShardRewrite PlanShardRewrite(const xtra::XtraPtr& root,
                              const ShardInfoFn& info) {
  if (!root || !info) return ShardRewrite{};

  AggShape shape;
  if (MatchAggShape(root, info, &shape)) {
    if (ShardRewrite r = TryAligned(shape, info); r.mode != ShardMode::kNone) {
      return r;
    }
    return TryTwoPhase(shape);
  }
  return TryOrdered(root, info);
}

ShardRewrite PlanHybridRewrite(const xtra::XtraPtr& root,
                               const LiveInfoFn& live) {
  if (!root || !live) return ShardRewrite{};
  // Present live tables as partitioned on a column no query can name, so
  // the shared matchers reuse their shape analysis verbatim while the
  // partition-dependent outcomes (kAligned, routing) are unreachable:
  // ResolveBaseColumn yields real column names or "", never the sentinel.
  ShardInfoFn sentinel =
      [&live](const std::string& table) -> std::optional<ShardTableInfo> {
    if (!live(table)) return std::nullopt;
    return ShardTableInfo{"\x01hq_live_boundary"};
  };
  AggShape shape;
  if (MatchAggShape(root, sentinel, &shape)) {
    ShardRewrite r = TryTwoPhase(shape);
    r.routed = false;
    r.route_key.clear();
    return r;
  }
  ShardRewrite r = TryOrdered(root, sentinel);
  r.routed = false;
  r.route_key.clear();
  return r;
}

}  // namespace hyperq
