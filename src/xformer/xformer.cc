#include "xformer/xformer.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace hyperq {

using xtra::ColId;
using xtra::kNoCol;
using xtra::NamedScalar;
using xtra::ScalarExpr;
using xtra::ScalarKind;
using xtra::ScalarPtr;
using xtra::XtraColumn;
using xtra::XtraKind;
using xtra::XtraOp;
using xtra::XtraPtr;

namespace {

/// Rewrites comparisons to null-aware forms when either operand can be
/// NULL; this imposes Q's 2-valued logic on the SQL backend (§3.3
/// Correctness). Equality maps to IS [NOT] DISTINCT FROM; the ordered
/// comparisons map to *_ind spellings that treat null as the smallest
/// value, matching q's total order (0n < x for every non-null x).
ScalarPtr RewriteNullSemantics(const ScalarPtr& e, bool* changed) {
  if (!e) return e;
  auto copy = std::make_shared<ScalarExpr>(*e);
  bool child_changed = false;
  for (auto& a : copy->args) {
    ScalarPtr na = RewriteNullSemantics(a, &child_changed);
    a = na;
  }
  for (auto& p : copy->partition_by) {
    p = RewriteNullSemantics(p, &child_changed);
  }
  for (auto& [o, asc] : copy->order_by) {
    o = RewriteNullSemantics(o, &child_changed);
  }
  bool self = false;
  if (copy->kind == ScalarKind::kFunc) {
    static const std::map<std::string, std::string> kNullAware = {
        {"eq", "eq_ind"}, {"ne", "ne_ind"}, {"lt", "lt_ind"},
        {"gt", "gt_ind"}, {"le", "le_ind"}, {"ge", "ge_ind"},
    };
    auto it = kNullAware.find(copy->func);
    if (it != kNullAware.end()) {
      bool nullable = false;
      for (const auto& a : copy->args) nullable |= a->nullable;
      if (nullable) {
        copy->func = it->second;
        self = true;
      }
    }
  }
  if (!child_changed && !self) return e;
  *changed = true;
  return copy;
}

void CollectRefsOf(const XtraOp& op, std::vector<ColId>* out) {
  CollectColumnRefs(op.predicate, out);
  for (const auto& p : op.projections) CollectColumnRefs(p.expr, out);
  for (const auto& k : op.group_keys) CollectColumnRefs(k.expr, out);
  for (const auto& s : op.sort_keys) CollectColumnRefs(s.expr, out);
}

}  // namespace

Status Xformer::Transform(const XtraPtr& root, bool result_order_required) {
  applied_rules_.clear();
  if (options_.null_semantics) {
    HQ_RETURN_IF_ERROR(ApplyNullSemantics(root));
  }
  if (options_.order_elision) {
    PropagateOrderRequirement(root, result_order_required, /*elide=*/true);
    applied_rules_.push_back("order_elision");
  } else {
    // Without the rule every operator keeps its ordering requirement.
    PropagateOrderRequirement(root, true, /*elide=*/false);
  }
  if (options_.column_pruning) {
    std::vector<ColId> all;
    for (const auto& c : root->output) all.push_back(c.id);
    HQ_RETURN_IF_ERROR(PruneColumns(root, all));
    applied_rules_.push_back("column_pruning");
  }
  return Status::OK();
}

Status Xformer::ApplyNullSemantics(const XtraPtr& op) {
  if (!op) return Status::OK();
  bool changed = false;
  if (op->predicate) {
    op->predicate = RewriteNullSemantics(op->predicate, &changed);
  }
  for (auto& p : op->projections) {
    p.expr = RewriteNullSemantics(p.expr, &changed);
  }
  for (auto& k : op->group_keys) {
    k.expr = RewriteNullSemantics(k.expr, &changed);
  }
  for (auto& s : op->sort_keys) {
    s.expr = RewriteNullSemantics(s.expr, &changed);
  }
  if (changed) applied_rules_.push_back("null_semantics");
  for (const auto& c : op->children) {
    HQ_RETURN_IF_ERROR(ApplyNullSemantics(c));
  }
  return Status::OK();
}

void Xformer::PropagateOrderRequirement(const XtraPtr& op, bool required,
                                        bool elide) {
  if (!op) return;
  op->order_required = required;
  if (!elide) {
    for (const auto& c : op->children) {
      PropagateOrderRequirement(c, true, false);
    }
    return;
  }
  switch (op->kind) {
    case XtraKind::kGroupAgg: {
      // Aggregation is order-insensitive unless it computes first/last,
      // which depend on the group's row order.
      bool needs_order = false;
      for (const auto& a : op->projections) {
        if (a.expr && a.expr->kind == ScalarKind::kAgg &&
            (a.expr->func == "first" || a.expr->func == "last")) {
          needs_order = true;
        }
      }
      PropagateOrderRequirement(op->children[0], needs_order, elide);
      return;
    }
    case XtraKind::kSort:
      // A sort re-establishes order; the child's order is irrelevant.
      PropagateOrderRequirement(op->children[0], false, elide);
      return;
    case XtraKind::kLimit:
      // LIMIT picks rows by position: the child order is load-bearing.
      PropagateOrderRequirement(op->children[0], true, elide);
      return;
    case XtraKind::kJoin:
      PropagateOrderRequirement(op->children[0], required, elide);
      PropagateOrderRequirement(op->children[1], false, elide);
      return;
    default:
      for (const auto& c : op->children) {
        PropagateOrderRequirement(c, required, elide);
      }
      return;
  }
}

Status Xformer::PruneColumns(const XtraPtr& op,
                             const std::vector<ColId>& required) {
  if (!op) return Status::OK();
  std::set<ColId> req(required.begin(), required.end());

  // The implicit order column stays when this subtree must deliver order.
  if (op->order_required && op->ord_col != kNoCol) req.insert(op->ord_col);

  switch (op->kind) {
    case XtraKind::kGet: {
      std::vector<XtraColumn> kept;
      for (const auto& c : op->output) {
        if (req.count(c.id) > 0) kept.push_back(c);
      }
      op->output = std::move(kept);
      if (op->ord_col != kNoCol && op->FindOutput(op->ord_col) == nullptr) {
        op->ord_col = kNoCol;
      }
      return Status::OK();
    }
    case XtraKind::kProject:
    case XtraKind::kGroupAgg: {
      // Keep required projections (group keys always stay: they define the
      // grouping semantics).
      std::vector<NamedScalar> kept;
      for (const auto& p : op->projections) {
        if (req.count(p.col.id) > 0) kept.push_back(p);
      }
      op->projections = std::move(kept);
      op->output.clear();
      for (const auto& k : op->group_keys) op->output.push_back(k.col);
      for (const auto& p : op->projections) op->output.push_back(p.col);
      if (op->ord_col != kNoCol && op->FindOutput(op->ord_col) == nullptr) {
        op->ord_col = kNoCol;
      }
      // A projection of pure constants (e.g. a scalar function body) has
      // no input to prune.
      if (op->children.empty() || !op->children[0]) return Status::OK();
      std::vector<ColId> child_req;
      CollectRefsOf(*op, &child_req);
      return PruneColumns(op->children[0], child_req);
    }
    case XtraKind::kFilter:
    case XtraKind::kSort:
    case XtraKind::kLimit: {
      if (op->children.empty() || !op->children[0]) return Status::OK();
      std::vector<ColId> child_req(req.begin(), req.end());
      CollectRefsOf(*op, &child_req);
      HQ_RETURN_IF_ERROR(PruneColumns(op->children[0], child_req));
      // Pass-through operators mirror the child's (pruned) output.
      op->output = op->children[0]->output;
      if (op->ord_col != kNoCol && op->FindOutput(op->ord_col) == nullptr) {
        op->ord_col = kNoCol;
      }
      return Status::OK();
    }
    case XtraKind::kJoin: {
      std::vector<ColId> needed(req.begin(), req.end());
      CollectRefsOf(*op, &needed);
      std::set<ColId> needed_set(needed.begin(), needed.end());
      // Split requirements by owning child.
      for (size_t ci = 0; ci < op->children.size(); ++ci) {
        std::vector<ColId> child_req;
        for (ColId id : needed_set) {
          if (op->children[ci]->FindOutput(id) != nullptr) {
            child_req.push_back(id);
          }
        }
        HQ_RETURN_IF_ERROR(PruneColumns(op->children[ci], child_req));
      }
      std::vector<XtraColumn> kept;
      for (const auto& c : op->output) {
        if (req.count(c.id) > 0) kept.push_back(c);
      }
      op->output = std::move(kept);
      if (op->ord_col != kNoCol && op->FindOutput(op->ord_col) == nullptr) {
        op->ord_col = kNoCol;
      }
      return Status::OK();
    }
    case XtraKind::kUnionAll: {
      // Positional: prune the same positions from both children.
      std::vector<size_t> keep_pos;
      std::vector<XtraColumn> kept;
      for (size_t i = 0; i < op->output.size(); ++i) {
        if (req.count(op->output[i].id) > 0) {
          keep_pos.push_back(i);
          kept.push_back(op->output[i]);
        }
      }
      for (const auto& child : op->children) {
        std::vector<ColId> child_req;
        for (size_t pos : keep_pos) {
          child_req.push_back(child->output[pos].id);
        }
        HQ_RETURN_IF_ERROR(PruneColumns(child, child_req));
      }
      op->output = std::move(kept);
      if (op->ord_col != kNoCol && op->FindOutput(op->ord_col) == nullptr) {
        op->ord_col = kNoCol;
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace hyperq
