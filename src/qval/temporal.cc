#include "qval/temporal.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "qval/qtype.h"

namespace hyperq {

namespace {

// Civil-date <-> day-count conversion (Howard Hinnant's algorithm), with the
// day count rebased from the Unix epoch to the Q epoch 2000.01.01.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned dd = doy - (153 * mp + 2) / 5 + 1;
  const unsigned mm = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (mm <= 2));
  *m = static_cast<int>(mm);
  *d = static_cast<int>(dd);
}

constexpr int64_t kNanosPerSec = 1000000000LL;
constexpr int64_t kNanosPerDay = 86400LL * kNanosPerSec;
constexpr int64_t kMillisPerDay = 86400LL * 1000;

}  // namespace

int64_t YmdToQDays(int year, int month, int day) {
  return DaysFromCivil(year, month, day) - kQEpochDaysFromUnix;
}

void QDaysToYmd(int64_t qdays, int* year, int* month, int* day) {
  CivilFromDays(qdays + kQEpochDaysFromUnix, year, month, day);
}

std::string FormatQDate(int64_t qdays) {
  if (qdays == kNullLong) return "0Nd";
  int y, m, d;
  QDaysToYmd(qdays, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d.%02d.%02d", y, m, d);
  return buf;
}

std::string FormatQTime(int64_t millis) {
  if (millis == kNullLong) return "0Nt";
  bool neg = millis < 0;
  int64_t ms = neg ? -millis : millis;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%02" PRId64 ":%02d:%02d.%03d",
                neg ? "-" : "", ms / 3600000,
                static_cast<int>(ms / 60000 % 60),
                static_cast<int>(ms / 1000 % 60), static_cast<int>(ms % 1000));
  return buf;
}

std::string FormatQTimestamp(int64_t nanos) {
  if (nanos == kNullLong) return "0Np";
  int64_t days = nanos / kNanosPerDay;
  int64_t rem = nanos % kNanosPerDay;
  if (rem < 0) {
    days -= 1;
    rem += kNanosPerDay;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%sD%02d:%02d:%02d.%09d",
                FormatQDate(days).c_str(), static_cast<int>(rem / 3600000000000LL),
                static_cast<int>(rem / 60000000000LL % 60),
                static_cast<int>(rem / kNanosPerSec % 60),
                static_cast<int>(rem % kNanosPerSec));
  return buf;
}

std::string FormatQTimespan(int64_t nanos) {
  if (nanos == kNullLong) return "0Nn";
  bool neg = nanos < 0;
  int64_t ns = neg ? -nanos : nanos;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%" PRId64 "D%02d:%02d:%02d.%09d",
                neg ? "-" : "", ns / kNanosPerDay,
                static_cast<int>(ns / 3600000000000LL % 24),
                static_cast<int>(ns / 60000000000LL % 60),
                static_cast<int>(ns / kNanosPerSec % 60),
                static_cast<int>(ns % kNanosPerSec));
  return buf;
}

Result<int64_t> ParseQDate(const std::string& text) {
  int y, m, d;
  if (std::sscanf(text.c_str(), "%d.%d.%d", &y, &m, &d) != 3 || m < 1 ||
      m > 12 || d < 1 || d > 31) {
    return ParseError(StrCat("invalid date literal '", text, "'"));
  }
  return YmdToQDays(y, m, d);
}

Result<int64_t> ParseQTime(const std::string& text) {
  int h = 0, m = 0, s = 0, ms = 0;
  int n = std::sscanf(text.c_str(), "%d:%d:%d.%d", &h, &m, &s, &ms);
  if (n < 2) return ParseError(StrCat("invalid time literal '", text, "'"));
  // Scale fractional part written with fewer than 3 digits.
  size_t dot = text.find('.');
  if (dot != std::string::npos) {
    size_t digits = text.size() - dot - 1;
    for (size_t i = digits; i < 3; ++i) ms *= 10;
    for (size_t i = 3; i < digits; ++i) ms /= 10;
  }
  return static_cast<int64_t>(h) * 3600000 + static_cast<int64_t>(m) * 60000 +
         static_cast<int64_t>(s) * 1000 + ms;
}

Result<int64_t> ParseQTimestamp(const std::string& text) {
  size_t dpos = text.find('D');
  if (dpos == std::string::npos) {
    HQ_ASSIGN_OR_RETURN(int64_t days, ParseQDate(text));
    return days * kNanosPerDay;
  }
  HQ_ASSIGN_OR_RETURN(int64_t days, ParseQDate(text.substr(0, dpos)));
  std::string tpart = text.substr(dpos + 1);
  int h = 0, m = 0, s = 0;
  int64_t frac = 0;
  int n = std::sscanf(tpart.c_str(), "%d:%d:%d", &h, &m, &s);
  if (n < 2) {
    return ParseError(StrCat("invalid timestamp literal '", text, "'"));
  }
  size_t dot = tpart.find('.');
  if (dot != std::string::npos) {
    std::string digits = tpart.substr(dot + 1);
    frac = std::atoll(digits.c_str());
    for (size_t i = digits.size(); i < 9; ++i) frac *= 10;
  }
  return days * kNanosPerDay + static_cast<int64_t>(h) * 3600000000000LL +
         static_cast<int64_t>(m) * 60000000000LL +
         static_cast<int64_t>(s) * kNanosPerSec + frac;
}

std::string FormatIsoDate(int64_t qdays) {
  int y, m, d;
  QDaysToYmd(qdays, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

std::string FormatIsoTime(int64_t millis) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03d",
                static_cast<int>(millis / 3600000),
                static_cast<int>(millis / 60000 % 60),
                static_cast<int>(millis / 1000 % 60),
                static_cast<int>(millis % 1000));
  return buf;
}

std::string FormatIsoTimestamp(int64_t nanos) {
  int64_t days = nanos / kNanosPerDay;
  int64_t rem = nanos % kNanosPerDay;
  if (rem < 0) {
    days -= 1;
    rem += kNanosPerDay;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s %02d:%02d:%02d.%09d",
                FormatIsoDate(days).c_str(),
                static_cast<int>(rem / 3600000000000LL),
                static_cast<int>(rem / 60000000000LL % 60),
                static_cast<int>(rem / kNanosPerSec % 60),
                static_cast<int>(rem % kNanosPerSec));
  return buf;
}

Result<int64_t> ParseIsoDate(const std::string& text) {
  int y, m, d;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return ParseError(StrCat("invalid ISO date '", text, "'"));
  }
  return YmdToQDays(y, m, d);
}

Result<int64_t> ParseIsoTime(const std::string& text) {
  // Same shape as the q time literal.
  return ParseQTime(text);
}

Result<int64_t> ParseIsoTimestamp(const std::string& text) {
  size_t space = text.find(' ');
  if (space == std::string::npos) {
    HQ_ASSIGN_OR_RETURN(int64_t days, ParseIsoDate(text));
    return days * kNanosPerDay;
  }
  HQ_ASSIGN_OR_RETURN(int64_t days, ParseIsoDate(text.substr(0, space)));
  std::string tpart = text.substr(space + 1);
  int h = 0, m = 0, s = 0;
  int64_t frac = 0;
  if (std::sscanf(tpart.c_str(), "%d:%d:%d", &h, &m, &s) < 2) {
    return ParseError(StrCat("invalid ISO timestamp '", text, "'"));
  }
  size_t dot = tpart.find('.');
  if (dot != std::string::npos) {
    std::string digits = tpart.substr(dot + 1);
    frac = std::atoll(digits.c_str());
    for (size_t i = digits.size(); i < 9; ++i) frac *= 10;
  }
  return days * kNanosPerDay + static_cast<int64_t>(h) * 3600000000000LL +
         static_cast<int64_t>(m) * 60000000000LL +
         static_cast<int64_t>(s) * kNanosPerSec + frac;
}

}  // namespace hyperq
