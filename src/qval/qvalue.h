#ifndef HYPERQ_QVAL_QVALUE_H_
#define HYPERQ_QVAL_QVALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "qval/qtype.h"

namespace hyperq {

class QValue;

/// A Q table: a flipped column dictionary. Columns are parallel lists of
/// equal length; tables are ordered (row position is meaningful, §2.2).
struct QTable {
  std::vector<std::string> names;
  std::vector<QValue> columns;

  size_t RowCount() const;
  /// Index of the named column, or -1.
  int FindColumn(const std::string& name) const;
};

/// A Q dictionary: parallel key and value lists. A keyed table is a dict
/// whose keys and values are both tables.
struct QDict {
  // Defined out-of-line because QValue is incomplete here.
  QDict();
  QDict(QValue keys, QValue values);
  ~QDict();
  std::unique_ptr<QValue> keys;
  std::unique_ptr<QValue> values;
};

/// A Q function value. Per §4.3 the definition is stored as plain text and
/// re-algebrized on invocation; the interpreter caches its parse under
/// `compiled`.
struct QLambda {
  std::vector<std::string> params;
  std::string source;
  /// Opaque cached parse tree, owned by whichever engine compiled it.
  mutable std::shared_ptr<const void> compiled;
};

/// Dynamically-typed Q value: an atom, a typed list, a general list, a
/// table, a dictionary, or a lambda. Copies are cheap (list payloads are
/// shared); mutation goes through the Build* APIs which copy-on-write.
class QValue {
 public:
  /// Constructs the generic null (::).
  QValue() : type_(QType::kUnary), is_atom_(true) {}

  // -- Atom factories ------------------------------------------------------
  static QValue Bool(bool v);
  static QValue Byte(uint8_t v);
  static QValue Short(int64_t v);
  static QValue Int(int64_t v);
  static QValue Long(int64_t v);
  static QValue Real(double v);
  static QValue Float(double v);
  static QValue Char(char v);
  static QValue Sym(std::string v);
  static QValue Date(int64_t qdays);
  static QValue Time(int64_t millis);
  static QValue Timestamp(int64_t nanos);
  static QValue Timespan(int64_t nanos);
  /// Typed null atom (0N, 0n, `, " ", 0Nd, ...).
  static QValue NullOf(QType type);
  /// Integral-backed atom of the given type with raw payload `v`.
  static QValue IntegralAtom(QType type, int64_t v);
  /// Float-backed atom (real or float).
  static QValue FloatAtom(QType type, double v);

  // -- List factories ------------------------------------------------------
  /// Typed integral-backed list (bool/byte/short/int/long/temporal).
  static QValue IntList(QType elem_type, std::vector<int64_t> v);
  /// Typed float-backed list (real/float).
  static QValue FloatList(QType elem_type, std::vector<double> v);
  /// Char list, i.e. a Q string.
  static QValue Chars(std::string v);
  /// Symbol list.
  static QValue Syms(std::vector<std::string> v);
  /// General (mixed) list.
  static QValue Mixed(std::vector<QValue> v);
  /// Empty typed list.
  static QValue EmptyList(QType elem_type);

  // -- Compound factories --------------------------------------------------
  /// Builds a table; fails unless all columns are lists of equal length and
  /// names are unique.
  static Result<QValue> MakeTable(std::vector<std::string> names,
                                  std::vector<QValue> columns);
  /// Internal fast path: caller guarantees the table invariants.
  static QValue MakeTableUnchecked(std::vector<std::string> names,
                                   std::vector<QValue> columns);
  /// Builds a dictionary; fails unless keys/values have equal count.
  static Result<QValue> MakeDict(QValue keys, QValue values);
  static QValue MakeDictUnchecked(QValue keys, QValue values);
  static QValue MakeLambda(std::vector<std::string> params,
                           std::string source);

  // -- Inspectors ----------------------------------------------------------
  QType type() const { return type_; }
  bool is_atom() const { return is_atom_; }
  bool IsList() const { return !is_atom_ && type_ != QType::kTable &&
                               type_ != QType::kDict; }
  bool IsMixedList() const { return type_ == QType::kMixed && !is_atom_; }
  bool IsTable() const { return type_ == QType::kTable; }
  bool IsDict() const { return type_ == QType::kDict; }
  bool IsLambda() const { return type_ == QType::kLambda; }
  bool IsGenericNull() const { return type_ == QType::kUnary; }
  /// True if this is a dict whose keys and values are both tables.
  bool IsKeyedTable() const;
  /// q's `count`: 1 for atoms, length for lists, rows for tables,
  /// entries for dicts.
  size_t Count() const;
  /// True for a null atom of any type.
  bool IsNullAtom() const;

  // -- Payload access (type-checked by assertion) --------------------------
  int64_t AsInt() const;          ///< Integral-backed atom payload.
  double AsFloat() const;         ///< Float-backed atom payload.
  char AsChar() const;
  const std::string& AsSym() const;
  bool AsBool() const { return AsInt() != 0; }

  const std::vector<int64_t>& Ints() const;
  const std::vector<double>& Floats() const;
  const std::string& CharsView() const;
  const std::vector<std::string>& SymsView() const;
  const std::vector<QValue>& Items() const;
  const QTable& Table() const;
  const QDict& Dict() const;
  const QLambda& Lambda() const;

  /// Element `i` as an atom (or single row dict for tables). Out-of-range
  /// indexes yield the typed null, matching q indexing semantics.
  QValue ElementAt(int64_t i) const;

  /// Appends an element to a copy of this list, promoting to a mixed list
  /// when types differ. Invalid on atoms/tables.
  QValue AppendElement(const QValue& elem) const;

  // -- Semantics -----------------------------------------------------------
  /// q match (~): deep structural equality where nulls compare equal
  /// (Q's 2-valued logic, §2.2).
  static bool Match(const QValue& a, const QValue& b);

  /// Total order used by asc/xasc: nulls sort first; comparable across
  /// numeric types. Only meaningful for scalar atoms.
  static int CompareAtoms(const QValue& a, const QValue& b);

  /// q-console-style rendering (atoms inline, lists space-separated, tables
  /// as column header + rows).
  std::string ToString() const;

  bool operator==(const QValue& other) const { return Match(*this, other); }

 private:
  QType type_ = QType::kUnary;
  bool is_atom_ = true;

  // Atom payloads.
  int64_t int_val_ = 0;
  double float_val_ = 0;
  // `str_val_` holds a symbol atom or is unused.
  std::string str_val_;

  // List payloads (shared; treat as immutable once published).
  std::shared_ptr<std::vector<int64_t>> int_list_;
  std::shared_ptr<std::vector<double>> float_list_;
  std::shared_ptr<std::string> char_list_;
  std::shared_ptr<std::vector<std::string>> sym_list_;
  std::shared_ptr<std::vector<QValue>> mixed_list_;
  std::shared_ptr<QTable> table_;
  std::shared_ptr<QDict> dict_;
  std::shared_ptr<QLambda> lambda_;
};

/// Renders an atom payload of `type` for display.
std::string FormatAtom(QType type, int64_t int_val, double float_val,
                       char char_val, const std::string& sym_val);

}  // namespace hyperq

#endif  // HYPERQ_QVAL_QVALUE_H_
