#include "qval/qtype.h"

namespace hyperq {

const char* QTypeName(QType type) {
  switch (type) {
    case QType::kMixed:
      return "mixed";
    case QType::kBool:
      return "boolean";
    case QType::kByte:
      return "byte";
    case QType::kShort:
      return "short";
    case QType::kInt:
      return "int";
    case QType::kLong:
      return "long";
    case QType::kReal:
      return "real";
    case QType::kFloat:
      return "float";
    case QType::kChar:
      return "char";
    case QType::kSymbol:
      return "symbol";
    case QType::kTimestamp:
      return "timestamp";
    case QType::kDate:
      return "date";
    case QType::kTimespan:
      return "timespan";
    case QType::kTime:
      return "time";
    case QType::kTable:
      return "table";
    case QType::kDict:
      return "dict";
    case QType::kLambda:
      return "lambda";
    case QType::kUnary:
      return "unary";
  }
  return "unknown";
}

char QTypeChar(QType type) {
  switch (type) {
    case QType::kBool:
      return 'b';
    case QType::kByte:
      return 'x';
    case QType::kShort:
      return 'h';
    case QType::kInt:
      return 'i';
    case QType::kLong:
      return 'j';
    case QType::kReal:
      return 'e';
    case QType::kFloat:
      return 'f';
    case QType::kChar:
      return 'c';
    case QType::kSymbol:
      return 's';
    case QType::kTimestamp:
      return 'p';
    case QType::kDate:
      return 'd';
    case QType::kTimespan:
      return 'n';
    case QType::kTime:
      return 't';
    default:
      return ' ';
  }
}

bool IsIntegralBacked(QType type) {
  switch (type) {
    case QType::kBool:
    case QType::kByte:
    case QType::kShort:
    case QType::kInt:
    case QType::kLong:
    case QType::kTimestamp:
    case QType::kDate:
    case QType::kTimespan:
    case QType::kTime:
      return true;
    default:
      return false;
  }
}

bool IsFloatBacked(QType type) {
  return type == QType::kReal || type == QType::kFloat;
}

bool IsTemporal(QType type) {
  switch (type) {
    case QType::kTimestamp:
    case QType::kDate:
    case QType::kTimespan:
    case QType::kTime:
      return true;
    default:
      return false;
  }
}

bool IsScalarType(QType type) {
  return IsIntegralBacked(type) || IsFloatBacked(type) ||
         type == QType::kChar || type == QType::kSymbol;
}

}  // namespace hyperq
