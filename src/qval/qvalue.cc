#include "qval/qvalue.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "common/strings.h"
#include "qval/temporal.h"

namespace hyperq {

size_t QTable::RowCount() const {
  return columns.empty() ? 0 : columns[0].Count();
}

int QTable::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

QDict::QDict() : keys(new QValue()), values(new QValue()) {}
QDict::QDict(QValue k, QValue v)
    : keys(new QValue(std::move(k))), values(new QValue(std::move(v))) {}
QDict::~QDict() = default;

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

QValue QValue::IntegralAtom(QType type, int64_t v) {
  assert(IsIntegralBacked(type));
  QValue q;
  q.type_ = type;
  q.is_atom_ = true;
  q.int_val_ = v;
  return q;
}

QValue QValue::FloatAtom(QType type, double v) {
  assert(IsFloatBacked(type));
  QValue q;
  q.type_ = type;
  q.is_atom_ = true;
  q.float_val_ = v;
  return q;
}

QValue QValue::Bool(bool v) { return IntegralAtom(QType::kBool, v ? 1 : 0); }
QValue QValue::Byte(uint8_t v) { return IntegralAtom(QType::kByte, v); }
QValue QValue::Short(int64_t v) { return IntegralAtom(QType::kShort, v); }
QValue QValue::Int(int64_t v) { return IntegralAtom(QType::kInt, v); }
QValue QValue::Long(int64_t v) { return IntegralAtom(QType::kLong, v); }
QValue QValue::Real(double v) { return FloatAtom(QType::kReal, v); }
QValue QValue::Float(double v) { return FloatAtom(QType::kFloat, v); }

QValue QValue::Char(char v) {
  QValue q;
  q.type_ = QType::kChar;
  q.is_atom_ = true;
  q.int_val_ = static_cast<unsigned char>(v);
  return q;
}

QValue QValue::Sym(std::string v) {
  QValue q;
  q.type_ = QType::kSymbol;
  q.is_atom_ = true;
  q.str_val_ = std::move(v);
  return q;
}

QValue QValue::Date(int64_t qdays) {
  return IntegralAtom(QType::kDate, qdays);
}
QValue QValue::Time(int64_t millis) {
  return IntegralAtom(QType::kTime, millis);
}
QValue QValue::Timestamp(int64_t nanos) {
  return IntegralAtom(QType::kTimestamp, nanos);
}
QValue QValue::Timespan(int64_t nanos) {
  return IntegralAtom(QType::kTimespan, nanos);
}

QValue QValue::NullOf(QType type) {
  if (IsIntegralBacked(type)) {
    // Bool has no null in q; 0b is the closest value.
    if (type == QType::kBool || type == QType::kByte) {
      return IntegralAtom(type, 0);
    }
    return IntegralAtom(type, kNullLong);
  }
  if (IsFloatBacked(type)) {
    return FloatAtom(type, std::nan(""));
  }
  if (type == QType::kChar) return Char(' ');
  if (type == QType::kSymbol) return Sym("");
  return QValue();  // generic null
}

QValue QValue::IntList(QType elem_type, std::vector<int64_t> v) {
  assert(IsIntegralBacked(elem_type));
  QValue q;
  q.type_ = elem_type;
  q.is_atom_ = false;
  q.int_list_ = std::make_shared<std::vector<int64_t>>(std::move(v));
  return q;
}

QValue QValue::FloatList(QType elem_type, std::vector<double> v) {
  assert(IsFloatBacked(elem_type));
  QValue q;
  q.type_ = elem_type;
  q.is_atom_ = false;
  q.float_list_ = std::make_shared<std::vector<double>>(std::move(v));
  return q;
}

QValue QValue::Chars(std::string v) {
  QValue q;
  q.type_ = QType::kChar;
  q.is_atom_ = false;
  q.char_list_ = std::make_shared<std::string>(std::move(v));
  return q;
}

QValue QValue::Syms(std::vector<std::string> v) {
  QValue q;
  q.type_ = QType::kSymbol;
  q.is_atom_ = false;
  q.sym_list_ = std::make_shared<std::vector<std::string>>(std::move(v));
  return q;
}

QValue QValue::Mixed(std::vector<QValue> v) {
  QValue q;
  q.type_ = QType::kMixed;
  q.is_atom_ = false;
  q.mixed_list_ = std::make_shared<std::vector<QValue>>(std::move(v));
  return q;
}

QValue QValue::EmptyList(QType elem_type) {
  if (IsIntegralBacked(elem_type)) return IntList(elem_type, {});
  if (IsFloatBacked(elem_type)) return FloatList(elem_type, {});
  if (elem_type == QType::kChar) return Chars("");
  if (elem_type == QType::kSymbol) return Syms({});
  return Mixed({});
}

Result<QValue> QValue::MakeTable(std::vector<std::string> names,
                                 std::vector<QValue> columns) {
  if (names.size() != columns.size()) {
    return InvalidArgument("table column name/value count mismatch");
  }
  std::unordered_set<std::string> seen;
  for (const auto& n : names) {
    if (!seen.insert(n).second) {
      return InvalidArgument(StrCat("duplicate column name '", n, "'"));
    }
  }
  size_t rows = columns.empty() ? 0 : columns[0].Count();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].is_atom() && !columns[i].IsGenericNull()) {
      return InvalidArgument(
          StrCat("table column '", names[i], "' must be a list"));
    }
    if (columns[i].Count() != rows) {
      return InvalidArgument(StrCat("column '", names[i], "' has length ",
                                    columns[i].Count(), ", expected ", rows));
    }
  }
  return MakeTableUnchecked(std::move(names), std::move(columns));
}

QValue QValue::MakeTableUnchecked(std::vector<std::string> names,
                                  std::vector<QValue> columns) {
  QValue q;
  q.type_ = QType::kTable;
  q.is_atom_ = false;
  q.table_ = std::make_shared<QTable>();
  q.table_->names = std::move(names);
  q.table_->columns = std::move(columns);
  return q;
}

Result<QValue> QValue::MakeDict(QValue keys, QValue values) {
  if (keys.Count() != values.Count()) {
    return InvalidArgument(StrCat("dict length mismatch: ", keys.Count(),
                                  " keys vs ", values.Count(), " values"));
  }
  return MakeDictUnchecked(std::move(keys), std::move(values));
}

QValue QValue::MakeDictUnchecked(QValue keys, QValue values) {
  QValue q;
  q.type_ = QType::kDict;
  q.is_atom_ = false;
  q.dict_ = std::make_shared<QDict>(std::move(keys), std::move(values));
  return q;
}

QValue QValue::MakeLambda(std::vector<std::string> params,
                          std::string source) {
  QValue q;
  q.type_ = QType::kLambda;
  q.is_atom_ = true;
  q.lambda_ = std::make_shared<QLambda>();
  q.lambda_->params = std::move(params);
  q.lambda_->source = std::move(source);
  return q;
}

// ---------------------------------------------------------------------------
// Inspectors
// ---------------------------------------------------------------------------

bool QValue::IsKeyedTable() const {
  return IsDict() && dict_->keys->IsTable() && dict_->values->IsTable();
}

size_t QValue::Count() const {
  if (is_atom_) return 1;
  switch (type_) {
    case QType::kMixed:
      return mixed_list_->size();
    case QType::kChar:
      return char_list_->size();
    case QType::kSymbol:
      return sym_list_->size();
    case QType::kTable:
      return table_->RowCount();
    case QType::kDict:
      return dict_->keys->Count();
    default:
      if (IsIntegralBacked(type_)) return int_list_->size();
      if (IsFloatBacked(type_)) return float_list_->size();
      return 0;
  }
}

bool QValue::IsNullAtom() const {
  if (!is_atom_) return false;
  if (type_ == QType::kUnary) return true;
  if (IsIntegralBacked(type_)) {
    if (type_ == QType::kBool || type_ == QType::kByte) return false;
    return int_val_ == kNullLong;
  }
  if (IsFloatBacked(type_)) return std::isnan(float_val_);
  if (type_ == QType::kChar) return int_val_ == ' ';
  if (type_ == QType::kSymbol) return str_val_.empty();
  return false;
}

int64_t QValue::AsInt() const {
  assert(is_atom_ && IsIntegralBacked(type_));
  return int_val_;
}

double QValue::AsFloat() const {
  assert(is_atom_);
  if (IsIntegralBacked(type_)) {
    return int_val_ == kNullLong ? std::nan("")
                                 : static_cast<double>(int_val_);
  }
  return float_val_;
}

char QValue::AsChar() const {
  assert(is_atom_ && type_ == QType::kChar);
  return static_cast<char>(int_val_);
}

const std::string& QValue::AsSym() const {
  assert(is_atom_ && type_ == QType::kSymbol);
  return str_val_;
}

const std::vector<int64_t>& QValue::Ints() const {
  assert(!is_atom_ && int_list_);
  return *int_list_;
}

const std::vector<double>& QValue::Floats() const {
  assert(!is_atom_ && float_list_);
  return *float_list_;
}

const std::string& QValue::CharsView() const {
  assert(!is_atom_ && char_list_);
  return *char_list_;
}

const std::vector<std::string>& QValue::SymsView() const {
  assert(!is_atom_ && sym_list_);
  return *sym_list_;
}

const std::vector<QValue>& QValue::Items() const {
  assert(!is_atom_ && mixed_list_);
  return *mixed_list_;
}

const QTable& QValue::Table() const {
  assert(table_);
  return *table_;
}

const QDict& QValue::Dict() const {
  assert(dict_);
  return *dict_;
}

const QLambda& QValue::Lambda() const {
  assert(lambda_);
  return *lambda_;
}

QValue QValue::ElementAt(int64_t i) const {
  if (is_atom_) return *this;
  bool oob = i < 0 || static_cast<size_t>(i) >= Count();
  switch (type_) {
    case QType::kMixed:
      return oob ? QValue() : (*mixed_list_)[i];
    case QType::kChar:
      return oob ? NullOf(QType::kChar) : Char((*char_list_)[i]);
    case QType::kSymbol:
      return oob ? NullOf(QType::kSymbol) : Sym((*sym_list_)[i]);
    case QType::kTable: {
      // Row indexing yields a dict column-name -> atom.
      if (oob) {
        std::vector<QValue> nulls;
        for (const auto& col : table_->columns) {
          nulls.push_back(col.ElementAt(-1));
        }
        return MakeDictUnchecked(Syms(table_->names), Mixed(std::move(nulls)));
      }
      std::vector<QValue> vals;
      for (const auto& col : table_->columns) vals.push_back(col.ElementAt(i));
      return MakeDictUnchecked(Syms(table_->names), Mixed(std::move(vals)));
    }
    default:
      if (IsIntegralBacked(type_)) {
        return oob ? NullOf(type_) : IntegralAtom(type_, (*int_list_)[i]);
      }
      if (IsFloatBacked(type_)) {
        return oob ? NullOf(type_) : FloatAtom(type_, (*float_list_)[i]);
      }
      return QValue();
  }
}

QValue QValue::AppendElement(const QValue& elem) const {
  assert(!is_atom_);
  // Same-typed atom appends stay typed; anything else degrades to mixed.
  if (elem.is_atom() && elem.type_ == type_ && type_ != QType::kMixed) {
    if (IsIntegralBacked(type_)) {
      std::vector<int64_t> v = *int_list_;
      v.push_back(elem.int_val_);
      return IntList(type_, std::move(v));
    }
    if (IsFloatBacked(type_)) {
      std::vector<double> v = *float_list_;
      v.push_back(elem.float_val_);
      return FloatList(type_, std::move(v));
    }
    if (type_ == QType::kChar) {
      std::string v = *char_list_;
      v.push_back(static_cast<char>(elem.int_val_));
      return Chars(std::move(v));
    }
    if (type_ == QType::kSymbol) {
      std::vector<std::string> v = *sym_list_;
      v.push_back(elem.str_val_);
      return Syms(std::move(v));
    }
  }
  std::vector<QValue> items;
  size_t n = Count();
  items.reserve(n + 1);
  for (size_t i = 0; i < n; ++i) items.push_back(ElementAt(i));
  items.push_back(elem);
  return Mixed(std::move(items));
}

// ---------------------------------------------------------------------------
// Match / compare
// ---------------------------------------------------------------------------

namespace {

bool FloatsMatch(double a, double b) {
  // Q 2-valued logic: nulls (NaN) compare equal (§2.2).
  if (std::isnan(a) && std::isnan(b)) return true;
  return a == b;
}

}  // namespace

bool QValue::Match(const QValue& a, const QValue& b) {
  if (a.type_ != b.type_ || a.is_atom_ != b.is_atom_) return false;
  if (a.is_atom_) {
    switch (a.type_) {
      case QType::kUnary:
        return true;
      case QType::kSymbol:
        return a.str_val_ == b.str_val_;
      case QType::kLambda:
        return a.lambda_->source == b.lambda_->source;
      default:
        if (IsFloatBacked(a.type_)) {
          return FloatsMatch(a.float_val_, b.float_val_);
        }
        return a.int_val_ == b.int_val_;
    }
  }
  if (a.type_ == QType::kTable) {
    const QTable& ta = *a.table_;
    const QTable& tb = *b.table_;
    if (ta.names != tb.names) return false;
    for (size_t i = 0; i < ta.columns.size(); ++i) {
      if (!Match(ta.columns[i], tb.columns[i])) return false;
    }
    return true;
  }
  if (a.type_ == QType::kDict) {
    return Match(*a.dict_->keys, *b.dict_->keys) &&
           Match(*a.dict_->values, *b.dict_->values);
  }
  if (a.Count() != b.Count()) return false;
  switch (a.type_) {
    case QType::kMixed:
      for (size_t i = 0; i < a.mixed_list_->size(); ++i) {
        if (!Match((*a.mixed_list_)[i], (*b.mixed_list_)[i])) return false;
      }
      return true;
    case QType::kChar:
      return *a.char_list_ == *b.char_list_;
    case QType::kSymbol:
      return *a.sym_list_ == *b.sym_list_;
    default:
      if (IsFloatBacked(a.type_)) {
        for (size_t i = 0; i < a.float_list_->size(); ++i) {
          if (!FloatsMatch((*a.float_list_)[i], (*b.float_list_)[i])) {
            return false;
          }
        }
        return true;
      }
      return *a.int_list_ == *b.int_list_;
  }
}

int QValue::CompareAtoms(const QValue& a, const QValue& b) {
  // Nulls sort before everything (q asc semantics).
  bool an = a.IsNullAtom();
  bool bn = b.IsNullAtom();
  if (an || bn) return an == bn ? 0 : (an ? -1 : 1);
  if (a.type_ == QType::kSymbol && b.type_ == QType::kSymbol) {
    return a.str_val_.compare(b.str_val_);
  }
  if (a.type_ == QType::kChar && b.type_ == QType::kChar) {
    return static_cast<int>(a.int_val_) - static_cast<int>(b.int_val_);
  }
  // Numeric / temporal comparison across backing representations.
  double fa = a.AsFloat();
  double fb = b.AsFloat();
  if (IsIntegralBacked(a.type_) && IsIntegralBacked(b.type_)) {
    if (a.int_val_ < b.int_val_) return -1;
    if (a.int_val_ > b.int_val_) return 1;
    return 0;
  }
  if (fa < fb) return -1;
  if (fa > fb) return 1;
  return 0;
}

// ---------------------------------------------------------------------------
// Formatting
// ---------------------------------------------------------------------------

std::string FormatAtom(QType type, int64_t int_val, double float_val,
                       char char_val, const std::string& sym_val) {
  switch (type) {
    case QType::kBool:
      return int_val ? "1b" : "0b";
    case QType::kByte: {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "0x%02x",
                    static_cast<unsigned>(int_val & 0xff));
      return buf;
    }
    case QType::kShort:
      return int_val == kNullLong ? "0Nh" : StrCat(int_val, "h");
    case QType::kInt:
      return int_val == kNullLong ? "0Ni" : StrCat(int_val, "i");
    case QType::kLong:
      return int_val == kNullLong ? "0N" : StrCat(int_val);
    case QType::kReal:
    case QType::kFloat: {
      if (std::isnan(float_val)) return "0n";
      if (std::isinf(float_val)) return float_val > 0 ? "0w" : "-0w";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", float_val);
      std::string s = buf;
      if (type == QType::kReal) s += "e";
      return s;
    }
    case QType::kChar:
      return StrCat("\"", std::string(1, char_val), "\"");
    case QType::kSymbol:
      return StrCat("`", sym_val);
    case QType::kTimestamp:
      return FormatQTimestamp(int_val);
    case QType::kDate:
      return FormatQDate(int_val);
    case QType::kTimespan:
      return FormatQTimespan(int_val);
    case QType::kTime:
      return FormatQTime(int_val);
    case QType::kUnary:
      return "::";
    default:
      return "?";
  }
}

namespace {

std::string FormatListElems(const QValue& v, const char* sep) {
  std::string out;
  for (size_t i = 0; i < v.Count(); ++i) {
    if (i) out += sep;
    out += v.ElementAt(i).ToString();
  }
  return out;
}

}  // namespace

std::string QValue::ToString() const {
  if (is_atom_) {
    if (type_ == QType::kLambda) return lambda_->source;
    return FormatAtom(type_, int_val_, float_val_,
                      static_cast<char>(int_val_), str_val_);
  }
  switch (type_) {
    case QType::kChar:
      return StrCat("\"", *char_list_, "\"");
    case QType::kSymbol: {
      if (sym_list_->empty()) return "`$()";
      std::string out;
      for (const auto& s : *sym_list_) out += StrCat("`", s);
      return out;
    }
    case QType::kMixed:
      return StrCat("(", FormatListElems(*this, ";"), ")");
    case QType::kTable: {
      std::string out = Join(table_->names, " ") + "\n";
      out += std::string(out.size() - 1, '-') + "\n";
      size_t rows = table_->RowCount();
      for (size_t r = 0; r < rows && r < 50; ++r) {
        std::vector<std::string> cells;
        for (const auto& col : table_->columns) {
          cells.push_back(col.ElementAt(r).ToString());
        }
        out += Join(cells, " ") + "\n";
      }
      if (rows > 50) out += StrCat("... (", rows, " rows)\n");
      return out;
    }
    case QType::kDict: {
      // Keyed tables render like q's console: key columns | value columns.
      if (IsKeyedTable()) {
        const QTable& kt = dict_->keys->Table();
        const QTable& vt = dict_->values->Table();
        std::string header =
            Join(kt.names, " ") + " | " + Join(vt.names, " ");
        std::string out = header + "\n" +
                          std::string(header.size(), '-') + "\n";
        size_t rows = kt.RowCount();
        for (size_t r = 0; r < rows && r < 50; ++r) {
          std::vector<std::string> kcells, vcells;
          for (const auto& col : kt.columns) {
            kcells.push_back(col.ElementAt(r).ToString());
          }
          for (const auto& col : vt.columns) {
            vcells.push_back(col.ElementAt(r).ToString());
          }
          out += Join(kcells, " ") + " | " + Join(vcells, " ") + "\n";
        }
        if (rows > 50) out += StrCat("... (", rows, " rows)\n");
        return out;
      }
      std::string out;
      size_t n = dict_->keys->Count();
      for (size_t i = 0; i < n; ++i) {
        out += StrCat(dict_->keys->ElementAt(i).ToString(), "| ",
                      dict_->values->ElementAt(i).ToString(), "\n");
      }
      return out;
    }
    default: {
      if (Count() == 0) return StrCat("`", QTypeName(type_), "$()");
      if (Count() == 1) {
        return StrCat("enlist ", ElementAt(0).ToString());
      }
      return FormatListElems(*this, " ");
    }
  }
}

}  // namespace hyperq
