#ifndef HYPERQ_QVAL_TEMPORAL_H_
#define HYPERQ_QVAL_TEMPORAL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace hyperq {

/// Calendar helpers for the Q temporal types. Dates are stored as days since
/// the Q epoch 2000.01.01; times as milliseconds since midnight; timestamps
/// and timespans as nanoseconds.

/// Days since 2000.01.01 for the given calendar date (proleptic Gregorian).
int64_t YmdToQDays(int year, int month, int day);

/// Inverse of YmdToQDays.
void QDaysToYmd(int64_t qdays, int* year, int* month, int* day);

/// Formats a date value as q prints it: 2016.06.26.
std::string FormatQDate(int64_t qdays);

/// Formats a time value (ms since midnight) as 09:30:00.000.
std::string FormatQTime(int64_t millis);

/// Formats a timestamp (ns since Q epoch) as 2016.06.26D09:30:00.000000000.
std::string FormatQTimestamp(int64_t nanos);

/// Formats a timespan (ns) as 0D00:00:01.000000000.
std::string FormatQTimespan(int64_t nanos);

/// Parses "YYYY.MM.DD" into days since Q epoch.
Result<int64_t> ParseQDate(const std::string& text);

/// Parses "HH:MM[:SS[.mmm]]" into ms since midnight.
Result<int64_t> ParseQTime(const std::string& text);

/// Parses "YYYY.MM.DDDHH:MM:SS[.nnnnnnnnn]" into ns since Q epoch.
Result<int64_t> ParseQTimestamp(const std::string& text);

/// ISO forms used on the SQL side: 2016-06-26, 09:30:00.000,
/// 2016-06-26 09:30:00.000000000.
std::string FormatIsoDate(int64_t qdays);
std::string FormatIsoTime(int64_t millis);
std::string FormatIsoTimestamp(int64_t nanos);
Result<int64_t> ParseIsoDate(const std::string& text);
Result<int64_t> ParseIsoTime(const std::string& text);
Result<int64_t> ParseIsoTimestamp(const std::string& text);

}  // namespace hyperq

#endif  // HYPERQ_QVAL_TEMPORAL_H_
