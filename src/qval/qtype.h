#ifndef HYPERQ_QVAL_QTYPE_H_
#define HYPERQ_QVAL_QTYPE_H_

#include <cstdint>
#include <string>

namespace hyperq {

/// Q datatype codes. Values follow the kdb+ type numbering (positive codes
/// denote lists of the type; atoms are the negated code on the wire). The
/// subset covers the types exercised by financial market data: integral,
/// floating, character, symbol, and the temporal family.
enum class QType : int8_t {
  kMixed = 0,      ///< General (heterogeneous) list.
  kBool = 1,       ///< 1b / 0b.
  kByte = 4,       ///< 0x00-0xff.
  kShort = 5,      ///< 16-bit integer (suffix h).
  kInt = 6,        ///< 32-bit integer (suffix i).
  kLong = 7,       ///< 64-bit integer (suffix j, default integral).
  kReal = 8,       ///< 32-bit float (suffix e).
  kFloat = 9,      ///< 64-bit float (default floating).
  kChar = 10,      ///< "c"; a char list is a string.
  kSymbol = 11,    ///< `sym, interned name.
  kTimestamp = 12, ///< nanoseconds since 2000.01.01D00:00.
  kDate = 14,      ///< days since 2000.01.01.
  kTimespan = 16,  ///< nanoseconds duration.
  kTime = 19,      ///< milliseconds since midnight.
  kTable = 98,     ///< Flip of a column dictionary.
  kDict = 99,      ///< Keys/values association; keyed tables are dicts.
  kLambda = 100,   ///< {[x;y] ...} function value.
  kUnary = 101,    ///< (::) generic null / identity.
};

/// Human-readable type name, e.g. "long", "symbol".
const char* QTypeName(QType type);

/// Single-character type code as shown by q's `meta`, e.g. 'j' for long.
char QTypeChar(QType type);

/// True for bool/byte/short/int/long/temporal types stored as int64.
bool IsIntegralBacked(QType type);
/// True for real/float.
bool IsFloatBacked(QType type);
/// True for the temporal family (timestamp/date/timespan/time).
bool IsTemporal(QType type);
/// True for any type usable as a list element (scalar data types).
bool IsScalarType(QType type);

/// Q null sentinels for integral-backed types (normalized to int64 storage).
inline constexpr int64_t kNullLong = INT64_MIN;
/// Q integral infinity 0W (long).
inline constexpr int64_t kInfLong = INT64_MAX;

/// Q epoch (2000.01.01) expressed as days since the Unix epoch.
inline constexpr int64_t kQEpochDaysFromUnix = 10957;

}  // namespace hyperq

#endif  // HYPERQ_QVAL_QTYPE_H_
