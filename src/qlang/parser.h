#ifndef HYPERQ_QLANG_PARSER_H_
#define HYPERQ_QLANG_PARSER_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "qlang/ast.h"
#include "qlang/token.h"

namespace hyperq {

/// Recursive-descent parser for the Q language subset.
///
/// Q expressions evaluate strictly right-to-left with no operator precedence
/// (§2.2); the grammar here is correspondingly right-recursive. The parser is
/// deliberately lightweight (§3.2.1): it resolves no names and infers no
/// types — `trades` may be a table, a list or a scalar; the binder decides.
class Parser {
 public:
  /// Parses a whole query text into a list of top-level statements.
  static Result<std::vector<AstPtr>> ParseProgram(const std::string& text);

  /// Parses a single expression (convenience for tests).
  static Result<AstPtr> ParseExpression(const std::string& text);

  /// Names that act as infix dyadic verbs, e.g. `x in y`, `t1 lj t2`.
  static bool IsInfixKeyword(const std::string& name);
  /// Names that act as postfix adverbs: each, over, scan, prior, peach.
  static bool IsAdverbKeyword(const std::string& name);
  /// The select/exec/update/delete template keywords.
  static bool IsQueryKeyword(const std::string& name);

 private:
  /// Expression-termination context. Select-template parsing stops column
  /// expressions at top-level commas and at the by/from/where keywords;
  /// parenthesized subexpressions reset to a neutral context.
  struct Context {
    std::set<std::string> stop_words;
    bool stop_comma = false;
  };

  Parser(const std::string& text, std::vector<Token> tokens)
      : text_(text), tokens_(std::move(tokens)) {}

  Result<std::vector<AstPtr>> Program();
  Result<AstPtr> Statement();
  Result<AstPtr> Expr();
  Result<AstPtr> Noun();
  Result<AstPtr> Factor();
  Result<AstPtr> ParseLambda();
  Result<AstPtr> ParseQuery(QueryKind kind);
  Result<AstPtr> ParseParenOrList();
  Result<AstPtr> ParseCond();
  /// Parses `[name:] expr` items separated by `separator` (comma in
  /// select/by lists, semicolon in table literals).
  Result<std::vector<NamedExpr>> ParseNamedExprList(
      TokenKind separator = TokenKind::kOperator);
  Result<std::vector<AstPtr>> ParseBracketArgs();

  const Token& Peek(size_t ahead = 0) const;
  const Token& Consume();
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool CheckIdent(const std::string& name) const;
  Status Expect(TokenKind kind, const std::string& what);
  Status ErrorHere(const std::string& message) const;

  /// True if the current token terminates an expression in the current
  /// context (stop word, top-level comma, closing bracket, semicolon, EOF).
  bool AtExprEnd() const;
  /// True if the current token can begin a noun (for juxtaposition).
  bool StartsNoun() const;

  const Context& Ctx() const { return contexts_.back(); }

  const std::string& text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<Context> contexts_{Context{}};
};

}  // namespace hyperq

#endif  // HYPERQ_QLANG_PARSER_H_
