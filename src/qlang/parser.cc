#include "qlang/parser.h"

#include <unordered_set>

#include "common/strings.h"
#include "qlang/lexer.h"

namespace hyperq {

namespace {

const std::unordered_set<std::string>& InfixKeywords() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "in",    "within", "like",  "mod",   "div",  "xbar",  "xasc",
      "xdesc", "xkey",   "xcol",  "xcols", "lj",   "ij",    "uj",
      "pj",    "cross",  "union", "inter", "except", "wavg", "wsum",
      "mavg",  "msum",   "mmax",  "mmin",  "mcount", "xprev", "bin",
      "binr",  "vs",     "sv",    "insert", "upsert", "set",  "and",
      "cor",   "cov",   "fby",
      "or",    "asof",
  };
  return *kSet;
}

const std::unordered_set<std::string>& AdverbKeywords() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "each", "over", "scan", "prior", "peach"};
  return *kSet;
}

std::string AdverbKeywordToSymbol(const std::string& name) {
  if (name == "each" || name == "peach") return "'";
  if (name == "over") return "/";
  if (name == "scan") return "\\";
  if (name == "prior") return "':";
  return name;
}

// Merges juxtaposed numeric literal tokens into one vector literal.
// q applies the type suffix of the *last* number to the whole vector:
// `0 1 1 0b` is a bool vector and `1 2 3h` a short vector; any float makes
// the vector float.
QValue MergeNumberLiterals(const std::vector<QValue>& atoms) {
  bool all_integral = true;
  bool all_numeric = true;
  for (const auto& a : atoms) {
    if (!IsIntegralBacked(a.type())) all_integral = false;
    if (!IsIntegralBacked(a.type()) && !IsFloatBacked(a.type())) {
      all_numeric = false;
    }
  }
  if (all_integral) {
    QType last = atoms.back().type();
    // The trailing suffix dominates when the others are default longs.
    QType target = last;
    for (const auto& a : atoms) {
      if (a.type() != last && a.type() != QType::kLong) {
        target = QType::kLong;  // genuinely mixed integral types
        break;
      }
    }
    std::vector<int64_t> v;
    v.reserve(atoms.size());
    for (const auto& a : atoms) v.push_back(a.AsInt());
    return QValue::IntList(target, std::move(v));
  }
  if (all_numeric) {
    std::vector<double> v;
    v.reserve(atoms.size());
    for (const auto& a : atoms) v.push_back(a.AsFloat());
    return QValue::FloatList(QType::kFloat, std::move(v));
  }
  return QValue::Mixed(atoms);
}

}  // namespace

bool Parser::IsInfixKeyword(const std::string& name) {
  return InfixKeywords().count(name) > 0;
}

bool Parser::IsAdverbKeyword(const std::string& name) {
  return AdverbKeywords().count(name) > 0;
}

bool Parser::IsQueryKeyword(const std::string& name) {
  return name == "select" || name == "exec" || name == "update" ||
         name == "delete";
}

Result<std::vector<AstPtr>> Parser::ParseProgram(const std::string& text) {
  Lexer lexer(text);
  HQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(text, std::move(tokens));
  return parser.Program();
}

Result<AstPtr> Parser::ParseExpression(const std::string& text) {
  HQ_ASSIGN_OR_RETURN(std::vector<AstPtr> stmts, ParseProgram(text));
  if (stmts.size() != 1) {
    return ParseError(StrCat("expected a single expression, found ",
                             stmts.size(), " statements"));
  }
  return stmts[0];
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // EOF token
  return tokens_[i];
}

const Token& Parser::Consume() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::CheckIdent(const std::string& name) const {
  return Peek().kind == TokenKind::kIdent && Peek().text == name;
}

Status Parser::Expect(TokenKind kind, const std::string& what) {
  if (Peek().kind != kind) {
    return ErrorHere(StrCat("expected ", what, ", found ",
                            TokenKindName(Peek().kind),
                            Peek().text.empty() ? "" : " '" + Peek().text + "'"));
  }
  Consume();
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  return ParseError(
      StrCat("q parser at ", t.loc.line, ":", t.loc.column, ": ", message));
}

bool Parser::AtExprEnd() const {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kEof:
    case TokenKind::kSemi:
    case TokenKind::kRParen:
    case TokenKind::kRBracket:
    case TokenKind::kRBrace:
      return true;
    case TokenKind::kOperator:
      return t.text == "," && Ctx().stop_comma;
    case TokenKind::kIdent:
      return Ctx().stop_words.count(t.text) > 0;
    default:
      return false;
  }
}

bool Parser::StartsNoun() const {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kNumber:
    case TokenKind::kSymbolLit:
    case TokenKind::kString:
    case TokenKind::kLParen:
    case TokenKind::kLBrace:
      return true;
    case TokenKind::kIdent:
      return Ctx().stop_words.count(t.text) == 0 &&
             !IsInfixKeyword(t.text) && !IsAdverbKeyword(t.text);
    default:
      return false;
  }
}

Result<std::vector<AstPtr>> Parser::Program() {
  std::vector<AstPtr> stmts;
  while (!Check(TokenKind::kEof)) {
    if (Check(TokenKind::kSemi)) {
      Consume();
      continue;
    }
    HQ_ASSIGN_OR_RETURN(AstPtr stmt, Statement());
    stmts.push_back(std::move(stmt));
    if (!Check(TokenKind::kEof)) {
      HQ_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';' between statements"));
    }
  }
  return stmts;
}

Result<AstPtr> Parser::Statement() {
  // Leading ':' is an explicit return (only meaningful inside lambdas).
  if (Check(TokenKind::kColon)) {
    SourceLoc loc = Peek().loc;
    Consume();
    HQ_ASSIGN_OR_RETURN(AstPtr value, Expr());
    return MakeReturn(std::move(value), loc);
  }
  return Expr();
}

Result<AstPtr> Parser::Expr() {
  HQ_ASSIGN_OR_RETURN(AstPtr left, Noun());
  if (AtExprEnd()) return left;

  const Token& t = Peek();

  // Assignment: name: expr / name:: expr.
  if ((t.kind == TokenKind::kColon || t.kind == TokenKind::kDoubleColon)) {
    if (left->kind != AstKind::kVarRef) {
      return ErrorHere("left side of assignment must be a name");
    }
    bool global = t.kind == TokenKind::kDoubleColon;
    SourceLoc loc = t.loc;
    Consume();
    HQ_ASSIGN_OR_RETURN(AstPtr value, Expr());
    return MakeAssign(left->name, std::move(value), global, loc);
  }

  // Dyadic operator (right-to-left: rhs re-enters Expr).
  if (t.kind == TokenKind::kOperator) {
    std::string op = t.text;
    SourceLoc loc = t.loc;
    Consume();
    // Adverbed dyad: x +' y, x +/ y.
    if (Check(TokenKind::kAdverb)) {
      std::string adv = Consume().text;
      AstPtr fn = MakeAdverbed(adv, MakeFnRef(op, loc), loc);
      HQ_ASSIGN_OR_RETURN(AstPtr rhs, Expr());
      return MakeApply(std::move(fn), {std::move(left), std::move(rhs)}, loc);
    }
    HQ_ASSIGN_OR_RETURN(AstPtr rhs, Expr());
    return MakeDyad(op, std::move(left), std::move(rhs), loc);
  }

  // Infix named verb: x in y, t1 lj t2, price wavg size.
  if (t.kind == TokenKind::kIdent && IsInfixKeyword(t.text) &&
      Ctx().stop_words.count(t.text) == 0) {
    std::string op = t.text;
    SourceLoc loc = t.loc;
    Consume();
    HQ_ASSIGN_OR_RETURN(AstPtr rhs, Expr());
    return MakeDyad(op, std::move(left), std::move(rhs), loc);
  }

  // Postfix adverb keyword: f each x, f over x.
  if (t.kind == TokenKind::kIdent && IsAdverbKeyword(t.text)) {
    SourceLoc loc = t.loc;
    std::string adv = AdverbKeywordToSymbol(Consume().text);
    AstPtr fn = MakeAdverbed(adv, std::move(left), loc);
    if (AtExprEnd()) return fn;
    HQ_ASSIGN_OR_RETURN(AstPtr rhs, Expr());
    return MakeApply(std::move(fn), {std::move(rhs)}, loc);
  }

  // Infix lambda (possibly adverbed): `x {x+y} y`, `x f\: y`. The verb
  // noun is parsed first; if more expression follows, the lambda applies
  // infix between left and right.
  if (t.kind == TokenKind::kLBrace) {
    SourceLoc loc = t.loc;
    HQ_ASSIGN_OR_RETURN(AstPtr verb, Noun());
    if ((verb->kind == AstKind::kLambda ||
         verb->kind == AstKind::kAdverbed) &&
        !AtExprEnd() && StartsNoun()) {
      HQ_ASSIGN_OR_RETURN(AstPtr rhs, Expr());
      return MakeApply(std::move(verb), {std::move(left), std::move(rhs)},
                       loc);
    }
    // Otherwise plain juxtaposition with the parsed noun.
    return MakeApply(std::move(left), {std::move(verb)}, loc);
  }

  // Juxtaposition: `count trades` (application) or `list 2` (indexing);
  // which one is a runtime question (dynamic typing, §3.2.1).
  if (StartsNoun()) {
    SourceLoc loc = t.loc;
    HQ_ASSIGN_OR_RETURN(AstPtr rhs, Expr());
    return MakeApply(std::move(left), {std::move(rhs)}, loc);
  }

  return left;
}

Result<AstPtr> Parser::Noun() {
  HQ_ASSIGN_OR_RETURN(AstPtr base, Factor());
  while (true) {
    if (Check(TokenKind::kLBracket)) {
      SourceLoc loc = Peek().loc;
      HQ_ASSIGN_OR_RETURN(std::vector<AstPtr> args, ParseBracketArgs());
      base = MakeApply(std::move(base), std::move(args), loc);
      continue;
    }
    if (Check(TokenKind::kAdverb)) {
      SourceLoc loc = Peek().loc;
      std::string adv = Consume().text;
      base = MakeAdverbed(adv, std::move(base), loc);
      continue;
    }
    break;
  }
  return base;
}

Result<std::vector<AstPtr>> Parser::ParseBracketArgs() {
  HQ_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "'['"));
  contexts_.push_back(Context{});
  std::vector<AstPtr> args;
  if (!Check(TokenKind::kRBracket)) {
    while (true) {
      if (Check(TokenKind::kSemi)) {
        // Elided argument (projection), e.g. f[;2]. Represent as generic
        // null literal.
        args.push_back(MakeLiteral(QValue(), Peek().loc));
        Consume();
        continue;
      }
      HQ_ASSIGN_OR_RETURN(AstPtr arg, Expr());
      args.push_back(std::move(arg));
      if (Check(TokenKind::kSemi)) {
        Consume();
        continue;
      }
      break;
    }
  }
  contexts_.pop_back();
  HQ_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
  return args;
}

Result<AstPtr> Parser::Factor() {
  const Token& t = Peek();
  SourceLoc loc = t.loc;
  switch (t.kind) {
    case TokenKind::kNumber: {
      std::vector<QValue> atoms;
      atoms.push_back(Consume().value);
      while (Check(TokenKind::kNumber)) atoms.push_back(Consume().value);
      if (atoms.size() == 1) return MakeLiteral(atoms[0], loc);
      // A run of juxtaposed numbers is a vector literal; a run containing a
      // list (e.g. two bool vectors) degrades to a mixed list.
      bool all_atoms = true;
      for (const auto& a : atoms) all_atoms &= a.is_atom();
      if (!all_atoms) return MakeLiteral(QValue::Mixed(atoms), loc);
      return MakeLiteral(MergeNumberLiterals(atoms), loc);
    }
    case TokenKind::kSymbolLit:
    case TokenKind::kString:
      return MakeLiteral(Consume().value, loc);
    case TokenKind::kIdent: {
      if (IsQueryKeyword(t.text)) {
        QueryKind kind = QueryKind::kSelect;
        if (t.text == "exec") kind = QueryKind::kExec;
        if (t.text == "update") kind = QueryKind::kUpdate;
        if (t.text == "delete") kind = QueryKind::kDelete;
        Consume();
        return ParseQuery(kind);
      }
      return MakeVarRef(Consume().text, loc);
    }
    case TokenKind::kLParen:
      return ParseParenOrList();
    case TokenKind::kLBrace:
      return ParseLambda();
    case TokenKind::kDoubleColon:
      Consume();
      return MakeLiteral(QValue(), loc);  // (::) generic null / identity
    case TokenKind::kOperator: {
      if (t.text == "$" && Peek(1).kind == TokenKind::kLBracket) {
        Consume();
        return ParseCond();
      }
      // A verb in value position: `+`, used as (+/) x or +[1;2].
      return MakeFnRef(Consume().text, loc);
    }
    default:
      return ErrorHere(StrCat("unexpected ", TokenKindName(t.kind),
                              t.text.empty() ? "" : " '" + t.text + "'",
                              " at start of expression"));
  }
}

Result<AstPtr> Parser::ParseCond() {
  SourceLoc loc = Peek().loc;
  HQ_ASSIGN_OR_RETURN(std::vector<AstPtr> branches, ParseBracketArgs());
  if (branches.size() < 3) {
    return ErrorHere("$[c;t;f] conditional requires at least 3 arguments");
  }
  return MakeCond(std::move(branches), loc);
}

Result<AstPtr> Parser::ParseParenOrList() {
  SourceLoc loc = Peek().loc;
  HQ_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
  contexts_.push_back(Context{});

  // Empty list ().
  if (Check(TokenKind::kRParen)) {
    Consume();
    contexts_.pop_back();
    return MakeLiteral(QValue::Mixed({}), loc);
  }

  // Table literal: ([keycols] col:expr; ...).
  if (Check(TokenKind::kLBracket)) {
    Consume();
    auto node = std::make_shared<AstNode>();
    node->kind = AstKind::kTableLit;
    node->loc = loc;
    if (!Check(TokenKind::kRBracket)) {
      HQ_ASSIGN_OR_RETURN(node->key_cols,
                          ParseNamedExprList(TokenKind::kSemi));
    }
    HQ_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']' in table literal"));
    if (Check(TokenKind::kSemi)) Consume();
    if (!Check(TokenKind::kRParen)) {
      HQ_ASSIGN_OR_RETURN(node->value_cols,
                          ParseNamedExprList(TokenKind::kSemi));
    }
    contexts_.pop_back();
    HQ_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')' in table literal"));
    return AstPtr(node);
  }

  HQ_ASSIGN_OR_RETURN(AstPtr first, Expr());
  if (Check(TokenKind::kRParen)) {
    Consume();
    contexts_.pop_back();
    return first;  // plain grouping
  }
  std::vector<AstPtr> items;
  items.push_back(std::move(first));
  while (Check(TokenKind::kSemi)) {
    Consume();
    HQ_ASSIGN_OR_RETURN(AstPtr item, Expr());
    items.push_back(std::move(item));
  }
  contexts_.pop_back();
  HQ_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
  return MakeListLit(std::move(items), loc);
}

Result<std::vector<NamedExpr>> Parser::ParseNamedExprList(
    TokenKind separator) {
  // Each item is optionally `name: expr`. Select/by lists separate items
  // with commas (which therefore terminate expressions); table literals use
  // semicolons, so commas stay available as the join verb.
  bool comma_sep = separator == TokenKind::kOperator;
  contexts_.push_back(Context{Ctx().stop_words, /*stop_comma=*/comma_sep});
  std::vector<NamedExpr> out;
  while (true) {
    NamedExpr ne;
    if (Check(TokenKind::kIdent) && Peek(1).kind == TokenKind::kColon &&
        !IsInfixKeyword(Peek().text) && !IsQueryKeyword(Peek().text)) {
      ne.name = Consume().text;
      Consume();  // ':'
    }
    auto expr = Expr();
    if (!expr.ok()) {
      contexts_.pop_back();
      return expr.status();
    }
    ne.expr = std::move(expr).value();
    out.push_back(std::move(ne));
    if (comma_sep && Check(TokenKind::kOperator) && Peek().text == ",") {
      Consume();
      continue;
    }
    if (!comma_sep && Check(separator)) {
      Consume();
      continue;
    }
    break;
  }
  contexts_.pop_back();
  return out;
}

Result<AstPtr> Parser::ParseQuery(QueryKind kind) {
  auto node = std::make_shared<AstNode>();
  node->kind = AstKind::kQuery;
  node->loc = Peek().loc;
  node->query_kind = kind;

  // select[n] / select[n;>col]: bracketed limit and ordering options.
  if (kind == QueryKind::kSelect && Check(TokenKind::kLBracket)) {
    Consume();
    contexts_.push_back(Context{});
    auto parse_order = [&]() -> Status {
      bool asc = Peek().text == "<";
      Consume();  // '<' or '>'
      if (!Check(TokenKind::kIdent)) {
        contexts_.pop_back();
        return ErrorHere("expected column name after ordering sign");
      }
      node->query_order_col = Consume().text;
      node->query_order_dir = asc ? 1 : -1;
      return Status::OK();
    };
    if (Check(TokenKind::kOperator) &&
        (Peek().text == "<" || Peek().text == ">")) {
      HQ_RETURN_IF_ERROR(parse_order());
    } else {
      auto limit = Expr();
      if (!limit.ok()) {
        contexts_.pop_back();
        return limit.status();
      }
      node->query_limit = std::move(limit).value();
      if (Check(TokenKind::kSemi)) {
        Consume();
        if (Check(TokenKind::kOperator) &&
            (Peek().text == "<" || Peek().text == ">")) {
          HQ_RETURN_IF_ERROR(parse_order());
        } else {
          contexts_.pop_back();
          return ErrorHere("expected <col or >col ordering in select[..]");
        }
      }
    }
    contexts_.pop_back();
    HQ_RETURN_IF_ERROR(
        Expect(TokenKind::kRBracket, "']' after select options"));
  }

  contexts_.push_back(Context{{"by", "from", "where"}, /*stop_comma=*/true});

  if (!CheckIdent("from") && !CheckIdent("by")) {
    auto cols = ParseNamedExprList();
    if (!cols.ok()) {
      contexts_.pop_back();
      return cols.status();
    }
    node->select_list = std::move(cols).value();
  }
  if (CheckIdent("by")) {
    Consume();
    auto by = ParseNamedExprList();
    if (!by.ok()) {
      contexts_.pop_back();
      return by.status();
    }
    node->by_list = std::move(by).value();
  }
  contexts_.pop_back();

  if (!CheckIdent("from")) {
    return ErrorHere(StrCat("expected 'from' in ",
                            kind == QueryKind::kSelect ? "select" : "query",
                            " template"));
  }
  Consume();

  contexts_.push_back(Context{{"where"}, /*stop_comma=*/false});
  auto from = Expr();
  contexts_.pop_back();
  if (!from.ok()) return from.status();
  node->from = std::move(from).value();

  if (CheckIdent("where")) {
    Consume();
    contexts_.push_back(Context{{"by", "from", "where"}, /*stop_comma=*/true});
    while (true) {
      auto cond = Expr();
      if (!cond.ok()) {
        contexts_.pop_back();
        return cond.status();
      }
      node->where_list.push_back(std::move(cond).value());
      if (Check(TokenKind::kOperator) && Peek().text == ",") {
        Consume();
        continue;
      }
      break;
    }
    contexts_.pop_back();
  }

  // For delete, plain column references in the select list are the columns
  // to drop: delete c1, c2 from t.
  if (kind == QueryKind::kDelete) {
    for (const auto& ne : node->select_list) {
      if (ne.name.empty() && ne.expr->kind == AstKind::kVarRef) {
        node->delete_cols.push_back(ne.expr->name);
      }
    }
  }
  return AstPtr(node);
}

Result<AstPtr> Parser::ParseLambda() {
  SourceLoc start = Peek().loc;
  HQ_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "'{'"));
  contexts_.push_back(Context{});

  auto node = std::make_shared<AstNode>();
  node->kind = AstKind::kLambda;
  node->loc = start;

  bool explicit_params = false;
  if (Check(TokenKind::kLBracket)) {
    explicit_params = true;
    Consume();
    while (!Check(TokenKind::kRBracket)) {
      if (!Check(TokenKind::kIdent)) {
        contexts_.pop_back();
        return ErrorHere("expected parameter name in lambda");
      }
      node->params.push_back(Consume().text);
      if (Check(TokenKind::kSemi)) Consume();
    }
    Consume();  // ']'
  }

  while (!Check(TokenKind::kRBrace)) {
    if (Check(TokenKind::kSemi)) {
      Consume();
      continue;
    }
    if (Check(TokenKind::kEof)) {
      contexts_.pop_back();
      return ErrorHere("unterminated lambda: missing '}'");
    }
    auto stmt = Statement();
    if (!stmt.ok()) {
      contexts_.pop_back();
      return stmt.status();
    }
    node->body.push_back(std::move(stmt).value());
  }
  SourceLoc end = Peek().loc;
  Consume();  // '}'
  contexts_.pop_back();

  node->source = text_.substr(start.offset, end.offset - start.offset + 1);

  // Implicit x/y/z parameters when no explicit list is given.
  if (!explicit_params) {
    bool uses[3] = {false, false, false};
    // Walk the body looking for x/y/z references.
    std::vector<const AstNode*> stack;
    for (const auto& s : node->body) stack.push_back(s.get());
    while (!stack.empty()) {
      const AstNode* n = stack.back();
      stack.pop_back();
      if (!n) continue;
      if (n->kind == AstKind::kVarRef) {
        if (n->name == "x") uses[0] = true;
        if (n->name == "y") uses[1] = true;
        if (n->name == "z") uses[2] = true;
      }
      if (n->kind == AstKind::kLambda) continue;  // inner lambda shadows
      for (const auto& a : n->args) stack.push_back(a.get());
      stack.push_back(n->lhs.get());
      stack.push_back(n->rhs.get());
      stack.push_back(n->child.get());
      for (const auto& ne : n->select_list) stack.push_back(ne.expr.get());
      for (const auto& ne : n->by_list) stack.push_back(ne.expr.get());
      for (const auto& w : n->where_list) stack.push_back(w.get());
      for (const auto& ne : n->key_cols) stack.push_back(ne.expr.get());
      for (const auto& ne : n->value_cols) stack.push_back(ne.expr.get());
      stack.push_back(n->from.get());
    }
    int arity = uses[2] ? 3 : (uses[1] ? 2 : (uses[0] ? 1 : 0));
    static const char* kNames[] = {"x", "y", "z"};
    for (int i = 0; i < arity; ++i) node->params.push_back(kNames[i]);
  }
  return AstPtr(node);
}

}  // namespace hyperq
