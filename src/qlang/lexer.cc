#include "qlang/lexer.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"
#include "qval/temporal.h"

namespace hyperq {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kSymbolLit:
      return "symbol";
    case TokenKind::kString:
      return "string";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kOperator:
      return "operator";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kDoubleColon:
      return "'::'";
    case TokenKind::kAdverb:
      return "adverb";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kSemi:
      return "';'";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

char Lexer::Advance() {
  char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

Status Lexer::Error(const std::string& message) const {
  return ParseError(
      StrCat("q lexer at ", line_, ":", column_, ": ", message));
}

bool Lexer::EndsValue(const Token& token) {
  switch (token.kind) {
    case TokenKind::kNumber:
    case TokenKind::kSymbolLit:
    case TokenKind::kString:
    case TokenKind::kIdent:
    case TokenKind::kRParen:
    case TokenKind::kRBracket:
    case TokenKind::kRBrace:
      return true;
    default:
      return false;
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> out;
  while (!AtEnd()) {
    HQ_RETURN_IF_ERROR(LexOne(&out));
  }
  out.push_back(Token{TokenKind::kEof, "", QValue(), Loc()});
  return out;
}

Status Lexer::LexOne(std::vector<Token>* out) {
  bool saw_space = false;
  while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
    saw_space = true;
    Advance();
  }
  if (AtEnd()) return Status::OK();

  char c = Peek();
  SourceLoc loc = Loc();
  bool prev_ends_value = !out->empty() && EndsValue(out->back());

  // Comment: '/' preceded by whitespace / start of input is a comment to end
  // of line; '/' glued to a term is the over adverb.
  if (c == '/' && (saw_space || out->empty() ||
                   out->back().kind == TokenKind::kSemi)) {
    while (!AtEnd() && Peek() != '\n') Advance();
    return Status::OK();
  }

  // Numeric literal (optionally negative when '-' cannot be binary minus).
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    return LexNumber(out, /*negative=*/false);
  }
  if (c == '-' && (std::isdigit(static_cast<unsigned char>(Peek(1))) ||
                   (Peek(1) == '.' &&
                    std::isdigit(static_cast<unsigned char>(Peek(2))))) &&
      !prev_ends_value) {
    Advance();  // consume '-'
    return LexNumber(out, /*negative=*/true);
  }

  if (c == '`') return LexSymbol(out);
  if (c == '"') return LexString(out);
  if (std::isalpha(static_cast<unsigned char>(c))) return LexIdent(out);

  // Adverbs and multi-char operators.
  auto push = [&](TokenKind kind, std::string text) {
    out->push_back(Token{kind, std::move(text), QValue(), loc});
  };

  switch (c) {
    case '(':
      Advance();
      push(TokenKind::kLParen, "(");
      return Status::OK();
    case ')':
      Advance();
      push(TokenKind::kRParen, ")");
      return Status::OK();
    case '[':
      Advance();
      push(TokenKind::kLBracket, "[");
      return Status::OK();
    case ']':
      Advance();
      push(TokenKind::kRBracket, "]");
      return Status::OK();
    case '{':
      Advance();
      push(TokenKind::kLBrace, "{");
      return Status::OK();
    case '}':
      Advance();
      push(TokenKind::kRBrace, "}");
      return Status::OK();
    case ';':
      Advance();
      push(TokenKind::kSemi, ";");
      return Status::OK();
    case '\'':
      Advance();
      if (Peek() == ':') {
        Advance();
        push(TokenKind::kAdverb, "':");
      } else {
        push(TokenKind::kAdverb, "'");
      }
      return Status::OK();
    case '/':
      Advance();
      if (Peek() == ':') {
        Advance();
        push(TokenKind::kAdverb, "/:");
      } else {
        push(TokenKind::kAdverb, "/");
      }
      return Status::OK();
    case '\\':
      Advance();
      if (Peek() == ':') {
        Advance();
        push(TokenKind::kAdverb, "\\:");
      } else {
        push(TokenKind::kAdverb, "\\");
      }
      return Status::OK();
    case ':':
      Advance();
      if (Peek() == ':') {
        Advance();
        push(TokenKind::kDoubleColon, "::");
      } else {
        push(TokenKind::kColon, ":");
      }
      return Status::OK();
    case '<':
      Advance();
      if (Peek() == '=') {
        Advance();
        push(TokenKind::kOperator, "<=");
      } else if (Peek() == '>') {
        Advance();
        push(TokenKind::kOperator, "<>");
      } else {
        push(TokenKind::kOperator, "<");
      }
      return Status::OK();
    case '>':
      Advance();
      if (Peek() == '=') {
        Advance();
        push(TokenKind::kOperator, ">=");
      } else {
        push(TokenKind::kOperator, ">");
      }
      return Status::OK();
    default:
      break;
  }

  static const char kSingleOps[] = "+-*%!&|=~,^#_?@$.";
  for (char op : kSingleOps) {
    if (c == op && op != '\0') {
      Advance();
      push(TokenKind::kOperator, std::string(1, c));
      return Status::OK();
    }
  }
  return Error(StrCat("unexpected character '", std::string(1, c), "'"));
}

Status Lexer::LexNumber(std::vector<Token>* out, bool negative) {
  SourceLoc loc = Loc();
  // Byte literals 0x.. need hex digits, which overlap suffix letters; scan
  // them eagerly here.
  if (Peek() == '0' && Peek(1) == 'x') {
    std::string hex;
    Advance();
    Advance();
    while (!AtEnd() && std::isxdigit(static_cast<unsigned char>(Peek()))) {
      hex.push_back(Advance());
    }
    std::vector<int64_t> bytes;
    for (size_t i = 0; i + 1 < hex.size() || i < hex.size(); i += 2) {
      std::string pair = hex.substr(i, 2);
      bytes.push_back(std::strtol(pair.c_str(), nullptr, 16));
    }
    if (bytes.empty()) bytes.push_back(0);
    QValue v = bytes.size() == 1
                   ? QValue::Byte(static_cast<uint8_t>(bytes[0]))
                   : QValue::IntList(QType::kByte, std::move(bytes));
    out->push_back(Token{TokenKind::kNumber, "0x" + hex, std::move(v), loc});
    return Status::OK();
  }
  // Scan the numberish span: digits plus temporal/suffix characters.
  std::string span;
  while (!AtEnd()) {
    char c = Peek();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == ':' ||
        c == 'D' || std::strchr("bhijefnptNWwx", c) != nullptr) {
      span.push_back(Advance());
    } else {
      break;
    }
  }
  if (span.empty()) return Error("empty numeric literal");

  auto push_value = [&](QValue v) {
    out->push_back(Token{TokenKind::kNumber, span, std::move(v), loc});
    return Status::OK();
  };
  auto negate_int = [&](int64_t v) { return negative ? -v : v; };
  auto negate_f = [&](double v) { return negative ? -v : v; };

  // Byte literals 0x0a0b...
  if (span.size() > 2 && span[0] == '0' && span[1] == 'x') {
    std::vector<int64_t> bytes;
    for (size_t i = 2; i + 1 < span.size(); i += 2) {
      bytes.push_back(std::strtol(span.substr(i, 2).c_str(), nullptr, 16));
    }
    if (bytes.size() == 1) return push_value(QValue::Byte(bytes[0]));
    return push_value(QValue::IntList(QType::kByte, std::move(bytes)));
  }

  // Null and infinity forms: 0N 0n 0W 0w with optional type suffix.
  if (span.size() >= 2 && span[0] == '0' &&
      (span[1] == 'N' || span[1] == 'n' || span[1] == 'W' || span[1] == 'w')) {
    char cls = span[1];
    char suffix = span.size() > 2 ? span[2] : '\0';
    if (cls == 'n') return push_value(QValue::Float(std::nan("")));
    if (cls == 'w') {
      return push_value(QValue::Float(negate_f(HUGE_VAL)));
    }
    QType t = QType::kLong;
    switch (suffix) {
      case 'h':
        t = QType::kShort;
        break;
      case 'i':
        t = QType::kInt;
        break;
      case 'j':
      case '\0':
        t = QType::kLong;
        break;
      case 'e':
      case 'f':
        return push_value(cls == 'N' ? QValue::NullOf(QType::kFloat)
                                     : QValue::Float(negate_f(HUGE_VAL)));
      case 'd':
        t = QType::kDate;
        break;
      case 't':
        t = QType::kTime;
        break;
      case 'p':
        t = QType::kTimestamp;
        break;
      default:
        t = QType::kLong;
        break;
    }
    if (cls == 'N') return push_value(QValue::NullOf(t));
    return push_value(QValue::IntegralAtom(t, negate_int(kInfLong)));
  }

  // Temporal: timestamp (date 'D' time), timespan (nD...), date, time.
  size_t dpos = span.find('D');
  size_t dots = static_cast<size_t>(std::count(span.begin(), span.end(), '.'));
  bool has_colon = span.find(':') != std::string::npos;
  if (dpos != std::string::npos) {
    std::string datepart = span.substr(0, dpos);
    if (datepart.find('.') != std::string::npos) {
      HQ_ASSIGN_OR_RETURN(int64_t ns, ParseQTimestamp(span));
      return push_value(QValue::Timestamp(negate_int(ns)));
    }
    // Timespan: <days>D[HH:MM:SS.nnnnnnnnn]
    int64_t days = std::atoll(datepart.c_str());
    int64_t ns = 0;
    std::string tpart = span.substr(dpos + 1);
    if (!tpart.empty()) {
      int h = 0, m = 0, s = 0;
      int64_t frac = 0;
      std::sscanf(tpart.c_str(), "%d:%d:%d", &h, &m, &s);
      size_t dot = tpart.find('.');
      if (dot != std::string::npos) {
        std::string digits = tpart.substr(dot + 1);
        frac = std::atoll(digits.c_str());
        for (size_t i = digits.size(); i < 9; ++i) frac *= 10;
      }
      ns = static_cast<int64_t>(h) * 3600000000000LL +
           static_cast<int64_t>(m) * 60000000000LL +
           static_cast<int64_t>(s) * 1000000000LL + frac;
    }
    ns += days * 86400000000000LL;
    return push_value(QValue::Timespan(negate_int(ns)));
  }
  if (has_colon) {
    HQ_ASSIGN_OR_RETURN(int64_t ms, ParseQTime(span));
    return push_value(QValue::Time(negate_int(ms)));
  }
  if (dots == 2) {
    HQ_ASSIGN_OR_RETURN(int64_t days, ParseQDate(span));
    return push_value(QValue::Date(negate_int(days)));
  }

  // Plain numeric with optional suffix.
  char suffix = span.back();
  std::string digits = span;
  if (std::strchr("bhijef", suffix) != nullptr) {
    digits = span.substr(0, span.size() - 1);
  } else {
    suffix = '\0';
  }
  if (digits.empty()) return Error(StrCat("bad numeric literal '", span, "'"));

  if (suffix == 'b') {
    // Bool atom or vector: 1b, 0b, 1010b.
    std::vector<int64_t> bits;
    for (char d : digits) {
      if (d != '0' && d != '1') {
        return Error(StrCat("bad boolean literal '", span, "'"));
      }
      bits.push_back(d - '0');
    }
    if (bits.size() == 1) return push_value(QValue::Bool(bits[0] != 0));
    return push_value(QValue::IntList(QType::kBool, std::move(bits)));
  }

  bool is_float = digits.find('.') != std::string::npos ||
                  digits.find('e') != std::string::npos || suffix == 'e' ||
                  suffix == 'f';
  if (is_float) {
    double v = std::strtod(digits.c_str(), nullptr);
    QType t = suffix == 'e' ? QType::kReal : QType::kFloat;
    return push_value(QValue::FloatAtom(t, negate_f(v)));
  }
  int64_t v = std::atoll(digits.c_str());
  QType t = QType::kLong;
  if (suffix == 'h') t = QType::kShort;
  if (suffix == 'i') t = QType::kInt;
  return push_value(QValue::IntegralAtom(t, negate_int(v)));
}

Status Lexer::LexSymbol(std::vector<Token>* out) {
  SourceLoc loc = Loc();
  std::vector<std::string> syms;
  std::string raw;
  while (Peek() == '`') {
    raw.push_back(Advance());
    std::string name;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.') {
        name.push_back(Advance());
      } else {
        break;
      }
    }
    raw += name;
    syms.push_back(std::move(name));
  }
  QValue v = syms.size() == 1 ? QValue::Sym(syms[0])
                              : QValue::Syms(std::move(syms));
  out->push_back(Token{TokenKind::kSymbolLit, raw, std::move(v), loc});
  return Status::OK();
}

Status Lexer::LexString(std::vector<Token>* out) {
  SourceLoc loc = Loc();
  Advance();  // opening quote
  std::string s;
  while (true) {
    if (AtEnd()) return Error("unterminated string literal");
    char c = Advance();
    if (c == '"') break;
    if (c == '\\') {
      if (AtEnd()) return Error("unterminated escape in string literal");
      char e = Advance();
      switch (e) {
        case 'n':
          s.push_back('\n');
          break;
        case 't':
          s.push_back('\t');
          break;
        case 'r':
          s.push_back('\r');
          break;
        case '\\':
          s.push_back('\\');
          break;
        case '"':
          s.push_back('"');
          break;
        default:
          s.push_back(e);
          break;
      }
    } else {
      s.push_back(c);
    }
  }
  QValue v = s.size() == 1 ? QValue::Char(s[0]) : QValue::Chars(s);
  out->push_back(Token{TokenKind::kString, s, std::move(v), loc});
  return Status::OK();
}

Status Lexer::LexIdent(std::vector<Token>* out) {
  SourceLoc loc = Loc();
  std::string name;
  while (!AtEnd()) {
    char c = Peek();
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      name.push_back(Advance());
    } else {
      break;
    }
  }
  out->push_back(Token{TokenKind::kIdent, std::move(name), QValue(), loc});
  return Status::OK();
}

}  // namespace hyperq
