#include "qlang/ast.h"

#include "common/strings.h"

namespace hyperq {

namespace {
std::shared_ptr<AstNode> NewNode(AstKind kind, SourceLoc loc) {
  auto node = std::make_shared<AstNode>();
  node->kind = kind;
  node->loc = loc;
  return node;
}
}  // namespace

AstPtr MakeLiteral(QValue v, SourceLoc loc) {
  auto node = NewNode(AstKind::kLiteral, loc);
  node->literal = std::move(v);
  return node;
}

AstPtr MakeParam(QValue v, int slot, SourceLoc loc) {
  auto node = NewNode(AstKind::kParam, loc);
  node->literal = std::move(v);
  node->param_slot = slot;
  return node;
}

AstPtr MakeVarRef(std::string name, SourceLoc loc) {
  auto node = NewNode(AstKind::kVarRef, loc);
  node->name = std::move(name);
  return node;
}

AstPtr MakeFnRef(std::string op, SourceLoc loc) {
  auto node = NewNode(AstKind::kFnRef, loc);
  node->name = std::move(op);
  return node;
}

AstPtr MakeAdverbed(std::string adverb, AstPtr fn, SourceLoc loc) {
  auto node = NewNode(AstKind::kAdverbed, loc);
  node->name = std::move(adverb);
  node->child = std::move(fn);
  return node;
}

AstPtr MakeDyad(std::string op, AstPtr lhs, AstPtr rhs, SourceLoc loc) {
  auto node = NewNode(AstKind::kDyad, loc);
  node->name = std::move(op);
  node->lhs = std::move(lhs);
  node->rhs = std::move(rhs);
  return node;
}

AstPtr MakeApply(AstPtr fn, std::vector<AstPtr> args, SourceLoc loc) {
  auto node = NewNode(AstKind::kApply, loc);
  node->child = std::move(fn);
  node->args = std::move(args);
  return node;
}

AstPtr MakeAssign(std::string name, AstPtr value, bool global, SourceLoc loc) {
  auto node = NewNode(global ? AstKind::kGlobalAssign : AstKind::kAssign, loc);
  node->name = std::move(name);
  node->child = std::move(value);
  return node;
}

AstPtr MakeReturn(AstPtr value, SourceLoc loc) {
  auto node = NewNode(AstKind::kReturn, loc);
  node->child = std::move(value);
  return node;
}

AstPtr MakeCond(std::vector<AstPtr> branches, SourceLoc loc) {
  auto node = NewNode(AstKind::kCond, loc);
  node->args = std::move(branches);
  return node;
}

AstPtr MakeListLit(std::vector<AstPtr> items, SourceLoc loc) {
  auto node = NewNode(AstKind::kListLit, loc);
  node->args = std::move(items);
  return node;
}

AstPtr MakeSeq(std::vector<AstPtr> stmts, SourceLoc loc) {
  auto node = NewNode(AstKind::kSeq, loc);
  node->args = std::move(stmts);
  return node;
}

namespace {

std::string NamedExprsToString(const std::vector<NamedExpr>& exprs) {
  std::string out;
  for (const auto& ne : exprs) {
    out += " (";
    out += ne.name.empty() ? "_" : ne.name;
    out += " ";
    out += AstToString(ne.expr);
    out += ")";
  }
  return out;
}

}  // namespace

std::string AstToString(const AstPtr& node) {
  if (!node) return "nil";
  switch (node->kind) {
    case AstKind::kLiteral:
      return StrCat("(lit ", node->literal.ToString(), ")");
    case AstKind::kParam:
      return StrCat("(param ", node->param_slot, " ",
                    node->literal.ToString(), ")");
    case AstKind::kVarRef:
      return StrCat("(var ", node->name, ")");
    case AstKind::kFnRef:
      return StrCat("(fn ", node->name, ")");
    case AstKind::kAdverbed:
      return StrCat("(adv ", node->name, " ", AstToString(node->child), ")");
    case AstKind::kDyad:
      return StrCat("(dyad ", node->name, " ", AstToString(node->lhs), " ",
                    AstToString(node->rhs), ")");
    case AstKind::kApply: {
      std::string out = StrCat("(apply ", AstToString(node->child));
      for (const auto& a : node->args) out += StrCat(" ", AstToString(a));
      return out + ")";
    }
    case AstKind::kLambda: {
      std::string out = "(lambda [" + Join(node->params, ";") + "]";
      for (const auto& s : node->body) out += StrCat(" ", AstToString(s));
      return out + ")";
    }
    case AstKind::kAssign:
      return StrCat("(assign ", node->name, " ", AstToString(node->child),
                    ")");
    case AstKind::kGlobalAssign:
      return StrCat("(gassign ", node->name, " ", AstToString(node->child),
                    ")");
    case AstKind::kReturn:
      return StrCat("(return ", AstToString(node->child), ")");
    case AstKind::kCond: {
      std::string out = "(cond";
      for (const auto& a : node->args) out += StrCat(" ", AstToString(a));
      return out + ")";
    }
    case AstKind::kListLit: {
      std::string out = "(list";
      for (const auto& a : node->args) out += StrCat(" ", AstToString(a));
      return out + ")";
    }
    case AstKind::kSeq: {
      std::string out = "(seq";
      for (const auto& a : node->args) out += StrCat(" ", AstToString(a));
      return out + ")";
    }
    case AstKind::kTableLit: {
      std::string out = "(tablelit keys";
      out += NamedExprsToString(node->key_cols);
      out += " cols";
      out += NamedExprsToString(node->value_cols);
      return out + ")";
    }
    case AstKind::kQuery: {
      const char* kind = "select";
      if (node->query_kind == QueryKind::kExec) kind = "exec";
      if (node->query_kind == QueryKind::kUpdate) kind = "update";
      if (node->query_kind == QueryKind::kDelete) kind = "delete";
      std::string out = StrCat("(", kind);
      out += NamedExprsToString(node->select_list);
      if (!node->by_list.empty()) {
        out += " by";
        out += NamedExprsToString(node->by_list);
      }
      out += StrCat(" from ", AstToString(node->from));
      if (!node->where_list.empty()) {
        out += " where";
        for (const auto& w : node->where_list) {
          out += StrCat(" ", AstToString(w));
        }
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace hyperq
