#ifndef HYPERQ_QLANG_AST_H_
#define HYPERQ_QLANG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "qlang/token.h"
#include "qval/qvalue.h"

namespace hyperq {

/// Kinds of Q AST nodes. The AST mirrors §3.2.1: literals, variables,
/// monadic/dyadic operators, application, lambdas, assignments and the
/// select/exec/update/delete query templates. The parser performs no type
/// inference; types are resolved later by the binder (§3.2.2) or the
/// interpreter.
enum class AstKind {
  kLiteral,
  kVarRef,
  kFnRef,      ///< A verb used as a value, e.g. the `+` in `+/`.
  kAdverbed,   ///< adverb applied to a function expression: f', f/, f\:...
  kDyad,       ///< x op y (evaluated right-to-left, no precedence).
  kApply,      ///< f[a;b;...] or juxtaposition f x (also list indexing).
  kLambda,
  kAssign,       ///< name: expr (scope-local).
  kGlobalAssign, ///< name:: expr (amends the global/server scope).
  kQuery,        ///< select/exec/update/delete template.
  kTableLit,     ///< ([k1:...] c1:...; c2:...).
  kListLit,      ///< (e1;e2;...).
  kCond,         ///< $[c;t;f;...].
  kReturn,       ///< :expr inside a lambda body.
  kSeq,          ///< statement sequence (program / lambda body).
  kParam,        ///< lifted literal parameter (translation-cache rewrite).
};

struct AstNode;
using AstPtr = std::shared_ptr<const AstNode>;

/// An optionally named expression in a select/by list: `px: max Price`.
struct NamedExpr {
  std::string name;  ///< Empty means derive from the expression.
  AstPtr expr;
};

enum class QueryKind { kSelect, kExec, kUpdate, kDelete };

/// Single node type with per-kind payloads: keeps traversal code simple and
/// avoids a visitor hierarchy for a tree this small.
struct AstNode {
  AstKind kind;
  SourceLoc loc;

  // kLiteral / kParam (a kParam keeps the literal's value so binding can
  // still read it; param_slot says which fingerprint parameter it is).
  QValue literal;
  int param_slot = -1;

  // kVarRef / kFnRef: name or verb spelling; kAdverbed: adverb spelling.
  std::string name;

  // kDyad: name=op, lhs/rhs. kAdverbed: child=fn. kAssign: name, child=value.
  // kReturn: child. kApply: child=callee, args. kCond: args=branches.
  // kListLit/kSeq: args=items.
  AstPtr lhs;
  AstPtr rhs;
  AstPtr child;
  std::vector<AstPtr> args;

  // kLambda
  std::vector<std::string> params;
  std::vector<AstPtr> body;
  std::string source;  ///< Verbatim lambda text (stored per §4.3).

  // kQuery
  QueryKind query_kind = QueryKind::kSelect;
  /// select[n] / select[n;>col] paging: optional row limit (negative =
  /// last n) and optional ordering column with direction.
  AstPtr query_limit;
  std::string query_order_col;
  int query_order_dir = 0;  ///< 0 none, +1 ascending (<), -1 descending (>)
  std::vector<NamedExpr> select_list;
  std::vector<NamedExpr> by_list;
  std::vector<AstPtr> where_list;
  AstPtr from;
  std::vector<std::string> delete_cols;

  // kTableLit
  std::vector<NamedExpr> key_cols;
  std::vector<NamedExpr> value_cols;
};

/// Factory helpers (all return shared immutable nodes).
AstPtr MakeLiteral(QValue v, SourceLoc loc);
AstPtr MakeParam(QValue v, int slot, SourceLoc loc);
AstPtr MakeVarRef(std::string name, SourceLoc loc);
AstPtr MakeFnRef(std::string op, SourceLoc loc);
AstPtr MakeAdverbed(std::string adverb, AstPtr fn, SourceLoc loc);
AstPtr MakeDyad(std::string op, AstPtr lhs, AstPtr rhs, SourceLoc loc);
AstPtr MakeApply(AstPtr fn, std::vector<AstPtr> args, SourceLoc loc);
AstPtr MakeAssign(std::string name, AstPtr value, bool global, SourceLoc loc);
AstPtr MakeReturn(AstPtr value, SourceLoc loc);
AstPtr MakeCond(std::vector<AstPtr> branches, SourceLoc loc);
AstPtr MakeListLit(std::vector<AstPtr> items, SourceLoc loc);
AstPtr MakeSeq(std::vector<AstPtr> stmts, SourceLoc loc);

/// Renders the AST as an s-expression, used by parser unit tests and
/// debugging, e.g. (dyad + (var x) (lit 1)).
std::string AstToString(const AstPtr& node);

}  // namespace hyperq

#endif  // HYPERQ_QLANG_AST_H_
