#ifndef HYPERQ_QLANG_LEXER_H_
#define HYPERQ_QLANG_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "qlang/token.h"

namespace hyperq {

/// Tokenizes Q query text.
///
/// Q-specific lexing rules handled here:
///  - `/` introduces a comment only when preceded by whitespace or at the
///    start of a line; immediately after a term it is the *over* adverb.
///  - `-` is part of a numeric literal only when a number follows directly
///    and the previous token cannot end a value (q's `x -1` vs `x-1` rule).
///  - Consecutive backticked names form one symbol-list literal (`a`b`c).
///  - Numeric literals carry kdb+ type suffixes (1b, 2h, 3i, 4j, 5e, 6f)
///    and null/infinity forms (0N, 0n, 0Nh, 0W, -0w, ...).
///  - Temporal literals: 2016.06.26, 09:30:00.000,
///    2016.06.26D09:30:00.000000000, and timespans 0D00:00:01.
class Lexer {
 public:
  explicit Lexer(std::string text) : text_(std::move(text)) {}

  /// Tokenizes the whole input. The result always ends with a kEof token.
  Result<std::vector<Token>> Tokenize();

 private:
  Status LexOne(std::vector<Token>* out);
  Status LexNumber(std::vector<Token>* out, bool negative);
  Status LexSymbol(std::vector<Token>* out);
  Status LexString(std::vector<Token>* out);
  Status LexIdent(std::vector<Token>* out);

  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char Advance();
  bool AtEnd() const { return pos_ >= text_.size(); }
  SourceLoc Loc() const { return {line_, column_, pos_}; }
  Status Error(const std::string& message) const;

  /// True if the previously emitted token can end a value expression, which
  /// disambiguates `-` (binary minus) from a negative literal and `/`
  /// (adverb) from a comment.
  static bool EndsValue(const Token& token);

  std::string text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace hyperq

#endif  // HYPERQ_QLANG_LEXER_H_
