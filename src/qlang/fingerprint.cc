#include "qlang/fingerprint.h"

#include "common/strings.h"
#include "qval/qtype.h"

namespace hyperq {

namespace {

/// True for literal atoms the normalizer lifts into the parameter vector.
/// `structural_pos` marks positions whose direct literals must stay in the
/// structure (elements of list literals).
bool LiftableAtom(const AstNode& n, bool structural_pos) {
  return n.kind == AstKind::kLiteral && !structural_pos &&
         n.literal.is_atom() && !n.literal.IsNullAtom();
}

// ---------------------------------------------------------------------------
// Fingerprint rendering
// ---------------------------------------------------------------------------

/// Renders the normalized structure of a statement into `out`, lifting
/// literal atoms into `params`. The traversal order here defines the slot
/// numbering; ParameterizeStatement below MUST visit nodes in the same
/// order.
class FingerprintWriter {
 public:
  FingerprintWriter(std::string* out, std::vector<QValue>* params)
      : out_(out), params_(params) {}

  bool ok() const { return ok_; }
  const std::string& reason() const { return reason_; }

  void Visit(const AstPtr& node, bool structural_pos = false) {
    if (!ok_) return;
    if (!node) {
      *out_ += "~";
      return;
    }
    const AstNode& n = *node;
    switch (n.kind) {
      case AstKind::kLiteral:
        if (LiftableAtom(n, structural_pos)) {
          // Value lifted; the type stays (types drive operator binding).
          Append("?", QTypeName(n.literal.type()));
          params_->push_back(n.literal);
        } else {
          Append("(lit:", QTypeName(n.literal.type()),
                 n.literal.is_atom() ? ":a:" : ":l:", n.literal.ToString(),
                 ")");
        }
        return;
      case AstKind::kParam:
        // Fingerprinting an already-parameterized tree would double-lift.
        Fail("unexpected kParam node");
        return;
      case AstKind::kVarRef:
        Append("(var:", n.name, ")");
        return;
      case AstKind::kFnRef:
        Append("(fn:", n.name, ")");
        return;
      case AstKind::kAdverbed:
        Append("(adv:", n.name, " ");
        Visit(n.child);
        Append(")");
        return;
      case AstKind::kDyad:
        Append("(dyad:", n.name, " ");
        Visit(n.lhs);
        Append(" ");
        Visit(n.rhs);
        Append(")");
        return;
      case AstKind::kApply:
        Append("(apply ");
        Visit(n.child);
        for (const auto& a : n.args) {
          Append(" ");
          Visit(a);
        }
        Append(")");
        return;
      case AstKind::kCond:
        Append("(cond");
        for (const auto& a : n.args) {
          Append(" ");
          Visit(a);
        }
        Append(")");
        return;
      case AstKind::kListLit:
        Append("(list");
        for (const auto& a : n.args) {
          Append(" ");
          // Direct literal elements stay structural: list shapes feed
          // constructs that inspect the AST (fby, argument lists).
          Visit(a, /*structural_pos=*/true);
        }
        Append(")");
        return;
      case AstKind::kSeq:
        Append("(seq");
        for (const auto& a : n.args) {
          Append(" ");
          Visit(a);
        }
        Append(")");
        return;
      case AstKind::kQuery:
        VisitQuery(n);
        return;
      // Side-effecting or shape-inspected constructs: never cached.
      case AstKind::kAssign:
      case AstKind::kGlobalAssign:
        Fail("assignments have side effects");
        return;
      case AstKind::kLambda:
        Fail("function definitions are scope mutations");
        return;
      case AstKind::kReturn:
        Fail("return outside a cached context");
        return;
      case AstKind::kTableLit:
        Fail("table literals are not parameterizable");
        return;
    }
    Fail("unknown AST node kind");
  }

 private:
  void VisitQuery(const AstNode& n) {
    const char* kind = "select";
    if (n.query_kind == QueryKind::kExec) kind = "exec";
    if (n.query_kind == QueryKind::kUpdate) kind = "update";
    if (n.query_kind == QueryKind::kDelete) kind = "delete";
    Append("(", kind);
    if (n.query_limit) {
      Append(" limit ");
      Visit(n.query_limit);
    }
    if (n.query_order_dir != 0) {
      Append(" ord:", n.query_order_col, ":",
             n.query_order_dir > 0 ? "+" : "-");
    }
    VisitNamed(" cols", n.select_list);
    VisitNamed(" by", n.by_list);
    if (!n.where_list.empty()) {
      Append(" where");
      for (const auto& w : n.where_list) {
        Append(" ");
        Visit(w);
      }
    }
    Append(" from ");
    Visit(n.from);
    if (!n.delete_cols.empty()) {
      Append(" delcols:", Join(n.delete_cols, ","));
    }
    Append(")");
  }

  void VisitNamed(const char* tag, const std::vector<NamedExpr>& exprs) {
    if (exprs.empty()) return;
    Append(tag);
    for (const auto& ne : exprs) {
      Append(" (", ne.name.empty() ? "_" : ne.name, " ");
      Visit(ne.expr);
      Append(")");
    }
  }

  template <typename... Args>
  void Append(const Args&... args) {
    *out_ += StrCat(args...);
  }

  void Fail(const char* why) {
    if (ok_) reason_ = why;
    ok_ = false;
  }

  std::string* out_;
  std::vector<QValue>* params_;
  bool ok_ = true;
  std::string reason_;
};

// ---------------------------------------------------------------------------
// Parameterizing rewrite
// ---------------------------------------------------------------------------

/// Copy-on-write rewrite replacing lifted literals with kParam nodes. Slot
/// assignment follows the identical traversal order as FingerprintWriter.
class Parameterizer {
 public:
  AstPtr Rewrite(const AstPtr& node, bool structural_pos = false) {
    if (!node) return node;
    const AstNode& n = *node;
    switch (n.kind) {
      case AstKind::kLiteral:
        if (LiftableAtom(n, structural_pos)) {
          return MakeParam(n.literal, next_slot_++, n.loc);
        }
        return node;
      case AstKind::kAdverbed: {
        AstPtr child = Rewrite(n.child);
        return child == n.child ? node : Clone(n, [&](AstNode* c) {
          c->child = std::move(child);
        });
      }
      case AstKind::kDyad: {
        AstPtr lhs = Rewrite(n.lhs);
        AstPtr rhs = Rewrite(n.rhs);
        if (lhs == n.lhs && rhs == n.rhs) return node;
        return Clone(n, [&](AstNode* c) {
          c->lhs = std::move(lhs);
          c->rhs = std::move(rhs);
        });
      }
      case AstKind::kApply: {
        AstPtr child = Rewrite(n.child);
        bool changed = child != n.child;
        std::vector<AstPtr> args = RewriteAll(n.args, false, &changed);
        if (!changed) return node;
        return Clone(n, [&](AstNode* c) {
          c->child = std::move(child);
          c->args = std::move(args);
        });
      }
      case AstKind::kCond:
      case AstKind::kSeq: {
        bool changed = false;
        std::vector<AstPtr> args = RewriteAll(n.args, false, &changed);
        if (!changed) return node;
        return Clone(n, [&](AstNode* c) { c->args = std::move(args); });
      }
      case AstKind::kListLit: {
        bool changed = false;
        std::vector<AstPtr> args = RewriteAll(n.args, true, &changed);
        if (!changed) return node;
        return Clone(n, [&](AstNode* c) { c->args = std::move(args); });
      }
      case AstKind::kQuery: {
        bool changed = false;
        AstPtr limit;
        if (n.query_limit) {
          limit = Rewrite(n.query_limit);
          changed |= limit != n.query_limit;
        }
        std::vector<NamedExpr> sel = RewriteNamed(n.select_list, &changed);
        std::vector<NamedExpr> by = RewriteNamed(n.by_list, &changed);
        std::vector<AstPtr> where = RewriteAll(n.where_list, false, &changed);
        AstPtr from = Rewrite(n.from);
        changed |= from != n.from;
        if (!changed) return node;
        return Clone(n, [&](AstNode* c) {
          c->query_limit = std::move(limit);
          c->select_list = std::move(sel);
          c->by_list = std::move(by);
          c->where_list = std::move(where);
          c->from = std::move(from);
        });
      }
      // Terminals and uncacheable kinds (the fingerprint pass rejected the
      // latter before a rewrite is ever requested).
      default:
        return node;
    }
  }

 private:
  template <typename Fn>
  static AstPtr Clone(const AstNode& n, Fn mutate) {
    auto copy = std::make_shared<AstNode>(n);
    mutate(copy.get());
    return copy;
  }

  std::vector<AstPtr> RewriteAll(const std::vector<AstPtr>& nodes,
                                 bool structural_pos, bool* changed) {
    std::vector<AstPtr> out;
    out.reserve(nodes.size());
    for (const auto& a : nodes) {
      AstPtr r = Rewrite(a, structural_pos);
      *changed |= r != a;
      out.push_back(std::move(r));
    }
    return out;
  }

  std::vector<NamedExpr> RewriteNamed(const std::vector<NamedExpr>& exprs,
                                      bool* changed) {
    std::vector<NamedExpr> out;
    out.reserve(exprs.size());
    for (const auto& ne : exprs) {
      AstPtr r = Rewrite(ne.expr);
      *changed |= r != ne.expr;
      out.push_back(NamedExpr{ne.name, std::move(r)});
    }
    return out;
  }

  int next_slot_ = 0;
};

}  // namespace

uint64_t FingerprintHash(const std::string& text) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

QueryFingerprint FingerprintProgram(const std::vector<AstPtr>& stmts) {
  QueryFingerprint fp;
  if (stmts.size() != 1) {
    fp.reason = stmts.empty() ? "empty program"
                              : "multi-statement programs materialize "
                                "intermediate state";
    return fp;
  }
  FingerprintWriter writer(&fp.text, &fp.params);
  writer.Visit(stmts[0]);
  if (!writer.ok()) {
    fp.text.clear();
    fp.params.clear();
    fp.reason = writer.reason();
    return fp;
  }
  fp.cacheable = true;
  fp.hash = FingerprintHash(fp.text);
  return fp;
}

AstPtr ParameterizeStatement(const AstPtr& stmt) {
  Parameterizer p;
  return p.Rewrite(stmt);
}

}  // namespace hyperq
