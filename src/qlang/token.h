#ifndef HYPERQ_QLANG_TOKEN_H_
#define HYPERQ_QLANG_TOKEN_H_

#include <string>

#include "qval/qvalue.h"

namespace hyperq {

enum class TokenKind {
  kNumber,     ///< Numeric/temporal literal (payload in `value`).
  kSymbolLit,  ///< `sym or `a`b`c (payload in `value`).
  kString,     ///< "..." char atom or char list (payload in `value`).
  kIdent,      ///< Name: variables, builtins, select/from/... keywords.
  kOperator,   ///< Symbolic verb: + - * % = <> < > <= >= & | ~ , ^ # _ ! ? @ $ .
  kColon,      ///< : (assignment / return).
  kDoubleColon,///< :: (global amend / identity).
  kAdverb,     ///< ' /: \: ': / \ (each, each-right, each-left, prior, over, scan).
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kSemi,
  kEof,
};

/// Position of a token in the query text, for verbose diagnostics (§5 calls
/// out Hyper-Q's error messages as more informative than kdb+'s).
struct SourceLoc {
  int line = 1;
  int column = 1;
  /// Absolute byte offset into the query text; used to slice verbatim
  /// lambda source (stored as text per §4.3).
  size_t offset = 0;
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  ///< Raw text (identifier/operator/adverb spelling).
  QValue value;      ///< Literal payload for kNumber/kSymbolLit/kString.
  SourceLoc loc;
};

/// Token kind name for diagnostics.
const char* TokenKindName(TokenKind kind);

}  // namespace hyperq

#endif  // HYPERQ_QLANG_TOKEN_H_
