#ifndef HYPERQ_QLANG_FINGERPRINT_H_
#define HYPERQ_QLANG_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qlang/ast.h"
#include "qval/qvalue.h"

namespace hyperq {

/// The normalized identity of a Q request for the translation cache: the
/// statement's structure with literal atoms lifted out into an ordered
/// parameter vector. Two requests that differ only in (non-null) literal
/// atom values produce the same fingerprint text and hash, so a cached
/// parameterized translation can be rehydrated by splicing the current
/// parameter values back into the SQL template.
///
/// Lifting rules (documented in docs/PERFORMANCE.md):
///   - only literal *atoms* are lifted; vector literals (`a`b`c, 1 2 3)
///     stay in the structure, rendered by value;
///   - null atoms stay structural (nullability changes the generated plan:
///     the binder derives `nullable` from the constant);
///   - atoms that are direct elements of a list literal (x;y;z) or a table
///     literal stay structural (those positions feed constructs that
///     inspect AST shape, e.g. fby);
///   - the lifted atom's *type* is part of the structure (types drive
///     operator derivation), its *value* is not.
///
/// A lifted value may still be consumed structurally downstream (take
/// counts, select[n] limits, window sizes, cast targets, sort column
/// names). The binder reports such slots, and the cache pins them: a
/// cached entry only matches when the pinned slots carry the exact values
/// it was built with.
struct QueryFingerprint {
  /// False when the statement can never be cached (assignments, function
  /// definitions, multi-statement programs, ...). `reason` says why.
  bool cacheable = false;
  std::string reason;

  /// Canonical rendering of the normalized statement; lifted literals
  /// appear as typed placeholders. Stored in cache entries to make hash
  /// collisions harmless.
  std::string text;
  /// FNV-1a hash of `text` (shard + bucket selection).
  uint64_t hash = 0;
  /// The lifted literal atoms, in canonical traversal order. Slot i
  /// corresponds to the `$i+1` placeholder in a cached SQL template.
  std::vector<QValue> params;
};

/// Fingerprints a parsed Q program. Programs with more than one statement
/// or with side-effecting statements come back with cacheable=false (their
/// text/params are left empty). The caller must additionally reject
/// user-function invocations, which need scope knowledge qlang does not
/// have.
QueryFingerprint FingerprintProgram(const std::vector<AstPtr>& stmts);

/// Rewrites a statement, replacing every lifted literal with a kParam node
/// carrying its slot index. Traversal order matches FingerprintProgram, so
/// slot i holds the i-th lifted literal. Returns the original pointer for
/// subtrees without lifted literals.
AstPtr ParameterizeStatement(const AstPtr& stmt);

/// FNV-1a, exposed for the cache's text hashing.
uint64_t FingerprintHash(const std::string& text);

}  // namespace hyperq

#endif  // HYPERQ_QLANG_FINGERPRINT_H_
