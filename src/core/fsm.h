#ifndef HYPERQ_CORE_FSM_H_
#define HYPERQ_CORE_FSM_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/strings.h"

namespace hyperq {

/// Finite State Machine as described for the Cross Compiler (§3.4): each
/// translator process (Protocol Translator, Query Translator) maintains its
/// internal state as an FSM; firing an event runs the transition's callback
/// and advances the state, giving the re-entrant, callback-driven structure
/// the paper attributes to XC.
template <typename State, typename Event>
class Fsm {
 public:
  using Callback = std::function<Status()>;

  explicit Fsm(State initial, const char* name = "fsm")
      : state_(initial), name_(name) {}

  /// Registers `from --event--> to` running `cb` (may be null).
  void AddTransition(State from, Event event, State to, Callback cb) {
    transitions_[{from, event}] = {to, std::move(cb)};
  }

  State state() const { return state_; }
  void Reset(State state) { state_ = state; }

  /// Fires an event: rejects undefined transitions (protocol violations),
  /// otherwise runs the callback and commits the new state. A failing
  /// callback leaves the machine in the source state.
  Status Fire(Event event) {
    auto it = transitions_.find({state_, event});
    if (it == transitions_.end()) {
      return ProtocolError(StrCat(name_, ": event ",
                                  static_cast<int>(event),
                                  " is invalid in state ",
                                  static_cast<int>(state_)));
    }
    if (it->second.callback) {
      HQ_RETURN_IF_ERROR(it->second.callback());
    }
    state_ = it->second.to;
    history_.push_back(state_);
    return Status::OK();
  }

  /// States visited (after the initial one); used by tests.
  const std::vector<State>& history() const { return history_; }

 private:
  struct Transition {
    State to;
    Callback callback;
  };

  State state_;
  const char* name_;
  std::map<std::pair<State, Event>, Transition> transitions_;
  std::vector<State> history_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_FSM_H_
