#ifndef HYPERQ_CORE_FSM_H_
#define HYPERQ_CORE_FSM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/strings.h"

namespace hyperq {

/// Immutable transition table shared by every Fsm instance built over it.
/// The per-connection state machines of the event-driven front end create
/// one Fsm per socket; sharing the table keeps each instance to a couple
/// of words instead of a full transition map, which is what makes an FSM
/// per idle connection affordable at C100K scale.
template <typename State, typename Event>
class TransitionTable {
 public:
  using Callback = std::function<Status()>;

  explicit TransitionTable(const char* name = "fsm") : name_(name) {}

  /// Registers `from --event--> to` running `cb` (may be null). Callbacks
  /// in a shared table must not capture per-connection state; connection
  /// machines pass per-fire callbacks to Fsm::Fire instead.
  void Add(State from, Event event, State to, Callback cb = nullptr) {
    transitions_[{from, event}] = {to, std::move(cb)};
  }

  const char* name() const { return name_; }

 private:
  template <typename S, typename E>
  friend class Fsm;

  struct Transition {
    State to;
    Callback callback;
  };

  const char* name_;
  std::map<std::pair<State, Event>, Transition> transitions_;
};

/// Finite State Machine as described for the Cross Compiler (§3.4): each
/// translator process (Protocol Translator, Query Translator) maintains its
/// internal state as an FSM; firing an event runs the transition's callback
/// and advances the state, giving the re-entrant, callback-driven structure
/// the paper attributes to XC.
///
/// Two ownership modes:
///   - Fsm(initial, name): the machine owns its own table (the original
///     behavior; AddTransition builds it) and records visited states.
///   - Fsm(initial, &shared_table): the machine borrows an immutable
///     shared table and records no history — the lightweight
///     per-connection mode (long-lived connections fire transitions
///     indefinitely; an unbounded history would be a slow leak).
template <typename State, typename Event>
class Fsm {
 public:
  using Callback = std::function<Status()>;
  using Table = TransitionTable<State, Event>;

  explicit Fsm(State initial, const char* name = "fsm")
      : state_(initial),
        owned_table_(std::make_unique<Table>(name)),
        table_(owned_table_.get()),
        record_history_(true) {}

  Fsm(State initial, const Table* table)
      : state_(initial), table_(table), record_history_(false) {}

  /// Registers `from --event--> to` running `cb` (may be null). Only valid
  /// on a machine that owns its table.
  void AddTransition(State from, Event event, State to, Callback cb) {
    owned_table_->Add(from, event, to, std::move(cb));
  }

  State state() const { return state_; }
  void Reset(State state) { state_ = state; }

  /// Fires an event: rejects undefined transitions (protocol violations),
  /// otherwise runs the callback and commits the new state. A failing
  /// callback leaves the machine in the source state.
  Status Fire(Event event) {
    auto it = table_->transitions_.find({state_, event});
    if (it == table_->transitions_.end()) {
      return ProtocolError(StrCat(table_->name_, ": event ",
                                  static_cast<int>(event),
                                  " is invalid in state ",
                                  static_cast<int>(state_)));
    }
    if (it->second.callback) {
      HQ_RETURN_IF_ERROR(it->second.callback());
    }
    state_ = it->second.to;
    if (record_history_) history_.push_back(state_);
    return Status::OK();
  }

  /// States visited (after the initial one); used by tests. Empty for
  /// machines over a shared table (history recording is off there).
  const std::vector<State>& history() const { return history_; }

 private:
  State state_;
  std::unique_ptr<Table> owned_table_;
  const Table* table_;
  bool record_history_;
  std::vector<State> history_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_FSM_H_
