#include "core/endpoint.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "core/fsm.h"
#include "core/live_store.h"
#include "protocol/qipc/compress.h"

namespace hyperq {

namespace {

struct ServerMetrics {
  Gauge* connections_active;
  Gauge* connections_idle;
  Counter* connections_total;
  Counter* connections_refused;
  Counter* handshake_failures;
  Counter* read_timeouts;
  Counter* bytes_in;
  Counter* bytes_out;
  Counter* compress_fallbacks;
  Counter* busy_rejections;
  Counter* deadline_armed;
  Counter* deadline_timeouts;
  LatencyHistogram* request_us;

  static ServerMetrics& Get() {
    static ServerMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new ServerMetrics{
          r.GetGauge("server.connections_active"),
          r.GetGauge("server.connections_idle"),
          r.GetCounter("server.connections_total"),
          r.GetCounter("server.connections_refused"),
          r.GetCounter("server.handshake_failures"),
          r.GetCounter("server.read_timeouts"),
          r.GetCounter("server.bytes_in"),
          r.GetCounter("server.bytes_out"),
          r.GetCounter("server.compress_fallbacks"),
          r.GetCounter("server.busy_rejections"),
          r.GetCounter("deadline.armed_queries"),
          r.GetCounter("deadline.timeouts"),
          r.GetHistogram("server.request_us")};
    }();
    return *m;
  }
};

/// Egress-path metrics: how responses leave the process. encode_us is the
/// Relation→wire serialization alone; writev_calls vs messages_out shows
/// how often scatter replies needed more than one sendmsg batch;
/// compress_{in,out}_bytes give the achieved compression ratio.
struct WireMetrics {
  LatencyHistogram* encode_us;
  Counter* bytes_out;
  Counter* messages_out;
  Counter* writev_calls;
  Counter* scatter_slices;
  Counter* compress_in_bytes;
  Counter* compress_out_bytes;

  static WireMetrics& Get() {
    static WireMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new WireMetrics{
          r.GetHistogram("wire.encode_us"),
          r.GetCounter("wire.bytes_out"),
          r.GetCounter("wire.messages_out"),
          r.GetCounter("wire.writev_calls"),
          r.GetCounter("wire.scatter_slices"),
          r.GetCounter("wire.compress_in_bytes"),
          r.GetCounter("wire.compress_out_bytes")};
    }();
    return *m;
  }
};

bool IsTimeout(const Status& s) {
  return s.message().find("timed out") != std::string::npos;
}

/// Structured wire errors: a q client sees `'timeout` / `'busy` symbols it
/// can branch on instead of a free-form diagnostic string. Everything else
/// keeps the full status text.
std::string WireErrorText(const Status& s) {
  if (s.code() == StatusCode::kTimeout) return "timeout";
  if (s.code() == StatusCode::kUnavailable) return "busy";
  return s.ToString();
}

/// A tickerplant publish frame, by the kdb+ convention: the mixed list
/// (`upd; `table; data). The first element arrives as a symbol from real
/// q publishers (or a char list from casual tooling), the second names the
/// live table, the third is the batch (table value or column list).
bool IsUpdMessage(const QValue& v) {
  if (!v.IsMixedList() || v.Items().size() != 3) return false;
  const QValue& fn = v.Items()[0];
  const bool named_upd =
      (fn.type() == QType::kSymbol && fn.is_atom() && fn.AsSym() == "upd") ||
      (fn.type() == QType::kChar && !fn.is_atom() && fn.CharsView() == "upd");
  return named_upd && v.Items()[1].type() == QType::kSymbol &&
         v.Items()[1].is_atom();
}

/// Once a request this large has been served, the connection's reusable
/// buffers are shrunk back so one oversized query does not pin its peak
/// footprint for the rest of the session.
constexpr size_t kConnBufferKeepBytes = 1u << 20;

constexpr size_t kMaxHandshakeBytes = 4096;
constexpr uint32_t kMaxFrameBytes = 256u << 20;

void ShrinkIfOversized(std::vector<uint8_t>* buf) {
  if (buf->capacity() > kConnBufferKeepBytes) {
    buf->clear();
    buf->shrink_to_fit();
  }
}

uint32_t PlainLengthOfCompressed(const std::vector<uint8_t>& msg) {
  uint32_t v = 0;
  for (int k = 0; k < 4; ++k) v |= static_cast<uint32_t>(msg[8 + k]) << (8 * k);
  return v;
}

/// Records metrics for a fully written reply (both io models).
void RecordReplySent(size_t reply_bytes,
                     std::chrono::steady_clock::time_point request_start) {
  ServerMetrics& metrics = ServerMetrics::Get();
  WireMetrics& wire = WireMetrics::Get();
  metrics.bytes_out->Increment(reply_bytes);
  wire.bytes_out->Increment(reply_bytes);
  wire.messages_out->Increment();
  auto end = std::chrono::steady_clock::now();
  metrics.request_us->Record(
      std::chrono::duration<double, std::micro>(end - request_start)
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared request pipeline
// ---------------------------------------------------------------------------

std::unique_ptr<HyperQSession> HyperQServer::MakeSession() {
  // One Hyper-Q session per connection (its own temp-table namespace and
  // variable scopes), over the configured gateway — direct by default,
  // the scatter-gather coordinator when a factory is installed.
  return options_.gateway_factory
             ? std::make_unique<HyperQSession>(options_.gateway_factory(),
                                               options_.session)
             : std::make_unique<HyperQSession>(backend_, options_.session);
}

void HyperQServer::AdjustIdle(int delta) {
  int now = idle_count_.fetch_add(delta, std::memory_order_acq_rel) + delta;
  // Set() rather than Add() so a mid-flight .hyperq.resetStats[] desyncs
  // the gauge only until the next transition instead of forever.
  ServerMetrics::Get().connections_idle->Set(now);
}

bool HyperQServer::ShouldShed() {
  // Load shedding against *dispatched* queries — queued on the exec pool
  // or executing — so queueing stays bounded in both io models. The
  // caller must pair this with DoneExecuting() when the query finishes.
  if (options_.max_inflight_queries <= 0) return false;
  int prior = inflight_queries_.fetch_add(1, std::memory_order_acq_rel);
  return prior >= options_.max_inflight_queries;
}

void HyperQServer::DoneExecuting() {
  if (options_.max_inflight_queries <= 0) return;
  inflight_queries_.fetch_sub(1, std::memory_order_acq_rel);
}

void HyperQServer::BuildReply(HyperQSession& session,
                              const std::vector<uint8_t>& request,
                              Outgoing* out, bool* respond, bool shed) {
  ServerMetrics& metrics = ServerMetrics::Get();
  WireMetrics& wire = WireMetrics::Get();
  *respond = true;
  out->slices.clear();
  out->owned.clear();
  out->arena.Clear();
  out->keepalive.reset();
  out->idx = 0;
  out->off = 0;

  Result<qipc::DecodedMessage> msg = qipc::DecodeMessage(request);
  // Injected decode failures look exactly like a malformed request: a
  // structured error reply, never a dropped or torn frame.
  if (FaultHit f = CheckFault("qipc.decode");
      f.kind == FaultHit::Kind::kError) {
    msg = f.error;
  }
  // A reply is either `owned` bytes (errors, compressed responses) or
  // `slices` into the arena + result columns (plain scatter fast path).
  std::vector<uint8_t> reply;
  if (!msg.ok()) {
    reply = qipc::EncodeError(msg.status().ToString(),
                              qipc::MsgType::kResponse);
  } else if (IsUpdMessage(msg->value)) {
    // Tickerplant publish: dispatched straight to the ingest store, never
    // through the translator. Works identically in both io models (this
    // is the one shared request path), so publishers ride the C10K event
    // loop like every query client.
    const std::vector<QValue>& items = msg->value.Items();
    LiveStore* store = session.gateway().live_store();
    Result<QValue> result = QValue();
    if (store == nullptr) {
      result = InvalidArgument("this server has no ingest store");
    } else if (shed) {
      metrics.busy_rejections->Increment();
      result = UnavailableError("server at inflight query cap");
    } else {
      Result<size_t> rows = store->Upd(items[1].AsSym(), items[2]);
      result = rows.ok()
                   ? Result<QValue>(QValue::Long(static_cast<int64_t>(*rows)))
                   : Result<QValue>(rows.status());
    }
    // Async publishes (the kdb+ norm) expect no reply — errors included:
    // the publisher observes them via `.hyperq.ingestStats` instead.
    if (msg->type == qipc::MsgType::kAsync) {
      *respond = false;
      return;
    }
    if (!result.ok()) {
      reply = qipc::EncodeError(WireErrorText(result.status()),
                                qipc::MsgType::kResponse);
    } else {
      Result<std::vector<uint8_t>> enc =
          qipc::EncodeMessage(*result, qipc::MsgType::kResponse);
      reply = enc.ok() ? std::move(*enc)
                       : qipc::EncodeError(enc.status().ToString(),
                                           qipc::MsgType::kResponse);
    }
  } else if (msg->value.type() != QType::kChar) {
    reply = qipc::EncodeError(
        "expected a query string (char list) in the request",
        qipc::MsgType::kResponse);
  } else {
    std::string q_text = msg->value.is_atom()
                             ? std::string(1, msg->value.AsChar())
                             : msg->value.CharsView();
    // Per-query deadline: the session's own (.hyperq.deadline[ms])
    // overrides the server default. The ambient deadline covers
    // translate, execute (incl. morsel fan-out) and serialize; builtins
    // are exempt (they are how a wedged client un-wedges the server).
    int64_t dl_ms = session.deadline_ms() > 0 ? session.deadline_ms()
                                              : options_.default_deadline_ms;
    Deadline deadline = dl_ms > 0 ? Deadline::After(dl_ms) : Deadline();
    if (deadline.armed()) metrics.deadline_armed->Increment();
    ScopedDeadline scoped(deadline);
    // Load shedding (decided by the caller, who owns the inflight
    // accounting): a shed caller gets the structured 'busy answer —
    // bounded queueing, and the client knows to back off (its retry, not
    // ours: the request never started, so retrying it is always safe).
    Result<QValue> result = QValue();
    if (shed) {
      metrics.busy_rejections->Increment();
      result = UnavailableError("server at inflight query cap");
    } else {
      result = session.Query(q_text);
    }
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kTimeout) {
        metrics.deadline_timeouts->Increment();
      }
      reply = qipc::EncodeError(WireErrorText(result.status()),
                                qipc::MsgType::kResponse);
    } else if (FaultHit f = CheckFault("qipc.encode");
               f.kind == FaultHit::Kind::kError) {
      // Injected encode failure: the response is replaced by a
      // structured error, exactly like a real serialization bug.
      reply = qipc::EncodeError(f.error.ToString(),
                                qipc::MsgType::kResponse);
    } else {
      auto encode_start = std::chrono::steady_clock::now();
      if (options_.compress_responses) {
        Result<std::vector<uint8_t>> encoded =
            options_.block_compression
                ? qipc::EncodeMessageCompressedBlocked(
                      *result, qipc::MsgType::kResponse)
                : qipc::EncodeMessageCompressed(*result,
                                                qipc::MsgType::kResponse);
        if (!encoded.ok()) {
          reply = qipc::EncodeError(encoded.status().ToString(),
                                    qipc::MsgType::kResponse);
        } else {
          if ((*encoded)[2] == 0) {
            // Incompressible (or under-threshold) payload fell back to
            // the plain encoding.
            metrics.compress_fallbacks->Increment();
          } else if (encoded->size() > 12) {
            wire.compress_in_bytes->Increment(
                PlainLengthOfCompressed(*encoded));
            wire.compress_out_bytes->Increment(encoded->size());
          }
          reply = std::move(*encoded);
        }
      } else {
        // Plain responses take the zero-copy path: framing and small
        // payloads land in the arena, large typed columns are borrowed
        // from the result (pinned by `keepalive`) and gathered on the
        // wire by a scatter write.
        auto held = std::make_shared<QValue>(std::move(*result));
        Status enc = qipc::EncodeMessageScatter(
            *held, qipc::MsgType::kResponse, &out->arena, &out->slices);
        if (!enc.ok()) {
          out->slices.clear();
          reply = qipc::EncodeError(enc.ToString(),
                                    qipc::MsgType::kResponse);
        } else {
          out->keepalive = std::move(held);
        }
      }
      auto encode_end = std::chrono::steady_clock::now();
      wire.encode_us->Record(std::chrono::duration<double, std::micro>(
                                 encode_end - encode_start)
                                 .count());
    }
    // Async messages expect no response.
    if (msg->type == qipc::MsgType::kAsync) {
      *respond = false;
      return;
    }
  }
  if (out->slices.empty()) {
    out->owned = std::move(reply);
    out->slices.push_back(IoSlice{out->owned.data(), out->owned.size()});
  }
}

// ---------------------------------------------------------------------------
// Start / Stop
// ---------------------------------------------------------------------------

Status HyperQServer::Start(uint16_t port) {
  HQ_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Listen(port));
  port_ = listener.port();
  listener_ = std::make_unique<TcpListener>(std::move(listener));
  if (options_.io_model == IoModel::kEventLoop) {
    return StartEventModel();
  }
  running_ = true;
  accept_thread_ = std::make_unique<std::thread>([this]() { AcceptLoop(); });
  return Status::OK();
}

void HyperQServer::Stop() {
  if (!running_.exchange(false)) return;
  if (options_.io_model == IoModel::kEventLoop) {
    StopEventModel();
  } else {
    StopThreadModel();
  }
  HQ_LOG(Debug) << "qipc server stopped; final metrics:\n"
                << MetricsRegistry::Global().TextDump();
}

// ---------------------------------------------------------------------------
// Thread-per-connection model
// ---------------------------------------------------------------------------

void HyperQServer::StopThreadModel() {
  if (listener_) listener_->Close();
  if (accept_thread_ && accept_thread_->joinable()) accept_thread_->join();
  {
    // Drain, don't axe: SHUT_RD wakes workers blocked in recv (they see
    // EOF and exit), while a worker mid-query can still write its response
    // before its loop observes running_ == false. The drain must be
    // bounded, though — a peer that stops reading leaves a worker blocked
    // in send() with a full socket buffer, and an unbounded Stop() would
    // wedge behind it. Arming SO_SNDTIMEO caps any write the worker
    // *enters* from now on; it cannot wake a send() that is already
    // blocked, so stragglers past the drain window get SHUT_RDWR, which
    // does.
    std::unique_lock<std::mutex> lock(conn_mu_);
    struct timeval tv;
    int snd_ms =
        options_.drain_timeout_ms > 0 ? options_.drain_timeout_ms : 1;
    tv.tv_sec = snd_ms / 1000;
    tv.tv_usec = (snd_ms % 1000) * 1000;
    for (int fd : active_fds_) {
      ::shutdown(fd, SHUT_RD);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    drain_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_timeout_ms),
        [this]() { return active_fds_.empty(); });
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void HyperQServer::AcceptLoop() {
  ServerMetrics& metrics = ServerMetrics::Get();
  while (running_) {
    Result<TcpConnection> conn = listener_->Accept();
    if (!conn.ok()) {
      if (running_ && !TcpListener::IsClosedError(conn.status())) {
        HQ_LOG(Warning) << "qipc accept failed: "
                        << conn.status().ToString();
      }
      return;
    }
    // Admission control up front: an over-limit connection is refused
    // right here — closed before the accept byte, no handler thread
    // spawned — so rejections cost one accept() and never stall the loop.
    // The gauge mirrors active_count_ via Set() rather than Add(+-1) so a
    // mid-flight .hyperq.resetStats[] desyncs it only until the next
    // connection event instead of driving it negative forever.
    metrics.connections_total->Increment();
    int prior = active_count_.fetch_add(1, std::memory_order_acq_rel);
    metrics.connections_active->Set(prior + 1);
    if (prior >= effective_max_connections()) {
      metrics.connections_refused->Increment();
      int now = active_count_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      metrics.connections_active->Set(now);
      continue;  // `conn` closes on scope exit: refusal without a thread
    }
    workers_.emplace_back([this, c = std::move(*conn)]() mutable {
      HandleConnection(std::move(c));
    });
  }
}

void HyperQServer::RegisterFd(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.push_back(fd);
}

void HyperQServer::UnregisterFd(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.erase(std::remove(active_fds_.begin(), active_fds_.end(), fd),
                    active_fds_.end());
  if (active_fds_.empty()) drain_cv_.notify_all();
}

void HyperQServer::HandleConnection(TcpConnection conn) {
  ServerMetrics& metrics = ServerMetrics::Get();
  // The admission slot was reserved by AcceptLoop; release it on exit.
  struct SlotGuard {
    HyperQServer* s;
    ~SlotGuard() {
      int now = s->active_count_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      ServerMetrics::Get().connections_active->Set(now);
    }
  };
  SlotGuard slot{this};

  RegisterFd(conn.fd());
  struct FdGuard {
    HyperQServer* s;
    int fd;
    ~FdGuard() { s->UnregisterFd(fd); }
  } guard{this, conn.fd()};

  if (options_.read_timeout_ms > 0) {
    if (!conn.SetReadTimeout(options_.read_timeout_ms).ok()) return;
  }

  // Handshake: read the NUL-terminated credential block (§4.2).
  std::vector<uint8_t> creds;
  while (true) {
    Result<std::vector<uint8_t>> chunk = conn.ReadSome(256);
    if (!chunk.ok() || chunk->empty()) {
      if (!chunk.ok() && IsTimeout(chunk.status())) {
        metrics.read_timeouts->Increment();
      }
      metrics.handshake_failures->Increment();
      return;
    }
    creds.insert(creds.end(), chunk->begin(), chunk->end());
    if (creds.back() == 0) break;
    if (creds.size() > kMaxHandshakeBytes) {  // junk
      metrics.handshake_failures->Increment();
      return;
    }
  }
  metrics.bytes_in->Increment(creds.size());
  Result<qipc::HandshakeRequest> hs = qipc::DecodeHandshake(creds);
  if (!hs.ok()) {
    metrics.handshake_failures->Increment();
    return;
  }
  if (!options_.user.empty() &&
      (hs->user != options_.user || hs->password != options_.password)) {
    // Rejected credentials: close immediately, as kdb+ does (§4.2).
    metrics.handshake_failures->Increment();
    return;
  }
  // Accept: single byte echoing a supported protocol version.
  uint8_t accept_version = hs->version > 3 ? 3 : hs->version;
  if (!conn.WriteAll(&accept_version, 1).ok()) return;
  metrics.bytes_out->Increment(1);

  ServeRequests(conn);
}

void HyperQServer::ServeRequests(TcpConnection& conn) {
  ServerMetrics& metrics = ServerMetrics::Get();
  WireMetrics& wire = WireMetrics::Get();
  // The session is created lazily on the first request: a connected-but-
  // quiet client costs no backend state in either io model.
  std::unique_ptr<HyperQSession> session;

  // Per-connection reusable buffers: the request buffer absorbs header +
  // body in place (no per-request allocation, no header/rest splice), and
  // the Outgoing's arena + slice list back the scatter egress path. All
  // are shrunk back after an oversized request (kConnBufferKeepBytes).
  std::vector<uint8_t> request;
  Outgoing out;

  AdjustIdle(+1);
  bool idle = true;

  while (running_) {
    uint8_t header[8];
    Status header_read = conn.ReadExactInto(header, 8);
    if (!header_read.ok()) {  // disconnect or idle timeout
      if (IsTimeout(header_read)) metrics.read_timeouts->Increment();
      break;
    }
    auto request_start = std::chrono::steady_clock::now();
    Result<uint32_t> len = qipc::PeekMessageLength(header);
    if (!len.ok() || *len < 9 || *len > kMaxFrameBytes) break;
    request.resize(*len);
    std::memcpy(request.data(), header, 8);
    Status body_read = conn.ReadExactInto(request.data() + 8, *len - 8);
    if (!body_read.ok()) {
      if (IsTimeout(body_read)) metrics.read_timeouts->Increment();
      break;
    }
    metrics.bytes_in->Increment(*len);

    AdjustIdle(-1);
    idle = false;
    if (!session) session = MakeSession();
    bool respond;
    bool shed = ShouldShed();
    BuildReply(*session, request, &out, &respond, shed);
    DoneExecuting();
    if (!respond) {
      ShrinkIfOversized(&request);
      AdjustIdle(+1);
      idle = true;
      continue;
    }
    size_t reply_bytes = out.TotalBytes();
    bool sent;
    if (out.slices.size() > 1) {
      wire.scatter_slices->Increment(out.slices.size());
      wire.writev_calls->Increment();
      sent = conn.WriteAllV(out.slices).ok();
    } else {
      sent = conn.WriteAll(out.slices[0].data, out.slices[0].len).ok();
    }
    if (sent) RecordReplySent(reply_bytes, request_start);
    AdjustIdle(+1);
    idle = true;
    if (!sent) break;
    ShrinkIfOversized(&request);
    ShrinkIfOversized(&out.owned);
    if (out.arena.data().capacity() > kConnBufferKeepBytes) {
      out.arena = ByteWriter();
    }
    out.keepalive.reset();
    out.slices.clear();
  }
  if (idle) AdjustIdle(-1);
  if (session) (void)session->Close();
}

// ---------------------------------------------------------------------------
// Event-loop model
// ---------------------------------------------------------------------------

/// Per-socket QIPC protocol state machine on an event loop (§3.4: each
/// translator maintains its state as an FSM). States follow the wire
/// phases — handshake → frame header → frame body → dispatch →
/// write-drain — over a shared immutable transition table, so an idle
/// connection is just this object plus its (usually empty) read buffer.
class HyperQServer::QipcEventConn final : public EventConn {
 public:
  enum class St { kHandshake, kFrameHeader, kFrameBody, kDispatch, kDrain };
  enum class Ev {
    kCredsComplete,
    kHeaderComplete,
    kBodyComplete,
    kReplyReady,
    kAsyncDone,
    kReplyDrained,
  };

  QipcEventConn(HyperQServer* server, EventLoop* loop, TcpConnection conn)
      : EventConn(loop, std::move(conn)),
        server_(server),
        fsm_(St::kHandshake, &Table()) {}

  /// Called on the loop thread right after Register() succeeds.
  void AfterRegister() {
    SetIdle(true);
    ArmReadTimer();
  }

  /// Server drain (Stop): stop reading; an idle connection closes now, a
  /// busy one finishes its in-flight request + response under a
  /// force-close timer — the event-loop successor of the thread model's
  /// SO_SNDTIMEO + SHUT_RDWR drain bound.
  void BeginDrain() {
    if (closed() || draining_) return;
    draining_ = true;
    PauseReads();
    ::shutdown(fd(), SHUT_RD);
    if (!executing_ && !write_pending()) {
      Close();
      return;
    }
    int bound = server_->options_.drain_timeout_ms > 0
                    ? server_->options_.drain_timeout_ms
                    : 1;
    drain_timer_ = loop()->AddTimerAfter(std::chrono::milliseconds(bound),
                                         [this] {
                                           drain_timer_ = 0;
                                           Close();
                                         });
  }

 protected:
  void OnData() override { Pump(); }

  void OnError(const Status& error) override {
    if (fsm_.state() == St::kHandshake) {
      ServerMetrics::Get().handshake_failures->Increment();
    }
    if (IsTimeout(error)) ServerMetrics::Get().read_timeouts->Increment();
    Close();
  }

  void OnPeerClosed() override {
    if (fsm_.state() == St::kHandshake) {
      ServerMetrics::Get().handshake_failures->Increment();
    }
    Close();
  }

  void OnWriteDrained() override {
    if (fsm_.state() != St::kDrain) return;  // handshake ack drained
    (void)fsm_.Fire(Ev::kReplyDrained);
    RecordReplySent(pending_reply_bytes_, request_start_);
    pending_reply_bytes_ = 0;
    if (draining_) {
      Close();
      return;
    }
    ResumeReads();
    Pump();  // pipelined frames may already be buffered
  }

  void OnClosed() override {
    SetIdle(false);
    if (read_timer_ != 0) {
      loop()->CancelTimer(read_timer_);
      read_timer_ = 0;
    }
    if (drain_timer_ != 0) {
      loop()->CancelTimer(drain_timer_);
      drain_timer_ = 0;
    }
    // A query still running on the exec pool holds the session; its
    // completion callback closes it. Otherwise close here.
    if (!executing_) CloseSession();
    server_->OnEventConnClosed(this);
  }

 private:
  using Table_t = TransitionTable<St, Ev>;

  static const Table_t& Table() {
    static const Table_t* t = [] {
      auto* table = new Table_t("qipc-conn");
      table->Add(St::kHandshake, Ev::kCredsComplete, St::kFrameHeader);
      table->Add(St::kFrameHeader, Ev::kHeaderComplete, St::kFrameBody);
      table->Add(St::kFrameBody, Ev::kBodyComplete, St::kDispatch);
      table->Add(St::kDispatch, Ev::kReplyReady, St::kDrain);
      table->Add(St::kDispatch, Ev::kAsyncDone, St::kFrameHeader);
      table->Add(St::kDrain, Ev::kReplyDrained, St::kFrameHeader);
      return table;
    }();
    return *t;
  }

  /// Drives the state machine over whatever is buffered. Decoding pulls
  /// requests straight out of rbuf_, so a client that pipelines N queries
  /// has them served back-to-back with no extra round trips.
  void Pump() {
    ServerMetrics& metrics = ServerMetrics::Get();
    while (!closed()) {
      size_t avail = rbuf_.size() - rpos_;
      switch (fsm_.state()) {
        case St::kHandshake: {
          // NUL-terminated credential block (§4.2).
          const uint8_t* base = rbuf_.data() + rpos_;
          const void* nul = std::memchr(base, 0, avail);
          if (nul == nullptr) {
            if (avail > kMaxHandshakeBytes) {  // junk
              metrics.handshake_failures->Increment();
              Close();
            }
            return;
          }
          size_t creds_len =
              static_cast<const uint8_t*>(nul) - base + 1;
          std::vector<uint8_t> creds(base, base + creds_len);
          ConsumeTo(rpos_ + creds_len);
          metrics.bytes_in->Increment(creds.size());
          Result<qipc::HandshakeRequest> hs = qipc::DecodeHandshake(creds);
          if (!hs.ok()) {
            metrics.handshake_failures->Increment();
            Close();
            return;
          }
          const Options& opts = server_->options_;
          if (!opts.user.empty() && (hs->user != opts.user ||
                                     hs->password != opts.password)) {
            // Rejected credentials: close immediately, as kdb+ does.
            metrics.handshake_failures->Increment();
            Close();
            return;
          }
          uint8_t accept_version = hs->version > 3 ? 3 : hs->version;
          Outgoing ack;
          ack.owned.push_back(accept_version);
          ack.slices.push_back(IoSlice{ack.owned.data(), 1});
          Send(std::move(ack));
          if (closed()) return;
          metrics.bytes_out->Increment(1);
          (void)fsm_.Fire(Ev::kCredsComplete);
          break;
        }
        case St::kFrameHeader: {
          if (avail < 8) {
            if (avail == 0) ConsumeTo(rpos_);  // allow shrink when empty
            return;
          }
          Result<uint32_t> len =
              qipc::PeekMessageLength(rbuf_.data() + rpos_);
          if (!len.ok() || *len < 9 || *len > kMaxFrameBytes) {
            Close();
            return;
          }
          frame_len_ = *len;
          (void)fsm_.Fire(Ev::kHeaderComplete);
          break;
        }
        case St::kFrameBody: {
          if (avail < frame_len_) return;
          request_start_ = std::chrono::steady_clock::now();
          std::vector<uint8_t> frame(
              rbuf_.data() + rpos_, rbuf_.data() + rpos_ + frame_len_);
          ConsumeTo(rpos_ + frame_len_);
          metrics.bytes_in->Increment(frame.size());
          (void)fsm_.Fire(Ev::kBodyComplete);
          Dispatch(std::move(frame));
          return;  // reads paused until the reply is on its way
        }
        case St::kDispatch:
        case St::kDrain:
          // Buffered pipelined bytes wait for the in-flight request.
          return;
      }
    }
  }

  /// Hands the frame to the exec pool (strictly one in flight per
  /// connection — the session is single-threaded) and pauses socket
  /// reads; pipelined frames accumulate in rbuf_ meanwhile.
  void Dispatch(std::vector<uint8_t> frame) {
    executing_ = true;
    SetIdle(false);
    PauseReads();
    if (!session_) {
      session_ = std::shared_ptr<HyperQSession>(server_->MakeSession());
    }
    auto self =
        std::static_pointer_cast<QipcEventConn>(shared_from_this());
    // Shed decision at dispatch: the cap counts queued + executing
    // queries, so the exec pool's queue stays bounded even when every
    // reactor is pumping pipelined requests at it.
    bool shed = server_->ShouldShed();
    bool accepted = server_->exec_pool_->Submit(
        [self, server = server_, session = session_, shed,
         frame = std::move(frame)] {
          auto out = std::make_shared<Outgoing>();
          bool respond = true;
          server->BuildReply(*session, frame, out.get(), &respond, shed);
          server->DoneExecuting();
          self->loop()->Post([self, out, respond] {
            self->OnQueryDone(std::move(*out), respond);
          });
        });
    if (!accepted) {  // server stopping; no more replies will flow
      server_->DoneExecuting();
      executing_ = false;
      Close();
    }
  }

  /// Completion, back on the loop thread.
  void OnQueryDone(Outgoing out, bool respond) {
    executing_ = false;
    if (closed()) {
      CloseSession();
      return;
    }
    if (!respond) {  // async message: no reply on the wire
      (void)fsm_.Fire(Ev::kAsyncDone);
      if (draining_) {
        if (!write_pending()) Close();
        return;
      }
      SetIdle(true);
      ResumeReads();
      Pump();
      return;
    }
    (void)fsm_.Fire(Ev::kReplyReady);
    SetIdle(true);
    pending_reply_bytes_ = out.TotalBytes();
    if (out.slices.size() > 1) {
      WireMetrics& wire = WireMetrics::Get();
      wire.scatter_slices->Increment(out.slices.size());
      wire.writev_calls->Increment();
    }
    Send(std::move(out));  // OnWriteDrained advances the machine
  }

  void CloseSession() {
    if (session_) {
      (void)session_->Close();
      session_.reset();
    }
  }

  void SetIdle(bool idle) {
    if (idle == counted_idle_) return;
    counted_idle_ = idle;
    server_->AdjustIdle(idle ? +1 : -1);
  }

  void ArmReadTimer() {
    int timeout = server_->options_.read_timeout_ms;
    if (timeout <= 0) return;
    read_timer_ = loop()->AddTimerAfter(std::chrono::milliseconds(timeout),
                                        [this] { ReadTimerFired(); });
  }

  void ReadTimerFired() {
    read_timer_ = 0;
    if (closed() || draining_) return;
    int timeout = server_->options_.read_timeout_ms;
    if (executing_ || write_pending()) {
      // Not waiting on the peer right now; check again in a full window.
      ArmReadTimer();
      return;
    }
    auto idle_for = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - last_activity())
                        .count();
    if (idle_for >= timeout) {
      ServerMetrics::Get().read_timeouts->Increment();
      if (fsm_.state() == St::kHandshake) {
        ServerMetrics::Get().handshake_failures->Increment();
      }
      Close();
      return;
    }
    read_timer_ = loop()->AddTimerAfter(
        std::chrono::milliseconds(timeout - idle_for),
        [this] { ReadTimerFired(); });
  }

  HyperQServer* server_;
  Fsm<St, Ev> fsm_;
  std::shared_ptr<HyperQSession> session_;
  uint32_t frame_len_ = 0;
  bool executing_ = false;
  bool draining_ = false;
  bool counted_idle_ = false;
  uint64_t read_timer_ = 0;
  uint64_t drain_timer_ = 0;
  size_t pending_reply_bytes_ = 0;
  std::chrono::steady_clock::time_point request_start_{};
};

Status HyperQServer::StartEventModel() {
  loops_ = std::make_unique<EventLoopGroup>(
      options_.event_loop_threads > 0
          ? static_cast<size_t>(options_.event_loop_threads)
          : 0);
  HQ_RETURN_IF_ERROR(loops_->Start());
  exec_pool_ = std::make_unique<TaskPool>(
      options_.exec_threads > 0 ? static_cast<size_t>(options_.exec_threads)
                                : 0);
  HQ_RETURN_IF_ERROR(listener_->SetNonBlocking(true));
  running_ = true;
  // Single dispatcher: loop 0 owns the listener and fans accepted sockets
  // out across the group.
  loops_->loop(0)->Post([this] {
    listen_watch_ = loops_->loop(0)->AddWatch(
        listener_->fd(), EPOLLIN, [this](uint32_t) { EventAcceptReady(); });
  });
  return Status::OK();
}

void HyperQServer::EventAcceptReady() {
  ServerMetrics& metrics = ServerMetrics::Get();
  while (true) {
    Result<std::optional<TcpConnection>> pending = listener_->TryAccept();
    if (!pending.ok()) {
      if (running_ && !TcpListener::IsClosedError(pending.status())) {
        HQ_LOG(Warning) << "qipc accept failed: "
                        << pending.status().ToString();
      }
      if (listen_watch_ != nullptr) {
        loops_->loop(0)->RemoveWatch(listen_watch_);
        listen_watch_ = nullptr;
      }
      return;
    }
    if (!pending->has_value()) return;  // accept queue drained
    TcpConnection conn = std::move(**pending);
    metrics.connections_total->Increment();
    int prior = active_count_.fetch_add(1, std::memory_order_acq_rel);
    metrics.connections_active->Set(prior + 1);
    if (prior >= effective_max_connections() || !running_) {
      // Non-blocking refusal: close before the accept byte, right here on
      // the dispatcher — no thread, no registration, no syscalls beyond
      // the close.
      metrics.connections_refused->Increment();
      int now = active_count_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      metrics.connections_active->Set(now);
      continue;
    }
    EventLoop* target = loops_->Next();
    auto ec = std::make_shared<QipcEventConn>(this, target,
                                              std::move(conn));
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      event_conns_.emplace(ec.get(), ec);
    }
    target->Post([ec] {
      if (!ec->Register().ok()) {
        ec->Close();
        return;
      }
      ec->AfterRegister();
    });
  }
}

void HyperQServer::OnEventConnClosed(EventConn* conn) {
  ServerMetrics& metrics = ServerMetrics::Get();
  int now = active_count_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  metrics.connections_active->Set(now);
  std::lock_guard<std::mutex> lock(conn_mu_);
  event_conns_.erase(conn);
  if (event_conns_.empty()) drain_cv_.notify_all();
}

void HyperQServer::StopEventModel() {
  // 1. Stop accepting. The watch retirement must complete on the loop
  // thread BEFORE the fd is closed here: close() racing the loop's
  // epoll_ctl on the same descriptor is a genuine data race (and could
  // hit a recycled fd number). The bounded wait covers the pathological
  // case of a loop that died early (its posts are dropped).
  {
    auto removed = std::make_shared<std::promise<void>>();
    std::future<void> done = removed->get_future();
    loops_->loop(0)->Post([this, removed] {
      if (listen_watch_ != nullptr) {
        loops_->loop(0)->RemoveWatch(listen_watch_);
        listen_watch_ = nullptr;
      }
      removed->set_value();
    });
    done.wait_for(std::chrono::seconds(2));
  }
  listener_->Close();
  // 2. Drain every connection on its own loop: idle ones close now, busy
  // ones finish their in-flight request + response under a per-connection
  // force-close timer (the event-loop form of the drain bound).
  std::vector<std::shared_ptr<EventConn>> snapshot;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    snapshot.reserve(event_conns_.size());
    for (auto& [ptr, sp] : event_conns_) snapshot.push_back(sp);
  }
  for (auto& sp : snapshot) {
    auto qc = std::static_pointer_cast<QipcEventConn>(sp);
    qc->loop()->Post([qc] { qc->BeginDrain(); });
  }
  snapshot.clear();
  // 3. Bounded wait for the drain to finish.
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    drain_cv_.wait_for(
        lock,
        std::chrono::milliseconds(options_.drain_timeout_ms + 1000),
        [this] { return event_conns_.empty(); });
  }
  // 4. Queries still running finish here (deadlines bound them); their
  // completion posts land on loops that are still alive.
  exec_pool_->Stop();
  // 5. Anything that survived the drain window is closed unconditionally.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    snapshot.reserve(event_conns_.size());
    for (auto& [ptr, sp] : event_conns_) snapshot.push_back(sp);
  }
  for (auto& sp : snapshot) {
    sp->loop()->Post([sp] { sp->Close(); });
  }
  snapshot.clear();
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(1000),
                       [this] { return event_conns_.empty(); });
  }
  // 6. Loops drain their remaining posts (connection releases) and exit.
  loops_->Stop();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    event_conns_.clear();
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Result<QipcClient> QipcClient::Connect(const std::string& host,
                                       uint16_t port,
                                       const std::string& user,
                                       const std::string& password) {
  HQ_ASSIGN_OR_RETURN(TcpConnection conn, TcpConnection::Connect(host, port));
  std::vector<uint8_t> hs = qipc::EncodeHandshake(user, password);
  HQ_RETURN_IF_ERROR(conn.WriteAll(hs));
  Result<std::vector<uint8_t>> ack = conn.ReadExact(1);
  if (!ack.ok()) {
    return AuthError(
        "connection rejected during QIPC handshake (bad credentials?)");
  }
  return QipcClient(std::move(conn));
}

Result<QValue> QipcClient::Query(const std::string& q_text) {
  return Call(QValue::Chars(q_text));
}

Status QipcClient::AsyncCall(const QValue& value) {
  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> msg,
                      qipc::EncodeMessage(value, qipc::MsgType::kAsync));
  return conn_.WriteAll(msg);
}

Result<QValue> QipcClient::Call(const QValue& value) {
  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> msg,
                      qipc::EncodeMessage(value, qipc::MsgType::kSync));
  HQ_RETURN_IF_ERROR(conn_.WriteAll(msg));

  uint8_t header[8];
  HQ_RETURN_IF_ERROR(conn_.ReadExactInto(header, 8));
  HQ_ASSIGN_OR_RETURN(uint32_t len, qipc::PeekMessageLength(header));
  if (len < 9 || len > (256u << 20)) {
    return ProtocolError(StrCat("implausible QIPC response length ", len));
  }
  // Read the body straight after the header in one buffer — no
  // header/rest splice copy.
  std::vector<uint8_t> whole(len);
  std::memcpy(whole.data(), header, 8);
  HQ_RETURN_IF_ERROR(conn_.ReadExactInto(whole.data() + 8, len - 8));
  HQ_ASSIGN_OR_RETURN(qipc::DecodedMessage reply,
                      qipc::DecodeMessage(whole));
  if (reply.is_error) {
    return ExecutionError(StrCat("'", reply.error));
  }
  return reply.value;
}

}  // namespace hyperq
