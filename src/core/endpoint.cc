#include "core/endpoint.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "protocol/qipc/compress.h"

namespace hyperq {

namespace {

struct ServerMetrics {
  Gauge* connections_active;
  Counter* connections_total;
  Counter* connections_refused;
  Counter* handshake_failures;
  Counter* read_timeouts;
  Counter* bytes_in;
  Counter* bytes_out;
  Counter* compress_fallbacks;
  Counter* busy_rejections;
  Counter* deadline_armed;
  Counter* deadline_timeouts;
  LatencyHistogram* request_us;

  static ServerMetrics& Get() {
    static ServerMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new ServerMetrics{
          r.GetGauge("server.connections_active"),
          r.GetCounter("server.connections_total"),
          r.GetCounter("server.connections_refused"),
          r.GetCounter("server.handshake_failures"),
          r.GetCounter("server.read_timeouts"),
          r.GetCounter("server.bytes_in"),
          r.GetCounter("server.bytes_out"),
          r.GetCounter("server.compress_fallbacks"),
          r.GetCounter("server.busy_rejections"),
          r.GetCounter("deadline.armed_queries"),
          r.GetCounter("deadline.timeouts"),
          r.GetHistogram("server.request_us")};
    }();
    return *m;
  }
};

/// Egress-path metrics: how responses leave the process. encode_us is the
/// Relation→wire serialization alone; writev_calls vs messages_out shows
/// how often scatter replies needed more than one sendmsg batch;
/// compress_{in,out}_bytes give the achieved compression ratio.
struct WireMetrics {
  LatencyHistogram* encode_us;
  Counter* bytes_out;
  Counter* messages_out;
  Counter* writev_calls;
  Counter* scatter_slices;
  Counter* compress_in_bytes;
  Counter* compress_out_bytes;

  static WireMetrics& Get() {
    static WireMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new WireMetrics{
          r.GetHistogram("wire.encode_us"),
          r.GetCounter("wire.bytes_out"),
          r.GetCounter("wire.messages_out"),
          r.GetCounter("wire.writev_calls"),
          r.GetCounter("wire.scatter_slices"),
          r.GetCounter("wire.compress_in_bytes"),
          r.GetCounter("wire.compress_out_bytes")};
    }();
    return *m;
  }
};

bool IsTimeout(const Status& s) {
  return s.message().find("timed out") != std::string::npos;
}

/// Structured wire errors: a q client sees `'timeout` / `'busy` symbols it
/// can branch on instead of a free-form diagnostic string. Everything else
/// keeps the full status text.
std::string WireErrorText(const Status& s) {
  if (s.code() == StatusCode::kTimeout) return "timeout";
  if (s.code() == StatusCode::kUnavailable) return "busy";
  return s.ToString();
}

/// Once a request this large has been served, the connection's reusable
/// buffers are shrunk back so one oversized query does not pin its peak
/// footprint for the rest of the session.
constexpr size_t kConnBufferKeepBytes = 1u << 20;

void ShrinkIfOversized(std::vector<uint8_t>* buf) {
  if (buf->capacity() > kConnBufferKeepBytes) {
    buf->clear();
    buf->shrink_to_fit();
  }
}

uint32_t PlainLengthOfCompressed(const std::vector<uint8_t>& msg) {
  uint32_t v = 0;
  for (int k = 0; k < 4; ++k) v |= static_cast<uint32_t>(msg[8 + k]) << (8 * k);
  return v;
}

}  // namespace

Status HyperQServer::Start(uint16_t port) {
  HQ_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Listen(port));
  port_ = listener.port();
  listener_ = std::make_unique<TcpListener>(std::move(listener));
  running_ = true;
  accept_thread_ = std::make_unique<std::thread>([this]() { AcceptLoop(); });
  return Status::OK();
}

void HyperQServer::Stop() {
  if (!running_.exchange(false)) return;
  if (listener_) listener_->Close();
  if (accept_thread_ && accept_thread_->joinable()) accept_thread_->join();
  {
    // Drain, don't axe: SHUT_RD wakes workers blocked in recv (they see
    // EOF and exit), while a worker mid-query can still write its response
    // before its loop observes running_ == false. The drain must be
    // bounded, though — a peer that stops reading leaves a worker blocked
    // in send() with a full socket buffer, and an unbounded Stop() would
    // wedge behind it. Arming SO_SNDTIMEO caps any write the worker
    // *enters* from now on; it cannot wake a send() that is already
    // blocked, so stragglers past the drain window get SHUT_RDWR, which
    // does.
    std::unique_lock<std::mutex> lock(conn_mu_);
    struct timeval tv;
    int snd_ms = options_.drain_timeout_ms > 0 ? options_.drain_timeout_ms
                                               : 1;
    tv.tv_sec = snd_ms / 1000;
    tv.tv_usec = (snd_ms % 1000) * 1000;
    for (int fd : active_fds_) {
      ::shutdown(fd, SHUT_RD);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    drain_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_timeout_ms),
        [this]() { return active_fds_.empty(); });
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  HQ_LOG(Debug) << "qipc server stopped; final metrics:\n"
                << MetricsRegistry::Global().TextDump();
}

void HyperQServer::AcceptLoop() {
  while (running_) {
    Result<TcpConnection> conn = listener_->Accept();
    if (!conn.ok()) {
      if (running_) {
        HQ_LOG(Warning) << "qipc accept failed: "
                        << conn.status().ToString();
      }
      return;
    }
    workers_.emplace_back([this, c = std::move(*conn)]() mutable {
      HandleConnection(std::move(c));
    });
  }
}

void HyperQServer::RegisterFd(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.push_back(fd);
}

void HyperQServer::UnregisterFd(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.erase(std::remove(active_fds_.begin(), active_fds_.end(), fd),
                    active_fds_.end());
  if (active_fds_.empty()) drain_cv_.notify_all();
}

void HyperQServer::HandleConnection(TcpConnection conn) {
  ServerMetrics& metrics = ServerMetrics::Get();
  metrics.connections_total->Increment();
  // Admission control: reserve a slot before any protocol work; over-limit
  // connections are closed before the accept byte, which clients observe
  // as a rejected handshake instead of an unbounded worker pile-up.
  // The gauge mirrors active_count_ via Set() rather than Add(+-1) so a
  // mid-flight .hyperq.resetStats[] desyncs it only until the next
  // connection event instead of driving it negative forever.
  struct SlotGuard {
    HyperQServer* s;
    ~SlotGuard() {
      int now = s->active_count_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      ServerMetrics::Get().connections_active->Set(now);
    }
  };
  int prior = active_count_.fetch_add(1, std::memory_order_acq_rel);
  metrics.connections_active->Set(prior + 1);
  SlotGuard slot{this};
  if (prior >= options_.max_connections) {
    metrics.connections_refused->Increment();
    return;
  }

  RegisterFd(conn.fd());
  struct FdGuard {
    HyperQServer* s;
    int fd;
    ~FdGuard() { s->UnregisterFd(fd); }
  } guard{this, conn.fd()};

  if (options_.read_timeout_ms > 0) {
    if (!conn.SetReadTimeout(options_.read_timeout_ms).ok()) return;
  }

  // Handshake: read the NUL-terminated credential block (§4.2).
  std::vector<uint8_t> creds;
  while (true) {
    Result<std::vector<uint8_t>> chunk = conn.ReadSome(256);
    if (!chunk.ok() || chunk->empty()) {
      if (!chunk.ok() && IsTimeout(chunk.status())) {
        metrics.read_timeouts->Increment();
      }
      metrics.handshake_failures->Increment();
      return;
    }
    creds.insert(creds.end(), chunk->begin(), chunk->end());
    if (creds.back() == 0) break;
    if (creds.size() > 4096) {  // junk
      metrics.handshake_failures->Increment();
      return;
    }
  }
  metrics.bytes_in->Increment(creds.size());
  Result<qipc::HandshakeRequest> hs = qipc::DecodeHandshake(creds);
  if (!hs.ok()) {
    metrics.handshake_failures->Increment();
    return;
  }
  if (!options_.user.empty() &&
      (hs->user != options_.user || hs->password != options_.password)) {
    // Rejected credentials: close immediately, as kdb+ does (§4.2).
    metrics.handshake_failures->Increment();
    return;
  }
  // Accept: single byte echoing a supported protocol version.
  uint8_t accept_version = hs->version > 3 ? 3 : hs->version;
  if (!conn.WriteAll(&accept_version, 1).ok()) return;
  metrics.bytes_out->Increment(1);

  ServeRequests(conn);
}

void HyperQServer::ServeRequests(TcpConnection& conn) {
  ServerMetrics& metrics = ServerMetrics::Get();
  WireMetrics& wire = WireMetrics::Get();
  // One Hyper-Q session per connection (its own temp-table namespace and
  // variable scopes), over the configured gateway — direct by default,
  // the scatter-gather coordinator when a factory is installed.
  std::unique_ptr<HyperQSession> owned_session =
      options_.gateway_factory
          ? std::make_unique<HyperQSession>(options_.gateway_factory(),
                                            options_.session)
          : std::make_unique<HyperQSession>(backend_, options_.session);
  HyperQSession& session = *owned_session;

  // Per-connection reusable buffers: the request buffer absorbs header +
  // body in place (no per-request allocation, no header/rest splice), and
  // the encode arena + slice list back the scatter egress path. All are
  // shrunk back after an oversized request (kConnBufferKeepBytes).
  std::vector<uint8_t> request;
  ByteWriter arena;
  std::vector<IoSlice> slices;

  while (running_) {
    uint8_t header[8];
    Status header_read = conn.ReadExactInto(header, 8);
    if (!header_read.ok()) {  // disconnect or idle timeout
      if (IsTimeout(header_read)) metrics.read_timeouts->Increment();
      break;
    }
    auto request_start = std::chrono::steady_clock::now();
    Result<uint32_t> len = qipc::PeekMessageLength(header);
    if (!len.ok() || *len < 9 || *len > (256u << 20)) break;
    request.resize(*len);
    std::memcpy(request.data(), header, 8);
    Status body_read = conn.ReadExactInto(request.data() + 8, *len - 8);
    if (!body_read.ok()) {
      if (IsTimeout(body_read)) metrics.read_timeouts->Increment();
      break;
    }
    metrics.bytes_in->Increment(*len);

    Result<qipc::DecodedMessage> msg = qipc::DecodeMessage(request);
    // Injected decode failures look exactly like a malformed request: a
    // structured error reply, never a dropped or torn frame.
    if (FaultHit f = CheckFault("qipc.decode");
        f.kind == FaultHit::Kind::kError) {
      msg = f.error;
    }
    // A reply is either `reply` bytes (errors, compressed responses) or
    // `slices` into arena + result columns (plain scatter fast path).
    std::vector<uint8_t> reply;
    slices.clear();
    Result<QValue> result = QValue();
    if (!msg.ok()) {
      reply = qipc::EncodeError(msg.status().ToString(),
                                qipc::MsgType::kResponse);
    } else if (msg->value.type() != QType::kChar) {
      reply = qipc::EncodeError(
          "expected a query string (char list) in the request",
          qipc::MsgType::kResponse);
    } else {
      std::string q_text = msg->value.is_atom()
                               ? std::string(1, msg->value.AsChar())
                               : msg->value.CharsView();
      // Per-query deadline: the session's own (.hyperq.deadline[ms])
      // overrides the server default. The ambient deadline covers
      // translate, execute (incl. morsel fan-out) and serialize; builtins
      // are exempt (they are how a wedged client un-wedges the server).
      int64_t dl_ms = session.deadline_ms() > 0
                          ? session.deadline_ms()
                          : options_.default_deadline_ms;
      Deadline deadline =
          dl_ms > 0 ? Deadline::After(dl_ms) : Deadline();
      if (deadline.armed()) metrics.deadline_armed->Increment();
      ScopedDeadline scoped(deadline);
      // Load shedding: a caller beyond the inflight cap gets the
      // structured 'busy answer immediately — bounded queueing, and the
      // client knows to back off (its retry, not ours: the request never
      // started, so retrying it is always safe).
      struct InflightGuard {
        std::atomic<int>* n;
        ~InflightGuard() {
          if (n != nullptr) n->fetch_sub(1, std::memory_order_acq_rel);
        }
      } inflight{nullptr};
      bool shed = false;
      if (options_.max_inflight_queries > 0) {
        int prior =
            inflight_queries_.fetch_add(1, std::memory_order_acq_rel);
        inflight.n = &inflight_queries_;
        if (prior >= options_.max_inflight_queries) {
          metrics.busy_rejections->Increment();
          result = UnavailableError("server at inflight query cap");
          shed = true;
        }
      }
      if (!shed) result = session.Query(q_text);
      if (!result.ok()) {
        if (result.status().code() == StatusCode::kTimeout) {
          metrics.deadline_timeouts->Increment();
        }
        reply = qipc::EncodeError(WireErrorText(result.status()),
                                  qipc::MsgType::kResponse);
      } else if (FaultHit f = CheckFault("qipc.encode");
                 f.kind == FaultHit::Kind::kError) {
        // Injected encode failure: the response is replaced by a
        // structured error, exactly like a real serialization bug.
        reply = qipc::EncodeError(f.error.ToString(),
                                  qipc::MsgType::kResponse);
      } else {
        auto encode_start = std::chrono::steady_clock::now();
        if (options_.compress_responses) {
          Result<std::vector<uint8_t>> encoded =
              options_.block_compression
                  ? qipc::EncodeMessageCompressedBlocked(
                        *result, qipc::MsgType::kResponse)
                  : qipc::EncodeMessageCompressed(*result,
                                                  qipc::MsgType::kResponse);
          if (!encoded.ok()) {
            reply = qipc::EncodeError(encoded.status().ToString(),
                                      qipc::MsgType::kResponse);
          } else {
            if ((*encoded)[2] == 0) {
              // Incompressible (or under-threshold) payload fell back to
              // the plain encoding.
              metrics.compress_fallbacks->Increment();
            } else if (encoded->size() > 12) {
              wire.compress_in_bytes->Increment(
                  PlainLengthOfCompressed(*encoded));
              wire.compress_out_bytes->Increment(encoded->size());
            }
            reply = std::move(*encoded);
          }
        } else {
          // Plain responses take the zero-copy path: framing and small
          // payloads land in the reusable arena, large typed columns are
          // borrowed from `result` and gathered by WriteAllV.
          Status enc = qipc::EncodeMessageScatter(
              *result, qipc::MsgType::kResponse, &arena, &slices);
          if (!enc.ok()) {
            slices.clear();
            reply = qipc::EncodeError(enc.ToString(),
                                      qipc::MsgType::kResponse);
          }
        }
        auto encode_end = std::chrono::steady_clock::now();
        wire.encode_us->Record(
            std::chrono::duration<double, std::micro>(encode_end -
                                                      encode_start)
                .count());
      }
      // Async messages expect no response.
      if (msg->type == qipc::MsgType::kAsync) {
        ShrinkIfOversized(&request);
        continue;
      }
    }
    size_t reply_bytes = 0;
    bool sent;
    if (!slices.empty()) {
      for (const IoSlice& s : slices) reply_bytes += s.len;
      wire.scatter_slices->Increment(slices.size());
      wire.writev_calls->Increment();
      sent = conn.WriteAllV(slices).ok();
    } else {
      reply_bytes = reply.size();
      sent = conn.WriteAll(reply).ok();
    }
    if (sent) {
      metrics.bytes_out->Increment(reply_bytes);
      wire.bytes_out->Increment(reply_bytes);
      wire.messages_out->Increment();
      auto end = std::chrono::steady_clock::now();
      metrics.request_us->Record(
          std::chrono::duration<double, std::micro>(end - request_start)
              .count());
    }
    if (!sent) break;
    ShrinkIfOversized(&request);
    if (arena.data().capacity() > kConnBufferKeepBytes) arena = ByteWriter();
  }
  (void)session.Close();
}

Result<QipcClient> QipcClient::Connect(const std::string& host,
                                       uint16_t port,
                                       const std::string& user,
                                       const std::string& password) {
  HQ_ASSIGN_OR_RETURN(TcpConnection conn, TcpConnection::Connect(host, port));
  std::vector<uint8_t> hs = qipc::EncodeHandshake(user, password);
  HQ_RETURN_IF_ERROR(conn.WriteAll(hs));
  Result<std::vector<uint8_t>> ack = conn.ReadExact(1);
  if (!ack.ok()) {
    return AuthError(
        "connection rejected during QIPC handshake (bad credentials?)");
  }
  return QipcClient(std::move(conn));
}

Result<QValue> QipcClient::Query(const std::string& q_text) {
  HQ_ASSIGN_OR_RETURN(
      std::vector<uint8_t> msg,
      qipc::EncodeMessage(QValue::Chars(q_text), qipc::MsgType::kSync));
  HQ_RETURN_IF_ERROR(conn_.WriteAll(msg));

  uint8_t header[8];
  HQ_RETURN_IF_ERROR(conn_.ReadExactInto(header, 8));
  HQ_ASSIGN_OR_RETURN(uint32_t len, qipc::PeekMessageLength(header));
  if (len < 9 || len > (256u << 20)) {
    return ProtocolError(StrCat("implausible QIPC response length ", len));
  }
  // Read the body straight after the header in one buffer — no
  // header/rest splice copy.
  std::vector<uint8_t> whole(len);
  std::memcpy(whole.data(), header, 8);
  HQ_RETURN_IF_ERROR(conn_.ReadExactInto(whole.data() + 8, len - 8));
  HQ_ASSIGN_OR_RETURN(qipc::DecodedMessage reply,
                      qipc::DecodeMessage(whole));
  if (reply.is_error) {
    return ExecutionError(StrCat("'", reply.error));
  }
  return reply.value;
}

}  // namespace hyperq
