#include "core/endpoint.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "protocol/qipc/compress.h"

namespace hyperq {

namespace {

struct ServerMetrics {
  Gauge* connections_active;
  Counter* connections_total;
  Counter* connections_refused;
  Counter* handshake_failures;
  Counter* read_timeouts;
  Counter* bytes_in;
  Counter* bytes_out;
  Counter* compress_fallbacks;
  LatencyHistogram* request_us;

  static ServerMetrics& Get() {
    static ServerMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new ServerMetrics{
          r.GetGauge("server.connections_active"),
          r.GetCounter("server.connections_total"),
          r.GetCounter("server.connections_refused"),
          r.GetCounter("server.handshake_failures"),
          r.GetCounter("server.read_timeouts"),
          r.GetCounter("server.bytes_in"),
          r.GetCounter("server.bytes_out"),
          r.GetCounter("server.compress_fallbacks"),
          r.GetHistogram("server.request_us")};
    }();
    return *m;
  }
};

bool IsTimeout(const Status& s) {
  return s.message().find("timed out") != std::string::npos;
}

}  // namespace

Status HyperQServer::Start(uint16_t port) {
  HQ_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Listen(port));
  port_ = listener.port();
  listener_ = std::make_unique<TcpListener>(std::move(listener));
  running_ = true;
  accept_thread_ = std::make_unique<std::thread>([this]() { AcceptLoop(); });
  return Status::OK();
}

void HyperQServer::Stop() {
  if (!running_.exchange(false)) return;
  if (listener_) listener_->Close();
  if (accept_thread_ && accept_thread_->joinable()) accept_thread_->join();
  {
    // Drain, don't axe: SHUT_RD wakes workers blocked in recv (they see
    // EOF and exit), while a worker mid-query can still write its response
    // before its loop observes running_ == false.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RD);
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  HQ_LOG(Debug) << "qipc server stopped; final metrics:\n"
                << MetricsRegistry::Global().TextDump();
}

void HyperQServer::AcceptLoop() {
  while (running_) {
    Result<TcpConnection> conn = listener_->Accept();
    if (!conn.ok()) {
      if (running_) {
        HQ_LOG(Warning) << "qipc accept failed: "
                        << conn.status().ToString();
      }
      return;
    }
    workers_.emplace_back([this, c = std::move(*conn)]() mutable {
      HandleConnection(std::move(c));
    });
  }
}

void HyperQServer::RegisterFd(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.push_back(fd);
}

void HyperQServer::UnregisterFd(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.erase(std::remove(active_fds_.begin(), active_fds_.end(), fd),
                    active_fds_.end());
}

void HyperQServer::HandleConnection(TcpConnection conn) {
  ServerMetrics& metrics = ServerMetrics::Get();
  metrics.connections_total->Increment();
  // Admission control: reserve a slot before any protocol work; over-limit
  // connections are closed before the accept byte, which clients observe
  // as a rejected handshake instead of an unbounded worker pile-up.
  // The gauge mirrors active_count_ via Set() rather than Add(+-1) so a
  // mid-flight .hyperq.resetStats[] desyncs it only until the next
  // connection event instead of driving it negative forever.
  struct SlotGuard {
    HyperQServer* s;
    ~SlotGuard() {
      int now = s->active_count_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      ServerMetrics::Get().connections_active->Set(now);
    }
  };
  int prior = active_count_.fetch_add(1, std::memory_order_acq_rel);
  metrics.connections_active->Set(prior + 1);
  SlotGuard slot{this};
  if (prior >= options_.max_connections) {
    metrics.connections_refused->Increment();
    return;
  }

  RegisterFd(conn.fd());
  struct FdGuard {
    HyperQServer* s;
    int fd;
    ~FdGuard() { s->UnregisterFd(fd); }
  } guard{this, conn.fd()};

  if (options_.read_timeout_ms > 0) {
    if (!conn.SetReadTimeout(options_.read_timeout_ms).ok()) return;
  }

  // Handshake: read the NUL-terminated credential block (§4.2).
  std::vector<uint8_t> creds;
  while (true) {
    Result<std::vector<uint8_t>> chunk = conn.ReadSome(256);
    if (!chunk.ok() || chunk->empty()) {
      if (!chunk.ok() && IsTimeout(chunk.status())) {
        metrics.read_timeouts->Increment();
      }
      metrics.handshake_failures->Increment();
      return;
    }
    creds.insert(creds.end(), chunk->begin(), chunk->end());
    if (creds.back() == 0) break;
    if (creds.size() > 4096) {  // junk
      metrics.handshake_failures->Increment();
      return;
    }
  }
  metrics.bytes_in->Increment(creds.size());
  Result<qipc::HandshakeRequest> hs = qipc::DecodeHandshake(creds);
  if (!hs.ok()) {
    metrics.handshake_failures->Increment();
    return;
  }
  if (!options_.user.empty() &&
      (hs->user != options_.user || hs->password != options_.password)) {
    // Rejected credentials: close immediately, as kdb+ does (§4.2).
    metrics.handshake_failures->Increment();
    return;
  }
  // Accept: single byte echoing a supported protocol version.
  uint8_t accept_version = hs->version > 3 ? 3 : hs->version;
  if (!conn.WriteAll(&accept_version, 1).ok()) return;
  metrics.bytes_out->Increment(1);

  ServeRequests(conn);
}

void HyperQServer::ServeRequests(TcpConnection& conn) {
  ServerMetrics& metrics = ServerMetrics::Get();
  // One Hyper-Q session per connection (its own temp-table namespace and
  // variable scopes).
  HyperQSession session(backend_, options_.session);

  while (running_) {
    Result<std::vector<uint8_t>> header = conn.ReadExact(8);
    if (!header.ok()) {  // disconnect or idle timeout
      if (IsTimeout(header.status())) metrics.read_timeouts->Increment();
      break;
    }
    auto request_start = std::chrono::steady_clock::now();
    Result<uint32_t> len = qipc::PeekMessageLength(header->data());
    if (!len.ok() || *len < 9 || *len > (256u << 20)) break;
    Result<std::vector<uint8_t>> rest = conn.ReadExact(*len - 8);
    if (!rest.ok()) {
      if (IsTimeout(rest.status())) metrics.read_timeouts->Increment();
      break;
    }
    metrics.bytes_in->Increment(*len);
    std::vector<uint8_t> whole = std::move(*header);
    whole.insert(whole.end(), rest->begin(), rest->end());

    Result<qipc::DecodedMessage> msg = qipc::DecodeMessage(whole);
    std::vector<uint8_t> reply;
    if (!msg.ok()) {
      reply = qipc::EncodeError(msg.status().ToString(),
                                qipc::MsgType::kResponse);
    } else if (msg->value.type() != QType::kChar) {
      reply = qipc::EncodeError(
          "expected a query string (char list) in the request",
          qipc::MsgType::kResponse);
    } else {
      std::string q_text = msg->value.is_atom()
                               ? std::string(1, msg->value.AsChar())
                               : msg->value.CharsView();
      Result<QValue> result = session.Query(q_text);
      if (!result.ok()) {
        reply = qipc::EncodeError(result.status().ToString(),
                                  qipc::MsgType::kResponse);
      } else {
        Result<std::vector<uint8_t>> encoded =
            options_.compress_responses
                ? qipc::EncodeMessageCompressed(*result,
                                                qipc::MsgType::kResponse)
                : qipc::EncodeMessage(*result, qipc::MsgType::kResponse);
        if (!encoded.ok()) {
          reply = qipc::EncodeError(encoded.status().ToString(),
                                    qipc::MsgType::kResponse);
        } else {
          if (options_.compress_responses &&
              !qipc::IsCompressedMessage(*encoded)) {
            // Incompressible (or under-threshold) payload fell back to the
            // plain encoding.
            metrics.compress_fallbacks->Increment();
          }
          reply = std::move(*encoded);
        }
      }
      // Async messages expect no response.
      if (msg->type == qipc::MsgType::kAsync) continue;
    }
    bool sent = conn.WriteAll(reply).ok();
    if (sent) {
      metrics.bytes_out->Increment(reply.size());
      auto end = std::chrono::steady_clock::now();
      metrics.request_us->Record(
          std::chrono::duration<double, std::micro>(end - request_start)
              .count());
    }
    if (!sent) break;
  }
  (void)session.Close();
}

Result<QipcClient> QipcClient::Connect(const std::string& host,
                                       uint16_t port,
                                       const std::string& user,
                                       const std::string& password) {
  HQ_ASSIGN_OR_RETURN(TcpConnection conn, TcpConnection::Connect(host, port));
  std::vector<uint8_t> hs = qipc::EncodeHandshake(user, password);
  HQ_RETURN_IF_ERROR(conn.WriteAll(hs));
  Result<std::vector<uint8_t>> ack = conn.ReadExact(1);
  if (!ack.ok()) {
    return AuthError(
        "connection rejected during QIPC handshake (bad credentials?)");
  }
  return QipcClient(std::move(conn));
}

Result<QValue> QipcClient::Query(const std::string& q_text) {
  HQ_ASSIGN_OR_RETURN(
      std::vector<uint8_t> msg,
      qipc::EncodeMessage(QValue::Chars(q_text), qipc::MsgType::kSync));
  HQ_RETURN_IF_ERROR(conn_.WriteAll(msg));

  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> header, conn_.ReadExact(8));
  HQ_ASSIGN_OR_RETURN(uint32_t len, qipc::PeekMessageLength(header.data()));
  if (len < 9 || len > (256u << 20)) {
    return ProtocolError(StrCat("implausible QIPC response length ", len));
  }
  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> rest, conn_.ReadExact(len - 8));
  std::vector<uint8_t> whole = std::move(header);
  whole.insert(whole.end(), rest.begin(), rest.end());
  HQ_ASSIGN_OR_RETURN(qipc::DecodedMessage reply,
                      qipc::DecodeMessage(whole));
  if (reply.is_error) {
    return ExecutionError(StrCat("'", reply.error));
  }
  return reply.value;
}

}  // namespace hyperq
