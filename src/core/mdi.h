#ifndef HYPERQ_CORE_MDI_H_
#define HYPERQ_CORE_MDI_H_

#include "algebrizer/metadata.h"
#include "sqldb/database.h"

namespace hyperq {

/// Maps a backend SQL type to Hyper-Q's (Q-flavoured) type system.
QType QTypeFromSqlType(sqldb::SqlType type);
/// Maps a Q type to the backend column type used when materializing.
sqldb::SqlType SqlTypeFromQType(QType type);

/// MetaData Interface backed by the mini PG database's catalog: the
/// "PG MDI" at the bottom of the scope hierarchy in Figure 3. Session temp
/// tables (Hyper-Q's materialized variables) resolve before shared tables.
class SqldbMetadata : public MetadataInterface {
 public:
  SqldbMetadata(sqldb::Database* db, sqldb::Session* session)
      : db_(db), session_(session) {}

  Result<TableMetadata> LookupTable(const std::string& name) override;
  bool HasTable(const std::string& name) override;

  /// Catalog version for cache invalidation.
  uint64_t CatalogVersion() const { return db_->catalog().version(); }

 private:
  sqldb::Database* db_;
  sqldb::Session* session_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_MDI_H_
