#ifndef HYPERQ_CORE_GATEWAY_H_
#define HYPERQ_CORE_GATEWAY_H_

#include <memory>
#include <string>

#include "common/fault.h"
#include "common/status.h"
#include "sqldb/database.h"

namespace hyperq {

/// The Gateway is the PG-side plugin of Figure 1: it carries SQL to the
/// backend and results back. Implementations: an in-process gateway bound
/// directly to the mini PG engine, and a wire gateway speaking the PG v3
/// protocol over TCP (protocol/pgwire).
class BackendGateway {
 public:
  virtual ~BackendGateway() = default;

  virtual Result<sqldb::QueryResult> Execute(const std::string& sql) = 0;

  /// Human-readable backend description for logs.
  virtual std::string Describe() const = 0;
};

/// Direct in-process gateway: one backend session per gateway, giving the
/// translator its temp-table namespace.
class DirectGateway : public BackendGateway {
 public:
  explicit DirectGateway(sqldb::Database* db)
      : db_(db), session_(db->CreateSession()) {}

  Result<sqldb::QueryResult> Execute(const std::string& sql) override {
    // The gateway is where a remote backend would fail (connection loss,
    // overload); injected errors here surface as transient kUnavailable so
    // the cross compiler's retry policy sees exactly what a flaky
    // backend-gateway link produces.
    if (FaultHit f = CheckFault("backend.execute");
        f.kind == FaultHit::Kind::kError) {
      return f.error;
    }
    return db_->Execute(session_.get(), sql);
  }

  std::string Describe() const override { return "direct(sqldb)"; }

  sqldb::Session* session() { return session_.get(); }
  sqldb::Database* database() { return db_; }

 private:
  sqldb::Database* db_;
  std::unique_ptr<sqldb::Session> session_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_GATEWAY_H_
