#ifndef HYPERQ_CORE_GATEWAY_H_
#define HYPERQ_CORE_GATEWAY_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/fault.h"
#include "common/status.h"
#include "core/query_translator.h"
#include "sqldb/database.h"

namespace hyperq {

class LiveStore;

/// The Gateway is the PG-side plugin of Figure 1: it carries SQL to the
/// backend and results back. Implementations: an in-process gateway bound
/// directly to the mini PG engine, a wire gateway speaking the PG v3
/// protocol over TCP (protocol/pgwire), and the sharded scatter-gather
/// coordinator (src/shard).
class BackendGateway {
 public:
  virtual ~BackendGateway() = default;

  virtual Result<sqldb::QueryResult> Execute(const std::string& sql) = 0;

  /// Dispatches a fully translated result query. The default ignores the
  /// shard plan and executes the result SQL as-is; a sharded gateway
  /// scatters the per-shard SQL and merges the partials.
  virtual Result<sqldb::QueryResult> ExecuteTranslated(const Translation& t) {
    return Execute(t.result_sql);
  }

  /// Partitioning info for a base table; nullopt when the gateway is not
  /// sharded or the table is not partitioned.
  virtual std::optional<ShardTableInfo> ShardInfo(
      const std::string& table) const {
    (void)table;
    return std::nullopt;
  }

  /// True when the table is live-backed: rows may sit in an in-memory
  /// ingest tail in addition to the historical backend (docs/INGEST.md).
  virtual bool IsLiveTable(const std::string& table) const {
    (void)table;
    return false;
  }

  /// The ingest store feeding this gateway's live tables; null when the
  /// gateway serves static tables only.
  virtual LiveStore* live_store() { return nullptr; }

  /// In-process backend handles for metadata lookups and loaders; null
  /// for pure wire gateways.
  virtual sqldb::Database* database() { return nullptr; }
  virtual sqldb::Session* session() { return nullptr; }

  /// Visits every in-process backend database this gateway can reach
  /// (cache-invalidation fan-out: a sharded gateway also visits its shard
  /// backends). No-op for pure wire gateways.
  virtual void ForEachDatabase(
      const std::function<void(sqldb::Database*)>& fn) {
    if (sqldb::Database* db = database()) fn(db);
  }

  /// Human-readable backend description for logs.
  virtual std::string Describe() const = 0;
};

/// Direct in-process gateway: one backend session per gateway, giving the
/// translator its temp-table namespace.
class DirectGateway : public BackendGateway {
 public:
  explicit DirectGateway(sqldb::Database* db)
      : db_(db), session_(db->CreateSession()) {}

  Result<sqldb::QueryResult> Execute(const std::string& sql) override {
    // The gateway is where a remote backend would fail (connection loss,
    // overload); injected errors here surface as transient kUnavailable so
    // the cross compiler's retry policy sees exactly what a flaky
    // backend-gateway link produces.
    if (FaultHit f = CheckFault("backend.execute");
        f.kind == FaultHit::Kind::kError) {
      return f.error;
    }
    return db_->Execute(session_.get(), sql);
  }

  std::string Describe() const override { return "direct(sqldb)"; }

  sqldb::Session* session() override { return session_.get(); }
  sqldb::Database* database() override { return db_; }

 private:
  sqldb::Database* db_;
  std::unique_ptr<sqldb::Session> session_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_GATEWAY_H_
