#ifndef HYPERQ_CORE_ENDPOINT_H_
#define HYPERQ_CORE_ENDPOINT_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/worker_pool.h"
#include "core/hyperq.h"
#include "net/event_loop.h"
#include "net/tcp.h"
#include "protocol/qipc/qipc.h"

namespace hyperq {

/// The Endpoint plugin of Figure 1: listens on the port the original kdb+
/// server would own (§3.1: "Hyper-Q takes over kdb+ server by listening to
/// incoming messages on the port used by the original kdb+ server"),
/// performs the QIPC handshake, extracts query text from incoming messages
/// and runs each request through a per-connection HyperQSession.
///
/// Two selectable front ends (Options::io_model):
///   - kEventLoop (default): an epoll reactor multiplexes every connection
///     as a per-socket protocol state machine; queries execute on a small
///     TaskPool (which fans morsels out to the shared WorkerPool) and
///     responses drain asynchronously on EPOLLOUT. Idle sessions cost a
///     few hundred bytes, so tens of thousands are affordable.
///   - kThreadPerConnection: the original model, one blocking handler
///     thread per admitted connection. Kept for A/B comparison
///     (bench_endpoint_c10k) and as a fallback.
/// Both models produce byte-identical wire traffic for the same requests.
class HyperQServer {
 public:
  struct Options {
    HyperQSession::Options session;
    /// Empty user accepts any credentials (kdb+'s historical default of no
    /// access control, §2.2); otherwise user/password must match.
    std::string user;
    std::string password;
    /// Compress large responses with kdb+ IPC compression (§3.1). kdb+
    /// compresses only for remote peers; the endpoint makes it opt-in.
    bool compress_responses = false;
    /// With compress_responses, use the blocked scheme-2 format whose
    /// blocks compress in parallel on the shared worker pool. Only valid
    /// when the peer is our own QipcClient/DecodeMessage (real kdb+
    /// clients understand the single-stream scheme only), so it is a
    /// separate serve-side opt-in.
    bool block_compression = false;
    /// Connection-handling front end; see the class comment.
    IoModel io_model = IoModel::kEventLoop;
    /// Reactor threads for the event-loop model; 0 sizes to the hardware
    /// (min(cores, 8)).
    int event_loop_threads = 0;
    /// Query-execution threads for the event-loop model (each runs whole
    /// queries; morsel fan-out still happens on the shared WorkerPool);
    /// 0 picks a small hardware default.
    int exec_threads = 0;
    /// Hard cap on simultaneously served connections; refusals are closed
    /// before the accept byte, which a q client surfaces as a rejected
    /// handshake rather than a hang. 0 picks the model default: 256 for
    /// thread-per-connection (a thread each), 65536 for the event loop
    /// (a small state machine each).
    int max_connections = 0;
    /// Per-connection idle read timeout in milliseconds; 0 disables. A
    /// connection whose next request does not arrive in time is closed
    /// (slow-loris style half-open peers no longer pin a worker forever).
    int read_timeout_ms = 0;
    /// Default per-query deadline in milliseconds; 0 disables. A session
    /// can override its own with `.hyperq.deadline[ms]`. Expired queries
    /// answer with the structured 'timeout error and the connection stays
    /// usable.
    int64_t default_deadline_ms = 0;
    /// Load shedding: sync queries beyond this many simultaneously
    /// executing ones are answered immediately with the structured 'busy
    /// error instead of queueing without bound. 0 disables.
    int max_inflight_queries = 0;
    /// Stop() drain bound in milliseconds: how long in-flight requests may
    /// take to finish writing their responses before the stragglers are
    /// forced out. The thread model arms socket send timeouts plus a
    /// write-side shutdown; the event loop arms a per-connection
    /// force-close timer on its reactor.
    int drain_timeout_ms = 5000;
    /// Builds the backend gateway for each connection's session; null uses
    /// a DirectGateway on the server's backend. Lets the server front the
    /// sharded scatter-gather coordinator: the factory is called once per
    /// connection and each gateway must expose in-process
    /// database()/session() handles (see HyperQSession).
    std::function<std::unique_ptr<BackendGateway>()> gateway_factory;
  };

  HyperQServer(sqldb::Database* backend, Options options)
      : backend_(backend),
        options_(std::move(options)),
        translation_cache_(options_.session.translation_cache) {
    // One translation cache for the whole server: every per-connection
    // session shares the hot entries (the cache is internally sharded and
    // thread-safe). Sessions receive it through their options.
    translation_cache_.SetVersionProvider(
        [this]() { return backend_->catalog().version(); });
    options_.session.shared_translation_cache = &translation_cache_;
  }
  ~HyperQServer() { Stop(); }

  /// Binds 127.0.0.1:port (0 = ephemeral) and serves until Stop().
  Status Start(uint16_t port);
  uint16_t port() const { return port_; }

  /// Stops accepting, then drains: in-flight requests run to completion
  /// and their responses are written (reads are shut down, writes are
  /// not); idle connections close immediately. Blocks until every
  /// connection has closed (bounded by drain_timeout_ms). Safe to call
  /// repeatedly / concurrently.
  void Stop();

  /// Admitted (or about-to-be-refused) connections right now. Returns to
  /// 0 after all clients disconnect.
  int active_connections() const {
    return active_count_.load(std::memory_order_acquire);
  }

  /// The configured cap with model defaults applied (Options comment).
  int effective_max_connections() const {
    if (options_.max_connections > 0) return options_.max_connections;
    return options_.io_model == IoModel::kEventLoop ? 65536 : 256;
  }

  /// The server-wide translation cache shared by all sessions.
  TranslationCache& translation_cache() { return translation_cache_; }

 private:
  class QipcEventConn;
  friend class QipcEventConn;

  // --- thread-per-connection model ---
  void AcceptLoop();
  void HandleConnection(TcpConnection conn);
  void ServeRequests(TcpConnection& conn);
  void RegisterFd(int fd);
  void UnregisterFd(int fd);
  void StopThreadModel();

  // --- event-loop model ---
  Status StartEventModel();
  void StopEventModel();
  /// Listener-ready callback on loop 0 (single dispatcher): accepts every
  /// pending socket, applies admission control without blocking, and
  /// round-robins admitted connections across the reactor group.
  void EventAcceptReady();
  void OnEventConnClosed(EventConn* conn);

  // --- shared ---
  /// Decode → deadline → shed → execute → encode for one request frame;
  /// both io models call this, which is what keeps their wire bytes
  /// identical by construction. Sets *respond = false for async messages
  /// (executed, no reply).
  void BuildReply(HyperQSession& session,
                  const std::vector<uint8_t>& request, Outgoing* out,
                  bool* respond, bool shed);
  /// Inflight-query admission: returns true when this query must be
  /// answered 'busy. Every call must be paired with DoneExecuting().
  bool ShouldShed();
  void DoneExecuting();
  std::unique_ptr<HyperQSession> MakeSession();
  /// Tracks the `server.connections_idle` gauge (admitted connections not
  /// currently executing a query).
  void AdjustIdle(int delta);

  sqldb::Database* backend_;
  Options options_;
  TranslationCache translation_cache_;
  uint16_t port_ = 0;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<std::thread> accept_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<int> active_count_{0};
  std::atomic<int> idle_count_{0};
  std::atomic<int> inflight_queries_{0};
  std::mutex conn_mu_;
  std::condition_variable drain_cv_;
  std::vector<int> active_fds_;

  std::unique_ptr<EventLoopGroup> loops_;
  std::unique_ptr<TaskPool> exec_pool_;
  EventLoop::Watch* listen_watch_ = nullptr;  // loop-0-thread-only
  /// Keeps every live event connection alive; guarded by conn_mu_.
  std::unordered_map<EventConn*, std::shared_ptr<EventConn>> event_conns_;
};

/// A minimal Q-application-side client: speaks QIPC exactly as a q process
/// would (handshake, sync query messages, response/error decoding). Used by
/// the examples and the end-to-end tests to play the role of the unchanged
/// Q application.
class QipcClient {
 public:
  static Result<QipcClient> Connect(const std::string& host, uint16_t port,
                                    const std::string& user,
                                    const std::string& password);

  /// Sends a sync query and decodes the response (errors surface as
  /// ExecutionError carrying the server's message).
  Result<QValue> Query(const std::string& q_text);

  /// Sends an arbitrary Q value synchronously — e.g. a tickerplant
  /// publish `(`upd; `trade; batch)` — and decodes the reply.
  Result<QValue> Call(const QValue& value);

  /// Fire-and-forget publish (kAsync): the server executes the message
  /// and sends no reply, exactly like a q tickerplant subscriber feed.
  Status AsyncCall(const QValue& value);

  void Close() { conn_.Close(); }

 private:
  explicit QipcClient(TcpConnection conn) : conn_(std::move(conn)) {}

  TcpConnection conn_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_ENDPOINT_H_
