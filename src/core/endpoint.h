#ifndef HYPERQ_CORE_ENDPOINT_H_
#define HYPERQ_CORE_ENDPOINT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/hyperq.h"
#include "net/tcp.h"
#include "protocol/qipc/qipc.h"

namespace hyperq {

/// The Endpoint plugin of Figure 1: listens on the port the original kdb+
/// server would own (§3.1: "Hyper-Q takes over kdb+ server by listening to
/// incoming messages on the port used by the original kdb+ server"),
/// performs the QIPC handshake, extracts query text from incoming messages
/// and runs each request through a per-connection HyperQSession.
class HyperQServer {
 public:
  struct Options {
    HyperQSession::Options session;
    /// Empty user accepts any credentials (kdb+'s historical default of no
    /// access control, §2.2); otherwise user/password must match.
    std::string user;
    std::string password;
    /// Compress large responses with kdb+ IPC compression (§3.1). kdb+
    /// compresses only for remote peers; the endpoint makes it opt-in.
    bool compress_responses = false;
  };

  HyperQServer(sqldb::Database* backend, Options options)
      : backend_(backend), options_(std::move(options)) {}
  ~HyperQServer() { Stop(); }

  /// Binds 127.0.0.1:port (0 = ephemeral) and serves until Stop().
  Status Start(uint16_t port);
  uint16_t port() const { return port_; }
  void Stop();

 private:
  void AcceptLoop();
  void HandleConnection(TcpConnection conn);
  void RegisterFd(int fd);
  void UnregisterFd(int fd);

  sqldb::Database* backend_;
  Options options_;
  uint16_t port_ = 0;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<std::thread> accept_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::mutex conn_mu_;
  std::vector<int> active_fds_;
};

/// A minimal Q-application-side client: speaks QIPC exactly as a q process
/// would (handshake, sync query messages, response/error decoding). Used by
/// the examples and the end-to-end tests to play the role of the unchanged
/// Q application.
class QipcClient {
 public:
  static Result<QipcClient> Connect(const std::string& host, uint16_t port,
                                    const std::string& user,
                                    const std::string& password);

  /// Sends a sync query and decodes the response (errors surface as
  /// ExecutionError carrying the server's message).
  Result<QValue> Query(const std::string& q_text);

  void Close() { conn_.Close(); }

 private:
  explicit QipcClient(TcpConnection conn) : conn_(std::move(conn)) {}

  TcpConnection conn_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_ENDPOINT_H_
