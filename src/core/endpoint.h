#ifndef HYPERQ_CORE_ENDPOINT_H_
#define HYPERQ_CORE_ENDPOINT_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/hyperq.h"
#include "net/tcp.h"
#include "protocol/qipc/qipc.h"

namespace hyperq {

/// The Endpoint plugin of Figure 1: listens on the port the original kdb+
/// server would own (§3.1: "Hyper-Q takes over kdb+ server by listening to
/// incoming messages on the port used by the original kdb+ server"),
/// performs the QIPC handshake, extracts query text from incoming messages
/// and runs each request through a per-connection HyperQSession.
class HyperQServer {
 public:
  struct Options {
    HyperQSession::Options session;
    /// Empty user accepts any credentials (kdb+'s historical default of no
    /// access control, §2.2); otherwise user/password must match.
    std::string user;
    std::string password;
    /// Compress large responses with kdb+ IPC compression (§3.1). kdb+
    /// compresses only for remote peers; the endpoint makes it opt-in.
    bool compress_responses = false;
    /// With compress_responses, use the blocked scheme-2 format whose
    /// blocks compress in parallel on the shared worker pool. Only valid
    /// when the peer is our own QipcClient/DecodeMessage (real kdb+
    /// clients understand the single-stream scheme only), so it is a
    /// separate serve-side opt-in.
    bool block_compression = false;
    /// Hard cap on simultaneously served connections. Connections beyond
    /// the cap are refused during the handshake (closed before the accept
    /// byte), which a q client surfaces as a rejected handshake rather
    /// than a hang.
    int max_connections = 256;
    /// Per-connection idle read timeout in milliseconds; 0 disables. A
    /// connection whose next request does not arrive in time is closed
    /// (slow-loris style half-open peers no longer pin a worker forever).
    int read_timeout_ms = 0;
    /// Default per-query deadline in milliseconds; 0 disables. A session
    /// can override its own with `.hyperq.deadline[ms]`. Expired queries
    /// answer with the structured 'timeout error and the connection stays
    /// usable.
    int64_t default_deadline_ms = 0;
    /// Load shedding: sync queries beyond this many simultaneously
    /// executing ones are answered immediately with the structured 'busy
    /// error instead of queueing without bound. 0 disables.
    int max_inflight_queries = 0;
    /// Stop() drain bound in milliseconds: how long to wait for in-flight
    /// requests to finish writing their responses before write-side
    /// shutdown forces the stragglers out. Also arms each draining
    /// socket's send timeout so a worker entering a blocking write during
    /// drain cannot wedge Stop() behind a stalled peer.
    int drain_timeout_ms = 5000;
    /// Builds the backend gateway for each connection's session; null uses
    /// a DirectGateway on the server's backend. Lets the server front the
    /// sharded scatter-gather coordinator: the factory is called once per
    /// connection and each gateway must expose in-process
    /// database()/session() handles (see HyperQSession).
    std::function<std::unique_ptr<BackendGateway>()> gateway_factory;
  };

  HyperQServer(sqldb::Database* backend, Options options)
      : backend_(backend),
        options_(std::move(options)),
        translation_cache_(options_.session.translation_cache) {
    // One translation cache for the whole server: every per-connection
    // session shares the hot entries (the cache is internally sharded and
    // thread-safe). Sessions receive it through their options.
    translation_cache_.SetVersionProvider(
        [this]() { return backend_->catalog().version(); });
    options_.session.shared_translation_cache = &translation_cache_;
  }
  ~HyperQServer() { Stop(); }

  /// Binds 127.0.0.1:port (0 = ephemeral) and serves until Stop().
  Status Start(uint16_t port);
  uint16_t port() const { return port_; }

  /// Stops accepting, then drains: in-flight requests run to completion
  /// and their responses are written (reads are shut down, writes are
  /// not); idle connections close immediately. Blocks until every worker
  /// has exited. Safe to call repeatedly / concurrently.
  void Stop();

  /// Connections currently inside HandleConnection (admitted or about to
  /// be refused). Returns to 0 after all clients disconnect.
  int active_connections() const {
    return active_count_.load(std::memory_order_acquire);
  }

  /// The server-wide translation cache shared by all sessions.
  TranslationCache& translation_cache() { return translation_cache_; }

 private:
  void AcceptLoop();
  void HandleConnection(TcpConnection conn);
  /// The per-request loop after a successful handshake; returns bytes
  /// in/out through the metrics counters.
  void ServeRequests(TcpConnection& conn);
  void RegisterFd(int fd);
  void UnregisterFd(int fd);

  sqldb::Database* backend_;
  Options options_;
  TranslationCache translation_cache_;
  uint16_t port_ = 0;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<std::thread> accept_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<int> active_count_{0};
  std::atomic<int> inflight_queries_{0};
  std::mutex conn_mu_;
  std::condition_variable drain_cv_;
  std::vector<int> active_fds_;
};

/// A minimal Q-application-side client: speaks QIPC exactly as a q process
/// would (handshake, sync query messages, response/error decoding). Used by
/// the examples and the end-to-end tests to play the role of the unchanged
/// Q application.
class QipcClient {
 public:
  static Result<QipcClient> Connect(const std::string& host, uint16_t port,
                                    const std::string& user,
                                    const std::string& password);

  /// Sends a sync query and decodes the response (errors surface as
  /// ExecutionError carrying the server's message).
  Result<QValue> Query(const std::string& q_text);

  void Close() { conn_.Close(); }

 private:
  explicit QipcClient(TcpConnection conn) : conn_(std::move(conn)) {}

  TcpConnection conn_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_ENDPOINT_H_
