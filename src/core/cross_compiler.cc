#include "core/cross_compiler.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <thread>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "core/loader.h"

namespace hyperq {

namespace {

/// Per-stage translation histograms (the live counterpart of Figure 7's
/// Algebrizer / XTRA+Xformer / Serializer split) plus end-to-end request
/// counters. Resolved once; mutation afterwards is lock-free.
struct XcMetrics {
  LatencyHistogram* parse_us;
  LatencyHistogram* bind_us;
  LatencyHistogram* xform_us;
  LatencyHistogram* serialize_us;
  LatencyHistogram* translate_total_us;
  LatencyHistogram* execute_us;
  Counter* requests;
  Counter* translate_errors;
  Counter* execute_errors;
  Counter* retry_attempts;
  Counter* retry_success;
  Counter* retry_exhausted;
  Counter* retry_backoff_ms;
  Counter* deadline_expired;

  static XcMetrics& Get() {
    static XcMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new XcMetrics{r.GetHistogram("translate.parse_us"),
                           r.GetHistogram("translate.algebrize_us"),
                           r.GetHistogram("translate.xform_us"),
                           r.GetHistogram("translate.serialize_us"),
                           r.GetHistogram("translate.total_us"),
                           r.GetHistogram("backend.execute_us"),
                           r.GetCounter("xc.requests"),
                           r.GetCounter("xc.translate_errors"),
                           r.GetCounter("xc.execute_errors"),
                           r.GetCounter("retry.attempts"),
                           r.GetCounter("retry.success"),
                           r.GetCounter("retry.exhausted"),
                           r.GetCounter("retry.backoff_ms"),
                           r.GetCounter("deadline.expired_stages")};
    }();
    return *m;
  }
};

/// Only reads are safe to re-dispatch: a retried CREATE/INSERT after an
/// ambiguous failure could double-apply. The translator emits SELECT (or
/// WITH ... SELECT) for every pure result query.
bool IsIdempotentRead(const std::string& sql) {
  std::string_view s = StripWhitespace(sql);
  while (!s.empty() && s.front() == '(') s = StripWhitespace(s.substr(1));
  auto starts_with_ci = [&s](std::string_view kw) {
    if (s.size() < kw.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(s[i])) != kw[i]) {
        return false;
      }
    }
    return true;
  };
  return starts_with_ci("SELECT") || starts_with_ci("WITH") ||
         starts_with_ci("VALUES");
}

}  // namespace

Result<QValue> CrossCompiler::Process(const std::string& q_text,
                                      StageTimings* timings,
                                      std::string* executed_sql) {
  // State shared between FSM callbacks (the translator-internal state the
  // paper's FSMs maintain across re-entrant steps).
  Translation translation;
  sqldb::QueryResult backend_result;
  QValue response;
  Status failure = Status::OK();

  Fsm<PtState, PtEvent> pt(PtState::kIdle, "protocol-translator");

  pt.AddTransition(PtState::kIdle, PtEvent::kRequestArrived,
                   PtState::kParsingRequest, nullptr);

  // PT extracted the query; hand it to the QT for translation.
  pt.AddTransition(PtState::kParsingRequest, PtEvent::kQueryExtracted,
                   PtState::kAwaitingTranslation, [&]() -> Status {
                     Result<Translation> t = translator_->Translate(q_text);
                     if (!t.ok()) return t.status();
                     translation = std::move(t).value();
                     return Status::OK();
                   });

  // Translation ready: dispatch the final SQL to the backend.
  pt.AddTransition(
      PtState::kAwaitingTranslation, PtEvent::kTranslationReady,
      PtState::kExecuting, [&]() -> Status {
        if (translation.result_sql.empty()) {
          // Pure assignment: nothing further to execute.
          backend_result = sqldb::QueryResult{};
          return Status::OK();
        }
        return ExecuteWithRetry(translation, &backend_result);
      });

  // Results arrived: pivot rows into the Q result format (§4.2).
  pt.AddTransition(PtState::kExecuting, PtEvent::kResultsReady,
                   PtState::kTranslatingResults, [&]() -> Status {
                     if (!backend_result.has_rows) {
                       response = QValue();  // assignments answer (::)
                       return Status::OK();
                     }
                     Result<QValue> v = QValueFromResult(
                         std::move(backend_result), translation.shape,
                         translation.key_columns);
                     if (!v.ok()) return v.status();
                     response = std::move(v).value();
                     return Status::OK();
                   });

  pt.AddTransition(PtState::kTranslatingResults,
                   PtEvent::kResultsTranslated, PtState::kResponding,
                   nullptr);
  pt.AddTransition(PtState::kResponding, PtEvent::kResponseSent,
                   PtState::kIdle, nullptr);

  XcMetrics& metrics = XcMetrics::Get();
  metrics.requests->Increment();

  // Stage-boundary cancellation: between every FSM stage an expired
  // ambient deadline turns the request into kTimeout instead of running
  // the next (possibly expensive) stage. A stage that finished after the
  // deadline is also converted — the client asked for a bound, and a late
  // success past it must look the same as a cancelled one.
  const Deadline deadline = Deadline::Current();
  auto check_deadline = [&](const char* stage) -> Status {
    if (!deadline.Expired()) return Status::OK();
    metrics.deadline_expired->Increment();
    return DeadlineExceeded(stage);
  };

  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kRequestArrived));
  HQ_RETURN_IF_ERROR(check_deadline("request parse"));
  {
    Status translated = pt.Fire(PtEvent::kQueryExtracted);
    if (!translated.ok()) {
      metrics.translate_errors->Increment();
      return translated;
    }
  }
  HQ_RETURN_IF_ERROR(check_deadline("translate"));
  // The stage split was measured inside the translator; publish it to the
  // live histograms (Figure 7 per stage, Figure 6 for the total). Cache
  // hits skip the stages they never ran so the per-stage distributions
  // keep describing real pipeline work; the total is recorded for every
  // request either way.
  if (MetricsRegistry::Global().enabled()) {
    if (!translation.cache_hit) {
      metrics.parse_us->Record(translation.timings.parse_us);
      metrics.bind_us->Record(translation.timings.bind_us);
      metrics.xform_us->Record(translation.timings.xform_us);
      metrics.serialize_us->Record(translation.timings.serialize_us);
    }
    metrics.translate_total_us->Record(translation.timings.total_us());
  }
  {
    ScopedLatencyTimer timer(MetricsRegistry::Global(), metrics.execute_us);
    Status executed = pt.Fire(PtEvent::kTranslationReady);
    if (!executed.ok()) {
      metrics.execute_errors->Increment();
      return executed;
    }
  }
  HQ_RETURN_IF_ERROR(check_deadline("execute"));
  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kResultsReady));
  HQ_RETURN_IF_ERROR(check_deadline("result translation"));
  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kResultsTranslated));
  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kResponseSent));

  if (timings != nullptr) *timings = translation.timings;
  if (executed_sql != nullptr) *executed_sql = translation.result_sql;
  return response;
}

Status CrossCompiler::ExecuteWithRetry(const Translation& translation,
                                       sqldb::QueryResult* result) {
  XcMetrics& metrics = XcMetrics::Get();
  const Deadline deadline = Deadline::Current();
  int attempt = 0;
  while (true) {
    ++attempt;
    // The whole scatter-gather is re-dispatched on a transient failure:
    // shard partials carry no side effects, so a retry after a partial
    // shard failure is as idempotent as a plain re-SELECT.
    Result<sqldb::QueryResult> r = gateway_->ExecuteTranslated(translation);
    if (r.ok()) {
      if (attempt > 1) metrics.retry_success->Increment();
      *result = std::move(r).value();
      return Status::OK();
    }
    Status s = r.status();
    if (!IsTransient(s) || !IsIdempotentRead(translation.result_sql)) {
      return s;
    }
    if (attempt >= retry_.max_attempts) {
      if (attempt > 1) metrics.retry_exhausted->Increment();
      return s;
    }
    int backoff_ms = std::min(retry_.max_backoff_ms,
                              retry_.base_backoff_ms << (attempt - 1));
    backoff_ms = static_cast<int>(backoff_ms * NextJitter());
    // Retrying is pointless when the backoff alone would blow the
    // deadline; hand the transient error back instead of a late timeout.
    if (deadline.armed() && deadline.remaining_ms() <= backoff_ms) {
      metrics.retry_exhausted->Increment();
      return s;
    }
    metrics.retry_attempts->Increment();
    metrics.retry_backoff_ms->Increment(static_cast<uint64_t>(backoff_ms));
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
  }
}

double CrossCompiler::NextJitter() {
  // xorshift64*: deterministic for a given seed, cheap, no global state.
  uint64_t x = jitter_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  jitter_state_ = x;
  uint64_t bits = (x * 0x2545F4914F6CDD1Dull) >> 11;  // 53 random bits
  return 0.5 + static_cast<double>(bits) / 9007199254740992.0;  // [0.5,1.5)
}

}  // namespace hyperq
