#include "core/cross_compiler.h"

#include "core/loader.h"

namespace hyperq {

Result<QValue> CrossCompiler::Process(const std::string& q_text,
                                      StageTimings* timings,
                                      std::string* executed_sql) {
  // State shared between FSM callbacks (the translator-internal state the
  // paper's FSMs maintain across re-entrant steps).
  Translation translation;
  sqldb::QueryResult backend_result;
  QValue response;
  Status failure = Status::OK();

  Fsm<PtState, PtEvent> pt(PtState::kIdle, "protocol-translator");

  pt.AddTransition(PtState::kIdle, PtEvent::kRequestArrived,
                   PtState::kParsingRequest, nullptr);

  // PT extracted the query; hand it to the QT for translation.
  pt.AddTransition(PtState::kParsingRequest, PtEvent::kQueryExtracted,
                   PtState::kAwaitingTranslation, [&]() -> Status {
                     Result<Translation> t = translator_->Translate(q_text);
                     if (!t.ok()) return t.status();
                     translation = std::move(t).value();
                     return Status::OK();
                   });

  // Translation ready: dispatch the final SQL to the backend.
  pt.AddTransition(
      PtState::kAwaitingTranslation, PtEvent::kTranslationReady,
      PtState::kExecuting, [&]() -> Status {
        if (translation.result_sql.empty()) {
          // Pure assignment: nothing further to execute.
          backend_result = sqldb::QueryResult{};
          return Status::OK();
        }
        Result<sqldb::QueryResult> r =
            gateway_->Execute(translation.result_sql);
        if (!r.ok()) return r.status();
        backend_result = std::move(r).value();
        return Status::OK();
      });

  // Results arrived: pivot rows into the Q result format (§4.2).
  pt.AddTransition(PtState::kExecuting, PtEvent::kResultsReady,
                   PtState::kTranslatingResults, [&]() -> Status {
                     if (!backend_result.has_rows) {
                       response = QValue();  // assignments answer (::)
                       return Status::OK();
                     }
                     Result<QValue> v = QValueFromResult(
                         backend_result, translation.shape,
                         translation.key_columns);
                     if (!v.ok()) return v.status();
                     response = std::move(v).value();
                     return Status::OK();
                   });

  pt.AddTransition(PtState::kTranslatingResults,
                   PtEvent::kResultsTranslated, PtState::kResponding,
                   nullptr);
  pt.AddTransition(PtState::kResponding, PtEvent::kResponseSent,
                   PtState::kIdle, nullptr);

  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kRequestArrived));
  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kQueryExtracted));
  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kTranslationReady));
  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kResultsReady));
  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kResultsTranslated));
  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kResponseSent));

  if (timings != nullptr) *timings = translation.timings;
  if (executed_sql != nullptr) *executed_sql = translation.result_sql;
  return response;
}

}  // namespace hyperq
