#include "core/cross_compiler.h"

#include "common/metrics.h"
#include "core/loader.h"

namespace hyperq {

namespace {

/// Per-stage translation histograms (the live counterpart of Figure 7's
/// Algebrizer / XTRA+Xformer / Serializer split) plus end-to-end request
/// counters. Resolved once; mutation afterwards is lock-free.
struct XcMetrics {
  LatencyHistogram* parse_us;
  LatencyHistogram* bind_us;
  LatencyHistogram* xform_us;
  LatencyHistogram* serialize_us;
  LatencyHistogram* translate_total_us;
  LatencyHistogram* execute_us;
  Counter* requests;
  Counter* translate_errors;
  Counter* execute_errors;

  static XcMetrics& Get() {
    static XcMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new XcMetrics{r.GetHistogram("translate.parse_us"),
                           r.GetHistogram("translate.algebrize_us"),
                           r.GetHistogram("translate.xform_us"),
                           r.GetHistogram("translate.serialize_us"),
                           r.GetHistogram("translate.total_us"),
                           r.GetHistogram("backend.execute_us"),
                           r.GetCounter("xc.requests"),
                           r.GetCounter("xc.translate_errors"),
                           r.GetCounter("xc.execute_errors")};
    }();
    return *m;
  }
};

}  // namespace

Result<QValue> CrossCompiler::Process(const std::string& q_text,
                                      StageTimings* timings,
                                      std::string* executed_sql) {
  // State shared between FSM callbacks (the translator-internal state the
  // paper's FSMs maintain across re-entrant steps).
  Translation translation;
  sqldb::QueryResult backend_result;
  QValue response;
  Status failure = Status::OK();

  Fsm<PtState, PtEvent> pt(PtState::kIdle, "protocol-translator");

  pt.AddTransition(PtState::kIdle, PtEvent::kRequestArrived,
                   PtState::kParsingRequest, nullptr);

  // PT extracted the query; hand it to the QT for translation.
  pt.AddTransition(PtState::kParsingRequest, PtEvent::kQueryExtracted,
                   PtState::kAwaitingTranslation, [&]() -> Status {
                     Result<Translation> t = translator_->Translate(q_text);
                     if (!t.ok()) return t.status();
                     translation = std::move(t).value();
                     return Status::OK();
                   });

  // Translation ready: dispatch the final SQL to the backend.
  pt.AddTransition(
      PtState::kAwaitingTranslation, PtEvent::kTranslationReady,
      PtState::kExecuting, [&]() -> Status {
        if (translation.result_sql.empty()) {
          // Pure assignment: nothing further to execute.
          backend_result = sqldb::QueryResult{};
          return Status::OK();
        }
        Result<sqldb::QueryResult> r =
            gateway_->Execute(translation.result_sql);
        if (!r.ok()) return r.status();
        backend_result = std::move(r).value();
        return Status::OK();
      });

  // Results arrived: pivot rows into the Q result format (§4.2).
  pt.AddTransition(PtState::kExecuting, PtEvent::kResultsReady,
                   PtState::kTranslatingResults, [&]() -> Status {
                     if (!backend_result.has_rows) {
                       response = QValue();  // assignments answer (::)
                       return Status::OK();
                     }
                     Result<QValue> v = QValueFromResult(
                         std::move(backend_result), translation.shape,
                         translation.key_columns);
                     if (!v.ok()) return v.status();
                     response = std::move(v).value();
                     return Status::OK();
                   });

  pt.AddTransition(PtState::kTranslatingResults,
                   PtEvent::kResultsTranslated, PtState::kResponding,
                   nullptr);
  pt.AddTransition(PtState::kResponding, PtEvent::kResponseSent,
                   PtState::kIdle, nullptr);

  XcMetrics& metrics = XcMetrics::Get();
  metrics.requests->Increment();

  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kRequestArrived));
  {
    Status translated = pt.Fire(PtEvent::kQueryExtracted);
    if (!translated.ok()) {
      metrics.translate_errors->Increment();
      return translated;
    }
  }
  // The stage split was measured inside the translator; publish it to the
  // live histograms (Figure 7 per stage, Figure 6 for the total). Cache
  // hits skip the stages they never ran so the per-stage distributions
  // keep describing real pipeline work; the total is recorded for every
  // request either way.
  if (MetricsRegistry::Global().enabled()) {
    if (!translation.cache_hit) {
      metrics.parse_us->Record(translation.timings.parse_us);
      metrics.bind_us->Record(translation.timings.bind_us);
      metrics.xform_us->Record(translation.timings.xform_us);
      metrics.serialize_us->Record(translation.timings.serialize_us);
    }
    metrics.translate_total_us->Record(translation.timings.total_us());
  }
  {
    ScopedLatencyTimer timer(MetricsRegistry::Global(), metrics.execute_us);
    Status executed = pt.Fire(PtEvent::kTranslationReady);
    if (!executed.ok()) {
      metrics.execute_errors->Increment();
      return executed;
    }
  }
  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kResultsReady));
  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kResultsTranslated));
  HQ_RETURN_IF_ERROR(pt.Fire(PtEvent::kResponseSent));

  if (timings != nullptr) *timings = translation.timings;
  if (executed_sql != nullptr) *executed_sql = translation.result_sql;
  return response;
}

}  // namespace hyperq
