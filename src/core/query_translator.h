#ifndef HYPERQ_CORE_QUERY_TRANSLATOR_H_
#define HYPERQ_CORE_QUERY_TRANSLATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "algebrizer/binder.h"
#include "algebrizer/scopes.h"
#include "common/status.h"
#include "xformer/shard_rewrite.h"
#include "xformer/xformer.h"

namespace hyperq {

class TranslationCache;
struct QueryFingerprint;

/// How Q variable assignments are materialized in the backend (§4.3).
enum class MaterializeMode {
  kPhysical,  ///< CREATE TEMPORARY TABLE ... AS (always correct)
  kLogical,   ///< CREATE TEMPORARY VIEW ... AS (cheaper, re-evaluates)
};

/// Wall-clock time spent in each translation stage, for Figures 6 and 7.
struct StageTimings {
  double parse_us = 0;
  double bind_us = 0;       ///< algebrization (incl. metadata lookups)
  double xform_us = 0;      ///< optimization
  double serialize_us = 0;
  double total_us() const {
    return parse_us + bind_us + xform_us + serialize_us;
  }
};

/// How a translated result query distributes over a sharded backend
/// (docs/SCALE_OUT.md). Planned at translation time; a gateway without
/// shards simply ignores it.
struct ShardPlan {
  ShardMode mode = ShardMode::kNone;
  std::string table;        ///< the hash-partitioned base table
  std::string partial_sql;  ///< per-shard SQL; empty = result_sql verbatim
  std::string merge_sql;    ///< runs over the concatenated partials table
  /// Partition routing: the filters pin the partition column to this one
  /// symbol, so the coordinator scatters to the owning shard only.
  bool routed = false;
  std::string route_key;
};

/// The output of translating one Q request: any setup statements that were
/// eagerly executed against the backend (materialized variables), the final
/// result query, and how to re-shape its rows into a Q value.
struct Translation {
  std::vector<std::string> setup_sql;  ///< already executed eagerly
  std::string result_sql;              ///< empty for pure assignments
  ResultShape shape = ResultShape::kTable;
  std::vector<std::string> key_columns;
  ShardPlan shard;
  /// Hybrid live/historical split of the result query (docs/INGEST.md):
  /// when mode != kNone, the gateway may run partial_sql against the
  /// historical table and the pinned live tail independently and recombine
  /// with merge_sql. Routing fields are never set here.
  ShardPlan hybrid;
  StageTimings timings;
  /// True when the translation was served from the translation cache; the
  /// per-stage timings above are then zero (or parse-only for a
  /// fingerprint-tier hit).
  bool cache_hit = false;
};

/// The Query Translator of the Cross Compiler (§3.4): drives Q text through
/// the Algebrizer, Xformer and Serializer, managing the variable-scope
/// hierarchy, eager materialization of assignments and unrolling of user
/// functions (§4.3, §5).
class QueryTranslator {
 public:
  struct Options {
    Xformer::Options xformer;
    MaterializeMode materialize = MaterializeMode::kPhysical;
    /// Partitioning oracle for the backend's tables. When set, every
    /// result query is classified against the distributable shapes and
    /// carries a ShardPlan for the gateway to scatter with.
    ShardInfoFn shard_info;
    /// Live-table oracle (ingest). When set, every result query over a
    /// live-backed table is classified against the hybrid-splittable
    /// shapes and carries Translation::hybrid for the gateway.
    LiveInfoFn live_info;
  };

  /// `execute_backend` runs a setup statement against the backend
  /// immediately (eager materialization requires in-situ execution).
  using BackendExec = std::function<Status(const std::string& sql)>;

  QueryTranslator(MetadataInterface* mdi, VariableScopes* scopes,
                  Options options, BackendExec execute_backend)
      : mdi_(mdi),
        scopes_(scopes),
        options_(options),
        execute_backend_(std::move(execute_backend)) {}

  /// Translates a full Q request (one or more ';'-separated statements).
  Result<Translation> Translate(const std::string& q_text);

  /// Attaches a (usually server-shared) translation cache. Null detaches.
  void set_translation_cache(TranslationCache* cache) { cache_ = cache; }
  TranslationCache* translation_cache() const { return cache_; }

 private:
  Status ProcessAssignment(const AstPtr& stmt, Binder* binder,
                           Translation* out);
  Status ProcessFunctionCall(const AstNode& apply, Binder* binder,
                             Translation* out, bool* produced_result);
  Status EmitResultQuery(const AstPtr& expr, Binder* binder,
                         Translation* out);
  /// Classifies the transformed tree for scatter-gather and serializes the
  /// per-shard / merge SQL into out->shard. Planning failures only clear
  /// the plan (the fallback path stays correct), never fail translation.
  void PlanSharding(const xtra::XtraPtr& root, Translation* out);
  /// Same, for the hybrid live/historical split (Translation::hybrid).
  void PlanHybrid(const xtra::XtraPtr& root, Translation* out);
  Status MaterializeQuery(const std::string& var_name, const AstPtr& expr,
                          Binder* binder, Translation* out);

  /// Fingerprint-tier miss: re-binds the parameterized statement, emits
  /// both the concrete SQL and the `$n` template, verifies the template
  /// reproduces the concrete SQL, and populates the cache. Any failure
  /// falls back to the plain path (marking the fingerprint uncacheable
  /// when the parameterized pipeline itself broke).
  Result<Translation> TranslateFingerprintMiss(const std::string& q_text,
                                               const AstPtr& stmt,
                                               const QueryFingerprint& fp,
                                               double parse_us);

  /// True for `f[...]` statements where f resolves to a stored function
  /// (unrolling has side effects, so those bypass the cache).
  bool IsFunctionInvocation(const AstPtr& stmt) const;

  std::string NextTempName();

  MetadataInterface* mdi_;
  VariableScopes* scopes_;
  Options options_;
  BackendExec execute_backend_;
  TranslationCache* cache_ = nullptr;
  int temp_counter_ = 0;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_QUERY_TRANSLATOR_H_
