#include "core/hyperq.h"

#include <cstdlib>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "core/live_store.h"
#include "serializer/serializer.h"

namespace hyperq {

namespace {

struct SessionMetrics {
  Counter* queries;
  Counter* errors;
  Counter* builtin_queries;

  static SessionMetrics& Get() {
    static SessionMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new SessionMetrics{r.GetCounter("session.queries"),
                                r.GetCounter("session.errors"),
                                r.GetCounter("session.builtin_queries")};
    }();
    return *m;
  }
};

}  // namespace

QValue HyperQSession::StatsTable() {
  std::vector<MetricsRegistry::Row> rows =
      MetricsRegistry::Global().Snapshot();
  std::vector<std::string> names, kinds;
  std::vector<int64_t> counts;
  std::vector<double> sums, p50s, p95s, p99s;
  names.reserve(rows.size());
  for (const MetricsRegistry::Row& r : rows) {
    names.push_back(r.name);
    kinds.push_back(r.kind);
    counts.push_back(static_cast<int64_t>(r.count));
    sums.push_back(r.sum_us);
    p50s.push_back(r.p50_us);
    p95s.push_back(r.p95_us);
    p99s.push_back(r.p99_us);
  }
  return QValue::MakeTableUnchecked(
      {"metric", "kind", "count", "sum_us", "p50_us", "p95_us", "p99_us"},
      {QValue::Syms(std::move(names)), QValue::Syms(std::move(kinds)),
       QValue::IntList(QType::kLong, std::move(counts)),
       QValue::FloatList(QType::kFloat, std::move(sums)),
       QValue::FloatList(QType::kFloat, std::move(p50s)),
       QValue::FloatList(QType::kFloat, std::move(p95s)),
       QValue::FloatList(QType::kFloat, std::move(p99s))});
}

std::optional<Result<QValue>> HyperQSession::TryBuiltin(
    const std::string& q_text) {
  std::string_view text = StripWhitespace(q_text);
  if (!StartsWith(text, ".hyperq.")) return std::nullopt;
  // Accept both niladic-call and bare-name spellings, as q tooling issues
  // either form; control builtins take one bracketed argument
  // (`.hyperq.fault["net.read=error"]`, `.hyperq.deadline[250]`).
  std::string_view name = text;
  std::string_view arg;
  if (size_t lb = name.find('[');
      lb != std::string_view::npos && EndsWith(name, "]")) {
    arg = StripWhitespace(name.substr(lb + 1, name.size() - lb - 2));
    name = name.substr(0, lb);
    if (arg == "::") arg = {};  // niladic-call spelling
  }
  // Quoted string argument: strip the q quotes.
  if (arg.size() >= 2 && arg.front() == '"' && arg.back() == '"') {
    arg = arg.substr(1, arg.size() - 2);
  }
  auto int_arg = [&arg]() -> Result<int64_t> {
    char* end = nullptr;
    std::string buf(arg);
    int64_t v = std::strtoll(buf.c_str(), &end, 10);
    if (buf.empty() || end == nullptr || *end != '\0') {
      return InvalidArgument(
          StrCat("expected an integer argument, got '", buf, "'"));
    }
    return v;
  };
  SessionMetrics::Get().builtin_queries->Increment();
  if (name == ".hyperq.stats") {
    return Result<QValue>(StatsTable());
  }
  if (name == ".hyperq.statsText") {
    return Result<QValue>(
        QValue::Chars(MetricsRegistry::Global().TextDump()));
  }
  if (name == ".hyperq.resetStats") {
    MetricsRegistry::Global().ResetAll();
    return Result<QValue>(QValue());
  }
  // Runtime control over the translation cache (docs/PERFORMANCE.md).
  // Enable/disable toggle the whole cache (shared across sessions when the
  // endpoint owns it); cacheClear drops every entry.
  if (name == ".hyperq.cacheEnable") {
    tcache_->set_enabled(true);
    return Result<QValue>(QValue());
  }
  if (name == ".hyperq.cacheDisable") {
    tcache_->set_enabled(false);
    return Result<QValue>(QValue());
  }
  if (name == ".hyperq.cacheClear") {
    tcache_->Clear();
    // One source of truth for invalidation: clearing translations also
    // drops every compiled kernel on every reachable backend.
    gateway_->ForEachDatabase(
        [](sqldb::Database* db) { db->kernel_registry().Clear(); });
    return Result<QValue>(QValue());
  }
  // Runtime control over the fused-kernel cache (docs/PERFORMANCE.md):
  // benches and byte-identity sweeps pin it off to measure/exercise the
  // interpreted executor.
  if (name == ".hyperq.kernelEnable" || name == ".hyperq.kernelDisable") {
    const bool on = name == ".hyperq.kernelEnable";
    gateway_->ForEachDatabase(
        [on](sqldb::Database* db) { db->kernel_registry().set_enabled(on); });
    return Result<QValue>(QValue());
  }
  // Runtime fault-injection control (docs/ROBUSTNESS.md). Faults are
  // process-global, like metrics: arming over one connection affects the
  // whole server, which is exactly what a chaos test wants.
  if (name == ".hyperq.fault") {
    Status s = FaultInjector::Global().Arm(std::string(arg));
    if (!s.ok()) return Result<QValue>(s);
    return Result<QValue>(QValue());
  }
  if (name == ".hyperq.faultClear") {
    FaultInjector::Global().Clear();
    return Result<QValue>(QValue());
  }
  if (name == ".hyperq.faultSeed") {
    Result<int64_t> v = int_arg();
    if (!v.ok()) return Result<QValue>(v.status());
    FaultInjector::Global().Reseed(static_cast<uint64_t>(*v));
    return Result<QValue>(QValue());
  }
  if (name == ".hyperq.faultSites") {
    return Result<QValue>(QValue::Syms(FaultInjector::KnownSites()));
  }
  if (name == ".hyperq.faultStats") {
    std::vector<FaultInjector::SiteStats> rows =
        FaultInjector::Global().Stats();
    std::vector<std::string> sites, specs;
    std::vector<int64_t> hits, fires;
    for (FaultInjector::SiteStats& r : rows) {
      sites.push_back(std::move(r.site));
      specs.push_back(std::move(r.spec));
      hits.push_back(static_cast<int64_t>(r.hits));
      fires.push_back(static_cast<int64_t>(r.fires));
    }
    return Result<QValue>(QValue::MakeTableUnchecked(
        {"site", "spec", "hits", "fires"},
        {QValue::Syms(std::move(sites)), QValue::Syms(std::move(specs)),
         QValue::IntList(QType::kLong, std::move(hits)),
         QValue::IntList(QType::kLong, std::move(fires))}));
  }
  // Real-time ingest control (docs/INGEST.md): flush the live tail of one
  // table (or all tables, niladic) into the historical backend, and the
  // per-table ingest counters.
  if (name == ".hyperq.flush") {
    LiveStore* store = gateway_->live_store();
    if (store == nullptr) {
      return Result<QValue>(
          InvalidArgument("this server has no ingest store"));
    }
    // Symbol-argument spelling: `.hyperq.flush[`trade]`.
    if (!arg.empty() && arg.front() == '`') arg = arg.substr(1);
    Status s = arg.empty() ? store->FlushAll() : store->Flush(std::string(arg));
    if (!s.ok()) return Result<QValue>(s);
    return Result<QValue>(QValue());
  }
  if (name == ".hyperq.ingestStats") {
    LiveStore* store = gateway_->live_store();
    if (store == nullptr) {
      return Result<QValue>(
          InvalidArgument("this server has no ingest store"));
    }
    return Result<QValue>(store->StatsTable());
  }
  // Per-session query deadline in ms; 0 disables. Niladic call reports the
  // current setting.
  if (name == ".hyperq.deadline") {
    if (arg.empty()) {
      return Result<QValue>(QValue::Long(deadline_ms_));
    }
    Result<int64_t> v = int_arg();
    if (!v.ok()) return Result<QValue>(v.status());
    set_deadline_ms(*v);
    return Result<QValue>(QValue());
  }
  return Result<QValue>(
      NotFound(StrCat("unknown builtin '", std::string(name), "'")));
}

Result<QValue> HyperQSession::Query(const std::string& q_text) {
  if (std::optional<Result<QValue>> builtin = TryBuiltin(q_text)) {
    return *std::move(builtin);
  }
  SessionMetrics& metrics = SessionMetrics::Get();
  metrics.queries->Increment();
  Result<QValue> result = xc_.Process(q_text, &last_timings_, &last_sql_);
  if (!result.ok()) metrics.errors->Increment();
  return result;
}

Status HyperQSession::Close() {
  // Promote session-scope variables to the server scope (§3.2.3). Scalars
  // have no server-side representation here and are dropped; materialized
  // relations are copied into durable tables named after the variable.
  for (const auto& [name, binding] : scopes_.session_vars()) {
    if (binding.kind != VarBinding::Kind::kRelation) continue;
    if (binding.table == name) continue;  // already durable
    std::string ddl =
        StrCat("CREATE TABLE ", Serializer::QuoteIdent(name),
               " AS SELECT * FROM ", Serializer::QuoteIdent(binding.table));
    Result<sqldb::QueryResult> r = gateway_->Execute(ddl);
    if (!r.ok() && r.status().code() != StatusCode::kAlreadyExists) {
      return r.status();
    }
  }
  return Status::OK();
}

}  // namespace hyperq
