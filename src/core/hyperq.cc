#include "core/hyperq.h"

#include "common/strings.h"
#include "serializer/serializer.h"

namespace hyperq {

Status HyperQSession::Close() {
  // Promote session-scope variables to the server scope (§3.2.3). Scalars
  // have no server-side representation here and are dropped; materialized
  // relations are copied into durable tables named after the variable.
  for (const auto& [name, binding] : scopes_.session_vars()) {
    if (binding.kind != VarBinding::Kind::kRelation) continue;
    if (binding.table == name) continue;  // already durable
    std::string ddl =
        StrCat("CREATE TABLE ", Serializer::QuoteIdent(name),
               " AS SELECT * FROM ", Serializer::QuoteIdent(binding.table));
    Result<sqldb::QueryResult> r = gateway_->Execute(ddl);
    if (!r.ok() && r.status().code() != StatusCode::kAlreadyExists) {
      return r.status();
    }
  }
  return Status::OK();
}

}  // namespace hyperq
