#include "core/mdi.h"

#include "common/strings.h"

namespace hyperq {

QType QTypeFromSqlType(sqldb::SqlType type) {
  switch (type) {
    case sqldb::SqlType::kBoolean:
      return QType::kBool;
    case sqldb::SqlType::kSmallInt:
      return QType::kShort;
    case sqldb::SqlType::kInteger:
      return QType::kInt;
    case sqldb::SqlType::kBigInt:
      return QType::kLong;
    case sqldb::SqlType::kReal:
      return QType::kReal;
    case sqldb::SqlType::kDouble:
      return QType::kFloat;
    case sqldb::SqlType::kVarchar:
      return QType::kSymbol;
    case sqldb::SqlType::kText:
      return QType::kChar;
    case sqldb::SqlType::kDate:
      return QType::kDate;
    case sqldb::SqlType::kTime:
      return QType::kTime;
    case sqldb::SqlType::kTimestamp:
      return QType::kTimestamp;
    case sqldb::SqlType::kNull:
      return QType::kUnary;
  }
  return QType::kUnary;
}

sqldb::SqlType SqlTypeFromQType(QType type) {
  switch (type) {
    case QType::kBool:
      return sqldb::SqlType::kBoolean;
    case QType::kByte:
    case QType::kShort:
      return sqldb::SqlType::kSmallInt;
    case QType::kInt:
      return sqldb::SqlType::kInteger;
    case QType::kLong:
      return sqldb::SqlType::kBigInt;
    case QType::kReal:
      return sqldb::SqlType::kReal;
    case QType::kFloat:
      return sqldb::SqlType::kDouble;
    case QType::kSymbol:
      return sqldb::SqlType::kVarchar;
    case QType::kChar:
      return sqldb::SqlType::kText;
    case QType::kDate:
      return sqldb::SqlType::kDate;
    case QType::kTime:
      return sqldb::SqlType::kTime;
    case QType::kTimestamp:
      return sqldb::SqlType::kTimestamp;
    case QType::kTimespan:
      return sqldb::SqlType::kBigInt;
    default:
      return sqldb::SqlType::kText;
  }
}

Result<TableMetadata> SqldbMetadata::LookupTable(const std::string& name) {
  std::shared_ptr<sqldb::StoredTable> table;
  if (session_ != nullptr) {
    auto it = session_->temp_tables().find(name);
    if (it != session_->temp_tables().end()) table = it->second;
  }
  if (!table && ((session_ != nullptr &&
                  session_->temp_views().count(name) > 0) ||
                 db_->catalog().HasView(name))) {
    // Views (logical materialization, §4.3) expose their schema by
    // planning the defining query with LIMIT 0. Results are cached by the
    // MetadataCache decorator, so this executes rarely.
    auto r = db_->Execute(
        session_, StrCat("SELECT * FROM \"", name, "\" LIMIT 0"));
    if (!r.ok()) return r.status();
    TableMetadata meta;
    meta.name = name;
    for (const auto& c : r->columns) {
      if (c.name == kOrdColName) {
        meta.has_ordcol = true;
        continue;
      }
      meta.columns.push_back(
          ColumnMetadata{c.name, QTypeFromSqlType(c.type)});
    }
    return meta;
  }
  if (!table) {
    auto r = db_->catalog().GetTable(name);
    if (!r.ok()) {
      return NotFound(StrCat("metadata lookup failed: relation '", name,
                             "' does not exist in the backend catalog"));
    }
    table = std::move(r).value();
  }
  TableMetadata meta;
  meta.name = name;
  for (const auto& c : table->columns) {
    if (c.name == kOrdColName) {
      meta.has_ordcol = true;
      continue;
    }
    meta.columns.push_back(ColumnMetadata{c.name, QTypeFromSqlType(c.type)});
  }
  meta.key_columns = table->key_columns;
  meta.sort_keys = table->sort_keys;
  return meta;
}

bool SqldbMetadata::HasTable(const std::string& name) {
  if (session_ != nullptr && (session_->temp_tables().count(name) > 0 ||
                              session_->temp_views().count(name) > 0)) {
    return true;
  }
  return db_->catalog().HasTable(name) || db_->catalog().HasView(name);
}

}  // namespace hyperq
