#include "core/loader.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "core/mdi.h"

namespace hyperq {

using sqldb::Datum;
using sqldb::SqlType;

Result<Datum> DatumFromQ(const QValue& column, int64_t row) {
  QValue e = column.ElementAt(row);
  if (e.IsNullAtom()) return Datum::Null();
  switch (e.type()) {
    case QType::kBool:
      return Datum::Bool(e.AsInt() != 0);
    case QType::kByte:
    case QType::kShort:
      return Datum::Int(SqlType::kSmallInt, e.AsInt());
    case QType::kInt:
      return Datum::Int(SqlType::kInteger, e.AsInt());
    case QType::kLong:
    case QType::kTimespan:
      return Datum::BigInt(e.AsInt());
    case QType::kReal:
      return Datum::Float(SqlType::kReal, e.AsFloat());
    case QType::kFloat:
      return Datum::Double(e.AsFloat());
    case QType::kSymbol:
      return Datum::Varchar(e.AsSym());
    case QType::kChar:
      return Datum::Text(std::string(1, e.AsChar()));
    case QType::kDate:
      return Datum::Date(e.AsInt());
    case QType::kTime:
      return Datum::Time(e.AsInt());
    case QType::kTimestamp:
      return Datum::Timestamp(e.AsInt());
    case QType::kMixed: {
      // A string cell (char list) inside a mixed column.
      if (!e.is_atom() && e.type() == QType::kChar) {
        return Datum::Text(e.CharsView());
      }
      return Unsupported("cannot load nested list cells into the backend");
    }
    default:
      return Unsupported(StrCat("cannot load a ", QTypeName(e.type()),
                                " cell into the backend"));
  }
}

Status LoadQTable(sqldb::Database* db, const std::string& name,
                  const QValue& table_value,
                  const std::vector<std::string>& key_columns) {
  QValue flat = table_value;
  if (flat.IsKeyedTable()) {
    const QDict& d = flat.Dict();
    std::vector<std::string> names = d.keys->Table().names;
    std::vector<QValue> cols = d.keys->Table().columns;
    for (size_t i = 0; i < d.values->Table().names.size(); ++i) {
      names.push_back(d.values->Table().names[i]);
      cols.push_back(d.values->Table().columns[i]);
    }
    flat = QValue::MakeTableUnchecked(std::move(names), std::move(cols));
  }
  if (!flat.IsTable()) {
    return InvalidArgument("LoadQTable requires a table value");
  }
  const QTable& t = flat.Table();
  size_t rows = t.RowCount();

  sqldb::StoredTable stored;
  stored.name = name;
  for (size_t c = 0; c < t.names.size(); ++c) {
    QType qt = t.columns[c].type();
    // String columns arrive as mixed lists of char lists.
    if (qt == QType::kMixed) qt = QType::kChar;
    stored.columns.push_back(
        sqldb::TableColumn{t.names[c], SqlTypeFromQType(qt)});
  }
  stored.columns.push_back(
      sqldb::TableColumn{kOrdColName, SqlType::kBigInt});

  // Build the stored columns directly (column-major load; no row pivot).
  stored.data.reserve(stored.columns.size());
  for (size_t c = 0; c < t.names.size(); ++c) {
    auto col = std::make_shared<sqldb::Column>();
    col->Reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      HQ_ASSIGN_OR_RETURN(Datum d,
                          DatumFromQ(t.columns[c], static_cast<int64_t>(r)));
      col->Append(d);
    }
    stored.data.push_back(std::move(col));
  }
  {
    std::vector<int64_t> ord(rows);
    for (size_t r = 0; r < rows; ++r) ord[r] = static_cast<int64_t>(r);
    stored.data.push_back(
        sqldb::Column::FromInts(SqlType::kBigInt, std::move(ord)));
  }
  stored.row_count = rows;
  if (!key_columns.empty()) {
    stored.key_columns = key_columns;
  } else if (table_value.IsKeyedTable()) {
    stored.key_columns = table_value.Dict().keys->Table().names;
  }
  stored.sort_keys = {kOrdColName};
  return db->CreateAndLoad(std::move(stored));
}

QValue QFromDatum(const Datum& d) {
  if (d.is_null()) {
    switch (d.type()) {
      case SqlType::kVarchar:
        return QValue::NullOf(QType::kSymbol);
      case SqlType::kText:
        return QValue::Chars("");
      case SqlType::kReal:
      case SqlType::kDouble:
        return QValue::NullOf(QType::kFloat);
      case SqlType::kDate:
        return QValue::NullOf(QType::kDate);
      case SqlType::kTime:
        return QValue::NullOf(QType::kTime);
      case SqlType::kTimestamp:
        return QValue::NullOf(QType::kTimestamp);
      case SqlType::kBoolean:
        return QValue::Bool(false);
      default:
        return QValue::NullOf(QType::kLong);
    }
  }
  switch (d.type()) {
    case SqlType::kBoolean:
      return QValue::Bool(d.AsBool());
    case SqlType::kSmallInt:
      return QValue::Short(d.AsInt());
    case SqlType::kInteger:
      return QValue::Int(d.AsInt());
    case SqlType::kBigInt:
      return QValue::Long(d.AsInt());
    case SqlType::kReal:
      return QValue::Real(d.AsDouble());
    case SqlType::kDouble:
      return QValue::Float(d.AsDouble());
    case SqlType::kVarchar:
      return QValue::Sym(d.AsString());
    case SqlType::kText: {
      const std::string& s = d.AsString();
      return s.size() == 1 ? QValue::Char(s[0]) : QValue::Chars(s);
    }
    case SqlType::kDate:
      return QValue::Date(d.AsInt());
    case SqlType::kTime:
      return QValue::Time(d.AsInt());
    case SqlType::kTimestamp:
      return QValue::Timestamp(d.AsInt());
    case SqlType::kNull:
      return QValue();
  }
  return QValue();
}

namespace {

/// Per-cell pivot of one result column (the seed's row-to-column pivot of
/// §4.2 / Figure 5). Fallback for columns whose storage does not match the
/// declared type (mixed cells, refined types); reconstructs each Datum and
/// keeps the historic coercion semantics exactly.
QValue ColumnFromCells(const sqldb::QueryResult& result, size_t col) {
  SqlType t = result.columns[col].type;
  size_t n = result.data.row_count;
  switch (t) {
    case SqlType::kBoolean:
    case SqlType::kSmallInt:
    case SqlType::kInteger:
    case SqlType::kBigInt:
    case SqlType::kDate:
    case SqlType::kTime:
    case SqlType::kTimestamp: {
      QType qt = QTypeFromSqlType(t);
      std::vector<int64_t> v(n);
      for (size_t r = 0; r < n; ++r) {
        Datum d = result.data.At(r, col);
        v[r] = d.is_null() ? kNullLong : d.AsInt();
      }
      return QValue::IntList(qt, std::move(v));
    }
    case SqlType::kReal:
    case SqlType::kDouble: {
      std::vector<double> v(n);
      for (size_t r = 0; r < n; ++r) {
        Datum d = result.data.At(r, col);
        v[r] = d.is_null() ? std::nan("") : d.AsDouble();
      }
      return QValue::FloatList(QTypeFromSqlType(t), std::move(v));
    }
    case SqlType::kVarchar: {
      std::vector<std::string> v(n);
      for (size_t r = 0; r < n; ++r) {
        Datum d = result.data.At(r, col);
        v[r] = d.is_null() ? "" : d.AsString();
      }
      return QValue::Syms(std::move(v));
    }
    case SqlType::kText:
    case SqlType::kNull:
    default: {
      std::vector<QValue> v(n);
      for (size_t r = 0; r < n; ++r) {
        Datum d = result.data.At(r, col);
        v[r] = d.is_null() ? QValue::Chars("") : QValue::Chars(d.AsString());
      }
      return QValue::Mixed(std::move(v));
    }
  }
}

/// Columnar pivot: when the backend column's storage matches the declared
/// type family, the payload vector becomes the Q list body directly —
/// moved when `may_move` and this result holds the only reference, copied
/// wholesale otherwise. Null cells are patched to the Q null encodings the
/// per-cell pivot produced (kNullLong / NaN / empty symbol).
QValue ColumnFromResult(sqldb::QueryResult& result, size_t col,
                        bool may_move) {
  using Storage = sqldb::Column::Storage;
  SqlType t = result.columns[col].type;
  size_t n = result.data.row_count;
  sqldb::ColumnPtr& cp = result.data.columns[col];
  switch (t) {
    case SqlType::kBoolean:
    case SqlType::kSmallInt:
    case SqlType::kInteger:
    case SqlType::kBigInt:
    case SqlType::kDate:
    case SqlType::kTime:
    case SqlType::kTimestamp: {
      QType qt = QTypeFromSqlType(t);
      if (cp->storage() == Storage::kEmpty) {
        return QValue::IntList(qt, std::vector<int64_t>(n, kNullLong));
      }
      if (cp->storage() == Storage::kInt) {
        // Move (sole owner) or reference the null map — never copy it.
        std::vector<uint8_t> moved_nulls;
        const std::vector<uint8_t>* nulls = &cp->null_bytes();
        std::vector<int64_t> v;
        if (may_move && cp.use_count() == 1) {
          moved_nulls = cp->TakeNullBytes();
          nulls = &moved_nulls;
          v = cp->TakeInts();
        } else {
          v.assign(cp->ints(), cp->ints() + n);
        }
        if (!nulls->empty()) {
          for (size_t r = 0; r < n; ++r) {
            if ((*nulls)[r]) v[r] = kNullLong;
          }
        }
        return QValue::IntList(qt, std::move(v));
      }
      break;
    }
    case SqlType::kReal:
    case SqlType::kDouble: {
      QType qt = QTypeFromSqlType(t);
      if (cp->storage() == Storage::kEmpty) {
        return QValue::FloatList(qt, std::vector<double>(n, std::nan("")));
      }
      if (cp->storage() == Storage::kFloat) {
        std::vector<uint8_t> moved_nulls;
        const std::vector<uint8_t>* nulls = &cp->null_bytes();
        std::vector<double> v;
        if (may_move && cp.use_count() == 1) {
          moved_nulls = cp->TakeNullBytes();
          nulls = &moved_nulls;
          v = cp->TakeFloats();
        } else {
          v.assign(cp->floats(), cp->floats() + n);
        }
        if (!nulls->empty()) {
          for (size_t r = 0; r < n; ++r) {
            if ((*nulls)[r]) v[r] = std::nan("");
          }
        }
        return QValue::FloatList(qt, std::move(v));
      }
      break;
    }
    case SqlType::kVarchar: {
      if (cp->storage() == Storage::kEmpty) {
        return QValue::Syms(std::vector<std::string>(n));
      }
      if (cp->storage() == Storage::kString) {
        std::vector<uint8_t> moved_nulls;
        const std::vector<uint8_t>* nulls = &cp->null_bytes();
        std::vector<std::string> v;
        if (may_move && cp.use_count() == 1) {
          moved_nulls = cp->TakeNullBytes();
          nulls = &moved_nulls;
          v = cp->TakeStrings();
        } else {
          v = cp->strs();
        }
        if (!nulls->empty()) {
          for (size_t r = 0; r < n; ++r) {
            if ((*nulls)[r]) v[r].clear();
          }
        }
        return QValue::Syms(std::move(v));
      }
      break;
    }
    default:
      break;
  }
  return ColumnFromCells(result, col);
}

bool IsHelperColumn(const std::string& name) {
  return name == kOrdColName || StartsWith(name, "hq_");
}

Result<QValue> QValueFromResultImpl(
    sqldb::QueryResult& result, ResultShape shape,
    const std::vector<std::string>& key_columns, bool may_move) {
  std::vector<std::string> names;
  std::vector<QValue> columns;
  names.reserve(result.columns.size());
  columns.reserve(result.columns.size());
  for (size_t c = 0; c < result.columns.size(); ++c) {
    if (IsHelperColumn(result.columns[c].name)) continue;
    names.push_back(result.columns[c].name);
    columns.push_back(ColumnFromResult(result, c, may_move));
  }
  if (names.empty()) {
    return ExecutionError("backend result contained no visible columns");
  }

  switch (shape) {
    case ResultShape::kAtom: {
      if (result.data.row_count == 0) return QValue();
      return columns[0].ElementAt(0);
    }
    case ResultShape::kList:
      return columns[0];
    case ResultShape::kTable:
      return QValue::MakeTable(std::move(names), std::move(columns));
    case ResultShape::kDict: {
      // exec-by: the key column maps to the single value column.
      int key_idx = -1;
      int val_idx = -1;
      for (size_t i = 0; i < names.size(); ++i) {
        bool is_key = std::find(key_columns.begin(), key_columns.end(),
                                names[i]) != key_columns.end();
        if (is_key && key_idx < 0) {
          key_idx = static_cast<int>(i);
        } else if (!is_key && val_idx < 0) {
          val_idx = static_cast<int>(i);
        }
      }
      if (key_idx < 0 || val_idx < 0) {
        return ExecutionError(
            "exec-by result is missing its key or value column");
      }
      return QValue::MakeDict(columns[key_idx], columns[val_idx]);
    }
    case ResultShape::kKeyedTable: {
      std::vector<std::string> kn, vn;
      std::vector<QValue> kc, vc;
      for (size_t i = 0; i < names.size(); ++i) {
        bool is_key = std::find(key_columns.begin(), key_columns.end(),
                                names[i]) != key_columns.end();
        if (is_key) {
          kn.push_back(names[i]);
          kc.push_back(columns[i]);
        } else {
          vn.push_back(names[i]);
          vc.push_back(columns[i]);
        }
      }
      HQ_ASSIGN_OR_RETURN(QValue keys, QValue::MakeTable(kn, kc));
      HQ_ASSIGN_OR_RETURN(QValue vals, QValue::MakeTable(vn, vc));
      return QValue::MakeDictUnchecked(std::move(keys), std::move(vals));
    }
  }
  return InternalError("unhandled result shape");
}

}  // namespace

Result<QValue> QValueFromResult(const sqldb::QueryResult& result,
                                ResultShape shape,
                                const std::vector<std::string>& key_columns) {
  // The impl never mutates the result unless may_move is set, so shedding
  // const here is safe.
  return QValueFromResultImpl(const_cast<sqldb::QueryResult&>(result), shape,
                              key_columns, /*may_move=*/false);
}

Result<QValue> QValueFromResult(sqldb::QueryResult&& result,
                                ResultShape shape,
                                const std::vector<std::string>& key_columns) {
  return QValueFromResultImpl(result, shape, key_columns, /*may_move=*/true);
}

}  // namespace hyperq
