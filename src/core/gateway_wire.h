#ifndef HYPERQ_CORE_GATEWAY_WIRE_H_
#define HYPERQ_CORE_GATEWAY_WIRE_H_

#include <memory>
#include <string>

#include "common/strings.h"
#include "core/gateway.h"
#include "protocol/pgwire/pgwire.h"

namespace hyperq {

/// Gateway that reaches the backend over the PG v3 wire protocol — the
/// deployment shape of Figure 1, where the backend is a separate
/// PG-compatible MPP system. Hyper-Q "processes network traffic natively"
/// rather than through an ODBC/JDBC driver (§3.1).
class WireGateway : public BackendGateway {
 public:
  static Result<std::unique_ptr<WireGateway>> Connect(
      const std::string& host, uint16_t port, const std::string& user,
      const std::string& password) {
    HQ_ASSIGN_OR_RETURN(pgwire::PgWireClient client,
                        pgwire::PgWireClient::Connect(host, port, user,
                                                      password));
    return std::unique_ptr<WireGateway>(
        new WireGateway(std::move(client), host, port));
  }

  Result<sqldb::QueryResult> Execute(const std::string& sql) override {
    return client_.Query(sql);
  }

  std::string Describe() const override {
    return StrCat("pgwire(", host_, ":", port_, ")");
  }

 private:
  WireGateway(pgwire::PgWireClient client, std::string host, uint16_t port)
      : client_(std::move(client)), host_(std::move(host)), port_(port) {}

  pgwire::PgWireClient client_;
  std::string host_;
  uint16_t port_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_GATEWAY_WIRE_H_
