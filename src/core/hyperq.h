#ifndef HYPERQ_CORE_HYPERQ_H_
#define HYPERQ_CORE_HYPERQ_H_

#include <memory>
#include <optional>
#include <string>

#include "core/cross_compiler.h"
#include "core/gateway.h"
#include "core/loader.h"
#include "core/mdi.h"
#include "core/metadata_cache.h"
#include "core/query_translator.h"

namespace hyperq {

/// One Hyper-Q client session bound to a backend database: the composition
/// root wiring Figure 1 together for in-process use — scopes, MDI + cache,
/// Query Translator, Gateway and Cross Compiler. The network endpoints
/// (QIPC server / PG wire) wrap this same object.
class HyperQSession {
 public:
  struct Options {
    QueryTranslator::Options translator;
    MetadataCache::Options cache;
  };

  HyperQSession(sqldb::Database* backend, Options options = {})
      : gateway_(std::make_unique<DirectGateway>(backend)),
        raw_mdi_(backend, gateway_->session()),
        cache_(&raw_mdi_, options.cache),
        scopes_(&cache_),
        translator_(&cache_, &scopes_, options.translator,
                    [this](const std::string& sql) -> Status {
                      Result<sqldb::QueryResult> r = gateway_->Execute(sql);
                      return r.ok() ? Status::OK() : r.status();
                    }),
        xc_(&translator_, gateway_.get()) {
    cache_.SetVersionProvider(
        [this]() { return raw_mdi_.CatalogVersion(); });
  }

  /// Full query life cycle: Q text in, Q value out. Recognizes the
  /// `.hyperq.*` introspection builtins (e.g. `.hyperq.stats[]`), which are
  /// answered from the metrics registry without touching the translator, so
  /// unchanged kdb+ tooling can scrape Hyper-Q like any other q process.
  Result<QValue> Query(const std::string& q_text);

  /// Translation only (no final execution); setup statements for
  /// materialized variables still execute eagerly (§4.3).
  Result<Translation> Translate(const std::string& q_text) {
    return translator_.Translate(q_text);
  }

  /// Promotes session variables to the server scope (§3.2.3: "Session
  /// variables are promoted to global (server) variables ... as part of
  /// the session scope destruction"). Materialized variables become
  /// durable backend tables named after the variable.
  Status Close();

  const StageTimings& last_timings() const { return last_timings_; }
  const std::string& last_sql() const { return last_sql_; }
  MetadataCache& metadata_cache() { return cache_; }
  VariableScopes& scopes() { return scopes_; }
  BackendGateway& gateway() { return *gateway_; }

  /// The metrics snapshot as a Q table (schema documented in
  /// docs/OBSERVABILITY.md): columns metric, kind, count, sum_us, p50_us,
  /// p95_us, p99_us.
  static QValue StatsTable();

 private:
  /// Handles `.hyperq.*` builtins; returns nullopt for ordinary queries.
  std::optional<Result<QValue>> TryBuiltin(const std::string& q_text);

  std::unique_ptr<DirectGateway> gateway_;
  SqldbMetadata raw_mdi_;
  MetadataCache cache_;
  VariableScopes scopes_;
  QueryTranslator translator_;
  CrossCompiler xc_;
  StageTimings last_timings_;
  std::string last_sql_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_HYPERQ_H_
