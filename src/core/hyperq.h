#ifndef HYPERQ_CORE_HYPERQ_H_
#define HYPERQ_CORE_HYPERQ_H_

#include <memory>
#include <optional>
#include <string>

#include "core/cross_compiler.h"
#include "core/gateway.h"
#include "core/loader.h"
#include "core/mdi.h"
#include "core/metadata_cache.h"
#include "core/query_translator.h"
#include "core/translation_cache.h"

namespace hyperq {

/// One Hyper-Q client session bound to a backend database: the composition
/// root wiring Figure 1 together for in-process use — scopes, MDI + cache,
/// Query Translator, Gateway and Cross Compiler. The network endpoints
/// (QIPC server / PG wire) wrap this same object.
class HyperQSession {
 public:
  struct Options {
    QueryTranslator::Options translator;
    MetadataCache::Options cache;
    /// Options for the session-owned translation cache (ignored when a
    /// shared cache is supplied).
    TranslationCache::Options translation_cache;
    /// A server-owned cache shared across sessions; null means the
    /// session creates its own. The owner is responsible for setting the
    /// shared cache's version provider.
    TranslationCache* shared_translation_cache = nullptr;
  };

  explicit HyperQSession(sqldb::Database* backend)
      : HyperQSession(backend, Options()) {}

  HyperQSession(sqldb::Database* backend, Options options)
      : HyperQSession(std::make_unique<DirectGateway>(backend),
                      std::move(options)) {}

  /// Composition over an arbitrary gateway (e.g. the sharded coordinator).
  /// The gateway must expose an in-process database()/session() pair — the
  /// MDI reads catalog metadata through them.
  HyperQSession(std::unique_ptr<BackendGateway> gateway, Options options)
      : gateway_(std::move(gateway)),
        raw_mdi_(gateway_->database(), gateway_->session()),
        cache_(&raw_mdi_, options.cache),
        scopes_(&cache_),
        translator_(&cache_, &scopes_,
                    WithLiveInfo(WithShardInfo(std::move(options.translator),
                                               gateway_.get()),
                                 gateway_.get()),
                    [this](const std::string& sql) -> Status {
                      Result<sqldb::QueryResult> r = gateway_->Execute(sql);
                      return r.ok() ? Status::OK() : r.status();
                    }),
        xc_(&translator_, gateway_.get()) {
    cache_.SetVersionProvider(
        [this]() { return raw_mdi_.CatalogVersion(); });
    if (options.shared_translation_cache != nullptr) {
      tcache_ = options.shared_translation_cache;
    } else {
      owned_tcache_ =
          std::make_unique<TranslationCache>(options.translation_cache);
      owned_tcache_->SetVersionProvider(
          [this]() { return raw_mdi_.CatalogVersion(); });
      tcache_ = owned_tcache_.get();
    }
    translator_.set_translation_cache(tcache_);
    // Explicitly invalidated metadata drops the translations built on it.
    cache_.SetInvalidationListener([this](const std::string* table) {
      if (table != nullptr) {
        tcache_->InvalidateTable(*table);
      } else {
        tcache_->Clear();
      }
    });
  }

  /// Full query life cycle: Q text in, Q value out. Recognizes the
  /// `.hyperq.*` introspection builtins (e.g. `.hyperq.stats[]`), which are
  /// answered from the metrics registry without touching the translator, so
  /// unchanged kdb+ tooling can scrape Hyper-Q like any other q process.
  Result<QValue> Query(const std::string& q_text);

  /// Translation only (no final execution); setup statements for
  /// materialized variables still execute eagerly (§4.3).
  Result<Translation> Translate(const std::string& q_text) {
    return translator_.Translate(q_text);
  }

  /// Promotes session variables to the server scope (§3.2.3: "Session
  /// variables are promoted to global (server) variables ... as part of
  /// the session scope destruction"). Materialized variables become
  /// durable backend tables named after the variable.
  Status Close();

  const StageTimings& last_timings() const { return last_timings_; }
  const std::string& last_sql() const { return last_sql_; }

  /// Per-session query deadline in milliseconds; 0 = none. Set over the
  /// wire with `.hyperq.deadline[ms]`. The serving endpoint arms an
  /// ambient Deadline from this before each query.
  int64_t deadline_ms() const { return deadline_ms_; }
  void set_deadline_ms(int64_t ms) { deadline_ms_ = ms < 0 ? 0 : ms; }

  MetadataCache& metadata_cache() { return cache_; }
  TranslationCache& translation_cache() { return *tcache_; }
  VariableScopes& scopes() { return scopes_; }
  BackendGateway& gateway() { return *gateway_; }

  /// The metrics snapshot as a Q table (schema documented in
  /// docs/OBSERVABILITY.md): columns metric, kind, count, sum_us, p50_us,
  /// p95_us, p99_us.
  static QValue StatsTable();

 private:
  /// Handles `.hyperq.*` builtins; returns nullopt for ordinary queries.
  std::optional<Result<QValue>> TryBuiltin(const std::string& q_text);

  /// Routes the translator's partitioning lookups through the gateway
  /// (a plain gateway answers nullopt for every table).
  static QueryTranslator::Options WithShardInfo(
      QueryTranslator::Options options, BackendGateway* gateway) {
    if (!options.shard_info) {
      options.shard_info =
          [gateway](const std::string& table) {
            return gateway->ShardInfo(table);
          };
    }
    return options;
  }

  /// Routes the translator's live-table lookups through the gateway (a
  /// plain gateway answers false for every table), so queries over
  /// ingest-backed tables carry a hybrid split plan.
  static QueryTranslator::Options WithLiveInfo(
      QueryTranslator::Options options, BackendGateway* gateway) {
    if (!options.live_info) {
      options.live_info = [gateway](const std::string& table) {
        return gateway->IsLiveTable(table);
      };
    }
    return options;
  }

  std::unique_ptr<BackendGateway> gateway_;
  SqldbMetadata raw_mdi_;
  MetadataCache cache_;
  VariableScopes scopes_;
  QueryTranslator translator_;
  CrossCompiler xc_;
  std::unique_ptr<TranslationCache> owned_tcache_;
  TranslationCache* tcache_ = nullptr;
  StageTimings last_timings_;
  std::string last_sql_;
  int64_t deadline_ms_ = 0;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_HYPERQ_H_
