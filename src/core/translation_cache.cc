#include "core/translation_cache.h"

#include <cctype>

#include "common/strings.h"
#include "qlang/fingerprint.h"
#include "serializer/serializer.h"

namespace hyperq {

TranslationCache::TranslationCache() : TranslationCache(Options()) {}

TranslationCache::TranslationCache(Options options)
    : options_(options),
      enabled_(options.enabled),
      hits_(MetricsRegistry::Global().GetCounter("translation_cache.hits")),
      hits_exact_(MetricsRegistry::Global().GetCounter(
          "translation_cache.exact_hits")),
      misses_(
          MetricsRegistry::Global().GetCounter("translation_cache.misses")),
      inserts_(
          MetricsRegistry::Global().GetCounter("translation_cache.inserts")),
      evictions_(MetricsRegistry::Global().GetCounter(
          "translation_cache.evictions")),
      invalidations_(MetricsRegistry::Global().GetCounter(
          "translation_cache.invalidations")),
      uncacheable_(MetricsRegistry::Global().GetCounter(
          "translation_cache.uncacheable")) {
  if (options_.shard_count == 0) options_.shard_count = 1;
  if (options_.max_variants == 0) options_.max_variants = 1;
  shards_.reserve(options_.shard_count);
  for (size_t i = 0; i < options_.shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool TranslationCache::AnyShadowed(const std::vector<std::string>& names,
                                   const ShadowFn& shadowed) {
  if (!shadowed) return false;
  for (const auto& n : names) {
    if (shadowed(n)) return true;
  }
  return false;
}

bool TranslationCache::LookupExact(const std::string& q_text,
                                   const ShadowFn& shadowed,
                                   Translation* out) {
  if (!enabled()) return false;
  Shard& shard = ShardFor(FingerprintHash(q_text));
  const uint64_t version = CurrentVersion();
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.exact.find(q_text);
  if (it == shard.exact.end()) return false;
  const Cached& c = it->second.value;
  if (c.version != version) {
    shard.exact_lru.erase(it->second.lru_it);
    shard.exact.erase(it);
    invalidations_->Increment();
    return false;
  }
  if (AnyShadowed(c.ref_names, shadowed)) return false;
  shard.exact_lru.splice(shard.exact_lru.begin(), shard.exact_lru,
                         it->second.lru_it);
  out->setup_sql.clear();
  out->result_sql = c.sql;
  out->shape = c.shape;
  out->key_columns = c.key_columns;
  out->shard = c.shard;
  out->hybrid = c.hybrid;
  out->timings = StageTimings{};
  hits_->Increment();
  hits_exact_->Increment();
  return true;
}

void TranslationCache::InsertExact(const std::string& q_text,
                                   const Translation& t,
                                   std::vector<std::string> ref_tables,
                                   std::vector<std::string> ref_names) {
  if (!enabled()) return;
  Shard& shard = ShardFor(FingerprintHash(q_text));
  const uint64_t version = CurrentVersion();
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.exact.find(q_text);
  if (it == shard.exact.end()) {
    shard.exact_lru.push_front(q_text);
    it = shard.exact.emplace(q_text, ExactEntry{}).first;
    it->second.lru_it = shard.exact_lru.begin();
    inserts_->Increment();
  } else {
    shard.exact_lru.splice(shard.exact_lru.begin(), shard.exact_lru,
                           it->second.lru_it);
  }
  Cached& c = it->second.value;
  c.sql = t.result_sql;
  c.shape = t.shape;
  c.key_columns = t.key_columns;
  c.shard = t.shard;
  c.hybrid = t.hybrid;
  c.pins.clear();
  c.ref_tables = std::move(ref_tables);
  c.ref_names = std::move(ref_names);
  c.version = version;
  while (shard.exact.size() > options_.exact_capacity_per_shard) {
    const std::string& victim = shard.exact_lru.back();
    shard.exact.erase(victim);
    shard.exact_lru.pop_back();
    evictions_->Increment();
  }
}

TranslationCache::FpResult TranslationCache::Lookup(
    uint64_t hash, const std::string& fp_text,
    const std::vector<QValue>& params, const ShadowFn& shadowed,
    Translation* out) {
  if (!enabled()) return FpResult::kUncacheable;
  Shard& shard = ShardFor(hash);
  const uint64_t version = CurrentVersion();

  // Render outside the lock: literal formatting has no shared state.
  Result<std::vector<std::string>> rendered = RenderParams(params);

  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.fp.find(fp_text);
  if (it == shard.fp.end()) {
    misses_->Increment();
    return FpResult::kMiss;
  }
  shard.fp_lru.splice(shard.fp_lru.begin(), shard.fp_lru, it->second.lru_it);
  if (it->second.uncacheable) return FpResult::kUncacheable;
  if (!rendered.ok()) {
    // A lifted literal we cannot render can never match or instantiate.
    misses_->Increment();
    return FpResult::kMiss;
  }
  auto& variants = it->second.variants;
  for (auto v = variants.begin(); v != variants.end();) {
    if (v->version != version) {
      v = variants.erase(v);
      invalidations_->Increment();
      continue;
    }
    bool pins_match = true;
    for (const auto& [slot, value] : v->pins) {
      if (slot < 0 || static_cast<size_t>(slot) >= rendered->size() ||
          (*rendered)[slot] != value) {
        pins_match = false;
        break;
      }
    }
    if (!pins_match || AnyShadowed(v->ref_names, shadowed)) {
      ++v;
      continue;
    }
    Result<std::string> sql = Instantiate(v->sql, *rendered);
    if (!sql.ok()) {
      // Verified at insert; a failure here means the entry is corrupt.
      v = variants.erase(v);
      continue;
    }
    out->setup_sql.clear();
    out->result_sql = std::move(*sql);
    out->shape = v->shape;
    out->key_columns = v->key_columns;
    out->timings = StageTimings{};
    hits_->Increment();
    return FpResult::kHit;
  }
  misses_->Increment();
  return FpResult::kMiss;
}

void TranslationCache::Insert(uint64_t hash, const std::string& fp_text,
                              const std::vector<std::string>& rendered_params,
                              const Insertable& entry) {
  if (!enabled()) return;
  Shard& shard = ShardFor(hash);
  const uint64_t version = CurrentVersion();
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.fp.find(fp_text);
  if (it == shard.fp.end()) {
    shard.fp_lru.push_front(fp_text);
    it = shard.fp.emplace(fp_text, FpEntry{}).first;
    it->second.lru_it = shard.fp_lru.begin();
  } else {
    shard.fp_lru.splice(shard.fp_lru.begin(), shard.fp_lru,
                        it->second.lru_it);
  }
  FpEntry& e = it->second;
  if (e.uncacheable) return;
  Cached c;
  c.sql = entry.sql_template;
  c.shape = entry.shape;
  c.key_columns = entry.key_columns;
  c.pins.reserve(entry.pinned_slots.size());
  for (int slot : entry.pinned_slots) {
    if (slot < 0 || static_cast<size_t>(slot) >= rendered_params.size()) {
      // A pin outside the parameter vector can never be re-checked.
      e.uncacheable = true;
      e.reason = "pinned slot outside parameter vector";
      e.variants.clear();
      uncacheable_->Increment();
      return;
    }
    c.pins.emplace_back(slot, rendered_params[slot]);
  }
  c.ref_tables = entry.ref_tables;
  c.ref_names = entry.ref_names;
  c.version = version;
  if (e.variants.size() >= options_.max_variants) {
    e.variants.erase(e.variants.begin());
    evictions_->Increment();
  }
  e.variants.push_back(std::move(c));
  inserts_->Increment();
  while (shard.fp.size() > options_.capacity_per_shard) {
    const std::string& victim = shard.fp_lru.back();
    shard.fp.erase(victim);
    shard.fp_lru.pop_back();
    evictions_->Increment();
  }
}

void TranslationCache::MarkUncacheable(uint64_t hash,
                                       const std::string& fp_text,
                                       std::string reason) {
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.fp.find(fp_text);
  if (it == shard.fp.end()) {
    shard.fp_lru.push_front(fp_text);
    it = shard.fp.emplace(fp_text, FpEntry{}).first;
    it->second.lru_it = shard.fp_lru.begin();
  }
  FpEntry& e = it->second;
  if (!e.uncacheable) uncacheable_->Increment();
  e.uncacheable = true;
  e.reason = std::move(reason);
  e.variants.clear();
  while (shard.fp.size() > options_.capacity_per_shard) {
    const std::string& victim = shard.fp_lru.back();
    shard.fp.erase(victim);
    shard.fp_lru.pop_back();
    evictions_->Increment();
  }
}

void TranslationCache::InvalidateTable(const std::string& table) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->fp.begin(); it != shard->fp.end();) {
      auto& variants = it->second.variants;
      for (auto v = variants.begin(); v != variants.end();) {
        bool refs = false;
        for (const auto& t : v->ref_tables) {
          if (t == table) {
            refs = true;
            break;
          }
        }
        if (refs) {
          v = variants.erase(v);
          invalidations_->Increment();
        } else {
          ++v;
        }
      }
      // Keep uncacheable markers; drop entries left with no variants.
      if (!it->second.uncacheable && variants.empty()) {
        shard->fp_lru.erase(it->second.lru_it);
        it = shard->fp.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = shard->exact.begin(); it != shard->exact.end();) {
      bool refs = false;
      for (const auto& t : it->second.value.ref_tables) {
        if (t == table) {
          refs = true;
          break;
        }
      }
      if (refs) {
        shard->exact_lru.erase(it->second.lru_it);
        it = shard->exact.erase(it);
        invalidations_->Increment();
      } else {
        ++it;
      }
    }
  }
}

void TranslationCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    size_t dropped = shard->fp.size() + shard->exact.size();
    shard->fp.clear();
    shard->fp_lru.clear();
    shard->exact.clear();
    shard->exact_lru.clear();
    invalidations_->Increment(dropped);
  }
}

Result<std::vector<std::string>> TranslationCache::RenderParams(
    const std::vector<QValue>& params) {
  std::vector<std::string> out;
  out.reserve(params.size());
  for (const QValue& p : params) {
    HQ_ASSIGN_OR_RETURN(std::string s, Serializer::RenderConstant(p));
    out.push_back(std::move(s));
  }
  return out;
}

Result<std::string> TranslationCache::Instantiate(
    const std::string& sql_template,
    const std::vector<std::string>& rendered_params) {
  std::string out;
  out.reserve(sql_template.size() + 16 * rendered_params.size());
  for (size_t i = 0; i < sql_template.size();) {
    char c = sql_template[i];
    if (c != '$' || i + 1 >= sql_template.size() ||
        !std::isdigit(static_cast<unsigned char>(sql_template[i + 1]))) {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t j = i + 1;
    size_t n = 0;
    while (j < sql_template.size() &&
           std::isdigit(static_cast<unsigned char>(sql_template[j]))) {
      n = n * 10 + static_cast<size_t>(sql_template[j] - '0');
      ++j;
    }
    if (n == 0 || n > rendered_params.size()) {
      return InternalError(StrCat("translation cache: placeholder $", n,
                                  " outside parameter vector of size ",
                                  rendered_params.size()));
    }
    out += rendered_params[n - 1];
    i = j;
  }
  return out;
}

TranslationCache::Sizes TranslationCache::sizes() const {
  Sizes s;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.fingerprint += shard->fp.size();
    s.exact += shard->exact.size();
  }
  return s;
}

}  // namespace hyperq
