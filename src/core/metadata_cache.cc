#include "core/metadata_cache.h"

namespace hyperq {

bool MetadataCache::Fresh(const Entry& e) const {
  return std::chrono::steady_clock::now() - e.loaded_at <= options_.ttl;
}

void MetadataCache::MaybeFlushOnVersionChange() {
  if (!version_provider_) return;
  uint64_t v = version_provider_();
  if (v != last_version_) {
    last_version_ = v;
    if (!cache_.empty()) {
      cache_.clear();
      ++stats_.invalidations;
      invalidations_metric_->Increment();
    }
  }
}

Result<TableMetadata> MetadataCache::LookupTable(const std::string& name) {
  ++stats_.lookups;
  if (!options_.enabled) {
    ++stats_.misses;
    misses_metric_->Increment();
    return inner_->LookupTable(name);
  }
  MaybeFlushOnVersionChange();
  auto it = cache_.find(name);
  if (it != cache_.end() && Fresh(it->second)) {
    ++stats_.hits;
    hits_metric_->Increment();
    return it->second.meta;
  }
  ++stats_.misses;
  misses_metric_->Increment();
  HQ_ASSIGN_OR_RETURN(TableMetadata meta, inner_->LookupTable(name));
  cache_[name] = Entry{meta, std::chrono::steady_clock::now()};
  return meta;
}

bool MetadataCache::HasTable(const std::string& name) {
  if (options_.enabled) {
    MaybeFlushOnVersionChange();
    auto it = cache_.find(name);
    if (it != cache_.end() && Fresh(it->second)) return true;
  }
  return inner_->HasTable(name);
}

void MetadataCache::Invalidate() {
  cache_.clear();
  ++stats_.invalidations;
  invalidations_metric_->Increment();
  if (listener_) listener_(nullptr);
}

void MetadataCache::InvalidateTable(const std::string& name) {
  if (cache_.erase(name) > 0) {
    ++stats_.invalidations;
    invalidations_metric_->Increment();
  }
  // The listener fires whether or not the MDI held an entry: the caller is
  // declaring the table's metadata stale, and dependent translations must
  // go either way.
  if (listener_) listener_(&name);
}

}  // namespace hyperq
