#ifndef HYPERQ_CORE_PLUGINS_H_
#define HYPERQ_CORE_PLUGINS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/gateway.h"
#include "xformer/xformer.h"

namespace hyperq {

/// Identifies a supported peer system and version, e.g. {"kdb+", 3} on the
/// application side or {"postgres", 9} / {"greenplum", 4} on the backend
/// side. §3: "Hyper-Q virtualizes access to different databases by adopting
/// a plugin-based architecture and using version-aware system components."
struct SystemVersion {
  std::string system;
  int version = 0;

  bool operator<(const SystemVersion& other) const {
    if (system != other.system) return system < other.system;
    return version < other.version;
  }
};

/// Per-backend dialect adjustments a plugin contributes: which Xformer
/// rules to run (systems that have "deviated in functionality or semantics
/// from the core PG database", §3) and how to reach the system.
struct BackendPlugin {
  SystemVersion id;
  std::string description;
  /// Xformer configuration for this backend's dialect.
  Xformer::Options xformer;
  /// Connects a gateway given a connection string "host:port" (empty for
  /// in-process backends registered with a factory closure).
  std::function<Result<std::unique_ptr<BackendGateway>>(
      const std::string& target)>
      connect;
};

/// An application-side (endpoint) plugin: wire protocol identity. The QIPC
/// endpoint for kdb+ v2/v3 is built in; the registry allows additional
/// client protocols ("additional plugins for other languages are currently
/// under development", §8).
struct EndpointPlugin {
  SystemVersion id;
  std::string description;
  /// Highest client protocol version this plugin can speak.
  int max_protocol_version = 0;
};

/// Version-aware plugin registry. Resolution picks the registered plugin
/// for the same system with the highest version not exceeding the
/// requested one (a v9.2 Greenplum is served by the v9 plugin).
class PluginRegistry {
 public:
  /// A registry pre-populated with the built-in kdb+ endpoint and
  /// PostgreSQL backend plugins.
  static PluginRegistry WithBuiltins();

  Status RegisterBackend(BackendPlugin plugin);
  Status RegisterEndpoint(EndpointPlugin plugin);

  /// Version-aware lookup; NotFound when no plugin for the system exists,
  /// Unsupported when only newer versions are registered.
  Result<const BackendPlugin*> FindBackend(const std::string& system,
                                           int version) const;
  Result<const EndpointPlugin*> FindEndpoint(const std::string& system,
                                             int version) const;

  std::vector<SystemVersion> BackendSystems() const;
  std::vector<SystemVersion> EndpointSystems() const;

 private:
  std::map<SystemVersion, BackendPlugin> backends_;
  std::map<SystemVersion, EndpointPlugin> endpoints_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_PLUGINS_H_
