#include "core/plugins.h"

#include <cstdlib>

#include "common/strings.h"
#include "core/gateway_wire.h"

namespace hyperq {

namespace {

/// Parses "host:port" into its parts.
Result<std::pair<std::string, uint16_t>> SplitTarget(
    const std::string& target) {
  size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    return InvalidArgument(
        StrCat("backend target '", target, "' must be host:port"));
  }
  int port = std::atoi(target.substr(colon + 1).c_str());
  if (port <= 0 || port > 65535) {
    return InvalidArgument(StrCat("invalid port in target '", target, "'"));
  }
  return std::make_pair(target.substr(0, colon),
                        static_cast<uint16_t>(port));
}

}  // namespace

PluginRegistry PluginRegistry::WithBuiltins() {
  PluginRegistry reg;

  EndpointPlugin kdb2;
  kdb2.id = {"kdb+", 2};
  kdb2.description = "QIPC endpoint (kdb+ v2 clients, no compression)";
  kdb2.max_protocol_version = 2;
  (void)reg.RegisterEndpoint(std::move(kdb2));

  EndpointPlugin kdb3;
  kdb3.id = {"kdb+", 3};
  kdb3.description = "QIPC endpoint (kdb+ v3 clients)";
  kdb3.max_protocol_version = 3;
  (void)reg.RegisterEndpoint(std::move(kdb3));

  BackendPlugin pg9;
  pg9.id = {"postgres", 9};
  pg9.description = "PostgreSQL 9.x over the v3 wire protocol";
  pg9.connect = [](const std::string& target)
      -> Result<std::unique_ptr<BackendGateway>> {
    HQ_ASSIGN_OR_RETURN(auto hp, SplitTarget(target));
    HQ_ASSIGN_OR_RETURN(
        std::unique_ptr<WireGateway> gw,
        WireGateway::Connect(hp.first, hp.second, "hyperq", ""));
    return std::unique_ptr<BackendGateway>(std::move(gw));
  };
  (void)reg.RegisterBackend(std::move(pg9));

  // Greenplum: PG-compatible dialect (§6 runs against Greenplum); same wire
  // protocol, same rule set in this reproduction.
  BackendPlugin gp4;
  gp4.id = {"greenplum", 4};
  gp4.description = "Greenplum 4.x (PG-compatible MPP)";
  gp4.connect = [](const std::string& target)
      -> Result<std::unique_ptr<BackendGateway>> {
    HQ_ASSIGN_OR_RETURN(auto hp, SplitTarget(target));
    HQ_ASSIGN_OR_RETURN(
        std::unique_ptr<WireGateway> gw,
        WireGateway::Connect(hp.first, hp.second, "gpadmin", ""));
    return std::unique_ptr<BackendGateway>(std::move(gw));
  };
  (void)reg.RegisterBackend(std::move(gp4));
  return reg;
}

Status PluginRegistry::RegisterBackend(BackendPlugin plugin) {
  auto [it, inserted] = backends_.emplace(plugin.id, std::move(plugin));
  if (!inserted) {
    return AlreadyExists(StrCat("backend plugin for ", it->first.system,
                                " v", it->first.version,
                                " is already registered"));
  }
  return Status::OK();
}

Status PluginRegistry::RegisterEndpoint(EndpointPlugin plugin) {
  auto [it, inserted] = endpoints_.emplace(plugin.id, std::move(plugin));
  if (!inserted) {
    return AlreadyExists(StrCat("endpoint plugin for ", it->first.system,
                                " v", it->first.version,
                                " is already registered"));
  }
  return Status::OK();
}

namespace {

template <typename Map>
Result<const typename Map::mapped_type*> VersionAwareFind(
    const Map& map, const std::string& system, int version,
    const char* kind) {
  const typename Map::mapped_type* best = nullptr;
  bool any = false;
  for (const auto& [id, plugin] : map) {
    if (id.system != system) continue;
    any = true;
    if (id.version <= version) best = &plugin;
  }
  if (!any) {
    return NotFound(StrCat("no ", kind, " plugin registered for system '",
                           system, "'"));
  }
  if (best == nullptr) {
    return Unsupported(StrCat("system '", system, "' v", version,
                              " predates every registered ", kind,
                              " plugin"));
  }
  return best;
}

}  // namespace

Result<const BackendPlugin*> PluginRegistry::FindBackend(
    const std::string& system, int version) const {
  return VersionAwareFind(backends_, system, version, "backend");
}

Result<const EndpointPlugin*> PluginRegistry::FindEndpoint(
    const std::string& system, int version) const {
  return VersionAwareFind(endpoints_, system, version, "endpoint");
}

std::vector<SystemVersion> PluginRegistry::BackendSystems() const {
  std::vector<SystemVersion> out;
  for (const auto& [id, _] : backends_) out.push_back(id);
  return out;
}

std::vector<SystemVersion> PluginRegistry::EndpointSystems() const {
  std::vector<SystemVersion> out;
  for (const auto& [id, _] : endpoints_) out.push_back(id);
  return out;
}

}  // namespace hyperq
