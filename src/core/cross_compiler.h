#ifndef HYPERQ_CORE_CROSS_COMPILER_H_
#define HYPERQ_CORE_CROSS_COMPILER_H_

#include <string>

#include "core/fsm.h"
#include "core/gateway.h"
#include "core/query_translator.h"
#include "qval/qvalue.h"

namespace hyperq {

/// The Cross Compiler (XC) of §3.4 / Figure 4: drives one request through
/// the Protocol Translator / Query Translator split. The PT owns message
/// handling (here: query text in, Q value out — the wire encodings live in
/// the Endpoint/Gateway plugins); the QT owns the Q -> XTRA -> SQL
/// translation. Both are modeled as FSMs whose callbacks perform the
/// stage work, mirroring the paper's event-driven re-entrant design.
class CrossCompiler {
 public:
  /// Protocol Translator states (request life cycle, §3 "Query Life
  /// Cycle").
  enum class PtState {
    kIdle,
    kParsingRequest,
    kAwaitingTranslation,
    kExecuting,
    kTranslatingResults,
    kResponding,
  };
  enum class PtEvent {
    kRequestArrived,
    kQueryExtracted,
    kTranslationReady,
    kResultsReady,
    kResultsTranslated,
    kResponseSent,
  };

  CrossCompiler(QueryTranslator* translator, BackendGateway* gateway)
      : translator_(translator), gateway_(gateway) {}

  /// Runs the full query life cycle for one Q request; returns the Q value
  /// to send back. `timings` (optional) receives the translation stage
  /// breakdown; `executed_sql` (optional) receives the final SQL text.
  Result<QValue> Process(const std::string& q_text,
                         StageTimings* timings = nullptr,
                         std::string* executed_sql = nullptr);

 private:
  QueryTranslator* translator_;
  BackendGateway* gateway_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_CROSS_COMPILER_H_
