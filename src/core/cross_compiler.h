#ifndef HYPERQ_CORE_CROSS_COMPILER_H_
#define HYPERQ_CORE_CROSS_COMPILER_H_

#include <cstdint>
#include <string>

#include "core/fsm.h"
#include "core/gateway.h"
#include "core/query_translator.h"
#include "qval/qvalue.h"

namespace hyperq {

/// Bounded retry for transient backend-gateway failures (connection loss,
/// overload — IsTransient statuses). Only the final, idempotent result
/// query is ever re-dispatched: setup statements (materialized variables)
/// have side effects, and non-SELECT results could double-apply. Backoff
/// is exponential with deterministic, seeded jitter, and never sleeps past
/// the request's deadline.
struct RetryPolicy {
  /// Total dispatch attempts (1 = retries disabled).
  int max_attempts = 3;
  int base_backoff_ms = 2;
  int max_backoff_ms = 50;
  /// Seed for the jitter RNG; 0 picks a fixed default (replayable runs).
  uint64_t jitter_seed = 0;
};

/// The Cross Compiler (XC) of §3.4 / Figure 4: drives one request through
/// the Protocol Translator / Query Translator split. The PT owns message
/// handling (here: query text in, Q value out — the wire encodings live in
/// the Endpoint/Gateway plugins); the QT owns the Q -> XTRA -> SQL
/// translation. Both are modeled as FSMs whose callbacks perform the
/// stage work, mirroring the paper's event-driven re-entrant design.
class CrossCompiler {
 public:
  /// Protocol Translator states (request life cycle, §3 "Query Life
  /// Cycle").
  enum class PtState {
    kIdle,
    kParsingRequest,
    kAwaitingTranslation,
    kExecuting,
    kTranslatingResults,
    kResponding,
  };
  enum class PtEvent {
    kRequestArrived,
    kQueryExtracted,
    kTranslationReady,
    kResultsReady,
    kResultsTranslated,
    kResponseSent,
  };

  CrossCompiler(QueryTranslator* translator, BackendGateway* gateway,
                RetryPolicy retry = RetryPolicy{})
      : translator_(translator), gateway_(gateway), retry_(retry) {
    jitter_state_ = retry_.jitter_seed ? retry_.jitter_seed
                                       : 0x9E3779B97F4A7C15ull;
  }

  /// Runs the full query life cycle for one Q request; returns the Q value
  /// to send back. `timings` (optional) receives the translation stage
  /// breakdown; `executed_sql` (optional) receives the final SQL text.
  /// Honors the thread's ambient Deadline at every stage boundary: an
  /// expired request returns kTimeout instead of continuing.
  Result<QValue> Process(const std::string& q_text,
                         StageTimings* timings = nullptr,
                         std::string* executed_sql = nullptr);

  const RetryPolicy& retry_policy() const { return retry_; }

 private:
  /// Dispatches the result query (scatter-gather included, via the
  /// gateway's ExecuteTranslated) with the bounded-retry policy.
  Status ExecuteWithRetry(const Translation& translation,
                          sqldb::QueryResult* result);
  /// Deterministic jitter factor in [0.5, 1.5).
  double NextJitter();

  QueryTranslator* translator_;
  BackendGateway* gateway_;
  RetryPolicy retry_;
  uint64_t jitter_state_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_CROSS_COMPILER_H_
