#ifndef HYPERQ_CORE_LIVE_STORE_H_
#define HYPERQ_CORE_LIVE_STORE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "qval/qvalue.h"

namespace hyperq {

/// The write-side contract between the core layers (endpoint `upd`
/// dispatch, `.hyperq.*` builtins) and the ingest subsystem
/// (src/ingest, docs/INGEST.md). An abstract interface so hq_core does
/// not depend on hq_ingest: gateways that serve live tables return their
/// IngestStore through BackendGateway::live_store().
class LiveStore {
 public:
  virtual ~LiveStore() = default;

  /// Applies one tickerplant `upd` batch to `table`'s in-memory tail.
  /// `data` is a Q table (columns matched by name) or a column list
  /// (positional). Returns the number of rows appended. All-or-nothing:
  /// a failed batch leaves the tail untouched.
  virtual Result<size_t> Upd(const std::string& table,
                             const QValue& data) = 0;

  /// Migrates `table`'s tail segments into the historical backend.
  virtual Status Flush(const std::string& table) = 0;

  /// Flushes every live table; returns the first error (all tables are
  /// still attempted).
  virtual Status FlushAll() = 0;

  /// True when `table` is ingest-backed (registered or has received upd).
  virtual bool IsLive(const std::string& table) const = 0;

  /// True when `table` currently has unflushed tail rows.
  virtual bool HasTail(const std::string& table) const = 0;

  /// Live table names, sorted.
  virtual std::vector<std::string> LiveTables() const = 0;

  /// Per-table ingest counters as a Q table (columns: table, rows,
  /// batches, flushes, tail_rows, rows_flushed) for `.hyperq.ingestStats`.
  virtual QValue StatsTable() const = 0;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_LIVE_STORE_H_
