#include "core/query_translator.h"

#include <chrono>

#include "common/metrics.h"
#include "common/strings.h"
#include "core/translation_cache.h"
#include "qlang/fingerprint.h"
#include "qlang/parser.h"
#include "serializer/serializer.h"

namespace hyperq {

namespace {

class StageTimer {
 public:
  explicit StageTimer(double* sink) : sink_(sink) {
    start_ = std::chrono::steady_clock::now();
  }
  ~StageTimer() {
    auto end = std::chrono::steady_clock::now();
    *sink_ += std::chrono::duration<double, std::micro>(end - start_).count();
  }

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

/// Wall time of a cache hit, from request text to ready Translation.
LatencyHistogram* CacheHitHistogram() {
  static LatencyHistogram* hist =
      MetricsRegistry::Global().GetHistogram("translate.cache_hit_us");
  return hist;
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::string QueryTranslator::NextTempName() {
  return StrCat("HQ_TEMP_", ++temp_counter_);
}

bool QueryTranslator::IsFunctionInvocation(const AstPtr& stmt) const {
  if (stmt->kind != AstKind::kApply || !stmt->child ||
      stmt->child->kind != AstKind::kVarRef) {
    return false;
  }
  Result<VarBinding> b = scopes_->Lookup(stmt->child->name);
  return b.ok() && b->kind == VarBinding::Kind::kFunction;
}

Result<Translation> QueryTranslator::Translate(const std::string& q_text) {
  const auto start = std::chrono::steady_clock::now();
  const bool cache_on = cache_ != nullptr && cache_->enabled();
  TranslationCache::ShadowFn shadow = [this](const std::string& name) {
    return scopes_->IsShadowed(name);
  };

  if (cache_on) {
    Translation hit;
    if (cache_->LookupExact(q_text, shadow, &hit)) {
      hit.cache_hit = true;
      CacheHitHistogram()->Record(MicrosSince(start));
      return hit;
    }
  }

  Translation out;
  std::vector<AstPtr> stmts;
  {
    StageTimer t(&out.timings.parse_us);
    HQ_ASSIGN_OR_RETURN(stmts, Parser::ParseProgram(q_text));
  }
  if (stmts.empty()) {
    return InvalidArgument("empty q request");
  }

  // Single side-effect-free statements go through the fingerprint tier.
  bool exact_insertable = false;
  bool fp_attempt_failed = false;
  QueryFingerprint fp;
  if (cache_on && stmts.size() == 1 && !IsFunctionInvocation(stmts[0])) {
    fp = FingerprintProgram(stmts);
    if (fp.cacheable) {
      exact_insertable = true;  // definitely side-effect free
      Translation hit;
      TranslationCache::FpResult r =
          cache_->Lookup(fp.hash, fp.text, fp.params, shadow, &hit);
      if (r == TranslationCache::FpResult::kHit) {
        hit.cache_hit = true;
        hit.timings.parse_us = out.timings.parse_us;
        CacheHitHistogram()->Record(MicrosSince(start));
        return hit;
      }
      if (r == TranslationCache::FpResult::kMiss) {
        Result<Translation> miss = TranslateFingerprintMiss(
            q_text, stmts[0], fp, out.timings.parse_us);
        // Errors fall through to the plain path below, which re-raises
        // genuine user errors with the original (unparameterized) AST.
        if (miss.ok()) return miss;
        fp_attempt_failed = true;
      }
    }
  }

  BindTrace trace;
  Binder binder(mdi_, scopes_, &trace);
  bool produced_result = false;
  for (size_t i = 0; i < stmts.size(); ++i) {
    bool is_last = i + 1 == stmts.size();
    const AstPtr& stmt = stmts[i];
    if (stmt->kind == AstKind::kAssign ||
        stmt->kind == AstKind::kGlobalAssign) {
      HQ_RETURN_IF_ERROR(ProcessAssignment(stmt, &binder, &out));
      produced_result = false;
      continue;
    }
    if (stmt->kind == AstKind::kApply) {
      // Possibly a user-function invocation to unroll.
      const AstPtr& callee = stmt->child;
      if (callee->kind == AstKind::kVarRef) {
        Result<VarBinding> b = scopes_->Lookup(callee->name);
        if (b.ok() && b->kind == VarBinding::Kind::kFunction) {
          HQ_RETURN_IF_ERROR(
              ProcessFunctionCall(*stmt, &binder, &out, &produced_result));
          continue;
        }
      }
    }
    // Intermediate non-assignment statements without side effects are only
    // translated when they are the last statement (their value is the
    // response); earlier ones are skipped.
    if (is_last) {
      HQ_RETURN_IF_ERROR(EmitResultQuery(stmt, &binder, &out));
      produced_result = true;
    }
  }
  // The exact tier can replay any side-effect-free result query whose
  // binding never read a session/local variable's value.
  if (exact_insertable && produced_result && out.setup_sql.empty() &&
      !trace.used_scope_var) {
    if (fp_attempt_failed) {
      // The plain pipeline accepts this query but the parameterized one
      // does not: stop re-attempting parameterization for the shape.
      cache_->MarkUncacheable(fp.hash, fp.text,
                              "parameterized translation failed");
    }
    cache_->InsertExact(q_text, out, trace.ref_tables, trace.ref_names);
  }
  (void)produced_result;
  return out;
}

Result<Translation> QueryTranslator::TranslateFingerprintMiss(
    const std::string& q_text, const AstPtr& stmt, const QueryFingerprint& fp,
    double parse_us) {
  Translation out;
  out.timings.parse_us = parse_us;

  AstPtr param_stmt = ParameterizeStatement(stmt);
  BindTrace trace;
  Binder binder(mdi_, scopes_, &trace);

  BoundQuery bound;
  {
    StageTimer t(&out.timings.bind_us);
    HQ_ASSIGN_OR_RETURN(bound, binder.BindQuery(param_stmt));
  }
  bool order_matters = bound.shape == ResultShape::kTable ||
                       bound.shape == ResultShape::kList;
  {
    StageTimer t(&out.timings.xform_us);
    Xformer xformer(options_.xformer);
    HQ_RETURN_IF_ERROR(xformer.Transform(bound.root, order_matters));
  }
  {
    StageTimer t(&out.timings.serialize_us);
    Serializer concrete;
    HQ_ASSIGN_OR_RETURN(out.result_sql, concrete.Serialize(bound.root));
  }
  out.shape = bound.shape;
  out.key_columns = bound.key_columns;
  PlanSharding(bound.root, &out);
  PlanHybrid(bound.root, &out);

  // Value-dependent bindings make the translation specific to this
  // session's variables: return it, but never share it through the cache.
  if (trace.used_scope_var) return out;

  // Serialize the same tree again in parameterized mode to get the $n
  // template (cold-path-only extra work, excluded from stage timings).
  Serializer param_ser;
  param_ser.EnableParamMode();
  Result<std::string> sql_template = param_ser.Serialize(bound.root);
  if (!sql_template.ok()) {
    cache_->MarkUncacheable(fp.hash, fp.text,
                            std::string(sql_template.status().message()));
    return out;
  }

  // Every slot that did not surface as a placeholder had its value baked
  // into the plan (structural pins, `in`-list expansion, constant folding):
  // it must match exactly for the entry to be reused.
  std::vector<bool> emitted(fp.params.size(), false);
  for (int slot : param_ser.emitted_slots()) {
    if (slot >= 0 && static_cast<size_t>(slot) < emitted.size()) {
      emitted[slot] = true;
    }
  }
  TranslationCache::Insertable entry;
  entry.sql_template = std::move(*sql_template);
  entry.shape = out.shape;
  entry.key_columns = out.key_columns;
  for (size_t i = 0; i < emitted.size(); ++i) {
    if (!emitted[i]) entry.pinned_slots.push_back(static_cast<int>(i));
  }
  entry.ref_tables = trace.ref_tables;
  entry.ref_names = trace.ref_names;

  // Verify end-to-end before publishing: instantiating the template with
  // the current literals must reproduce the concrete SQL byte-for-byte.
  // This catches any path that bakes a parameter value we failed to pin
  // (and pathological `$n` collisions inside string literals).
  Result<std::vector<std::string>> rendered =
      TranslationCache::RenderParams(fp.params);
  if (!rendered.ok()) {
    cache_->MarkUncacheable(fp.hash, fp.text,
                            std::string(rendered.status().message()));
    return out;
  }
  Result<std::string> replay =
      TranslationCache::Instantiate(entry.sql_template, *rendered);
  if (!replay.ok() || *replay != out.result_sql) {
    cache_->MarkUncacheable(
        fp.hash, fp.text,
        replay.ok() ? "instantiated template diverges from concrete SQL"
                    : std::string(replay.status().message()));
    return out;
  }

  cache_->Insert(fp.hash, fp.text, *rendered, entry);
  cache_->InsertExact(q_text, out, trace.ref_tables, trace.ref_names);
  return out;
}

Status QueryTranslator::ProcessAssignment(const AstPtr& stmt, Binder* binder,
                                          Translation* out) {
  const std::string& name = stmt->name;
  const AstPtr& rhs = stmt->child;

  // Function definition: store the lambda text (§4.3).
  if (rhs->kind == AstKind::kLambda) {
    VarBinding b;
    b.kind = VarBinding::Kind::kFunction;
    b.function = QValue::MakeLambda(rhs->params, rhs->source);
    if (stmt->kind == AstKind::kGlobalAssign) {
      scopes_->UpsertSession(name, std::move(b));
    } else {
      scopes_->Upsert(name, std::move(b));
    }
    return Status::OK();
  }

  // Scalar constant: keep in Hyper-Q's variable store (logical
  // materialization of scalars, §4.3).
  {
    Result<QValue> c = binder->BindConstant(rhs);
    if (c.ok()) {
      VarBinding b;
      b.kind = VarBinding::Kind::kScalar;
      b.scalar = std::move(c).value();
      if (stmt->kind == AstKind::kGlobalAssign) {
        scopes_->UpsertSession(name, std::move(b));
      } else {
        scopes_->Upsert(name, std::move(b));
      }
      return Status::OK();
    }
  }

  // Table-valued: materialize eagerly into the backend.
  return MaterializeQuery(name, rhs, binder, out);
}

Status QueryTranslator::MaterializeQuery(const std::string& var_name,
                                         const AstPtr& expr, Binder* binder,
                                         Translation* out) {
  BoundQuery bound;
  {
    StageTimer t(&out->timings.bind_us);
    HQ_ASSIGN_OR_RETURN(bound, binder->BindQuery(expr));
  }
  {
    StageTimer t(&out->timings.xform_us);
    Xformer xformer(options_.xformer);
    HQ_RETURN_IF_ERROR(
        xformer.Transform(bound.root, /*result_order_required=*/true));
  }
  std::string select_sql;
  {
    StageTimer t(&out->timings.serialize_us);
    Serializer serializer;
    HQ_ASSIGN_OR_RETURN(select_sql, serializer.Serialize(bound.root));
  }

  std::string temp = NextTempName();
  std::string quoted = Serializer::QuoteIdent(temp);
  std::string ddl =
      options_.materialize == MaterializeMode::kPhysical
          ? StrCat("CREATE TEMPORARY TABLE ", quoted, " AS ", select_sql)
          : StrCat("CREATE TEMPORARY VIEW ", quoted, " AS ", select_sql);
  // Eager materialization (§4.3): later statements algebrize against this
  // object's metadata, so it must exist before we continue.
  HQ_RETURN_IF_ERROR(execute_backend_(ddl));
  out->setup_sql.push_back(std::move(ddl));

  VarBinding b;
  b.kind = VarBinding::Kind::kRelation;
  b.table = temp;
  scopes_->Upsert(var_name, std::move(b));
  return Status::OK();
}

Status QueryTranslator::ProcessFunctionCall(const AstNode& apply,
                                            Binder* binder, Translation* out,
                                            bool* produced_result) {
  HQ_ASSIGN_OR_RETURN(VarBinding fb, scopes_->Lookup(apply.child->name));
  const QLambda& lambda = fb.function.Lambda();

  // The function body is stored as text and re-algebrized on invocation
  // (§4.3).
  AstPtr body;
  {
    StageTimer t(&out->timings.parse_us);
    HQ_ASSIGN_OR_RETURN(body, Parser::ParseExpression(lambda.source));
  }
  if (body->kind != AstKind::kLambda) {
    return InternalError("stored function text is not a lambda");
  }
  if (apply.args.size() > body->params.size()) {
    return BindError(StrCat("function '", apply.child->name, "' takes ",
                            body->params.size(), " arguments, got ",
                            apply.args.size()));
  }

  // Bind arguments as local constants (table arguments would require
  // materialization; constants cover the dominant customer pattern, §5).
  scopes_->PushLocal();
  auto cleanup = [&]() { scopes_->PopLocal(); };
  for (size_t i = 0; i < apply.args.size(); ++i) {
    Result<QValue> c = binder->BindConstant(apply.args[i]);
    if (!c.ok()) {
      cleanup();
      return BindError(StrCat(
          "argument ", i + 1, " of '", apply.child->name,
          "' is not a translatable constant: ", c.status().message()));
    }
    VarBinding b;
    b.kind = VarBinding::Kind::kScalar;
    b.scalar = std::move(c).value();
    scopes_->Upsert(body->params[i], std::move(b));
  }

  // Unroll the body: assignments materialize, the explicit return (or the
  // last statement) becomes the result query.
  for (size_t i = 0; i < body->body.size(); ++i) {
    const AstPtr& stmt = body->body[i];
    bool is_last = i + 1 == body->body.size();
    if (stmt->kind == AstKind::kAssign) {
      Status s = ProcessAssignment(stmt, binder, out);
      if (!s.ok()) {
        cleanup();
        return s;
      }
      continue;
    }
    if (stmt->kind == AstKind::kGlobalAssign) {
      Status s = ProcessAssignment(stmt, binder, out);
      if (!s.ok()) {
        cleanup();
        return s;
      }
      continue;
    }
    const AstPtr& expr =
        stmt->kind == AstKind::kReturn ? stmt->child : stmt;
    if (stmt->kind == AstKind::kReturn || is_last) {
      // A function may end by calling another function: unroll recursively
      // (§5: "unrolling a large class of Q user-defined functions").
      if (expr->kind == AstKind::kApply &&
          expr->child->kind == AstKind::kVarRef) {
        Result<VarBinding> callee = scopes_->Lookup(expr->child->name);
        if (callee.ok() && callee->kind == VarBinding::Kind::kFunction) {
          Status s = ProcessFunctionCall(*expr, binder, out,
                                         produced_result);
          cleanup();
          return s;
        }
      }
      Status s = EmitResultQuery(expr, binder, out);
      if (!s.ok()) {
        cleanup();
        return s;
      }
      *produced_result = true;
      break;
    }
  }
  cleanup();
  return Status::OK();
}

Status QueryTranslator::EmitResultQuery(const AstPtr& expr, Binder* binder,
                                        Translation* out) {
  BoundQuery bound;
  {
    StageTimer t(&out->timings.bind_us);
    HQ_ASSIGN_OR_RETURN(bound, binder->BindQuery(expr));
  }
  bool order_matters = bound.shape == ResultShape::kTable ||
                       bound.shape == ResultShape::kList;
  {
    StageTimer t(&out->timings.xform_us);
    Xformer xformer(options_.xformer);
    HQ_RETURN_IF_ERROR(xformer.Transform(bound.root, order_matters));
  }
  {
    StageTimer t(&out->timings.serialize_us);
    Serializer serializer;
    HQ_ASSIGN_OR_RETURN(out->result_sql, serializer.Serialize(bound.root));
  }
  out->shape = bound.shape;
  out->key_columns = bound.key_columns;
  PlanSharding(bound.root, out);
  PlanHybrid(bound.root, out);
  return Status::OK();
}

void QueryTranslator::PlanSharding(const xtra::XtraPtr& root,
                                   Translation* out) {
  out->shard = ShardPlan{};
  if (!options_.shard_info) return;
  ShardRewrite rewrite = PlanShardRewrite(root, options_.shard_info);
  if (rewrite.mode == ShardMode::kNone) return;
  std::string partial_sql;
  if (rewrite.partial != nullptr) {
    Serializer partial_ser;
    Result<std::string> p = partial_ser.Serialize(rewrite.partial);
    if (!p.ok()) return;
    partial_sql = std::move(*p);
  }
  Serializer merge_ser;
  Result<std::string> m = merge_ser.Serialize(rewrite.merge);
  if (!m.ok()) return;
  out->shard.mode = rewrite.mode;
  out->shard.table = std::move(rewrite.table);
  out->shard.partial_sql = std::move(partial_sql);
  out->shard.merge_sql = std::move(*m);
  out->shard.routed = rewrite.routed;
  out->shard.route_key = std::move(rewrite.route_key);
}

void QueryTranslator::PlanHybrid(const xtra::XtraPtr& root,
                                 Translation* out) {
  out->hybrid = ShardPlan{};
  if (!options_.live_info) return;
  ShardRewrite rewrite = PlanHybridRewrite(root, options_.live_info);
  if (rewrite.mode == ShardMode::kNone) return;
  std::string partial_sql;
  if (rewrite.partial != nullptr) {
    Serializer partial_ser;
    Result<std::string> p = partial_ser.Serialize(rewrite.partial);
    if (!p.ok()) return;
    partial_sql = std::move(*p);
  }
  Serializer merge_ser;
  Result<std::string> m = merge_ser.Serialize(rewrite.merge);
  if (!m.ok()) return;
  out->hybrid.mode = rewrite.mode;
  out->hybrid.table = std::move(rewrite.table);
  out->hybrid.partial_sql = std::move(partial_sql);
  out->hybrid.merge_sql = std::move(*m);
}

}  // namespace hyperq
