#ifndef HYPERQ_CORE_LOADER_H_
#define HYPERQ_CORE_LOADER_H_

#include <string>
#include <vector>

#include "algebrizer/binder.h"
#include "common/status.h"
#include "qval/qvalue.h"
#include "sqldb/database.h"

namespace hyperq {

/// Loads a Q table into the backend database, adding the implicit order
/// column (ordcol) that preserves Q's ordered-list semantics (§2.2: "each Q
/// table has an implicit order column. Providing implicit ordering using
/// SQL requires database schema changes"). The paper assumes data is loaded
/// into the underlying systems independently (§1); this is that loader.
/// Keyed tables record their key columns in the catalog metadata.
Status LoadQTable(sqldb::Database* db, const std::string& name,
                  const QValue& table,
                  const std::vector<std::string>& key_columns = {});

/// Converts one Q column element to a backend datum.
Result<sqldb::Datum> DatumFromQ(const QValue& column, int64_t row);

/// Converts a backend result cell back into a Q atom.
QValue QFromDatum(const sqldb::Datum& d);

/// Converts a backend row set into a Q value of the requested shape,
/// dropping Hyper-Q helper columns (ordcol, hq_*). This is the result leg
/// of the Cross Compiler (§3.4): rows are pivoted into Q's column-oriented
/// form (§4.2).
Result<QValue> QValueFromResult(const sqldb::QueryResult& result,
                                ResultShape shape,
                                const std::vector<std::string>& key_columns);

/// Rvalue variant: may adopt (move) backend column buffers straight into
/// the Q lists when this result holds the only reference, skipping the
/// copy as well as the pivot. The result is consumed.
Result<QValue> QValueFromResult(sqldb::QueryResult&& result,
                                ResultShape shape,
                                const std::vector<std::string>& key_columns);

}  // namespace hyperq

#endif  // HYPERQ_CORE_LOADER_H_
