#ifndef HYPERQ_CORE_TRANSLATION_CACHE_H_
#define HYPERQ_CORE_TRANSLATION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/query_translator.h"
#include "qval/qvalue.h"

namespace hyperq {

/// Sharded, thread-safe cache of translations keyed by query fingerprint.
///
/// Two tiers:
///  - An exact-text tier keyed by the raw Q request: a hit skips the whole
///    pipeline (parse included) and replays the concrete result SQL.
///  - A fingerprint tier keyed by the normalized AST shape produced by
///    qlang::FingerprintProgram: literal atoms are lifted into an ordered
///    parameter vector, so `select from t where x > 5` and `... x > 7`
///    share one entry. A hit splices the current literals into the cached
///    `$n`-parameterized SQL template, skipping bind, xform and serialize.
///
/// Correctness guards carried per entry:
///  - catalog version: entries are stamped with the MDI catalog version at
///    insert and rejected (and dropped) when it has moved;
///  - referenced names: a hit is refused while any name the cached binding
///    resolved is currently shadowed by a session/local variable;
///  - pinned slots: lifted literals whose values were consumed structurally
///    during binding (take counts, select[n] limits, window sizes, cast
///    targets, sort column lists) must match the cached values exactly —
///    distinct pin values become distinct variants of the same fingerprint.
///
/// Fingerprints that ever fail template verification (the instantiated
/// template must reproduce the concrete SQL byte-for-byte) are marked
/// uncacheable so the translator stops re-attempting them. All entries are
/// shared across sessions; per-shard mutexes make every operation safe for
/// concurrent sessions.
class TranslationCache {
 public:
  struct Options {
    bool enabled = true;
    size_t shard_count = 8;
    size_t capacity_per_shard = 512;         ///< fingerprint entries/shard
    size_t exact_capacity_per_shard = 1024;  ///< exact-text entries/shard
    size_t max_variants = 4;  ///< pinned-value variants per fingerprint
  };

  /// Outcome of a fingerprint-tier lookup.
  enum class FpResult {
    kHit,         ///< `out` holds a ready Translation
    kMiss,        ///< translate normally, then Insert/MarkUncacheable
    kUncacheable  ///< known-bad fingerprint: translate normally, skip insert
  };

  /// What the translator stores after a cacheable miss.
  struct Insertable {
    std::string sql_template;  ///< result SQL with $n placeholders
    ResultShape shape = ResultShape::kTable;
    std::vector<std::string> key_columns;
    std::vector<int> pinned_slots;        ///< slots consumed structurally
    std::vector<std::string> ref_tables;  ///< backend tables referenced
    std::vector<std::string> ref_names;   ///< names resolved through scopes
  };

  /// True when `name` is currently shadowed by a session/local variable.
  using ShadowFn = std::function<bool(const std::string&)>;

  TranslationCache();
  explicit TranslationCache(Options options);

  /// Installs the catalog-version source used to stamp and check entries.
  void SetVersionProvider(std::function<uint64_t()> provider) {
    version_provider_ = std::move(provider);
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Exact tier: replays a previously translated request verbatim.
  bool LookupExact(const std::string& q_text, const ShadowFn& shadowed,
                   Translation* out);
  void InsertExact(const std::string& q_text, const Translation& t,
                   std::vector<std::string> ref_tables,
                   std::vector<std::string> ref_names);

  /// Fingerprint tier. On kHit, `out` carries the instantiated result SQL,
  /// shape and key columns (setup_sql empty, timings zeroed).
  FpResult Lookup(uint64_t hash, const std::string& fp_text,
                  const std::vector<QValue>& params, const ShadowFn& shadowed,
                  Translation* out);
  void Insert(uint64_t hash, const std::string& fp_text,
              const std::vector<std::string>& rendered_params,
              const Insertable& entry);
  void MarkUncacheable(uint64_t hash, const std::string& fp_text,
                       std::string reason);

  /// Drops every entry referencing `table` (both tiers).
  void InvalidateTable(const std::string& table);
  /// Drops everything.
  void Clear();

  /// Renders each lifted literal as the SQL fragment the serializer would
  /// have emitted for it.
  static Result<std::vector<std::string>> RenderParams(
      const std::vector<QValue>& params);
  /// Splices rendered literals into a `$n`-parameterized template.
  static Result<std::string> Instantiate(
      const std::string& sql_template,
      const std::vector<std::string>& rendered_params);

  struct Sizes {
    size_t fingerprint = 0;  ///< fingerprint entries (incl. uncacheable)
    size_t exact = 0;        ///< exact-text entries
  };
  Sizes sizes() const;

 private:
  /// One cached translation: concrete (exact tier, pins empty) or
  /// parameterized (fingerprint tier).
  struct Cached {
    std::string sql;
    ResultShape shape = ResultShape::kTable;
    std::vector<std::string> key_columns;
    /// Exact-tier entries replay their shard and hybrid plans verbatim
    /// (the literals are identical by construction). Fingerprint-tier hits
    /// deliberately carry no plan — a templated partial/merge pair is not
    /// worth the correctness risk, and the fallback paths (single-backend
    /// scatter, merged-snapshot hybrid) stay byte-identical.
    ShardPlan shard;
    ShardPlan hybrid;
    /// (slot, rendered literal) pairs that must match the incoming params.
    std::vector<std::pair<int, std::string>> pins;
    std::vector<std::string> ref_tables;
    std::vector<std::string> ref_names;
    uint64_t version = 0;
  };

  struct FpEntry {
    bool uncacheable = false;
    std::string reason;
    std::vector<Cached> variants;
    std::list<std::string>::iterator lru_it;
  };

  struct ExactEntry {
    Cached value;
    std::list<std::string>::iterator lru_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, FpEntry> fp;
    std::list<std::string> fp_lru;  ///< front = most recent
    std::unordered_map<std::string, ExactEntry> exact;
    std::list<std::string> exact_lru;
  };

  Shard& ShardFor(uint64_t hash) {
    return *shards_[hash % shards_.size()];
  }
  uint64_t CurrentVersion() const {
    return version_provider_ ? version_provider_() : 0;
  }
  static bool AnyShadowed(const std::vector<std::string>& names,
                          const ShadowFn& shadowed);

  Options options_;
  std::atomic<bool> enabled_;
  std::function<uint64_t()> version_provider_;
  std::vector<std::unique_ptr<Shard>> shards_;

  Counter* hits_;
  Counter* hits_exact_;
  Counter* misses_;
  Counter* inserts_;
  Counter* evictions_;
  Counter* invalidations_;
  Counter* uncacheable_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_TRANSLATION_CACHE_H_
