#ifndef HYPERQ_CORE_METADATA_CACHE_H_
#define HYPERQ_CORE_METADATA_CACHE_H_

#include <chrono>
#include <functional>
#include <string>
#include <unordered_map>

#include "algebrizer/metadata.h"
#include "common/metrics.h"

namespace hyperq {

/// Caching decorator over an MDI. §6: "Hyper-Q provides a configurable
/// metadata caching mechanism with configurable invalidation policies and
/// cache expiration time. Our experiments are conducted with metadata
/// caching enabled." Entries expire after `ttl`; when a version provider is
/// configured, any backend catalog change invalidates the whole cache.
class MetadataCache : public MetadataInterface {
 public:
  struct Options {
    std::chrono::milliseconds ttl{60000};
    bool enabled = true;
  };

  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
  };

  MetadataCache(MetadataInterface* inner, Options options)
      : inner_(inner),
        options_(options),
        hits_metric_(
            MetricsRegistry::Global().GetCounter("mdi.cache_hits")),
        misses_metric_(
            MetricsRegistry::Global().GetCounter("mdi.cache_misses")),
        invalidations_metric_(MetricsRegistry::Global().GetCounter(
            "mdi.cache_invalidations")) {}

  /// Installs a catalog-version source; a version change flushes the cache.
  void SetVersionProvider(std::function<uint64_t()> provider) {
    version_provider_ = std::move(provider);
  }

  /// Observer poked by the explicit invalidation entry points: `table` is
  /// the invalidated table, or nullptr for a full flush. The translation
  /// cache subscribes so dropping metadata also drops the cached
  /// translations built from it.
  using InvalidationListener = std::function<void(const std::string* table)>;
  void SetInvalidationListener(InvalidationListener listener) {
    listener_ = std::move(listener);
  }

  Result<TableMetadata> LookupTable(const std::string& name) override;
  bool HasTable(const std::string& name) override;

  void Invalidate();
  void InvalidateTable(const std::string& name);
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    TableMetadata meta;
    std::chrono::steady_clock::time_point loaded_at;
  };

  void MaybeFlushOnVersionChange();
  bool Fresh(const Entry& e) const;

  MetadataInterface* inner_;
  Options options_;
  std::function<uint64_t()> version_provider_;
  InvalidationListener listener_;
  uint64_t last_version_ = 0;
  std::unordered_map<std::string, Entry> cache_;
  Stats stats_;
  // Process-wide counters mirroring stats_ (all sessions aggregated), for
  // `.hyperq.stats[]`.
  Counter* hits_metric_;
  Counter* misses_metric_;
  Counter* invalidations_metric_;
};

}  // namespace hyperq

#endif  // HYPERQ_CORE_METADATA_CACHE_H_
