#ifndef HYPERQ_TESTING_SHRINKER_H_
#define HYPERQ_TESTING_SHRINKER_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "testing/side_by_side.h"

namespace hyperq {
namespace testing {

/// Delta-debugging minimizer for failing queries (ddmin over lexical
/// tokens). When the side-by-side fuzzer finds a disagreement, the raw
/// query is usually long and mostly irrelevant; the shrinker repeatedly
/// removes token chunks and keeps any candidate for which the failure
/// predicate still holds, converging on a 1-minimal reproducer. Candidates
/// that stop being valid q are rejected by the predicate naturally (a
/// both-sides-parse-error is not the failure being chased), so no grammar
/// knowledge is needed here.
struct ShrinkOptions {
  /// Upper bound on predicate evaluations; the current best reproducer is
  /// returned when the budget runs out.
  int max_evaluations = 512;
};

struct ShrinkOutcome {
  /// The smallest failing query found (the input itself if nothing
  /// smaller still failed).
  std::string minimized;
  /// Predicate evaluations spent.
  int evaluations = 0;
  /// Token count before and after.
  int tokens_before = 0;
  int tokens_after = 0;
};

/// Minimizes `query` while `still_fails` holds. The predicate receives a
/// candidate query and returns true when the candidate reproduces the
/// original failure; it must be deterministic for the shrink to converge.
ShrinkOutcome ShrinkQuery(const std::string& query,
                          const std::function<bool(const std::string&)>&
                              still_fails,
                          const ShrinkOptions& options = ShrinkOptions{});

/// Splits a q expression into the shrinker's lexical tokens (identifiers,
/// numbers, strings, symbols, operators). Exposed for tests.
std::vector<std::string> TokenizeQuery(const std::string& query);

/// Writes a replayable failure artifact for a fuzzer mismatch: the seed,
/// the original and minimized queries, both sides' results/errors and the
/// generated SQL. The file lands under $HYPERQ_ARTIFACT_DIR when set, else
/// `dir_hint`, as `sbs_seed<seed>_<n>.txt`; returns the path written.
Result<std::string> WriteFailureArtifact(
    const std::string& dir_hint, uint64_t seed,
    const SideBySideHarness::Comparison& failure,
    const std::string& minimized);

}  // namespace testing
}  // namespace hyperq

#endif  // HYPERQ_TESTING_SHRINKER_H_
