#include "testing/side_by_side.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "core/loader.h"

namespace hyperq {
namespace testing {

namespace {

/// Widens narrow integral representations to long so that SQL round-trips
/// (which may widen types) still compare equal; recurses through compound
/// values.
QValue Canonicalize(const QValue& v) {
  if (v.IsTable()) {
    const QTable& t = v.Table();
    std::vector<QValue> cols;
    cols.reserve(t.columns.size());
    for (const auto& c : t.columns) cols.push_back(Canonicalize(c));
    return QValue::MakeTableUnchecked(t.names, std::move(cols));
  }
  if (v.IsDict()) {
    return QValue::MakeDictUnchecked(Canonicalize(*v.Dict().keys),
                                     Canonicalize(*v.Dict().values));
  }
  if (v.is_atom()) {
    if (v.type() == QType::kShort || v.type() == QType::kInt) {
      return QValue::Long(v.IsNullAtom() ? kNullLong : v.AsInt());
    }
    if (v.type() == QType::kReal) return QValue::Float(v.AsFloat());
    return v;
  }
  if (v.type() == QType::kShort || v.type() == QType::kInt) {
    return QValue::IntList(QType::kLong, v.Ints());
  }
  if (v.type() == QType::kReal) {
    return QValue::FloatList(QType::kFloat, v.Floats());
  }
  if (v.type() == QType::kMixed) {
    std::vector<QValue> items;
    items.reserve(v.Count());
    for (const auto& e : v.Items()) items.push_back(Canonicalize(e));
    return QValue::Mixed(std::move(items));
  }
  return v;
}

/// Floats compare with a relative tolerance: the two engines may sum in a
/// different order.
bool NearlyMatch(const QValue& a, const QValue& b) {
  if (a.is_atom() && b.is_atom() && IsFloatBacked(a.type()) &&
      IsFloatBacked(b.type())) {
    double x = a.AsFloat();
    double y = b.AsFloat();
    if (std::isnan(x) && std::isnan(y)) return true;
    double scale = std::max(std::fabs(x), std::fabs(y));
    return std::fabs(x - y) <= 1e-9 * std::max(1.0, scale);
  }
  if (a.is_atom() || b.is_atom()) return QValue::Match(a, b);
  // Empty lists agree regardless of element type: a zero-row result has no
  // evidence of its element type on either engine.
  if (!a.IsTable() && !b.IsTable() && !a.IsDict() && !b.IsDict() &&
      a.Count() == 0 && b.Count() == 0) {
    return true;
  }
  if (a.IsTable() && b.IsTable()) {
    const QTable& ta = a.Table();
    const QTable& tb = b.Table();
    if (ta.names != tb.names) return false;
    for (size_t i = 0; i < ta.columns.size(); ++i) {
      if (!NearlyMatch(ta.columns[i], tb.columns[i])) return false;
    }
    return true;
  }
  if (a.IsDict() && b.IsDict()) {
    return NearlyMatch(*a.Dict().keys, *b.Dict().keys) &&
           NearlyMatch(*a.Dict().values, *b.Dict().values);
  }
  if (a.type() != b.type() || a.Count() != b.Count()) {
    return QValue::Match(a, b);
  }
  if (IsFloatBacked(a.type())) {
    for (size_t i = 0; i < a.Count(); ++i) {
      if (!NearlyMatch(a.ElementAt(i), b.ElementAt(i))) return false;
    }
    return true;
  }
  if (a.type() == QType::kMixed) {
    for (size_t i = 0; i < a.Count(); ++i) {
      if (!NearlyMatch(a.Items()[i], b.Items()[i])) return false;
    }
    return true;
  }
  return QValue::Match(a, b);
}

}  // namespace

QValue CanonicalizeForComparison(const QValue& v) { return Canonicalize(v); }

SideBySideHarness::SideBySideHarness() {
  session_ = std::make_unique<HyperQSession>(&db_);
}

SideBySideHarness::SideBySideHarness(int num_shards) {
  sharded_ = std::make_unique<shard::ShardedBackend>(num_shards);
  session_ = std::make_unique<HyperQSession>(
      std::make_unique<shard::ShardedGateway>(sharded_.get()),
      HyperQSession::Options{});
}

Status SideBySideHarness::DefineTable(const std::string& name,
                                      const std::string& q_definition) {
  HQ_ASSIGN_OR_RETURN(QValue table, kdb_.EvalText(q_definition));
  return LoadTable(name, table);
}

Status SideBySideHarness::LoadTable(const std::string& name,
                                    const QValue& table) {
  kdb_.SetGlobal(name, table);
  if (sharded_ != nullptr) return sharded_->LoadQTable(name, table);
  return LoadQTable(&db_, name, table);
}

SideBySideHarness::Comparison SideBySideHarness::Run(
    const std::string& q_text) {
  Comparison out;
  out.query = q_text;

  Result<QValue> expected = kdb_.EvalText(q_text);
  Result<QValue> actual = session_->Query(q_text);
  out.sql = session_->last_sql();

  if (!expected.ok() && !actual.ok()) {
    out.both_failed = true;
    out.match = true;  // agreement on failure
    out.kdb_error = expected.status().ToString();
    out.hyperq_error = actual.status().ToString();
    return out;
  }
  if (!expected.ok() || !actual.ok()) {
    out.match = false;
    if (!expected.ok()) out.kdb_error = expected.status().ToString();
    if (!actual.ok()) out.hyperq_error = actual.status().ToString();
    if (expected.ok()) out.kdb_result = *expected;
    if (actual.ok()) out.hyperq_result = *actual;
    return out;
  }
  out.kdb_result = Canonicalize(*expected);
  out.hyperq_result = Canonicalize(*actual);
  out.match = NearlyMatch(out.kdb_result, out.hyperq_result);
  return out;
}

std::vector<SideBySideHarness::Comparison> SideBySideHarness::RunAll(
    const std::vector<std::string>& queries) {
  std::vector<Comparison> failures;
  for (const auto& q : queries) {
    Comparison c = Run(q);
    if (!c.match) failures.push_back(std::move(c));
  }
  return failures;
}

}  // namespace testing
}  // namespace hyperq
