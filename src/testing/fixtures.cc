#include "testing/fixtures.h"

#include <string>
#include <utility>
#include <vector>

#include "core/loader.h"
#include "sqldb/relation.h"

namespace hyperq {
namespace testing {

MarketData FixtureMarketData(uint64_t seed) {
  MarketDataOptions opts;
  opts.seed = seed;
  return GenerateMarketData(opts);
}

Result<BackendFixture> MakeBackend(const MarketData& data) {
  BackendFixture f;
  f.db = std::make_unique<sqldb::Database>();
  HQ_RETURN_IF_ERROR(LoadQTable(f.db.get(), "trades", data.trades));
  HQ_RETURN_IF_ERROR(LoadQTable(f.db.get(), "quotes", data.quotes));
  f.session = std::make_unique<HyperQSession>(f.db.get());
  return f;
}

Result<ShardedBackendFixture> MakeShardedBackend(int num_shards,
                                                 const MarketData& data) {
  ShardedBackendFixture f;
  f.backend = std::make_unique<shard::ShardedBackend>(num_shards);
  HQ_RETURN_IF_ERROR(f.backend->LoadQTable("trades", data.trades));
  HQ_RETURN_IF_ERROR(f.backend->LoadQTable("quotes", data.quotes));
  f.session = std::make_unique<HyperQSession>(
      std::make_unique<shard::ShardedGateway>(f.backend.get()),
      HyperQSession::Options{});
  return f;
}

Status LoadStressTables(sqldb::Database* db, size_t rows, size_t syms) {
  using sqldb::Column;
  using sqldb::SqlType;
  using sqldb::StoredTable;
  using sqldb::TableColumn;

  Rng rng(7);
  StoredTable t;
  t.name = "facts";
  t.columns = {TableColumn{"sym", SqlType::kVarchar},
               TableColumn{"px", SqlType::kDouble},
               TableColumn{"qty", SqlType::kBigInt}};
  std::vector<std::string> sym(rows);
  std::vector<double> px(rows);
  std::vector<int64_t> qty(rows);
  for (size_t r = 0; r < rows; ++r) {
    sym[r] = "S" + std::to_string(rng.Below(syms));
    px[r] = rng.NextDouble() * 100.0;
    qty[r] = static_cast<int64_t>(rng.Below(1000));
  }
  t.data = {Column::FromStrings(SqlType::kVarchar, std::move(sym)),
            Column::FromFloats(SqlType::kDouble, std::move(px)),
            Column::FromInts(SqlType::kBigInt, std::move(qty))};
  t.row_count = rows;
  HQ_RETURN_IF_ERROR(db->CreateAndLoad(std::move(t)));

  StoredTable d;
  d.name = "dims";
  d.columns = {TableColumn{"sym", SqlType::kVarchar},
               TableColumn{"w", SqlType::kDouble}};
  std::vector<std::string> dsym(syms);
  std::vector<double> w(syms);
  for (size_t s = 0; s < syms; ++s) {
    dsym[s] = "S" + std::to_string(s);
    w[s] = static_cast<double>(s);
  }
  d.data = {Column::FromStrings(SqlType::kVarchar, std::move(dsym)),
            Column::FromFloats(SqlType::kDouble, std::move(w))};
  d.row_count = syms;
  return db->CreateAndLoad(std::move(d));
}

}  // namespace testing
}  // namespace hyperq
