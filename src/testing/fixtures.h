#ifndef HYPERQ_TESTING_FIXTURES_H_
#define HYPERQ_TESTING_FIXTURES_H_

#include <memory>

#include "core/hyperq.h"
#include "shard/sharded_backend.h"
#include "sqldb/database.h"
#include "testing/market_data.h"

namespace hyperq {
namespace testing {

/// Canonical seeded market-data fixture for the distributed test battery:
/// single-backend and N-shard sessions must load byte-identical trades and
/// quotes, or byte-identity of their responses proves nothing.
MarketData FixtureMarketData(uint64_t seed = 42);

/// A single-backend Hyper-Q session over the fixture tables, loaded
/// through the ordcol loader — the reference side of every scatter-gather
/// comparison.
struct BackendFixture {
  std::unique_ptr<sqldb::Database> db;
  std::unique_ptr<HyperQSession> session;
};
Result<BackendFixture> MakeBackend(const MarketData& data);

/// An N-shard scatter-gather session over the identical fixture tables,
/// hash-partitioned by Symbol.
struct ShardedBackendFixture {
  std::unique_ptr<shard::ShardedBackend> backend;
  std::unique_ptr<HyperQSession> session;
};
Result<ShardedBackendFixture> MakeShardedBackend(int num_shards,
                                                 const MarketData& data);

/// The morsel-stress fixture shared by the executor stress test and the
/// shard scatter bench: "facts" (sym, px, qty; `rows` rows across `syms`
/// symbols, Rng(7)) and "dims" (sym, w; one row per symbol).
Status LoadStressTables(sqldb::Database* db, size_t rows = 100000,
                        size_t syms = 8);

}  // namespace testing
}  // namespace hyperq

#endif  // HYPERQ_TESTING_FIXTURES_H_
