#ifndef HYPERQ_TESTING_MARKET_DATA_H_
#define HYPERQ_TESTING_MARKET_DATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qval/qvalue.h"

namespace hyperq {
namespace testing {

/// Synthetic market-data generator standing in for the NYSE TAQ dataset
/// the paper references (§2.1); TAQ itself is licensed. Produces
/// trades/quotes tables with the TAQ shape — Date, Time, Symbol,
/// Price/Bid/Ask, Size — time-ordered per symbol with geometric-ish price
/// walks. Deterministic for a given seed.
struct MarketDataOptions {
  uint64_t seed = 42;
  int64_t date_qdays = 6021;  ///< 2016.06.26
  std::vector<std::string> symbols = {"AAPL", "GOOG", "IBM", "MSFT",
                                      "ORCL"};
  size_t trades_per_symbol = 100;
  size_t quotes_per_symbol = 400;
  int64_t open_millis = 9 * 3600000 + 30 * 60000;   ///< 09:30
  int64_t close_millis = 16 * 3600000;              ///< 16:00
  double base_price = 100.0;
  double volatility = 0.002;
};

struct MarketData {
  QValue trades;  ///< Date, Symbol, Time, Price, Size
  QValue quotes;  ///< Date, Symbol, Time, Bid, Ask
};

/// Generates trades and quotes sorted by time (the load order a feed
/// handler would produce).
MarketData GenerateMarketData(const MarketDataOptions& options);

/// Row slice [begin, end) of one Q column, preserving the payload type
/// (nulls are sentinel payloads, so slicing keeps them bit-exact). Used by
/// the ingest tests to cut a fixture table into upd batches.
QValue SliceColumn(const QValue& col, size_t begin, size_t end);

/// Row slice [begin, end) of a Q table (same names, sliced columns).
QValue SliceTable(const QValue& table, size_t begin, size_t end);

/// Deterministic xorshift generator used by all synthetic data (no
/// std::rand, reproducible across platforms).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  /// Uniform in [0, n).
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }
  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;
  }

 private:
  uint64_t state_;
};

}  // namespace testing
}  // namespace hyperq

#endif  // HYPERQ_TESTING_MARKET_DATA_H_
