#ifndef HYPERQ_TESTING_SIDE_BY_SIDE_H_
#define HYPERQ_TESTING_SIDE_BY_SIDE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/hyperq.h"
#include "kdb/engine.h"
#include "shard/sharded_backend.h"

namespace hyperq {
namespace testing {

/// The side-by-side testing framework of §5: "we built a side-by-side
/// testing framework, which can be used for internal testing of features,
/// and also used by the customers in their staging environments to ensure
/// correctness of operation." Every registered table is loaded both into
/// the mini-kdb+ reference engine and (through the ordcol loader) into the
/// PG backend; each query then runs on both sides and the results are
/// compared under Q's match semantics.
class SideBySideHarness {
 public:
  SideBySideHarness();

  /// Sharded variant: Hyper-Q runs over the scatter-gather coordinator
  /// with `num_shards` backends; tables land hash-partitioned by Symbol.
  /// The kdb+ reference side is unchanged, so the same comparisons verify
  /// the distributed merge path.
  explicit SideBySideHarness(int num_shards);

  /// Defines a table on both sides. `q_definition` is a q expression
  /// producing the table, e.g. "([] a: 1 2 3; b: `x`y`z)".
  Status DefineTable(const std::string& name,
                     const std::string& q_definition);

  /// Loads an already-built Q value on both sides.
  Status LoadTable(const std::string& name, const QValue& table);

  struct Comparison {
    std::string query;
    bool match = false;
    /// Both sides agreed the query fails (still a pass for coverage runs).
    bool both_failed = false;
    QValue kdb_result;
    QValue hyperq_result;
    std::string kdb_error;
    std::string hyperq_error;
    std::string sql;  ///< SQL Hyper-Q generated (empty on failure)
  };

  /// Runs one query on both engines and compares.
  Comparison Run(const std::string& q_text);

  /// Runs a batch; returns the failures only.
  std::vector<Comparison> RunAll(const std::vector<std::string>& queries);

  kdb::Interpreter& kdb() { return kdb_; }
  HyperQSession& hyperq() { return *session_; }
  sqldb::Database& backend() {
    return sharded_ ? *sharded_->fallback() : db_;
  }
  /// Non-null for the sharded variant.
  shard::ShardedBackend* sharded() { return sharded_.get(); }

 private:
  kdb::Interpreter kdb_;
  sqldb::Database db_;
  std::unique_ptr<shard::ShardedBackend> sharded_;
  std::unique_ptr<HyperQSession> session_;
};

/// Normalizes engine-specific representation differences that are not
/// semantic (e.g. int vs long widths after SQL round-trips) before match.
QValue CanonicalizeForComparison(const QValue& v);

}  // namespace testing
}  // namespace hyperq

#endif  // HYPERQ_TESTING_SIDE_BY_SIDE_H_
