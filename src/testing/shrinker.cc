#include "testing/shrinker.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/strings.h"
#include "qval/qvalue.h"

namespace hyperq {
namespace testing {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_';
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (const std::string& t : tokens) {
    if (!out.empty()) out.push_back(' ');
    out += t;
  }
  return out;
}

}  // namespace

std::vector<std::string> TokenizeQuery(const std::string& query) {
  std::vector<std::string> tokens;
  size_t i = 0, n = query.size();
  while (i < n) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (c == '"') {
      // q string literal, backslash escapes.
      ++i;
      while (i < n && query[i] != '"') {
        if (query[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n) ++i;  // closing quote
    } else if (c == '`') {
      // Symbol literal (possibly empty: a lone backtick).
      ++i;
      while (i < n && (IsIdentChar(query[i]) || query[i] == ':')) ++i;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      // Numeric literal, including temporal/typed forms (2020.01.01, 1.5f).
      while (i < n && (IsIdentChar(query[i]) || query[i] == ':')) ++i;
    } else if (IsIdentChar(c)) {
      while (i < n && IsIdentChar(query[i])) ++i;
    } else {
      ++i;  // single-character operator / punctuation
    }
    tokens.push_back(query.substr(start, i - start));
  }
  return tokens;
}

ShrinkOutcome ShrinkQuery(const std::string& query,
                          const std::function<bool(const std::string&)>&
                              still_fails,
                          const ShrinkOptions& options) {
  ShrinkOutcome out;
  std::vector<std::string> tokens = TokenizeQuery(query);
  out.tokens_before = static_cast<int>(tokens.size());
  out.minimized = query;
  out.tokens_after = out.tokens_before;

  auto budget_left = [&]() {
    return out.evaluations < options.max_evaluations;
  };
  auto check = [&](const std::string& candidate) {
    ++out.evaluations;
    return still_fails(candidate);
  };

  // The shrinker works on the space-joined token form; if re-joining alone
  // changes the outcome (whitespace-sensitive corner), keep the original.
  if (tokens.size() < 2 || !budget_left()) return out;
  {
    std::string joined = JoinTokens(tokens);
    if (!check(joined)) return out;
    out.minimized = joined;
  }

  // ddmin: partition into `granularity` chunks and try deleting each chunk
  // (test on the complement). On success restart coarse; otherwise refine.
  size_t granularity = 2;
  while (tokens.size() >= 2 && budget_left()) {
    size_t chunk = std::max<size_t>(1, tokens.size() / granularity);
    bool reduced = false;
    for (size_t lo = 0; lo < tokens.size() && budget_left(); lo += chunk) {
      size_t hi = std::min(tokens.size(), lo + chunk);
      std::vector<std::string> candidate;
      candidate.reserve(tokens.size() - (hi - lo));
      candidate.insert(candidate.end(), tokens.begin(), tokens.begin() + lo);
      candidate.insert(candidate.end(), tokens.begin() + hi, tokens.end());
      if (candidate.empty()) continue;
      std::string joined = JoinTokens(candidate);
      if (check(joined)) {
        tokens = std::move(candidate);
        out.minimized = std::move(joined);
        granularity = std::max<size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= tokens.size()) break;  // 1-minimal
      granularity = std::min(tokens.size(), granularity * 2);
    }
  }
  out.tokens_after = static_cast<int>(tokens.size());
  return out;
}

Result<std::string> WriteFailureArtifact(
    const std::string& dir_hint, uint64_t seed,
    const SideBySideHarness::Comparison& failure,
    const std::string& minimized) {
  namespace fs = std::filesystem;
  const char* env = std::getenv("HYPERQ_ARTIFACT_DIR");
  fs::path dir = (env != nullptr && env[0] != '\0') ? fs::path(env)
                                                    : fs::path(dir_hint);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return InternalError(StrCat("cannot create artifact dir ", dir.string(),
                                ": ", ec.message()));
  }
  fs::path path;
  for (int n = 0; n < 10000; ++n) {
    path = dir / StrCat("sbs_seed", seed, "_", n, ".txt");
    if (!fs::exists(path, ec)) break;
  }
  std::ofstream f(path);
  if (!f.is_open()) {
    return InternalError(StrCat("cannot open artifact file ",
                                path.string()));
  }
  f << "side-by-side fuzzer failure artifact\n"
    << "seed: " << seed << "\n"
    << "query: " << failure.query << "\n"
    << "minimized: " << minimized << "\n"
    << "sql: " << failure.sql << "\n"
    << "kdb_error: " << failure.kdb_error << "\n"
    << "hyperq_error: " << failure.hyperq_error << "\n"
    << "kdb_result: " << failure.kdb_result.ToString() << "\n"
    << "hyperq_result: " << failure.hyperq_result.ToString() << "\n"
    << "replay: rerun the fuzz test with this seed, or paste `minimized`\n"
    << "        into a SideBySideHarness::Run call.\n";
  f.close();
  return path.string();
}

}  // namespace testing
}  // namespace hyperq
