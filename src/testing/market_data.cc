#include "testing/market_data.h"

#include <algorithm>
#include <cmath>

namespace hyperq {
namespace testing {

MarketData GenerateMarketData(const MarketDataOptions& options) {
  Rng rng(options.seed);

  struct Tick {
    int64_t time_ms;
    size_t symbol;
    double price;
    int64_t size;
    bool is_trade;
    double bid;
    double ask;
  };
  std::vector<Tick> ticks;
  int64_t span = options.close_millis - options.open_millis;

  for (size_t s = 0; s < options.symbols.size(); ++s) {
    // Per-symbol random walk; base price varies by symbol.
    double px = options.base_price * (1.0 + 0.25 * static_cast<double>(s));
    size_t total = options.trades_per_symbol + options.quotes_per_symbol;
    std::vector<int64_t> times(total);
    for (auto& t : times) {
      t = options.open_millis + static_cast<int64_t>(rng.Below(span));
    }
    std::sort(times.begin(), times.end());
    for (size_t i = 0; i < total; ++i) {
      px *= 1.0 + options.volatility * (rng.NextDouble() - 0.5);
      Tick tick;
      tick.time_ms = times[i];
      tick.symbol = s;
      tick.price = px;
      // Interleave trades and quotes roughly per the requested ratio.
      tick.is_trade =
          rng.Below(total) < options.trades_per_symbol;
      tick.size = 100 * (1 + static_cast<int64_t>(rng.Below(50)));
      double spread = px * 0.0005 * (1 + rng.NextDouble());
      tick.bid = px - spread;
      tick.ask = px + spread;
      ticks.push_back(tick);
    }
  }
  std::stable_sort(ticks.begin(), ticks.end(),
                   [](const Tick& a, const Tick& b) {
                     return a.time_ms < b.time_ms;
                   });

  std::vector<int64_t> t_date, t_time, t_size;
  std::vector<std::string> t_sym;
  std::vector<double> t_px;
  std::vector<int64_t> q_date, q_time;
  std::vector<std::string> q_sym;
  std::vector<double> q_bid, q_ask;

  size_t trade_budget =
      options.trades_per_symbol * options.symbols.size();
  for (const Tick& tick : ticks) {
    if (tick.is_trade && t_px.size() < trade_budget) {
      t_date.push_back(options.date_qdays);
      t_sym.push_back(options.symbols[tick.symbol]);
      t_time.push_back(tick.time_ms);
      t_px.push_back(tick.price);
      t_size.push_back(tick.size);
    } else {
      q_date.push_back(options.date_qdays);
      q_sym.push_back(options.symbols[tick.symbol]);
      q_time.push_back(tick.time_ms);
      q_bid.push_back(tick.bid);
      q_ask.push_back(tick.ask);
    }
  }

  MarketData out;
  out.trades = QValue::MakeTableUnchecked(
      {"Date", "Symbol", "Time", "Price", "Size"},
      {QValue::IntList(QType::kDate, std::move(t_date)),
       QValue::Syms(std::move(t_sym)),
       QValue::IntList(QType::kTime, std::move(t_time)),
       QValue::FloatList(QType::kFloat, std::move(t_px)),
       QValue::IntList(QType::kLong, std::move(t_size))});
  out.quotes = QValue::MakeTableUnchecked(
      {"Date", "Symbol", "Time", "Bid", "Ask"},
      {QValue::IntList(QType::kDate, std::move(q_date)),
       QValue::Syms(std::move(q_sym)),
       QValue::IntList(QType::kTime, std::move(q_time)),
       QValue::FloatList(QType::kFloat, std::move(q_bid)),
       QValue::FloatList(QType::kFloat, std::move(q_ask))});
  return out;
}

QValue SliceColumn(const QValue& col, size_t begin, size_t end) {
  switch (col.type()) {
    case QType::kReal:
    case QType::kFloat: {
      const std::vector<double>& v = col.Floats();
      return QValue::FloatList(
          col.type(),
          std::vector<double>(v.begin() + begin, v.begin() + end));
    }
    case QType::kSymbol: {
      const std::vector<std::string>& v = col.SymsView();
      return QValue::Syms(
          std::vector<std::string>(v.begin() + begin, v.begin() + end));
    }
    case QType::kChar:
      return QValue::Chars(col.CharsView().substr(begin, end - begin));
    case QType::kMixed: {
      const std::vector<QValue>& v = col.Items();
      return QValue::Mixed(
          std::vector<QValue>(v.begin() + begin, v.begin() + end));
    }
    default: {
      const std::vector<int64_t>& v = col.Ints();
      return QValue::IntList(
          col.type(),
          std::vector<int64_t>(v.begin() + begin, v.begin() + end));
    }
  }
}

QValue SliceTable(const QValue& table, size_t begin, size_t end) {
  const QTable& tab = table.Table();
  std::vector<QValue> cols;
  cols.reserve(tab.columns.size());
  for (const QValue& c : tab.columns) {
    cols.push_back(SliceColumn(c, begin, end));
  }
  return QValue::MakeTableUnchecked(tab.names, std::move(cols));
}

}  // namespace testing
}  // namespace hyperq
