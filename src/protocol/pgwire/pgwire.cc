#include "protocol/pgwire/pgwire.h"

#include <sys/socket.h>

#include <charconv>
#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "common/fault.h"
#include "common/logging.h"
#include "sqldb/eval.h"
#include "common/strings.h"

namespace hyperq {
namespace pgwire {

int32_t OidFor(sqldb::SqlType type) {
  switch (type) {
    case sqldb::SqlType::kBoolean:
      return 16;
    case sqldb::SqlType::kSmallInt:
      return 21;
    case sqldb::SqlType::kInteger:
      return 23;
    case sqldb::SqlType::kBigInt:
      return 20;
    case sqldb::SqlType::kReal:
      return 700;
    case sqldb::SqlType::kDouble:
      return 701;
    case sqldb::SqlType::kVarchar:
      return 1043;
    case sqldb::SqlType::kText:
      return 25;
    case sqldb::SqlType::kDate:
      return 1082;
    case sqldb::SqlType::kTime:
      return 1083;
    case sqldb::SqlType::kTimestamp:
      return 1114;
    case sqldb::SqlType::kNull:
      return 25;
  }
  return 25;
}

sqldb::SqlType SqlTypeForOid(int32_t oid) {
  switch (oid) {
    case 16:
      return sqldb::SqlType::kBoolean;
    case 21:
      return sqldb::SqlType::kSmallInt;
    case 23:
      return sqldb::SqlType::kInteger;
    case 20:
      return sqldb::SqlType::kBigInt;
    case 700:
      return sqldb::SqlType::kReal;
    case 701:
      return sqldb::SqlType::kDouble;
    case 1043:
      return sqldb::SqlType::kVarchar;
    case 1082:
      return sqldb::SqlType::kDate;
    case 1083:
      return sqldb::SqlType::kTime;
    case 1114:
      return sqldb::SqlType::kTimestamp;
    default:
      return sqldb::SqlType::kText;
  }
}

void WriteMessage(ByteWriter* out, char type,
                  const std::vector<uint8_t>& body) {
  out->PutU8(static_cast<uint8_t>(type));
  out->PutU32BE(static_cast<uint32_t>(body.size() + 4));
  out->PutBytes(body.data(), body.size());
}

Result<WireMessage> ReadMessage(TcpConnection* conn) {
  if (FaultHit f = CheckFault("pgwire.read");
      f.kind == FaultHit::Kind::kError) {
    return f.error;
  }
  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> header, conn->ReadExact(5));
  WireMessage msg;
  msg.type = static_cast<char>(header[0]);
  ByteReader r(header.data() + 1, 4);
  HQ_ASSIGN_OR_RETURN(uint32_t len, r.GetU32BE());
  if (len < 4 || len > (64u << 20)) {
    return ProtocolError(StrCat("implausible PG message length ", len));
  }
  if (len > 4) {
    HQ_ASSIGN_OR_RETURN(msg.body, conn->ReadExact(len - 4));
  }
  return msg;
}

std::string ToyMd5(const std::string& input) {
  // FNV-1a based 128-bit-looking digest: reproduces the md5 *flow*, not
  // the algorithm (see header note).
  uint64_t h1 = 1469598103934665603ull;
  uint64_t h2 = 1099511628211ull * 31;
  for (unsigned char c : input) {
    h1 = (h1 ^ c) * 1099511628211ull;
    h2 = (h2 ^ (c + 17)) * 14695981039346656037ull;
  }
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(h1),
                static_cast<unsigned long long>(h2));
  return buf;
}

namespace {

std::vector<uint8_t> AuthBody(int32_t code) {
  ByteWriter w;
  w.PutI32BE(code);
  return w.Take();
}

std::vector<uint8_t> ErrorBody(const Status& status) {
  ByteWriter w;
  w.PutU8('S');
  w.PutCString("ERROR");
  w.PutU8('C');
  w.PutCString("XX000");
  w.PutU8('M');
  w.PutCString(status.ToString());
  w.PutU8(0);
  return w.Take();
}

std::vector<uint8_t> ReadyBody() {
  ByteWriter w;
  w.PutU8('I');
  return w.Take();
}

/// Minimum string-cell size worth its own iovec entry in the gather
/// write; smaller cells are cheaper to copy into the arena.
constexpr size_t kPgBorrowMinBytes = 256;

/// Gathers a PG v3 response as arena runs interleaved with borrowed
/// string-cell payloads. Framing (type bytes, lengths, counts) always
/// lives in the arena, so message lengths are patched in place with
/// PatchU32BE — no per-message body buffer and no body copy. Arena bytes
/// are recorded as offsets (the arena may reallocate) and resolved to
/// IoSlices at the end.
class ResponseSink {
 public:
  explicit ResponseSink(ByteWriter* arena) : arena_(arena) {
    arena_->Clear();
  }

  ByteWriter* arena() { return arena_; }

  /// Starts a message: type byte + length placeholder.
  void BeginMessage(char type) {
    arena_->PutU8(static_cast<uint8_t>(type));
    msg_len_off_ = arena_->size();
    arena_->PutU32BE(0);
    msg_borrowed_ = 0;
  }

  /// Patches the current message's length (everything after the type
  /// byte, borrowed payloads included).
  void EndMessage() {
    arena_->PatchU32BE(
        msg_len_off_,
        static_cast<uint32_t>(arena_->size() - msg_len_off_ +
                              msg_borrowed_));
  }

  /// Emits a slice referencing caller-owned bytes (a result string cell).
  void Borrow(const void* data, size_t len) {
    FlushArenaRun();
    parts_.push_back(Part{/*arena_offset=*/0, data, len});
    msg_borrowed_ += len;
  }

  void Finish(std::vector<IoSlice>* out) {
    FlushArenaRun();
    const uint8_t* base = arena_->data().data();
    out->clear();
    out->reserve(parts_.size());
    for (const Part& p : parts_) {
      out->push_back(IoSlice{
          p.external != nullptr ? p.external : base + p.arena_offset,
          p.len});
    }
  }

 private:
  struct Part {
    size_t arena_offset;
    const void* external;  // null = arena run
    size_t len;
  };

  void FlushArenaRun() {
    if (arena_->size() > run_start_) {
      parts_.push_back(
          Part{run_start_, nullptr, arena_->size() - run_start_});
    }
    run_start_ = arena_->size();
  }

  ByteWriter* arena_;
  size_t run_start_ = 0;
  size_t msg_len_off_ = 0;
  size_t msg_borrowed_ = 0;
  std::vector<Part> parts_;
};

/// Appends one DataRow cell (int32 BE length + text payload) straight
/// into the sink. Numeric cells render via std::to_chars / stack snprintf
/// with no std::string allocation; the text produced matches
/// Datum::ToText byte for byte. Large string cells are borrowed from the
/// result instead of copied.
void PutTextCell(ResponseSink* sink, const sqldb::Datum& d) {
  using sqldb::SqlType;
  ByteWriter* w = sink->arena();
  if (d.is_null()) {
    w->PutI32BE(-1);
    return;
  }
  switch (d.type()) {
    case SqlType::kBoolean:
      w->PutI32BE(1);
      w->PutU8(d.AsInt() ? 't' : 'f');
      return;
    case SqlType::kSmallInt:
    case SqlType::kInteger:
    case SqlType::kBigInt: {
      char buf[24];
      auto res = std::to_chars(buf, buf + sizeof(buf), d.AsInt());
      size_t len = static_cast<size_t>(res.ptr - buf);
      w->PutI32BE(static_cast<int32_t>(len));
      w->PutBytes(buf, len);
      return;
    }
    case SqlType::kReal:
    case SqlType::kDouble: {
      // %.17g matches Datum::ToText exactly (std::to_chars shortest
      // round-trip would change the wire text).
      char buf[32];
      int len = std::snprintf(buf, sizeof(buf), "%.17g", d.AsDouble());
      w->PutI32BE(len);
      w->PutBytes(buf, static_cast<size_t>(len));
      return;
    }
    case SqlType::kVarchar:
    case SqlType::kText: {
      const std::string& s = d.AsString();
      w->PutI32BE(static_cast<int32_t>(s.size()));
      if (s.size() >= kPgBorrowMinBytes) {
        sink->Borrow(s.data(), s.size());
      } else {
        w->PutString(s);
      }
      return;
    }
    default: {
      std::string text = d.ToText();  // temporal formatting
      w->PutI32BE(static_cast<int32_t>(text.size()));
      w->PutString(text);
      return;
    }
  }
}

Result<sqldb::Datum> DatumFromText(sqldb::SqlType type,
                                   const std::string& text) {
  using sqldb::Datum;
  using sqldb::SqlType;
  switch (type) {
    case SqlType::kBoolean:
      return Datum::Bool(text == "t" || text == "true" || text == "1");
    case SqlType::kSmallInt:
    case SqlType::kInteger:
    case SqlType::kBigInt:
      return Datum::Int(type, std::atoll(text.c_str()));
    case SqlType::kReal:
    case SqlType::kDouble:
      return Datum::Float(type, std::strtod(text.c_str(), nullptr));
    default: {
      Datum s = Datum::String(SqlType::kText, text);
      if (type == SqlType::kDate || type == SqlType::kTime ||
          type == SqlType::kTimestamp) {
        return sqldb::CastDatum(s, type);
      }
      return Datum::String(type, text);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Result<PgWireClient> PgWireClient::Connect(const std::string& host,
                                           uint16_t port,
                                           const std::string& user,
                                           const std::string& password,
                                           const std::string& database) {
  HQ_ASSIGN_OR_RETURN(TcpConnection conn, TcpConnection::Connect(host, port));

  // Startup message: length + protocol + parameters (no type byte).
  ByteWriter body;
  body.PutI32BE(kProtocolVersion3);
  body.PutCString("user");
  body.PutCString(user);
  body.PutCString("database");
  body.PutCString(database);
  body.PutU8(0);
  ByteWriter startup;
  startup.PutU32BE(static_cast<uint32_t>(body.size() + 4));
  startup.PutBytes(body.data().data(), body.size());
  HQ_RETURN_IF_ERROR(conn.WriteAll(startup.data()));

  PgWireClient client(std::move(conn));

  // Authentication loop.
  while (true) {
    HQ_ASSIGN_OR_RETURN(WireMessage msg, ReadMessage(&client.conn_));
    if (msg.type == kMsgErrorResponse) {
      return AuthError("backend rejected startup");
    }
    if (msg.type != kMsgAuthentication) {
      return ProtocolError(StrCat("expected authentication message, got '",
                                  std::string(1, msg.type), "'"));
    }
    ByteReader r(msg.body);
    HQ_ASSIGN_OR_RETURN(int32_t code, r.GetI32BE());
    if (code == 0) break;  // AuthenticationOk
    if (code == 3) {
      ByteWriter pw;
      pw.PutCString(password);
      ByteWriter out;
      WriteMessage(&out, kMsgPassword, pw.Take());
      HQ_RETURN_IF_ERROR(client.conn_.WriteAll(out.data()));
      continue;
    }
    if (code == 5) {
      HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> salt, r.GetBytes(4));
      std::string salt_str(salt.begin(), salt.end());
      std::string digest =
          "md5" + ToyMd5(ToyMd5(password + user) + salt_str);
      ByteWriter pw;
      pw.PutCString(digest);
      ByteWriter out;
      WriteMessage(&out, kMsgPassword, pw.Take());
      HQ_RETURN_IF_ERROR(client.conn_.WriteAll(out.data()));
      continue;
    }
    return ProtocolError(StrCat("unsupported authentication code ", code));
  }

  // Drain ParameterStatus messages until ReadyForQuery.
  while (true) {
    HQ_ASSIGN_OR_RETURN(WireMessage msg, ReadMessage(&client.conn_));
    if (msg.type == kMsgReadyForQuery) break;
    if (msg.type == kMsgErrorResponse) {
      return AuthError("backend error during startup");
    }
  }
  return client;
}

Result<sqldb::QueryResult> PgWireClient::Query(const std::string& sql) {
  ByteWriter q;
  q.PutCString(sql);
  ByteWriter out;
  WriteMessage(&out, kMsgQuery, q.Take());
  HQ_RETURN_IF_ERROR(conn_.WriteAll(out.data()));

  sqldb::QueryResult result;
  Status error = Status::OK();
  // Buffer the row-oriented stream until ReadyForQuery (§4.2: Hyper-Q
  // buffers the entire result set before pivoting to QIPC).
  while (true) {
    HQ_ASSIGN_OR_RETURN(WireMessage msg, ReadMessage(&conn_));
    switch (msg.type) {
      case kMsgRowDescription: {
        ByteReader r(msg.body);
        HQ_ASSIGN_OR_RETURN(int16_t nfields, r.GetI16BE());
        result.columns.clear();
        result.has_rows = true;
        for (int i = 0; i < nfields; ++i) {
          sqldb::TableColumn col;
          HQ_ASSIGN_OR_RETURN(col.name, r.GetCString());
          HQ_RETURN_IF_ERROR(r.GetI32BE().status());  // table oid
          HQ_RETURN_IF_ERROR(r.GetI16BE().status());  // attnum
          HQ_ASSIGN_OR_RETURN(int32_t oid, r.GetI32BE());
          HQ_RETURN_IF_ERROR(r.GetI16BE().status());  // typlen
          HQ_RETURN_IF_ERROR(r.GetI32BE().status());  // typmod
          HQ_RETURN_IF_ERROR(r.GetI16BE().status());  // format
          col.type = SqlTypeForOid(oid);
          result.columns.push_back(std::move(col));
        }
        break;
      }
      case kMsgDataRow: {
        ByteReader r(msg.body);
        HQ_ASSIGN_OR_RETURN(int16_t nfields, r.GetI16BE());
        std::vector<sqldb::Datum> row;
        row.reserve(nfields);
        for (int i = 0; i < nfields; ++i) {
          HQ_ASSIGN_OR_RETURN(int32_t len, r.GetI32BE());
          if (len < 0) {
            row.push_back(sqldb::Datum::Null());
            continue;
          }
          HQ_ASSIGN_OR_RETURN(std::string text, r.GetString(len));
          HQ_ASSIGN_OR_RETURN(
              sqldb::Datum d,
              DatumFromText(result.columns[i].type, text));
          row.push_back(std::move(d));
        }
        result.rows.push_back(std::move(row));
        break;
      }
      case kMsgCommandComplete: {
        ByteReader r(msg.body);
        HQ_ASSIGN_OR_RETURN(result.command_tag, r.GetCString());
        break;
      }
      case kMsgErrorResponse: {
        // Extract the 'M' field.
        ByteReader r(msg.body);
        std::string message = "backend error";
        while (true) {
          Result<uint8_t> key = r.GetU8();
          if (!key.ok() || *key == 0) break;
          Result<std::string> value = r.GetCString();
          if (!value.ok()) break;
          if (*key == 'M') message = *value;
        }
        error = ExecutionError(message);
        break;
      }
      case kMsgReadyForQuery:
        if (!error.ok()) return error;
        return result;
      default:
        break;  // ignore ParameterStatus / notices
    }
  }
}

void PgWireClient::Close() {
  ByteWriter out;
  WriteMessage(&out, kMsgTerminate, {});
  (void)conn_.WriteAll(out.data());
  conn_.Close();
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Status PgWireServer::Start(uint16_t port) {
  HQ_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Listen(port));
  port_ = listener.port();
  listener_ = std::make_unique<TcpListener>(std::move(listener));
  running_ = true;
  accept_thread_ = std::make_unique<std::thread>([this]() { AcceptLoop(); });
  return Status::OK();
}

void PgWireServer::Stop() {
  if (!running_.exchange(false)) return;
  if (listener_) listener_->Close();
  if (accept_thread_ && accept_thread_->joinable()) accept_thread_->join();
  {
    // Wake workers blocked in recv on still-open client connections.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void PgWireServer::AcceptLoop() {
  while (running_) {
    Result<TcpConnection> conn = listener_->Accept();
    if (!conn.ok()) {
      if (running_) {
        HQ_LOG(Warning) << "pg accept failed: " << conn.status().ToString();
      }
      return;
    }
    workers_.emplace_back(
        [this, c = std::move(*conn)]() mutable {
          HandleConnection(std::move(c));
        });
  }
}

Status PgWireServer::Handshake(TcpConnection* conn) {
  // Startup packet: length + protocol + params.
  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> lenb, conn->ReadExact(4));
  ByteReader lr(lenb);
  HQ_ASSIGN_OR_RETURN(uint32_t len, lr.GetU32BE());
  if (len < 8 || len > (1u << 20)) {
    return ProtocolError("implausible startup packet length");
  }
  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> body, conn->ReadExact(len - 4));
  ByteReader r(body);
  HQ_ASSIGN_OR_RETURN(int32_t protocol, r.GetI32BE());
  if (protocol != kProtocolVersion3) {
    return ProtocolError(StrCat("unsupported protocol version ", protocol));
  }
  std::string user;
  while (!r.AtEnd()) {
    Result<std::string> key = r.GetCString();
    if (!key.ok() || key->empty()) break;
    HQ_ASSIGN_OR_RETURN(std::string value, r.GetCString());
    if (*key == "user") user = value;
  }

  auto send = [&](char type, const std::vector<uint8_t>& payload) {
    ByteWriter out;
    WriteMessage(&out, type, payload);
    return conn->WriteAll(out.data());
  };

  std::string salt = "hqs!";
  if (options_.auth == AuthMode::kCleartext) {
    HQ_RETURN_IF_ERROR(send(kMsgAuthentication, AuthBody(3)));
  } else if (options_.auth == AuthMode::kMd5) {
    ByteWriter b;
    b.PutI32BE(5);
    b.PutString(salt);
    HQ_RETURN_IF_ERROR(send(kMsgAuthentication, b.Take()));
  }
  if (options_.auth != AuthMode::kTrust) {
    HQ_ASSIGN_OR_RETURN(WireMessage pw, ReadMessage(conn));
    if (pw.type != kMsgPassword) {
      return AuthError("expected password message");
    }
    ByteReader pr(pw.body);
    HQ_ASSIGN_OR_RETURN(std::string given, pr.GetCString());
    bool ok;
    if (options_.auth == AuthMode::kCleartext) {
      ok = given == options_.password && user == options_.user;
    } else {
      std::string expect =
          "md5" + ToyMd5(ToyMd5(options_.password + options_.user) + salt);
      ok = given == expect;
    }
    if (!ok) {
      ByteWriter out;
      WriteMessage(&out, kMsgErrorResponse,
                   ErrorBody(AuthError("password authentication failed")));
      (void)conn->WriteAll(out.data());
      return AuthError("password authentication failed");
    }
  }
  HQ_RETURN_IF_ERROR(send(kMsgAuthentication, AuthBody(0)));

  ByteWriter ps;
  ps.PutCString("server_version");
  ps.PutCString("9.2-hyperq-mini");
  HQ_RETURN_IF_ERROR(send(kMsgParameterStatus, ps.Take()));
  return send(kMsgReadyForQuery, ReadyBody());
}

void PgWireServer::RegisterFd(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.push_back(fd);
}

void PgWireServer::UnregisterFd(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.erase(std::remove(active_fds_.begin(), active_fds_.end(), fd),
                    active_fds_.end());
}

void PgWireServer::HandleConnection(TcpConnection conn) {
  RegisterFd(conn.fd());
  struct Guard {
    PgWireServer* s;
    int fd;
    ~Guard() { s->UnregisterFd(fd); }
  } guard{this, conn.fd()};
  Status hs = Handshake(&conn);
  if (!hs.ok()) {
    HQ_LOG(Info) << "pg handshake failed: " << hs.ToString();
    return;
  }
  auto session = db_->CreateSession();
  // Per-connection arena and slice list, reused across queries; bounded
  // so one oversized result set does not pin its peak footprint.
  constexpr size_t kArenaKeepBytes = 1u << 20;
  ByteWriter out;
  std::vector<IoSlice> slices;
  while (running_) {
    Result<WireMessage> msg = ReadMessage(&conn);
    if (!msg.ok()) return;  // disconnect
    if (msg->type == kMsgTerminate) return;
    if (msg->type != kMsgQuery) continue;
    if (out.data().capacity() > kArenaKeepBytes) out = ByteWriter();

    ByteReader r(msg->body);
    Result<std::string> sql = r.GetCString();
    out.Clear();
    if (!sql.ok()) {
      WriteMessage(&out, kMsgErrorResponse, ErrorBody(sql.status()));
      WriteMessage(&out, kMsgReadyForQuery, ReadyBody());
      if (!conn.WriteAll(out.data()).ok()) return;
      continue;
    }
    Result<sqldb::QueryResult> result = db_->Execute(session.get(), *sql);
    if (!result.ok()) {
      WriteMessage(&out, kMsgErrorResponse, ErrorBody(result.status()));
      WriteMessage(&out, kMsgReadyForQuery, ReadyBody());
      if (!conn.WriteAll(out.data()).ok()) return;
      continue;
    }
    // The whole response — RowDescription, every DataRow, CommandComplete,
    // ReadyForQuery — is framed in the arena with lengths patched in
    // place, large string cells borrowed from `result`, and reaches the
    // socket in one gather write.
    ResponseSink sink(&out);
    if (result->has_rows) {
      sink.BeginMessage(kMsgRowDescription);
      out.PutI16BE(static_cast<int16_t>(result->columns.size()));
      for (const auto& c : result->columns) {
        out.PutCString(c.name);
        out.PutI32BE(0);
        out.PutI16BE(0);
        out.PutI32BE(OidFor(c.type));
        out.PutI16BE(-1);
        out.PutI32BE(-1);
        out.PutI16BE(0);  // text format
      }
      sink.EndMessage();
      for (const auto& row : result->rows) {
        sink.BeginMessage(kMsgDataRow);
        out.PutI16BE(static_cast<int16_t>(row.size()));
        for (const auto& d : row) PutTextCell(&sink, d);
        sink.EndMessage();
      }
    }
    sink.BeginMessage(kMsgCommandComplete);
    out.PutCString(result->command_tag);
    sink.EndMessage();
    sink.BeginMessage(kMsgReadyForQuery);
    out.PutU8('I');
    sink.EndMessage();
    sink.Finish(&slices);
    // An egress fault behaves as the transport dying mid-response: the
    // connection is dropped, never patched over with a second frame on a
    // stream whose position is unknown.
    if (FaultHit f = CheckFault("pgwire.write");
        f.kind != FaultHit::Kind::kNone) {
      if (f.kind == FaultHit::Kind::kShortWrite && !slices.empty()) {
        (void)conn.WriteAll(slices[0].data,
                            std::min(f.short_len, slices[0].len));
      }
      return;
    }
    if (!conn.WriteAllV(slices).ok()) return;
  }
}

}  // namespace pgwire
}  // namespace hyperq
