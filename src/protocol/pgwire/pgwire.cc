#include "protocol/pgwire/pgwire.h"

#include <sys/epoll.h>
#include <sys/socket.h>

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <optional>

#include <algorithm>

#include "common/fault.h"
#include "common/logging.h"
#include "core/fsm.h"
#include "sqldb/eval.h"
#include "common/strings.h"

namespace hyperq {
namespace pgwire {

int32_t OidFor(sqldb::SqlType type) {
  switch (type) {
    case sqldb::SqlType::kBoolean:
      return 16;
    case sqldb::SqlType::kSmallInt:
      return 21;
    case sqldb::SqlType::kInteger:
      return 23;
    case sqldb::SqlType::kBigInt:
      return 20;
    case sqldb::SqlType::kReal:
      return 700;
    case sqldb::SqlType::kDouble:
      return 701;
    case sqldb::SqlType::kVarchar:
      return 1043;
    case sqldb::SqlType::kText:
      return 25;
    case sqldb::SqlType::kDate:
      return 1082;
    case sqldb::SqlType::kTime:
      return 1083;
    case sqldb::SqlType::kTimestamp:
      return 1114;
    case sqldb::SqlType::kNull:
      return 25;
  }
  return 25;
}

sqldb::SqlType SqlTypeForOid(int32_t oid) {
  switch (oid) {
    case 16:
      return sqldb::SqlType::kBoolean;
    case 21:
      return sqldb::SqlType::kSmallInt;
    case 23:
      return sqldb::SqlType::kInteger;
    case 20:
      return sqldb::SqlType::kBigInt;
    case 700:
      return sqldb::SqlType::kReal;
    case 701:
      return sqldb::SqlType::kDouble;
    case 1043:
      return sqldb::SqlType::kVarchar;
    case 1082:
      return sqldb::SqlType::kDate;
    case 1083:
      return sqldb::SqlType::kTime;
    case 1114:
      return sqldb::SqlType::kTimestamp;
    default:
      return sqldb::SqlType::kText;
  }
}

void WriteMessage(ByteWriter* out, char type,
                  const std::vector<uint8_t>& body) {
  out->PutU8(static_cast<uint8_t>(type));
  out->PutU32BE(static_cast<uint32_t>(body.size() + 4));
  out->PutBytes(body.data(), body.size());
}

Result<WireMessage> ReadMessage(TcpConnection* conn) {
  if (FaultHit f = CheckFault("pgwire.read");
      f.kind == FaultHit::Kind::kError) {
    return f.error;
  }
  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> header, conn->ReadExact(5));
  WireMessage msg;
  msg.type = static_cast<char>(header[0]);
  ByteReader r(header.data() + 1, 4);
  HQ_ASSIGN_OR_RETURN(uint32_t len, r.GetU32BE());
  if (len < 4 || len > (64u << 20)) {
    return ProtocolError(StrCat("implausible PG message length ", len));
  }
  if (len > 4) {
    HQ_ASSIGN_OR_RETURN(msg.body, conn->ReadExact(len - 4));
  }
  return msg;
}

std::string ToyMd5(const std::string& input) {
  // FNV-1a based 128-bit-looking digest: reproduces the md5 *flow*, not
  // the algorithm (see header note).
  uint64_t h1 = 1469598103934665603ull;
  uint64_t h2 = 1099511628211ull * 31;
  for (unsigned char c : input) {
    h1 = (h1 ^ c) * 1099511628211ull;
    h2 = (h2 ^ (c + 17)) * 14695981039346656037ull;
  }
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(h1),
                static_cast<unsigned long long>(h2));
  return buf;
}

namespace {

std::vector<uint8_t> AuthBody(int32_t code) {
  ByteWriter w;
  w.PutI32BE(code);
  return w.Take();
}

std::vector<uint8_t> ErrorBody(const Status& status) {
  ByteWriter w;
  w.PutU8('S');
  w.PutCString("ERROR");
  w.PutU8('C');
  w.PutCString("XX000");
  w.PutU8('M');
  w.PutCString(status.ToString());
  w.PutU8(0);
  return w.Take();
}

std::vector<uint8_t> ReadyBody() {
  ByteWriter w;
  w.PutU8('I');
  return w.Take();
}

/// Fixed md5 salt (toy auth flow; see ToyMd5). One constant so the
/// blocking and event-driven handshakes challenge identically.
constexpr char kPgAuthSalt[] = "hqs!";

/// Minimum string-cell size worth its own iovec entry in the gather
/// write; smaller cells are cheaper to copy into the arena.
constexpr size_t kPgBorrowMinBytes = 256;

/// Gathers a PG v3 response as arena runs interleaved with borrowed
/// string-cell payloads. Framing (type bytes, lengths, counts) always
/// lives in the arena, so message lengths are patched in place with
/// PatchU32BE — no per-message body buffer and no body copy. Arena bytes
/// are recorded as offsets (the arena may reallocate) and resolved to
/// IoSlices at the end.
class ResponseSink {
 public:
  explicit ResponseSink(ByteWriter* arena) : arena_(arena) {
    arena_->Clear();
  }

  ByteWriter* arena() { return arena_; }

  /// Starts a message: type byte + length placeholder.
  void BeginMessage(char type) {
    arena_->PutU8(static_cast<uint8_t>(type));
    msg_len_off_ = arena_->size();
    arena_->PutU32BE(0);
    msg_borrowed_ = 0;
  }

  /// Patches the current message's length (everything after the type
  /// byte, borrowed payloads included).
  void EndMessage() {
    arena_->PatchU32BE(
        msg_len_off_,
        static_cast<uint32_t>(arena_->size() - msg_len_off_ +
                              msg_borrowed_));
  }

  /// Emits a slice referencing caller-owned bytes (a result string cell).
  void Borrow(const void* data, size_t len) {
    FlushArenaRun();
    parts_.push_back(Part{/*arena_offset=*/0, data, len});
    msg_borrowed_ += len;
  }

  void Finish(std::vector<IoSlice>* out) {
    FlushArenaRun();
    const uint8_t* base = arena_->data().data();
    out->clear();
    out->reserve(parts_.size());
    for (const Part& p : parts_) {
      out->push_back(IoSlice{
          p.external != nullptr ? p.external : base + p.arena_offset,
          p.len});
    }
  }

 private:
  struct Part {
    size_t arena_offset;
    const void* external;  // null = arena run
    size_t len;
  };

  void FlushArenaRun() {
    if (arena_->size() > run_start_) {
      parts_.push_back(
          Part{run_start_, nullptr, arena_->size() - run_start_});
    }
    run_start_ = arena_->size();
  }

  ByteWriter* arena_;
  size_t run_start_ = 0;
  size_t msg_len_off_ = 0;
  size_t msg_borrowed_ = 0;
  std::vector<Part> parts_;
};

/// Appends one DataRow cell (int32 BE length + text payload) straight
/// into the sink. Numeric cells render via std::to_chars / stack snprintf
/// with no std::string allocation; the text produced matches
/// Datum::ToText byte for byte. Large string cells are borrowed from the
/// result instead of copied.
void PutTextCell(ResponseSink* sink, const sqldb::Datum& d) {
  using sqldb::SqlType;
  ByteWriter* w = sink->arena();
  if (d.is_null()) {
    w->PutI32BE(-1);
    return;
  }
  switch (d.type()) {
    case SqlType::kBoolean:
      w->PutI32BE(1);
      w->PutU8(d.AsInt() ? 't' : 'f');
      return;
    case SqlType::kSmallInt:
    case SqlType::kInteger:
    case SqlType::kBigInt: {
      char buf[24];
      auto res = std::to_chars(buf, buf + sizeof(buf), d.AsInt());
      size_t len = static_cast<size_t>(res.ptr - buf);
      w->PutI32BE(static_cast<int32_t>(len));
      w->PutBytes(buf, len);
      return;
    }
    case SqlType::kReal:
    case SqlType::kDouble: {
      // %.17g matches Datum::ToText exactly (std::to_chars shortest
      // round-trip would change the wire text).
      char buf[32];
      int len = std::snprintf(buf, sizeof(buf), "%.17g", d.AsDouble());
      w->PutI32BE(len);
      w->PutBytes(buf, static_cast<size_t>(len));
      return;
    }
    case SqlType::kVarchar:
    case SqlType::kText: {
      const std::string& s = d.AsString();
      w->PutI32BE(static_cast<int32_t>(s.size()));
      if (s.size() >= kPgBorrowMinBytes) {
        sink->Borrow(s.data(), s.size());
      } else {
        w->PutString(s);
      }
      return;
    }
    default: {
      std::string text = d.ToText();  // temporal formatting
      w->PutI32BE(static_cast<int32_t>(text.size()));
      w->PutString(text);
      return;
    }
  }
}

Result<sqldb::Datum> DatumFromText(sqldb::SqlType type,
                                   const std::string& text) {
  using sqldb::Datum;
  using sqldb::SqlType;
  switch (type) {
    case SqlType::kBoolean:
      return Datum::Bool(text == "t" || text == "true" || text == "1");
    case SqlType::kSmallInt:
    case SqlType::kInteger:
    case SqlType::kBigInt:
      return Datum::Int(type, std::atoll(text.c_str()));
    case SqlType::kReal:
    case SqlType::kDouble:
      return Datum::Float(type, std::strtod(text.c_str(), nullptr));
    default: {
      Datum s = Datum::String(SqlType::kText, text);
      if (type == SqlType::kDate || type == SqlType::kTime ||
          type == SqlType::kTimestamp) {
        return sqldb::CastDatum(s, type);
      }
      return Datum::String(type, text);
    }
  }
}

/// Builds the complete reply to one simple-query message body —
/// RowDescription/DataRows/CommandComplete on success, ErrorResponse on
/// failure, always followed by ReadyForQuery — into `out`. Framing lives
/// in out->arena with lengths patched in place; large string cells are
/// borrowed from the result, which out->keepalive pins until the bytes
/// are on the wire. Both io models call this, which is what keeps their
/// wire traffic byte-identical by construction.
void BuildQueryReply(sqldb::Database* db, sqldb::Session* session,
                     const std::vector<uint8_t>& body, Outgoing* out) {
  out->owned.clear();
  out->keepalive.reset();
  out->slices.clear();
  out->idx = 0;
  out->off = 0;

  ByteReader reader(body);
  Result<std::string> sql = reader.GetCString();
  Status error = Status::OK();
  std::shared_ptr<sqldb::QueryResult> result;
  if (!sql.ok()) {
    error = sql.status();
  } else {
    Result<sqldb::QueryResult> res = db->Execute(session, *sql);
    if (!res.ok()) {
      error = res.status();
    } else {
      result = std::make_shared<sqldb::QueryResult>(std::move(*res));
    }
  }

  ByteWriter& arena = out->arena;
  if (!error.ok()) {
    arena.Clear();
    WriteMessage(&arena, kMsgErrorResponse, ErrorBody(error));
    WriteMessage(&arena, kMsgReadyForQuery, ReadyBody());
    out->slices.push_back(IoSlice{arena.data().data(), arena.size()});
    return;
  }

  // The whole response is framed in the arena with lengths patched in
  // place, large string cells borrowed from `result`, and reaches the
  // socket in one gather write.
  ResponseSink sink(&arena);
  if (result->has_rows) {
    sink.BeginMessage(kMsgRowDescription);
    arena.PutI16BE(static_cast<int16_t>(result->columns.size()));
    for (const auto& c : result->columns) {
      arena.PutCString(c.name);
      arena.PutI32BE(0);
      arena.PutI16BE(0);
      arena.PutI32BE(OidFor(c.type));
      arena.PutI16BE(-1);
      arena.PutI32BE(-1);
      arena.PutI16BE(0);  // text format
    }
    sink.EndMessage();
    for (const auto& row : result->rows) {
      sink.BeginMessage(kMsgDataRow);
      arena.PutI16BE(static_cast<int16_t>(row.size()));
      for (const auto& d : row) PutTextCell(&sink, d);
      sink.EndMessage();
    }
  }
  sink.BeginMessage(kMsgCommandComplete);
  arena.PutCString(result->command_tag);
  sink.EndMessage();
  sink.BeginMessage(kMsgReadyForQuery);
  arena.PutU8('I');
  sink.EndMessage();
  sink.Finish(&out->slices);
  out->keepalive = std::move(result);  // pins the borrowed string cells
}

}  // namespace

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Result<PgWireClient> PgWireClient::Connect(const std::string& host,
                                           uint16_t port,
                                           const std::string& user,
                                           const std::string& password,
                                           const std::string& database) {
  HQ_ASSIGN_OR_RETURN(TcpConnection conn, TcpConnection::Connect(host, port));

  // Startup message: length + protocol + parameters (no type byte).
  ByteWriter body;
  body.PutI32BE(kProtocolVersion3);
  body.PutCString("user");
  body.PutCString(user);
  body.PutCString("database");
  body.PutCString(database);
  body.PutU8(0);
  ByteWriter startup;
  startup.PutU32BE(static_cast<uint32_t>(body.size() + 4));
  startup.PutBytes(body.data().data(), body.size());
  HQ_RETURN_IF_ERROR(conn.WriteAll(startup.data()));

  PgWireClient client(std::move(conn));

  // Authentication loop.
  while (true) {
    HQ_ASSIGN_OR_RETURN(WireMessage msg, ReadMessage(&client.conn_));
    if (msg.type == kMsgErrorResponse) {
      return AuthError("backend rejected startup");
    }
    if (msg.type != kMsgAuthentication) {
      return ProtocolError(StrCat("expected authentication message, got '",
                                  std::string(1, msg.type), "'"));
    }
    ByteReader r(msg.body);
    HQ_ASSIGN_OR_RETURN(int32_t code, r.GetI32BE());
    if (code == 0) break;  // AuthenticationOk
    if (code == 3) {
      ByteWriter pw;
      pw.PutCString(password);
      ByteWriter out;
      WriteMessage(&out, kMsgPassword, pw.Take());
      HQ_RETURN_IF_ERROR(client.conn_.WriteAll(out.data()));
      continue;
    }
    if (code == 5) {
      HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> salt, r.GetBytes(4));
      std::string salt_str(salt.begin(), salt.end());
      std::string digest =
          "md5" + ToyMd5(ToyMd5(password + user) + salt_str);
      ByteWriter pw;
      pw.PutCString(digest);
      ByteWriter out;
      WriteMessage(&out, kMsgPassword, pw.Take());
      HQ_RETURN_IF_ERROR(client.conn_.WriteAll(out.data()));
      continue;
    }
    return ProtocolError(StrCat("unsupported authentication code ", code));
  }

  // Drain ParameterStatus messages until ReadyForQuery.
  while (true) {
    HQ_ASSIGN_OR_RETURN(WireMessage msg, ReadMessage(&client.conn_));
    if (msg.type == kMsgReadyForQuery) break;
    if (msg.type == kMsgErrorResponse) {
      return AuthError("backend error during startup");
    }
  }
  return client;
}

Result<sqldb::QueryResult> PgWireClient::Query(const std::string& sql) {
  ByteWriter q;
  q.PutCString(sql);
  ByteWriter out;
  WriteMessage(&out, kMsgQuery, q.Take());
  HQ_RETURN_IF_ERROR(conn_.WriteAll(out.data()));

  sqldb::QueryResult result;
  Status error = Status::OK();
  // Buffer the row-oriented stream until ReadyForQuery (§4.2: Hyper-Q
  // buffers the entire result set before pivoting to QIPC).
  while (true) {
    HQ_ASSIGN_OR_RETURN(WireMessage msg, ReadMessage(&conn_));
    switch (msg.type) {
      case kMsgRowDescription: {
        ByteReader r(msg.body);
        HQ_ASSIGN_OR_RETURN(int16_t nfields, r.GetI16BE());
        result.columns.clear();
        result.has_rows = true;
        for (int i = 0; i < nfields; ++i) {
          sqldb::TableColumn col;
          HQ_ASSIGN_OR_RETURN(col.name, r.GetCString());
          HQ_RETURN_IF_ERROR(r.GetI32BE().status());  // table oid
          HQ_RETURN_IF_ERROR(r.GetI16BE().status());  // attnum
          HQ_ASSIGN_OR_RETURN(int32_t oid, r.GetI32BE());
          HQ_RETURN_IF_ERROR(r.GetI16BE().status());  // typlen
          HQ_RETURN_IF_ERROR(r.GetI32BE().status());  // typmod
          HQ_RETURN_IF_ERROR(r.GetI16BE().status());  // format
          col.type = SqlTypeForOid(oid);
          result.columns.push_back(std::move(col));
        }
        break;
      }
      case kMsgDataRow: {
        ByteReader r(msg.body);
        HQ_ASSIGN_OR_RETURN(int16_t nfields, r.GetI16BE());
        std::vector<sqldb::Datum> row;
        row.reserve(nfields);
        for (int i = 0; i < nfields; ++i) {
          HQ_ASSIGN_OR_RETURN(int32_t len, r.GetI32BE());
          if (len < 0) {
            row.push_back(sqldb::Datum::Null());
            continue;
          }
          HQ_ASSIGN_OR_RETURN(std::string text, r.GetString(len));
          HQ_ASSIGN_OR_RETURN(
              sqldb::Datum d,
              DatumFromText(result.columns[i].type, text));
          row.push_back(std::move(d));
        }
        result.rows.push_back(std::move(row));
        break;
      }
      case kMsgCommandComplete: {
        ByteReader r(msg.body);
        HQ_ASSIGN_OR_RETURN(result.command_tag, r.GetCString());
        break;
      }
      case kMsgErrorResponse: {
        // Extract the 'M' field.
        ByteReader r(msg.body);
        std::string message = "backend error";
        while (true) {
          Result<uint8_t> key = r.GetU8();
          if (!key.ok() || *key == 0) break;
          Result<std::string> value = r.GetCString();
          if (!value.ok()) break;
          if (*key == 'M') message = *value;
        }
        error = ExecutionError(message);
        break;
      }
      case kMsgReadyForQuery:
        if (!error.ok()) return error;
        return result;
      default:
        break;  // ignore ParameterStatus / notices
    }
  }
}

void PgWireClient::Close() {
  ByteWriter out;
  WriteMessage(&out, kMsgTerminate, {});
  (void)conn_.WriteAll(out.data());
  conn_.Close();
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Status PgWireServer::Start(uint16_t port) {
  HQ_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Listen(port));
  port_ = listener.port();
  listener_ = std::make_unique<TcpListener>(std::move(listener));
  if (options_.io_model == IoModel::kEventLoop) {
    return StartEventModel();
  }
  running_ = true;
  accept_thread_ = std::make_unique<std::thread>([this]() { AcceptLoop(); });
  return Status::OK();
}

void PgWireServer::Stop() {
  if (!running_.exchange(false)) return;
  if (options_.io_model == IoModel::kEventLoop) {
    StopEventModel();
    return;
  }
  StopThreadModel();
}

void PgWireServer::StopThreadModel() {
  if (listener_) listener_->Close();
  if (accept_thread_ && accept_thread_->joinable()) accept_thread_->join();
  {
    // Wake workers blocked in recv on still-open client connections.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void PgWireServer::AcceptLoop() {
  while (running_) {
    Result<TcpConnection> conn = listener_->Accept();
    if (!conn.ok()) {
      // Stop() closing the listener surfaces as a benign "listener
      // closed" error; anything else is a real accept failure.
      if (running_ && !TcpListener::IsClosedError(conn.status())) {
        HQ_LOG(Warning) << "pg accept failed: " << conn.status().ToString();
      }
      return;
    }
    int prior = active_count_.fetch_add(1, std::memory_order_acq_rel);
    if (prior >= effective_max_connections()) {
      // Refused: the socket closes before any protocol byte.
      active_count_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    workers_.emplace_back(
        [this, c = std::move(*conn)]() mutable {
          HandleConnection(std::move(c));
        });
  }
}

Status PgWireServer::Handshake(TcpConnection* conn) {
  // Startup packet: length + protocol + params.
  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> lenb, conn->ReadExact(4));
  ByteReader lr(lenb);
  HQ_ASSIGN_OR_RETURN(uint32_t len, lr.GetU32BE());
  if (len < 8 || len > (1u << 20)) {
    return ProtocolError("implausible startup packet length");
  }
  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> body, conn->ReadExact(len - 4));
  ByteReader r(body);
  HQ_ASSIGN_OR_RETURN(int32_t protocol, r.GetI32BE());
  if (protocol != kProtocolVersion3) {
    return ProtocolError(StrCat("unsupported protocol version ", protocol));
  }
  std::string user;
  while (!r.AtEnd()) {
    Result<std::string> key = r.GetCString();
    if (!key.ok() || key->empty()) break;
    HQ_ASSIGN_OR_RETURN(std::string value, r.GetCString());
    if (*key == "user") user = value;
  }

  auto send = [&](char type, const std::vector<uint8_t>& payload) {
    ByteWriter out;
    WriteMessage(&out, type, payload);
    return conn->WriteAll(out.data());
  };

  std::string salt = kPgAuthSalt;
  if (options_.auth == AuthMode::kCleartext) {
    HQ_RETURN_IF_ERROR(send(kMsgAuthentication, AuthBody(3)));
  } else if (options_.auth == AuthMode::kMd5) {
    ByteWriter b;
    b.PutI32BE(5);
    b.PutString(salt);
    HQ_RETURN_IF_ERROR(send(kMsgAuthentication, b.Take()));
  }
  if (options_.auth != AuthMode::kTrust) {
    HQ_ASSIGN_OR_RETURN(WireMessage pw, ReadMessage(conn));
    if (pw.type != kMsgPassword) {
      return AuthError("expected password message");
    }
    ByteReader pr(pw.body);
    HQ_ASSIGN_OR_RETURN(std::string given, pr.GetCString());
    bool ok;
    if (options_.auth == AuthMode::kCleartext) {
      ok = given == options_.password && user == options_.user;
    } else {
      std::string expect =
          "md5" + ToyMd5(ToyMd5(options_.password + options_.user) + salt);
      ok = given == expect;
    }
    if (!ok) {
      ByteWriter out;
      WriteMessage(&out, kMsgErrorResponse,
                   ErrorBody(AuthError("password authentication failed")));
      (void)conn->WriteAll(out.data());
      return AuthError("password authentication failed");
    }
  }
  HQ_RETURN_IF_ERROR(send(kMsgAuthentication, AuthBody(0)));

  ByteWriter ps;
  ps.PutCString("server_version");
  ps.PutCString("9.2-hyperq-mini");
  HQ_RETURN_IF_ERROR(send(kMsgParameterStatus, ps.Take()));
  return send(kMsgReadyForQuery, ReadyBody());
}

void PgWireServer::RegisterFd(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.push_back(fd);
}

void PgWireServer::UnregisterFd(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.erase(std::remove(active_fds_.begin(), active_fds_.end(), fd),
                    active_fds_.end());
}

void PgWireServer::HandleConnection(TcpConnection conn) {
  RegisterFd(conn.fd());
  struct Guard {
    PgWireServer* s;
    int fd;
    ~Guard() {
      s->UnregisterFd(fd);
      s->active_count_.fetch_sub(1, std::memory_order_acq_rel);
    }
  } guard{this, conn.fd()};
  Status hs = Handshake(&conn);
  if (!hs.ok()) {
    HQ_LOG(Info) << "pg handshake failed: " << hs.ToString();
    return;
  }
  auto session = db_->CreateSession();
  // Per-connection reply buffers, reused across queries; bounded so one
  // oversized result set does not pin its peak footprint.
  constexpr size_t kArenaKeepBytes = 1u << 20;
  Outgoing out;
  while (running_) {
    Result<WireMessage> msg = ReadMessage(&conn);
    if (!msg.ok()) return;  // disconnect
    if (msg->type == kMsgTerminate) return;
    if (msg->type != kMsgQuery) continue;
    if (out.arena.data().capacity() > kArenaKeepBytes) {
      out.arena = ByteWriter();
    }
    BuildQueryReply(db_, session.get(), msg->body, &out);
    // An egress fault behaves as the transport dying mid-response: the
    // connection is dropped, never patched over with a second frame on a
    // stream whose position is unknown.
    if (FaultHit f = CheckFault("pgwire.write");
        f.kind != FaultHit::Kind::kNone) {
      if (f.kind == FaultHit::Kind::kShortWrite && !out.slices.empty()) {
        (void)conn.WriteAll(out.slices[0].data,
                            std::min(f.short_len, out.slices[0].len));
      }
      return;
    }
    if (!conn.WriteAllV(out.slices).ok()) return;
    out.keepalive.reset();  // release the result's row set
  }
}

// ---------------------------------------------------------------------------
// Event-loop model
// ---------------------------------------------------------------------------

/// Per-socket PG v3 protocol state machine on an event loop, the pgwire
/// counterpart of the QIPC QipcEventConn (§3.4: each protocol translator
/// maintains its state as an FSM). States follow the wire phases —
/// startup → password-wait → ready → execute → respond — over a shared
/// immutable transition table.
class PgWireServer::PgEventConn final : public EventConn {
 public:
  enum class St { kStartup, kPasswordWait, kReady, kExecute, kRespond };
  enum class Ev {
    kAuthRequested,
    kAuthGranted,
    kQueryReceived,
    kReplyReady,
    kReplyDrained,
  };

  PgEventConn(PgWireServer* server, EventLoop* loop, TcpConnection conn)
      : EventConn(loop, std::move(conn)),
        server_(server),
        fsm_(St::kStartup, &Table()) {}

  /// Server drain (Stop): stop reading; an idle connection closes now, a
  /// busy one finishes its in-flight query + response under a
  /// force-close timer.
  void BeginDrain() {
    if (closed() || draining_) return;
    draining_ = true;
    PauseReads();
    ::shutdown(fd(), SHUT_RD);
    if (!executing_ && !write_pending()) {
      Close();
      return;
    }
    int bound = server_->options_.drain_timeout_ms > 0
                    ? server_->options_.drain_timeout_ms
                    : 1;
    drain_timer_ = loop()->AddTimerAfter(std::chrono::milliseconds(bound),
                                         [this] {
                                           drain_timer_ = 0;
                                           Close();
                                         });
  }

 protected:
  void OnData() override { Pump(); }

  void OnWriteDrained() override {
    if (close_after_reply_) {
      Close();
      return;
    }
    if (fsm_.state() != St::kRespond) return;  // handshake frames drained
    (void)fsm_.Fire(Ev::kReplyDrained);
    if (draining_) {
      Close();
      return;
    }
    ResumeReads();
    Pump();  // pipelined queries may already be buffered
  }

  void OnClosed() override {
    if (drain_timer_ != 0) {
      loop()->CancelTimer(drain_timer_);
      drain_timer_ = 0;
    }
    server_->OnEventConnClosed(this);
  }

 private:
  using Table_t = TransitionTable<St, Ev>;

  static const Table_t& Table() {
    static const Table_t* t = [] {
      auto* table = new Table_t("pgwire-conn");
      table->Add(St::kStartup, Ev::kAuthRequested, St::kPasswordWait);
      table->Add(St::kStartup, Ev::kAuthGranted, St::kReady);
      table->Add(St::kPasswordWait, Ev::kAuthGranted, St::kReady);
      table->Add(St::kReady, Ev::kQueryReceived, St::kExecute);
      table->Add(St::kExecute, Ev::kReplyReady, St::kRespond);
      table->Add(St::kRespond, Ev::kReplyDrained, St::kReady);
      return table;
    }();
    return *t;
  }

  /// Drives the state machine over whatever is buffered; pipelined
  /// queries decode straight out of rbuf_.
  void Pump() {
    while (!closed()) {
      switch (fsm_.state()) {
        case St::kStartup: {
          size_t avail = rbuf_.size() - rpos_;
          if (avail < 4) return;
          ByteReader lr(rbuf_.data() + rpos_, 4);
          uint32_t len = *lr.GetU32BE();
          if (len < 8 || len > (1u << 20)) {  // implausible startup length
            Close();
            return;
          }
          if (avail < len) return;
          std::vector<uint8_t> body(rbuf_.data() + rpos_ + 4,
                                    rbuf_.data() + rpos_ + len);
          ConsumeTo(rpos_ + len);
          if (!ProcessStartup(body)) return;
          break;
        }
        case St::kPasswordWait: {
          std::optional<WireMessage> msg;
          if (!ExtractMessage(&msg)) return;
          if (!msg.has_value()) return;  // incomplete
          if (!ProcessPassword(*msg)) return;
          break;
        }
        case St::kReady: {
          std::optional<WireMessage> msg;
          if (!ExtractMessage(&msg)) return;
          if (!msg.has_value()) return;  // incomplete
          if (msg->type == kMsgTerminate) {
            Close();
            return;
          }
          if (msg->type != kMsgQuery) break;  // ignore
          (void)fsm_.Fire(Ev::kQueryReceived);
          Dispatch(std::move(msg->body));
          return;  // reads paused until the reply is on its way
        }
        case St::kExecute:
        case St::kRespond:
          // Buffered pipelined bytes wait for the in-flight query.
          return;
      }
    }
  }

  /// Extracts one complete typed message from rbuf_ if available.
  /// Returns false when the connection was closed (framing violation or
  /// injected pgwire.read fault — the fault site the blocking
  /// ReadMessage checks per message).
  bool ExtractMessage(std::optional<WireMessage>* out) {
    size_t avail = rbuf_.size() - rpos_;
    if (avail < 5) {
      if (avail == 0) ConsumeTo(rpos_);  // allow shrink when empty
      return true;
    }
    const uint8_t* base = rbuf_.data() + rpos_;
    ByteReader r(base + 1, 4);
    uint32_t len = *r.GetU32BE();
    if (len < 4 || len > (64u << 20)) {
      Close();  // implausible PG message length
      return false;
    }
    size_t total = 1 + static_cast<size_t>(len);
    if (avail < total) return true;
    if (FaultHit f = CheckFault("pgwire.read");
        f.kind == FaultHit::Kind::kError) {
      Close();
      return false;
    }
    WireMessage msg;
    msg.type = static_cast<char>(base[0]);
    msg.body.assign(base + 5, base + total);
    ConsumeTo(rpos_ + total);
    *out = std::move(msg);
    return true;
  }

  /// Startup packet: protocol check, user extraction, auth challenge (or
  /// immediate grant under trust). Same bytes as the blocking Handshake.
  bool ProcessStartup(const std::vector<uint8_t>& body) {
    ByteReader r(body);
    Result<int32_t> protocol = r.GetI32BE();
    if (!protocol.ok() || *protocol != kProtocolVersion3) {
      Close();
      return false;
    }
    while (!r.AtEnd()) {
      Result<std::string> key = r.GetCString();
      if (!key.ok() || key->empty()) break;
      Result<std::string> value = r.GetCString();
      if (!value.ok()) {
        Close();
        return false;
      }
      if (*key == "user") user_ = *value;
    }
    const ServerOptions& opts = server_->options_;
    if (opts.auth == AuthMode::kCleartext) {
      ByteWriter w;
      WriteMessage(&w, kMsgAuthentication, AuthBody(3));
      SendOwned(w.Take());
      if (!closed()) (void)fsm_.Fire(Ev::kAuthRequested);
      return !closed();
    }
    if (opts.auth == AuthMode::kMd5) {
      ByteWriter b;
      b.PutI32BE(5);
      b.PutString(kPgAuthSalt);
      ByteWriter w;
      WriteMessage(&w, kMsgAuthentication, b.Take());
      SendOwned(w.Take());
      if (!closed()) (void)fsm_.Fire(Ev::kAuthRequested);
      return !closed();
    }
    GrantAccess();  // trust
    return !closed();
  }

  bool ProcessPassword(const WireMessage& pw) {
    if (pw.type != kMsgPassword) {
      Close();
      return false;
    }
    ByteReader pr(pw.body);
    Result<std::string> given = pr.GetCString();
    if (!given.ok()) {
      Close();
      return false;
    }
    const ServerOptions& opts = server_->options_;
    bool ok;
    if (opts.auth == AuthMode::kCleartext) {
      ok = *given == opts.password && user_ == opts.user;
    } else {
      std::string expect =
          "md5" +
          ToyMd5(ToyMd5(opts.password + opts.user) + kPgAuthSalt);
      ok = *given == expect;
    }
    if (!ok) {
      ByteWriter w;
      WriteMessage(&w, kMsgErrorResponse,
                   ErrorBody(AuthError("password authentication failed")));
      close_after_reply_ = true;
      PauseReads();
      SendOwned(w.Take());
      return false;
    }
    GrantAccess();
    return !closed();
  }

  /// AuthenticationOk + ParameterStatus + ReadyForQuery.
  void GrantAccess() {
    ByteWriter w;
    WriteMessage(&w, kMsgAuthentication, AuthBody(0));
    ByteWriter ps;
    ps.PutCString("server_version");
    ps.PutCString("9.2-hyperq-mini");
    WriteMessage(&w, kMsgParameterStatus, ps.Take());
    WriteMessage(&w, kMsgReadyForQuery, ReadyBody());
    SendOwned(w.Take());
    if (!closed()) (void)fsm_.Fire(Ev::kAuthGranted);
  }

  void SendOwned(std::vector<uint8_t> bytes) {
    Outgoing out;
    out.owned = std::move(bytes);
    out.slices.push_back(IoSlice{out.owned.data(), out.owned.size()});
    Send(std::move(out));
  }

  /// Hands the query to the exec pool (strictly one in flight per
  /// connection — the sqldb session is single-threaded) and pauses
  /// socket reads; pipelined queries accumulate in rbuf_ meanwhile.
  void Dispatch(std::vector<uint8_t> body) {
    executing_ = true;
    PauseReads();
    if (!session_) {
      session_ = std::shared_ptr<sqldb::Session>(server_->db_->CreateSession());
    }
    auto self = std::static_pointer_cast<PgEventConn>(shared_from_this());
    bool accepted = server_->exec_pool_->Submit(
        [self, db = server_->db_, session = session_,
         body = std::move(body)] {
          auto out = std::make_shared<Outgoing>();
          BuildQueryReply(db, session.get(), body, out.get());
          self->loop()->Post(
              [self, out] { self->OnQueryDone(std::move(*out)); });
        });
    if (!accepted) {  // server stopping; no more replies will flow
      executing_ = false;
      Close();
    }
  }

  /// Completion, back on the loop thread.
  void OnQueryDone(Outgoing out) {
    executing_ = false;
    if (closed()) return;
    (void)fsm_.Fire(Ev::kReplyReady);
    // An egress fault behaves as the transport dying mid-response
    // (optionally after a short prefix) — same semantics as the
    // blocking model's pgwire.write site.
    if (FaultHit f = CheckFault("pgwire.write");
        f.kind != FaultHit::Kind::kNone) {
      if (f.kind == FaultHit::Kind::kShortWrite && !out.slices.empty()) {
        size_t n = std::min(f.short_len, out.slices[0].len);
        const uint8_t* p = static_cast<const uint8_t*>(out.slices[0].data);
        Outgoing prefix;
        prefix.owned.assign(p, p + n);
        prefix.slices.push_back(IoSlice{prefix.owned.data(), n});
        close_after_reply_ = true;
        Send(std::move(prefix));
        return;
      }
      Close();
      return;
    }
    Send(std::move(out));  // OnWriteDrained advances the machine
  }

  PgWireServer* server_;
  Fsm<St, Ev> fsm_;
  std::shared_ptr<sqldb::Session> session_;
  std::string user_;
  bool executing_ = false;
  bool draining_ = false;
  bool close_after_reply_ = false;
  uint64_t drain_timer_ = 0;
};

Status PgWireServer::StartEventModel() {
  loops_ = std::make_unique<EventLoopGroup>(
      options_.event_loop_threads > 0
          ? static_cast<size_t>(options_.event_loop_threads)
          : 0);
  HQ_RETURN_IF_ERROR(loops_->Start());
  exec_pool_ = std::make_unique<TaskPool>(
      options_.exec_threads > 0 ? static_cast<size_t>(options_.exec_threads)
                                : 0);
  HQ_RETURN_IF_ERROR(listener_->SetNonBlocking(true));
  running_ = true;
  // Single dispatcher: loop 0 owns the listener and fans accepted sockets
  // out across the group.
  loops_->loop(0)->Post([this] {
    listen_watch_ = loops_->loop(0)->AddWatch(
        listener_->fd(), EPOLLIN, [this](uint32_t) { EventAcceptReady(); });
  });
  return Status::OK();
}

void PgWireServer::EventAcceptReady() {
  while (true) {
    Result<std::optional<TcpConnection>> pending = listener_->TryAccept();
    if (!pending.ok()) {
      if (running_ && !TcpListener::IsClosedError(pending.status())) {
        HQ_LOG(Warning) << "pg accept failed: "
                        << pending.status().ToString();
      }
      if (listen_watch_ != nullptr) {
        loops_->loop(0)->RemoveWatch(listen_watch_);
        listen_watch_ = nullptr;
      }
      return;
    }
    if (!pending->has_value()) return;  // accept queue drained
    TcpConnection conn = std::move(**pending);
    int prior = active_count_.fetch_add(1, std::memory_order_acq_rel);
    if (prior >= effective_max_connections() || !running_) {
      // Non-blocking refusal: close before any protocol byte.
      active_count_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    EventLoop* target = loops_->Next();
    auto ec = std::make_shared<PgEventConn>(this, target, std::move(conn));
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      event_conns_.emplace(ec.get(), ec);
    }
    target->Post([ec] {
      if (!ec->Register().ok()) ec->Close();
    });
  }
}

void PgWireServer::OnEventConnClosed(EventConn* conn) {
  active_count_.fetch_sub(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(conn_mu_);
  event_conns_.erase(conn);
  if (event_conns_.empty()) drain_cv_.notify_all();
}

void PgWireServer::StopEventModel() {
  // 1. Stop accepting. The watch retirement must complete on the loop
  // thread BEFORE the fd is closed here: close() racing the loop's
  // epoll_ctl on the same descriptor is a genuine data race (and could
  // hit a recycled fd number). The bounded wait covers the pathological
  // case of a loop that died early (its posts are dropped).
  {
    auto removed = std::make_shared<std::promise<void>>();
    std::future<void> done = removed->get_future();
    loops_->loop(0)->Post([this, removed] {
      if (listen_watch_ != nullptr) {
        loops_->loop(0)->RemoveWatch(listen_watch_);
        listen_watch_ = nullptr;
      }
      removed->set_value();
    });
    done.wait_for(std::chrono::seconds(2));
  }
  listener_->Close();
  // 2. Drain every connection on its own loop: idle ones close now, busy
  // ones finish their in-flight query + response under a per-connection
  // force-close timer.
  std::vector<std::shared_ptr<EventConn>> snapshot;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    snapshot.reserve(event_conns_.size());
    for (auto& [ptr, sp] : event_conns_) snapshot.push_back(sp);
  }
  for (auto& sp : snapshot) {
    auto pc = std::static_pointer_cast<PgEventConn>(sp);
    pc->loop()->Post([pc] { pc->BeginDrain(); });
  }
  snapshot.clear();
  // 3. Bounded wait for the drain to finish.
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    drain_cv_.wait_for(
        lock,
        std::chrono::milliseconds(options_.drain_timeout_ms + 1000),
        [this] { return event_conns_.empty(); });
  }
  // 4. Queries still running finish here; their completion posts land on
  // loops that are still alive.
  exec_pool_->Stop();
  // 5. Anything that survived the drain window is closed unconditionally.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    snapshot.reserve(event_conns_.size());
    for (auto& [ptr, sp] : event_conns_) snapshot.push_back(sp);
  }
  for (auto& sp : snapshot) {
    sp->loop()->Post([sp] { sp->Close(); });
  }
  snapshot.clear();
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(1000),
                       [this] { return event_conns_.empty(); });
  }
  // 6. Loops drain their remaining posts (connection releases) and exit.
  loops_->Stop();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    event_conns_.clear();
  }
}

}  // namespace pgwire
}  // namespace hyperq
