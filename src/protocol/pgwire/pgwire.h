#ifndef HYPERQ_PROTOCOL_PGWIRE_PGWIRE_H_
#define HYPERQ_PROTOCOL_PGWIRE_PGWIRE_H_

#include <cstdint>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/worker_pool.h"
#include "net/event_loop.h"
#include "net/tcp.h"
#include "sqldb/database.h"

namespace hyperq {
namespace pgwire {

/// PostgreSQL v3 wire protocol (§4.2): a message is a single type byte
/// followed by a 4-byte big-endian length (including itself) and the body.
/// The startup message has no type byte. Results stream row-oriented:
/// RowDescription then one DataRow per row then CommandComplete (contrast
/// with QIPC's single column-oriented message, Figure 5).

/// Front-end/back-end message type bytes.
inline constexpr char kMsgQuery = 'Q';
inline constexpr char kMsgPassword = 'p';
inline constexpr char kMsgTerminate = 'X';
inline constexpr char kMsgAuthentication = 'R';
inline constexpr char kMsgParameterStatus = 'S';
inline constexpr char kMsgReadyForQuery = 'Z';
inline constexpr char kMsgRowDescription = 'T';
inline constexpr char kMsgDataRow = 'D';
inline constexpr char kMsgCommandComplete = 'C';
inline constexpr char kMsgErrorResponse = 'E';

inline constexpr int32_t kProtocolVersion3 = 196608;  // 3.0

/// PG type OIDs for the supported column types.
int32_t OidFor(sqldb::SqlType type);
sqldb::SqlType SqlTypeForOid(int32_t oid);

/// Writes one typed message (type byte + length + body).
void WriteMessage(ByteWriter* out, char type,
                  const std::vector<uint8_t>& body);

/// Reads one typed message from a connection.
struct WireMessage {
  char type = 0;
  std::vector<uint8_t> body;
};
Result<WireMessage> ReadMessage(TcpConnection* conn);

// -- Client -----------------------------------------------------------------

/// Minimal PG v3 client: startup, cleartext or MD5 (toy) password auth,
/// simple query protocol. Used by the wire Gateway so Hyper-Q reaches the
/// backend exactly as it would reach a real PG-compatible MPP system.
class PgWireClient {
 public:
  static Result<PgWireClient> Connect(const std::string& host, uint16_t port,
                                      const std::string& user,
                                      const std::string& password,
                                      const std::string& database = "hyperq");

  /// Runs one simple query; buffers the streamed rows into a QueryResult
  /// (the row-set buffering Hyper-Q performs before pivoting, §4.2).
  Result<sqldb::QueryResult> Query(const std::string& sql);

  void Close();

 private:
  explicit PgWireClient(TcpConnection conn) : conn_(std::move(conn)) {}

  TcpConnection conn_;
};

// -- Server -----------------------------------------------------------------

/// Authentication mode for the server side (§4.2 lists clear text, MD5 and
/// Kerberos; Kerberos is out of scope — see DESIGN.md substitutions).
enum class AuthMode { kTrust, kCleartext, kMd5 };

struct ServerOptions {
  AuthMode auth = AuthMode::kTrust;
  std::string user = "hyperq";
  std::string password;
  /// Connection-handling front end; see the PgWireServer class comment.
  IoModel io_model = IoModel::kEventLoop;
  /// Reactor threads for the event-loop model; 0 sizes to the hardware.
  int event_loop_threads = 0;
  /// Query-execution threads for the event-loop model; 0 picks a small
  /// hardware default.
  int exec_threads = 0;
  /// Hard cap on simultaneously served connections; 0 picks the model
  /// default (256 thread-per-connection, 65536 event loop). Refused
  /// sockets are closed before any protocol byte.
  int max_connections = 0;
  /// Stop() drain bound in milliseconds for the event-loop model: how
  /// long an in-flight query may take to finish writing its response
  /// before the connection is forced closed.
  int drain_timeout_ms = 5000;
};

/// Serves the mini PG engine over the PG v3 protocol. Two selectable
/// front ends (ServerOptions::io_model), mirroring HyperQServer:
///   - kEventLoop (default): an epoll reactor multiplexes every
///     connection as a per-socket protocol state machine (startup →
///     password-wait → ready → execute → respond); queries run on a
///     TaskPool and responses drain asynchronously on EPOLLOUT.
///   - kThreadPerConnection: the original model, one blocking handler
///     thread per connection.
/// Both models produce byte-identical wire traffic for the same requests
/// (they share one response builder).
class PgWireServer {
 public:
  PgWireServer(sqldb::Database* db, ServerOptions options)
      : db_(db), options_(std::move(options)) {}

  /// Binds to 127.0.0.1:port (0 = ephemeral) and starts serving.
  Status Start(uint16_t port);
  uint16_t port() const { return port_; }
  void Stop();
  ~PgWireServer() { Stop(); }

  /// Admitted connections right now.
  int active_connections() const {
    return active_count_.load(std::memory_order_acquire);
  }

  /// The configured cap with model defaults applied.
  int effective_max_connections() const {
    if (options_.max_connections > 0) return options_.max_connections;
    return options_.io_model == IoModel::kEventLoop ? 65536 : 256;
  }

 private:
  class PgEventConn;
  friend class PgEventConn;

  // --- thread-per-connection model ---
  void AcceptLoop();
  void HandleConnection(TcpConnection conn);
  Status Handshake(TcpConnection* conn);
  void RegisterFd(int fd);
  void UnregisterFd(int fd);
  void StopThreadModel();

  // --- event-loop model ---
  Status StartEventModel();
  void StopEventModel();
  void EventAcceptReady();
  void OnEventConnClosed(EventConn* conn);

  sqldb::Database* db_;
  ServerOptions options_;
  uint16_t port_ = 0;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<std::thread> accept_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<int> active_count_{0};
  std::mutex conn_mu_;
  std::condition_variable drain_cv_;
  std::vector<int> active_fds_;

  std::unique_ptr<EventLoopGroup> loops_;
  std::unique_ptr<TaskPool> exec_pool_;
  EventLoop::Watch* listen_watch_ = nullptr;  // loop-0-thread-only
  /// Keeps every live event connection alive; guarded by conn_mu_.
  std::unordered_map<EventConn*, std::shared_ptr<EventConn>> event_conns_;
};

/// Toy MD5-shaped hash used for the md5 auth flow. NOT cryptographic — it
/// reproduces the message flow (AuthenticationMD5Password + salt), not
/// production security.
std::string ToyMd5(const std::string& input);

}  // namespace pgwire
}  // namespace hyperq

#endif  // HYPERQ_PROTOCOL_PGWIRE_PGWIRE_H_
