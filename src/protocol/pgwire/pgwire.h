#ifndef HYPERQ_PROTOCOL_PGWIRE_PGWIRE_H_
#define HYPERQ_PROTOCOL_PGWIRE_PGWIRE_H_

#include <cstdint>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/tcp.h"
#include "sqldb/database.h"

namespace hyperq {
namespace pgwire {

/// PostgreSQL v3 wire protocol (§4.2): a message is a single type byte
/// followed by a 4-byte big-endian length (including itself) and the body.
/// The startup message has no type byte. Results stream row-oriented:
/// RowDescription then one DataRow per row then CommandComplete (contrast
/// with QIPC's single column-oriented message, Figure 5).

/// Front-end/back-end message type bytes.
inline constexpr char kMsgQuery = 'Q';
inline constexpr char kMsgPassword = 'p';
inline constexpr char kMsgTerminate = 'X';
inline constexpr char kMsgAuthentication = 'R';
inline constexpr char kMsgParameterStatus = 'S';
inline constexpr char kMsgReadyForQuery = 'Z';
inline constexpr char kMsgRowDescription = 'T';
inline constexpr char kMsgDataRow = 'D';
inline constexpr char kMsgCommandComplete = 'C';
inline constexpr char kMsgErrorResponse = 'E';

inline constexpr int32_t kProtocolVersion3 = 196608;  // 3.0

/// PG type OIDs for the supported column types.
int32_t OidFor(sqldb::SqlType type);
sqldb::SqlType SqlTypeForOid(int32_t oid);

/// Writes one typed message (type byte + length + body).
void WriteMessage(ByteWriter* out, char type,
                  const std::vector<uint8_t>& body);

/// Reads one typed message from a connection.
struct WireMessage {
  char type = 0;
  std::vector<uint8_t> body;
};
Result<WireMessage> ReadMessage(TcpConnection* conn);

// -- Client -----------------------------------------------------------------

/// Minimal PG v3 client: startup, cleartext or MD5 (toy) password auth,
/// simple query protocol. Used by the wire Gateway so Hyper-Q reaches the
/// backend exactly as it would reach a real PG-compatible MPP system.
class PgWireClient {
 public:
  static Result<PgWireClient> Connect(const std::string& host, uint16_t port,
                                      const std::string& user,
                                      const std::string& password,
                                      const std::string& database = "hyperq");

  /// Runs one simple query; buffers the streamed rows into a QueryResult
  /// (the row-set buffering Hyper-Q performs before pivoting, §4.2).
  Result<sqldb::QueryResult> Query(const std::string& sql);

  void Close();

 private:
  explicit PgWireClient(TcpConnection conn) : conn_(std::move(conn)) {}

  TcpConnection conn_;
};

// -- Server -----------------------------------------------------------------

/// Authentication mode for the server side (§4.2 lists clear text, MD5 and
/// Kerberos; Kerberos is out of scope — see DESIGN.md substitutions).
enum class AuthMode { kTrust, kCleartext, kMd5 };

struct ServerOptions {
  AuthMode auth = AuthMode::kTrust;
  std::string user = "hyperq";
  std::string password;
};

/// Serves the mini PG engine over the PG v3 protocol. Single-threaded
/// accept loop with one handler thread per connection; Run() blocks until
/// Stop().
class PgWireServer {
 public:
  PgWireServer(sqldb::Database* db, ServerOptions options)
      : db_(db), options_(std::move(options)) {}

  /// Binds to 127.0.0.1:port (0 = ephemeral) and starts the accept thread.
  Status Start(uint16_t port);
  uint16_t port() const { return port_; }
  void Stop();
  ~PgWireServer() { Stop(); }

 private:
  void AcceptLoop();
  void HandleConnection(TcpConnection conn);
  Status Handshake(TcpConnection* conn);
  void RegisterFd(int fd);
  void UnregisterFd(int fd);

  sqldb::Database* db_;
  ServerOptions options_;
  uint16_t port_ = 0;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<std::thread> accept_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::mutex conn_mu_;
  std::vector<int> active_fds_;
};

/// Toy MD5-shaped hash used for the md5 auth flow. NOT cryptographic — it
/// reproduces the message flow (AuthenticationMD5Password + salt), not
/// production security.
std::string ToyMd5(const std::string& input);

}  // namespace pgwire
}  // namespace hyperq

#endif  // HYPERQ_PROTOCOL_PGWIRE_PGWIRE_H_
